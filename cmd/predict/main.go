// Command predict applies the analytical performance model: given a
// workflow description and a Table II paradigm it predicts makespan,
// cold starts, and mean resource usage without executing anything, and
// can validate the prediction against an actual in-process run.
//
// Examples:
//
//	wfgen -recipe blast -tasks 250 -o blast.json
//	predict -workflow blast.json -paradigm Kn10wNoPM
//	predict -workflow blast.json -paradigm Kn10wNoPM -validate
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"wfserverless/internal/experiments"
	"wfserverless/internal/model"
	"wfserverless/internal/wfformat"
)

func main() {
	var (
		workflow = flag.String("workflow", "", "workflow description JSON (required)")
		paradigm = flag.String("paradigm", "Kn10wNoPM", "Table II paradigm")
		validate = flag.Bool("validate", false, "also execute and compare")
		scale    = flag.Float64("time-scale", 0.02, "time scale for -validate")
	)
	flag.Parse()
	if *workflow == "" {
		fatal(fmt.Errorf("-workflow is required"))
	}
	w, err := wfformat.Load(*workflow)
	if err != nil {
		fatal(err)
	}
	spec, err := experiments.ByID(experiments.Paradigm(*paradigm))
	if err != nil {
		fatal(err)
	}
	tn := experiments.DefaultTunables()
	pred, err := model.Predict(spec, w, tn)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("workflow:   %s (%d tasks)\n", w.Name, w.Len())
	fmt.Printf("paradigm:   %s\n", spec.ID)
	fmt.Printf("predicted:  makespan %.2f s, %d cold starts, %.2f cores, %.2f GB\n",
		pred.MakespanS, pred.ColdStarts, pred.MeanCPUCores, pred.MeanMemGB)
	if !*validate {
		return
	}
	tn.TimeScale = *scale
	meas, err := experiments.RunWorkflow(context.Background(), spec, w, tn)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("measured:   makespan %.2f s, %d cold starts, %.2f cores, %.2f GB\n",
		meas.MakespanS, meas.ColdStarts, meas.MeanCPUCores, meas.MeanMemGB)
	fmt.Printf("ratios:     time x%.2f, cpu x%.2f, mem x%.2f\n",
		pred.MakespanS/meas.MakespanS,
		pred.MeanCPUCores/meas.MeanCPUCores,
		pred.MeanMemGB/meas.MeanMemGB)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "predict:", err)
	os.Exit(1)
}
