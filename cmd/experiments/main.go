// Command experiments runs the paper's evaluation campaigns and prints
// the rows behind Tables I-II and Figures 3-7, optionally writing CSVs —
// the equivalent of run_all_wfbench.sh + the analysis notebooks.
//
// Examples:
//
//	experiments -suite all
//	experiments -suite fig7 -small 50 -large 250 -time-scale 0.01 -csv fig7.csv
//	experiments -suite design
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"time"

	"wfserverless/internal/experiments"
	"wfserverless/internal/recipes"
	"wfserverless/internal/wfbench"
	"wfserverless/internal/wfformat"
	"wfserverless/internal/wfgen"
	"wfserverless/internal/wfm"
)

func main() {
	var (
		suite     = flag.String("suite", "all", "design | table2 | fig3 | fig4 | fig5 | fig6 | fig7 | concurrent | resilience | health | scale | recovery | memo | service | all")
		small     = flag.Int("small", 30, "small workflow size")
		large     = flag.Int("large", 120, "large workflow size")
		huge      = flag.Int("huge", 300, "huge workflow size (coarse-grained)")
		seed      = flag.Int64("seed", 1, "generation seed")
		timeScale = flag.Float64("time-scale", 0.02, "nominal-to-wall compression")
		schedule  = flag.String("schedule", "phases", "workflow-manager scheduling: phases (paper) or dependency (event-driven)")
		csvPath   = flag.String("csv", "", "also append suite CSVs to this file")

		// Batched invocation for the suites that exercise the manager's
		// transport (resilience, recovery, scale).
		batchOn     = flag.Bool("batch", false, "run the resilience/recovery/scale suites through the batched invocation pipeline")
		batchTasks  = flag.Int("batch-tasks", 0, "max sub-tasks per batch (0: 64)")
		batchBytes  = flag.Int("batch-bytes", 0, "max summed payload bytes per batch (0: 1 MiB)")
		batchLinger = flag.Float64("batch-linger", 0, "batch linger window, nominal seconds (0: 0.005)")

		// Fault profile for -suite resilience.
		faultError  = flag.Float64("fault-error-rate", 0.3, "resilience suite: probability of an injected 500")
		faultReject = flag.Float64("fault-reject-rate", 0.05, "resilience suite: probability of an injected 429")
		faultLatMS  = flag.Float64("fault-latency-ms", 10, "resilience suite: injected latency spike, wall ms")
		faultSeed   = flag.Int64("fault-seed", 13, "resilience suite: fault sequence seed")

		// Shape of -suite health.
		healthTasks   = flag.Int("health-tasks", 24, "health suite: workflow size for the straggler campaign")
		healthDelayMS = flag.Float64("health-delay-ms", 1000, "health suite: injected straggler delay, wall ms")

		// Shape of -suite recovery.
		recoveryTasks  = flag.Int("recovery-tasks", 400, "recovery suite: synthetic workflow size per trial")
		recoveryTrials = flag.Int("recovery-trials", 3, "recovery suite: randomized crash points per {scheduling} x {faults} cell")

		// Shape of -suite memo, plus the -memoize toggle for the
		// recovery and resilience suites.
		memoTasks = flag.Int("memo-tasks", 100_000, "memo suite: synthetic workflow size")
		memoEdits = flag.Int("memo-edits", 8, "memo suite: tasks perturbed in the k-edit variant")
		memoize   = flag.Bool("memoize", false, "run the recovery and resilience suites with the content-addressed memo cache enabled")

		// Shape of -suite service.
		serviceRuns  = flag.Int("service-runs", 6, "service suite: runs per tenant in the fairness phase")
		serviceTasks = flag.Int("service-tasks", 64, "service suite: tasks per synthetic workflow")
		serviceSlots = flag.Int("service-slots", 4, "service suite: global in-flight task budget")

		// Shape of -suite scale.
		scaleTasks    = flag.Int("scale-tasks", 100_000, "scale suite: synthetic workflow size")
		scaleShape    = flag.String("scale-shape", "random", "scale suite: random | chain | fanout")
		scaleWidth    = flag.Int("scale-width", 64, "scale suite: tasks per layer for the random shape")
		scaleParallel = flag.Int("scale-parallel", 256, "scale suite: max simultaneous invocations")

		// Tracing of the resilience and scale suites.
		traceSample = flag.Float64("trace", 0, "span sampling ratio for the resilience and scale suites (0 disables, 1 records every run)")
		traceDir    = flag.String("trace-dir", "results", "directory receiving per-run trace files (Chrome trace JSON + span JSONL)")

		// Profiling of whatever suite runs.
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			runtime.GC() // settle allocations so the heap profile reflects live data
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
		}()
	}

	mode, err := wfm.ParseScheduling(*schedule)
	if err != nil {
		fatal(err)
	}
	tn := experiments.DefaultTunables()
	tn.TimeScale = *timeScale
	tn.Scheduling = mode
	batching := wfm.BatchOptions{
		Enabled:  *batchOn,
		MaxTasks: *batchTasks,
		MaxBytes: *batchBytes,
		Linger:   *batchLinger,
	}
	tn.Batching = batching
	sz := experiments.Sizes{Small: *small, Large: *large, Huge: *huge}
	ctx := context.Background()

	var csv *os.File
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		csv = f
	}

	runSuite := func(name string, f func(context.Context, experiments.Sizes, int64, experiments.Tunables) (*experiments.Suite, error)) {
		s, err := f(ctx, sz, *seed, tn)
		if err != nil {
			fatal(err)
		}
		if err := experiments.WriteTable(os.Stdout, s); err != nil {
			fatal(err)
		}
		if csv != nil {
			if err := experiments.WriteCSV(csv, s); err != nil {
				fatal(err)
			}
		}
		if name == "fig7" {
			reds := experiments.Reductions(s)
			fmt.Println("\nServerless vs local containers (Kn10wNoPM vs LC10wNoPM):")
			fmt.Printf("%-12s %6s %6s %10s %10s %8s %8s\n",
				"workflow", "tasks", "group", "time_ratio", "pwr_ratio", "cpu_red%", "mem_red%")
			for _, r := range reds {
				fmt.Printf("%-12s %6d %6d %10.2f %10.2f %8.2f %8.2f\n",
					r.Recipe, r.Size, r.Group, r.TimeRatio, r.PowerRatio, r.CPUPct, r.MemPct)
			}
			cpu, mem := experiments.MaxReductions(reds)
			fmt.Printf("\nHeadline: serverless reduces CPU usage by up to %.2f%% and memory usage by up to %.2f%%\n", cpu, mem)
			fmt.Println("(paper: 78.11% and 73.92%)")
		}
		fmt.Println()
	}

	switch *suite {
	case "concurrent":
		runConcurrent(ctx, sz, *seed, tn)
	case "resilience":
		runResilience(ctx, *small, *seed, *timeScale, *faultError, *faultReject, *faultLatMS, *faultSeed, *traceSample, *traceDir, batching, *memoize)
	case "design":
		printDesign()
	case "table2":
		printTable2()
	case "fig3":
		printFig3(*large, *seed)
	case "fig4":
		runSuite("fig4", experiments.Figure4)
	case "fig5":
		runSuite("fig5", experiments.Figure5)
	case "fig6":
		runSuite("fig6", experiments.Figure6)
	case "fig7":
		runSuite("fig7", experiments.Figure7)
	case "health":
		runHealth(ctx, *healthTasks, *seed, time.Duration(*healthDelayMS*float64(time.Millisecond)))
	case "recovery":
		runRecovery(ctx, *recoveryTasks, *recoveryTrials, *seed, *timeScale, batching, *memoize)
	case "memo":
		runMemo(ctx, *memoTasks, *memoEdits, *seed, *timeScale, batching)
	case "service":
		runService(ctx, *serviceRuns, *serviceTasks, *serviceSlots)
	case "scale":
		runScale(ctx, experiments.ScaleConfig{
			Tasks:       *scaleTasks,
			Shape:       *scaleShape,
			Width:       *scaleWidth,
			Scheduling:  mode,
			MaxParallel: *scaleParallel,
			Seed:        *seed,
			Batching:    batching,
			TraceSample: *traceSample,
		}, *traceDir)
	case "all":
		printDesign()
		printTable2()
		printFig3(*large, *seed)
		runSuite("fig4", experiments.Figure4)
		runSuite("fig5", experiments.Figure5)
		runSuite("fig6", experiments.Figure6)
		runSuite("fig7", experiments.Figure7)
	default:
		fatal(fmt.Errorf("unknown suite %q", *suite))
	}
}

// runScale executes one synthetic large-workflow campaign and prints a
// single result row; pair with -cpuprofile/-memprofile to see where the
// hot path spends its time at 100k tasks.
func runScale(ctx context.Context, cfg experiments.ScaleConfig, traceDir string) {
	fmt.Printf("== Scale: %d-task %s workflow, %s scheduling ==\n",
		cfg.Tasks, shapeName(cfg.Shape), cfg.Scheduling)
	res, err := experiments.Scale(ctx, cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%-10s %10s %10s %12s %12s %10s %10s\n",
		"shape", "tasks", "edges", "build_ms", "run_ms", "tasks/s", "peak_rss")
	fmt.Printf("%-10s %10d %10d %12.1f %12.1f %10.0f %10s\n",
		shapeName(res.Shape), res.Tasks, res.Edges,
		float64(res.BuildWall.Microseconds())/1e3,
		float64(res.RunWall.Microseconds())/1e3,
		res.TasksPerSec, formatBytes(res.PeakRSSBytes))
	if res.Completed != res.Tasks {
		fatal(fmt.Errorf("only %d of %d tasks completed", res.Completed, res.Tasks))
	}
	writeTrace(traceDir, fmt.Sprintf("scale_%s_%d_%s", shapeName(res.Shape), res.Tasks, res.Scheduling), res.Trace)
	fmt.Println()
}

// writeTrace exports one run's spans under the trace directory as both
// Perfetto-loadable Chrome trace JSON and a flat span log. A nil or
// empty trace (tracing off, or the run lost the sampling draw) writes
// nothing.
func writeTrace(dir, name string, tr *wfm.Trace) {
	if tr == nil || len(tr.Spans) == 0 {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fatal(err)
	}
	chromePath := filepath.Join(dir, name+".trace.json")
	f, err := os.Create(chromePath)
	if err != nil {
		fatal(err)
	}
	if err := tr.WriteChromeTrace(f); err != nil {
		f.Close()
		fatal(err)
	}
	f.Close()
	spanPath := filepath.Join(dir, name+".spans.jsonl")
	f, err = os.Create(spanPath)
	if err != nil {
		fatal(err)
	}
	if err := tr.WriteSpanLog(f); err != nil {
		f.Close()
		fatal(err)
	}
	f.Close()
	fmt.Printf("traces: %s %s (%d spans)\n", chromePath, spanPath, len(tr.Spans))
}

func shapeName(s string) string {
	if s == "" {
		return "random"
	}
	return s
}

func formatBytes(n int64) string {
	switch {
	case n <= 0:
		return "n/a"
	case n >= 1<<30:
		return fmt.Sprintf("%.2fGB", float64(n)/float64(1<<30))
	default:
		return fmt.Sprintf("%.1fMB", float64(n)/float64(1<<20))
	}
}

// runRecovery executes the durable-execution campaign: randomized
// kill/resume cycles across both scheduling modes, with and without
// injected faults, asserting the resumed drive state matches an
// uninterrupted reference and no recorded task runs twice.
func runRecovery(ctx context.Context, tasks, trials int, seed int64, timeScale float64, batching wfm.BatchOptions, memoize bool) {
	fmt.Printf("== Recovery: %d-task workflows, %d randomized crash points per cell (memoize=%t) ==\n", tasks, trials, memoize)
	ts, err := experiments.Recovery(ctx, experiments.RecoveryConfig{
		Tasks:     tasks,
		Trials:    trials,
		Seed:      seed,
		TimeScale: timeScale / 10, // recovery cells run 4x2 full workflows; keep the campaign snappy
		Batching:  batching,
		Memoize:   memoize,
	})
	if err != nil {
		fatal(err)
	}
	if err := experiments.WriteRecoveryTable(os.Stdout, ts); err != nil {
		fatal(err)
	}
	bad := 0
	for _, t := range ts {
		if !t.DriveMatch || t.DuplicateInvocations != 0 {
			bad++
		}
	}
	if bad > 0 {
		fatal(fmt.Errorf("%d of %d recovery trials violated durable-execution invariants", bad, len(ts)))
	}
	fmt.Printf("\nAll %d trials converged to the reference drive state with zero duplicate invocations.\n\n", len(ts))
}

// runService executes the multi-run control plane's acceptance
// campaign — wfmd driven over HTTP through three phases (fair-share
// under saturation, honest backpressure, daemon crash + restart) —
// and fails hard if any gate is violated.
func runService(ctx context.Context, runs, tasks, slots int) {
	fmt.Printf("== Service: wfmd control plane, %d runs/tenant x %d tasks, %d task slots ==\n", runs, tasks, slots)
	rep, err := experiments.Service(ctx, experiments.ServiceConfig{
		RunsPerTenant: runs,
		TasksPerRun:   tasks,
		TaskSlots:     slots,
	})
	if err != nil {
		fatal(err)
	}
	if err := experiments.WriteServiceReport(os.Stdout, rep); err != nil {
		fatal(err)
	}
	if !rep.Gates() {
		fatal(fmt.Errorf("service campaign violated its acceptance gates"))
	}
	fmt.Println("\nAll service gates held: quotas, fair-share ratio, backpressure, crash recovery.")
	fmt.Println()
}

// runConcurrent contrasts serverless vs local containers when several
// workflows are submitted at once (Section VII).
func runConcurrent(ctx context.Context, sz experiments.Sizes, seed int64, tn experiments.Tunables) {
	var wfs []*wfformat.Workflow
	for _, recipe := range []string{"blast", "seismology", "srasearch"} {
		w, err := wfgen.Generate(wfgen.Spec{Recipe: recipe, NumTasks: sz.Small, Seed: seed})
		if err != nil {
			fatal(err)
		}
		wfs = append(wfs, w)
	}
	fmt.Println("== Concurrent workflows (3 group-1 workflows submitted at once) ==")
	fmt.Printf("%-12s %10s %12s %11s %9s %9s\n",
		"paradigm", "makespan_s", "sum_solo_s", "interleave", "cpu_cores", "mem_GB")
	for _, id := range []experiments.Paradigm{experiments.Kn10wNoPM, experiments.LC10wNoPM} {
		spec, err := experiments.ByID(id)
		if err != nil {
			fatal(err)
		}
		m, err := experiments.RunConcurrent(ctx, spec, wfs, tn)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%-12s %10.1f %12.1f %11.2f %9.1f %9.2f\n",
			m.Paradigm, m.MakespanS, m.SumSoloS, m.Interleave, m.MeanCPUCores, m.MeanMemGB)
	}
	fmt.Println()
}

// runResilience executes the flaky-endpoint experiment: a workflow
// against a fault-injecting WfBench service, with retries, backoff, and
// the circuit breaker absorbing the chaos, in both scheduling modes.
// runHealth executes the straggler campaign: each scheduling mode runs
// the workflow with the run-health plane off (the injected tail waited
// out) and on (stragglers flagged, speculative backups raced), and the
// table reports the makespan cut plus detection completeness. A
// non-zero "missing" column or a duplicate journal record is a hard
// failure — the campaign doubles as the CI health-smoke gate.
func runHealth(ctx context.Context, size int, seed int64, delay time.Duration) {
	cfg := experiments.HealthConfig{NumTasks: size, Seed: seed, Latency: delay}
	fmt.Printf("== Health: blast-%d straggler campaign (injected tail %v, speculation on vs off) ==\n", size, delay)
	ms, err := experiments.HealthCampaign(ctx, cfg)
	if err != nil {
		fatal(err)
	}
	if err := experiments.WriteHealthTable(os.Stdout, ms); err != nil {
		fatal(err)
	}
	for i := range ms {
		m := &ms[i]
		if missing := m.Missing(); len(missing) > 0 {
			fatal(fmt.Errorf("health %s: injected stragglers never flagged: %v", m.Scheduling, missing))
		}
		if m.TerminalRecords != m.Tasks || m.JournalCompleted != m.Tasks {
			fatal(fmt.Errorf("health %s: journal has %d terminal records for %d tasks (duplicate completion?)",
				m.Scheduling, m.TerminalRecords, m.Tasks))
		}
		if m.ImprovementPct < 25 {
			fatal(fmt.Errorf("health %s: speculation cut makespan by only %.1f%% (%v -> %v), want >= 25%%",
				m.Scheduling, m.ImprovementPct, m.BaselineWall, m.HealthWall))
		}
	}
	fmt.Println()
}

func runResilience(ctx context.Context, size int, seed int64, timeScale, errorRate, rejectRate, latencyMS float64, faultSeed int64, traceSample float64, traceDir string, batching wfm.BatchOptions, memoize bool) {
	cfg := experiments.ResilienceConfig{
		Recipe:      "blast",
		NumTasks:    size,
		Seed:        seed,
		TimeScale:   timeScale,
		Batching:    batching,
		TraceSample: traceSample,
		Memoize:     memoize,
		Profile: wfbench.FaultProfile{
			ErrorRate:     errorRate,
			RejectRate:    rejectRate,
			RetryAfter:    0.25 * timeScale,
			LatencyRate:   0.2,
			Latency:       time.Duration(latencyMS * float64(time.Millisecond)),
			LatencyJitter: time.Duration(latencyMS * float64(time.Millisecond)),
			Seed:          faultSeed,
		},
		Breaker: experiments.DefaultResilienceBreaker(),
	}
	fmt.Printf("== Resilience: %s-%d through a faulty endpoint (error %.2f, reject %.2f, latency %.0fms) ==\n",
		cfg.Recipe, size, errorRate, rejectRate, latencyMS)
	ms, err := experiments.Resilience(ctx, cfg)
	if err != nil {
		fatal(err)
	}
	if err := experiments.WriteResilienceTable(os.Stdout, ms); err != nil {
		fatal(err)
	}
	for _, m := range ms {
		writeTrace(traceDir, fmt.Sprintf("resilience_%s_%d_%s", cfg.Recipe, size, m.Scheduling), m.Trace)
		if memoize {
			fmt.Printf("memoized re-run (%s): %d hit(s), %d miss(es), wall %v\n",
				m.Scheduling, m.MemoHits, m.MemoMisses, m.MemoWarmWall)
			if m.MemoHits != m.Tasks || m.MemoMisses != 0 {
				fatal(fmt.Errorf("memoized re-run was not fully served from cache (%d/%d hits)", m.MemoHits, m.Tasks))
			}
		}
	}
	fmt.Println()
}

// runMemo executes the incremental re-execution campaign: cold run,
// unchanged re-run, 1-task edit, and k-task edit over one persistent
// drive and memo cache, in both scheduling modes, asserting the exact
// edit-closure and drive-convergence invariants on every variant.
func runMemo(ctx context.Context, tasks, edits int, seed int64, timeScale float64, batching wfm.BatchOptions) {
	fmt.Printf("== Memoization: %d-task workflow, cold / rerun / edit1 / edit%d ==\n", tasks, edits)
	ms, err := experiments.Memo(ctx, experiments.MemoConfig{
		Tasks:     tasks,
		EditTasks: edits,
		Seed:      seed,
		TimeScale: timeScale / 10, // the campaign runs 4 variants + references per mode
		Batching:  batching,
	})
	if err != nil {
		fatal(err)
	}
	if err := experiments.WriteMemoTable(os.Stdout, ms); err != nil {
		fatal(err)
	}
	bad := 0
	for _, m := range ms {
		if !m.Exact || !m.DriveMatch {
			bad++
		}
	}
	if bad > 0 {
		fatal(fmt.Errorf("%d of %d memo variants violated incremental re-execution invariants", bad, len(ms)))
	}
	fmt.Printf("\nAll %d variants re-invoked exactly the edit closure and converged to the reference drive state.\n\n", len(ms))
}

func printDesign() {
	d := experiments.Design(recipes.Names())
	fine, coarse := 0, 0
	for _, e := range d {
		if e.Granularity == "fine" {
			fine++
		} else {
			coarse++
		}
	}
	fmt.Println("== Table I: experiment design ==")
	fmt.Printf("fine-grained:   %d experiments (7 paradigms x 7 workflows x 2 sizes)\n", fine)
	fmt.Printf("coarse-grained: %d experiments (2 paradigms x 7 workflows x 3 sizes)\n", coarse)
	fmt.Printf("total:          %d experiments\n\n", len(d))
}

func printTable2() {
	fmt.Println("== Table II: computational paradigms ==")
	for _, s := range experiments.All() {
		fmt.Printf("%-14s %s\n", s.ID, s.Description)
	}
	fmt.Println()
}

func printFig3(size int, seed int64) {
	chars, err := experiments.Figure3(size, seed)
	if err != nil {
		fatal(err)
	}
	if err := experiments.WriteCharacterization(os.Stdout, chars); err != nil {
		fatal(err)
	}
	fmt.Println()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
