// Command characterize prints the paper's Figure 3 workflow
// characterization — DAG structure, functions per phase, and functions
// per type — for the seven recipes, plus an ASCII rendering of each
// workflow's phase profile.
//
// Example:
//
//	characterize -tasks 250
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"

	"wfserverless/internal/experiments"
	"wfserverless/internal/recipes"
)

// writeDOTs renders each recipe's DAG at the given size as Graphviz.
func writeDOTs(dir string, tasks int, seed int64) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, r := range recipes.All() {
		n := tasks
		if n < r.MinTasks() {
			n = r.MinTasks()
		}
		w, err := r.Generate(n, rand.New(rand.NewSource(seed)))
		if err != nil {
			return err
		}
		path := filepath.Join(dir, r.Name()+".dot")
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := w.ToDOT(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", path)
	}
	return nil
}

func main() {
	var (
		tasks  = flag.Int("tasks", 100, "workflow size to characterize")
		seed   = flag.Int64("seed", 1, "generation seed")
		bars   = flag.Bool("bars", true, "render phase-density bars")
		dotDir = flag.String("dot", "", "also write Graphviz .dot files (Figure 3 DAG panels) to this directory")
	)
	flag.Parse()

	chars, err := experiments.Figure3(*tasks, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "characterize:", err)
		os.Exit(1)
	}
	if *dotDir != "" {
		if err := writeDOTs(*dotDir, *tasks, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "characterize:", err)
			os.Exit(1)
		}
	}
	if err := experiments.WriteCharacterization(os.Stdout, chars); err != nil {
		fmt.Fprintln(os.Stderr, "characterize:", err)
		os.Exit(1)
	}
	if !*bars {
		return
	}
	fmt.Println()
	for _, c := range chars {
		fmt.Printf("%s (group %d) — functions per phase:\n", c.Display, c.Group)
		max := 1
		for _, w := range c.PhaseWidths {
			if w > max {
				max = w
			}
		}
		for i, w := range c.PhaseWidths {
			barLen := w * 50 / max
			if barLen == 0 && w > 0 {
				barLen = 1
			}
			fmt.Printf("  phase %-3d |%-50s| %d\n", i, strings.Repeat("#", barLen), w)
		}
		fmt.Println()
	}
}
