package main

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"wfserverless/internal/health"
	"wfserverless/internal/obs"
)

// fixtureRecords builds a small two-endpoint run: endpoint A fast,
// endpoint B slow by the given factor, with one retry and one cold
// start on B.
func fixtureRecords(slowdown float64) []obs.Record {
	mk := func(name, layer, id, parent string, start, dur float64, attrs map[string]any) obs.Record {
		return obs.Record{Name: name, Layer: layer, TraceID: "t1", SpanID: id,
			Parent: parent, StartMS: start, DurMS: dur, Attrs: attrs}
	}
	recs := []obs.Record{
		mk("workflow:demo", obs.LayerWFM, "root", "", 0, 100*slowdown, nil),
	}
	for i, ep := range []string{"http://a/wfbench", "http://b/wfbench"} {
		dur := 10.0
		attrs := map[string]any{"endpoint": ep, "attempt": float64(1)}
		if i == 1 {
			dur = 40 * slowdown
			attrs["cold_start"] = "true"
		}
		recs = append(recs,
			mk("invoke", obs.LayerWFM, ep+"-1", "root", 5, dur, attrs),
			mk("invoke", obs.LayerWFM, ep+"-2", "root", 20, dur, attrs),
		)
	}
	// One retry attempt on endpoint B.
	recs = append(recs, mk("invoke", obs.LayerWFM, "b-retry", "root", 60, 40*slowdown,
		map[string]any{"endpoint": "http://b/wfbench", "attempt": float64(2)}))
	return recs
}

func writeSpanLog(t *testing.T, path string, recs []obs.Record, compress bool) {
	t.Helper()
	var buf bytes.Buffer
	if err := obs.WriteJSONL(&buf, recs); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if compress {
		var gz bytes.Buffer
		zw := gzip.NewWriter(&gz)
		if _, err := zw.Write(data); err != nil {
			t.Fatal(err)
		}
		if err := zw.Close(); err != nil {
			t.Fatal(err)
		}
		data = gz.Bytes()
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestSpanLogGzipRoundTrip pins transparent decompression: a gzipped
// span log loads identically to its plain twin.
func TestSpanLogGzipRoundTrip(t *testing.T) {
	dir := t.TempDir()
	recs := fixtureRecords(1)
	plain := filepath.Join(dir, "run.spans.jsonl")
	zipped := filepath.Join(dir, "run.spans.jsonl.gz")
	writeSpanLog(t, plain, recs, false)
	writeSpanLog(t, zipped, recs, true)

	got, kind, err := readSpanRecords(plain)
	if err != nil {
		t.Fatal(err)
	}
	gotZ, kindZ, err := readSpanRecords(zipped)
	if err != nil {
		t.Fatal(err)
	}
	if kind != "span log" || kindZ != "span log" {
		t.Fatalf("kinds = %q, %q", kind, kindZ)
	}
	if len(got) != len(recs) || len(gotZ) != len(recs) {
		t.Fatalf("lengths: plain %d gz %d want %d", len(got), len(gotZ), len(recs))
	}
	for i := range got {
		if got[i].SpanID != gotZ[i].SpanID || got[i].DurMS != gotZ[i].DurMS {
			t.Fatalf("record %d differs: %+v vs %+v", i, got[i], gotZ[i])
		}
	}
}

// TestRunDiffPinpointsSlowEndpoint is the acceptance scenario for
// cross-run diffing: the new run doubles endpoint B's latency, and the
// diff must name B first with the p95 shift, in both text and JSON.
func TestRunDiffPinpointsSlowEndpoint(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.jsonl")
	newPath := filepath.Join(dir, "new.jsonl.gz")
	writeSpanLog(t, oldPath, fixtureRecords(1), false)
	writeSpanLog(t, newPath, fixtureRecords(2), true) // 2x slowdown on B, gzipped

	var text bytes.Buffer
	if err := runDiff(&text, oldPath, newPath, false); err != nil {
		t.Fatal(err)
	}
	out := text.String()
	// Worst shift first: endpoint B before endpoint A.
	bi := strings.Index(out, "http://b/wfbench")
	ai := strings.Index(out, "http://a/wfbench")
	if bi < 0 || ai < 0 || bi > ai {
		t.Fatalf("slow endpoint not ranked first:\n%s", out)
	}
	for _, want := range []string{
		"p95 40.0 -> 80.0ms (+100.0%)",
		"makespan: 100.0ms -> 200.0ms (+100.0%)",
		"critical path:",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("text diff missing %q:\n%s", want, out)
		}
	}

	var js bytes.Buffer
	if err := runDiff(&js, oldPath, newPath, true); err != nil {
		t.Fatal(err)
	}
	var d health.Diff
	if err := json.Unmarshal(js.Bytes(), &d); err != nil {
		t.Fatalf("JSON mode not machine readable: %v\n%s", err, js.String())
	}
	if len(d.Endpoints) != 2 || d.Endpoints[0].Endpoint != "http://b/wfbench" {
		t.Fatalf("JSON endpoints: %+v", d.Endpoints)
	}
	if got := d.Endpoints[0].P95DeltaPct; got < 99 || got > 101 {
		t.Fatalf("p95 delta = %g, want ~100", got)
	}
	if d.MakespanDeltaPct < 99 || d.MakespanDeltaPct > 101 {
		t.Fatalf("makespan delta = %g", d.MakespanDeltaPct)
	}
	if d.CriticalDeltaMS <= 0 {
		t.Fatalf("critical path delta = %g, want positive", d.CriticalDeltaMS)
	}
}

// TestRunDiffChromeTraceInput: -diff accepts the Chrome trace-event
// format on either side, not just JSONL.
func TestRunDiffChromeTraceInput(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.trace.json")
	newPath := filepath.Join(dir, "new.jsonl")
	var chrome bytes.Buffer
	if err := obs.WriteChromeTrace(&chrome, fixtureRecords(1)); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(oldPath, chrome.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	writeSpanLog(t, newPath, fixtureRecords(1), false)

	var out bytes.Buffer
	if err := runDiff(&out, oldPath, newPath, false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "http://b/wfbench") {
		t.Fatalf("chrome-trace side not profiled:\n%s", out.String())
	}
}
