// Command analyze renders campaign CSVs (from cmd/experiments -csv) as
// the grouped-bar views behind the paper's Figures 4-7 — the equivalent
// of running the artifact's Jupyter notebooks.
//
// Examples:
//
//	analyze -csv results/campaign.csv
//	analyze -csv results/campaign.csv -figure Figure7 -metric mean_cpu_cores
//	analyze -trace results/run.trace.json
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"wfserverless/internal/analysis"
	"wfserverless/internal/metrics"
	"wfserverless/internal/obs"
	"wfserverless/internal/wfm"
)

func main() {
	var (
		csvPath   = flag.String("csv", "results/campaign.csv", "campaign CSV from cmd/experiments")
		figure    = flag.String("figure", "", "figure to render (default: all present)")
		metric    = flag.String("metric", "", "metric to render (default: all of "+fmt.Sprint(analysis.Metrics)+")")
		ganttPath = flag.String("gantt", "", "render an execution trace (from wfm -trace) as a Gantt chart instead")
		spanPath  = flag.String("trace", "", "summarize a span trace (Chrome trace JSON, span JSONL, or wfm trace JSON) instead")
	)
	flag.Parse()

	if *spanPath != "" {
		runTraceSummary(*spanPath)
		return
	}

	if *ganttPath != "" {
		f, err := os.Open(*ganttPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		tr, err := wfm.ParseTrace(f)
		if err != nil {
			fatal(err)
		}
		if err := analysis.RenderGantt(os.Stdout, tr, 60); err != nil {
			fatal(err)
		}
		return
	}

	f, err := os.Open(*csvPath)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	recs, err := analysis.ParseCSV(f)
	if err != nil {
		fatal(err)
	}
	if len(recs) == 0 {
		fatal(fmt.Errorf("no records in %s", *csvPath))
	}

	figures := analysis.Figures(recs)
	if *figure != "" {
		figures = []string{*figure}
	}
	metrics := analysis.Metrics
	if *metric != "" {
		metrics = []string{*metric}
	}

	for _, fig := range figures {
		for _, m := range metrics {
			if err := analysis.RenderFigure(os.Stdout, recs, fig, m); err != nil {
				fatal(err)
			}
			fmt.Println()
		}
		agg, err := analysis.Aggregate(analysis.Filter(recs, fig), "mean_cpu_cores")
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s per-paradigm mean CPU cores:\n", fig)
		names := make([]string, 0, len(agg))
		for p := range agg {
			names = append(names, p)
		}
		sort.Strings(names)
		for _, p := range names {
			fmt.Printf("  %-14s %8.2f\n", p, agg[p])
		}
		fmt.Println()
	}
}

// loadSpanRecords reads a span file in any of the three formats the
// tooling writes, sniffing by structure: Chrome trace-event JSON (the
// object form with a traceEvents array), wfm trace JSON (cmd/wfm
// -trace, which embeds spans when tracing was on), or flat span JSONL.
// The returned *wfm.Trace is non-nil only for the wfm format.
func loadSpanRecords(path string) ([]obs.Record, string, *wfm.Trace) {
	data, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	var probe map[string]json.RawMessage
	if json.Unmarshal(data, &probe) == nil {
		if _, ok := probe["traceEvents"]; ok {
			recs, err := obs.ParseChromeTrace(bytes.NewReader(data))
			if err != nil {
				fatal(err)
			}
			return recs, "chrome trace", nil
		}
		if _, ok := probe["workflow"]; ok {
			tr, err := wfm.ParseTrace(bytes.NewReader(data))
			if err != nil {
				fatal(err)
			}
			return tr.Spans, "wfm trace", tr
		}
	}
	recs, err := obs.ReadJSONL(bytes.NewReader(data))
	if err != nil {
		fatal(fmt.Errorf("%s: not chrome trace JSON, wfm trace JSON, or span JSONL: %w", path, err))
	}
	return recs, "span log", nil
}

// runTraceSummary prints what a collected trace says about a run: span
// volume per layer, latency percentiles per span name, and the critical
// path that explains the makespan.
func runTraceSummary(path string) {
	recs, kind, tr := loadSpanRecords(path)
	fmt.Printf("trace:      %s (%s, %d spans)\n", path, kind, len(recs))
	if tr != nil {
		fmt.Printf("workflow:   %s (%s schedule, makespan %.2f s)\n", tr.Workflow, tr.Scheduling, tr.Makespan)
		if tr.TraceID != "" {
			fmt.Printf("trace id:   %s\n", tr.TraceID)
		}
	}
	if len(recs) == 0 {
		if tr != nil {
			fmt.Println("no spans embedded; rerun cmd/wfm with -sample or a trace output flag")
		}
		return
	}

	layers := map[string]int{}
	byName := map[string]*metrics.Series{}
	for _, r := range recs {
		layers[r.Layer]++
		// WFM task spans carry the task's own name; bucket them so a
		// 100k-task trace still summarizes to a handful of rows.
		key := r.Name
		if r.Layer == obs.LayerWFM {
			switch {
			case strings.HasPrefix(r.Name, "workflow:"):
				key = "workflow"
			case r.Name != "invoke" && r.Name != "warm":
				key = "task"
			}
		}
		s := byName[key]
		if s == nil {
			s = &metrics.Series{}
			byName[key] = s
		}
		s.Values = append(s.Values, r.DurMS)
	}
	fmt.Printf("layers:    ")
	for _, layer := range []string{obs.LayerWFM, obs.LayerPlatform, obs.LayerWfbench} {
		if n := layers[layer]; n > 0 {
			fmt.Printf(" %s=%d", layer, n)
			delete(layers, layer)
		}
	}
	for layer, n := range layers {
		fmt.Printf(" %s=%d", layer, n)
	}
	fmt.Println()

	names := make([]string, 0, len(byName))
	for n := range byName {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Printf("\n%-24s %7s %10s %10s %10s %10s\n", "span", "count", "mean_ms", "p50_ms", "p95_ms", "p99_ms")
	for _, n := range names {
		s := byName[n]
		fmt.Printf("%-24s %7d %10.3f %10.3f %10.3f %10.3f\n",
			n, s.Len(), s.Mean(), s.Percentile(50), s.Percentile(95), s.Percentile(99))
	}

	fmt.Println("\ncritical path (latest-ending root to leaf):")
	for _, r := range obs.CriticalPath(recs) {
		fmt.Printf("  %-10s %-24s %10.3f ms at %.3f ms\n", r.Layer, r.Name, r.DurMS, r.StartMS)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "analyze:", err)
	os.Exit(1)
}
