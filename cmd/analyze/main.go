// Command analyze renders campaign CSVs (from cmd/experiments -csv) as
// the grouped-bar views behind the paper's Figures 4-7 — the equivalent
// of running the artifact's Jupyter notebooks.
//
// Examples:
//
//	analyze -csv results/campaign.csv
//	analyze -csv results/campaign.csv -figure Figure7 -metric mean_cpu_cores
//	analyze -trace results/run.trace.json
//	analyze -journal ./run-journal
//	analyze -journal /var/lib/wfmd        (wfmd data dir: one table of all runs)
//	analyze -diff baseline.spans.jsonl current.spans.jsonl
//	analyze -diff -json old.spans.jsonl.gz new.spans.jsonl.gz
package main

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"wfserverless/internal/analysis"
	"wfserverless/internal/health"
	"wfserverless/internal/metrics"
	"wfserverless/internal/obs"
	"wfserverless/internal/wfm"
	"wfserverless/internal/wfmd"
)

func main() {
	var (
		csvPath   = flag.String("csv", "results/campaign.csv", "campaign CSV from cmd/experiments")
		figure    = flag.String("figure", "", "figure to render (default: all present)")
		metric    = flag.String("metric", "", "metric to render (default: all of "+fmt.Sprint(analysis.Metrics)+")")
		ganttPath = flag.String("gantt", "", "render an execution trace (from wfm -trace) as a Gantt chart instead")
		spanPath  = flag.String("trace", "", "summarize a span trace (Chrome trace JSON, span JSONL, or wfm trace JSON) instead")
		jrnlPath  = flag.String("journal", "", "summarize a durable run journal (from wfm -journal), or a wfmd data dir as one all-runs table, instead")
		diffMode  = flag.Bool("diff", false, "compare two span logs: analyze -diff OLD NEW reports per-endpoint latency shifts and critical-path change")
		jsonOut   = flag.Bool("json", false, "with -diff: emit one machine-readable JSON document instead of text")
	)
	flag.Parse()

	if *diffMode {
		if flag.NArg() != 2 {
			fatal(fmt.Errorf("-diff needs exactly two span logs: analyze -diff OLD NEW"))
		}
		if err := runDiff(os.Stdout, flag.Arg(0), flag.Arg(1), *jsonOut); err != nil {
			fatal(err)
		}
		return
	}

	if *jrnlPath != "" {
		runJournalSummary(*jrnlPath)
		return
	}

	if *spanPath != "" {
		runTraceSummary(*spanPath)
		return
	}

	if *ganttPath != "" {
		f, err := os.Open(*ganttPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		tr, err := wfm.ParseTrace(f)
		if err != nil {
			fatal(err)
		}
		if err := analysis.RenderGantt(os.Stdout, tr, 60); err != nil {
			fatal(err)
		}
		return
	}

	f, err := os.Open(*csvPath)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	recs, err := analysis.ParseCSV(f)
	if err != nil {
		fatal(err)
	}
	if len(recs) == 0 {
		fatal(fmt.Errorf("no records in %s", *csvPath))
	}

	figures := analysis.Figures(recs)
	if *figure != "" {
		figures = []string{*figure}
	}
	metrics := analysis.Metrics
	if *metric != "" {
		metrics = []string{*metric}
	}

	for _, fig := range figures {
		for _, m := range metrics {
			if err := analysis.RenderFigure(os.Stdout, recs, fig, m); err != nil {
				fatal(err)
			}
			fmt.Println()
		}
		agg, err := analysis.Aggregate(analysis.Filter(recs, fig), "mean_cpu_cores")
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s per-paradigm mean CPU cores:\n", fig)
		names := make([]string, 0, len(agg))
		for p := range agg {
			names = append(names, p)
		}
		sort.Strings(names)
		for _, p := range names {
			fmt.Printf("  %-14s %8.2f\n", p, agg[p])
		}
		fmt.Println()
	}
}

// runDiff compares two recorded runs (pillar of the run-health plane):
// it profiles each span log, then reports per-endpoint p50/p95/p99
// shifts worst-first, retry/cold-start deltas, and how the critical
// path's composition moved between the runs.
func runDiff(w io.Writer, oldPath, newPath string, jsonMode bool) error {
	oldRecs, _, err := readSpanRecords(oldPath)
	if err != nil {
		return err
	}
	newRecs, _, err := readSpanRecords(newPath)
	if err != nil {
		return err
	}
	d := health.DiffProfiles(health.ProfileRecords(oldRecs), health.ProfileRecords(newRecs))
	if jsonMode {
		return d.WriteJSON(w)
	}
	return d.WriteText(w)
}

// loadSpanRecords reads a span file in any of the three formats the
// tooling writes, sniffing by structure: Chrome trace-event JSON (the
// object form with a traceEvents array), wfm trace JSON (cmd/wfm
// -trace, which embeds spans when tracing was on), or flat span JSONL.
// Gzip-compressed inputs (sniffed by magic bytes, as produced by
// `gzip run.spans.jsonl` on a long campaign's logs) are decompressed
// transparently. The returned *wfm.Trace is non-nil only for the wfm
// format.
func loadSpanRecords(path string) ([]obs.Record, string, *wfm.Trace) {
	recs, kind, tr, err := readSpanRecordsKind(path)
	if err != nil {
		fatal(err)
	}
	return recs, kind, tr
}

func readSpanRecords(path string) ([]obs.Record, string, error) {
	recs, kind, _, err := readSpanRecordsKind(path)
	return recs, kind, err
}

func readSpanRecordsKind(path string) ([]obs.Record, string, *wfm.Trace, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, "", nil, err
	}
	if len(data) >= 2 && data[0] == 0x1f && data[1] == 0x8b {
		zr, err := gzip.NewReader(bytes.NewReader(data))
		if err != nil {
			return nil, "", nil, fmt.Errorf("%s: gzip: %w", path, err)
		}
		if data, err = io.ReadAll(zr); err != nil {
			return nil, "", nil, fmt.Errorf("%s: gzip: %w", path, err)
		}
		if err := zr.Close(); err != nil {
			return nil, "", nil, fmt.Errorf("%s: gzip: %w", path, err)
		}
	}
	var probe map[string]json.RawMessage
	if json.Unmarshal(data, &probe) == nil {
		if _, ok := probe["traceEvents"]; ok {
			recs, err := obs.ParseChromeTrace(bytes.NewReader(data))
			if err != nil {
				return nil, "", nil, err
			}
			return recs, "chrome trace", nil, nil
		}
		if _, ok := probe["workflow"]; ok {
			tr, err := wfm.ParseTrace(bytes.NewReader(data))
			if err != nil {
				return nil, "", nil, err
			}
			return tr.Spans, "wfm trace", tr, nil
		}
	}
	recs, err := obs.ReadJSONL(bytes.NewReader(data))
	if err != nil {
		return nil, "", nil, fmt.Errorf("%s: not chrome trace JSON, wfm trace JSON, or span JSONL: %w", path, err)
	}
	return recs, "span log", nil, nil
}

// runTraceSummary prints what a collected trace says about a run: span
// volume per layer, latency percentiles per span name, and the critical
// path that explains the makespan.
// runJournalSummary decodes a durable run journal and prints the
// post-mortem view: what ran, what completed, how many attempts each
// task took, and what every crash/resume cycle recovered. Pointed at a
// wfmd data dir (or its runs/ subdirectory) instead, it prints one
// table covering every run the service has recorded.
func runJournalSummary(path string) {
	if root := wfmd.RunsRoot(path); root != "" {
		runServiceSummary(root)
		return
	}
	s, err := wfm.ReadRunJournal(path)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("== Run journal: %s ==\n", path)
	if h := s.Header; h != nil {
		fmt.Printf("workflow:     %s (%d tasks, %s scheduling)\n", h.Workflow, h.TaskCount, h.Scheduling)
		fmt.Printf("fingerprint:  %s\n", h.Fingerprint)
		fmt.Printf("options hash: %016x\n", h.OptionsHash)
	} else {
		fmt.Println("workflow:     (no run header — empty or foreign journal)")
	}
	fmt.Printf("segments:     %d", s.Segments)
	if s.Torn {
		fmt.Printf("  (torn tail: writer died mid-append)")
	}
	fmt.Println()

	fmt.Println("\nevents:")
	kinds := make([]string, 0, len(s.EventCounts))
	for k := range s.EventCounts {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		fmt.Printf("  %-16s %d\n", k, s.EventCounts[k])
	}

	attempts := 0
	retried := 0
	for _, n := range s.Attempts {
		attempts += n
		if n > 1 {
			retried++
		}
	}
	fmt.Printf("\ntasks:        %d started, %d completed, %d failed (%d skipped)\n",
		len(s.Attempts), s.CompletedTasks, s.FailedTasks, s.SkippedTasks)
	fmt.Printf("attempts:     %d total, %d task(s) ran more than once\n", attempts, retried)
	if s.MemoizedTasks > 0 {
		executed := s.CompletedTasks - s.MemoizedTasks
		fmt.Printf("memoized:     %d task(s) served from the memo cache, %d executed, %d re-executed after a hit\n",
			s.MemoizedTasks, executed, s.MemoReexecuted)
		fmt.Printf("              %d output byte(s) skipped (never re-produced)\n", s.MemoSkippedBytes)
	}
	if ids, n := s.MaxAttemptTasks(); n > 1 {
		show := ids
		if len(show) > 8 {
			show = show[:8]
		}
		fmt.Printf("max attempts: %d by task id(s) %v\n", n, show)
	}
	for i, r := range s.Resumes {
		fmt.Printf("resume %d:     %d recorded, %d invocations skipped, %d re-executed\n",
			i+1, r.Recorded, r.Verified, r.Reexecuted)
	}
	for i, e := range s.Ends {
		fmt.Printf("run end %d:    %s (%d failed)\n", i+1, e.Status, e.Failed)
	}
	if len(s.Ends) == 0 {
		fmt.Println("run end:      none recorded — the run is in flight or was killed")
	}
}

// runServiceSummary renders a wfmd data dir as one table of all runs:
// terminal runs from their durable result.json, in-flight or
// interrupted runs from whatever their journal recorded so far.
func runServiceSummary(root string) {
	entries, err := os.ReadDir(root)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("== Service runs: %s ==\n", root)
	fmt.Printf("%-10s %-12s %-8s %-20s %-11s %7s %9s %6s %8s %10s\n",
		"run", "tenant", "priority", "workflow", "state", "tasks", "completed", "memo", "retries", "duration_s")
	shown := 0
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		dir := fmt.Sprintf("%s%c%s", root, os.PathSeparator, e.Name())
		meta, result, err := wfmd.LoadRun(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "analyze: skipping %s: %v\n", dir, err)
			continue
		}
		shown++
		if result != nil {
			fmt.Printf("%-10s %-12s %-8s %-20s %-11s %7d %9d %6d %8d %10.2f\n",
				meta.ID, meta.Tenant, meta.Priority, meta.Workflow, result.State,
				result.Tasks, result.Completed, result.Memoized, result.Retries, result.WallS)
			continue
		}
		// No terminal marker: the run is in flight, queued, or was cut
		// down by a daemon crash — report the journal's view.
		state := "incomplete"
		completed, memoized := 0, 0
		if s, err := wfm.ReadRunJournal(dir + string(os.PathSeparator) + "journal"); err == nil {
			completed = s.CompletedTasks
			memoized = s.MemoizedTasks
		} else {
			state = "queued"
		}
		fmt.Printf("%-10s %-12s %-8s %-20s %-11s %7d %9d %6d %8s %10s\n",
			meta.ID, meta.Tenant, meta.Priority, meta.Workflow, state,
			meta.Tasks, completed, memoized, "-", "-")
	}
	if shown == 0 {
		fmt.Println("(no runs recorded)")
	}
}

func runTraceSummary(path string) {
	recs, kind, tr := loadSpanRecords(path)
	fmt.Printf("trace:      %s (%s, %d spans)\n", path, kind, len(recs))
	if tr != nil {
		fmt.Printf("workflow:   %s (%s schedule, makespan %.2f s)\n", tr.Workflow, tr.Scheduling, tr.Makespan)
		if tr.TraceID != "" {
			fmt.Printf("trace id:   %s\n", tr.TraceID)
		}
	}
	if len(recs) == 0 {
		if tr != nil {
			fmt.Println("no spans embedded; rerun cmd/wfm with -sample or a trace output flag")
		}
		return
	}

	layers := map[string]int{}
	byName := map[string]*metrics.Series{}
	for _, r := range recs {
		layers[r.Layer]++
		// WFM task spans carry the task's own name; bucket them so a
		// 100k-task trace still summarizes to a handful of rows.
		key := r.Name
		if r.Layer == obs.LayerWFM {
			switch {
			case strings.HasPrefix(r.Name, "workflow:"):
				key = "workflow"
			case r.Name != "invoke" && r.Name != "warm":
				key = "task"
			}
		}
		s := byName[key]
		if s == nil {
			s = &metrics.Series{}
			byName[key] = s
		}
		s.Values = append(s.Values, r.DurMS)
	}
	fmt.Printf("layers:    ")
	for _, layer := range []string{obs.LayerWFM, obs.LayerPlatform, obs.LayerWfbench} {
		if n := layers[layer]; n > 0 {
			fmt.Printf(" %s=%d", layer, n)
			delete(layers, layer)
		}
	}
	for layer, n := range layers {
		fmt.Printf(" %s=%d", layer, n)
	}
	fmt.Println()

	names := make([]string, 0, len(byName))
	for n := range byName {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Printf("\n%-24s %7s %10s %10s %10s %10s\n", "span", "count", "mean_ms", "p50_ms", "p95_ms", "p99_ms")
	for _, n := range names {
		s := byName[n]
		fmt.Printf("%-24s %7d %10.3f %10.3f %10.3f %10.3f\n",
			n, s.Len(), s.Mean(), s.Percentile(50), s.Percentile(95), s.Percentile(99))
	}

	fmt.Println("\ncritical path (latest-ending root to leaf):")
	for _, r := range obs.CriticalPath(recs) {
		fmt.Printf("  %-10s %-24s %10.3f ms at %.3f ms\n", r.Layer, r.Name, r.DurMS, r.StartMS)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "analyze:", err)
	os.Exit(1)
}
