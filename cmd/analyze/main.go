// Command analyze renders campaign CSVs (from cmd/experiments -csv) as
// the grouped-bar views behind the paper's Figures 4-7 — the equivalent
// of running the artifact's Jupyter notebooks.
//
// Examples:
//
//	analyze -csv results/campaign.csv
//	analyze -csv results/campaign.csv -figure Figure7 -metric mean_cpu_cores
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"wfserverless/internal/analysis"
	"wfserverless/internal/wfm"
)

func main() {
	var (
		csvPath   = flag.String("csv", "results/campaign.csv", "campaign CSV from cmd/experiments")
		figure    = flag.String("figure", "", "figure to render (default: all present)")
		metric    = flag.String("metric", "", "metric to render (default: all of "+fmt.Sprint(analysis.Metrics)+")")
		ganttPath = flag.String("gantt", "", "render an execution trace (from wfm -trace) as a Gantt chart instead")
	)
	flag.Parse()

	if *ganttPath != "" {
		f, err := os.Open(*ganttPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		tr, err := wfm.ParseTrace(f)
		if err != nil {
			fatal(err)
		}
		if err := analysis.RenderGantt(os.Stdout, tr, 60); err != nil {
			fatal(err)
		}
		return
	}

	f, err := os.Open(*csvPath)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	recs, err := analysis.ParseCSV(f)
	if err != nil {
		fatal(err)
	}
	if len(recs) == 0 {
		fatal(fmt.Errorf("no records in %s", *csvPath))
	}

	figures := analysis.Figures(recs)
	if *figure != "" {
		figures = []string{*figure}
	}
	metrics := analysis.Metrics
	if *metric != "" {
		metrics = []string{*metric}
	}

	for _, fig := range figures {
		for _, m := range metrics {
			if err := analysis.RenderFigure(os.Stdout, recs, fig, m); err != nil {
				fatal(err)
			}
			fmt.Println()
		}
		agg, err := analysis.Aggregate(analysis.Filter(recs, fig), "mean_cpu_cores")
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s per-paradigm mean CPU cores:\n", fig)
		names := make([]string, 0, len(agg))
		for p := range agg {
			names = append(names, p)
		}
		sort.Strings(names)
		for _, p := range names {
			fmt.Printf("  %-14s %8.2f\n", p, agg[p])
		}
		fmt.Println()
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "analyze:", err)
	os.Exit(1)
}
