// Command wfbench-serve runs WfBench as a Service standalone: an HTTP
// server answering POST /wfbench with real CPU/memory/IO stress against
// a disk-backed shared directory — the paper's containerized WfBench
// deployment, minus the container. Pair it with cmd/wfm pointing
// workflows at this address.
//
// Example:
//
//	wfbench-serve -addr :8080 -workers 10 -workdir /mnt/data/shared -burn
//	curl localhost:8080/wfbench -X POST -H 'Content-Type: application/json' \
//	  -d '{"name":"split_fasta_00000001","percent-cpu":0.6,"cpu-work":100,
//	       "out":{"split_fasta_00000001_output.txt":204082},"inputs":[]}'
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"wfserverless/internal/obs"
	"wfserverless/internal/sharedfs"
	"wfserverless/internal/wfbench"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		workers   = flag.Int("workers", 10, "worker pool size (gunicorn --workers)")
		workdir   = flag.String("workdir", "wfbench-data", "shared directory for I/O")
		keepMem   = flag.Bool("keep-mem", false, "persistent memory between invocations (--vm-keep)")
		burn      = flag.Bool("burn", true, "really burn CPU at the duty cycle (false: sleep)")
		timeScale = flag.Float64("time-scale", 1.0, "nominal-second to wall-second factor")
		inputWait = flag.Duration("input-wait", 10*time.Second, "max wait for input files")

		// Fault-injection profile: any non-zero rate wraps the service in
		// a wfbench.Injector — the chaos endpoint for exercising the
		// workflow manager's retries, timeouts, and circuit breaker.
		faultError      = flag.Float64("fault-error-rate", 0, "probability of answering 500 without executing")
		faultReject     = flag.Float64("fault-reject-rate", 0, "probability of answering 429 Too Many Requests")
		faultRetryAfter = flag.Float64("fault-retry-after", 0, "Retry-After hint (seconds) on injected 429s")
		faultLatRate    = flag.Float64("fault-latency-rate", 0, "probability of delaying a request")
		faultLatency    = flag.Duration("fault-latency", 0, "base injected delay")
		faultLatJitter  = flag.Duration("fault-latency-jitter", 0, "uniform extra delay on top of -fault-latency")
		faultHangRate   = flag.Float64("fault-hang-rate", 0, "probability of hanging until the client gives up")
		faultMaxHang    = flag.Duration("fault-max-hang", 0, "upper bound on an injected hang (0: 30s)")
		faultSeed       = flag.Int64("fault-seed", 0, "seed for the fault sequence (0: fixed default)")

		spanLog = flag.String("span-log", "", "record phase spans for requests carrying a Traceparent header; written as JSONL on shutdown")
	)
	flag.Parse()

	drive, err := sharedfs.NewDisk(*workdir)
	if err != nil {
		fatal(err)
	}
	var engine wfbench.Engine = wfbench.SimEngine{}
	if *burn {
		engine = wfbench.BurnEngine{}
	}
	// Tracing here is entirely caller-driven: the tracer only records
	// spans as children of a propagated Traceparent, so the sampling
	// decision stays with the workflow manager that minted the trace.
	var tracer *obs.Tracer
	if *spanLog != "" {
		tracer = obs.NewTracer(obs.Options{SampleRatio: 1})
	}
	bench, err := wfbench.New(wfbench.Config{
		Drive:     drive,
		Engine:    engine,
		TimeScale: *timeScale,
		InputWait: *inputWait,
		KeepMem:   *keepMem,
		Tracer:    tracer,
	})
	if err != nil {
		fatal(err)
	}
	svc, err := wfbench.NewService(bench, *workers)
	if err != nil {
		fatal(err)
	}
	var handler http.Handler = svc
	profile := wfbench.FaultProfile{
		ErrorRate:     *faultError,
		RejectRate:    *faultReject,
		RetryAfter:    *faultRetryAfter,
		LatencyRate:   *faultLatRate,
		Latency:       *faultLatency,
		LatencyJitter: *faultLatJitter,
		HangRate:      *faultHangRate,
		MaxHang:       *faultMaxHang,
		Seed:          *faultSeed,
	}
	if profile.Active() {
		inj, err := wfbench.NewInjector(svc, profile)
		if err != nil {
			fatal(err)
		}
		handler = inj
		log.Printf("wfbench-serve: fault injection on: error=%.2f reject=%.2f (retry-after %gs) latency=%.2f@%v+%v hang=%.2f",
			profile.ErrorRate, profile.RejectRate, profile.RetryAfter,
			profile.LatencyRate, profile.Latency, profile.LatencyJitter, profile.HangRate)
	}
	// The telemetry plane (/metrics, /healthz, /debug/pprof) bypasses the
	// fault injector: an operator watching a chaos run still needs honest
	// metrics and profiles. Only /wfbench and /invoke-batch ride through
	// the faults.
	mux := obs.TelemetryMux(svc.WriteMetrics)
	mux.Handle("/wfbench", handler)
	mux.Handle("/invoke-batch", handler)
	log.Printf("wfbench-serve: listening on %s, %d workers, workdir %s, keep-mem=%v burn=%v (telemetry: /metrics /healthz /debug/pprof)",
		*addr, *workers, drive.Root(), *keepMem, *burn)
	srv := &http.Server{Addr: *addr, Handler: mux}
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		srv.Shutdown(context.Background())
	}()
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fatal(err)
	}
	if tracer != nil {
		recs := obs.RecordsOf(tracer.Take())
		f, err := os.Create(*spanLog)
		if err != nil {
			fatal(err)
		}
		if err := obs.WriteJSONL(f, recs); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		log.Printf("wfbench-serve: wrote %d spans to %s", len(recs), *spanLog)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "wfbench-serve:", err)
	os.Exit(1)
}
