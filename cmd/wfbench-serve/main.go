// Command wfbench-serve runs WfBench as a Service standalone: an HTTP
// server answering POST /wfbench with real CPU/memory/IO stress against
// a disk-backed shared directory — the paper's containerized WfBench
// deployment, minus the container. Pair it with cmd/wfm pointing
// workflows at this address.
//
// Example:
//
//	wfbench-serve -addr :8080 -workers 10 -workdir /mnt/data/shared -burn
//	curl localhost:8080/wfbench -X POST -H 'Content-Type: application/json' \
//	  -d '{"name":"split_fasta_00000001","percent-cpu":0.6,"cpu-work":100,
//	       "out":{"split_fasta_00000001_output.txt":204082},"inputs":[]}'
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"wfserverless/internal/sharedfs"
	"wfserverless/internal/wfbench"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		workers   = flag.Int("workers", 10, "worker pool size (gunicorn --workers)")
		workdir   = flag.String("workdir", "wfbench-data", "shared directory for I/O")
		keepMem   = flag.Bool("keep-mem", false, "persistent memory between invocations (--vm-keep)")
		burn      = flag.Bool("burn", true, "really burn CPU at the duty cycle (false: sleep)")
		timeScale = flag.Float64("time-scale", 1.0, "nominal-second to wall-second factor")
		inputWait = flag.Duration("input-wait", 10*time.Second, "max wait for input files")
	)
	flag.Parse()

	drive, err := sharedfs.NewDisk(*workdir)
	if err != nil {
		fatal(err)
	}
	var engine wfbench.Engine = wfbench.SimEngine{}
	if *burn {
		engine = wfbench.BurnEngine{}
	}
	bench, err := wfbench.New(wfbench.Config{
		Drive:     drive,
		Engine:    engine,
		TimeScale: *timeScale,
		InputWait: *inputWait,
		KeepMem:   *keepMem,
	})
	if err != nil {
		fatal(err)
	}
	svc, err := wfbench.NewService(bench, *workers)
	if err != nil {
		fatal(err)
	}
	log.Printf("wfbench-serve: listening on %s, %d workers, workdir %s, keep-mem=%v burn=%v",
		*addr, *workers, drive.Root(), *keepMem, *burn)
	if err := http.ListenAndServe(*addr, svc); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "wfbench-serve:", err)
	os.Exit(1)
}
