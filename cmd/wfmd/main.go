// wfmd is the long-lived workflow service: it accepts workflow JSON
// over HTTP (POST /v1/runs), executes many concurrent runs against
// shared backends with per-tenant quotas, weighted fair-share task
// dispatch and honest backpressure (429 + Retry-After), and persists
// every run's journal under -data-dir so a restart resumes incomplete
// runs without duplicating completed work.
//
//	wfmd -addr :9433 -data-dir wfmd-data -workdir wfbench-data \
//	     -tenant team-a:3:8 -tenant team-b:1:4
//
// Lifecycle API (see DESIGN.md §12):
//
//	POST /v1/runs?tenant=T&priority=high|normal|low   body: workflow JSON
//	GET  /v1/runs[?tenant=T]
//	GET  /v1/runs/{id}
//	POST /v1/runs/{id}/cancel
//	GET  /v1/runs/{id}/result
//	GET  /metrics · /healthz · /debug/pprof
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"wfserverless/internal/journal"
	"wfserverless/internal/sharedfs"
	"wfserverless/internal/wfm"
	"wfserverless/internal/wfmd"
)

func main() {
	var tenants tenantFlags
	var (
		addr    = flag.String("addr", ":9433", "HTTP listen address")
		dataDir = flag.String("data-dir", "wfmd-data", "service state root: per-run journals, metadata, results")
		workdir = flag.String("workdir", "wfbench-data", "shared drive directory the workflows' tasks stage files on")

		defaultWeight   = flag.Float64("default-weight", 1, "fair-share weight for tenants not named by -tenant")
		defaultMaxRuns  = flag.Int("default-max-runs", 4, "concurrent-run quota for tenants not named by -tenant")
		defaultMaxTasks = flag.Int("default-max-tasks", 0, "in-flight task quota for tenants not named by -tenant (0: uncapped)")
		queueCap        = flag.Int("queue-capacity", 256, "admitted-but-not-running runs held before submissions get 429")
		maxActive       = flag.Int("max-active-runs", 64, "simultaneously executing runs across all tenants")
		taskSlots       = flag.Int("task-slots", 256, "global in-flight task invocation budget shared by all runs")
		retryAfter      = flag.Float64("retry-after", 1, "Retry-After hint on 429 responses, seconds")

		schedule        = flag.String("schedule", "dependency", "per-run scheduling mode: phases or dependency")
		timeScale       = flag.Float64("time-scale", 1.0, "nominal-second to wall-second factor")
		maxPar          = flag.Int("max-parallel", 64, "max simultaneous HTTP invocations per run (the global budget is -task-slots)")
		retries         = flag.Int("retries", 0, "retry transient invocation failures this many times")
		retryBackoff    = flag.Float64("retry-backoff", 0, "base retry backoff, nominal seconds")
		retryBackoffMax = flag.Float64("retry-backoff-max", 0, "backoff ceiling, nominal seconds (0: 30)")
		taskTimeout     = flag.Float64("task-timeout", 0, "whole-task deadline across attempts, nominal seconds (0: none)")
		breakerOn       = flag.Bool("breaker", false, "enable the per-endpoint circuit breaker in every run")

		journalSync    = flag.String("journal-sync", "group", "run journal fsync policy: group, always, never")
		journalGroupMS = flag.Float64("journal-group-ms", 2, "group-commit batching window, wall milliseconds")
		traceSample    = flag.Float64("trace-sample", 0, "per-run trace sampling ratio in (0,1]; sampled runs write spans.jsonl into their run dir")
		logLevel       = flag.String("log-level", "info", "structured logging to stderr: debug, info, warn, error, or off")
	)
	flag.Var(&tenants, "tenant", "tenant quota spec name:weight[:max-runs[:max-tasks]] (repeatable)")
	flag.Parse()

	mode, err := wfm.ParseScheduling(*schedule)
	if err != nil {
		fatal(err)
	}
	pol, err := journal.ParseSyncPolicy(*journalSync)
	if err != nil {
		fatal(err)
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: slog.LevelInfo}))
	if *logLevel == "off" {
		logger = nil
	} else if *logLevel != "" {
		var lvl slog.Level
		if err := lvl.UnmarshalText([]byte(*logLevel)); err != nil {
			fatal(fmt.Errorf("-log-level: %w", err))
		}
		logger = slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lvl}))
	}

	drive, err := sharedfs.NewDisk(*workdir)
	if err != nil {
		fatal(err)
	}
	cfg := wfmd.Config{
		DataDir: *dataDir,
		Manager: wfm.Options{
			Drive:           drive,
			TimeScale:       *timeScale,
			MaxParallel:     *maxPar,
			Scheduling:      mode,
			Retries:         *retries,
			RetryBackoff:    *retryBackoff,
			RetryBackoffMax: *retryBackoffMax,
			TaskTimeout:     *taskTimeout,
			Breaker:         wfm.BreakerOptions{Enabled: *breakerOn},
		},
		Tenants: tenants.configs,
		DefaultTenant: wfmd.TenantConfig{
			Weight:            *defaultWeight,
			MaxConcurrentRuns: *defaultMaxRuns,
			MaxInFlightTasks:  *defaultMaxTasks,
		},
		QueueCapacity:      *queueCap,
		MaxActiveRuns:      *maxActive,
		TaskSlots:          *taskSlots,
		RetryAfter:         *retryAfter,
		JournalSync:        pol,
		JournalGroupWindow: time.Duration(*journalGroupMS * float64(time.Millisecond)),
		TraceSample:        *traceSample,
		Logger:             logger,
	}
	srv, err := wfmd.New(cfg)
	if err != nil {
		fatal(err)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Printf("wfmd: serving on %s (data dir %s, %d task slots)\n", *addr, *dataDir, *taskSlots)

	// SIGINT/SIGTERM drain gracefully: the HTTP listener closes, every
	// running Manager's context is cancelled, journals close clean, and
	// interrupted runs resume on the next start with the same -data-dir.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
	case <-ctx.Done():
		fmt.Println("wfmd: shutting down")
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		httpSrv.Shutdown(shutCtx)
		cancel()
		srv.Stop()
	}
}

// tenantFlags parses repeated -tenant name:weight[:max-runs[:max-tasks]].
type tenantFlags struct {
	configs []wfmd.TenantConfig
}

func (t *tenantFlags) String() string {
	parts := make([]string, len(t.configs))
	for i, c := range t.configs {
		parts[i] = fmt.Sprintf("%s:%g:%d:%d", c.Name, c.Weight, c.MaxConcurrentRuns, c.MaxInFlightTasks)
	}
	return strings.Join(parts, ",")
}

func (t *tenantFlags) Set(v string) error {
	parts := strings.Split(v, ":")
	if len(parts) < 2 || len(parts) > 4 || parts[0] == "" {
		return fmt.Errorf("want name:weight[:max-runs[:max-tasks]], got %q", v)
	}
	tc := wfmd.TenantConfig{Name: parts[0]}
	w, err := strconv.ParseFloat(parts[1], 64)
	if err != nil {
		return fmt.Errorf("bad weight in %q: %w", v, err)
	}
	tc.Weight = w
	if len(parts) > 2 {
		if tc.MaxConcurrentRuns, err = strconv.Atoi(parts[2]); err != nil {
			return fmt.Errorf("bad max-runs in %q: %w", v, err)
		}
	}
	if len(parts) > 3 {
		if tc.MaxInFlightTasks, err = strconv.Atoi(parts[3]); err != nil {
			return fmt.Errorf("bad max-tasks in %q: %w", v, err)
		}
	}
	t.configs = append(t.configs, tc)
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "wfmd:", err)
	os.Exit(1)
}
