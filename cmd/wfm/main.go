// Command wfm executes a workflow description through the serverless
// workflow manager — the paper's serverless-workflow-wfbench.py.
//
// Two modes:
//
//   - Direct (default): the workflow JSON already carries api_url
//     endpoints (e.g. from wfgen -target knative -url ...); the manager
//     POSTs to them and uses -workdir as the shared drive. Pair with
//     cmd/wfbench-serve.
//
//     wfm -workflow blast.json -workdir ./wfbench-data
//
//     Direct mode supports durable execution: -journal <dir> records a
//     crash-consistent run journal, SIGINT/SIGTERM wind the run down
//     resumably, and -resume continues a killed run without re-invoking
//     completed tasks. -crash-after-tasks N injects a hard kill for
//     recovery drills.
//
//     wfm -workflow blast.json -journal ./run-journal -crash-after-tasks 20
//     wfm -workflow blast.json -journal ./run-journal -resume
//
//     Direct mode also supports incremental re-execution: -memoize
//     <file> keeps a content-addressed task cache across runs, so an
//     unchanged re-run invokes nothing and an edited workflow re-runs
//     only the edited tasks and their descendants.
//
//     wfm -workflow blast.json -memoize ./blast.memo
//
//   - Simulated (-paradigm): provision the in-process platform for a
//     Table II paradigm, translate, execute, and print the measured
//     execution time, power, CPU, and memory.
//
//     wfm -workflow blast.json -paradigm Kn10wNoPM -time-scale 0.01
//
//   - Service (-submit): hand the workflow to a long-lived wfmd
//     instead of executing it in-process. The client honours the
//     service's backpressure — a 429 with Retry-After is slept on and
//     the submission retried on the resilience layer's backoff
//     schedule — then polls the run to completion and prints its
//     durable result. -detach submits without waiting.
//
//     wfm -workflow blast.json -submit http://127.0.0.1:9433 -tenant team-a -priority high
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"sync/atomic"
	"syscall"
	"time"

	"wfserverless/internal/experiments"
	"wfserverless/internal/health"
	"wfserverless/internal/journal"
	"wfserverless/internal/memo"
	"wfserverless/internal/obs"
	"wfserverless/internal/sharedfs"
	"wfserverless/internal/wfformat"
	"wfserverless/internal/wfm"
	"wfserverless/internal/wfmd"
)

func main() {
	var (
		workflow  = flag.String("workflow", "", "workflow description JSON (required)")
		workdir   = flag.String("workdir", "wfbench-data", "shared directory (direct mode)")
		paradigm  = flag.String("paradigm", "", "Table II paradigm for simulated mode (e.g. Kn10wNoPM)")
		timeScale = flag.Float64("time-scale", 1.0, "nominal-second to wall-second factor")
		phaseWait = flag.Float64("phase-delay", 1.0, "inter-phase delay, nominal seconds")
		maxPar    = flag.Int("max-parallel", 512, "max simultaneous HTTP invocations")
		verbose   = flag.Bool("v", false, "print per-phase breakdown")
		tracePath = flag.String("trace", "", "write the execution trace (JSON) to this file")
		schedule  = flag.String("schedule", "phases", "scheduling mode: phases (paper barriers) or dependency (event-driven)")
		eager     = flag.Bool("eager", false, "shorthand for -schedule dependency")
		retries   = flag.Int("retries", 0, "retry transient invocation failures this many times")

		retryBackoff    = flag.Float64("retry-backoff", 0, "base retry backoff, nominal seconds (full-jitter exponential)")
		retryBackoffMax = flag.Float64("retry-backoff-max", 0, "backoff ceiling, nominal seconds (0: 30)")
		taskTimeout     = flag.Float64("task-timeout", 0, "whole-task deadline across all attempts, nominal seconds (0: none)")

		batchOn     = flag.Bool("batch", false, "coalesce same-endpoint invocations into framed /invoke-batch POSTs")
		batchTasks  = flag.Int("batch-tasks", 0, "max sub-tasks per batch (0: 64)")
		batchBytes  = flag.Int("batch-bytes", 0, "max summed payload bytes per batch (0: 1 MiB)")
		batchLinger = flag.Float64("batch-linger", 0, "batch linger window, nominal seconds (0: 0.005)")

		breakerOn        = flag.Bool("breaker", false, "enable the per-endpoint circuit breaker")
		breakerThreshold = flag.Float64("breaker-threshold", 0, "failure rate that opens the breaker (0: 0.5)")
		breakerWindow    = flag.Int("breaker-window", 0, "sliding window of attempts per endpoint (0: 20)")
		breakerCooldown  = flag.Float64("breaker-cooldown", 0, "open-state cooldown before probing, nominal seconds (0: 5)")

		memoize = flag.String("memoize", "", "content-addressed memo cache file (direct mode): unchanged tasks with intact outputs are served from the cache instead of re-invoked")

		journalDir     = flag.String("journal", "", "directory for the durable run journal (direct mode); enables crash recovery")
		resume         = flag.Bool("resume", false, "resume the run recorded in -journal instead of starting fresh")
		journalSync    = flag.String("journal-sync", "group", "journal fsync policy: group (batched), always (per record), never")
		journalGroupMS = flag.Float64("journal-group-ms", 2, "group-commit batching window, wall milliseconds")
		crashAfter     = flag.Int("crash-after-tasks", 0, "crash injection: sync the journal and kill the process after N completed tasks (requires -journal)")

		healthOn   = flag.Bool("health", false, "enable the run-health plane: per-endpoint latency baselines and live straggler detection (direct mode)")
		speculate  = flag.Bool("speculate", false, "re-dispatch a flagged straggler once and take the first completion (implies -health)")
		stragglerK = flag.Float64("straggler-factor", 0, "flag tasks older than this multiple of their endpoint's running median (0: 3)")
		recorder   = flag.String("flight-recorder", "", "dump the run's last moments as JSONL to this file on panic, interrupt, or failure (implies -health)")

		submitURL = flag.String("submit", "", "submit to a wfmd service at this base URL (e.g. http://127.0.0.1:9433) instead of executing locally")
		tenant    = flag.String("tenant", "", "tenant name for -submit (empty: the service default)")
		priority  = flag.String("priority", "", "priority class for -submit: low, normal, or high")
		detach    = flag.Bool("detach", false, "with -submit: print the accepted run ID and exit without waiting")
		pollSec   = flag.Float64("poll", 0.2, "status poll interval for -submit, wall seconds")

		sample      = flag.Float64("sample", 0, "trace sampling ratio in (0,1]: fraction of workflow roots recorded (0: off unless a trace output is set)")
		chromeTrace = flag.String("chrome-trace", "", "write spans as Chrome trace-event JSON (load at ui.perfetto.dev or chrome://tracing)")
		spanLog     = flag.String("span-log", "", "write spans as flat JSONL, one span per line")
		telemetry   = flag.String("telemetry-addr", "", "serve live telemetry on this address: /metrics, /healthz, /debug/pprof")
		logLevel    = flag.String("log-level", "", "structured event logging to stderr: debug, info, warn, or error (empty: off)")
	)
	flag.Parse()
	if *workflow == "" {
		fatal(fmt.Errorf("-workflow is required"))
	}
	mode, err := wfm.ParseScheduling(*schedule)
	if err != nil {
		fatal(err)
	}
	if *eager {
		mode = wfm.ScheduleDependency
	}
	w, err := wfformat.Load(*workflow)
	if err != nil {
		fatal(err)
	}
	if *submitURL != "" {
		runSubmit(*submitURL, *workflow, *tenant, *priority, *detach,
			*pollSec, *retryBackoff, *retryBackoffMax, *retries)
		return
	}

	// Observability plane, shared by both modes. A requested trace
	// output implies full sampling unless -sample says otherwise.
	ratio := *sample
	if ratio == 0 && (*chromeTrace != "" || *spanLog != "") {
		ratio = 1
	}
	var tracer *obs.Tracer
	if ratio > 0 {
		tracer = obs.NewTracer(obs.Options{SampleRatio: ratio})
	}
	var logger *slog.Logger
	if *logLevel != "" {
		var lvl slog.Level
		if err := lvl.UnmarshalText([]byte(*logLevel)); err != nil {
			fatal(fmt.Errorf("-log-level: %w", err))
		}
		logger = slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lvl}))
	}
	// The straggler tracker is born with the run, after telemetry is
	// already listening; Options.Health.OnTracker publishes it here so
	// the /metrics page grows the per-endpoint families mid-run.
	var stragglerTracker atomic.Pointer[health.Tracker]
	var monitor *wfm.Monitor
	if *telemetry != "" {
		monitor = wfm.NewMonitor()
		startTelemetry(*telemetry, func(w io.Writer) error {
			if err := monitor.WriteMetrics(w); err != nil {
				return err
			}
			if tr := stragglerTracker.Load(); tr != nil {
				return tr.WriteMetrics(w)
			}
			return nil
		})
	}

	if *paradigm != "" {
		runSimulated(w, *paradigm, *timeScale, mode, *verbose, tracer, monitor, logger, *chromeTrace, *spanLog)
		return
	}

	// SIGINT/SIGTERM cancel the run context: in-flight tasks wind down,
	// the journal and trace outputs are flushed, and the partial result
	// is printed before exiting non-zero — so an interrupted run is
	// resumable with -resume rather than silently torn.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var jnl *journal.Journal
	if *journalDir != "" {
		pol, err := journal.ParseSyncPolicy(*journalSync)
		if err != nil {
			fatal(err)
		}
		jnl, err = journal.Open(*journalDir, journal.Options{
			Sync:        pol,
			GroupWindow: time.Duration(*journalGroupMS * float64(time.Millisecond)),
		})
		if err != nil {
			fatal(err)
		}
		if jnl.Torn() {
			fmt.Fprintln(os.Stderr, "wfm: journal had a torn tail (interrupted writer); truncated to the last intact record")
		}
	}
	if *resume && jnl == nil {
		fatal(fmt.Errorf("-resume requires -journal"))
	}

	var afterDone func(int)
	if *crashAfter > 0 {
		if jnl == nil {
			fatal(fmt.Errorf("-crash-after-tasks requires -journal"))
		}
		n := *crashAfter
		j := jnl
		afterDone = func(done int) {
			if done >= n {
				j.Sync()
				fmt.Fprintf(os.Stderr, "wfm: crash injection: killing the process after %d completed tasks\n", done)
				os.Exit(137)
			}
		}
	}

	drive, err := sharedfs.NewDisk(*workdir)
	if err != nil {
		fatal(err)
	}
	var cache *memo.Cache
	if *memoize != "" {
		cache, err = memo.Open(*memoize)
		if err != nil {
			fatal(err)
		}
		if dropped, repaired := cache.Recovered(); repaired {
			fmt.Fprintf(os.Stderr, "wfm: memo cache was corrupt; dropped %d unusable byte(s), affected tasks will re-execute\n", dropped)
		}
	}
	// Run-health plane: -speculate and -flight-recorder imply -health.
	var flightRec *health.FlightRecorder
	var healthOpts *wfm.HealthOptions
	if *healthOn || *speculate || *recorder != "" {
		if *recorder != "" {
			flightRec = health.NewFlightRecorder(0)
		}
		healthOpts = &wfm.HealthOptions{
			StragglerFactor:  *stragglerK,
			SpeculativeRetry: *speculate,
			Recorder:         flightRec,
			OnTracker:        func(tr *health.Tracker) { stragglerTracker.Store(tr) },
		}
	}
	// dumpRecorder writes the crash flight recorder next to whatever
	// went wrong: the last ring of structured events, as JSONL.
	dumpRecorder := func(reason string) {
		if flightRec == nil {
			return
		}
		f, err := os.Create(*recorder)
		if err != nil {
			fmt.Fprintln(os.Stderr, "wfm: flight recorder:", err)
			return
		}
		if err := flightRec.WriteJSONL(f); err != nil {
			fmt.Fprintln(os.Stderr, "wfm: flight recorder:", err)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "wfm: flight recorder:", err)
		}
		fmt.Fprintf(os.Stderr, "wfm: flight recorder (%s): %d event(s), %d dropped -> %s\n",
			reason, len(flightRec.Events()), flightRec.Dropped(), *recorder)
	}
	defer func() {
		if p := recover(); p != nil {
			dumpRecorder("panic")
			panic(p)
		}
	}()

	mgr, err := wfm.New(wfm.Options{
		Drive:           drive,
		TimeScale:       *timeScale,
		PhaseDelay:      *phaseWait,
		MaxParallel:     *maxPar,
		Retries:         *retries,
		RetryBackoff:    *retryBackoff,
		RetryBackoffMax: *retryBackoffMax,
		TaskTimeout:     *taskTimeout,
		Scheduling:      mode,
		Breaker: wfm.BreakerOptions{
			Enabled:          *breakerOn,
			FailureThreshold: *breakerThreshold,
			Window:           *breakerWindow,
			Cooldown:         *breakerCooldown,
		},
		Batching: wfm.BatchOptions{
			Enabled:  *batchOn,
			MaxTasks: *batchTasks,
			MaxBytes: *batchBytes,
			Linger:   *batchLinger,
		},
		Tracer:        tracer,
		Monitor:       monitor,
		Logger:        logger,
		Journal:       jnl,
		Memoize:       cache,
		Health:        healthOpts,
		AfterTaskDone: afterDone,
	})
	if err != nil {
		fatal(err)
	}
	var res *wfm.Result
	var runErr error
	if *resume {
		res, runErr = mgr.Resume(ctx, w)
	} else {
		res, runErr = mgr.Run(ctx, w)
	}
	// Flush everything the run produced — journal, traces, partial
	// result — before deciding the exit code, so an interrupted run
	// still leaves a consistent journal and its outputs behind.
	if jnl != nil {
		if cerr := jnl.Close(); cerr != nil {
			fmt.Fprintln(os.Stderr, "wfm: closing journal:", cerr)
		}
	}
	if cache != nil {
		if cerr := cache.Close(); cerr != nil {
			fmt.Fprintln(os.Stderr, "wfm: closing memo cache:", cerr)
		}
	}
	switch {
	case ctx.Err() != nil:
		dumpRecorder("interrupt")
	case runErr != nil:
		dumpRecorder("run failure")
	case res != nil && len(res.Failed) > 0:
		dumpRecorder("task failures")
	}
	if res != nil {
		if *tracePath != "" {
			f, err := os.Create(*tracePath)
			if err != nil {
				fatal(err)
			}
			if err := wfm.TraceOf(res).WriteJSON(f); err != nil {
				f.Close()
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Printf("trace:     %s\n", *tracePath)
		}
		writeSpanOutputs(wfm.TraceOf(res), *chromeTrace, *spanLog)
		printResult(res, *verbose)
	}
	if runErr != nil {
		if ctx.Err() != nil {
			fmt.Fprintln(os.Stderr, "wfm: interrupted; resume with -resume and the same -journal")
			os.Exit(130)
		}
		fatal(runErr)
	}
}

// runSubmit is the service-client mode: post the workflow to wfmd
// (riding out backpressure via the shared backoff policy), then poll
// the run to a terminal state and print its durable result. SIGINT
// stops waiting but leaves the run executing server-side.
func runSubmit(baseURL, workflowPath, tenant, priority string, detach bool,
	pollSec, backoff, backoffMax float64, retries int) {
	raw, err := os.ReadFile(workflowPath)
	if err != nil {
		fatal(err)
	}
	c := &wfmd.Client{
		BaseURL:         baseURL,
		Tenant:          tenant,
		Priority:        priority,
		RetryBackoff:    backoff,
		RetryBackoffMax: backoffMax,
		MaxRetries:      retries,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	st, err := c.Submit(ctx, raw)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("run:       %s (tenant %s, priority %s, %d tasks, %s)\n",
		st.ID, st.Tenant, st.Priority, st.Tasks, st.State)
	if detach {
		fmt.Printf("status:    %s/v1/runs/%s\n", baseURL, st.ID)
		return
	}
	final, err := c.Wait(ctx, st.ID, time.Duration(pollSec*float64(time.Second)))
	if err != nil {
		if ctx.Err() != nil {
			fmt.Fprintf(os.Stderr, "wfm: interrupted; run %s keeps executing server-side\n", st.ID)
			os.Exit(130)
		}
		fatal(err)
	}
	rr, err := c.Result(ctx, st.ID)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("workflow:  %s\n", rr.Workflow)
	fmt.Printf("state:     %s\n", rr.State)
	fmt.Printf("tasks:     %d/%d completed\n", rr.Completed, rr.Tasks)
	if rr.Resumed {
		fmt.Printf("resume:    continued a prior attempt, %d invocation(s) skipped\n", rr.Recovered)
	}
	if rr.Memoized > 0 {
		fmt.Printf("memoize:   %d hit(s)\n", rr.Memoized)
	}
	if rr.Retries > 0 {
		fmt.Printf("retries:   %d\n", rr.Retries)
	}
	fmt.Printf("makespan:  %.2f s (wall %.2f s)\n", rr.MakespanS, rr.WallS)
	if len(rr.FailedTasks) > 0 {
		fmt.Printf("FAILED:    %v\n", rr.FailedTasks)
	}
	if rr.Error != "" {
		fmt.Printf("error:     %s\n", rr.Error)
	}
	if final.State != wfmd.StateSucceeded {
		os.Exit(1)
	}
}

// startTelemetry serves the live telemetry plane in the background:
// manager progress on /metrics, liveness on /healthz, and profiling
// under /debug/pprof.
func startTelemetry(addr string, metrics func(io.Writer) error) {
	mux := obs.TelemetryMux(metrics)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("telemetry: http://%s (/metrics /healthz /debug/pprof)\n", ln.Addr())
	go http.Serve(ln, mux)
}

// writeSpanOutputs exports the collected spans in the requested
// formats. A nil or empty trace (tracing off, or nothing sampled)
// writes nothing.
func writeSpanOutputs(tr *wfm.Trace, chromePath, logPath string) {
	if tr == nil || len(tr.Spans) == 0 {
		if chromePath != "" || logPath != "" {
			fmt.Fprintln(os.Stderr, "wfm: no spans collected, trace outputs skipped")
		}
		return
	}
	writeTo := func(path string, write func(io.Writer) error) {
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		if err := write(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
	if chromePath != "" {
		writeTo(chromePath, tr.WriteChromeTrace)
		fmt.Printf("chrome trace: %s (%d spans, trace %s)\n", chromePath, len(tr.Spans), tr.TraceID)
	}
	if logPath != "" {
		writeTo(logPath, tr.WriteSpanLog)
		fmt.Printf("span log:  %s (%d spans)\n", logPath, len(tr.Spans))
	}
}

func runSimulated(w *wfformat.Workflow, paradigm string, timeScale float64, mode wfm.Scheduling, verbose bool,
	tracer *obs.Tracer, monitor *wfm.Monitor, logger *slog.Logger, chromeTrace, spanLog string) {
	spec, err := experiments.ByID(experiments.Paradigm(paradigm))
	if err != nil {
		fatal(err)
	}
	tn := experiments.DefaultTunables()
	tn.TimeScale = timeScale
	tn.Scheduling = mode
	tn.Tracer = tracer
	tn.Monitor = monitor
	tn.Logger = logger
	m, err := experiments.RunWorkflow(context.Background(), spec, w, tn)
	if err != nil {
		fatal(err)
	}
	writeSpanOutputs(m.Trace, chromeTrace, spanLog)
	fmt.Printf("workflow:      %s (%d tasks)\n", m.Workflow, m.Tasks)
	fmt.Printf("paradigm:      %s\n", m.Paradigm)
	fmt.Printf("schedule:      %s\n", mode)
	fmt.Printf("execution:     %.2f s (nominal; wall %v)\n", m.MakespanS, m.Wall)
	fmt.Printf("power:         %.1f W mean, %.0f J\n", m.MeanPowerW, m.EnergyJ)
	fmt.Printf("cpu usage:     %.2f cores mean (%.2f max, busy %.2f)\n", m.MeanCPUCores, m.MaxCPUCores, m.MeanBusyCores)
	fmt.Printf("memory usage:  %.2f GB mean (%.2f max)\n", m.MeanMemGB, m.MaxMemGB)
	fmt.Printf("cold starts:   %d   requests: %d   failures: %d   scale stalls: %d\n",
		m.ColdStarts, m.Requests, m.Failures, m.ScaleStalls)
	_ = verbose
}

func printResult(res *wfm.Result, verbose bool) {
	fmt.Printf("workflow:  %s\n", res.Workflow)
	fmt.Printf("schedule:  %s\n", res.Scheduling)
	fmt.Printf("functions: %d (+header/tail)\n", len(res.Tasks)-2)
	fmt.Printf("phases:    %d\n", len(res.Phases)-2)
	fmt.Printf("makespan:  %.2f s (wall %v)\n", res.Makespan, res.Wall)
	if r := res.Resume; r != nil {
		fmt.Printf("resume:    %d recorded completed, %d invocations skipped, %d re-executed (outputs vanished)\n",
			r.RecordedCompleted, r.SkippedInvocations, r.Reexecuted)
	}
	if mr := res.Memo; mr != nil {
		fmt.Printf("memoize:   %d hit(s), %d miss(es), %s of outputs served from cache (%d entries)\n",
			mr.Hits, mr.Misses, byteCount(mr.SkippedOutputBytes), mr.CacheEntries)
	}
	if h := res.Health; h != nil {
		fmt.Printf("health:    %d straggler(s) flagged, %d speculative backup(s), %d won\n",
			len(h.Stragglers), h.SpeculativeRetries, h.SpeculativeWins)
		for _, e := range h.Endpoints {
			fmt.Printf("  endpoint %-40s n=%-5d p50=%.3fs p95=%.3fs p99=%.3fs fail=%d cold=%d\n",
				e.Endpoint, e.Attempts, e.P50, e.P95, e.P99, e.Failures, e.ColdStarts)
		}
		for _, s := range h.Stragglers {
			fmt.Printf("  straggler %s at %v (endpoint median %v)\n",
				s.Task, s.Age.Round(time.Millisecond), s.Median.Round(time.Millisecond))
		}
	}
	var queue time.Duration
	n := 0
	for name, tr := range res.Tasks {
		if name == wfm.HeaderName || name == wfm.TailName {
			continue
		}
		queue += tr.QueueWait()
		n++
	}
	if n > 0 {
		fmt.Printf("queueing:  %v mean ready->start\n", queue/time.Duration(n))
	}
	for _, msg := range res.Warnings {
		fmt.Printf("warning:   %s\n", msg)
	}
	for _, bt := range res.Breakers {
		fmt.Printf("breaker:   %s %s->%s at %v (failure rate %.2f)\n",
			bt.Endpoint, bt.From, bt.To, bt.At.Round(time.Millisecond), bt.FailureRate)
	}
	if len(res.Failed) > 0 {
		fmt.Printf("FAILED:    %v\n", res.Failed)
	}
	if verbose {
		for _, ps := range wfm.PhaseBreakdown(res) {
			fmt.Printf("  phase %-3d functions=%-4d span=%v\n", ps.Phase, ps.Functions, ps.WallSpan)
		}
		names := make([]string, 0, len(res.Tasks))
		for n := range res.Tasks {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			tr := res.Tasks[n]
			fmt.Printf("  %-40s phase=%-3d %8v -> %8v\n", tr.Name, tr.Phase, tr.Start, tr.End)
		}
	}
}

// byteCount renders n in a human scale (B, KiB, MiB, ...).
func byteCount(n int64) string {
	const unit = 1024
	if n < unit {
		return fmt.Sprintf("%d B", n)
	}
	div, exp := int64(unit), 0
	for m := n / unit; m >= unit; m /= unit {
		div *= unit
		exp++
	}
	return fmt.Sprintf("%.1f %ciB", float64(n)/float64(div), "KMGTPE"[exp])
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "wfm:", err)
	os.Exit(1)
}
