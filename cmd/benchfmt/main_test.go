package main

import (
	"io"
	"strings"
	"testing"
)

func TestParseBenchLine(t *testing.T) {
	line := "BenchmarkSchedulerThroughputCSR/random_100000-8 \t 3\t 5319091 ns/op\t 18800205 tasks/s\t 1204752 B/op\t 12 allocs/op"
	b, ok := parseBenchLine(line)
	if !ok {
		t.Fatal("result line rejected")
	}
	if b.Name != "SchedulerThroughputCSR/random_100000" {
		t.Fatalf("name = %q", b.Name)
	}
	if b.Iterations != 3 {
		t.Fatalf("iterations = %d", b.Iterations)
	}
	want := map[string]float64{"ns/op": 5319091, "tasks/s": 18800205, "B/op": 1204752, "allocs/op": 12}
	for unit, v := range want {
		if b.Metrics[unit] != v {
			t.Fatalf("%s = %v, want %v", unit, b.Metrics[unit], v)
		}
	}
}

func TestParseBenchLineSkipsNonResults(t *testing.T) {
	for _, line := range []string{
		"BenchmarkFoo",            // -v header line, no fields
		"BenchmarkFoo 12 garbage", // odd field count
		"BenchmarkFoo x 12 ns/op", // non-numeric iterations
		"BenchmarkFoo 12 y ns/op", // non-numeric value
	} {
		if _, ok := parseBenchLine(line); ok {
			t.Errorf("accepted %q", line)
		}
	}
}

func TestParseBenchLineKeepsHyphenatedNames(t *testing.T) {
	b, ok := parseBenchLine("BenchmarkFoo/sub-case-4 \t 10\t 100 ns/op")
	if !ok {
		t.Fatal("rejected")
	}
	// Only a numeric -P suffix is stripped, not hyphens inside names.
	if b.Name != "Foo/sub-case" {
		t.Fatalf("name = %q", b.Name)
	}
}

func report(bs ...Benchmark) *Report { return &Report{Benchmarks: bs} }

func bench(name string, metrics map[string]float64) Benchmark {
	return Benchmark{Name: name, Iterations: 1, Metrics: metrics}
}

func TestPrintDeltasDirectionAware(t *testing.T) {
	base := report(
		bench("Throughput", map[string]float64{"inv/s": 6000, "ns/op": 100}),
		bench("Latency", map[string]float64{"ns/op": 100}),
	)
	// Rate fell 50%: regression for a "/s" metric.
	cur := report(
		bench("Throughput", map[string]float64{"inv/s": 3000, "ns/op": 100}),
		bench("Latency", map[string]float64{"ns/op": 100}),
	)
	var buf strings.Builder
	if got := printDeltas(&buf, base, cur, "inv/s", 10); len(got) != 1 || got[0] != "Throughput" {
		t.Fatalf("regressed = %v, want [Throughput]", got)
	}
	if !strings.Contains(buf.String(), "Throughput") || !strings.Contains(buf.String(), "-50.0%") {
		t.Fatalf("table missing delta:\n%s", buf.String())
	}

	// Rate rose 10x: an improvement, not a regression.
	cur = report(bench("Throughput", map[string]float64{"inv/s": 60000}))
	if got := printDeltas(io.Discard, base, cur, "inv/s", 10); len(got) != 0 {
		t.Fatalf("improvement flagged as regression: %v", got)
	}

	// Cost metrics regress upward.
	cur = report(bench("Latency", map[string]float64{"ns/op": 150}))
	if got := printDeltas(io.Discard, base, cur, "ns/op", 10); len(got) != 1 || got[0] != "Latency" {
		t.Fatalf("regressed = %v, want [Latency]", got)
	}
	// Within threshold: no flag.
	cur = report(bench("Latency", map[string]float64{"ns/op": 105}))
	if got := printDeltas(io.Discard, base, cur, "ns/op", 10); len(got) != 0 {
		t.Fatalf("within-threshold drift flagged: %v", got)
	}
	// Benchmarks absent from the baseline never gate.
	cur = report(bench("Fresh", map[string]float64{"inv/s": 1}))
	if got := printDeltas(io.Discard, base, cur, "inv/s", 10); len(got) != 0 {
		t.Fatalf("new benchmark flagged: %v", got)
	}
}
