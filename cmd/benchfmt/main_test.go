package main

import "testing"

func TestParseBenchLine(t *testing.T) {
	line := "BenchmarkSchedulerThroughputCSR/random_100000-8 \t 3\t 5319091 ns/op\t 18800205 tasks/s\t 1204752 B/op\t 12 allocs/op"
	b, ok := parseBenchLine(line)
	if !ok {
		t.Fatal("result line rejected")
	}
	if b.Name != "SchedulerThroughputCSR/random_100000" {
		t.Fatalf("name = %q", b.Name)
	}
	if b.Iterations != 3 {
		t.Fatalf("iterations = %d", b.Iterations)
	}
	want := map[string]float64{"ns/op": 5319091, "tasks/s": 18800205, "B/op": 1204752, "allocs/op": 12}
	for unit, v := range want {
		if b.Metrics[unit] != v {
			t.Fatalf("%s = %v, want %v", unit, b.Metrics[unit], v)
		}
	}
}

func TestParseBenchLineSkipsNonResults(t *testing.T) {
	for _, line := range []string{
		"BenchmarkFoo",            // -v header line, no fields
		"BenchmarkFoo 12 garbage", // odd field count
		"BenchmarkFoo x 12 ns/op", // non-numeric iterations
		"BenchmarkFoo 12 y ns/op", // non-numeric value
	} {
		if _, ok := parseBenchLine(line); ok {
			t.Errorf("accepted %q", line)
		}
	}
}

func TestParseBenchLineKeepsHyphenatedNames(t *testing.T) {
	b, ok := parseBenchLine("BenchmarkFoo/sub-case-4 \t 10\t 100 ns/op")
	if !ok {
		t.Fatal("rejected")
	}
	// Only a numeric -P suffix is stripped, not hyphens inside names.
	if b.Name != "Foo/sub-case" {
		t.Fatalf("name = %q", b.Name)
	}
}
