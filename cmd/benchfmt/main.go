// Command benchfmt converts `go test -bench` output into the
// machine-readable JSON the tracked benchmark suite stores in
// BENCH_pr3.json. It reads benchmark text on stdin — concatenated
// output from any number of packages — and emits one JSON document
// with every benchmark's iteration count and metric pairs (ns/op,
// B/op, allocs/op, and custom ReportMetric units like tasks/s).
//
//	go test -bench Scheduler -benchmem ./internal/dag | benchfmt -o BENCH_pr3.json
//
// Input lines are echoed to stderr so a piped run still shows live
// progress.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Pkg        string             `json:"pkg,omitempty"`
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Report is the top-level JSON document.
type Report struct {
	Generated  string      `json:"generated"`
	GoVersion  string      `json:"go"`
	GOOS       string      `json:"goos,omitempty"`
	GOARCH     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	var (
		out   = flag.String("o", "", "output file (default stdout)")
		quiet = flag.Bool("q", false, "do not echo input lines to stderr")
	)
	flag.Parse()

	rep := Report{
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		Benchmarks: []Benchmark{},
	}
	var pkg string
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !*quiet {
			fmt.Fprintln(os.Stderr, line)
		}
		switch {
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "goos: "):
			rep.GOOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.GOARCH = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseBenchLine(line); ok {
				b.Pkg = pkg
				rep.Benchmarks = append(rep.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}

	payload, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	payload = append(payload, '\n')
	if *out == "" {
		os.Stdout.Write(payload)
		return
	}
	if err := os.WriteFile(*out, payload, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchfmt: wrote %s (%d benchmarks)\n", *out, len(rep.Benchmarks))
}

// parseBenchLine parses one `BenchmarkName-P  N  v1 u1  v2 u2 ...`
// result line. Lines that do not look like results (e.g. the bare
// "BenchmarkFoo" name go test prints with -v) are skipped.
func parseBenchLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Benchmark{}, false
	}
	name := fields[0]
	// Strip the -GOMAXPROCS suffix from the last path segment.
	if i := strings.LastIndex(name, "-"); i > 0 && !strings.Contains(name[i:], "/") {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{
		Name:       strings.TrimPrefix(name, "Benchmark"),
		Iterations: iters,
		Metrics:    make(map[string]float64, (len(fields)-2)/2),
	}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, true
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchfmt:", err)
	os.Exit(1)
}
