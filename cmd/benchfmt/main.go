// Command benchfmt converts `go test -bench` output into the
// machine-readable JSON the tracked benchmark suite stores in
// BENCH_pr3.json. It reads benchmark text on stdin — concatenated
// output from any number of packages — and emits one JSON document
// with every benchmark's iteration count and metric pairs (ns/op,
// B/op, allocs/op, and custom ReportMetric units like tasks/s).
//
//	go test -bench Scheduler -benchmem ./internal/dag | benchfmt -o BENCH_pr3.json
//
// With -baseline it also diffs the fresh run against a previously
// written report, printing old/new/Δ% per metric. -regress-metric plus
// -regress-pct turn the diff into a gate: the process exits 2 when the
// named metric regresses beyond the threshold on any benchmark present
// in both runs — the CI bench-regression job is exactly
//
//	go test -bench InvocationThroughput -run XXX . \
//	  | benchfmt -baseline BENCH_pr6.json -regress-metric inv/s -regress-pct 10
//
// Direction is inferred from the unit: rates ending in "/s" are
// higher-is-better, everything else (ns/op, B/op, allocs/op,
// wall_ms/run) lower-is-better.
//
// Input lines are echoed to stderr so a piped run still shows live
// progress.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Pkg        string             `json:"pkg,omitempty"`
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Report is the top-level JSON document.
type Report struct {
	Generated  string      `json:"generated"`
	GoVersion  string      `json:"go"`
	GOOS       string      `json:"goos,omitempty"`
	GOARCH     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	var (
		out           = flag.String("o", "", "output file (default stdout)")
		quiet         = flag.Bool("q", false, "do not echo input lines to stderr")
		baseline      = flag.String("baseline", "", "baseline report JSON to diff the fresh run against")
		regressMetric = flag.String("regress-metric", "", "metric name to gate on (with -baseline); exit 2 on regression")
		regressPct    = flag.Float64("regress-pct", 10, "regression threshold in percent for -regress-metric")
	)
	flag.Parse()

	rep := Report{
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		Benchmarks: []Benchmark{},
	}
	var pkg string
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !*quiet {
			fmt.Fprintln(os.Stderr, line)
		}
		switch {
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "goos: "):
			rep.GOOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.GOARCH = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseBenchLine(line); ok {
				b.Pkg = pkg
				rep.Benchmarks = append(rep.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}

	payload, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	payload = append(payload, '\n')
	if *out == "" {
		os.Stdout.Write(payload)
	} else {
		if err := os.WriteFile(*out, payload, 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "benchfmt: wrote %s (%d benchmarks)\n", *out, len(rep.Benchmarks))
	}

	if *baseline == "" {
		if *regressMetric != "" {
			fatal(fmt.Errorf("-regress-metric needs -baseline"))
		}
		return
	}
	base, err := loadReport(*baseline)
	if err != nil {
		fatal(err)
	}
	// The delta table rides stdout unless the JSON document does.
	tw := os.Stdout
	if *out == "" {
		tw = os.Stderr
	}
	regressed := printDeltas(tw, base, &rep, *regressMetric, *regressPct)
	if len(regressed) > 0 {
		fmt.Fprintf(os.Stderr, "benchfmt: %s regressed >%.0f%% vs %s on: %s\n",
			*regressMetric, *regressPct, *baseline, strings.Join(regressed, ", "))
		os.Exit(2)
	}
}

func loadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	rep := new(Report)
	if err := json.Unmarshal(data, rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

// higherIsBetter infers a metric's good direction from its unit: rates
// ("/s" suffixes like inv/s, tasks/s) improve upward, everything else
// (ns/op, B/op, allocs/op, wall_ms/run) improves downward.
func higherIsBetter(metric string) bool {
	return strings.HasSuffix(metric, "/s")
}

// printDeltas writes the old/new/Δ% table for every benchmark+metric
// present in both reports and returns the benchmarks where gateMetric
// regressed beyond gatePct percent.
func printDeltas(w io.Writer, base, cur *Report, gateMetric string, gatePct float64) []string {
	byName := make(map[string]Benchmark, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		byName[b.Name] = b
	}
	var regressed []string
	fmt.Fprintf(w, "%-44s %-12s %14s %14s %8s\n", "benchmark", "metric", "old", "new", "delta")
	for _, b := range cur.Benchmarks {
		old, ok := byName[b.Name]
		if !ok {
			fmt.Fprintf(w, "%-44s %-12s %14s %14s %8s\n", b.Name, "-", "-", "(new)", "-")
			continue
		}
		metrics := make([]string, 0, len(b.Metrics))
		for m := range b.Metrics {
			if _, ok := old.Metrics[m]; ok {
				metrics = append(metrics, m)
			}
		}
		sort.Strings(metrics)
		for _, m := range metrics {
			ov, nv := old.Metrics[m], b.Metrics[m]
			var pct float64
			if ov != 0 {
				pct = (nv - ov) / ov * 100
			}
			fmt.Fprintf(w, "%-44s %-12s %14.2f %14.2f %+7.1f%%\n", b.Name, m, ov, nv, pct)
			if m != gateMetric || gateMetric == "" || ov == 0 {
				continue
			}
			loss := -pct // rates regress when they fall
			if !higherIsBetter(m) {
				loss = pct // costs regress when they rise
			}
			if loss > gatePct {
				regressed = append(regressed, b.Name)
			}
		}
	}
	return regressed
}

// parseBenchLine parses one `BenchmarkName-P  N  v1 u1  v2 u2 ...`
// result line. Lines that do not look like results (e.g. the bare
// "BenchmarkFoo" name go test prints with -v) are skipped.
func parseBenchLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Benchmark{}, false
	}
	name := fields[0]
	// Strip the -GOMAXPROCS suffix from the last path segment.
	if i := strings.LastIndex(name, "-"); i > 0 && !strings.Contains(name[i:], "/") {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{
		Name:       strings.TrimPrefix(name, "Benchmark"),
		Iterations: iters,
		Metrics:    make(map[string]float64, (len(fields)-2)/2),
	}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, true
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchfmt:", err)
	os.Exit(1)
}
