// Command wfgen generates HPC scientific workflow instances from the
// seven WfCommons-derived recipes and translates them for a target
// platform — the equivalent of the paper's generate_workflows.py plus
// the Translator component.
//
// Examples:
//
//	wfgen -recipe blast -tasks 250 -target knative -url http://127.0.0.1:8080 -o blast.json
//	wfgen -recipe cycles -tasks 100 -target nextflow -o cycles.nf
//	wfgen -suite -sizes 50,250 -dir ./workflows
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"wfserverless/internal/recipes"
	"wfserverless/internal/translator"
	"wfserverless/internal/wfformat"
	"wfserverless/internal/wfgen"
)

func main() {
	var (
		recipe  = flag.String("recipe", "blast", "recipe name: "+strings.Join(recipes.Names(), ", "))
		tasks   = flag.Int("tasks", 100, "requested number of tasks")
		seed    = flag.Int64("seed", 1, "generation seed")
		cpuWork = flag.Float64("cpu-work", 100, "mean cpu-work knob per function")
		target  = flag.String("target", "json", "output target: json, knative, local, pegasus, nextflow")
		url     = flag.String("url", "http://localhost:8080", "ingress/container base URL for knative/local targets")
		workdir = flag.String("workdir", "shared", "shared-drive workdir recorded in arguments")
		out     = flag.String("o", "", "output file (default stdout)")
		compact = flag.Bool("compact", false, "emit compact JSON for json/knative/local targets (generated instances need no indentation)")
		mutate  = flag.String("mutate-task", "", "perturb this task's cpu-work after generation (for incremental re-execution experiments: the task and its descendants get new fingerprints)")
		suite   = flag.Bool("suite", false, "generate the full 7-recipe benchmark suite instead")
		sizes   = flag.String("sizes", "50,250", "comma-separated sizes for -suite")
		dir     = flag.String("dir", "workflows", "output directory for -suite")
	)
	flag.Parse()

	if *suite {
		if err := generateSuite(*sizes, *seed, *cpuWork, *dir); err != nil {
			fatal(err)
		}
		return
	}

	w, err := wfgen.Generate(wfgen.Spec{Recipe: *recipe, NumTasks: *tasks, Seed: *seed, CPUWork: *cpuWork})
	if err != nil {
		fatal(err)
	}
	if *mutate != "" {
		if err := wfgen.MutateTask(w, *mutate); err != nil {
			fatal(err)
		}
	}
	marshal := func(w *wfformat.Workflow) ([]byte, error) {
		if *compact {
			return w.MarshalCompact()
		}
		return w.Marshal()
	}
	var payload []byte
	switch *target {
	case "json":
		payload, err = marshal(w)
	case "knative":
		var tw *wfformat.Workflow
		tw, err = translator.Knative(w, translator.KnativeOptions{IngressURL: *url, Workdir: *workdir})
		if err == nil {
			payload, err = marshal(tw)
		}
	case "local":
		var tw *wfformat.Workflow
		tw, err = translator.LocalContainer(w, translator.LocalContainerOptions{BaseURL: *url, Workdir: *workdir})
		if err == nil {
			payload, err = marshal(tw)
		}
	case "pegasus":
		var s string
		s, err = translator.Pegasus(w)
		payload = []byte(s)
	case "nextflow":
		var s string
		s, err = translator.Nextflow(w)
		payload = []byte(s)
	default:
		err = fmt.Errorf("unknown target %q", *target)
	}
	if err != nil {
		fatal(err)
	}
	if *out == "" {
		os.Stdout.Write(payload)
		return
	}
	if err := os.WriteFile(*out, payload, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%d tasks)\n", *out, w.Len())
}

func generateSuite(sizesCSV string, seed int64, cpuWork float64, dir string) error {
	var sizes []int
	for _, s := range strings.Split(sizesCSV, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			return fmt.Errorf("bad size %q: %w", s, err)
		}
		sizes = append(sizes, n)
	}
	insts, err := wfgen.GenerateSuite(wfgen.SuiteSpec{Sizes: sizes, Seed: seed, CPUWork: cpuWork})
	if err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, inst := range insts {
		path := filepath.Join(dir, inst.Spec.InstanceName()+".json")
		// Generated instances are machine-read; compact JSON halves the
		// bytes and skips the indent pass.
		if err := inst.Workflow.SaveCompact(path); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d tasks)\n", path, inst.Workflow.Len())
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "wfgen:", err)
	os.Exit(1)
}
