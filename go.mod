module wfserverless

go 1.22
