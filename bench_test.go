// Package wfserverless holds the top-level benchmark harness: one
// benchmark per table and figure of the paper's evaluation. Each
// benchmark regenerates the corresponding rows/series (printed once per
// run) on the in-process reproduction of the paper's testbed.
//
// Benchmark sizes are scaled down so `go test -bench=.` completes in
// about a minute; cmd/experiments runs the same suites at paper scale.
package wfserverless

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"wfserverless/internal/cluster"
	"wfserverless/internal/experiments"
	"wfserverless/internal/memo"
	"wfserverless/internal/recipes"
	"wfserverless/internal/serverless"
	"wfserverless/internal/sharedfs"
	"wfserverless/internal/wfformat"
	"wfserverless/internal/wfgen"
	"wfserverless/internal/wfm"
)

// benchSizes keeps bench iterations short; cmd/experiments raises them.
var benchSizes = experiments.Sizes{Small: 30, Large: 60, Huge: 100}

const benchSeed = 1

var printOnce sync.Once

// benchTunables returns the calibrated defaults.
func benchTunables() experiments.Tunables {
	return experiments.DefaultTunables()
}

// BenchmarkTable1Design regenerates the Table I experiment matrix: 98
// fine-grained + 42 coarse-grained = 140 experiments.
func BenchmarkTable1Design(b *testing.B) {
	var total int
	for i := 0; i < b.N; i++ {
		d := experiments.Design(recipes.Names())
		total = len(d)
		if total != 140 {
			b.Fatalf("design has %d experiments, want 140", total)
		}
	}
	b.ReportMetric(float64(total), "experiments")
}

// BenchmarkTable2Paradigms walks the Table II paradigm catalog and maps
// every paradigm onto a platform configuration.
func BenchmarkTable2Paradigms(b *testing.B) {
	tn := benchTunables()
	for i := 0; i < b.N; i++ {
		for _, s := range experiments.All() {
			if _, err := experiments.SessionConfig(s, tn); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(len(experiments.All())), "paradigms")
}

// BenchmarkFigure3Characterization regenerates the workflow
// characterization: all seven applications' DAG structure, functions per
// phase, and functions per type.
func BenchmarkFigure3Characterization(b *testing.B) {
	var chars []experiments.Characterization
	for i := 0; i < b.N; i++ {
		var err error
		chars, err = experiments.Figure3(benchSizes.Large, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	printOnce.Do(func() {})
	if testing.Verbose() {
		experiments.WriteCharacterization(os.Stdout, chars)
	}
	b.ReportMetric(float64(len(chars)), "workflows")
}

// BenchmarkGenerateSuite measures generating the full 7-recipe benchmark
// suite (the WfGen path of the framework).
func BenchmarkGenerateSuite(b *testing.B) {
	for i := 0; i < b.N; i++ {
		insts, err := wfgen.GenerateSuite(wfgen.SuiteSpec{
			Sizes: []int{benchSizes.Small, benchSizes.Large}, Seed: benchSeed,
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(insts) != 14 {
			b.Fatalf("suite = %d instances", len(insts))
		}
	}
}

// runFigure executes a figure suite once per iteration and prints its
// rows on the last iteration.
func runFigure(b *testing.B, name string,
	f func(context.Context, experiments.Sizes, int64, experiments.Tunables) (*experiments.Suite, error)) {
	b.Helper()
	tn := benchTunables()
	var suite *experiments.Suite
	for i := 0; i < b.N; i++ {
		var err error
		suite, err = f(context.Background(), benchSizes, benchSeed, tn)
		if err != nil {
			b.Fatal(err)
		}
		for cell, cellErr := range suite.Errors {
			b.Fatalf("%s cell %s: %v", name, cell, cellErr)
		}
	}
	experiments.WriteTable(os.Stdout, suite)
	b.ReportMetric(float64(len(suite.Measurements)), "cells")
}

// BenchmarkFigure4KnativeSetups regenerates Figure 4: Blast and
// Epigenomics under the three fine-grained serverless setups (Kn1wPM,
// Kn1wNoPM, Kn10wNoPM). Expected shape: 10wNoPM is fastest with the
// lowest memory; CPU usage is not significantly different.
func BenchmarkFigure4KnativeSetups(b *testing.B) {
	runFigure(b, "Figure 4", experiments.Figure4)
}

// BenchmarkFigure5LocalContainerSetups regenerates Figure 5: the four
// local-container setups. Expected shape: NoCR improves power and CPU
// but neither execution time nor memory; PM raises memory.
func BenchmarkFigure5LocalContainerSetups(b *testing.B) {
	runFigure(b, "Figure 5", experiments.Figure5)
}

// BenchmarkFigure6CoarseGrained regenerates Figure 6: whole-machine
// coarse-grained serverless vs local containers on all seven workflows
// at three sizes. Expected shape: execution times converge and the
// serverless resource advantage disappears.
func BenchmarkFigure6CoarseGrained(b *testing.B) {
	runFigure(b, "Figure 6", experiments.Figure6)
}

// BenchmarkFigure7ServerlessVsLC regenerates the headline Figure 7:
// Kn10wNoPM vs LC10wNoPM on all seven workflows, with the paper's
// reduction percentages printed (paper: CPU -78.11%, memory -73.92%,
// power comparable, group-1 slower, group-2 narrower).
func BenchmarkFigure7ServerlessVsLC(b *testing.B) {
	tn := benchTunables()
	var suite *experiments.Suite
	for i := 0; i < b.N; i++ {
		var err error
		suite, err = experiments.Figure7(context.Background(), benchSizes, benchSeed, tn)
		if err != nil {
			b.Fatal(err)
		}
	}
	experiments.WriteTable(os.Stdout, suite)
	reds := experiments.Reductions(suite)
	fmt.Println("serverless vs local containers:")
	for _, r := range reds {
		fmt.Printf("  %-12s %4d tasks (group %d): time x%.2f, power x%.2f, cpu -%.1f%%, mem -%.1f%%\n",
			r.Recipe, r.Size, r.Group, r.TimeRatio, r.PowerRatio, r.CPUPct, r.MemPct)
	}
	cpu, mem := experiments.MaxReductions(reds)
	fmt.Printf("headline: up to CPU -%.2f%%, memory -%.2f%% (paper: 78.11%%, 73.92%%)\n", cpu, mem)
	b.ReportMetric(cpu, "cpu_reduction_pct")
	b.ReportMetric(mem, "mem_reduction_pct")
}

// BenchmarkConcurrentWorkflows exercises the paper's Section VII
// direction: three workflows submitted at once to one serverless
// platform; the reported interleave factor (concurrent makespan over
// summed solo makespans) shows the autoscaler overlapping them.
func BenchmarkConcurrentWorkflows(b *testing.B) {
	tn := benchTunables()
	spec, err := experiments.ByID(experiments.Kn10wNoPM)
	if err != nil {
		b.Fatal(err)
	}
	var interleave float64
	for i := 0; i < b.N; i++ {
		var wfs []*wfformat.Workflow
		for _, recipe := range []string{"blast", "seismology", "srasearch"} {
			w, err := wfgen.Generate(wfgen.Spec{Recipe: recipe, NumTasks: benchSizes.Small, Seed: benchSeed})
			if err != nil {
				b.Fatal(err)
			}
			wfs = append(wfs, w)
		}
		m, err := experiments.RunConcurrent(context.Background(), spec, wfs, tn)
		if err != nil {
			b.Fatal(err)
		}
		interleave = m.Interleave
	}
	b.ReportMetric(interleave, "interleave_ratio")
}

// ablationCell runs Blast at the large bench size on Kn10wNoPM under
// modified tunables and returns the measurement.
func ablationCell(b *testing.B, mutate func(*experiments.Tunables)) *experiments.Measurement {
	b.Helper()
	tn := benchTunables()
	if mutate != nil {
		mutate(&tn)
	}
	spec, err := experiments.ByID(experiments.Kn10wNoPM)
	if err != nil {
		b.Fatal(err)
	}
	w, err := wfgen.Generate(wfgen.Spec{Recipe: "blast", NumTasks: benchSizes.Large, Seed: benchSeed})
	if err != nil {
		b.Fatal(err)
	}
	m, err := experiments.RunWorkflow(context.Background(), spec, w, tn)
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// BenchmarkAblationColdStart quantifies the cold-start contribution to
// the serverless slowdown (DESIGN.md design-choice ablation).
func BenchmarkAblationColdStart(b *testing.B) {
	for _, cs := range []float64{0, 2, 8} {
		b.Run(fmt.Sprintf("coldstart_%vs", cs), func(b *testing.B) {
			var m *experiments.Measurement
			for i := 0; i < b.N; i++ {
				m = ablationCell(b, func(tn *experiments.Tunables) { tn.ColdStart = cs })
			}
			b.ReportMetric(m.MakespanS, "makespan_s")
		})
	}
}

// BenchmarkAblationRampPolicy contrasts the KPA-style doubling ramp
// against instant scale-up.
func BenchmarkAblationRampPolicy(b *testing.B) {
	for _, instant := range []bool{false, true} {
		name := "doubling"
		if instant {
			name = "instant"
		}
		b.Run(name, func(b *testing.B) {
			var m *experiments.Measurement
			for i := 0; i < b.N; i++ {
				m = ablationCell(b, func(tn *experiments.Tunables) { tn.InstantScaleUp = instant })
			}
			b.ReportMetric(m.MakespanS, "makespan_s")
			b.ReportMetric(float64(m.ColdStarts), "cold_starts")
		})
	}
}

// BenchmarkAblationStableWindow shows the resource/time trade-off of the
// scale-down window: longer windows keep pods warm (faster, more
// provisioned CPU), shorter windows reclaim aggressively.
func BenchmarkAblationStableWindow(b *testing.B) {
	for _, win := range []float64{1, 6, 30} {
		b.Run(fmt.Sprintf("window_%vs", win), func(b *testing.B) {
			var m *experiments.Measurement
			for i := 0; i < b.N; i++ {
				m = ablationCell(b, func(tn *experiments.Tunables) { tn.StableWindow = win })
			}
			b.ReportMetric(m.MeanCPUCores, "mean_cpu_cores")
			b.ReportMetric(m.MakespanS, "makespan_s")
		})
	}
}

// invocationBenchWorkflow builds a root -> (n-1) leaves fan-out whose
// tasks carry near-zero simulated work, so the measured cost is the
// invocation pipeline itself: manager dispatch, HTTP round trip,
// platform routing/decoding, and shared-drive output publication.
func invocationBenchWorkflow(b *testing.B, n int, ingressURL string) *wfformat.Workflow {
	b.Helper()
	w := wfformat.New("invocation-throughput")
	apiURL := ingressURL + "/wfbench/wfbench"
	mk := func(name string, inputs []string) *wfformat.Task {
		out := "out_" + name
		files := []wfformat.File{{Link: wfformat.LinkOutput, Name: out, SizeInBytes: 1}}
		for _, in := range inputs {
			files = append(files, wfformat.File{Link: wfformat.LinkInput, Name: in, SizeInBytes: 1})
		}
		return &wfformat.Task{
			Name: name,
			Type: wfformat.TypeCompute,
			Command: wfformat.Command{
				Program: "wfbench",
				Arguments: []wfformat.Argument{{
					Name:       name,
					PercentCPU: 0.5,
					CPUWork:    0.001,
					Out:        map[string]int64{out: 1},
					Inputs:     inputs,
				}},
				APIURL: apiURL,
			},
			Files:            files,
			RuntimeInSeconds: 0.001,
			Cores:            1,
			Category:         "synthetic",
		}
	}
	if err := w.AddTask(mk("root", nil)); err != nil {
		b.Fatal(err)
	}
	for i := 1; i < n; i++ {
		// Zero-pad past the largest fan-out so lexicographic order matches
		// creation order and Link's sorted-append fast path always hits.
		leaf := mk(fmt.Sprintf("leaf_%06d", i), []string{"out_root"})
		if err := w.AddTask(leaf); err != nil {
			b.Fatal(err)
		}
		if err := w.Link("root", leaf.Name); err != nil {
			b.Fatal(err)
		}
	}
	return w
}

// BenchmarkInvocationThroughput measures end-to-end invocations/sec
// against the in-process serverless platform over real loopback HTTP:
// a 512-task fan-out in dependency mode, pods pre-warmed so the number
// isolates the invocation hot path rather than autoscaling.
func BenchmarkInvocationThroughput(b *testing.B) {
	const tasks = 512
	drive := sharedfs.NewMem()
	p, err := serverless.New(serverless.Options{
		Cluster:        cluster.PaperTestbed(),
		Drive:          drive,
		TimeScale:      0.001,
		InstantScaleUp: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	url, err := p.Start()
	if err != nil {
		b.Fatal(err)
	}
	defer p.Stop()
	if err := p.Apply(serverless.ServiceConfig{
		Name: "wfbench", Workers: 16, MinScale: 8, MaxScale: 32,
	}); err != nil {
		b.Fatal(err)
	}
	m, err := wfm.New(wfm.Options{
		Drive:       drive,
		TimeScale:   0.001,
		InputWait:   5000,
		MaxParallel: 64,
		Scheduling:  wfm.ScheduleDependency,
	})
	if err != nil {
		b.Fatal(err)
	}
	w := invocationBenchWorkflow(b, tasks, url)
	b.ReportAllocs()
	b.ResetTimer()
	var totalWall time.Duration
	for i := 0; i < b.N; i++ {
		res, err := m.Run(context.Background(), w)
		if err != nil {
			b.Fatal(err)
		}
		totalWall += res.Wall
	}
	b.StopTimer()
	b.ReportMetric(float64(tasks)*float64(b.N)/totalWall.Seconds(), "invocations/s")
}

// BenchmarkInvocationThroughputBatched is the headline number for the
// batched invocation pipeline: a 100k-task fan-out in dependency mode
// with Options.Batching on, against the same in-process platform over
// real loopback HTTP. Ready leaves coalesce into /invoke-batch POSTs
// of up to 512 pre-encoded frames, so the per-task HTTP round trip —
// the wall the unbatched 512-task benchmark above runs into at ~6k
// invocations/s — disappears from the hot path. The acceptance target
// is >=10x the unbatched invocations/s recorded in BENCH_pr3.json.
func BenchmarkInvocationThroughputBatched(b *testing.B) {
	const tasks = 100_000
	drive := sharedfs.NewMem()
	p, err := serverless.New(serverless.Options{
		Cluster:        cluster.PaperTestbed(),
		Drive:          drive,
		TimeScale:      0.001,
		InstantScaleUp: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	url, err := p.Start()
	if err != nil {
		b.Fatal(err)
	}
	defer p.Stop()
	if err := p.Apply(serverless.ServiceConfig{
		Name: "wfbench", Workers: 32, MinScale: 8, MaxScale: 64,
	}); err != nil {
		b.Fatal(err)
	}
	m, err := wfm.New(wfm.Options{
		Drive:     drive,
		TimeScale: 0.001,
		InputWait: 5000,
		// Far more submitters than the batch bound, so batches seal on
		// count rather than linger and the dispatcher stays saturated.
		MaxParallel: 2048,
		Scheduling:  wfm.ScheduleDependency,
		Batching: wfm.BatchOptions{
			Enabled:  true,
			MaxTasks: 512,
			Linger:   2, // nominal seconds; 2ms wall at this TimeScale
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	w := invocationBenchWorkflow(b, tasks, url)
	b.ReportAllocs()
	b.ResetTimer()
	var totalWall time.Duration
	for i := 0; i < b.N; i++ {
		res, err := m.Run(context.Background(), w)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Failed) != 0 {
			b.Fatalf("failed tasks: %d", len(res.Failed))
		}
		totalWall += res.Wall
	}
	b.StopTimer()
	b.ReportMetric(float64(tasks)*float64(b.N)/totalWall.Seconds(), "invocations/s")
}

// BenchmarkMemoizedRerun is the headline number for content-addressed
// memoization: an unchanged 100k-task re-run served entirely from the
// memo cache. The setup executes the workflow once cold through the
// batched pipeline to populate the cache, then each timed iteration
// re-runs the identical workflow on the same drive + cache: every task
// resolves to a fingerprint hit with verified outputs and zero HTTP
// invocations, so the wall collapses to the probe (one SHA-256 per
// task) plus scheduling. The acceptance target is a >=20x speedup over
// the cold run, reported as the "speedup" metric; "tasks/s" is the
// gated regression metric.
func BenchmarkMemoizedRerun(b *testing.B) {
	const tasks = 100_000
	drive := sharedfs.NewMem()
	p, err := serverless.New(serverless.Options{
		Cluster:        cluster.PaperTestbed(),
		Drive:          drive,
		TimeScale:      0.001,
		InstantScaleUp: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	url, err := p.Start()
	if err != nil {
		b.Fatal(err)
	}
	defer p.Stop()
	if err := p.Apply(serverless.ServiceConfig{
		Name: "wfbench", Workers: 32, MinScale: 8, MaxScale: 64,
	}); err != nil {
		b.Fatal(err)
	}
	cache, err := memo.Open(filepath.Join(b.TempDir(), "memo.cache"))
	if err != nil {
		b.Fatal(err)
	}
	defer cache.Close()
	m, err := wfm.New(wfm.Options{
		Drive:       drive,
		TimeScale:   0.001,
		InputWait:   5000,
		MaxParallel: 2048,
		Scheduling:  wfm.ScheduleDependency,
		Batching: wfm.BatchOptions{
			Enabled:  true,
			MaxTasks: 512,
			Linger:   2,
		},
		Memoize: cache,
	})
	if err != nil {
		b.Fatal(err)
	}
	w := invocationBenchWorkflow(b, tasks, url)

	// Cold run: every task misses, executes, and lands in the cache.
	// Its wall time is the baseline the speedup metric divides by.
	cold, err := m.Run(context.Background(), w)
	if err != nil {
		b.Fatal(err)
	}
	if len(cold.Failed) != 0 {
		b.Fatalf("cold run failed tasks: %d", len(cold.Failed))
	}
	if cold.Memo == nil || cold.Memo.Misses != tasks {
		b.Fatalf("cold run memo state: %+v", cold.Memo)
	}

	b.ReportAllocs()
	b.ResetTimer()
	var totalWall time.Duration
	for i := 0; i < b.N; i++ {
		res, err := m.Run(context.Background(), w)
		if err != nil {
			b.Fatal(err)
		}
		if res.Memo == nil || res.Memo.Hits != tasks {
			b.Fatalf("re-run not fully memoized: %+v", res.Memo)
		}
		totalWall += res.Wall
	}
	b.StopTimer()
	b.ReportMetric(float64(tasks)*float64(b.N)/totalWall.Seconds(), "tasks/s")
	b.ReportMetric(cold.Wall.Seconds()/(totalWall.Seconds()/float64(b.N)), "speedup")
}
