// Package wfserverless is a from-scratch Go reproduction of "Enabling
// HPC Scientific Workflows for Serverless" (Da Silva et al., SC 2024).
//
// The module implements the paper's full framework and every substrate
// its evaluation depends on:
//
//   - internal/recipes, internal/wfgen, internal/wfinstances: the
//     WfCommons-equivalent generator pipeline (WfInstances -> WfChef ->
//     WfGen) for the seven applications of the paper (Blast, BWA,
//     Cycles, Epigenomics, Genomes, Seismology, Srasearch);
//   - internal/translator: the paper's Knative translator plus
//     LocalContainer, Pegasus, Nextflow, and CNCF Serverless Workflow
//     DSL outputs;
//   - internal/wfbench: WfBench as a Service (CPU duty-cycle stress,
//     memory ballast with --vm-keep semantics, sized file I/O) behind
//     HTTP;
//   - internal/serverless, internal/container: the Knative-equivalent
//     platform (ingress, pods, KPA-style autoscaler, cold starts,
//     scale-to-zero) and the bare-metal local-container baseline;
//   - internal/wfm: the serverless workflow manager — the paper's core
//     contribution — executing DAGs over HTTP either phase by phase
//     (the paper's barrier design) or dependency-driven via an
//     incremental ready-set scheduler (dag.Scheduler) that eliminates
//     phase barriers, inter-phase delays, and shared-drive polling;
//   - internal/cluster, internal/metrics, internal/sharedfs: the
//     two-node testbed model with RAPL-style power, PCP-style sampling,
//     and the shared drive;
//   - internal/experiments, internal/analysis, internal/model: the
//     140-experiment evaluation harness behind Tables I-II and Figures
//     3-7, the notebook-equivalent analysis, and a closed-form
//     performance model.
//
// This file's package exists to host the top-level benchmark harness
// (bench_test.go), which regenerates every table and figure of the
// paper's evaluation; see README.md for the tour and EXPERIMENTS.md for
// paper-vs-measured results.
package wfserverless
