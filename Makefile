GO ?= go
# BENCHTIME tunes the tracked bench suite; CI smoke runs use a short
# value (e.g. BENCHTIME=1x) so the job bounds on build+vet, not timing.
BENCHTIME ?= 1s
BENCHOUT ?= BENCH_pr9.json
# BASELINE is the checked-in reference the regression gate compares
# fresh runs against; REGRESS_PCT is the tolerated drop before failing.
BASELINE ?= BENCH_pr9.json
REGRESS_PCT ?= 10

.PHONY: all build test tier1 check race race-obs race-durable race-memo race-health race-service health-smoke service-smoke bench bench-all bench-sched bench-regression vet clean

all: tier1

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# tier1 is the gate every change must keep green.
tier1: build test

vet:
	$(GO) vet ./...

# Pre-build the race-instrumented packages so compilation of later
# packages does not overlap running test binaries — the wall-clock
# shape tests are timing-sensitive on small machines.
race:
	$(GO) build -race ./...
	$(GO) test -race ./...

# race-obs is the focused race gate for the observability plane: span
# pooling, the monitor's atomics, and the manager hot path they ride on
# are the concurrency-dense code most likely to regress under -race.
race-obs:
	$(GO) test -race ./internal/obs/... ./internal/wfm/...

# race-durable is the focused race gate for durable execution: the
# journal's group committer runs concurrently with appenders, rotation,
# and Close/Abort, and the manager journals from every worker goroutine
# — the lock split (staging vs file I/O) is exactly the kind of code
# -race exists for.
race-durable:
	$(GO) test -race ./internal/journal/... ./internal/wfm/...

# race-memo is the focused race gate for content-addressed memoization:
# every worker goroutine records output manifests through the shared
# memoState/Cache on task completion while the drain loop reads hit
# state, and the cache's buffered appender is locked independently.
race-memo:
	$(GO) test -race ./internal/memo/... ./internal/wfm/...

# race-health is the focused race gate for the run-health plane: the
# straggler watchdog scans in-flight attempts while workers start and
# finish them, speculation races two attempts over one task slot, and
# the monitor/tracker expositions read concurrently with the hooks.
race-health:
	$(GO) test -race ./internal/health/... ./internal/metrics/... ./internal/wfm/...

# race-service is the focused race gate for the multi-run control
# plane: the fair-share dispatcher grants task slots from every run's
# worker goroutines while runs start/finish/cancel, the run registry
# is read by HTTP handlers concurrently with executors, and the shared
# TaskGate is exactly the cross-manager state wfmd adds on top of wfm.
race-service:
	$(GO) test -race ./internal/wfmd/... ./internal/wfm/...

# service-smoke boots the real wfmd binary, submits runs for two
# tenants over HTTP, kills the daemon mid-run (SIGKILL), restarts it on
# the same data dir, and asserts every run resumes to success — the
# end-to-end version of the restart/resume tests.
service-smoke:
	./scripts/service_smoke.sh

# health-smoke runs the straggler campaign end to end: injected-tail
# tasks must all be flagged, speculative retry must cut the makespan by
# >= 25%, and the journal must stay duplicate-free with speculation on.
# cmd/experiments exits non-zero if any of those gates fail.
health-smoke:
	$(GO) run ./cmd/experiments -suite health -health-tasks 16 -health-delay-ms 800

# check is the pre-merge bar: tier1 plus vet and the race detector.
check: tier1 vet race

# bench runs the tracked throughput suite — scheduler drains on
# chain/fanout/diamond/random DAGs at 1k/10k/100k tasks (CSR vs the
# map-based baseline), manager scheduling-mode and allocation
# benchmarks, invocations/sec against the in-process platform, and the
# memoized 100k-task re-run — and records the parsed results in
# $(BENCHOUT).
bench:
	@tmp=$$(mktemp) || exit 1; \
	( $(GO) test ./internal/dag -run xxx -bench 'SchedulerThroughput|CSRBuild' -benchmem -benchtime $(BENCHTIME) && \
	  $(GO) test ./internal/wfm -run xxx -bench 'BenchmarkScheduling|Allocs|TracingOverhead|JournalOverhead|HealthOverhead' -benchmem -benchtime $(BENCHTIME) -short -timeout 1800s && \
	  $(GO) test . -run xxx -bench 'InvocationThroughput|MemoizedRerun' -benchmem -benchtime $(BENCHTIME) -timeout 1800s \
	) > $$tmp 2>&1; \
	status=$$?; cat $$tmp; \
	if [ $$status -ne 0 ]; then rm -f $$tmp; echo "bench: benchmark run failed" >&2; exit 1; fi; \
	$(GO) run ./cmd/benchfmt -q -o $(BENCHOUT) < $$tmp; \
	rm -f $$tmp

# bench-regression re-runs the invocation-throughput and memoized-rerun
# benchmarks and fails (exit 2 from benchfmt) if invocations/s or the
# memo cache's re-run tasks/s dropped more than $(REGRESS_PCT)% against
# the checked-in $(BASELINE). benchfmt gates one metric per pass, so
# the same output is checked twice. Single-run benchmarks are noisy on
# small machines, hence the generous default.
bench-regression:
	@tmp=$$(mktemp) || exit 1; \
	$(GO) test . -run xxx -bench 'InvocationThroughput|MemoizedRerun' -benchmem -benchtime $(BENCHTIME) -timeout 1800s > $$tmp 2>&1; \
	status=$$?; cat $$tmp; \
	if [ $$status -ne 0 ]; then rm -f $$tmp; echo "bench-regression: benchmark run failed" >&2; exit 1; fi; \
	$(GO) run ./cmd/benchfmt -baseline $(BASELINE) -regress-metric invocations/s -regress-pct $(REGRESS_PCT) < $$tmp; \
	status=$$?; \
	$(GO) run ./cmd/benchfmt -q -baseline $(BASELINE) -regress-metric tasks/s -regress-pct $(REGRESS_PCT) < $$tmp >/dev/null || status=2; \
	rm -f $$tmp; exit $$status

# bench-all sweeps every benchmark in the repo (paper figures included).
bench-all:
	$(GO) test -bench=. -benchmem ./...

# bench-sched compares phase-barrier vs dependency-driven scheduling on
# the synthetic shapes and the incremental ready-set scheduler.
bench-sched:
	$(GO) test ./internal/wfm -run xxx -bench 'BenchmarkScheduling|Allocs' -benchmem
	$(GO) test ./internal/dag -run xxx -bench 'Scheduler|Levels' -benchmem

clean:
	$(GO) clean ./...
