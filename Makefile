GO ?= go

.PHONY: all build test tier1 check race bench bench-sched vet clean

all: tier1

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# tier1 is the gate every change must keep green.
tier1: build test

vet:
	$(GO) vet ./...

# Pre-build the race-instrumented packages so compilation of later
# packages does not overlap running test binaries — the wall-clock
# shape tests are timing-sensitive on small machines.
race:
	$(GO) build -race ./...
	$(GO) test -race ./...

# check is the pre-merge bar: tier1 plus vet and the race detector.
check: tier1 vet race

bench:
	$(GO) test -bench=. -benchmem ./...

# bench-sched compares phase-barrier vs dependency-driven scheduling on
# the synthetic shapes and the incremental ready-set scheduler.
bench-sched:
	$(GO) test ./internal/wfm -run xxx -bench 'BenchmarkScheduling|Allocs' -benchmem
	$(GO) test ./internal/dag -run xxx -bench 'Scheduler|Levels' -benchmem

clean:
	$(GO) clean ./...
