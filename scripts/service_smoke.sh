#!/usr/bin/env bash
# service_smoke.sh — end-to-end smoke test of the multi-run control
# plane with real processes: boot wfbench-serve and wfmd, submit runs
# for two tenants over plain HTTP, SIGKILL the daemon mid-run, restart
# it on the same data dir, land a third run through `wfm -submit`, and
# assert every run reaches succeeded. Finishes by checking /metrics
# and rendering the data dir with `analyze -journal`.
set -euo pipefail

cd "$(dirname "$0")/.."

WORK="$(mktemp -d "${TMPDIR:-/tmp}/wfmd-smoke-XXXXXX")"
BIN="$WORK/bin"
BACKEND_ADDR=127.0.0.1:18080
WFMD_ADDR=127.0.0.1:19433
BASE="http://$WFMD_ADDR"
BACKEND_PID=""
WFMD_PID=""

cleanup() {
    [ -n "$WFMD_PID" ] && kill "$WFMD_PID" 2>/dev/null || true
    [ -n "$BACKEND_PID" ] && kill "$BACKEND_PID" 2>/dev/null || true
    wait 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

fail() { echo "service_smoke: FAIL: $*" >&2; exit 1; }

wait_http() { # url, label
    for _ in $(seq 1 100); do
        curl -fsS -o /dev/null "$1" 2>/dev/null && return 0
        sleep 0.1
    done
    fail "$2 never answered at $1"
}

run_id() { grep -o '"id":"[^"]*"' | head -1 | cut -d'"' -f4; }

echo "== build =="
mkdir -p "$BIN"
go build -o "$BIN" ./cmd/wfmd ./cmd/wfm ./cmd/wfgen ./cmd/wfbench-serve ./cmd/analyze

echo "== backend =="
"$BIN/wfbench-serve" -addr "$BACKEND_ADDR" -workdir "$WORK/shared" \
    -burn=false -time-scale 0.02 >"$WORK/backend.log" 2>&1 &
BACKEND_PID=$!
wait_http "http://$BACKEND_ADDR/healthz" "wfbench-serve"

echo "== workflows =="
"$BIN/wfgen" -recipe blast -tasks 30 -seed 3 -target local \
    -url "http://$BACKEND_ADDR" -workdir "$WORK/shared" -o "$WORK/wf-a.json"
"$BIN/wfgen" -recipe cycles -tasks 30 -seed 5 -target local \
    -url "http://$BACKEND_ADDR" -workdir "$WORK/shared" -o "$WORK/wf-b.json"
"$BIN/wfgen" -recipe seismology -tasks 20 -seed 7 -target local \
    -url "http://$BACKEND_ADDR" -workdir "$WORK/shared" -o "$WORK/wf-c.json"

start_wfmd() {
    "$BIN/wfmd" -addr "$WFMD_ADDR" -data-dir "$WORK/wfmd" -workdir "$WORK/shared" \
        -tenant team-a:3 -tenant team-b:1 -task-slots 8 \
        -time-scale 0.02 -retries 2 -log-level info >>"$WORK/wfmd.log" 2>&1 &
    WFMD_PID=$!
    wait_http "$BASE/healthz" "wfmd"
}

echo "== daemon (life 1) =="
start_wfmd

RUN_A=$(curl -fsS -X POST --data-binary @"$WORK/wf-a.json" "$BASE/v1/runs?tenant=team-a" | run_id)
RUN_B=$(curl -fsS -X POST --data-binary @"$WORK/wf-b.json" "$BASE/v1/runs?tenant=team-b&priority=high" | run_id)
[ -n "$RUN_A" ] && [ -n "$RUN_B" ] || fail "submissions were not accepted (a='$RUN_A' b='$RUN_B')"
echo "submitted $RUN_A (team-a), $RUN_B (team-b)"

# Let the runs make real progress, then kill the daemon the hard way.
for _ in $(seq 1 200); do
    DONE=$(curl -fsS "$BASE/v1/runs/$RUN_A" | grep -o '"done":[0-9]*' | cut -d: -f2)
    [ "${DONE:-0}" -ge 3 ] && break
    sleep 0.1
done
[ "${DONE:-0}" -ge 3 ] || fail "run $RUN_A made no progress before the kill"

echo "== SIGKILL mid-run (after $DONE completed tasks) =="
kill -9 "$WFMD_PID"
wait "$WFMD_PID" 2>/dev/null || true
WFMD_PID=""

echo "== daemon (life 2, same data dir) =="
start_wfmd

# A post-restart submission through the wfm client (exits non-zero
# unless its run succeeds, riding out any 429s on the way in).
"$BIN/wfm" -workflow "$WORK/wf-c.json" -submit "$BASE" -tenant team-b -poll 0.1

# Every run — the two interrupted ones included — must reach succeeded.
for _ in $(seq 1 300); do
    LIST=$(curl -fsS "$BASE/v1/runs")
    TOTAL=$(echo "$LIST" | grep -o '"state":' | wc -l)
    OK=$(echo "$LIST" | grep -o '"state":"succeeded"' | wc -l)
    [ "$TOTAL" -eq 3 ] && [ "$OK" -eq 3 ] && break
    echo "$LIST" | grep -o '"state":"\(failed\|cancelled\)"' | head -1 | grep -q . && {
        echo "$LIST"; fail "a run reached a non-succeeded terminal state"; }
    sleep 0.1
done
[ "${OK:-0}" -eq 3 ] || { echo "$LIST"; fail "expected 3 succeeded runs, got $OK of $TOTAL"; }
echo "all 3 runs succeeded across the restart"

echo "== metrics =="
METRICS=$(curl -fsS "$BASE/metrics")
echo "$METRICS" | grep -q 'wfmd_runs_completed_total{tenant="team-a",state="succeeded"} 1' \
    || fail "team-a completion missing from /metrics"
echo "$METRICS" | grep -q 'wfmd_runs_completed_total{tenant="team-b",state="succeeded"} 2' \
    || fail "team-b completions missing from /metrics"

echo "== analyze -journal on the data dir =="
"$BIN/analyze" -journal "$WORK/wfmd" | tee "$WORK/analyze.out"
[ "$(grep -c succeeded "$WORK/analyze.out")" -eq 3 ] || fail "analyze table should list 3 succeeded runs"

echo "service_smoke: PASS"
