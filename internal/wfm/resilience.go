package wfm

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"strconv"
	"sync"
	"time"
)

// Sentinel errors of the invocation resilience layer.
var (
	// ErrTaskTimeout marks an invocation abandoned because the task's
	// own deadline (Options.TaskTimeout) expired. It is terminal: the
	// task's time budget is spent, so no further retries are attempted.
	ErrTaskTimeout = errors.New("task timeout")
	// ErrCircuitOpen marks an attempt shed because the endpoint's
	// circuit breaker is open: the endpoint's recent failure rate
	// crossed the threshold and the cooldown has not elapsed yet.
	ErrCircuitOpen = errors.New("circuit open")
)

// BreakerOptions configures the per-endpoint circuit breaker. The zero
// value disables it; set Enabled and the defaults below kick in for the
// remaining zero fields.
type BreakerOptions struct {
	// Enabled turns the breaker on.
	Enabled bool
	// Window is the sliding window of attempt outcomes per endpoint;
	// zero defaults to 20.
	Window int
	// FailureThreshold opens the breaker when the window's failure
	// rate reaches it (with at least MinSamples outcomes recorded);
	// zero defaults to 0.5.
	FailureThreshold float64
	// MinSamples is the minimum window fill before the threshold is
	// evaluated; zero defaults to 5.
	MinSamples int
	// Cooldown is how long (nominal seconds, scaled like every other
	// duration) an open breaker rejects attempts before letting
	// half-open probes through; zero defaults to 5.
	Cooldown float64
	// HalfOpenProbes is how many concurrent trial attempts a half-open
	// breaker admits; zero defaults to 1.
	HalfOpenProbes int
}

func (b *BreakerOptions) withDefaults() BreakerOptions {
	o := *b
	if o.Window <= 0 {
		o.Window = 20
	}
	if o.FailureThreshold <= 0 {
		o.FailureThreshold = 0.5
	}
	if o.MinSamples <= 0 {
		o.MinSamples = 5
	}
	if o.Cooldown <= 0 {
		o.Cooldown = 5
	}
	if o.HalfOpenProbes <= 0 {
		o.HalfOpenProbes = 1
	}
	return o
}

func (b *BreakerOptions) validate() error {
	if !b.Enabled {
		return nil
	}
	if b.FailureThreshold < 0 || b.FailureThreshold > 1 {
		return fmt.Errorf("wfm: breaker FailureThreshold %v outside [0,1]", b.FailureThreshold)
	}
	if b.Window < 0 || b.MinSamples < 0 || b.HalfOpenProbes < 0 {
		return errors.New("wfm: negative breaker window/samples/probes")
	}
	if b.Cooldown < 0 {
		return errors.New("wfm: negative breaker Cooldown")
	}
	return nil
}

// Breaker states as they appear in Result.Breakers and traces.
const (
	BreakerClosed   = "closed"
	BreakerOpen     = "open"
	BreakerHalfOpen = "half-open"
)

// BreakerTransition records one circuit-breaker state change during a
// run, surfaced in Result.Breakers and in the trace output.
type BreakerTransition struct {
	// Endpoint is the api_url the breaker guards.
	Endpoint string
	// From and To are breaker states (closed/open/half-open).
	From, To string
	// At is the offset from run start.
	At time.Duration
	// FailureRate is the sliding-window failure rate at the moment of
	// the transition (meaningful for transitions out of closed).
	FailureRate float64
}

// attemptOutcome classifies one finished attempt for the breaker.
type attemptOutcome int

const (
	outcomeSuccess attemptOutcome = iota // endpoint answered usefully
	outcomeFailure                       // endpoint-side failure (transport, 5xx, 429, timeout)
	outcomeAborted                       // run-level cancellation: not the endpoint's fault
)

// breaker is one endpoint's circuit breaker: closed counts outcomes in
// a sliding window and opens past the failure threshold; open rejects
// until the cooldown elapses; half-open admits a bounded number of
// probes and closes (or re-opens) on their outcome.
type breaker struct {
	opts     BreakerOptions
	cooldown time.Duration
	endpoint string
	rs       *resilience

	mu       sync.Mutex
	state    string
	window   []bool // true = failure
	idx      int
	filled   int
	failures int
	openedAt time.Time
	probes   int
}

func newBreaker(endpoint string, opts BreakerOptions, cooldown time.Duration, rs *resilience) *breaker {
	return &breaker{
		opts:     opts,
		cooldown: cooldown,
		endpoint: endpoint,
		rs:       rs,
		state:    BreakerClosed,
		window:   make([]bool, opts.Window),
	}
}

// transition must be called with b.mu held.
func (b *breaker) transition(to string) {
	from := b.state
	b.state = to
	b.rs.addTransition(BreakerTransition{
		Endpoint:    b.endpoint,
		From:        from,
		To:          to,
		At:          time.Since(b.rs.start),
		FailureRate: b.failureRateLocked(),
	})
}

func (b *breaker) failureRateLocked() float64 {
	if b.filled == 0 {
		return 0
	}
	return float64(b.failures) / float64(b.filled)
}

func (b *breaker) resetWindowLocked() {
	for i := range b.window {
		b.window[i] = false
	}
	b.idx, b.filled, b.failures = 0, 0, 0
}

// allow reports whether an attempt may proceed. When it returns false
// the attempt is shed with ErrCircuitOpen and wait is how long until
// the breaker would admit a probe.
func (b *breaker) allow() (ok bool, wait time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true, 0
	case BreakerOpen:
		remaining := b.cooldown - time.Since(b.openedAt)
		if remaining > 0 {
			return false, remaining
		}
		b.transition(BreakerHalfOpen)
		b.probes = 1
		return true, 0
	case BreakerHalfOpen:
		if b.probes < b.opts.HalfOpenProbes {
			b.probes++
			return true, 0
		}
		return false, b.cooldown
	}
	return true, 0
}

// record feeds one attempt outcome back. Aborted attempts release a
// half-open probe slot without influencing the state machine.
func (b *breaker) record(out attemptOutcome) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerHalfOpen:
		if b.probes > 0 {
			b.probes--
		}
		switch out {
		case outcomeSuccess:
			b.resetWindowLocked()
			b.transition(BreakerClosed)
		case outcomeFailure:
			b.openedAt = time.Now()
			b.transition(BreakerOpen)
		}
	case BreakerClosed:
		if out == outcomeAborted {
			return
		}
		fail := out == outcomeFailure
		if b.filled == len(b.window) {
			if b.window[b.idx] {
				b.failures--
			}
		} else {
			b.filled++
		}
		b.window[b.idx] = fail
		if fail {
			b.failures++
		}
		b.idx = (b.idx + 1) % len(b.window)
		if b.filled >= b.opts.MinSamples && b.failureRateLocked() >= b.opts.FailureThreshold {
			b.openedAt = time.Now()
			b.transition(BreakerOpen)
		}
	case BreakerOpen:
		// A straggler attempt that started before the breaker opened;
		// its outcome carries no new information.
	}
}

// State returns the breaker's current state name (test hook).
func (b *breaker) State() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// resilience is the run-scoped state of the resilience layer: one
// breaker per endpoint plus the transition log. A fresh one is created
// per Run so breaker history never bleeds between runs and transition
// offsets are relative to this run's start.
type resilience struct {
	m     *Manager
	start time.Time
	// batch is the run's batching dispatcher; nil when Options.Batching
	// is disabled, keeping the single-task invocation path untouched.
	batch *batcher
	// health is the run's health plane; nil when Options.Health is
	// unset, keeping the attempt path untouched.
	health *healthState

	mu          sync.Mutex
	breakers    map[string]*breaker
	transitions []BreakerTransition
}

func (m *Manager) newResilience(start time.Time) *resilience {
	return &resilience{m: m, start: start, breakers: make(map[string]*breaker)}
}

// breakerFor returns the endpoint's breaker, or nil when breakers are
// disabled.
func (rs *resilience) breakerFor(endpoint string) *breaker {
	if !rs.m.opts.Breaker.Enabled {
		return nil
	}
	rs.mu.Lock()
	defer rs.mu.Unlock()
	br := rs.breakers[endpoint]
	if br == nil {
		opts := rs.m.opts.Breaker.withDefaults()
		br = newBreaker(endpoint, opts, rs.m.scaled(opts.Cooldown), rs)
		rs.breakers[endpoint] = br
	}
	return br
}

func (rs *resilience) addTransition(t BreakerTransition) {
	// Called with the breaker's own lock held; rs.mu only guards the
	// shared slice and map, so the order is always breaker.mu → rs.mu.
	rs.mu.Lock()
	rs.transitions = append(rs.transitions, t)
	rs.mu.Unlock()
	rs.m.opts.Monitor.breakerChanged(t.From, t.To)
	rs.health.event("breaker", "", t.Endpoint, 0, t.From+"->"+t.To)
	if l := rs.m.opts.Logger; l != nil {
		l.Warn("circuit breaker transition", "endpoint", t.Endpoint,
			"from", t.From, "to", t.To, "failure_rate", t.FailureRate)
	}
}

// take returns the accumulated transitions (called once, at run end).
func (rs *resilience) take() []BreakerTransition {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	out := rs.transitions
	rs.transitions = nil
	return out
}

// retryDelay computes the scaled sleep before retry attempt number
// attempt (0-based): full-jitter exponential backoff — uniform in
// [0, min(cap, base·2^attempt)] — unless the server supplied an
// explicit Retry-After, which is honoured directly (still capped).
func (m *Manager) retryDelay(attempt int, retryAfter time.Duration) time.Duration {
	return BackoffDelay(attempt, m.scaled(m.opts.RetryBackoff), m.backoffCap(), retryAfter)
}

// BackoffDelay is the backoff schedule the resilience layer sleeps on
// between attempts, exported so HTTP clients of this repo's services
// (wfmd submission, 429 + Retry-After) can reuse the exact policy:
// full-jitter exponential backoff — uniform in
// [0, min(ceiling, base·2^attempt)] — unless retryAfter is positive, in
// which case the server's hint is honoured directly (still capped by
// ceiling). A non-positive base disables the schedule (returns 0)
// except when retryAfter is given.
func BackoffDelay(attempt int, base, ceiling, retryAfter time.Duration) time.Duration {
	if retryAfter > 0 {
		if ceiling > 0 && retryAfter > ceiling {
			return ceiling
		}
		return retryAfter
	}
	if base <= 0 {
		return 0
	}
	d := base
	for i := 0; i < attempt; i++ {
		d *= 2
		if ceiling > 0 && d >= ceiling {
			d = ceiling
			break
		}
	}
	if ceiling > 0 && d > ceiling {
		d = ceiling
	}
	if d <= 0 {
		return 0
	}
	return time.Duration(rand.Int64N(int64(d) + 1))
}

// backoffCap is the scaled ceiling on any single retry delay.
func (m *Manager) backoffCap() time.Duration {
	max := m.opts.RetryBackoffMax
	if max <= 0 {
		max = 30 // nominal seconds
	}
	return m.scaled(max)
}

// ParseRetryAfter reads a Retry-After header value as (possibly
// fractional) seconds. HTTP-date forms and garbage return 0, leaving
// the backoff schedule in charge.
func ParseRetryAfter(v string) time.Duration {
	if v == "" {
		return 0
	}
	secs, err := strconv.ParseFloat(v, 64)
	if err != nil || secs <= 0 {
		return 0
	}
	return time.Duration(secs * float64(time.Second))
}
