package wfm

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"wfserverless/internal/sharedfs"
	"wfserverless/internal/wfbench"
	"wfserverless/internal/wfformat"
)

// benchStub is stubService for benchmarks: executes WfBench requests
// against the drive after a fixed delay.
func benchStub(b *testing.B, drive sharedfs.Drive, delay time.Duration) *httptest.Server {
	b.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var req wfbench.Request
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if delay > 0 {
			time.Sleep(delay)
		}
		for name, size := range req.Out {
			drive.WriteFile(name, size)
		}
		json.NewEncoder(w).Encode(&wfbench.Response{Name: req.Name, OK: true})
	}))
	b.Cleanup(srv.Close)
	return srv
}

// benchModes runs one workflow shape under both scheduling modes and
// reports wall time per execution. PhaseDelay 1 at TimeScale 0.002 puts
// a 2ms delay after every phase in phase mode — the dead time
// dependency mode exists to eliminate.
func benchModes(b *testing.B, build func(testing.TB, string) *wfformat.Workflow) {
	for _, mode := range []Scheduling{SchedulePhases, ScheduleDependency} {
		b.Run(mode.String(), func(b *testing.B) {
			var total time.Duration
			for i := 0; i < b.N; i++ {
				drive := sharedfs.NewMem()
				srv := benchStub(b, drive, time.Millisecond)
				m, err := New(Options{
					Drive:      drive,
					TimeScale:  0.002,
					PhaseDelay: 1,
					InputWait:  5,
					Scheduling: mode,
				})
				if err != nil {
					b.Fatal(err)
				}
				res, err := m.Run(context.Background(), build(b, srv.URL))
				if err != nil {
					b.Fatal(err)
				}
				total += res.Wall
				srv.Close()
			}
			b.ReportMetric(float64(total.Milliseconds())/float64(b.N), "wall_ms/run")
		})
	}
}

// BenchmarkSchedulingDeepChain is the shape where phase barriers hurt
// most: 16 single-task phases, 15 inter-phase delays (30ms dead time at
// this TimeScale) that dependency mode eliminates entirely.
func BenchmarkSchedulingDeepChain(b *testing.B) {
	benchModes(b, func(tb testing.TB, url string) *wfformat.Workflow {
		return chainWorkflow(tb, 16, url)
	})
}

// BenchmarkSchedulingWideFanOut is the shape where phase mode is near
// optimal (3 phases, massive intra-phase parallelism): dependency mode
// must not regress it beyond the two eliminated delays.
func BenchmarkSchedulingWideFanOut(b *testing.B) {
	benchModes(b, func(tb testing.TB, url string) *wfformat.Workflow {
		return fanoutWorkflow(tb, 64, url)
	})
}

// BenchmarkSchedulingDiamond mixes joins (true barriers) with
// intra-diamond parallelism.
func BenchmarkSchedulingDiamond(b *testing.B) {
	benchModes(b, func(tb testing.TB, url string) *wfformat.Workflow {
		return diamondWorkflow(tb, 5, 8, url)
	})
}

// BenchmarkInvokeAllocs measures per-invocation allocations on the
// manager's HTTP hot path (run with -benchmem): the pre-rendered
// invocation plan — payload arena, request templates, pooled body
// readers and decode buffers — keeps the request-building side flat.
func BenchmarkInvokeAllocs(b *testing.B) {
	drive := sharedfs.NewMem()
	srv := benchStub(b, drive, 0)
	m, err := New(Options{Drive: drive, TimeScale: 1, InputWait: 1})
	if err != nil {
		b.Fatal(err)
	}
	p, err := newInvocationPlan([]*wfformat.Task{synthTask("bench", srv.URL+"/wfbench", nil)})
	if err != nil {
		b.Fatal(err)
	}
	rs := m.newResilience(time.Now())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := m.invoke(context.Background(), p, 0, rs, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPhaseDispatchAllocs measures a whole wide phase through Run
// in phase mode (run with -benchmem): the contiguous TaskResult block
// and pooled buffers cut per-task overhead on fan-out phases.
func BenchmarkPhaseDispatchAllocs(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		drive := sharedfs.NewMem()
		srv := benchStub(b, drive, 0)
		m, err := New(Options{Drive: drive, TimeScale: 0.0005, InputWait: 5})
		if err != nil {
			b.Fatal(err)
		}
		w := fanoutWorkflow(b, 128, srv.URL)
		b.StartTimer()
		if _, err := m.Run(context.Background(), w); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		srv.Close()
		b.StartTimer()
	}
}
