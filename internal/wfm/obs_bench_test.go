package wfm

import (
	"context"
	"testing"
	"time"

	"wfserverless/internal/obs"
	"wfserverless/internal/sharedfs"
)

// BenchmarkTracingOverheadDrain measures what the tracing layer costs
// on the PR-3 drain path: a 10k-wide fan-out executed with
// dependency scheduling and a 256-worker pool against a zero-delay
// stub, with tracing off, present-but-unsampled, and fully sampled.
// Run with -benchmem: off and unsampled must match in both wall time
// and allocs/op — an unsampled run executes the identical instruction
// path (nil root span → every per-task and per-attempt tracing call is
// a nil-receiver no-op, no traceparent header is built).
// TestUnsampledPathZeroAlloc in internal/obs pins the 0-alloc claim
// exactly at the API level, where HTTP jitter can't blur it.
func BenchmarkTracingOverheadDrain(b *testing.B) {
	const width = 10_000
	cases := []struct {
		name   string
		tracer func() *obs.Tracer
	}{
		{"off", func() *obs.Tracer { return nil }},
		{"unsampled", func() *obs.Tracer {
			// 1-in-2^30 deterministic sampling: burn the one sampled
			// slot so every benchmarked run takes the unsampled path
			// with the sampling knob still live.
			tr := obs.NewTracer(obs.Options{SampleRatio: 1.0 / (1 << 30)})
			tr.StartRoot("warm", obs.LayerWFM).Finish()
			tr.Take()
			return tr
		}},
		{"sampled", func() *obs.Tracer { return obs.NewTracer(obs.Options{SampleRatio: 1}) }},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			drive := sharedfs.NewMem()
			srv := benchStub(b, drive, 0)
			w := fanoutWorkflow(b, width, srv.URL)
			m, err := New(Options{
				Drive:       drive,
				TimeScale:   0.002,
				InputWait:   30,
				MaxParallel: 256,
				Scheduling:  ScheduleDependency,
				Tracer:      tc.tracer(),
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			var total time.Duration
			for i := 0; i < b.N; i++ {
				res, err := m.Run(context.Background(), w)
				if err != nil {
					b.Fatal(err)
				}
				total += res.Wall
			}
			b.ReportMetric(float64(total.Milliseconds())/float64(b.N), "wall_ms/run")
			b.ReportMetric(float64(width+2)*float64(b.N)/b.Elapsed().Seconds(), "tasks/s")
		})
	}
}
