package wfm

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"

	"wfserverless/internal/obs"
)

// Trace is the serializable execution record of one workflow run — the
// analogue of the per-execution result files the paper's artifact stores
// under experiments/results/workflow_executions.
type Trace struct {
	Workflow   string   `json:"workflow"`
	Scheduling string   `json:"scheduling,omitempty"`
	Makespan   float64  `json:"makespanSeconds"`
	WallMS     float64  `json:"wallMilliseconds"`
	Failed     []string `json:"failed,omitempty"`
	// Warnings are non-fatal anomalies the run pressed on through.
	Warnings []string `json:"warnings,omitempty"`
	// Breakers are circuit-breaker state transitions, in time order.
	Breakers []TraceBreakerEvent `json:"breakers,omitempty"`
	Events   []TraceEvent        `json:"events"`
	// TraceID identifies the run's distributed trace; empty when the
	// run was not sampled.
	TraceID string `json:"traceId,omitempty"`
	// Spans are the distributed-trace spans collected across all layers
	// that shared the run's tracer (WFM, platform, wfbench).
	Spans []obs.Record `json:"spans,omitempty"`
}

// TraceBreakerEvent is one circuit-breaker transition in the trace.
type TraceBreakerEvent struct {
	Endpoint    string  `json:"endpoint"`
	From        string  `json:"from"`
	To          string  `json:"to"`
	AtMS        float64 `json:"atMs"`
	FailureRate float64 `json:"failureRate"`
}

// TraceEvent is one function invocation in the trace.
type TraceEvent struct {
	Name     string `json:"name"`
	Category string `json:"category"`
	Phase    int    `json:"phase"`
	// ReadyMS is when the scheduler released the task; StartMS-ReadyMS
	// is the ready->start queueing latency.
	ReadyMS float64 `json:"readyMs,omitempty"`
	StartMS float64 `json:"startMs"`
	EndMS   float64 `json:"endMs"`
	// Attempts is how many invocation attempts the resilience layer
	// made (> 1 means retries or breaker rejections happened).
	Attempts    int     `json:"attempts,omitempty"`
	Pod         string  `json:"pod,omitempty"`
	ColdStart   bool    `json:"coldStart,omitempty"`
	OutBytes    int64   `json:"outBytes,omitempty"`
	WallSeconds float64 `json:"wallSeconds,omitempty"`
	Error       string  `json:"error,omitempty"`
}

// TraceOf converts a Result into a Trace, events ordered by start time
// then name.
func TraceOf(res *Result) *Trace {
	tr := &Trace{
		Workflow:   res.Workflow,
		Scheduling: res.Scheduling.String(),
		Makespan:   res.Makespan,
		WallMS:     float64(res.Wall.Microseconds()) / 1000,
		Failed:     append([]string(nil), res.Failed...),
		Warnings:   append([]string(nil), res.Warnings...),
		TraceID:    res.TraceID,
		Spans:      obs.RecordsOf(res.Spans),
	}
	for _, bt := range res.Breakers {
		tr.Breakers = append(tr.Breakers, TraceBreakerEvent{
			Endpoint:    bt.Endpoint,
			From:        bt.From,
			To:          bt.To,
			AtMS:        float64(bt.At.Microseconds()) / 1000,
			FailureRate: bt.FailureRate,
		})
	}
	for _, t := range res.Tasks {
		ev := TraceEvent{
			Name:     t.Name,
			Category: t.Category,
			Phase:    t.Phase,
			ReadyMS:  float64(t.Ready.Microseconds()) / 1000,
			StartMS:  float64(t.Start.Microseconds()) / 1000,
			EndMS:    float64(t.End.Microseconds()) / 1000,
			Attempts: t.Attempts,
		}
		if t.Response != nil {
			ev.Pod = t.Response.Pod
			ev.ColdStart = t.Response.ColdStart
			ev.OutBytes = t.Response.OutBytes
			ev.WallSeconds = t.Response.WallSeconds
		}
		if t.Err != nil {
			ev.Error = t.Err.Error()
		}
		tr.Events = append(tr.Events, ev)
	}
	sort.Slice(tr.Events, func(i, j int) bool {
		if tr.Events[i].StartMS != tr.Events[j].StartMS {
			return tr.Events[i].StartMS < tr.Events[j].StartMS
		}
		return tr.Events[i].Name < tr.Events[j].Name
	})
	return tr
}

// WriteJSON emits the trace as indented JSON.
func (tr *Trace) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(tr)
}

// WriteCSV emits the trace events as CSV, one row per invocation.
func (tr *Trace) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"name", "category", "phase", "ready_ms", "start_ms", "end_ms", "attempts", "pod", "error"}); err != nil {
		return err
	}
	for _, ev := range tr.Events {
		if err := cw.Write([]string{
			ev.Name, ev.Category, strconv.Itoa(ev.Phase),
			fmt.Sprintf("%.3f", ev.ReadyMS),
			fmt.Sprintf("%.3f", ev.StartMS), fmt.Sprintf("%.3f", ev.EndMS),
			strconv.Itoa(ev.Attempts),
			ev.Pod, ev.Error,
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteChromeTrace renders the run's span tree as Chrome trace-event
// JSON, loadable in Perfetto or chrome://tracing, with one process row
// per layer (WFM, platform, wfbench).
func (tr *Trace) WriteChromeTrace(w io.Writer) error {
	return obs.WriteChromeTrace(w, tr.Spans)
}

// WriteSpanLog writes the run's spans as a flat JSONL log.
func (tr *Trace) WriteSpanLog(w io.Writer) error {
	return obs.WriteJSONL(w, tr.Spans)
}

// SpanCriticalPath returns the run's longest span chain — the
// root-to-leaf path ending at the span that finished last, which is
// what sets the makespan. Empty when the run recorded no spans.
func (tr *Trace) SpanCriticalPath() []obs.Record {
	return obs.CriticalPath(tr.Spans)
}

// ParseTrace reads a JSON trace.
func ParseTrace(r io.Reader) (*Trace, error) {
	var tr Trace
	if err := json.NewDecoder(r).Decode(&tr); err != nil {
		return nil, fmt.Errorf("wfm: parse trace: %w", err)
	}
	return &tr, nil
}

// CriticalEvents returns, per phase, the event that finished last — the
// stragglers that set the phase span.
func (tr *Trace) CriticalEvents() []TraceEvent {
	last := make(map[int]TraceEvent)
	maxPhase := 0
	for _, ev := range tr.Events {
		if cur, ok := last[ev.Phase]; !ok || ev.EndMS > cur.EndMS {
			last[ev.Phase] = ev
		}
		if ev.Phase > maxPhase {
			maxPhase = ev.Phase
		}
	}
	var out []TraceEvent
	for p := 0; p <= maxPhase; p++ {
		if ev, ok := last[p]; ok {
			out = append(out, ev)
		}
	}
	return out
}
