package wfm

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"

	"wfserverless/internal/obs"
	"wfserverless/internal/wfbench"
)

// BatchOptions configures the per-endpoint batching dispatcher: ready
// tasks destined for the same api_url coalesce into one POST against
// the endpoint's /invoke-batch surface instead of one POST per task,
// amortizing connection, header, and syscall overhead — the HTTP/1
// request-per-task wall at 100k-task scale. The batch body reuses the
// invocation plan's arena-encoded task payloads zero-copy; responses
// come back as a framed stream carrying per-task HTTP semantics, so
// retry, timeout, circuit-breaker, journal, and span behaviour is
// per task exactly as without batching — a failed sub-task retries
// alone (in a later batch), never dragging its batch-mates with it.
// The zero value disables batching and leaves the single-task wire
// format byte-identical to previous releases.
type BatchOptions struct {
	// Enabled turns the dispatcher on.
	Enabled bool
	// MaxTasks seals a batch at this many sub-tasks; zero defaults
	// to 64.
	MaxTasks int
	// MaxBytes seals a batch when adding a task would push the summed
	// payload bytes past it; zero defaults to 1 MiB.
	MaxBytes int
	// Linger is the nominal-seconds window the first task of a batch
	// waits for company before the batch is dispatched anyway (scaled
	// like every other duration); zero defaults to 0.005. Batches
	// normally seal on MaxTasks under load — the linger only bounds the
	// tail when fewer ready tasks than MaxTasks exist.
	Linger float64
}

func (o *BatchOptions) withDefaults() BatchOptions {
	b := *o
	if b.MaxTasks <= 0 {
		b.MaxTasks = 64
	}
	if b.MaxBytes <= 0 {
		b.MaxBytes = 1 << 20
	}
	if b.Linger <= 0 {
		b.Linger = 0.005
	}
	return b
}

func (o *BatchOptions) validate() error {
	if !o.Enabled {
		return nil
	}
	if o.MaxTasks < 0 || o.MaxBytes < 0 {
		return errors.New("wfm: negative Batching MaxTasks/MaxBytes")
	}
	if o.Linger < 0 {
		return errors.New("wfm: negative Batching Linger")
	}
	return nil
}

// sharedBatchHeader is the immutable header map of every batch POST.
var sharedBatchHeader = http.Header{"Content-Type": {wfbench.BatchContentType}}

// batchOutcome is one sub-task's share of a batch round trip, shaped
// exactly like invokeOnce's return so invoke's retry loop cannot tell
// the transports apart.
type batchOutcome struct {
	resp       *wfbench.Response
	retriable  bool
	retryAfter time.Duration
	err        error
}

// endpointBatch accumulates one endpoint's pending sub-tasks until the
// batch seals (count bound, byte bound, or linger expiry).
type endpointBatch struct {
	endpoint string
	url      *url.URL
	ids      []int32
	tps      []string
	waiters  []chan batchOutcome
	bytes    int
	timer    *time.Timer
	sealed   bool
}

// batcher is the run-scoped batching dispatcher: one pending batch per
// endpoint, fed by the task goroutines of either scheduling mode. The
// goroutine that seals a batch flushes it; waiters block on buffered
// per-task channels with their own task context, so a task timeout
// abandons only that task's wait, never the batch.
type batcher struct {
	m *Manager
	p *invocationPlan
	// ctx is the run-lifetime context batch POSTs ride on: a sub-task
	// abandoning its wait must not abort the POST its batch-mates are
	// still waiting for.
	ctx      context.Context
	maxTasks int
	maxBytes int
	linger   time.Duration

	// health feeds batch occupancy into the run's baseline table; nil
	// when the health plane is off.
	health *healthState

	mu      sync.Mutex
	pending map[string]*endpointBatch
}

// setHealth attaches the run's health plane; nil-safe on both sides so
// the run loops can call it unconditionally.
func (b *batcher) setHealth(hs *healthState) {
	if b != nil {
		b.health = hs
	}
}

// newBatcher returns the run's dispatcher, or nil when batching is off.
func (m *Manager) newBatcher(ctx context.Context, p *invocationPlan) *batcher {
	if !m.opts.Batching.Enabled {
		return nil
	}
	o := m.opts.Batching.withDefaults()
	return &batcher{
		m:        m,
		p:        p,
		ctx:      ctx,
		maxTasks: o.MaxTasks,
		maxBytes: o.MaxBytes,
		linger:   m.scaled(o.Linger),
		pending:  make(map[string]*endpointBatch),
	}
}

func (b *batcher) taskName(id int32) string { return b.p.tasks[id].Name }

// invokeOnce is the batched counterpart of Manager.invokeOnce: it
// enrolls the task in its endpoint's pending batch and waits for the
// task's own frame of the batch response. ctx is the task's attempt
// context (run context plus TaskTimeout); the batch POST itself runs
// under the run context.
func (b *batcher) invokeOnce(ctx context.Context, id int32, sc obs.SpanContext) (*wfbench.Response, bool, time.Duration, error) {
	tp := ""
	if sc.Sampled {
		tp = sc.Traceparent()
	}
	ch := make(chan batchOutcome, 1)
	size := len(b.p.body(id))
	endpoint := b.p.tasks[id].Command.APIURL

	var sealed, prev *endpointBatch
	b.mu.Lock()
	eb := b.pending[endpoint]
	if eb != nil && eb.bytes+size > b.maxBytes && len(eb.ids) > 0 {
		// Byte bound: the pending batch departs as-is and this task
		// opens the endpoint's next one.
		b.sealLocked(eb)
		prev, eb = eb, nil
	}
	if eb == nil {
		eb = &endpointBatch{endpoint: endpoint, url: b.p.reqs[id].URL}
		b.pending[endpoint] = eb
		cur := eb
		eb.timer = time.AfterFunc(b.linger, func() { b.flushExpired(cur) })
	}
	eb.ids = append(eb.ids, id)
	eb.tps = append(eb.tps, tp)
	eb.waiters = append(eb.waiters, ch)
	eb.bytes += size
	if len(eb.ids) >= b.maxTasks {
		b.sealLocked(eb)
		sealed = eb
	}
	b.mu.Unlock()

	if prev != nil {
		// The byte-bound predecessor belongs to other waiters; this
		// goroutine still owes its own batch a wait, so flush async.
		go b.flush(prev)
	}
	if sealed != nil {
		b.flush(sealed)
	}

	select {
	case out := <-ch:
		return out.resp, out.retriable, out.retryAfter, out.err
	case <-ctx.Done():
		return nil, false, 0, fmt.Errorf("wfm: %s: batched request: %w", b.taskName(id), ctx.Err())
	}
}

// sealLocked detaches a batch from the pending map so no further task
// can join it. Callers hold b.mu.
func (b *batcher) sealLocked(eb *endpointBatch) {
	if eb.sealed {
		return
	}
	eb.sealed = true
	if eb.timer != nil {
		eb.timer.Stop()
	}
	if b.pending[eb.endpoint] == eb {
		delete(b.pending, eb.endpoint)
	}
}

// flushExpired is the linger timer's path: dispatch whatever the batch
// gathered, unless a bound already sealed it.
func (b *batcher) flushExpired(eb *endpointBatch) {
	b.mu.Lock()
	if eb.sealed {
		b.mu.Unlock()
		return
	}
	b.sealLocked(eb)
	b.mu.Unlock()
	b.flush(eb)
}

// close flushes any still-pending batches so no waiter is left behind
// on run teardown. nil-safe (batching off).
func (b *batcher) close() {
	if b == nil {
		return
	}
	b.mu.Lock()
	var leftovers []*endpointBatch
	for _, eb := range b.pending {
		b.sealLocked(eb)
		leftovers = append(leftovers, eb)
	}
	b.mu.Unlock()
	for _, eb := range leftovers {
		b.flush(eb)
	}
}

// flush POSTs one sealed batch and delivers each sub-task's outcome,
// mirroring Manager.invokeOnce's classification frame by frame: whole-
// POST transport errors and non-200 batch statuses apply to every
// member; within a 200 response, each frame carries its own status,
// Retry-After, and payload, so one corrupt or failed sub-response
// cannot poison its batch-mates. A framing error (the stream itself
// unreadable) fails the remaining members as retriable, like a
// transport error would have.
func (b *batcher) flush(eb *endpointBatch) {
	b.health.recordBatch(eb.endpoint, len(eb.ids))
	segs, total := b.p.batchFrames(eb.ids, eb.tps)
	req := (&http.Request{
		Method:        http.MethodPost,
		URL:           batchURL(eb.url),
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        sharedBatchHeader,
		Body:          &segmentReader{segs: segs},
		ContentLength: total,
		GetBody:       func() (io.ReadCloser, error) { return &segmentReader{segs: segs}, nil },
	}).WithContext(b.ctx)
	hres, err := b.m.opts.Client.Do(req)
	if err != nil {
		retriable := b.ctx.Err() == nil
		for i, id := range eb.ids {
			b.deliver(eb, i, batchOutcome{retriable: retriable,
				err: fmt.Errorf("wfm: %s: batched request: %w", b.taskName(id), err)})
		}
		return
	}
	defer hres.Body.Close()
	if hres.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(hres.Body, 1024))
		retriable := hres.StatusCode >= 500 || hres.StatusCode == http.StatusTooManyRequests
		var retryAfter time.Duration
		if hres.StatusCode == http.StatusTooManyRequests || hres.StatusCode == http.StatusServiceUnavailable {
			retryAfter = ParseRetryAfter(hres.Header.Get("Retry-After"))
		}
		text := strings.TrimSpace(string(msg))
		for i, id := range eb.ids {
			b.deliver(eb, i, batchOutcome{retriable: retriable, retryAfter: retryAfter,
				err: fmt.Errorf("wfm: %s: HTTP %d: %s", b.taskName(id), hres.StatusCode, text)})
		}
		return
	}
	// Read the body in one pre-sized allocation; the reader's frames
	// then alias it instead of copying per task.
	var body []byte
	if n := hres.ContentLength; n >= 0 {
		body = make([]byte, n)
		_, err = io.ReadFull(hres.Body, body)
	} else {
		body, err = io.ReadAll(hres.Body)
	}
	var br *wfbench.BatchResponseReader
	if err == nil {
		br, err = wfbench.NewBatchResponseReaderBytes(body)
	}
	if err == nil && br.Len() != len(eb.ids) {
		err = fmt.Errorf("frame count %d, want %d", br.Len(), len(eb.ids))
	}
	if err != nil {
		for i, id := range eb.ids {
			b.deliver(eb, i, batchOutcome{retriable: true,
				err: fmt.Errorf("wfm: %s: batch response: %w", b.taskName(id), err)})
		}
		return
	}
	for i, id := range eb.ids {
		frame, ferr := br.Next()
		if ferr != nil {
			for j := i; j < len(eb.ids); j++ {
				b.deliver(eb, j, batchOutcome{retriable: true,
					err: fmt.Errorf("wfm: %s: batch response: %w", b.taskName(eb.ids[j]), ferr)})
			}
			return
		}
		b.deliver(eb, i, b.decodeFrame(id, frame))
	}
}

// decodeFrame interprets one sub-task's response frame with the exact
// semantics invokeOnce applies to a single-task HTTP response.
func (b *batcher) decodeFrame(id int32, f wfbench.BatchResult) batchOutcome {
	name := b.taskName(id)
	if f.Status != http.StatusOK {
		out := batchOutcome{
			retriable: f.Status >= 500 || f.Status == http.StatusTooManyRequests,
			err:       fmt.Errorf("wfm: %s: HTTP %d: %s", name, f.Status, strings.TrimSpace(string(f.Payload))),
		}
		if f.Status == http.StatusTooManyRequests || f.Status == http.StatusServiceUnavailable {
			out.retryAfter = time.Duration(f.RetryAfterMillis) * time.Millisecond
		}
		return out
	}
	var resp wfbench.Response
	if err := wfbench.UnmarshalResponse(f.Payload, &resp); err != nil {
		return batchOutcome{err: fmt.Errorf("wfm: %s: decode: %w", name, err)}
	}
	if !resp.OK {
		return batchOutcome{resp: &resp, err: fmt.Errorf("wfm: %s: function error: %s", name, resp.Error)}
	}
	return batchOutcome{resp: &resp}
}

// deliver hands one sub-task its outcome; waiter channels are buffered
// so an abandoned wait (task timeout, cancellation) never blocks the
// flusher.
func (b *batcher) deliver(eb *endpointBatch, i int, out batchOutcome) {
	eb.waiters[i] <- out
}

// batchURL derives an endpoint's batch surface from its single-task
// api_url: a translated ".../wfbench" suffix is swapped for
// "/invoke-batch" (matching both the platform ingress's
// /<service>/invoke-batch route and the standalone service); any other
// path gets "/invoke-batch" appended.
func batchURL(u *url.URL) *url.URL {
	out := *u
	switch {
	case strings.HasSuffix(out.Path, "/wfbench"):
		out.Path = strings.TrimSuffix(out.Path, "/wfbench") + "/invoke-batch"
	default:
		out.Path = strings.TrimSuffix(out.Path, "/") + "/invoke-batch"
	}
	out.RawPath = ""
	return &out
}
