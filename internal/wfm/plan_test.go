package wfm

import (
	"context"
	"encoding/json"
	"io"
	"reflect"
	"testing"

	"wfserverless/internal/wfbench"
	"wfserverless/internal/wfformat"
)

// invokeTask builds a single-task invocation plan and invokes task 0 —
// shim for the resilience tests, which exercise the retry/breaker
// machinery one ad-hoc task at a time.
func (m *Manager) invokeTask(ctx context.Context, task *wfformat.Task, rs *resilience) (*wfbench.Response, int, error) {
	p, err := newInvocationPlan([]*wfformat.Task{task})
	if err != nil {
		return nil, 0, err
	}
	return m.invoke(ctx, p, 0, rs, nil)
}

// TestInvocationPlanBodies pins the payload arena: every task's body
// slice decodes back to exactly the WfBench request invokeOnce used to
// encode per attempt, ContentLength agrees, and GetBody replays the
// same bytes.
func TestInvocationPlanBodies(t *testing.T) {
	tasks := []*wfformat.Task{
		synthTask("alpha", "http://endpoint/task/alpha", nil),
		synthTask("beta", "http://endpoint/task/beta", []string{"out_alpha"}),
		synthTask("gamma", "http://other/task/gamma", []string{"out_alpha", "out_beta"}),
	}
	p, err := newInvocationPlan(tasks)
	if err != nil {
		t.Fatal(err)
	}
	if p.len() != len(tasks) {
		t.Fatalf("plan len = %d, want %d", p.len(), len(tasks))
	}
	for i, task := range tasks {
		id := int32(i)
		body := p.body(id)
		var got wfbench.Request
		if err := json.Unmarshal(body, &got); err != nil {
			t.Fatalf("%s: body does not decode: %v", task.Name, err)
		}
		arg := task.Command.Arguments[0]
		want := wfbench.Request{
			Name:       arg.Name,
			PercentCPU: arg.PercentCPU,
			CPUWork:    arg.CPUWork,
			Cores:      task.Cores,
			MemBytes:   arg.MemBytes,
			Out:        arg.Out,
			Inputs:     arg.Inputs,
			Workdir:    arg.Workdir,
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: body = %+v, want %+v", task.Name, got, want)
		}
		req := p.reqs[id]
		if req.ContentLength != int64(len(body)) {
			t.Fatalf("%s: ContentLength = %d, body is %d bytes", task.Name, req.ContentLength, len(body))
		}
		rc, err := req.GetBody()
		if err != nil {
			t.Fatal(err)
		}
		replay, err := io.ReadAll(rc)
		rc.Close()
		if err != nil || string(replay) != string(body) {
			t.Fatalf("%s: GetBody replay diverges (%v)", task.Name, err)
		}
	}
}

// TestInvocationPlanSharesParsedURLs pins URL deduplication: tasks
// translated against one ingress share a single parsed *url.URL.
func TestInvocationPlanSharesParsedURLs(t *testing.T) {
	tasks := []*wfformat.Task{
		synthTask("a", "http://ingress:8080/fn", nil),
		synthTask("b", "http://ingress:8080/fn", nil),
		synthTask("c", "http://elsewhere:9090/fn", nil),
	}
	p, err := newInvocationPlan(tasks)
	if err != nil {
		t.Fatal(err)
	}
	if p.reqs[0].URL != p.reqs[1].URL {
		t.Fatal("identical api_urls parsed twice")
	}
	if p.reqs[0].URL == p.reqs[2].URL {
		t.Fatal("distinct api_urls share a URL")
	}
}

// TestInvocationPlanRejectsBadTasks covers the plan-time guards that
// replaced invokeOnce's per-attempt checks.
func TestInvocationPlanRejectsBadTasks(t *testing.T) {
	noArgs := synthTask("x", "http://endpoint", nil)
	noArgs.Command.Arguments = nil
	if _, err := newInvocationPlan([]*wfformat.Task{noArgs}); err == nil {
		t.Fatal("task without argument block accepted")
	}
	badURL := synthTask("y", "http://bad url with spaces", nil)
	if _, err := newInvocationPlan([]*wfformat.Task{badURL}); err == nil {
		t.Fatal("unparseable api_url accepted")
	}
}

// TestArenaBodyDoubleClose pins the CAS discipline: a second Close
// (the HTTP client closes the body itself on some error paths) must
// not recycle the reader twice.
func TestArenaBodyDoubleClose(t *testing.T) {
	b := newArenaBody([]byte(`{"k":"v"}`))
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
}
