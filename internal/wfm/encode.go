package wfm

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/url"
	"sort"
	"sync"
	"sync/atomic"

	"wfserverless/internal/wfbench"
	"wfserverless/internal/wfformat"
)

// invocationPlan is the pre-computed invocation side of one run. The
// manager invokes every task at least once and flaky tasks many times,
// so everything derivable from the workflow alone is rendered up front,
// ID-aligned with the compiled DAG: the WfBench JSON bodies (one
// contiguous payload arena plus an offset table, encoded with a single
// encoder pass instead of one encoder per attempt), the parsed
// endpoint URLs (deduplicated — a translated workflow typically points
// every task at one ingress), and an http.Request template per task
// carrying method, URL, headers, length and GetBody. The per-attempt
// hot path is then one shallow request clone plus one pooled body
// reader.
type invocationPlan struct {
	tasks  []*wfformat.Task // ID-aligned with the run's dag.CSR
	reqs   []*http.Request  // per-task request scaffolding, never sent directly
	bodies []byte           // payload arena: all request bodies back to back
	off    []int32          // len(tasks)+1 offsets into bodies
	ext    []wfformat.File  // external inputs: the header's staging manifest
}

// sharedJSONHeader is the one header map every invocation shares. It
// must never be mutated: net/http treats an outgoing request's Header
// as read-only (it only clones it when the URL carries userinfo, which
// translated api_urls never do).
var sharedJSONHeader = http.Header{"Content-Type": {"application/json"}}

// newInvocationPlan renders the per-task invocation artifacts for the
// ID-aligned task slice produced by wfformat.Workflow.Compile.
func newInvocationPlan(tasks []*wfformat.Task) (*invocationPlan, error) {
	n := len(tasks)
	p := &invocationPlan{
		tasks: tasks,
		reqs:  make([]*http.Request, n),
		off:   make([]int32, n+1),
	}
	var buf bytes.Buffer
	buf.Grow(256 * n)
	enc := json.NewEncoder(&buf)
	urls := make(map[string]*url.URL)
	// One backing array for the request structs instead of n tiny
	// allocations.
	scaffold := make([]http.Request, n)
	for i, task := range tasks {
		if len(task.Command.Arguments) == 0 {
			return nil, fmt.Errorf("wfm: task %q has no argument block; malformed translated workflow", task.Name)
		}
		arg := task.Command.Arguments[0]
		wreq := wfbench.Request{
			Name:       arg.Name,
			PercentCPU: arg.PercentCPU,
			CPUWork:    arg.CPUWork,
			Cores:      task.Cores,
			MemBytes:   arg.MemBytes,
			Out:        arg.Out,
			Inputs:     arg.Inputs,
			Workdir:    arg.Workdir,
		}
		if err := enc.Encode(&wreq); err != nil {
			return nil, fmt.Errorf("wfm: %s: encode: %w", task.Name, err)
		}
		if buf.Len() > math.MaxInt32 {
			return nil, fmt.Errorf("wfm: request payloads exceed %d bytes", math.MaxInt32)
		}
		p.off[i+1] = int32(buf.Len())
		u := urls[task.Command.APIURL]
		if u == nil {
			var err error
			u, err = url.Parse(task.Command.APIURL)
			if err != nil {
				return nil, fmt.Errorf("wfm: %s: %w", task.Name, err)
			}
			urls[task.Command.APIURL] = u
		}
		scaffold[i] = http.Request{
			Method:     http.MethodPost,
			URL:        u,
			Proto:      "HTTP/1.1",
			ProtoMajor: 1,
			ProtoMinor: 1,
			Header:     sharedJSONHeader,
		}
		p.reqs[i] = &scaffold[i]
	}
	p.bodies = buf.Bytes()
	// ContentLength and GetBody reference the finished arena; the
	// buffer may have reallocated while growing, so fill them in a
	// second pass over the final bytes.
	for i := range tasks {
		body := p.body(int32(i))
		req := p.reqs[i]
		req.ContentLength = int64(len(body))
		req.GetBody = func() (io.ReadCloser, error) { return newArenaBody(body), nil }
	}
	p.ext = externalInputs(tasks)
	return p, nil
}

// externalInputs renders the staging manifest — every input file no
// task produces — over the ID-aligned task slice, with both interning
// maps sized up front from the real file count. Equivalent to
// wfformat.(*Workflow).ExternalInputs, but resolved once at plan time:
// a memoized or resumed re-run must not pay a full file-manifest
// rescan (and its map rehashing) inside the execution wall when
// stageHeader fires.
func externalInputs(tasks []*wfformat.Task) []wfformat.File {
	files := 0
	for _, t := range tasks {
		files += len(t.Files)
	}
	produced := make(map[string]bool, files)
	for _, t := range tasks {
		for _, f := range t.Files {
			if f.Link == wfformat.LinkOutput {
				produced[f.Name] = true
			}
		}
	}
	seen := make(map[string]wfformat.File, len(tasks))
	for _, t := range tasks {
		for _, f := range t.Files {
			if f.Link == wfformat.LinkInput && !produced[f.Name] {
				seen[f.Name] = f
			}
		}
	}
	out := make([]wfformat.File, 0, len(seen))
	for _, f := range seen {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// body returns the task's pre-encoded WfBench request: a view into the
// arena, valid for the plan's lifetime.
func (p *invocationPlan) body(id int32) []byte { return p.bodies[p.off[id]:p.off[id+1]] }

// request clones the task's template for one attempt. The clone shares
// the parsed URL, header map, and GetBody with the template; only the
// Body reader is per-attempt state.
func (p *invocationPlan) request(ctx context.Context, id int32) *http.Request {
	req := p.reqs[id].WithContext(ctx)
	req.Body = newArenaBody(p.body(id))
	return req
}

func (p *invocationPlan) len() int { return len(p.tasks) }

// arenaBody streams one task's pre-encoded body out of the plan's
// payload arena. The bytes themselves are never recycled — the arena
// lives for the whole run, which is what makes re-reads for retries
// and GetBody replays safe — only the reader object is pooled. Close
// is CAS-guarded so the double Close the HTTP client can issue on
// error paths recycles the reader exactly once. The transport may
// close the body asynchronously after Client.Do returns (a server can
// respond before draining the upload — see
// TestPooledBufferSurvivesEarlyResponse): only that final Close hands
// the reader back, or a concurrent invocation would reset the read
// cursor of a body still going out on the wire.
type arenaBody struct {
	r      bytes.Reader
	closed atomic.Bool
}

var arenaBodies = sync.Pool{New: func() any { return new(arenaBody) }}

func newArenaBody(b []byte) *arenaBody {
	ab := arenaBodies.Get().(*arenaBody)
	ab.closed.Store(false)
	ab.r.Reset(b)
	return ab
}

func (b *arenaBody) Read(p []byte) (int, error) { return b.r.Read(p) }

func (b *arenaBody) Close() error {
	if b.closed.CompareAndSwap(false, true) {
		b.r.Reset(nil)
		arenaBodies.Put(b)
	}
	return nil
}

// batchFrames renders a batch request body for the given tasks as a
// segment list: the count prefix and per-frame headers go into one
// freshly-built header arena, while every payload segment aliases the
// plan's body arena — the pre-encoded JSON is neither re-encoded nor
// copied, for any batch size. Segments alternate header, body, header,
// body, ... and the first header segment carries the count prefix.
func (p *invocationPlan) batchFrames(ids []int32, tps []string) ([][]byte, int64) {
	hdr := wfbench.AppendBatchCount(make([]byte, 0, 16+48*len(ids)), len(ids))
	cuts := make([]int, len(ids))
	for i, id := range ids {
		hdr = wfbench.AppendBatchItemHeader(hdr, tps[i], len(p.body(id)))
		cuts[i] = len(hdr)
	}
	segs := make([][]byte, 0, 2*len(ids))
	prev := 0
	for i, id := range ids {
		segs = append(segs, hdr[prev:cuts[i]])
		prev = cuts[i]
		segs = append(segs, p.body(id))
	}
	var total int64
	for _, s := range segs {
		total += int64(len(s))
	}
	return segs, total
}

// segmentReader streams a segment list as one request body without
// joining the segments. Safe to construct repeatedly from the same
// segments (GetBody replays for redirects/retries at the transport
// layer).
type segmentReader struct {
	segs [][]byte
	i    int
	off  int
}

func (r *segmentReader) Read(p []byte) (int, error) {
	for r.i < len(r.segs) {
		seg := r.segs[r.i]
		if r.off >= len(seg) {
			r.i++
			r.off = 0
			continue
		}
		n := copy(p, seg[r.off:])
		r.off += n
		return n, nil
	}
	return 0, io.EOF
}

func (r *segmentReader) Close() error { return nil }

// decodeBufs recycles response read buffers: the decode path drains
// each response into a pooled buffer and unmarshals in place instead
// of allocating a fresh json.Decoder (and its internal buffer) per
// invocation.
var decodeBufs = sync.Pool{New: func() any { return new(bytes.Buffer) }}
