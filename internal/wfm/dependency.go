package wfm

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"wfserverless/internal/dag"
	"wfserverless/internal/obs"
	"wfserverless/internal/sharedfs"
	"wfserverless/internal/wfformat"
)

// dispatchItem is one runnable task handed from the event loop to the
// worker pool, identified by its interned DAG ID.
type dispatchItem struct {
	id    int32
	ready time.Duration // when the scheduler released the task
}

// completion pairs a finished task's ID with its result so the event
// loop can feed the scheduler without a name lookup.
type completion struct {
	id int32
	tr *TaskResult
}

// runDependency executes the workflow with dependency-driven scheduling:
// a dag.Scheduler tracks readiness in O(edges) total over the compiled
// CSR — the whole event loop runs on interned int32 task IDs, with
// strings only appearing in the TaskResults handed back to callers — a
// fixed worker pool issues the HTTP invocations, and a completion
// channel feeds finished tasks back into the single-threaded event
// loop, which releases newly-ready children immediately. There are no
// phase barriers and no inter-phase delays; per-task input waits use
// the shared drive's change notification (sharedfs.Watcher) where
// available.
//
// Failure semantics: descendants of a failed function are never invoked
// (their inputs cannot appear) and are recorded as skipped failures.
// Without ContinueOnError the first failure also cancels everything
// in flight or queued. On context cancellation the loop stops
// dispatching, drains the workers, records partial TaskResults, and
// returns ctx.Err() with no goroutines left behind.
func (m *Manager) runDependency(ctx context.Context, w *wfformat.Workflow, csr *dag.CSR, p *invocationPlan, st *runState) (*Result, error) {
	sched := dag.NewSchedulerCSR(csr)

	res := &Result{
		Workflow:   w.Name,
		Scheduling: ScheduleDependency,
		Tasks:      make(map[string]*TaskResult, p.len()+2),
	}
	start := time.Now()
	rs := m.newResilience(start)
	rs.health = st.health
	defer func() { res.Breakers = rs.take() }()
	root, finishTrace := m.startRunTrace(w.Name, res)
	defer finishTrace()
	m.traceReplay(root, st)
	m.traceMemo(root, st)
	mon := m.opts.Monitor
	mon.runStarted(w.Name, ScheduleDependency, p.len())
	if l := m.opts.Logger; l != nil {
		l.Info("workflow run starting",
			"workflow", w.Name, "tasks", p.len(), "scheduling", ScheduleDependency.String())
	}
	defer func() {
		if l := m.opts.Logger; l != nil {
			l.Info("workflow run finished",
				"workflow", w.Name, "wall", res.Wall, "failed", len(res.Failed))
		}
	}()
	if err := m.stageHeader(p, res, start); err != nil {
		return res, err
	}
	n := p.len()

	// Fold the pre-completed set — the journal's verified done-set plus
	// the memo cache's verified hits — into the scheduler before any
	// dispatch: seeded tasks are recorded as results, never invoked,
	// and the ready frontier starts past them.
	if seeds := st.seedIDs(); len(seeds) > 0 {
		if err := sched.SeedCompletedIDs(seeds); err != nil {
			return res, fmt.Errorf("wfm: seeding pre-completed state: %w", err)
		}
		seedResults(p, csr, st, seeds, res.Tasks)
		n -= len(seeds)
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	// Batch POSTs ride runCtx so a single task abandoning its wait never
	// aborts its batch-mates' shared request; closed (runs before cancel)
	// to flush any linger-window stragglers on every exit path.
	rs.batch = m.newBatcher(runCtx, p)
	rs.batch.setHealth(st.health)
	defer rs.batch.close()

	workers := m.opts.MaxParallel
	if workers <= 0 || workers > n {
		workers = n
	}
	if workers == 0 {
		workers = 1 // fully-recovered run: the loop below drains instantly
	}
	// Both channels hold every task, so neither workers nor the event
	// loop can ever block on the other side having gone away.
	dispatch := make(chan dispatchItem, n)
	completions := make(chan completion, n)

	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for item := range dispatch {
				completions <- completion{item.id, m.runTask(runCtx, p, csr, item, start, rs, root, st)}
			}
		}()
	}

	enqueue := func(ids []int32) {
		now := time.Since(start)
		mon.taskReady(len(ids))
		for _, id := range ids {
			dispatch <- dispatchItem{id: id, ready: now}
		}
	}

	record := func(tr *TaskResult) {
		res.Tasks[tr.Name] = tr
		if tr.Err != nil {
			res.Failed = append(res.Failed, tr.Name)
			if l := m.opts.Logger; l != nil {
				l.Warn("task failed", "task", tr.Name, "phase", tr.Phase,
					"attempts", tr.Attempts, "err", tr.Err)
			}
		}
	}

	// Event loop: runs in this goroutine only, so scheduler and result
	// state need no locking. Every task is accounted exactly once —
	// via a worker completion or via skip propagation from a failed
	// ancestor — so the loop terminates when the count drains. A
	// scheduler-state error breaks out instead of returning so the
	// worker pool is always drained below, never leaked. The ID slices
	// the scheduler returns are scratch, valid until its next call —
	// enqueue and the skip loop consume them before that.
	var stateErr error
	enqueue(sched.TakeReadyIDs())
	for accounted := 0; accounted < n && stateErr == nil; {
		c := <-completions
		accounted++
		record(c.tr)
		if c.tr.Err != nil {
			if !m.opts.ContinueOnError {
				cancel()
			}
			skipped, serr := sched.FailID(c.id)
			if serr != nil {
				stateErr = fmt.Errorf("wfm: scheduler state: %w", serr)
				break
			}
			now := time.Since(start)
			for _, sid := range skipped {
				accounted++
				task := p.tasks[sid]
				mon.taskSkipped()
				err := fmt.Errorf("wfm: %s: skipped: ancestor %s failed", task.Name, c.tr.Name)
				st.rj.taskFailed(sid, true, err)
				record(&TaskResult{
					Name:     task.Name,
					Category: task.Category,
					Phase:    int(csr.Level(sid)) + 1,
					Ready:    now,
					Start:    now,
					End:      now,
					Err:      err,
				})
			}
			continue
		}
		newly, serr := sched.CompleteID(c.id)
		if serr != nil {
			stateErr = fmt.Errorf("wfm: scheduler state: %w", serr)
			break
		}
		enqueue(newly)
	}
	if stateErr != nil {
		// Abort in-flight work before draining; queued items still run
		// (and fail fast on the cancelled context) so workers exit.
		cancel()
	}
	close(dispatch)
	wg.Wait()
	if stateErr != nil {
		sort.Strings(res.Failed)
		return res, stateErr
	}

	// Report the static phase structure for comparability with
	// SchedulePhases output (analysis, Gantt, per-phase breakdowns).
	phases := levelPhases(csr)
	res.Phases = append(res.Phases, phases...)
	tail := &TaskResult{
		Name: TailName, Category: "tail",
		Phase: len(phases) + 1,
		Start: time.Since(start), End: time.Since(start),
	}
	res.Tasks[TailName] = tail
	res.Phases = append(res.Phases, []string{TailName})

	res.Wall = time.Since(start)
	res.Makespan = res.Wall.Seconds() / m.opts.TimeScale
	if err := ctx.Err(); err != nil {
		sort.Strings(res.Failed)
		return res, err
	}
	if len(res.Failed) > 0 {
		sort.Strings(res.Failed)
		return res, fmt.Errorf("wfm: %d function(s) failed: %v", len(res.Failed), res.Failed)
	}
	return res, nil
}

// runTask executes one dispatched task on a worker: wait for its input
// files (event-driven on drives that support watching), then invoke.
func (m *Manager) runTask(ctx context.Context, p *invocationPlan, csr *dag.CSR, item dispatchItem, start time.Time, rs *resilience, root *obs.Span, st *runState) *TaskResult {
	task := p.tasks[item.id]
	tr := &TaskResult{
		Name:     task.Name,
		Category: task.Category,
		Phase:    int(csr.Level(item.id)) + 1,
		Ready:    item.ready,
	}
	mon := m.opts.Monitor
	mon.taskStarted()
	ts := m.opts.Tracer.StartChildOf(root, task.Name)
	ts.SetStart(start.Add(item.ready))
	if st.memo != nil {
		ts.SetAttr("memo_hit", "false")
	}
	finish := func() {
		tr.End = time.Since(start)
		st.taskDone(item.id, p, tr)
		mon.taskFinished(tr.End-tr.Start, tr.Err != nil)
		m.finishTaskSpan(ts, tr)
	}
	if err := ctx.Err(); err != nil {
		tr.Start = time.Since(start)
		tr.Err = err
		finish()
		return tr
	}
	if inputs := task.InputFiles(); len(inputs) > 0 && !sharedfs.AllExist(m.opts.Drive, inputs) {
		waitCtx, cancel := context.WithTimeout(ctx, m.scaled(m.opts.InputWait))
		missing, err := sharedfs.WaitFor(waitCtx, m.opts.Drive, inputs, m.scaled(m.opts.InputWait)/100)
		cancel()
		if err != nil {
			tr.Start = time.Since(start)
			tr.Err = fmt.Errorf("wfm: %s: inputs missing on shared drive: %v: %w", task.Name, missing, err)
			finish()
			return tr
		}
	}
	if g := m.opts.Gate; g != nil {
		if err := g.Acquire(ctx); err != nil {
			tr.Start = time.Since(start)
			tr.Err = err
			finish()
			return tr
		}
		defer g.Release()
	}
	st.rj.taskStarted(item.id)
	st.health.taskStarted(task)
	tr.Start = time.Since(start)
	tr.Response, tr.Attempts, tr.Err = m.invoke(ctx, p, item.id, rs, ts)
	finish()
	return tr
}

// RunEager executes the workflow with dependency-driven scheduling
// regardless of Options.Scheduling.
//
// Deprecated: set Options.Scheduling to ScheduleDependency and call Run.
// Kept for callers of the original prototype API.
func (m *Manager) RunEager(ctx context.Context, w *wfformat.Workflow) (*Result, error) {
	if err := m.validateRunnable(w); err != nil {
		return nil, err
	}
	csr, tasks, err := w.Compile()
	if err != nil {
		return nil, err
	}
	p, err := newInvocationPlan(tasks)
	if err != nil {
		return nil, err
	}
	return m.runDependency(ctx, w, csr, p, &runState{afterDone: m.opts.AfterTaskDone})
}
