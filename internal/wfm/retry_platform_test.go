package wfm

import (
	"context"
	"testing"

	"wfserverless/internal/cluster"
	"wfserverless/internal/serverless"
	"wfserverless/internal/sharedfs"
	"wfserverless/internal/translator"
	"wfserverless/internal/wfbench"
	"wfserverless/internal/wfgen"
)

// TestRetriesRecoverOnRealPlatform injects engine faults into the
// serverless platform and verifies the manager's retry path completes
// the workflow end to end.
func TestRetriesRecoverOnRealPlatform(t *testing.T) {
	cl := cluster.PaperTestbed()
	drive := sharedfs.NewMem()
	flaky := &wfbench.FlakyEngine{FailEvery: 5}
	p, err := serverless.New(serverless.Options{
		Cluster:         cl,
		Drive:           drive,
		TimeScale:       0.002,
		ColdStart:       0.5,
		AutoscalePeriod: 0.5,
		StableWindow:    10,
		InputWait:       5,
		Engine:          flaky,
	})
	if err != nil {
		t.Fatal(err)
	}
	url, err := p.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer p.Stop()
	if err := p.Apply(serverless.ServiceConfig{Name: "wfbench", Workers: 4, CPURequestPerWorker: 1}); err != nil {
		t.Fatal(err)
	}

	w, err := wfgen.Generate(wfgen.Spec{Recipe: "blast", NumTasks: 25, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	kn, err := translator.Knative(w, translator.KnativeOptions{IngressURL: url})
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(Options{
		Drive: drive, TimeScale: 0.002, PhaseDelay: 0.5, InputWait: 5,
		Retries: 4, RetryBackoff: 0.2,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run(context.Background(), kn)
	if err != nil {
		t.Fatalf("retries did not recover from injected faults: %v", err)
	}
	if len(res.Failed) != 0 {
		t.Fatalf("failed = %v", res.Failed)
	}
	// More engine runs than tasks proves retries actually happened.
	if flaky.Runs() <= int64(w.Len()) {
		t.Fatalf("engine runs = %d, want > %d (retries)", flaky.Runs(), w.Len())
	}
	if p.Failures() == 0 {
		t.Fatal("platform recorded no failures despite injection")
	}
}
