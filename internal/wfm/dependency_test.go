package wfm

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"wfserverless/internal/sharedfs"
	"wfserverless/internal/wfformat"
)

// depManager builds a Manager in dependency mode.
func depManager(t *testing.T, drive sharedfs.Drive, mutate func(*Options)) *Manager {
	t.Helper()
	return fastManager(t, drive, func(o *Options) {
		o.Scheduling = ScheduleDependency
		if mutate != nil {
			mutate(o)
		}
	})
}

func TestParseScheduling(t *testing.T) {
	for in, want := range map[string]Scheduling{
		"phases": SchedulePhases, "phase": SchedulePhases, "": SchedulePhases,
		"dependency": ScheduleDependency, "dep": ScheduleDependency, "eager": ScheduleDependency,
	} {
		got, err := ParseScheduling(in)
		if err != nil || got != want {
			t.Fatalf("ParseScheduling(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseScheduling("bogus"); err == nil {
		t.Fatal("bogus mode accepted")
	}
	if SchedulePhases.String() != "phases" || ScheduleDependency.String() != "dependency" {
		t.Fatal("Scheduling String mismatch")
	}
	if _, err := New(Options{Drive: sharedfs.NewMem(), Scheduling: Scheduling(99)}); err == nil {
		t.Fatal("unknown Scheduling accepted by New")
	}
}

// TestDependencyViaRunOption is the acceptance property test: dependency
// mode through the public Run API produces the identical task set and
// respects every DAG edge, verified from recorded start/end offsets.
func TestDependencyViaRunOption(t *testing.T) {
	for _, recipe := range []string{"blast", "epigenomics", "cycles"} {
		t.Run(recipe, func(t *testing.T) {
			drive := sharedfs.NewMem()
			srv, _, _ := stubService(t, drive, time.Millisecond)
			m := depManager(t, drive, nil)
			w := translated(t, recipe, 25, srv.URL)
			res, err := m.Run(context.Background(), w)
			if err != nil {
				t.Fatal(err)
			}
			if res.Scheduling != ScheduleDependency {
				t.Fatalf("res.Scheduling = %v", res.Scheduling)
			}
			// Identical task set: every workflow task plus header/tail,
			// nothing else.
			if len(res.Tasks) != w.Len()+2 {
				t.Fatalf("tasks = %d, want %d", len(res.Tasks), w.Len()+2)
			}
			for _, name := range w.TaskNames() {
				if _, ok := res.Tasks[name]; !ok {
					t.Fatalf("task %s missing from result", name)
				}
			}
			// Every DAG edge respected: no task starts before all its
			// parents ended.
			for name, tr := range res.Tasks {
				task, ok := w.Tasks[name]
				if !ok {
					continue
				}
				if tr.Err != nil {
					t.Fatalf("task %s failed: %v", name, tr.Err)
				}
				for _, parent := range task.Parents {
					if p := res.Tasks[parent]; p.End > tr.Start {
						t.Fatalf("%s started at %v before parent %s ended at %v",
							name, tr.Start, parent, p.End)
					}
				}
				// Queueing latency is well-formed.
				if tr.Ready > tr.Start || tr.QueueWait() < 0 {
					t.Fatalf("%s: ready %v after start %v", name, tr.Ready, tr.Start)
				}
			}
		})
	}
}

// TestDependencySyntheticShapes runs the three benchmark shapes through
// both modes and checks the edge property on each.
func TestDependencySyntheticShapes(t *testing.T) {
	shapes := []struct {
		name  string
		build func(testing.TB, string) *wfformat.Workflow
	}{
		{"deep-chain", func(tb testing.TB, url string) *wfformat.Workflow { return chainWorkflow(tb, 12, url) }},
		{"wide-fanout", func(tb testing.TB, url string) *wfformat.Workflow { return fanoutWorkflow(tb, 24, url) }},
		{"diamond", func(tb testing.TB, url string) *wfformat.Workflow { return diamondWorkflow(tb, 4, 6, url) }},
	}
	for _, shape := range shapes {
		for _, mode := range []Scheduling{SchedulePhases, ScheduleDependency} {
			t.Run(fmt.Sprintf("%s/%s", shape.name, mode), func(t *testing.T) {
				drive := sharedfs.NewMem()
				srv, _, _ := stubService(t, drive, time.Millisecond)
				m := fastManager(t, drive, func(o *Options) { o.Scheduling = mode })
				w := shape.build(t, srv.URL)
				res, err := m.Run(context.Background(), w)
				if err != nil {
					t.Fatal(err)
				}
				for name, tr := range res.Tasks {
					task, ok := w.Tasks[name]
					if !ok {
						continue
					}
					for _, parent := range task.Parents {
						if res.Tasks[parent].End > tr.Start {
							t.Fatalf("%s started before parent %s ended", name, parent)
						}
					}
				}
			})
		}
	}
}

// TestDependencyEliminatesPhaseDelays checks the headline claim on a
// deep chain: phase mode pays the inter-phase delay per level, so its
// wall time must exceed dependency mode's by at least half the total
// delay budget (conservative margin against scheduling noise).
func TestDependencyEliminatesPhaseDelays(t *testing.T) {
	const depth = 10
	run := func(mode Scheduling) time.Duration {
		drive := sharedfs.NewMem()
		srv, _, _ := stubService(t, drive, time.Millisecond)
		m := fastManager(t, drive, func(o *Options) {
			o.Scheduling = mode
			o.PhaseDelay = 2 // 4ms per barrier at TimeScale 0.002
		})
		res, err := m.Run(context.Background(), chainWorkflow(t, depth, srv.URL))
		if err != nil {
			t.Fatal(err)
		}
		return res.Wall
	}
	phases := run(SchedulePhases)
	dep := run(ScheduleDependency)
	delayBudget := time.Duration(depth-1) * 4 * time.Millisecond
	if phases-dep < delayBudget/2 {
		t.Fatalf("dependency mode saved only %v over phases %v; want at least %v", phases-dep, phases, delayBudget/2)
	}
}

// TestDependencyCancelMidDispatch is the cancellation satellite: cancel
// while tasks are in flight; the loop must drain its workers, record
// partial TaskResults for every task, return ctx.Err(), and leak no
// goroutines.
func TestDependencyCancelMidDispatch(t *testing.T) {
	before := runtime.NumGoroutine()

	drive := sharedfs.NewMem()
	srv, _, _ := stubService(t, drive, 30*time.Millisecond)
	m := depManager(t, drive, func(o *Options) {
		o.MaxParallel = 4
		o.InputWait = 1
	})
	w := translated(t, "epigenomics", 30, srv.URL)

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(15 * time.Millisecond) // mid first wave
		cancel()
	}()
	res, err := m.Run(ctx, w)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Partial results: every task is accounted — completed, cancelled,
	// or skipped — plus header and tail.
	if len(res.Tasks) != w.Len()+2 {
		t.Fatalf("recorded %d task results, want %d", len(res.Tasks), w.Len()+2)
	}
	var failed, completed int
	for name, tr := range res.Tasks {
		if name == HeaderName || name == TailName {
			continue
		}
		if tr.Err != nil {
			failed++
		} else {
			completed++
		}
	}
	if failed == 0 {
		t.Fatal("cancellation recorded no failed tasks")
	}
	t.Logf("cancelled run: %d completed, %d cancelled/skipped", completed, failed)

	// No goroutine leaks: the worker pool and any watch subscriptions
	// must be gone once the stub's in-flight handlers drain.
	srv.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		now := runtime.NumGoroutine()
		if now <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines: before=%d now=%d\n%s", before, now, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestDependencyFailFastCancelsPending mirrors the phase-mode fail-fast
// semantics: without ContinueOnError the first failure stops dispatch.
func TestDependencyFailFastCancelsPending(t *testing.T) {
	drive := sharedfs.NewMem()
	m := depManager(t, drive, nil)
	// Chain where the root fails: a server that 400s everything.
	bad := failingServer(t)
	w := chainWorkflow(t, 6, bad.URL)
	res, err := m.Run(context.Background(), w)
	if err == nil {
		t.Fatal("failing run succeeded")
	}
	if len(res.Failed) != w.Len() {
		t.Fatalf("Failed = %d, want all %d (root failed + descendants skipped)", len(res.Failed), w.Len())
	}
	skipped := 0
	for _, name := range res.Failed {
		if strings.Contains(res.Tasks[name].Err.Error(), "skipped") {
			skipped++
		}
	}
	if skipped != w.Len()-1 {
		t.Fatalf("skipped = %d, want %d", skipped, w.Len()-1)
	}
}

// TestSkipStageInputs covers the satellite fix: New no longer forces
// staging on, and the flag actually controls behaviour.
func TestSkipStageInputs(t *testing.T) {
	for _, mode := range []Scheduling{SchedulePhases, ScheduleDependency} {
		t.Run(mode.String(), func(t *testing.T) {
			// Default: external inputs are staged by the header.
			drive := sharedfs.NewMem()
			srv, _, _ := stubService(t, drive, time.Millisecond)
			m := fastManager(t, drive, func(o *Options) { o.Scheduling = mode })
			w := translated(t, "blast", 8, srv.URL)
			if _, err := m.Run(context.Background(), w); err != nil {
				t.Fatalf("default staging run: %v", err)
			}
			ext := w.ExternalInputs()
			if len(ext) == 0 {
				t.Fatal("test workflow has no external inputs")
			}
			for _, f := range ext {
				if !drive.Exists(f.Name) {
					t.Fatalf("external input %s not staged by default", f.Name)
				}
			}

			// SkipStageInputs with a pre-populated drive: run succeeds
			// without the header writing anything.
			drive2 := sharedfs.NewMem()
			srv2, _, _ := stubService(t, drive2, time.Millisecond)
			m2 := fastManager(t, drive2, func(o *Options) {
				o.Scheduling = mode
				o.SkipStageInputs = true
			})
			w2 := translated(t, "blast", 8, srv2.URL)
			for _, f := range w2.ExternalInputs() {
				if err := drive2.WriteFile(f.Name, f.SizeInBytes); err != nil {
					t.Fatal(err)
				}
			}
			if _, err := m2.Run(context.Background(), w2); err != nil {
				t.Fatalf("SkipStageInputs with pre-staged drive: %v", err)
			}

			// SkipStageInputs with an empty drive: root inputs never
			// appear, so the run must fail (quick input wait).
			drive3 := sharedfs.NewMem()
			srv3, _, _ := stubService(t, drive3, time.Millisecond)
			m3 := fastManager(t, drive3, func(o *Options) {
				o.Scheduling = mode
				o.SkipStageInputs = true
				o.InputWait = 0.5
			})
			w3 := translated(t, "blast", 8, srv3.URL)
			if _, err := m3.Run(context.Background(), w3); err == nil {
				t.Fatal("run succeeded with no inputs staged anywhere")
			}
		})
	}
}

// TestEmptyArgumentsRejectedUpFront covers the invokeOnce guard
// satellite: a task with no argument block fails validation with a
// clear error instead of panicking at Arguments[0].
func TestEmptyArgumentsRejectedUpFront(t *testing.T) {
	drive := sharedfs.NewMem()
	m := fastManager(t, drive, nil)
	w := wfformat.New("malformed")
	task := synthTask("only", "http://localhost/none", nil)
	task.Command.Arguments = nil // malformed translated JSON
	if err := w.AddTask(task); err != nil {
		t.Fatal(err)
	}
	for _, mode := range []Scheduling{SchedulePhases, ScheduleDependency} {
		m.opts.Scheduling = mode
		_, err := m.Run(context.Background(), w)
		if err == nil {
			t.Fatalf("%v: malformed workflow executed", mode)
		}
		if !strings.Contains(err.Error(), "argument") {
			t.Fatalf("%v: err = %v, want argument-block complaint", mode, err)
		}
	}
}

// TestPlanGuardsEmptyArguments exercises the defensive check directly:
// since the hot path serves pre-encoded bodies, the argument-block
// guard that used to live in invokeOnce now fails plan construction.
func TestPlanGuardsEmptyArguments(t *testing.T) {
	task := synthTask("bare", "http://localhost/none", nil)
	task.Command.Arguments = nil
	p, err := newInvocationPlan([]*wfformat.Task{task})
	if err == nil || p != nil {
		t.Fatalf("newInvocationPlan = %v, %v; want argument-block error", p, err)
	}
	if !strings.Contains(err.Error(), "argument") {
		t.Fatalf("err = %v, want argument-block complaint", err)
	}
}

// TestDependencyQueueWaitUnderThrottle: with MaxParallel=1 on a wide
// fan-out, siblings become ready together but start serially, so
// queueing latency must be visible in the recorded results.
func TestDependencyQueueWaitUnderThrottle(t *testing.T) {
	drive := sharedfs.NewMem()
	srv, _, _ := stubService(t, drive, 5*time.Millisecond)
	m := depManager(t, drive, func(o *Options) { o.MaxParallel = 1 })
	w := fanoutWorkflow(t, 6, srv.URL)
	res, err := m.Run(context.Background(), w)
	if err != nil {
		t.Fatal(err)
	}
	var maxWait time.Duration
	for name, tr := range res.Tasks {
		if name == HeaderName || name == TailName {
			continue
		}
		if q := tr.QueueWait(); q > maxWait {
			maxWait = q
		}
	}
	// Five siblings queue behind the first at ~5ms each.
	if maxWait < 10*time.Millisecond {
		t.Fatalf("max queue wait = %v, want >= 10ms with MaxParallel=1", maxWait)
	}
}
