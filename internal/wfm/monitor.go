package wfm

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"wfserverless/internal/metrics"
)

// Monitor is the manager's live telemetry plane: a set of counters and
// gauges updated from the scheduling hot path with plain atomics and
// exposed in Prometheus text format, so an operator can watch a run
// drain (`curl /metrics` on the -telemetry-addr listener) without
// touching its performance. All methods are safe on a nil *Monitor —
// an unmonitored Manager pays one nil check per event.
//
// A Monitor may outlive individual runs (the cmd/wfm listener starts
// before the workflow does); counters are cumulative across runs,
// matching Prometheus counter semantics.
type Monitor struct {
	mu         sync.Mutex
	workflow   string
	scheduling string
	total      int64

	ready   atomic.Int64 // released by the scheduler, not yet invoking
	running atomic.Int64 // HTTP invocation in flight
	done    atomic.Int64 // completed successfully
	failed  atomic.Int64 // terminal failures, including skipped descendants
	retries atomic.Int64 // extra invocation attempts beyond the first

	breakersOpen atomic.Int64

	memoHits   atomic.Int64 // tasks seeded from the memo cache, never invoked
	memoMisses atomic.Int64 // tasks probed without a usable cache entry

	stragglers      atomic.Int64 // in-flight attempts currently flagged
	stragglersTotal atomic.Int64 // attempts ever flagged
	specRetries     atomic.Int64 // backup attempts dispatched for flagged tasks
	specWins        atomic.Int64 // flagged tasks whose backup finished first

	latency metrics.Histogram // wall seconds per completed task invocation
}

// NewMonitor returns an empty monitor.
func NewMonitor() *Monitor { return &Monitor{} }

// runStarted records the identity of the run now feeding the monitor.
func (mo *Monitor) runStarted(workflow string, scheduling Scheduling, total int) {
	if mo == nil {
		return
	}
	mo.mu.Lock()
	mo.workflow = workflow
	mo.scheduling = scheduling.String()
	mo.total = int64(total)
	mo.mu.Unlock()
}

func (mo *Monitor) taskReady(n int) {
	if mo != nil {
		mo.ready.Add(int64(n))
	}
}

func (mo *Monitor) taskStarted() {
	if mo != nil {
		mo.ready.Add(-1)
		mo.running.Add(1)
	}
}

func (mo *Monitor) taskFinished(wall time.Duration, failed bool) {
	if mo == nil {
		return
	}
	mo.running.Add(-1)
	if failed {
		mo.failed.Add(1)
	} else {
		mo.done.Add(1)
	}
	mo.latency.ObserveDuration(wall)
}

// taskSkipped accounts a task that will never run because an ancestor
// failed: it was never ready or running, it just fails.
func (mo *Monitor) taskSkipped() {
	if mo != nil {
		mo.failed.Add(1)
	}
}

// memoProbed accounts one run's memo-cache probe outcome.
func (mo *Monitor) memoProbed(hits, misses int) {
	if mo != nil {
		mo.memoHits.Add(int64(hits))
		mo.memoMisses.Add(int64(misses))
	}
}

func (mo *Monitor) retried() {
	if mo != nil {
		mo.retries.Add(1)
	}
}

// stragglerFlagged and stragglerResolved maintain the live straggler
// gauge and its cumulative counter from the health tracker's callbacks.
func (mo *Monitor) stragglerFlagged() {
	if mo != nil {
		mo.stragglers.Add(1)
		mo.stragglersTotal.Add(1)
	}
}

func (mo *Monitor) stragglerResolved() {
	if mo != nil {
		mo.stragglers.Add(-1)
	}
}

// speculated accounts one backup attempt dispatched for a flagged task;
// speculationWon the subset whose backup completed first.
func (mo *Monitor) speculated() {
	if mo != nil {
		mo.specRetries.Add(1)
	}
}

func (mo *Monitor) speculationWon() {
	if mo != nil {
		mo.specWins.Add(1)
	}
}

func (mo *Monitor) breakerChanged(from, to string) {
	if mo == nil {
		return
	}
	if to == BreakerOpen {
		mo.breakersOpen.Add(1)
	}
	if from == BreakerOpen {
		mo.breakersOpen.Add(-1)
	}
}

// Latency exposes the invocation-latency histogram (read-side only).
func (mo *Monitor) Latency() *metrics.Histogram {
	if mo == nil {
		return nil
	}
	return &mo.latency
}

// Snapshot is a point-in-time view of the monitor's state.
type Snapshot struct {
	Workflow        string
	Scheduling      string
	Total           int64
	Ready           int64
	Running         int64
	Done            int64
	Failed          int64
	Retries         int64
	OpenBreak       int64
	MemoHits        int64
	MemoMisses      int64
	Stragglers      int64
	StragglersTotal int64
	SpecRetries     int64
	SpecWins        int64
}

// Snapshot returns the current progress counters.
func (mo *Monitor) Snapshot() Snapshot {
	if mo == nil {
		return Snapshot{}
	}
	mo.mu.Lock()
	s := Snapshot{Workflow: mo.workflow, Scheduling: mo.scheduling, Total: mo.total}
	mo.mu.Unlock()
	s.Ready = mo.ready.Load()
	s.Running = mo.running.Load()
	s.Done = mo.done.Load()
	s.Failed = mo.failed.Load()
	s.Retries = mo.retries.Load()
	s.OpenBreak = mo.breakersOpen.Load()
	s.MemoHits = mo.memoHits.Load()
	s.MemoMisses = mo.memoMisses.Load()
	s.Stragglers = mo.stragglers.Load()
	s.StragglersTotal = mo.stragglersTotal.Load()
	s.SpecRetries = mo.specRetries.Load()
	s.SpecWins = mo.specWins.Load()
	return s
}

// WriteMetrics writes the monitor's state in Prometheus text exposition
// format. A nil monitor writes nothing.
func (mo *Monitor) WriteMetrics(w io.Writer) error {
	if mo == nil {
		return nil
	}
	s := mo.Snapshot()
	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	p("# HELP wfm_workflow_info Identity of the workflow run feeding these metrics.\n")
	p("# TYPE wfm_workflow_info gauge\n")
	p("wfm_workflow_info{workflow=%q,scheduling=%q} 1\n", s.Workflow, s.Scheduling)
	p("# HELP wfm_tasks_total Tasks in the current workflow.\n")
	p("# TYPE wfm_tasks_total gauge\n")
	p("wfm_tasks_total %d\n", s.Total)
	p("# HELP wfm_tasks_ready Tasks released by the scheduler, not yet invoking.\n")
	p("# TYPE wfm_tasks_ready gauge\n")
	p("wfm_tasks_ready %d\n", s.Ready)
	p("# HELP wfm_tasks_running Tasks with an HTTP invocation in flight.\n")
	p("# TYPE wfm_tasks_running gauge\n")
	p("wfm_tasks_running %d\n", s.Running)
	p("# HELP wfm_tasks_done_total Tasks completed successfully.\n")
	p("# TYPE wfm_tasks_done_total counter\n")
	p("wfm_tasks_done_total %d\n", s.Done)
	p("# HELP wfm_tasks_failed_total Tasks failed terminally, including skipped descendants.\n")
	p("# TYPE wfm_tasks_failed_total counter\n")
	p("wfm_tasks_failed_total %d\n", s.Failed)
	p("# HELP wfm_invocation_retries_total Invocation attempts beyond each task's first.\n")
	p("# TYPE wfm_invocation_retries_total counter\n")
	p("wfm_invocation_retries_total %d\n", s.Retries)
	p("# HELP wfm_breakers_open Circuit breakers currently open.\n")
	p("# TYPE wfm_breakers_open gauge\n")
	p("wfm_breakers_open %d\n", s.OpenBreak)
	p("# HELP wfm_memo_hits_total Tasks seeded from the memo cache, never invoked.\n")
	p("# TYPE wfm_memo_hits_total counter\n")
	p("wfm_memo_hits_total %d\n", s.MemoHits)
	p("# HELP wfm_memo_misses_total Tasks probed without a usable memo-cache entry.\n")
	p("# TYPE wfm_memo_misses_total counter\n")
	p("wfm_memo_misses_total %d\n", s.MemoMisses)
	p("# HELP wfm_stragglers In-flight attempts currently flagged past k x their endpoint's median.\n")
	p("# TYPE wfm_stragglers gauge\n")
	p("wfm_stragglers %d\n", s.Stragglers)
	p("# HELP wfm_stragglers_flagged_total Attempts flagged as stragglers.\n")
	p("# TYPE wfm_stragglers_flagged_total counter\n")
	p("wfm_stragglers_flagged_total %d\n", s.StragglersTotal)
	p("# HELP wfm_speculative_retries_total Backup attempts dispatched for flagged tasks.\n")
	p("# TYPE wfm_speculative_retries_total counter\n")
	p("wfm_speculative_retries_total %d\n", s.SpecRetries)
	p("# HELP wfm_speculative_wins_total Flagged tasks whose backup attempt completed first.\n")
	p("# TYPE wfm_speculative_wins_total counter\n")
	p("wfm_speculative_wins_total %d\n", s.SpecWins)
	if err != nil {
		return err
	}
	return mo.latency.WriteProm(w, "wfm_invocation_seconds", "Wall time per completed task invocation.")
}
