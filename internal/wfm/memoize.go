package wfm

import (
	"sync"

	"wfserverless/internal/dag"
	"wfserverless/internal/memo"
	"wfserverless/internal/sharedfs"
	"wfserverless/internal/wfformat"
)

// MemoReport summarizes what the memo cache contributed to a run.
type MemoReport struct {
	// Hits is how many tasks were seeded as completed from the cache
	// (fingerprint matched and every recorded output verified on the
	// drive) and therefore never invoked.
	Hits int
	// Misses is how many tasks had no usable cache entry — unknown
	// fingerprint, or a hit whose outputs had vanished or diverged on
	// the drive (those re-run exactly like Resume's re-executed tasks).
	Misses int
	// SkippedOutputBytes sums the recorded output sizes of the hits:
	// the data volume this run did not have to recompute and republish.
	SkippedOutputBytes int64
	// CacheEntries is the cache's distinct-fingerprint count after the
	// run populated it.
	CacheEntries int
	// CacheRepaired reports that opening the cache found corruption and
	// truncated it back to a valid prefix (CacheDroppedBytes long lost);
	// a fully-foreign file degrades to a cold cache.
	CacheRepaired     bool
	CacheDroppedBytes int64
}

// memoState is one run's view of the memo cache: the per-task
// fingerprints resolved bottom-up over the CSR at prepare time, the
// probe's hit set, and the completion-side recorder. The probe runs
// once before any dispatch; the drain afterwards costs hit tasks
// nothing and executed tasks one manifest append each.
type memoState struct {
	cache   *memo.Cache
	drive   sharedfs.Drive
	hasher  sharedfs.Hasher // content-address view of drive; nil if unsupported
	fps     []wfformat.Hash // by task ID
	hitSet  []bool          // by task ID
	hitIDs  []int32         // ascending
	misses  int
	skipped int64 // bytes of recorded outputs across hits

	mu      sync.Mutex
	scratch []memo.Output // manifest build buffer, reused under mu
}

// probeMemo resolves every task's fingerprint and probes the cache,
// marking as hits the tasks whose recorded outputs still verify on the
// shared drive. Tasks the journal already proved completed (rec) are
// the resume path's business and are skipped here.
func (m *Manager) probeMemo(csr *dag.CSR, p *invocationPlan, rec *recovery) *memoState {
	ms := &memoState{cache: m.opts.Memoize, drive: m.opts.Drive}
	ms.hasher, _ = m.opts.Drive.(sharedfs.Hasher)
	// External inputs are addressed through the drive when it already
	// holds the file (so content drift invalidates consumers) and
	// through the declared (name, size) pattern address otherwise (so a
	// fingerprint computed before staging equals one computed after —
	// probing happens before stageHeader runs).
	ext := func(name string, size int64) uint64 {
		if ms.hasher != nil {
			if h, ok := ms.hasher.ContentHash(name); ok {
				return h
			}
		}
		return sharedfs.ContentAddress(name, size)
	}
	ms.fps = wfformat.TaskFingerprints(csr, p.tasks, ext)
	ms.hitSet = make([]bool, p.len())
	for id := 0; id < p.len(); id++ {
		if rec != nil && rec.doneSet[id] {
			continue
		}
		outs, ok := ms.cache.Lookup(ms.fps[id])
		if !ok || !ms.outputsPresent(outs) {
			ms.misses++
			continue
		}
		ms.hitSet[id] = true
		ms.hitIDs = append(ms.hitIDs, int32(id))
		for _, o := range outs {
			ms.skipped += o.Size
		}
	}
	m.opts.Monitor.memoProbed(len(ms.hitIDs), ms.misses)
	return ms
}

// outputsPresent verifies a cache entry against the drive: on
// content-addressed drives each output must still carry the recorded
// content address (one metadata hash per file, the Hasher fast path);
// otherwise existence is the best check available. A failed
// verification demotes the hit to a miss — the producer re-runs, just
// like Resume re-runs tasks whose products vanished.
func (ms *memoState) outputsPresent(outs []memo.Output) bool {
	for _, o := range outs {
		if ms.hasher != nil {
			h, ok := ms.hasher.ContentHash(o.Name)
			if !ok || (o.Hash != 0 && h != o.Hash) {
				return false
			}
		} else if !ms.drive.Exists(o.Name) {
			return false
		}
	}
	return true
}

// put records a completed task's output manifest in the cache. Safe on
// a nil receiver (memoization off) and for concurrent workers.
func (ms *memoState) put(id int32, t *wfformat.Task) {
	if ms == nil {
		return
	}
	ms.mu.Lock()
	ms.scratch = ms.scratch[:0]
	for _, f := range t.Files {
		if f.Link != wfformat.LinkOutput {
			continue
		}
		o := memo.Output{Name: f.Name, Size: f.SizeInBytes}
		if ms.hasher != nil {
			if h, ok := ms.hasher.ContentHash(f.Name); ok {
				o.Hash = h
			}
		}
		ms.scratch = append(ms.scratch, o)
	}
	ms.cache.Put(ms.fps[id], ms.scratch) // error sticky in the cache, surfaced at run end
	ms.mu.Unlock()
}

// report renders the run-level summary.
func (ms *memoState) report() *MemoReport {
	r := &MemoReport{
		Hits:               len(ms.hitIDs),
		Misses:             ms.misses,
		SkippedOutputBytes: ms.skipped,
		CacheEntries:       ms.cache.Len(),
	}
	r.CacheDroppedBytes, r.CacheRepaired = ms.cache.Recovered()
	return r
}

// memoizedResult renders a cache-hit task as a TaskResult: completed by
// an earlier run with identical content, never invoked here.
func memoizedResult(p *invocationPlan, csr *dag.CSR, id int32) *TaskResult {
	task := p.tasks[id]
	return &TaskResult{
		Name:     task.Name,
		Category: task.Category,
		Phase:    int(csr.Level(id)) + 1,
		Memoized: true,
	}
}

// seededResult renders a task that must not be re-invoked — recovered
// from the journal or memoized from the cache.
func seededResult(p *invocationPlan, csr *dag.CSR, st *runState, id int32) *TaskResult {
	if st.recoveredID(id) {
		return recoveredResult(p, csr, st, id)
	}
	return memoizedResult(p, csr, id)
}

// seedResults records every pre-completed task's result in one arena
// allocation. On a fully-memoized 100k-task re-run this loop IS the
// execution phase; per-task heap objects and their GC scan cost would
// dominate it.
func seedResults(p *invocationPlan, csr *dag.CSR, st *runState, seeds []int32, out map[string]*TaskResult) {
	arena := make([]TaskResult, len(seeds))
	for i, id := range seeds {
		tr := &arena[i]
		task := p.tasks[id]
		tr.Name = task.Name
		tr.Category = task.Category
		tr.Phase = int(csr.Level(id)) + 1
		if st.recoveredID(id) {
			tr.Recovered = true
			if st.rec != nil {
				tr.Attempts = int(st.rec.attempts[id])
			}
		} else {
			tr.Memoized = true
		}
		out[task.Name] = tr
	}
}
