package wfm

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"wfserverless/internal/memo"
	"wfserverless/internal/sharedfs"
	"wfserverless/internal/wfformat"
)

func openCache(t *testing.T, path string) *memo.Cache {
	t.Helper()
	c, err := memo.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func memoManager(t *testing.T, drive sharedfs.Drive, c *memo.Cache, mode Scheduling, mutate func(*Options)) *Manager {
	t.Helper()
	return fastManager(t, drive, func(o *Options) {
		o.Memoize = c
		o.Scheduling = mode
		if mutate != nil {
			mutate(o)
		}
	})
}

// extChainWorkflow is a chain whose root also reads an external input —
// the file stageHeader puts on the drive — so unchanged-re-run tests
// cover the staging-independence of external-input addressing.
func extChainWorkflow(t testing.TB, n int, url string) *wfformat.Workflow {
	w := chainWorkflow(t, n, url)
	root := w.Tasks["c000"]
	root.Files = append(root.Files, wfformat.File{Link: wfformat.LinkInput, Name: "ext_seed", SizeInBytes: 4})
	root.Command.Arguments[0].Inputs = append(root.Command.Arguments[0].Inputs, "ext_seed")
	return w
}

// driveState captures (name, size) for byte-identity comparisons.
func driveState(t *testing.T, d sharedfs.Drive) map[string]int64 {
	t.Helper()
	out := make(map[string]int64)
	for _, name := range d.List() {
		size, err := d.Stat(name)
		if err != nil {
			t.Fatal(err)
		}
		out[name] = size
	}
	return out
}

// invokedSince diffs two countingStub snapshots: task names whose call
// count grew.
func invokedSince(before, after map[string]int) map[string]int {
	out := make(map[string]int)
	for name, n := range after {
		if n > before[name] {
			out[name] = n - before[name]
		}
	}
	return out
}

func TestMemoizeUnchangedRerun(t *testing.T) {
	for _, mode := range []Scheduling{SchedulePhases, ScheduleDependency} {
		t.Run(mode.String(), func(t *testing.T) {
			drive := sharedfs.NewMem()
			srv, snap := countingStub(t, drive)
			w := extChainWorkflow(t, 6, srv.URL)
			n := w.Len()
			path := filepath.Join(t.TempDir(), "memo.cache")

			cold := openCache(t, path)
			mon := NewMonitor()
			m := memoManager(t, drive, cold, mode, func(o *Options) { o.Monitor = mon })
			res, err := m.Run(context.Background(), w)
			if err != nil {
				t.Fatal(err)
			}
			if res.Memo == nil || res.Memo.Hits != 0 || res.Memo.Misses != n {
				t.Fatalf("cold run Memo = %+v, want 0 hits / %d misses", res.Memo, n)
			}
			if err := cold.Close(); err != nil {
				t.Fatal(err)
			}
			after1 := snap()
			state1 := driveState(t, drive)

			// Fresh cache object over the same file models a new process.
			warm := openCache(t, path)
			defer warm.Close()
			if warm.Len() != n {
				t.Fatalf("cache holds %d entries after cold run, want %d", warm.Len(), n)
			}
			m2 := memoManager(t, drive, warm, mode, func(o *Options) { o.Monitor = mon })
			res2, err := m2.Run(context.Background(), w)
			if err != nil {
				t.Fatal(err)
			}
			if got := invokedSince(after1, snap()); len(got) != 0 {
				t.Fatalf("unchanged re-run invoked %v, want none", got)
			}
			if res2.Memo == nil || res2.Memo.Hits != n || res2.Memo.Misses != 0 {
				t.Fatalf("re-run Memo = %+v, want %d hits / 0 misses", res2.Memo, n)
			}
			for name, tr := range res2.Tasks {
				if name == HeaderName || name == TailName {
					continue
				}
				if !tr.Memoized || tr.Recovered || tr.Err != nil {
					t.Fatalf("task %s: Memoized=%v Recovered=%v Err=%v, want memoized clean", name, tr.Memoized, tr.Recovered, tr.Err)
				}
			}
			if state2 := driveState(t, drive); !reflect.DeepEqual(state1, state2) {
				t.Fatalf("drive changed across memoized re-run:\n%v\nvs\n%v", state1, state2)
			}
			s := mon.Snapshot()
			if s.MemoHits != int64(n) || s.MemoMisses != int64(n) {
				t.Fatalf("monitor memo counters = %d/%d, want %d/%d", s.MemoHits, s.MemoMisses, n, n)
			}
			var sb strings.Builder
			if err := mon.WriteMetrics(&sb); err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(sb.String(), "wfm_memo_hits_total") {
				t.Fatal("metrics exposition lacks wfm_memo_hits_total")
			}
		})
	}
}

// TestMemoizeIncrementalEdit is the acceptance-criterion test: a 1-task
// edit re-invokes exactly that task and its descendants, and the final
// drive state is byte-identical to a from-scratch run of the edited
// workflow.
func TestMemoizeIncrementalEdit(t *testing.T) {
	for _, mode := range []Scheduling{SchedulePhases, ScheduleDependency} {
		t.Run(mode.String(), func(t *testing.T) {
			drive := sharedfs.NewMem()
			srv, snap := countingStub(t, drive)
			path := filepath.Join(t.TempDir(), "memo.cache")

			cold := openCache(t, path)
			m := memoManager(t, drive, cold, mode, nil)
			if _, err := m.Run(context.Background(), diamondWorkflow(t, 2, 3, srv.URL)); err != nil {
				t.Fatal(err)
			}
			cold.Close()
			before := snap()

			// Edit one mid task of the first diamond layer: descendants are
			// the first join, the whole second layer, and the final join.
			edited := diamondWorkflow(t, 2, 3, srv.URL)
			edited.Tasks["m000_01"].Command.Arguments[0].CPUWork += 99
			want := map[string]bool{"m000_01": true, "j000": true, "j001": true}
			for i := 0; i < 3; i++ {
				want["m001_0"+string(rune('0'+i))] = true
			}

			warm := openCache(t, path)
			defer warm.Close()
			m2 := memoManager(t, drive, warm, mode, nil)
			res, err := m2.Run(context.Background(), edited)
			if err != nil {
				t.Fatal(err)
			}
			got := invokedSince(before, snap())
			for name := range want {
				if got[name] != 1 {
					t.Fatalf("edited descendant %s invoked %d times, want 1 (invoked: %v)", name, got[name], got)
				}
			}
			for name := range got {
				if !want[name] {
					t.Fatalf("extra invocation of %s (invoked: %v)", name, got)
				}
			}
			if res.Memo.Hits != edited.Len()-len(want) {
				t.Fatalf("Memo.Hits = %d, want %d", res.Memo.Hits, edited.Len()-len(want))
			}

			// Byte-identity against a from-scratch run of the edited
			// workflow on a fresh drive.
			refDrive := sharedfs.NewMem()
			refSrv, _ := countingStub(t, refDrive)
			ref := diamondWorkflow(t, 2, 3, refSrv.URL)
			ref.Tasks["m000_01"].Command.Arguments[0].CPUWork += 99
			mref := fastManager(t, refDrive, func(o *Options) { o.Scheduling = mode })
			if _, err := mref.Run(context.Background(), ref); err != nil {
				t.Fatal(err)
			}
			if a, b := driveState(t, drive), driveState(t, refDrive); !reflect.DeepEqual(a, b) {
				t.Fatalf("incremental drive state differs from from-scratch run:\n%v\nvs\n%v", a, b)
			}
		})
	}
}

// TestMemoizeVanishedOutputReruns: a cache hit whose recorded outputs
// are gone from the drive re-runs its producer — and only its producer;
// descendants with intact outputs stay memoized.
func TestMemoizeVanishedOutputReruns(t *testing.T) {
	drive := sharedfs.NewMem()
	srv, snap := countingStub(t, drive)
	w := chainWorkflow(t, 5, srv.URL)
	path := filepath.Join(t.TempDir(), "memo.cache")

	cold := openCache(t, path)
	m := memoManager(t, drive, cold, ScheduleDependency, nil)
	if _, err := m.Run(context.Background(), w); err != nil {
		t.Fatal(err)
	}
	cold.Close()
	before := snap()
	if err := drive.Remove("out_c002"); err != nil {
		t.Fatal(err)
	}

	warm := openCache(t, path)
	defer warm.Close()
	m2 := memoManager(t, drive, warm, ScheduleDependency, nil)
	res, err := m2.Run(context.Background(), w)
	if err != nil {
		t.Fatal(err)
	}
	got := invokedSince(before, snap())
	if len(got) != 1 || got["c002"] != 1 {
		t.Fatalf("vanished-output re-run invoked %v, want exactly c002 once", got)
	}
	if !drive.Exists("out_c002") {
		t.Fatal("re-run did not restore the vanished output")
	}
	if res.Memo.Hits != w.Len()-1 || res.Memo.Misses != 1 {
		t.Fatalf("Memo = %+v, want %d hits / 1 miss", res.Memo, w.Len()-1)
	}
}

// TestMemoizeJournalRecords: a memoized re-run under a journal writes
// task-memoized records the analysis layer reports.
func TestMemoizeJournalRecords(t *testing.T) {
	drive := sharedfs.NewMem()
	srv, _ := countingStub(t, drive)
	w := chainWorkflow(t, 4, srv.URL)
	path := filepath.Join(t.TempDir(), "memo.cache")

	cold := openCache(t, path)
	m := memoManager(t, drive, cold, ScheduleDependency, nil)
	if _, err := m.Run(context.Background(), w); err != nil {
		t.Fatal(err)
	}
	cold.Close()

	dir := t.TempDir()
	j := openJournal(t, dir)
	warm := openCache(t, path)
	defer warm.Close()
	m2 := memoManager(t, drive, warm, ScheduleDependency, func(o *Options) { o.Journal = j })
	if _, err := m2.Run(context.Background(), w); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	sum, err := ReadRunJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if sum.MemoizedTasks != w.Len() {
		t.Fatalf("journal reports %d memoized tasks, want %d", sum.MemoizedTasks, w.Len())
	}
	if sum.EventCounts["task-memoized"] != w.Len() {
		t.Fatalf("task-memoized records = %d, want %d", sum.EventCounts["task-memoized"], w.Len())
	}
	if sum.EventCounts["task-started"] != 0 {
		t.Fatalf("memoized re-run recorded %d task-started events, want 0", sum.EventCounts["task-started"])
	}
	if sum.MemoSkippedBytes != int64(w.Len()) { // one 1-byte output per task
		t.Fatalf("MemoSkippedBytes = %d, want %d", sum.MemoSkippedBytes, w.Len())
	}
	if sum.MemoReexecuted != 0 {
		t.Fatalf("MemoReexecuted = %d, want 0", sum.MemoReexecuted)
	}
}

// TestMemoizeComposesWithResume: crash a journaled+memoized run
// mid-flight, then resume with a cache reopened from disk (modeling
// process death). No task the journal or the cache recorded as done may
// be invoked again; only the in-flight crash window re-runs.
func TestMemoizeComposesWithResume(t *testing.T) {
	for _, mode := range []Scheduling{SchedulePhases, ScheduleDependency} {
		t.Run(mode.String(), func(t *testing.T) {
			drive := sharedfs.NewMem()
			srv, snap := countingStub(t, drive)
			w := diamondWorkflow(t, 2, 3, srv.URL)
			cachePath := filepath.Join(t.TempDir(), "memo.cache")
			dir := t.TempDir()

			j := openJournal(t, dir)
			c := openCache(t, cachePath)
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			m := memoManager(t, drive, c, mode, func(o *Options) {
				o.Journal = j
				o.ContinueOnError = true
				o.AfterTaskDone = func(done int) {
					if done == 3 {
						cancel()
					}
				}
			})
			m.Run(ctx, w) // crashes by design; error expected
			j.Abort()
			c.Close()
			firstCalls := snap()

			j2 := openJournal(t, dir)
			recorded := make(map[int32]bool)
			for _, r := range j2.Records() {
				if r.Kind == recTaskCompleted || r.Kind == recTaskMemoized {
					d := payload{b: r.Data}
					id := int32(d.uvarint())
					if d.err == nil {
						recorded[id] = true
					}
				}
			}
			c2 := openCache(t, cachePath)
			defer c2.Close()
			m2 := memoManager(t, drive, c2, mode, func(o *Options) { o.Journal = j2 })
			res, err := m2.Resume(context.Background(), w)
			if err != nil {
				t.Fatal(err)
			}
			if err := j2.Close(); err != nil {
				t.Fatal(err)
			}
			if len(res.Failed) != 0 {
				t.Fatalf("resumed run failed tasks: %v", res.Failed)
			}
			csr, _, err := w.Compile()
			if err != nil {
				t.Fatal(err)
			}
			allCalls := snap()
			for id := range recorded {
				name := csr.Name(id)
				if allCalls[name] > firstCalls[name] {
					t.Fatalf("task %s recorded done yet re-invoked on resume (%d -> %d calls)",
						name, firstCalls[name], allCalls[name])
				}
			}
			// The cache's flushed entries also shield tasks the journal
			// missed: anything durably cached with intact outputs must not
			// re-run either.
			for _, id := range csr.TopoOrder() {
				tr := res.Tasks[csr.Name(id)]
				if tr != nil && tr.Memoized && allCalls[csr.Name(id)] > firstCalls[csr.Name(id)] {
					t.Fatalf("task %s reported memoized yet re-invoked", csr.Name(id))
				}
			}
			// Every task is accounted exactly once in the final result.
			if got := len(res.Tasks); got != w.Len()+2 {
				t.Fatalf("result holds %d tasks, want %d", got, w.Len()+2)
			}
		})
	}
}

// TestMemoizeCorruptCacheColdRun: garbage where the cache should be
// degrades to a cold cache — full re-execution, a warning, and a
// rewritten usable cache file. Never a wrong hit.
func TestMemoizeCorruptCacheColdRun(t *testing.T) {
	drive := sharedfs.NewMem()
	srv, snap := countingStub(t, drive)
	w := chainWorkflow(t, 4, srv.URL)
	path := filepath.Join(t.TempDir(), "memo.cache")
	if err := os.WriteFile(path, []byte("garbage garbage garbage"), 0o644); err != nil {
		t.Fatal(err)
	}

	c := openCache(t, path)
	m := memoManager(t, drive, c, ScheduleDependency, nil)
	res, err := m.Run(context.Background(), w)
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	if res.Memo.Hits != 0 {
		t.Fatalf("corrupt cache produced %d hits", res.Memo.Hits)
	}
	if !res.Memo.CacheRepaired {
		t.Fatal("corrupt cache not reported repaired")
	}
	warned := false
	for _, wmsg := range res.Warnings {
		if strings.Contains(wmsg, "memo") {
			warned = true
		}
	}
	if !warned {
		t.Fatalf("no memo warning in %v", res.Warnings)
	}
	got := snap()
	for _, name := range w.TaskNames() {
		if got[name] != 1 {
			t.Fatalf("task %s invoked %d times on cold run, want 1", name, got[name])
		}
	}

	// The rewritten file now serves hits.
	c2 := openCache(t, path)
	defer c2.Close()
	m2 := memoManager(t, drive, c2, ScheduleDependency, nil)
	res2, err := m2.Run(context.Background(), w)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Memo.Hits != w.Len() {
		t.Fatalf("post-repair re-run hits = %d, want %d", res2.Memo.Hits, w.Len())
	}
}
