package wfm

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"wfserverless/internal/sharedfs"
	"wfserverless/internal/wfformat"
)

// countingGate is a TaskGate that enforces and records a concurrency
// cap, and checks Acquire/Release stay balanced.
type countingGate struct {
	sem     chan struct{}
	held    atomic.Int64
	peak    atomic.Int64
	grants  atomic.Int64
	releases atomic.Int64
}

func newCountingGate(slots int) *countingGate {
	return &countingGate{sem: make(chan struct{}, slots)}
}

func (g *countingGate) Acquire(ctx context.Context) error {
	select {
	case g.sem <- struct{}{}:
	case <-ctx.Done():
		return ctx.Err()
	}
	g.grants.Add(1)
	n := g.held.Add(1)
	for {
		p := g.peak.Load()
		if n <= p || g.peak.CompareAndSwap(p, n) {
			return nil
		}
	}
}

func (g *countingGate) Release() {
	g.releases.Add(1)
	g.held.Add(-1)
	<-g.sem
}

// TestGateBoundsBothModes runs a wide fanout through a 3-slot gate in
// both scheduling modes and checks the gate bounds concurrency, is
// acquired once per task, and ends balanced.
func TestGateBoundsBothModes(t *testing.T) {
	for _, mode := range []Scheduling{SchedulePhases, ScheduleDependency} {
		t.Run(mode.String(), func(t *testing.T) {
			drive := sharedfs.NewMem()
			srv, _, maxActive := stubService(t, drive, 2*time.Millisecond)
			w := fanoutWorkflow(t, 16, srv.URL)
			gate := newCountingGate(3)
			m := fastManager(t, drive, func(o *Options) {
				o.Scheduling = mode
				o.Gate = gate
				o.MaxParallel = 64
			})
			res, err := m.Run(context.Background(), w)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Failed) != 0 {
				t.Fatalf("failed = %v", res.Failed)
			}
			tasks := int64(w.Len())
			if g := gate.grants.Load(); g != tasks {
				t.Fatalf("gate granted %d times, want once per task (%d)", g, tasks)
			}
			if r := gate.releases.Load(); r != gate.grants.Load() {
				t.Fatalf("unbalanced gate: %d grants, %d releases", gate.grants.Load(), r)
			}
			if p := gate.peak.Load(); p > 3 {
				t.Fatalf("gate admitted %d concurrent tasks, cap is 3", p)
			}
			if maxActive.Load() > 3 {
				t.Fatalf("endpoint saw %d concurrent invocations through a 3-slot gate", maxActive.Load())
			}
		})
	}
}

// blockedGate never grants: Acquire returns only on ctx cancellation.
type blockedGate struct{}

func (blockedGate) Acquire(ctx context.Context) error {
	<-ctx.Done()
	return ctx.Err()
}
func (blockedGate) Release() {}

// TestGateAcquireCancellation checks that a run whose gate never
// grants fails cleanly (as a cancellation, not a hang) in both modes.
func TestGateAcquireCancellation(t *testing.T) {
	for _, mode := range []Scheduling{SchedulePhases, ScheduleDependency} {
		t.Run(mode.String(), func(t *testing.T) {
			drive := sharedfs.NewMem()
			srv, _, _ := stubService(t, drive, 0)
			w := fanoutWorkflow(t, 4, srv.URL)
			m := fastManager(t, drive, func(o *Options) {
				o.Scheduling = mode
				o.Gate = blockedGate{}
			})
			ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
			defer cancel()
			done := make(chan error, 1)
			go func() {
				_, err := m.Run(ctx, w)
				done <- err
			}()
			select {
			case err := <-done:
				if err == nil {
					t.Fatal("run succeeded through a gate that never grants")
				}
			case <-time.After(10 * time.Second):
				t.Fatal("run hung on a cancelled gate")
			}
		})
	}
}

// TestGateSharedAcrossManagers is the embedding contract wfmd relies
// on: many Managers dispatching through one gate never exceed the
// shared budget combined.
func TestGateSharedAcrossManagers(t *testing.T) {
	drive := sharedfs.NewMem()
	srv, _, maxActive := stubService(t, drive, 2*time.Millisecond)
	gate := newCountingGate(4)
	const managers = 3
	var wg sync.WaitGroup
	errs := make([]error, managers)
	for i := 0; i < managers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := prefixedFanout(t, fmt.Sprintf("shared%d", i), 10, srv.URL)
			m := fastManager(t, drive, func(o *Options) {
				o.Scheduling = ScheduleDependency
				o.Gate = gate
				o.MaxParallel = 32
			})
			_, errs[i] = m.Run(context.Background(), w)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("manager %d: %v", i, err)
		}
	}
	if p := gate.peak.Load(); p > 4 {
		t.Fatalf("combined concurrency %d through a 4-slot shared gate", p)
	}
	if maxActive.Load() > 4 {
		t.Fatalf("endpoint saw %d concurrent invocations, shared budget is 4", maxActive.Load())
	}
	if g, r := gate.grants.Load(), gate.releases.Load(); g != r || g != managers*11 {
		t.Fatalf("grants %d releases %d, want %d each", g, r, managers*11)
	}
}

// prefixedFanout is fanoutWorkflow with namespaced task and file
// names, so concurrent runs share one drive without colliding.
func prefixedFanout(t testing.TB, prefix string, width int, url string) *wfformat.Workflow {
	t.Helper()
	w := wfformat.New(prefix)
	root := prefix + "_root"
	synthAdd(t, w, synthTask(root, url, nil))
	for i := 0; i < width; i++ {
		name := fmt.Sprintf("%s_f%03d", prefix, i)
		synthAdd(t, w, synthTask(name, url, []string{"out_" + root}))
		synthLink(t, w, root, name)
	}
	return w
}
