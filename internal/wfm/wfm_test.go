package wfm

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"wfserverless/internal/cluster"
	"wfserverless/internal/container"
	"wfserverless/internal/serverless"
	"wfserverless/internal/sharedfs"
	"wfserverless/internal/translator"
	"wfserverless/internal/wfbench"
	"wfserverless/internal/wfformat"
	"wfserverless/internal/wfgen"
)

// stubService runs an httptest server that executes WfBench requests
// against a real drive with a trivial engine, counting concurrency.
func stubService(t *testing.T, drive sharedfs.Drive, delay time.Duration) (*httptest.Server, *atomic.Int64, *atomic.Int64) {
	t.Helper()
	var active, maxActive atomic.Int64
	var mu sync.Mutex
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var req wfbench.Request
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		cur := active.Add(1)
		mu.Lock()
		if cur > maxActive.Load() {
			maxActive.Store(cur)
		}
		mu.Unlock()
		time.Sleep(delay)
		for name, size := range req.Out {
			drive.WriteFile(name, size)
		}
		active.Add(-1)
		json.NewEncoder(w).Encode(&wfbench.Response{Name: req.Name, OK: true})
	})
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	return srv, &active, &maxActive
}

func fastManager(t *testing.T, drive sharedfs.Drive, mutate func(*Options)) *Manager {
	t.Helper()
	opts := Options{
		Drive:      drive,
		TimeScale:  0.002,
		PhaseDelay: 1,
		InputWait:  5,
	}
	if mutate != nil {
		mutate(&opts)
	}
	m, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func translated(t *testing.T, recipe string, size int, url string) *wfformat.Workflow {
	t.Helper()
	w, err := wfgen.Generate(wfgen.Spec{Recipe: recipe, NumTasks: size, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	out, err := translator.LocalContainer(w, translator.LocalContainerOptions{BaseURL: url})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Options{}); err == nil {
		t.Fatal("missing drive accepted")
	}
	if _, err := New(Options{Drive: sharedfs.NewMem(), TimeScale: -1}); err == nil {
		t.Fatal("negative TimeScale accepted")
	}
}

func TestRunRequiresAPIURL(t *testing.T) {
	drive := sharedfs.NewMem()
	m := fastManager(t, drive, nil)
	w, _ := wfgen.Generate(wfgen.Spec{Recipe: "blast", NumTasks: 6, Seed: 1})
	if _, err := m.Run(context.Background(), w); err == nil || !strings.Contains(err.Error(), "api_url") {
		t.Fatalf("err = %v, want api_url complaint", err)
	}
}

func TestRunRejectsInvalidWorkflow(t *testing.T) {
	m := fastManager(t, sharedfs.NewMem(), nil)
	w := wfformat.New("bad")
	w.AddTask(&wfformat.Task{Name: "t", Type: "weird", Cores: 1})
	if _, err := m.Run(context.Background(), w); err == nil {
		t.Fatal("invalid workflow executed")
	}
}

func TestRunAgainstStub(t *testing.T) {
	drive := sharedfs.NewMem()
	srv, _, _ := stubService(t, drive, time.Millisecond)
	m := fastManager(t, drive, nil)
	w := translated(t, "blast", 12, srv.URL)
	res, err := m.Run(context.Background(), w)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tasks) != 12+2 { // + header + tail
		t.Fatalf("task results = %d", len(res.Tasks))
	}
	// phases: header + 3 + tail
	if len(res.Phases) != 5 {
		t.Fatalf("phases = %d", len(res.Phases))
	}
	if res.Makespan <= 0 || res.Wall <= 0 {
		t.Fatalf("timings: %+v", res)
	}
	// every non-synthetic task got a response
	for name, tr := range res.Tasks {
		if name == HeaderName || name == TailName {
			continue
		}
		if tr.Err != nil || tr.Response == nil || !tr.Response.OK {
			t.Fatalf("task %s: %+v", name, tr)
		}
	}
	// all outputs present on the drive
	for _, name := range w.TaskNames() {
		for _, out := range w.Tasks[name].OutputFiles() {
			if !drive.Exists(out) {
				t.Fatalf("output %s missing", out)
			}
		}
	}
}

func TestPhaseOrderRespected(t *testing.T) {
	drive := sharedfs.NewMem()
	srv, _, _ := stubService(t, drive, time.Millisecond)
	m := fastManager(t, drive, nil)
	w := translated(t, "epigenomics", 20, srv.URL)
	res, err := m.Run(context.Background(), w)
	if err != nil {
		t.Fatal(err)
	}
	lv, _ := w.Graph()
	levels, _ := lv.LevelOf()
	// A child must start after all its parents ended.
	for name, tr := range res.Tasks {
		task, ok := w.Tasks[name]
		if !ok {
			continue
		}
		for _, parent := range task.Parents {
			ptr := res.Tasks[parent]
			if ptr.End > tr.Start {
				t.Fatalf("task %s (level %d) started at %v before parent %s (level %d) ended at %v",
					name, levels[name], tr.Start, parent, levels[parent], ptr.End)
			}
		}
	}
}

func TestMaxParallelCapsConcurrency(t *testing.T) {
	drive := sharedfs.NewMem()
	srv, _, maxActive := stubService(t, drive, 5*time.Millisecond)
	m := fastManager(t, drive, func(o *Options) { o.MaxParallel = 3 })
	w := translated(t, "seismology", 30, srv.URL)
	if _, err := m.Run(context.Background(), w); err != nil {
		t.Fatal(err)
	}
	if got := maxActive.Load(); got > 3 {
		t.Fatalf("max concurrent requests = %d, want <= 3", got)
	}
}

func TestFailFastAborts(t *testing.T) {
	drive := sharedfs.NewMem()
	var calls atomic.Int64
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "boom", http.StatusInternalServerError)
	})
	srv := httptest.NewServer(h)
	defer srv.Close()
	m := fastManager(t, drive, nil)
	w := translated(t, "blast", 10, srv.URL)
	res, err := m.Run(context.Background(), w)
	if err == nil {
		t.Fatal("failing run succeeded")
	}
	var pe *PhaseError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %T %v, want PhaseError", err, err)
	}
	if pe.Phase != 1 {
		t.Fatalf("failed phase = %d, want 1", pe.Phase)
	}
	// only phase 1 (the single split_fasta root) was attempted
	if calls.Load() != 1 {
		t.Fatalf("calls = %d, want abort after phase 1", calls.Load())
	}
	if len(res.Failed) != 1 {
		t.Fatalf("Failed = %v", res.Failed)
	}
}

func TestContinueOnError(t *testing.T) {
	drive := sharedfs.NewMem()
	var calls atomic.Int64
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var req wfbench.Request
		json.NewDecoder(r.Body).Decode(&req)
		calls.Add(1)
		// fail only the first phase's function
		if strings.HasPrefix(req.Name, "split_fasta") {
			http.Error(w, "boom", http.StatusInternalServerError)
			return
		}
		for name, size := range req.Out {
			drive.WriteFile(name, size)
		}
		json.NewEncoder(w).Encode(&wfbench.Response{Name: req.Name, OK: true})
	})
	srv := httptest.NewServer(h)
	defer srv.Close()
	m := fastManager(t, drive, func(o *Options) {
		o.ContinueOnError = true
		o.InputWait = 0.5 // later phases will miss the split output
	})
	w := translated(t, "blast", 8, srv.URL)
	res, err := m.Run(context.Background(), w)
	if err == nil {
		t.Fatal("run with failures reported success")
	}
	if calls.Load() != int64(w.Len()) {
		t.Fatalf("calls = %d, want all %d attempted", calls.Load(), w.Len())
	}
	if len(res.Failed) == 0 {
		t.Fatal("no failures recorded")
	}
}

func TestRunCancelled(t *testing.T) {
	drive := sharedfs.NewMem()
	srv, _, _ := stubService(t, drive, 50*time.Millisecond)
	m := fastManager(t, drive, nil)
	w := translated(t, "blast", 20, srv.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := m.Run(ctx, w); err == nil {
		t.Fatal("cancelled run succeeded")
	}
}

func TestPhaseBreakdown(t *testing.T) {
	drive := sharedfs.NewMem()
	srv, _, _ := stubService(t, drive, time.Millisecond)
	m := fastManager(t, drive, nil)
	w := translated(t, "blast", 12, srv.URL)
	res, err := m.Run(context.Background(), w)
	if err != nil {
		t.Fatal(err)
	}
	stats := PhaseBreakdown(res)
	if len(stats) != 3 {
		t.Fatalf("phase stats = %+v", stats)
	}
	if stats[0].Functions != 1 || stats[1].Functions != 9 || stats[2].Functions != 2 {
		t.Fatalf("widths = %+v", stats)
	}
	for _, s := range stats {
		if s.WallSpan < 0 {
			t.Fatalf("negative span: %+v", s)
		}
	}
}

// TestEndToEndServerless runs a real workflow through the translator, the
// Knative-like platform, and the manager — the paper's full serverless
// pipeline.
func TestEndToEndServerless(t *testing.T) {
	cl := cluster.PaperTestbed()
	drive := sharedfs.NewMem()
	p, err := serverless.New(serverless.Options{
		Cluster:           cl,
		Drive:             drive,
		TimeScale:         0.002,
		ColdStart:         0.5,
		AutoscalePeriod:   0.5,
		StableWindow:      10,
		PodOverheadMem:    50 << 20,
		WorkerOverheadMem: 8 << 20,
		InputWait:         5,
	})
	if err != nil {
		t.Fatal(err)
	}
	url, err := p.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer p.Stop()
	if err := p.Apply(serverless.ServiceConfig{
		Name: "wfbench", Workers: 10, CPURequestPerWorker: 1, MemRequestPerWorker: 256 << 20,
	}); err != nil {
		t.Fatal(err)
	}

	w, err := wfgen.Generate(wfgen.Spec{Recipe: "blast", NumTasks: 40, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	kn, err := translator.Knative(w, translator.KnativeOptions{IngressURL: url, Workdir: "shared"})
	if err != nil {
		t.Fatal(err)
	}
	m := fastManager(t, drive, nil)
	res, err := m.Run(context.Background(), kn)
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan <= 0 {
		t.Fatal("no makespan")
	}
	if p.Requests() != int64(w.Len()) {
		t.Fatalf("platform served %d requests, want %d", p.Requests(), w.Len())
	}
	if p.ColdStarts() == 0 {
		t.Fatal("expected cold starts on a scale-from-zero service")
	}
}

// TestEndToEndLocalContainers runs the same pipeline against the
// bare-metal baseline.
func TestEndToEndLocalContainers(t *testing.T) {
	cl := cluster.PaperTestbed()
	drive := sharedfs.NewMem()
	rt, err := container.NewRuntime(container.Options{
		Cluster:           cl,
		Drive:             drive,
		TimeScale:         0.002,
		InputWait:         5,
		PodOverheadMem:    50 << 20,
		WorkerOverheadMem: 8 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	url, err := rt.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()
	for i := 0; i < 4; i++ {
		if _, err := rt.Run(container.Config{
			Name: "wfbench-" + string(rune('a'+i)), Workers: 10, CPUs: 10, MemLimit: 4 << 30,
		}); err != nil {
			t.Fatal(err)
		}
	}

	w, err := wfgen.Generate(wfgen.Spec{Recipe: "epigenomics", NumTasks: 30, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	lc, err := translator.LocalContainer(w, translator.LocalContainerOptions{BaseURL: url, Workdir: "shared"})
	if err != nil {
		t.Fatal(err)
	}
	m := fastManager(t, drive, nil)
	res, err := m.Run(context.Background(), lc)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(res.Tasks)-2) != rt.Requests() {
		t.Fatalf("runtime served %d, want %d", rt.Requests(), len(res.Tasks)-2)
	}
	// containers still reserved after the run (always-on baseline)
	if got := cl.Snapshot().ReservedCores; got != 40 {
		t.Fatalf("ReservedCores after run = %v, want 40", got)
	}
}

// untranslated generates a workflow without api_url annotations.
func untranslated(t *testing.T, recipe string, size int) (*wfformat.Workflow, error) {
	t.Helper()
	return wfgen.Generate(wfgen.Spec{Recipe: recipe, NumTasks: size, Seed: 1})
}
