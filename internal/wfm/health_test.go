package wfm

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"wfserverless/internal/health"
	"wfserverless/internal/journal"
	"wfserverless/internal/obs"
	"wfserverless/internal/sharedfs"
	"wfserverless/internal/wfbench"
)

// slowOnceService is a stub endpoint that delays the FIRST request for
// each name in slow by delay (wall time) — a bad-placement tail: the
// speculative backup attempt for the same task lands on a fast path.
func slowOnceService(t *testing.T, drive sharedfs.Drive, slow map[string]bool, delay time.Duration) *httptest.Server {
	t.Helper()
	var mu sync.Mutex
	seen := map[string]int{}
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var req wfbench.Request
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		mu.Lock()
		seen[req.Name]++
		first := seen[req.Name] == 1
		mu.Unlock()
		if slow[req.Name] && first {
			select {
			case <-r.Context().Done():
				return
			case <-time.After(delay):
			}
		} else {
			time.Sleep(2 * time.Millisecond)
		}
		for name, size := range req.Out {
			drive.WriteFile(name, size)
		}
		json.NewEncoder(w).Encode(&wfbench.Response{Name: req.Name, OK: true})
	})
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	return srv
}

func TestHealthBaselinesInResult(t *testing.T) {
	drive := sharedfs.NewMem()
	srv, _, _ := stubService(t, drive, time.Millisecond)
	m := fastManager(t, drive, func(o *Options) {
		o.Scheduling = ScheduleDependency
		o.Health = &HealthOptions{}
	})
	w := fanoutWorkflow(t, 10, srv.URL)
	res, err := m.Run(context.Background(), w)
	if err != nil {
		t.Fatal(err)
	}
	if res.Health == nil {
		t.Fatal("Result.Health missing with Options.Health set")
	}
	if len(res.Health.Endpoints) != 1 {
		t.Fatalf("endpoints = %+v, want one", res.Health.Endpoints)
	}
	e := res.Health.Endpoints[0]
	if e.Attempts != 12 { // root + 10 fan + sink
		t.Fatalf("attempts = %d, want 12", e.Attempts)
	}
	if e.P50 <= 0 || e.P95 < e.P50 {
		t.Fatalf("quantiles not populated: %+v", e)
	}
	if e.Failures != 0 || len(res.Health.Stragglers) != 0 {
		t.Fatalf("clean run reported trouble: %+v", res.Health)
	}
}

// TestHealthResultNilWhenOff pins that a run without Options.Health has
// a nil Health report — the plane is genuinely absent, not empty.
func TestHealthResultNilWhenOff(t *testing.T) {
	drive := sharedfs.NewMem()
	srv, _, _ := stubService(t, drive, time.Millisecond)
	m := fastManager(t, drive, nil)
	res, err := m.Run(context.Background(), fanoutWorkflow(t, 3, srv.URL))
	if err != nil {
		t.Fatal(err)
	}
	if res.Health != nil {
		t.Fatalf("Result.Health = %+v without Options.Health", res.Health)
	}
}

// TestHealthSpeculativeRetry drives the acceptance scenario through both
// scheduling modes with journal and memoization on: one task's first
// attempt hangs far past its endpoint's median, the watchdog must flag
// it before it completes, the speculative backup must win, and the
// journal must still record exactly one completion per task.
func TestHealthSpeculativeRetry(t *testing.T) {
	for _, mode := range []Scheduling{SchedulePhases, ScheduleDependency} {
		t.Run(mode.String(), func(t *testing.T) {
			drive := sharedfs.NewMem()
			slow := map[string]bool{"f003": true}
			srv := slowOnceService(t, drive, slow, 2*time.Second)
			dir := t.TempDir()
			j, err := journal.Open(dir, journal.Options{})
			if err != nil {
				t.Fatal(err)
			}
			defer j.Close()
			cache := openCache(t, filepath.Join(t.TempDir(), "memo.cache"))
			defer cache.Close()

			rec := health.NewFlightRecorder(256)
			m := fastManager(t, drive, func(o *Options) {
				o.Scheduling = mode
				o.Journal = j
				o.Memoize = cache
				o.Health = &HealthOptions{
					StragglerFactor:  3,
					MinSamples:       4,
					SpeculativeRetry: true,
					Recorder:         rec,
				}
			})
			w := fanoutWorkflow(t, 12, srv.URL)
			start := time.Now()
			res, err := m.Run(context.Background(), w)
			if err != nil {
				t.Fatal(err)
			}
			if wall := time.Since(start); wall > time.Second {
				t.Fatalf("run took %v: speculation did not rescue the straggler", wall)
			}
			if res.Health == nil {
				t.Fatal("no health report")
			}
			var flagged []string
			for _, s := range res.Health.Stragglers {
				flagged = append(flagged, s.Task)
			}
			if len(flagged) == 0 || !contains(flagged, "f003") {
				t.Fatalf("stragglers = %v, want f003 flagged", flagged)
			}
			if res.Health.SpeculativeRetries == 0 || res.Health.SpeculativeWins == 0 {
				t.Fatalf("speculation accounting: %+v", res.Health)
			}
			if tr := res.Tasks["f003"]; tr == nil || tr.Err != nil {
				t.Fatalf("straggler task result: %+v", tr)
			}

			// Journal safety: every task has exactly one terminal record and
			// the speculation race never double-completed anything.
			sum, err := ReadRunJournal(dir)
			if err != nil {
				t.Fatal(err)
			}
			total := 14 // 12 fan + root + sink
			if sum.CompletedTasks != total {
				t.Fatalf("journal completed = %d, want %d", sum.CompletedTasks, total)
			}
			if got := sum.EventCounts["task-completed"] + sum.EventCounts["task-memoized"]; got != total {
				t.Fatalf("terminal records = %d, want %d (duplicate completion?)", got, total)
			}

			// The flight recorder saw the straggler flag and the speculation.
			kinds := map[string]bool{}
			for _, ev := range rec.Events() {
				kinds[ev.Kind] = true
			}
			for _, k := range []string{"run-start", "task-start", "straggler", "speculate", "speculate-win", "task-done", "run-end"} {
				if !kinds[k] {
					t.Fatalf("flight recorder missing %q events (have %v)", k, kinds)
				}
			}
		})
	}
}

// TestHealthStragglerWithoutSpeculation pins detection-only mode: the
// straggler is flagged while still in flight but the run waits it out.
func TestHealthStragglerWithoutSpeculation(t *testing.T) {
	drive := sharedfs.NewMem()
	srv := slowOnceService(t, drive, map[string]bool{"f001": true}, 150*time.Millisecond)
	m := fastManager(t, drive, func(o *Options) {
		o.Scheduling = ScheduleDependency
		o.Health = &HealthOptions{StragglerFactor: 3, MinSamples: 4}
	})
	res, err := m.Run(context.Background(), fanoutWorkflow(t, 10, srv.URL))
	if err != nil {
		t.Fatal(err)
	}
	var flagged []string
	for _, s := range res.Health.Stragglers {
		flagged = append(flagged, s.Task)
	}
	if !contains(flagged, "f001") {
		t.Fatalf("stragglers = %v, want f001", flagged)
	}
	if res.Health.SpeculativeRetries != 0 {
		t.Fatalf("speculation ran without SpeculativeRetry: %+v", res.Health)
	}
	// The straggler span attr marks the flagged task for trace tooling.
	if res.TraceID != "" {
		sawAttr := false
		for i := range res.Spans {
			if v, ok := res.Spans[i].AttrString("straggler"); ok && v == "true" {
				sawAttr = true
			}
		}
		if !sawAttr {
			t.Fatal("no span carries the straggler attr")
		}
	}
}

// TestHealthEndpointSpanAttr pins the endpoint/cold-start attrs analyze
// -diff groups by.
func TestHealthEndpointSpanAttr(t *testing.T) {
	drive := sharedfs.NewMem()
	srv, _, _ := stubService(t, drive, time.Millisecond)
	m := fastManager(t, drive, func(o *Options) {
		o.Tracer = obs.NewTracer(obs.Options{SampleRatio: 1})
	})
	res, err := m.Run(context.Background(), fanoutWorkflow(t, 3, srv.URL))
	if err != nil {
		t.Fatal(err)
	}
	saw := 0
	for i := range res.Spans {
		if res.Spans[i].Name != "invoke" {
			continue
		}
		if ep, ok := res.Spans[i].AttrString("endpoint"); !ok || !strings.HasPrefix(ep, srv.URL) {
			t.Fatalf("invoke span endpoint attr = %q", ep)
		}
		saw++
	}
	if saw == 0 {
		t.Fatal("no invoke spans recorded")
	}
}

func contains(ss []string, want string) bool {
	for _, s := range ss {
		if s == want {
			return true
		}
	}
	return false
}
