package wfm

import (
	"context"
	"testing"
	"time"

	"wfserverless/internal/sharedfs"
)

// BenchmarkHealthOverheadDrain measures what the run-health plane
// costs on the drain path: a 10k-wide fan-out executed with dependency
// scheduling against a zero-delay stub, with the plane absent and
// present. Run with -benchmem: the "off" case must match the plain
// manager exactly — with Options.Health nil, every hook is a single
// nil-pointer test (rs.health == nil, nil-receiver Monitor methods),
// so the hot path adds zero allocations per task. The "on" case prices
// the full pipeline: per-attempt tracker bookkeeping, P² quantile
// updates, and the straggler watchdog.
func BenchmarkHealthOverheadDrain(b *testing.B) {
	const width = 10_000
	cases := []struct {
		name   string
		health func() *HealthOptions
	}{
		{"off", func() *HealthOptions { return nil }},
		{"on", func() *HealthOptions { return &HealthOptions{} }},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			drive := sharedfs.NewMem()
			srv := benchStub(b, drive, 0)
			w := fanoutWorkflow(b, width, srv.URL)
			m, err := New(Options{
				Drive:       drive,
				TimeScale:   0.002,
				InputWait:   30,
				MaxParallel: 256,
				Scheduling:  ScheduleDependency,
				Health:      tc.health(),
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			var total time.Duration
			for i := 0; i < b.N; i++ {
				res, err := m.Run(context.Background(), w)
				if err != nil {
					b.Fatal(err)
				}
				total += res.Wall
			}
			b.ReportMetric(float64(total.Milliseconds())/float64(b.N), "wall_ms/run")
			b.ReportMetric(float64(width+2)*float64(b.N)/b.Elapsed().Seconds(), "tasks/s")
		})
	}
}
