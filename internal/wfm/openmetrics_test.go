package wfm

import (
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"wfserverless/internal/cluster"
	"wfserverless/internal/metrics"
	"wfserverless/internal/obs"
	"wfserverless/internal/serverless"
	"wfserverless/internal/sharedfs"
)

// checkExposition validates an exposition body against the rules both
// the classic Prometheus text format and OpenMetrics share: every
// sample's family declares # HELP and # TYPE before its first sample,
// histogram le-buckets are cumulative (monotonically non-decreasing,
// closed by +Inf equal to the family's _count), and sample values
// parse as floats.
func checkExposition(t *testing.T, body string) {
	t.Helper()
	helped := map[string]bool{}
	typed := map[string]bool{}
	type bucketSeries struct {
		les    []float64
		counts []float64
	}
	buckets := map[string]*bucketSeries{} // base family -> le series
	counts := map[string]float64{}        // base family -> _count value

	family := func(name string) string {
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if base, ok := strings.CutSuffix(name, suffix); ok && (typed[base] || helped[base]) {
				return base
			}
		}
		return name
	}
	for ln, line := range strings.Split(body, "\n") {
		if line == "" || line == "# EOF" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 {
				t.Fatalf("line %d: malformed comment %q", ln+1, line)
			}
			switch fields[1] {
			case "HELP":
				helped[fields[2]] = true
			case "TYPE":
				typed[fields[2]] = true
			default:
				t.Fatalf("line %d: unknown comment kind %q", ln+1, line)
			}
			continue
		}
		// Sample: name[{labels}] value
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("line %d: malformed sample %q", ln+1, line)
		}
		val, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("line %d: bad value in %q: %v", ln+1, line, err)
		}
		series := line[:i]
		name := series
		var labels string
		if j := strings.IndexByte(series, '{'); j >= 0 {
			name, labels = series[:j], series[j:]
			if !strings.HasSuffix(labels, "}") {
				t.Fatalf("line %d: unclosed label set %q", ln+1, line)
			}
		}
		base := family(name)
		if !typed[base] || !helped[base] {
			t.Fatalf("line %d: sample %q before # HELP/# TYPE for %s", ln+1, line, base)
		}
		switch {
		case strings.HasSuffix(name, "_bucket"):
			j := strings.Index(labels, `le="`)
			if j < 0 {
				t.Fatalf("line %d: histogram bucket without le label: %q", ln+1, line)
			}
			rest := labels[j+len(`le="`):]
			k := strings.IndexByte(rest, '"')
			le, err := strconv.ParseFloat(rest[:k], 64)
			if err != nil {
				t.Fatalf("line %d: bad le %q: %v", ln+1, rest[:k], err)
			}
			bs := buckets[base]
			if bs == nil {
				bs = &bucketSeries{}
				buckets[base] = bs
			}
			bs.les = append(bs.les, le)
			bs.counts = append(bs.counts, val)
		case strings.HasSuffix(name, "_count") && base != name:
			counts[base] = val
		}
	}
	fams := make([]string, 0, len(buckets))
	for f := range buckets {
		fams = append(fams, f)
	}
	sort.Strings(fams)
	for _, f := range fams {
		bs := buckets[f]
		for i := 1; i < len(bs.counts); i++ {
			if bs.les[i] <= bs.les[i-1] {
				t.Fatalf("%s: le boundaries not increasing at %g", f, bs.les[i])
			}
			if bs.counts[i] < bs.counts[i-1] {
				t.Fatalf("%s: bucket counts not cumulative at le=%g (%g < %g)",
					f, bs.les[i], bs.counts[i], bs.counts[i-1])
			}
		}
		last := bs.counts[len(bs.counts)-1]
		if !isInf(bs.les[len(bs.les)-1]) {
			t.Fatalf("%s: last bucket is not le=+Inf", f)
		}
		if c, ok := counts[f]; ok && c != last {
			t.Fatalf("%s: +Inf bucket %g != _count %g", f, last, c)
		}
	}
}

func isInf(v float64) bool { return v > 1e300 }

// TestExpositionConformance runs every metrics writer in the repo —
// the manager's Monitor, the in-process platform, and the raw
// histogram — through the shared conformance checker.
func TestExpositionConformance(t *testing.T) {
	t.Run("monitor", func(t *testing.T) {
		mo := NewMonitor()
		mo.runStarted("conf", ScheduleDependency, 3)
		mo.taskReady(3)
		mo.taskStarted()
		mo.taskFinished(120*time.Millisecond, false)
		mo.retried()
		mo.memoProbed(1, 2)
		mo.breakerChanged(BreakerClosed, BreakerOpen)
		mo.stragglerFlagged()
		mo.speculated()
		mo.speculationWon()
		var sb strings.Builder
		if err := mo.WriteMetrics(&sb); err != nil {
			t.Fatal(err)
		}
		checkExposition(t, sb.String())
	})
	t.Run("platform", func(t *testing.T) {
		p, err := serverless.New(serverless.Options{
			Cluster: cluster.PaperTestbed(), Drive: sharedfs.NewMem(),
			TimeScale: 0.002, ColdStart: 0.5, AutoscalePeriod: 0.5,
			StableWindow: 10, InputWait: 5,
		})
		if err != nil {
			t.Fatal(err)
		}
		url, err := p.Start()
		if err != nil {
			t.Fatal(err)
		}
		defer p.Stop()
		if err := p.Apply(serverless.ServiceConfig{
			Name: "wfbench", Workers: 2, CPURequestPerWorker: 1, MemRequestPerWorker: 256 << 20,
		}); err != nil {
			t.Fatal(err)
		}
		// Scrape through the platform's real HTTP surface so the
		// negotiated path is the one checked.
		for _, tc := range []struct {
			accept string
			wantCT string
			wantOM bool
		}{
			{"", obs.ContentTypeProm, false},
			{"application/openmetrics-text;version=1.0.0,text/plain;q=0.5", obs.ContentTypeOpenMetrics, true},
		} {
			req, err := http.NewRequest(http.MethodGet, url+"/metrics", nil)
			if err != nil {
				t.Fatal(err)
			}
			if tc.accept != "" {
				req.Header.Set("Accept", tc.accept)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			body, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				t.Fatal(err)
			}
			if got := resp.Header.Get("Content-Type"); got != tc.wantCT {
				t.Fatalf("Accept %q: Content-Type = %q, want %q", tc.accept, got, tc.wantCT)
			}
			if hasEOF := strings.HasSuffix(string(body), "# EOF\n"); hasEOF != tc.wantOM {
				t.Fatalf("Accept %q: EOF terminator = %v, want %v", tc.accept, hasEOF, tc.wantOM)
			}
			checkExposition(t, string(body))
		}
	})
	t.Run("histogram", func(t *testing.T) {
		var h metrics.Histogram
		for _, v := range []float64{0.0001, 0.001, 0.05, 0.9, 12, 500} {
			h.Observe(v)
		}
		var sb strings.Builder
		if err := h.WriteProm(&sb, "conf_seconds", "conformance fixture"); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(sb.String(), `le="+Inf"`) {
			t.Fatalf("histogram missing +Inf bucket:\n%s", sb.String())
		}
		checkExposition(t, sb.String())
	})
}

// TestTelemetryMuxNegotiation pins the shared mux's version
// negotiation: an OpenMetrics Accept header switches the content type
// and appends the mandatory # EOF terminator; everyone else gets the
// classic 0.0.4 format unterminated.
func TestTelemetryMuxNegotiation(t *testing.T) {
	mo := NewMonitor()
	mo.runStarted("neg", SchedulePhases, 1)
	srv := httptest.NewServer(obs.TelemetryMux(mo.WriteMetrics))
	defer srv.Close()

	get := func(accept string) (string, string) {
		req, err := http.NewRequest(http.MethodGet, srv.URL+"/metrics", nil)
		if err != nil {
			t.Fatal(err)
		}
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.Header.Get("Content-Type"), string(body)
	}

	ct, body := get("")
	if ct != obs.ContentTypeProm {
		t.Fatalf("default Content-Type = %q", ct)
	}
	if strings.Contains(body, "# EOF") {
		t.Fatal("classic format must not carry the OpenMetrics terminator")
	}
	ct, body = get("application/openmetrics-text; version=1.0.0; charset=utf-8")
	if ct != obs.ContentTypeOpenMetrics {
		t.Fatalf("OpenMetrics Content-Type = %q", ct)
	}
	if !strings.HasSuffix(body, "# EOF\n") {
		t.Fatalf("OpenMetrics body not terminated:\n...%s", body[max(0, len(body)-80):])
	}
	if strings.Count(body, "# EOF") != 1 {
		t.Fatal("terminator must appear exactly once")
	}
	checkExposition(t, body)
}
