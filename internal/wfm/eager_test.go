package wfm

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"wfserverless/internal/sharedfs"
	"wfserverless/internal/wfbench"
)

func TestRunEagerCompletesAndOrders(t *testing.T) {
	drive := sharedfs.NewMem()
	srv, _, _ := stubService(t, drive, time.Millisecond)
	m := fastManager(t, drive, nil)
	w := translated(t, "epigenomics", 30, srv.URL)
	res, err := m.RunEager(context.Background(), w)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tasks) != w.Len()+2 {
		t.Fatalf("tasks = %d", len(res.Tasks))
	}
	// Dependency order: children start only after parents end.
	for name, tr := range res.Tasks {
		task, ok := w.Tasks[name]
		if !ok {
			continue
		}
		for _, parent := range task.Parents {
			if res.Tasks[parent].End > tr.Start {
				t.Fatalf("%s started before parent %s finished", name, parent)
			}
		}
	}
	// All outputs written.
	for _, name := range w.TaskNames() {
		for _, out := range w.Tasks[name].OutputFiles() {
			if !drive.Exists(out) {
				t.Fatalf("missing output %s", out)
			}
		}
	}
}

func TestRunEagerFasterThanPhased(t *testing.T) {
	// A workflow with uneven phase membership: eager mode lets fast
	// chains run ahead instead of waiting for phase barriers and the
	// inter-phase delay.
	drive := sharedfs.NewMem()
	srv, _, _ := stubService(t, drive, 2*time.Millisecond)
	m := fastManager(t, drive, func(o *Options) { o.PhaseDelay = 5 }) // 10ms per barrier
	w := translated(t, "cycles", 60, srv.URL)

	res, err := m.Run(context.Background(), w)
	if err != nil {
		t.Fatal(err)
	}
	drive2 := sharedfs.NewMem()
	srv2, _, _ := stubService(t, drive2, 2*time.Millisecond)
	m2 := fastManager(t, drive2, func(o *Options) { o.PhaseDelay = 5 })
	w2 := translated(t, "cycles", 60, srv2.URL)
	eager, err := m2.RunEager(context.Background(), w2)
	if err != nil {
		t.Fatal(err)
	}
	if eager.Wall >= res.Wall {
		t.Fatalf("eager %v not faster than phased %v on a multi-phase workflow", eager.Wall, res.Wall)
	}
}

func TestRunEagerFailurePropagatesToDescendants(t *testing.T) {
	drive := sharedfs.NewMem()
	var calls atomic.Int64
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var req wfbench.Request
		json.NewDecoder(r.Body).Decode(&req)
		calls.Add(1)
		if strings.HasPrefix(req.Name, "split_fasta") {
			http.Error(w, "boom", http.StatusBadRequest) // non-retriable
			return
		}
		for name, size := range req.Out {
			drive.WriteFile(name, size)
		}
		json.NewEncoder(w).Encode(&wfbench.Response{Name: req.Name, OK: true})
	})
	srv := httptest.NewServer(h)
	defer srv.Close()
	m := fastManager(t, drive, func(o *Options) { o.ContinueOnError = true })
	w := translated(t, "blast", 8, srv.URL)
	res, err := m.RunEager(context.Background(), w)
	if err == nil {
		t.Fatal("failed root reported success")
	}
	// Root fails; every descendant must be skipped, not invoked.
	if calls.Load() != 1 {
		t.Fatalf("calls = %d, want only the failing root", calls.Load())
	}
	if len(res.Failed) != w.Len() {
		t.Fatalf("failed = %d, want all %d (root + skipped)", len(res.Failed), w.Len())
	}
	for name, tr := range res.Tasks {
		if name == HeaderName || name == TailName || strings.HasPrefix(name, "split_fasta") {
			continue
		}
		if tr.Err == nil || !strings.Contains(tr.Err.Error(), "skipped") {
			t.Fatalf("task %s: err = %v, want skip", name, tr.Err)
		}
	}
}

func TestRunEagerCancel(t *testing.T) {
	drive := sharedfs.NewMem()
	srv, _, _ := stubService(t, drive, 50*time.Millisecond)
	m := fastManager(t, drive, nil)
	w := translated(t, "blast", 20, srv.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := m.RunEager(ctx, w); err == nil {
		t.Fatal("cancelled eager run succeeded")
	}
}

func TestRunEagerRequiresTranslation(t *testing.T) {
	m := fastManager(t, sharedfs.NewMem(), nil)
	w, _ := untranslated(t, "blast", 6)
	if _, err := m.RunEager(context.Background(), w); err == nil {
		t.Fatal("untranslated workflow accepted")
	}
}

func TestRunEagerMaxParallel(t *testing.T) {
	drive := sharedfs.NewMem()
	srv, _, maxActive := stubService(t, drive, 5*time.Millisecond)
	m := fastManager(t, drive, func(o *Options) { o.MaxParallel = 2 })
	w := translated(t, "seismology", 20, srv.URL)
	if _, err := m.RunEager(context.Background(), w); err != nil {
		t.Fatal(err)
	}
	if maxActive.Load() > 2 {
		t.Fatalf("max active = %d, want <= 2", maxActive.Load())
	}
}
