package wfm

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"

	"wfserverless/internal/cluster"
	"wfserverless/internal/journal"
	"wfserverless/internal/serverless"
	"wfserverless/internal/sharedfs"
)

// TestConcurrentManagersSharedPlatform is the embedding mode wfmd
// relies on: several independent Manager instances in one process,
// all dispatching to one in-process serverless platform on one shared
// drive, each with its own monitor, journal, and breaker state. The
// assertions pin the isolation contract:
//
//   - every run completes with exactly its own tasks;
//   - monitor counters are per-run (no bleed between managers);
//   - breaker transitions on one run's misbehaving endpoint never
//     appear in another run's result;
//   - each run's journal records only that run's tasks;
//   - the shared drive holds every run's namespaced outputs.
func TestConcurrentManagersSharedPlatform(t *testing.T) {
	drive := sharedfs.NewMem()
	p, err := serverless.New(serverless.Options{
		Cluster: cluster.PaperTestbed(), Drive: drive,
		TimeScale: 0.002, ColdStart: 0.5, AutoscalePeriod: 0.5,
		StableWindow: 10, InputWait: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	url, err := p.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer p.Stop()
	if err := p.Apply(serverless.ServiceConfig{
		Name: "wfbench", Workers: 8, CPURequestPerWorker: 1,
	}); err != nil {
		t.Fatal(err)
	}
	// One extra manager targets an endpoint that always fails, with a
	// hair-trigger breaker: its transitions must stay in its own run.
	broken := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusServiceUnavailable)
	}))
	defer broken.Close()

	const managers = 4
	const width = 12
	invoke := url + "/wfbench/wfbench"
	type outcome struct {
		res *Result
		mon *Monitor
		err error
	}
	outs := make([]outcome, managers+1)
	jdirs := make([]string, managers+1)
	var wg sync.WaitGroup
	runOne := func(i int, wfURL string, retries int) {
		defer wg.Done()
		w := prefixedFanout(t, fmt.Sprintf("cm%d", i), width, wfURL)
		mon := NewMonitor()
		jdirs[i] = filepath.Join(t.TempDir(), "j")
		j, err := journal.Open(jdirs[i], journal.Options{})
		if err != nil {
			outs[i] = outcome{err: err}
			return
		}
		defer j.Close()
		m, err := New(Options{
			Drive: drive, TimeScale: 0.002, PhaseDelay: 0.5, InputWait: 5,
			Scheduling: ScheduleDependency, MaxParallel: 16,
			Retries: retries, RetryBackoff: 0.05,
			Breaker: BreakerOptions{Enabled: true, Window: 4, MinSamples: 2, Cooldown: 0.2},
			Monitor: mon, Journal: j,
		})
		if err != nil {
			outs[i] = outcome{err: err}
			return
		}
		res, err := m.Run(context.Background(), w)
		outs[i] = outcome{res: res, mon: mon, err: err}
	}
	for i := 0; i < managers; i++ {
		wg.Add(1)
		go runOne(i, invoke, 2)
	}
	wg.Add(1)
	go runOne(managers, broken.URL, 1)
	wg.Wait()

	// The healthy runs: complete, isolated counters, clean breakers.
	for i := 0; i < managers; i++ {
		o := outs[i]
		if o.err != nil {
			t.Fatalf("manager %d: %v", i, o.err)
		}
		if len(o.res.Failed) != 0 {
			t.Fatalf("manager %d failed tasks: %v", i, o.res.Failed)
		}
		snap := o.mon.Snapshot()
		if snap.Done != width+1 || snap.Failed != 0 {
			t.Fatalf("manager %d monitor done=%d failed=%d, want %d/0 — counters bled across runs?",
				i, snap.Done, snap.Failed, width+1)
		}
		if len(o.res.Breakers) != 0 {
			t.Fatalf("manager %d saw breaker transitions %v from another run's endpoint", i, o.res.Breakers)
		}
	}
	// The broken run: fails, and it alone records breaker activity.
	bo := outs[managers]
	if bo.err == nil {
		t.Fatal("run against a dead endpoint succeeded")
	}
	if bo.res == nil || len(bo.res.Breakers) == 0 {
		t.Fatal("dead-endpoint run recorded no breaker transitions")
	}
	if snap := bo.mon.Snapshot(); snap.Failed == 0 {
		t.Fatalf("dead-endpoint monitor shows no failures: %+v", snap)
	}

	// Journals: each holds exactly its run's completions, nobody else's.
	for i := 0; i < managers; i++ {
		sum, err := ReadRunJournal(jdirs[i])
		if err != nil {
			t.Fatal(err)
		}
		if sum.Header == nil || sum.Header.Workflow != fmt.Sprintf("cm%d", i) {
			t.Fatalf("journal %d header %+v", i, sum.Header)
		}
		if sum.CompletedTasks != width+1 || sum.Header.TaskCount != width+1 {
			t.Fatalf("journal %d: %d completed of %d, want %d",
				i, sum.CompletedTasks, sum.Header.TaskCount, width+1)
		}
	}
	// Drive namespaces: every run's outputs are all present.
	for i := 0; i < managers; i++ {
		for _, name := range outputNames(fmt.Sprintf("cm%d", i), width) {
			if !drive.Exists(name) {
				t.Fatalf("run %d output %s missing from shared drive", i, name)
			}
		}
	}
}

func outputNames(prefix string, width int) []string {
	names := []string{"out_" + prefix + "_root"}
	for i := 0; i < width; i++ {
		names = append(names, fmt.Sprintf("out_%s_f%03d", prefix, i))
	}
	return names
}
