package wfm

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"wfserverless/internal/wfformat"
)

// failingServer rejects every invocation with a non-retriable 400.
func failingServer(t testing.TB) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusBadRequest)
	}))
	t.Cleanup(srv.Close)
	return srv
}

// Synthetic workflow shapes for scheduler tests and benchmarks. Each
// task produces one output file consumed by its children, so input
// waits and DAG edges line up exactly.

func synthTask(name, url string, inputs []string) *wfformat.Task {
	out := "out_" + name
	files := []wfformat.File{{Link: wfformat.LinkOutput, Name: out, SizeInBytes: 1}}
	for _, in := range inputs {
		files = append(files, wfformat.File{Link: wfformat.LinkInput, Name: in, SizeInBytes: 1})
	}
	return &wfformat.Task{
		Name: name,
		Type: wfformat.TypeCompute,
		Command: wfformat.Command{
			Program: "wfbench",
			Arguments: []wfformat.Argument{{
				Name:       name,
				PercentCPU: 0.5,
				CPUWork:    1,
				Out:        map[string]int64{out: 1},
				Inputs:     inputs,
			}},
			APIURL: url,
		},
		Files:            files,
		RuntimeInSeconds: 1,
		Cores:            1,
		Category:         "synthetic",
	}
}

func synthLink(t testing.TB, w *wfformat.Workflow, parent, child string) {
	t.Helper()
	if err := w.Link(parent, child); err != nil {
		t.Fatal(err)
	}
}

func synthAdd(t testing.TB, w *wfformat.Workflow, task *wfformat.Task) {
	t.Helper()
	if err := w.AddTask(task); err != nil {
		t.Fatal(err)
	}
}

// chainWorkflow is a deep, narrow DAG: c000 -> c001 -> ... -> c(n-1).
// Every level is its own phase, so phase mode pays (n-1) inter-phase
// delays plus n barriers; the critical path is the whole workflow.
func chainWorkflow(t testing.TB, n int, url string) *wfformat.Workflow {
	w := wfformat.New(fmt.Sprintf("chain-%d", n))
	prev := ""
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("c%03d", i)
		var inputs []string
		if prev != "" {
			inputs = []string{"out_" + prev}
		}
		synthAdd(t, w, synthTask(name, url, inputs))
		if prev != "" {
			synthLink(t, w, prev, name)
		}
		prev = name
	}
	return w
}

// fanoutWorkflow is a wide, shallow DAG: one root feeding width
// children feeding one sink — three phases regardless of width.
func fanoutWorkflow(t testing.TB, width int, url string) *wfformat.Workflow {
	w := wfformat.New(fmt.Sprintf("fanout-%d", width))
	synthAdd(t, w, synthTask("root", url, nil))
	sinkInputs := make([]string, 0, width)
	for i := 0; i < width; i++ {
		name := fmt.Sprintf("f%03d", i)
		synthAdd(t, w, synthTask(name, url, []string{"out_root"}))
		sinkInputs = append(sinkInputs, "out_"+name)
	}
	synthAdd(t, w, synthTask("sink", url, sinkInputs))
	for i := 0; i < width; i++ {
		name := fmt.Sprintf("f%03d", i)
		synthLink(t, w, "root", name)
		synthLink(t, w, name, "sink")
	}
	return w
}

// diamondWorkflow chains depth diamonds: split -> width mids -> join,
// repeated. Mixes barriers (joins) with intra-diamond parallelism.
func diamondWorkflow(t testing.TB, depth, width int, url string) *wfformat.Workflow {
	w := wfformat.New(fmt.Sprintf("diamond-%dx%d", depth, width))
	prev := "s000"
	synthAdd(t, w, synthTask(prev, url, nil))
	for d := 0; d < depth; d++ {
		joinInputs := make([]string, 0, width)
		mids := make([]string, 0, width)
		for i := 0; i < width; i++ {
			name := fmt.Sprintf("m%03d_%02d", d, i)
			synthAdd(t, w, synthTask(name, url, []string{"out_" + prev}))
			mids = append(mids, name)
			joinInputs = append(joinInputs, "out_"+name)
		}
		join := fmt.Sprintf("j%03d", d)
		synthAdd(t, w, synthTask(join, url, joinInputs))
		for _, mid := range mids {
			synthLink(t, w, prev, mid)
			synthLink(t, w, mid, join)
		}
		prev = join
	}
	return w
}
