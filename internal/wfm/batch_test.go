package wfm

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"wfserverless/internal/obs"
	"wfserverless/internal/sharedfs"
	"wfserverless/internal/wfbench"
	"wfserverless/internal/wfformat"
)

// batchServer is a WfBench stub speaking both the single-task and the
// framed batch surface, instrumented to count how each invocation
// arrived and to let tests rewrite individual sub-response frames.
type batchServer struct {
	drive sharedfs.Drive
	srv   *httptest.Server

	mu          sync.Mutex
	batchPosts  int
	singlePosts int
	batchSizes  []int
	attempts    map[string]int
	// frameHook, when set, may replace one sub-task's response frame
	// (return ok=true). attempt is 1-based per task name.
	frameHook func(req *wfbench.Request, attempt int) (wfbench.BatchResult, bool)
}

func newBatchServer(t testing.TB, drive sharedfs.Drive) *batchServer {
	t.Helper()
	bs := &batchServer{drive: drive, attempts: make(map[string]int)}
	bs.srv = httptest.NewServer(http.HandlerFunc(bs.serve))
	t.Cleanup(bs.srv.Close)
	return bs
}

func (bs *batchServer) url() string { return bs.srv.URL + "/wfbench" }

func (bs *batchServer) execute(req *wfbench.Request) wfbench.BatchResult {
	bs.mu.Lock()
	bs.attempts[req.Name]++
	attempt := bs.attempts[req.Name]
	hook := bs.frameHook
	bs.mu.Unlock()
	if hook != nil {
		if res, ok := hook(req, attempt); ok {
			return res
		}
	}
	for name, size := range req.Out {
		bs.drive.WriteFile(name, size)
	}
	payload, _ := json.Marshal(&wfbench.Response{Name: req.Name, OK: true})
	return wfbench.BatchResult{Status: http.StatusOK, Payload: payload}
}

func (bs *batchServer) serve(w http.ResponseWriter, r *http.Request) {
	if strings.HasSuffix(r.URL.Path, "/invoke-batch") {
		items, err := wfbench.DecodeBatchRequest(r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		bs.mu.Lock()
		bs.batchPosts++
		bs.batchSizes = append(bs.batchSizes, len(items))
		bs.mu.Unlock()
		results := make([]wfbench.BatchResult, len(items))
		for i, it := range items {
			var req wfbench.Request
			if err := json.Unmarshal(it.Body, &req); err != nil {
				results[i] = wfbench.BatchResult{Status: http.StatusBadRequest, Payload: []byte(err.Error())}
				continue
			}
			results[i] = bs.execute(&req)
		}
		wfbench.WriteBatchResponse(w, results)
		return
	}
	bs.mu.Lock()
	bs.singlePosts++
	bs.mu.Unlock()
	var req wfbench.Request
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	res := bs.execute(&req)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(res.Status)
	w.Write(res.Payload)
}

func (bs *batchServer) counts() (batch, single int, sizes []int) {
	bs.mu.Lock()
	defer bs.mu.Unlock()
	return bs.batchPosts, bs.singlePosts, append([]int(nil), bs.batchSizes...)
}

// flatWorkflow is one phase of n independent tasks — the pure fan-out
// shape batching coalesces hardest.
func flatWorkflow(t testing.TB, n int, url string) *wfformat.Workflow {
	w := wfformat.New(fmt.Sprintf("flat-%d", n))
	for i := 0; i < n; i++ {
		synthAdd(t, w, synthTask(fmt.Sprintf("t%03d", i), url, nil))
	}
	return w
}

// TestBatchFramesRoundTrip pins the zero-copy framing: the segment list
// batchFrames renders (headers in a fresh arena, payloads aliasing the
// plan's body arena) streams back into exactly the frames
// DecodeBatchRequest recovers — including a task with no inputs and no
// traceparent, and a single-task batch.
func TestBatchFramesRoundTrip(t *testing.T) {
	tasks := []*wfformat.Task{
		synthTask("alpha", "http://endpoint/wfbench", nil), // no inputs: minimal argument block
		synthTask("beta", "http://endpoint/wfbench", []string{"out_alpha"}),
		synthTask("gamma", "http://endpoint/wfbench", []string{"out_alpha", "out_beta"}),
	}
	p, err := newInvocationPlan(tasks)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		ids  []int32
		tps  []string
	}{
		{"single-task batch", []int32{1}, []string{""}},
		{"full batch with traceparents", []int32{0, 1, 2}, []string{"", "00-abc-def-01", ""}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			segs, total := p.batchFrames(tc.ids, tc.tps)
			raw, err := io.ReadAll(&segmentReader{segs: segs})
			if err != nil {
				t.Fatal(err)
			}
			if int64(len(raw)) != total {
				t.Fatalf("segment total = %d, stream is %d bytes", total, len(raw))
			}
			items, err := wfbench.DecodeBatchRequest(strings.NewReader(string(raw)))
			if err != nil {
				t.Fatal(err)
			}
			if len(items) != len(tc.ids) {
				t.Fatalf("decoded %d frames, want %d", len(items), len(tc.ids))
			}
			for i, id := range tc.ids {
				if items[i].Traceparent != tc.tps[i] {
					t.Fatalf("frame %d traceparent = %q, want %q", i, items[i].Traceparent, tc.tps[i])
				}
				if string(items[i].Body) != string(p.body(id)) {
					t.Fatalf("frame %d body diverges from arena slice", i)
				}
			}
			// The payload segments must alias the arena, not copy it.
			for i, id := range tc.ids {
				seg := segs[2*i+1]
				body := p.body(id)
				if len(seg) > 0 && len(body) > 0 && &seg[0] != &body[0] {
					t.Fatalf("frame %d payload segment copied out of the arena", i)
				}
			}
		})
	}
}

// TestBatcherByteBoundSplit pins MaxBytes sealing: submissions that
// would push a pending batch past the byte bound seal it as-is and
// start a fresh one, so no batch on the wire exceeds the bound.
func TestBatcherByteBoundSplit(t *testing.T) {
	drive := sharedfs.NewMem()
	bs := newBatchServer(t, drive)
	tasks := make([]*wfformat.Task, 4)
	for i := range tasks {
		tasks[i] = synthTask(fmt.Sprintf("t%d", i), bs.url(), nil)
	}
	p, err := newInvocationPlan(tasks)
	if err != nil {
		t.Fatal(err)
	}
	bodyLen := len(p.body(0))
	m, err := New(Options{
		Drive: drive,
		Batching: BatchOptions{
			Enabled:  true,
			MaxTasks: 100,
			MaxBytes: 2 * bodyLen, // third member would overflow
			Linger:   0.02,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	b := m.newBatcher(context.Background(), p)
	defer b.close()
	var wg sync.WaitGroup
	errs := make([]error, len(tasks))
	for i := range tasks {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, _, _, err := b.invokeOnce(context.Background(), int32(i), obs.SpanContext{})
			if err == nil && !resp.OK {
				err = fmt.Errorf("response not OK")
			}
			errs[i] = err
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("task %d: %v", i, err)
		}
	}
	_, single, sizes := bs.counts()
	if single != 0 {
		t.Fatalf("%d single-task POSTs leaked past the batcher", single)
	}
	total := 0
	for _, n := range sizes {
		if n > 2 {
			t.Fatalf("batch of %d tasks exceeds the 2-task byte bound (sizes %v)", n, sizes)
		}
		total += n
	}
	if total != len(tasks) {
		t.Fatalf("batches carried %d tasks, want %d (sizes %v)", total, len(tasks), sizes)
	}
}

// TestBatchedRunEquivalence runs the same fan-out in both scheduling
// modes with batching on: every task completes, every invocation rides
// the batch surface, and coalescing actually happens (fewer POSTs than
// tasks).
func TestBatchedRunEquivalence(t *testing.T) {
	for _, mode := range []Scheduling{SchedulePhases, ScheduleDependency} {
		t.Run(mode.String(), func(t *testing.T) {
			drive := sharedfs.NewMem()
			bs := newBatchServer(t, drive)
			m, err := New(Options{
				Drive:       drive,
				TimeScale:   0.002,
				PhaseDelay:  1,
				InputWait:   5,
				MaxParallel: 64,
				Scheduling:  mode,
				Batching:    BatchOptions{Enabled: true, MaxTasks: 8, Linger: 0.5},
			})
			if err != nil {
				t.Fatal(err)
			}
			res, err := m.Run(context.Background(), fanoutWorkflow(t, 32, bs.url()))
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Failed) != 0 {
				t.Fatalf("failed tasks: %v", res.Failed)
			}
			batch, single, sizes := bs.counts()
			if single != 0 {
				t.Fatalf("%d invocations bypassed the batch surface", single)
			}
			if batch >= 34 {
				t.Fatalf("%d batch POSTs for 34 tasks: no coalescing (sizes %v)", batch, sizes)
			}
		})
	}
}

// TestBatchingDisabledUsesSingleSurface pins the acceptance criterion
// that the zero value changes nothing on the wire: without
// Options.Batching the manager never touches /invoke-batch.
func TestBatchingDisabledUsesSingleSurface(t *testing.T) {
	drive := sharedfs.NewMem()
	bs := newBatchServer(t, drive)
	m, err := New(Options{Drive: drive, TimeScale: 0.002, InputWait: 5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(context.Background(), flatWorkflow(t, 8, bs.url())); err != nil {
		t.Fatal(err)
	}
	batch, single, _ := bs.counts()
	if batch != 0 {
		t.Fatalf("batching disabled but %d batch POSTs were made", batch)
	}
	if single != 8 {
		t.Fatalf("%d single POSTs, want 8", single)
	}
}

// TestBatchMalformedFrameIsolated pins per-frame fault isolation: one
// sub-response whose payload is garbage fails only its own task
// (non-retriable decode error), while its batch-mates complete.
func TestBatchMalformedFrameIsolated(t *testing.T) {
	drive := sharedfs.NewMem()
	bs := newBatchServer(t, drive)
	bs.frameHook = func(req *wfbench.Request, attempt int) (wfbench.BatchResult, bool) {
		if req.Name == "t003" {
			return wfbench.BatchResult{Status: http.StatusOK, Payload: []byte("{not json")}, true
		}
		return wfbench.BatchResult{}, false
	}
	m, err := New(Options{
		Drive:       drive,
		TimeScale:   0.002,
		InputWait:   5,
		MaxParallel: 16,
		Retries:     2, // decode garbage must NOT be retried
		Batching:    BatchOptions{Enabled: true, MaxTasks: 8, Linger: 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run(context.Background(), flatWorkflow(t, 8, bs.url()))
	if err == nil {
		t.Fatal("run with a poisoned frame reported success")
	}
	if len(res.Failed) != 1 || res.Failed[0] != "t003" {
		t.Fatalf("failed = %v, want exactly [t003]", res.Failed)
	}
	tr := res.Tasks["t003"]
	if tr.Err == nil || !strings.Contains(tr.Err.Error(), "decode") {
		t.Fatalf("t003 error = %v, want a decode error", tr.Err)
	}
	if tr.Attempts != 1 {
		t.Fatalf("t003 attempts = %d; a malformed payload is not retriable", tr.Attempts)
	}
	for i := 0; i < 8; i++ {
		name := fmt.Sprintf("t%03d", i)
		if name == "t003" {
			continue
		}
		if got := res.Tasks[name]; got.Err != nil {
			t.Fatalf("batch-mate %s poisoned: %v", name, got.Err)
		}
	}
}

// TestBatchSubTaskRetryIsolated pins retry isolation: a 500 frame
// inside a batch retries only that sub-task (in a later batch), its
// batch-mates are invoked exactly once.
func TestBatchSubTaskRetryIsolated(t *testing.T) {
	drive := sharedfs.NewMem()
	bs := newBatchServer(t, drive)
	bs.frameHook = func(req *wfbench.Request, attempt int) (wfbench.BatchResult, bool) {
		if req.Name == "t005" && attempt == 1 {
			return wfbench.BatchResult{Status: http.StatusInternalServerError, Payload: []byte("flaky")}, true
		}
		return wfbench.BatchResult{}, false
	}
	m, err := New(Options{
		Drive:       drive,
		TimeScale:   0.002,
		InputWait:   5,
		MaxParallel: 16,
		Retries:     3,
		Batching:    BatchOptions{Enabled: true, MaxTasks: 8, Linger: 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run(context.Background(), flatWorkflow(t, 8, bs.url()))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Failed) != 0 {
		t.Fatalf("failed: %v", res.Failed)
	}
	if got := res.Tasks["t005"].Attempts; got != 2 {
		t.Fatalf("t005 attempts = %d, want 2", got)
	}
	bs.mu.Lock()
	defer bs.mu.Unlock()
	for i := 0; i < 8; i++ {
		name := fmt.Sprintf("t%03d", i)
		want := 1
		if name == "t005" {
			want = 2
		}
		if bs.attempts[name] != want {
			t.Fatalf("%s executed %d times, want %d", name, bs.attempts[name], want)
		}
	}
}

// TestBatch429FrameCarriesRetryAfter pins that a rejected frame's
// Retry-After hint survives the batch framing into the retry schedule's
// input, exactly like the header on a single-task 429.
func TestBatch429FrameCarriesRetryAfter(t *testing.T) {
	drive := sharedfs.NewMem()
	bs := newBatchServer(t, drive)
	bs.frameHook = func(req *wfbench.Request, attempt int) (wfbench.BatchResult, bool) {
		if attempt == 1 {
			return wfbench.BatchResult{
				Status:           http.StatusTooManyRequests,
				RetryAfterMillis: 1,
				Payload:          []byte("overloaded"),
			}, true
		}
		return wfbench.BatchResult{}, false
	}
	m, err := New(Options{
		Drive:     drive,
		TimeScale: 0.002,
		InputWait: 5,
		Retries:   2,
		Batching:  BatchOptions{Enabled: true, MaxTasks: 4, Linger: 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run(context.Background(), flatWorkflow(t, 4, bs.url()))
	if err != nil {
		t.Fatal(err)
	}
	for name, tr := range res.Tasks {
		if name == HeaderName || name == TailName {
			continue
		}
		if tr.Attempts != 2 {
			t.Fatalf("%s attempts = %d, want 2 (429 then success)", name, tr.Attempts)
		}
	}
}

// TestBatchURL pins the endpoint derivation for every translated URL
// shape: the Knative ingress path, the local-container base, and a bare
// host (the scale stub).
func TestBatchURL(t *testing.T) {
	for _, tc := range []struct{ in, want string }{
		{"http://ingress:8080/wfbench/wfbench", "http://ingress:8080/wfbench/invoke-batch"},
		{"http://127.0.0.1:9090/wfbench", "http://127.0.0.1:9090/invoke-batch"},
		{"http://127.0.0.1:9090", "http://127.0.0.1:9090/invoke-batch"},
		{"http://127.0.0.1:9090/", "http://127.0.0.1:9090/invoke-batch"},
	} {
		p, err := newInvocationPlan([]*wfformat.Task{synthTask("x", tc.in, nil)})
		if err != nil {
			t.Fatal(err)
		}
		if got := batchURL(p.reqs[0].URL).String(); got != tc.want {
			t.Errorf("batchURL(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

// TestBatchOptionsValidate covers the option guards.
func TestBatchOptionsValidate(t *testing.T) {
	drive := sharedfs.NewMem()
	if _, err := New(Options{Drive: drive, Batching: BatchOptions{Enabled: true, MaxTasks: -1}}); err == nil {
		t.Fatal("negative MaxTasks accepted")
	}
	if _, err := New(Options{Drive: drive, Batching: BatchOptions{Enabled: true, Linger: -1}}); err == nil {
		t.Fatal("negative Linger accepted")
	}
	// Disabled options are never validated — the zero value must work.
	if _, err := New(Options{Drive: drive, Batching: BatchOptions{MaxTasks: -1}}); err != nil {
		t.Fatalf("disabled batching rejected: %v", err)
	}
	o := BatchOptions{Enabled: true}
	d := o.withDefaults()
	if d.MaxTasks != 64 || d.MaxBytes != 1<<20 || d.Linger != 0.005 {
		t.Fatalf("defaults = %+v", d)
	}
}

// TestBatcherTaskTimeoutAbandonsWaitOnly pins that one sub-task's
// deadline expiring abandons only its own wait: the batch POST rides
// the run context, so batch-mates still get their frames.
func TestBatcherTaskTimeoutAbandonsWaitOnly(t *testing.T) {
	drive := sharedfs.NewMem()
	bs := newBatchServer(t, drive)
	tasks := []*wfformat.Task{
		synthTask("fast", bs.url(), nil),
		synthTask("doomed", bs.url(), nil),
	}
	p, err := newInvocationPlan(tasks)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(Options{
		Drive:    drive,
		Batching: BatchOptions{Enabled: true, MaxTasks: 2, Linger: 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	b := m.newBatcher(context.Background(), p)
	defer b.close()

	expired, cancel := context.WithCancel(context.Background())
	cancel() // the doomed task's attempt context is already dead
	var wg sync.WaitGroup
	var fastErr, doomedErr error
	wg.Add(2)
	go func() {
		defer wg.Done()
		_, _, _, doomedErr = b.invokeOnce(expired, 1, obs.SpanContext{})
	}()
	go func() {
		defer wg.Done()
		// Give the doomed submission a moment to enroll first so both
		// land in one batch (MaxTasks 2 seals on the second).
		time.Sleep(10 * time.Millisecond)
		resp, _, _, err := b.invokeOnce(context.Background(), 0, obs.SpanContext{})
		if err == nil && !resp.OK {
			err = fmt.Errorf("response not OK")
		}
		fastErr = err
	}()
	wg.Wait()
	if doomedErr == nil {
		t.Fatal("expired attempt context returned no error")
	}
	if fastErr != nil {
		t.Fatalf("batch-mate dragged down by an abandoned wait: %v", fastErr)
	}
}
