package wfm

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"wfserverless/internal/health"
	"wfserverless/internal/obs"
	"wfserverless/internal/wfbench"
	"wfserverless/internal/wfformat"
)

// HealthOptions enables the run-health plane: streaming per-endpoint
// latency baselines (constant-memory P² quantiles), live straggler
// detection against each endpoint's running median, optional
// speculative re-dispatch of flagged tasks, and a crash flight
// recorder. Nil disables everything and keeps the dispatch hot path
// allocation-identical to previous releases.
type HealthOptions struct {
	// StragglerFactor is k in the flagging criterion: an in-flight
	// attempt is a straggler once its age exceeds k × the endpoint's
	// running median attempt latency. Zero defaults to 3.
	StragglerFactor float64
	// MinSamples is how many completed attempts an endpoint needs
	// before its median is trusted for flagging. Zero defaults to 8.
	MinSamples int
	// MinAge is an absolute floor, in nominal seconds (scaled like
	// every other duration), on an attempt's age before it can be
	// flagged — so microsecond medians cannot flag scheduling jitter.
	MinAge float64
	// CheckInterval is the watchdog scan period in nominal seconds;
	// zero defaults to 25ms of wall time.
	CheckInterval float64
	// SpeculativeRetry re-dispatches a flagged task's attempt once and
	// takes whichever completion arrives first; the loser's request is
	// cancelled. The task is journaled and memoized exactly once either
	// way — speculation races HTTP attempts, not task completions.
	SpeculativeRetry bool
	// Recorder, when set, receives the run's structured event stream
	// (task transitions, retries, throttles, breaker flips, straggler
	// flags) in a fixed-size ring for post-mortem JSONL dumps.
	Recorder *health.FlightRecorder
	// OnTracker, when set, is called once per run with the run's
	// tracker, so a telemetry endpoint can include the per-endpoint
	// baseline series while the run is live.
	OnTracker func(*health.Tracker)
}

func (h *HealthOptions) validate() error {
	if h == nil {
		return nil
	}
	if h.StragglerFactor < 0 || h.MinSamples < 0 || h.MinAge < 0 || h.CheckInterval < 0 {
		return errors.New("wfm: negative Health StragglerFactor/MinSamples/MinAge/CheckInterval")
	}
	return nil
}

// HealthReport is the run-health summary attached to Result.Health when
// Options.Health is set.
type HealthReport struct {
	// Endpoints is the final per-endpoint baseline table, sorted by
	// endpoint name.
	Endpoints []health.EndpointStats
	// Stragglers lists every flagged attempt in flag order.
	Stragglers []health.Straggler
	// SpeculativeRetries counts backup attempts dispatched;
	// SpeculativeWins the flagged tasks whose backup finished first.
	SpeculativeRetries int64
	SpeculativeWins    int64
}

// healthState is the run-scoped health plane: the tracker, the flight
// recorder, and the straggler log. All methods are safe on a nil
// receiver — a run without Options.Health carries a nil healthState and
// pays one pointer test per hook.
type healthState struct {
	m         *Manager
	tracker   *health.Tracker
	rec       *health.FlightRecorder
	speculate bool

	mu         sync.Mutex
	stragglers []health.Straggler
}

// newHealthState builds the run's health plane from Options.Health and
// starts the straggler watchdog.
func (m *Manager) newHealthState() *healthState {
	ho := m.opts.Health
	hs := &healthState{m: m, rec: ho.Recorder, speculate: ho.SpeculativeRetry}
	hs.tracker = health.NewTracker(health.TrackerConfig{
		StragglerFactor: ho.StragglerFactor,
		MinSamples:      ho.MinSamples,
		MinAge:          m.scaled(ho.MinAge),
		CheckInterval:   m.scaled(ho.CheckInterval),
		OnStraggler: func(s health.Straggler) {
			hs.mu.Lock()
			hs.stragglers = append(hs.stragglers, s)
			hs.mu.Unlock()
			m.opts.Monitor.stragglerFlagged()
			hs.rec.Record("straggler", s.Task, s.Endpoint, 0,
				fmt.Sprintf("age %s vs median %s", s.Age, s.Median))
			if l := m.opts.Logger; l != nil {
				l.Warn("straggler detected", "task", s.Task, "endpoint", s.Endpoint,
					"age", s.Age, "median", s.Median)
			}
		},
		OnResolved: func(s health.Straggler, lat time.Duration) {
			m.opts.Monitor.stragglerResolved()
			if l := m.opts.Logger; l != nil {
				l.Info("straggler resolved", "task", s.Task, "endpoint", s.Endpoint,
					"latency", lat)
			}
		},
	})
	if ho.OnTracker != nil {
		ho.OnTracker(hs.tracker)
	}
	return hs
}

func (hs *healthState) close() {
	if hs != nil {
		hs.tracker.Close()
	}
}

// event forwards one structured event to the flight recorder.
func (hs *healthState) event(kind, task, endpoint string, attempt int, detail string) {
	if hs != nil {
		hs.rec.Record(kind, task, endpoint, attempt, detail)
	}
}

// taskStarted records a task's dispatch in the flight recorder.
func (hs *healthState) taskStarted(task *wfformat.Task) {
	if hs != nil {
		hs.rec.Record("task-start", task.Name, task.Command.APIURL, 0, "")
	}
}

// taskFinished records a task's terminal outcome in the flight recorder.
func (hs *healthState) taskFinished(task *wfformat.Task, tr *TaskResult) {
	if hs == nil {
		return
	}
	if tr.Err != nil {
		hs.rec.Record("task-fail", task.Name, task.Command.APIURL, tr.Attempts, tr.Err.Error())
		return
	}
	hs.rec.Record("task-done", task.Name, task.Command.APIURL, tr.Attempts, "")
}

// recordBatch feeds one flushed batch's occupancy into the baseline
// table.
func (hs *healthState) recordBatch(endpoint string, tasks int) {
	if hs != nil {
		hs.tracker.RecordBatch(endpoint, tasks)
	}
}

// report snapshots the run's health plane for Result.Health.
func (hs *healthState) report() *HealthReport {
	if hs == nil {
		return nil
	}
	launched, wins := hs.tracker.Speculations()
	hs.mu.Lock()
	str := append([]health.Straggler(nil), hs.stragglers...)
	hs.mu.Unlock()
	return &HealthReport{
		Endpoints:          hs.tracker.Snapshot(),
		Stragglers:         str,
		SpeculativeRetries: launched,
		SpeculativeWins:    wins,
	}
}

// specOutcome is one branch's result in the speculation race, shaped
// like invokeOnce's return plus which branch produced it.
type specOutcome struct {
	resp       *wfbench.Response
	retriable  bool
	retryAfter time.Duration
	err        error
	backup     bool
}

// attempt is invoke's attempt body under the health plane: the attempt
// registers with the tracker, and the manager selects on the watchdog's
// flag channel next to the attempt's own completion. A flagged attempt
// is annotated on its spans; with SpeculativeRetry one backup attempt
// races the primary and the first success wins, the loser's request
// cancelled. The caller journals/memoizes the task exactly once when
// invoke returns, so speculation can never double-record a completion.
func (hs *healthState) attempt(tctx context.Context, p *invocationPlan, id int32, rs *resilience, attempt int, as, parent *obs.Span) (*wfbench.Response, bool, time.Duration, error) {
	m := hs.m
	task := p.tasks[id]
	ep := task.Command.APIURL
	fl := hs.tracker.StartAttempt(task.Name, ep, attempt)

	// Buffered for both branches so an abandoned loser never leaks its
	// goroutine.
	ch := make(chan specOutcome, 2)
	launch := func(ctx context.Context, backup bool) {
		var o specOutcome
		o.backup = backup
		if rs.batch != nil {
			o.resp, o.retriable, o.retryAfter, o.err = rs.batch.invokeOnce(ctx, id, as.Context())
		} else {
			o.resp, o.retriable, o.retryAfter, o.err = m.invokeOnce(ctx, p, id, as.Context())
		}
		ch <- o
	}
	primCtx, primCancel := context.WithCancel(tctx)
	defer primCancel()
	go launch(primCtx, false)

	finish := func(o specOutcome) (*wfbench.Response, bool, time.Duration, error) {
		fl.Done(o.err != nil, o.resp != nil && o.resp.ColdStart)
		return o.resp, o.retriable, o.retryAfter, o.err
	}

	select {
	case o := <-ch:
		return finish(o)
	case <-fl.Flagged():
	}

	// Flagged mid-flight.
	as.SetAttr("straggler", "true")
	parent.SetAttr("straggler", "true")
	if !hs.speculate {
		return finish(<-ch)
	}
	hs.tracker.SpeculationLaunched()
	m.opts.Monitor.speculated()
	hs.event("speculate", task.Name, ep, attempt+1, "")
	backCtx, backCancel := context.WithCancel(tctx)
	defer backCancel()
	go launch(backCtx, true)

	won := func(o specOutcome) (*wfbench.Response, bool, time.Duration, error) {
		if o.backup {
			fl.SpeculativeWin()
			m.opts.Monitor.speculationWon()
			hs.event("speculate-win", task.Name, ep, attempt+1, "")
		}
		return finish(o)
	}
	first := <-ch
	if first.err == nil {
		return won(first)
	}
	// The first finisher failed (possibly because the race's loser saw
	// its context cancelled — not in this path, the winner is still
	// running): give the other branch its chance.
	second := <-ch
	if second.err == nil {
		return won(second)
	}
	// Both failed: report the primary's outcome so retry classification
	// matches the unspeculated path.
	if first.backup {
		first = second
	}
	return finish(first)
}
