// Package wfm implements the paper's core contribution: a prototype
// workflow management system for serverless (Section III-C). The manager
// reads a workflow description in the WfCommons-derived JSON format —
// each function annotated by the translator with the HTTP endpoint that
// executes it — translates it into a DAG, and executes the DAG phase by
// phase: all functions of a phase are collected and invoked
// simultaneously by sending HTTP POST requests to their respective
// api_url addresses. Before invoking each function the manager checks
// that its input files are available on the shared drive, and a brief
// delay between phases gives preceding functions time to publish their
// outputs, exactly as described in the paper. A header (starting
// function) and tail (finishing function) frame every execution.
//
// The manager is platform-agnostic: it works against "any serverless
// platform that handles invocations through HTTP requests" — here the
// in-process Knative-like platform, the local-container baseline, or a
// real endpoint.
//
// Two scheduling modes are provided (Options.Scheduling). SchedulePhases
// is the paper's model described above and stays the default. With
// ScheduleDependency the manager abandons phase barriers: a dag.Scheduler
// tracks the ready frontier incrementally, a worker pool dispatches each
// function the instant its parents complete and its inputs are on the
// drive (woken by sharedfs change notification rather than polling), and
// no inter-phase delay is inserted. The dependency guarantees and the
// Result shape are identical; the dead time — straggler barriers plus
// one fixed delay per DAG level — is gone.
package wfm

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"wfserverless/internal/dag"
	"wfserverless/internal/journal"
	"wfserverless/internal/memo"
	"wfserverless/internal/obs"
	"wfserverless/internal/sharedfs"
	"wfserverless/internal/wfbench"
	"wfserverless/internal/wfformat"
)

// HeaderName and TailName are the synthetic framing functions the
// manager adds around every workflow.
const (
	HeaderName = "__workflow_header"
	TailName   = "__workflow_tail"
)

// Scheduling selects how the manager orders invocations.
type Scheduling int

const (
	// SchedulePhases is the paper's execution model: all functions of a
	// topological level are invoked simultaneously, the manager waits
	// for the whole level to drain, and a brief fixed delay separates
	// consecutive levels. Every phase is as slow as its slowest
	// straggler; kept as the default for paper fidelity.
	SchedulePhases Scheduling = iota
	// ScheduleDependency is the event-driven model: each function is
	// dispatched the moment all of its DAG parents have completed and
	// its input files are on the shared drive — no phase barriers and
	// no inter-phase delay. Identical task sets and dependency
	// guarantees, strictly less dead time.
	ScheduleDependency
)

// String names the mode for flags and reports.
func (s Scheduling) String() string {
	switch s {
	case SchedulePhases:
		return "phases"
	case ScheduleDependency:
		return "dependency"
	}
	return fmt.Sprintf("Scheduling(%d)", int(s))
}

// ParseScheduling maps a flag value onto a Scheduling mode.
func ParseScheduling(s string) (Scheduling, error) {
	switch s {
	case "phases", "phase", "":
		return SchedulePhases, nil
	case "dependency", "dep", "eager":
		return ScheduleDependency, nil
	}
	return 0, fmt.Errorf("wfm: unknown scheduling mode %q (want phases or dependency)", s)
}

// Options configures a Manager.
type Options struct {
	// Drive is the shared drive used for input checks and for staging
	// the workflow's external inputs; required.
	Drive sharedfs.Drive
	// Client issues the HTTP invocations; nil uses a dedicated client
	// with a large connection pool (a phase can hold hundreds of
	// simultaneous requests).
	Client *http.Client
	// TimeScale converts the nominal paper-second durations below into
	// wall time; zero defaults to 1.
	TimeScale float64
	// PhaseDelay is the paper's inter-phase delay in nominal seconds
	// ("a brief delay of one second is introduced between each
	// workflow phase"); zero defaults to 1.
	PhaseDelay float64
	// InputWait bounds the per-phase wait for input files on the
	// shared drive, nominal seconds; zero defaults to 30.
	InputWait float64
	// MaxParallel caps simultaneous HTTP requests; zero means
	// unlimited (the paper's behaviour).
	MaxParallel int
	// ContinueOnError keeps executing later phases after a function
	// fails; by default a failed phase aborts the run.
	ContinueOnError bool
	// Retries re-issues failed invocations up to this many extra
	// times (transport errors, 5xx, and 429 responses only) — basic
	// fault-tolerance for flaky endpoints.
	Retries int
	// RetryBackoff is the base delay before the first retry, nominal
	// seconds. Subsequent retries back off exponentially with full
	// jitter — each delay is uniform in [0, min(RetryBackoffMax,
	// RetryBackoff·2^attempt)] — so a burst of failures does not
	// re-stampede the endpoint in lockstep. A Retry-After carried by a
	// 429/503 response overrides the schedule for that retry. Zero
	// keeps retries immediate.
	RetryBackoff float64
	// RetryBackoffMax caps any single retry delay, nominal seconds;
	// zero defaults to 30.
	RetryBackoffMax float64
	// TaskTimeout bounds one task's entire invocation — every attempt
	// plus the backoff sleeps between them — in nominal seconds, so a
	// stalled pod cannot wedge a worker indefinitely. Zero disables.
	// Expiry is terminal for the task (ErrTaskTimeout): its time
	// budget is spent, so no further retries are attempted.
	TaskTimeout float64
	// Breaker enables a per-endpoint circuit breaker over invocations:
	// when an endpoint's recent failure rate crosses the threshold the
	// breaker opens and sheds attempts immediately (ErrCircuitOpen)
	// instead of burning Retries × tasks attempts against a dead
	// service, then probes it half-open after a cooldown. Transitions
	// are surfaced in Result.Breakers and the trace.
	Breaker BreakerOptions
	// Batching coalesces ready invocations bound for the same endpoint
	// into framed /invoke-batch POSTs instead of one HTTP request per
	// task (see BatchOptions). Per-task retry, timeout, breaker,
	// journal, and tracing semantics are unchanged; disabled (the zero
	// value) the wire format is byte-identical to unbatched releases.
	Batching BatchOptions
	// SkipStageInputs disables writing the workflow's external input
	// files to the drive before execution. Staging is on by default
	// (the zero value), matching the paper's header function; callers
	// that pre-populate the drive themselves set this to true.
	SkipStageInputs bool
	// Scheduling selects the execution model; the zero value is
	// SchedulePhases, the paper's phase-barrier loop.
	Scheduling Scheduling
	// Tracer records distributed-trace spans for the run: a root span
	// per workflow, a span per task (backdated to when the task became
	// ready, annotated with queueing latency and attempts), and a span
	// per invocation attempt whose context is injected as a W3C
	// traceparent header on the HTTP POST. Nil disables tracing; an
	// unsampled or disabled run executes the identical hot path.
	Tracer *obs.Tracer
	// Monitor receives live progress counters (tasks ready, running,
	// done, failed; retries; open breakers) and the invocation-latency
	// histogram, for the -telemetry-addr /metrics endpoint. Nil
	// disables monitoring.
	Monitor *Monitor
	// Logger receives structured run-lifecycle events (run start/end,
	// phase dispatch, task failures, breaker transitions). Nil disables
	// logging.
	Logger *slog.Logger
	// Journal, when set, makes the run durable: lifecycle events (run
	// header with workflow fingerprint, task started/completed/failed,
	// run end) are appended to the write-ahead log so a crashed run can
	// be continued with Resume. Run requires the journal to be empty (a
	// fresh directory); Resume requires it to hold a matching run. Nil
	// disables journaling; the hot path is identical.
	Journal *journal.Journal
	// Memoize, when set, enables content-addressed incremental
	// re-execution across runs: before any dispatch the manager
	// resolves every task's fingerprint bottom-up over the compiled DAG
	// (wfformat.TaskFingerprints), probes the cache, and seeds tasks
	// whose fingerprint is cached and whose recorded outputs still
	// verify on the shared drive as completed — they are never invoked
	// and appear in the Result with Memoized=true. Successful
	// completions populate the cache. A hit whose outputs vanished (or
	// diverged, on content-addressed drives) re-runs, exactly like
	// Resume's re-executed tasks. Composes with Journal: cache hits are
	// journaled as task-memoized records and count as completions on
	// resume. Nil disables memoization; the hot path is identical.
	Memoize *memo.Cache
	// AfterTaskDone, when set, is called synchronously after each task
	// completes successfully (and after its completion is journaled),
	// with the cumulative count of tasks completed by this process. It
	// exists for crash-injection harnesses (-crash-after-tasks) and
	// progress hooks; it must be fast and safe for concurrent callers'
	// view of the count to be monotonic but unordered.
	AfterTaskDone func(completed int)
	// Health enables the run-health plane: streaming per-endpoint
	// latency baselines, straggler detection against each endpoint's
	// running median (optionally racing a speculative backup attempt),
	// and a crash flight recorder. Nil disables it; the dispatch hot
	// path is then allocation-identical to previous releases.
	Health *HealthOptions
	// Gate, when set, is acquired around every task invocation (once
	// per task, not per attempt, so retries and batching compose). It
	// is how an embedding service — wfmd's fair-share admission layer —
	// throttles many concurrent Managers against a shared invocation
	// budget without the Managers knowing about each other. Acquire
	// blocking simply delays the task's dispatch; an Acquire error
	// (only expected when ctx is cancelled) fails the task like any
	// other pre-dispatch cancellation. Nil disables the gate; the hot
	// path is identical.
	Gate TaskGate
}

// TaskGate admits task invocations. Implementations must be safe for
// concurrent use; Release is called exactly once per successful
// Acquire. Acquire should return promptly with ctx.Err() once ctx is
// cancelled, and should not fail for any other reason.
type TaskGate interface {
	Acquire(ctx context.Context) error
	Release()
}

// Manager executes workflows.
type Manager struct {
	opts Options
}

// New returns a Manager for the options.
func New(opts Options) (*Manager, error) {
	if opts.Drive == nil {
		return nil, errors.New("wfm: Options need a Drive")
	}
	if opts.TimeScale == 0 {
		opts.TimeScale = 1
	}
	if opts.TimeScale < 0 {
		return nil, errors.New("wfm: negative TimeScale")
	}
	if opts.PhaseDelay == 0 {
		opts.PhaseDelay = 1
	}
	if opts.InputWait == 0 {
		opts.InputWait = 30
	}
	if opts.Client == nil {
		// Size the connection pool to the configured parallelism rather
		// than a fixed 1024: MaxParallel bounds how many requests can be
		// in flight, so idle connections beyond it only hold sockets.
		pool := opts.MaxParallel
		if pool <= 0 {
			pool = 1024
		}
		tr := &http.Transport{
			MaxIdleConns:        pool,
			MaxIdleConnsPerHost: pool,
			IdleConnTimeout:     90 * time.Second,
			// Bodies are compact JSON (or batch frames); bigger socket
			// buffers keep large fan-outs off the syscall floor, and
			// gzip on loopback-scale payloads costs more CPU than the
			// bytes it saves.
			WriteBufferSize:    64 << 10,
			ReadBufferSize:     64 << 10,
			DisableCompression: true,
		}
		opts.Client = &http.Client{Transport: tr}
	}
	switch opts.Scheduling {
	case SchedulePhases, ScheduleDependency:
	default:
		return nil, fmt.Errorf("wfm: unknown Scheduling %d", opts.Scheduling)
	}
	if opts.Retries < 0 {
		return nil, errors.New("wfm: negative Retries")
	}
	if opts.RetryBackoff < 0 || opts.RetryBackoffMax < 0 || opts.TaskTimeout < 0 {
		return nil, errors.New("wfm: negative RetryBackoff/RetryBackoffMax/TaskTimeout")
	}
	if err := opts.Breaker.validate(); err != nil {
		return nil, err
	}
	if err := opts.Batching.validate(); err != nil {
		return nil, err
	}
	if err := opts.Health.validate(); err != nil {
		return nil, err
	}
	return &Manager{opts: opts}, nil
}

func (m *Manager) scaled(nominalSeconds float64) time.Duration {
	return time.Duration(nominalSeconds * m.opts.TimeScale * float64(time.Second))
}

// TaskResult records one function invocation.
type TaskResult struct {
	Name     string
	Category string
	Phase    int
	// Ready is when the scheduler deemed the task runnable: in phase
	// mode, when its phase began dispatching; in dependency mode, when
	// its last parent completed (or run start for roots). The gap to
	// Start is time spent queued behind MaxParallel or waiting for
	// input files.
	Ready time.Duration
	Start time.Duration // offset from run start (wall)
	End   time.Duration
	// Attempts is how many invocation attempts the resilience layer
	// made for the task, including attempts shed by an open circuit
	// breaker; 1 means it succeeded (or failed terminally) first try.
	Attempts int
	// Recovered marks a task restored from the run journal on Resume:
	// it completed in a previous process and was not re-invoked. Its
	// timings are zero and Response is nil.
	Recovered bool
	// Memoized marks a cache-hit task under Options.Memoize: an earlier
	// run completed identical content and its outputs verified on the
	// drive, so it was seeded as completed and never invoked. Its
	// timings are zero and Response is nil.
	Memoized bool
	Response *wfbench.Response
	Err      error
}

// QueueWait returns the ready→start queueing latency: how long the task
// sat runnable before its HTTP invocation was issued.
func (tr *TaskResult) QueueWait() time.Duration {
	if tr.Start < tr.Ready {
		return 0
	}
	return tr.Start - tr.Ready
}

// Result summarizes one workflow execution.
type Result struct {
	Workflow string
	// Scheduling is the mode that produced this result.
	Scheduling Scheduling
	// Phases lists the function names per executed phase, including
	// the synthetic header and tail. In dependency mode these are the
	// static topological levels, kept for comparability — execution
	// order within them is event-driven.
	Phases [][]string
	// Makespan is the nominal end-to-end time in paper seconds
	// (wall time divided by TimeScale).
	Makespan float64
	// Wall is the measured wall-clock duration.
	Wall time.Duration
	// Tasks holds per-function results keyed by name.
	Tasks map[string]*TaskResult
	// Failed lists functions that returned errors, sorted.
	Failed []string
	// Warnings records non-fatal anomalies the run pressed on through
	// (e.g. a phase dispatched under ContinueOnError although its
	// inputs never appeared on the shared drive).
	Warnings []string
	// Breakers lists circuit-breaker state transitions observed during
	// the run, in time order (empty unless Options.Breaker is enabled
	// and an endpoint misbehaved).
	Breakers []BreakerTransition
	// Resume summarizes what a resumed run recovered from its journal;
	// nil for fresh runs.
	Resume *ResumeReport
	// Memo summarizes what the memo cache contributed; nil unless
	// Options.Memoize was set.
	Memo *MemoReport
	// Health carries the run-health summary — per-endpoint baselines,
	// flagged stragglers, speculation accounting; nil unless
	// Options.Health was set.
	Health *HealthReport
	// TraceID identifies the run's distributed trace when the run was
	// sampled (Options.Tracer set and the root span recorded).
	TraceID string
	// Spans holds the spans collected for this run across every layer
	// that shares the manager's Tracer — the WFM itself plus, for the
	// in-process platform, the platform and wfbench spans.
	Spans []obs.Span
}

// PhaseError reports a phase whose functions failed.
type PhaseError struct {
	Phase  int
	Failed []string
	Errs   []error
}

func (e *PhaseError) Error() string {
	return fmt.Sprintf("wfm: phase %d: %d function(s) failed: %v (first: %v)",
		e.Phase, len(e.Failed), e.Failed, e.Errs[0])
}

// Unwrap exposes the first underlying error.
func (e *PhaseError) Unwrap() error { return e.Errs[0] }

// Run executes the workflow under the configured Scheduling mode. Every
// task must carry an api_url (set by a translator); Run validates the
// workflow first. With Options.Journal set the journal must be empty —
// continuing a previous run is Resume's job.
func (m *Manager) Run(ctx context.Context, w *wfformat.Workflow) (*Result, error) {
	csr, p, err := m.prepare(w)
	if err != nil {
		return nil, err
	}
	if j := m.opts.Journal; j != nil && len(j.Records()) > 0 {
		return nil, errors.New("wfm: journal already holds a run; use Resume (or point -journal at a fresh directory)")
	}
	return m.run(ctx, w, csr, p, nil)
}

// Resume continues a journaled run that a previous process started: it
// replays Options.Journal, validates the recorded workflow fingerprint
// against w, verifies that every recorded-completed task's outputs are
// still on the shared drive (tasks whose products vanished re-run), and
// executes only what remains. An empty journal degenerates to a fresh
// Run. The Result covers the whole workflow — recovered tasks appear
// with Recovered=true and zero-duration timings — and Result.Resume
// reports how many invocations the journal saved.
func (m *Manager) Resume(ctx context.Context, w *wfformat.Workflow) (*Result, error) {
	j := m.opts.Journal
	if j == nil {
		return nil, errors.New("wfm: Resume needs Options.Journal")
	}
	csr, p, err := m.prepare(w)
	if err != nil {
		return nil, err
	}
	if len(j.Records()) == 0 {
		return m.run(ctx, w, csr, p, nil)
	}
	rec, err := m.recoverRun(w, p.len(), j.Records(), j.Torn())
	if err != nil {
		return nil, err
	}
	m.verifyOutputs(rec)
	return m.run(ctx, w, csr, p, rec)
}

// prepare validates and compiles the workflow into its CSR and
// invocation plan — the shared front half of Run and Resume.
func (m *Manager) prepare(w *wfformat.Workflow) (*dag.CSR, *invocationPlan, error) {
	if err := m.validateRunnable(w); err != nil {
		return nil, nil, err
	}
	csr, tasks, err := w.Compile()
	if err != nil {
		return nil, nil, err
	}
	p, err := newInvocationPlan(tasks)
	if err != nil {
		return nil, nil, err
	}
	return csr, p, nil
}

// run drives one execution (fresh or resumed): it opens the journal's
// run framing — header for fresh runs, resume marker for recovered ones
// — hands the run state to the scheduling loop, and closes the framing
// with a run-end record whose status reflects how the loop exited.
func (m *Manager) run(ctx context.Context, w *wfformat.Workflow, csr *dag.CSR, p *invocationPlan, rec *recovery) (*Result, error) {
	st := &runState{rec: rec, afterDone: m.opts.AfterTaskDone}
	if m.opts.Health != nil {
		st.health = m.newHealthState()
		defer st.health.close()
		st.health.event("run-start", "", "", 0, w.Name)
	}
	if m.opts.Memoize != nil {
		st.memo = m.probeMemo(csr, p, rec)
	}
	if j := m.opts.Journal; j != nil {
		var prior []int32
		if rec != nil {
			prior = rec.attempts
		}
		st.rj = newRunJournal(j, p.len(), prior)
		if rec == nil {
			h := &runHeader{
				Version:     journalRunHeaderVersion,
				Fingerprint: wfformat.Fingerprint(w),
				OptionsHash: m.opts.optionsHash(),
				Scheduling:  m.opts.Scheduling,
				TaskCount:   p.len(),
				Workflow:    w.Name,
				StartedUnix: time.Now().Unix(),
			}
			st.rj.append(recRunHeader, h.encode())
		} else {
			st.rj.append(recRunResumed, encodeRunResumed(
				rec.report.RecordedCompleted, rec.report.SkippedInvocations, rec.report.Reexecuted))
		}
		// Cache hits are completions this process will never re-invoke:
		// journal them with the framing so even a crash before the first
		// dispatch leaves a journal that resumes without re-running them.
		if st.memo != nil {
			for _, id := range st.memo.hitIDs {
				st.rj.taskMemoized(id, p.tasks[id])
			}
		}
		// The framing records must survive even an immediate crash: sync
		// them through before the first task is dispatched.
		if err := j.Sync(); err != nil {
			return nil, fmt.Errorf("wfm: journal: %w", err)
		}
	}

	var res *Result
	var err error
	if m.opts.Scheduling == ScheduleDependency {
		res, err = m.runDependency(ctx, w, csr, p, st)
	} else {
		res, err = m.runPhases(ctx, w, csr, p, st)
	}
	if res != nil {
		if rec != nil {
			r := rec.report
			res.Resume = &r
			if rec.header.OptionsHash != m.opts.optionsHash() {
				res.Warnings = append(res.Warnings,
					"resume: options differ from the original run (journal records a different options hash)")
			}
		}
		if st.memo != nil {
			res.Memo = st.memo.report()
			if res.Memo.CacheRepaired {
				res.Warnings = append(res.Warnings, fmt.Sprintf(
					"memo: cache file was corrupt; %d unusable byte(s) dropped, affected entries re-executed",
					res.Memo.CacheDroppedBytes))
			}
			if merr := st.memo.cache.Err(); merr != nil {
				res.Warnings = append(res.Warnings, fmt.Sprintf(
					"memo: cache appends failing, this run's results are not being cached: %v", merr))
			}
		}
		if jerr := st.rj.takeError(); jerr != nil {
			res.Warnings = append(res.Warnings, fmt.Sprintf("journal: appends failing, run no longer durable: %v", jerr))
		}
		res.Health = st.health.report()
	}
	if st.health != nil {
		status := "ok"
		switch {
		case ctx.Err() != nil:
			status = "cancelled"
		case err != nil:
			status = "failed"
		}
		st.health.event("run-end", "", "", 0, status)
	}
	// Flush this run's manifests so the next process's probe sees them;
	// append errors stay sticky in the cache and were surfaced above.
	if st.memo != nil {
		st.memo.cache.Sync()
	}
	if st.rj != nil {
		status := runEndOK
		switch {
		case ctx.Err() != nil:
			status = runEndCancelled
		case err != nil:
			status = runEndFailed
		}
		failed := 0
		if res != nil {
			failed = len(res.Failed)
		}
		st.rj.runEnd(status, failed)
	}
	return res, err
}

// validateRunnable checks that the workflow is executable: structurally
// valid, translated (api_url on every task), and carrying the WfBench
// argument block invoke reads — malformed translated JSON fails here
// with a clear error instead of panicking mid-run.
func (m *Manager) validateRunnable(w *wfformat.Workflow) error {
	if err := w.Validate(); err != nil {
		return err
	}
	for _, name := range w.TaskNames() {
		t := w.Tasks[name]
		if t.Command.APIURL == "" {
			return fmt.Errorf("wfm: task %q has no api_url; run a translator first", name)
		}
		if len(t.Command.Arguments) == 0 {
			return fmt.Errorf("wfm: task %q has no argument block; malformed translated workflow", name)
		}
	}
	return nil
}

// stageHeader stages the workflow's external inputs (unless disabled)
// and records the synthetic header task. The manifest comes off the
// invocation plan, resolved once at prepare time — not rescanned from
// the workflow inside the execution wall.
func (m *Manager) stageHeader(p *invocationPlan, res *Result, start time.Time) error {
	header := &TaskResult{Name: HeaderName, Category: "header", Phase: 0}
	if !m.opts.SkipStageInputs {
		stage := make(map[string]int64, len(p.ext))
		for _, f := range p.ext {
			stage[f.Name] = f.SizeInBytes
		}
		if err := sharedfs.Stage(m.opts.Drive, stage); err != nil {
			header.Err = err
			res.Tasks[HeaderName] = header
			return fmt.Errorf("wfm: staging inputs: %w", err)
		}
	}
	header.End = time.Since(start)
	res.Tasks[HeaderName] = header
	res.Phases = append(res.Phases, []string{HeaderName})
	return nil
}

// levelPhases renders the CSR's topological levels as name lists. IDs
// are interned in sorted-name order, so the ascending-ID level slices
// are already lexicographically sorted — identical to the Phases()
// output the phase report used before the index-based hot path.
func levelPhases(c *dag.CSR) [][]string {
	slices := c.LevelSlices()
	out := make([][]string, len(slices))
	for i, ids := range slices {
		names := make([]string, len(ids))
		for j, id := range ids {
			names[j] = c.Name(id)
		}
		out[i] = names
	}
	return out
}

// recoveredResult renders a journal-recovered task as a TaskResult:
// completed in a previous process, never re-invoked here.
func recoveredResult(p *invocationPlan, csr *dag.CSR, st *runState, id int32) *TaskResult {
	task := p.tasks[id]
	tr := &TaskResult{
		Name:      task.Name,
		Category:  task.Category,
		Phase:     int(csr.Level(id)) + 1,
		Recovered: true,
	}
	if st.rec != nil {
		tr.Attempts = int(st.rec.attempts[id])
	}
	return tr
}

// traceReplay annotates the run's root span with journal context and,
// on resumed runs, emits a journal:replay child span carrying the
// recovery counts.
func (m *Manager) traceReplay(root *obs.Span, st *runState) {
	if root == nil {
		return
	}
	if st.rj != nil {
		root.SetAttr("journal", "on")
	}
	if st.rec != nil {
		s := m.opts.Tracer.StartChildOf(root, "journal:replay")
		s.SetInt("recorded_completed", st.rec.report.RecordedCompleted)
		s.SetInt("skipped_invocations", st.rec.report.SkippedInvocations)
		s.SetInt("reexecuted", st.rec.report.Reexecuted)
		s.Finish()
	}
}

// traceMemo annotates the root span with the memo probe's outcome so a
// memoized run's trace explains why most tasks have no spans.
func (m *Manager) traceMemo(root *obs.Span, st *runState) {
	if root == nil || st.memo == nil {
		return
	}
	root.SetAttr("memoize", "on")
	s := m.opts.Tracer.StartChildOf(root, "memo:probe")
	s.SetInt("memo_hits", len(st.memo.hitIDs))
	s.SetInt("memo_misses", st.memo.misses)
	s.SetInt("skipped_output_bytes", int(st.memo.skipped))
	s.Finish()
}

// runPhases is the paper's phase-barrier loop (Section III-C).
func (m *Manager) runPhases(ctx context.Context, w *wfformat.Workflow, csr *dag.CSR, p *invocationPlan, st *runState) (*Result, error) {
	levels := csr.LevelSlices()
	phases := levelPhases(csr)

	res := &Result{
		Workflow:   w.Name,
		Scheduling: SchedulePhases,
		Tasks:      make(map[string]*TaskResult, w.Len()+2),
	}
	start := time.Now()
	record := func(tr *TaskResult) {
		res.Tasks[tr.Name] = tr
	}
	rs := m.newResilience(start)
	rs.health = st.health
	rs.batch = m.newBatcher(ctx, p)
	rs.batch.setHealth(st.health)
	defer rs.batch.close()
	// Breaker transitions belong in the Result on every exit path,
	// including aborts and cancellations.
	defer func() { res.Breakers = rs.take() }()
	root, finishTrace := m.startRunTrace(w.Name, res)
	defer finishTrace()
	m.traceReplay(root, st)
	m.traceMemo(root, st)
	mon := m.opts.Monitor
	mon.runStarted(w.Name, SchedulePhases, p.len())
	if l := m.opts.Logger; l != nil {
		l.Info("workflow run starting",
			"workflow", w.Name, "tasks", p.len(), "phases", len(levels), "scheduling", SchedulePhases.String())
	}
	defer func() {
		if l := m.opts.Logger; l != nil {
			l.Info("workflow run finished",
				"workflow", w.Name, "wall", res.Wall, "failed", len(res.Failed))
		}
	}()

	// Header: stage external inputs so root functions find their data.
	if err := m.stageHeader(p, res, start); err != nil {
		return res, err
	}

	var sem chan struct{}
	if m.opts.MaxParallel > 0 {
		sem = make(chan struct{}, m.opts.MaxParallel)
	}

	var abort *PhaseError
	for pi, level := range levels {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		// Partition the level: tasks the journal proved completed or the
		// memo cache verified (outputs still on the drive either way) are
		// recorded as recovered/memoized and never re-invoked; only the
		// remainder dispatches.
		toRun := level
		if st.hasSeeds() {
			toRun = make([]int32, 0, len(level))
			for _, id := range level {
				if st.seededID(id) {
					record(seededResult(p, csr, st, id))
				} else {
					toRun = append(toRun, id)
				}
			}
			if len(toRun) == 0 {
				res.Phases = append(res.Phases, phases[pi])
				continue
			}
		}
		if l := m.opts.Logger; l != nil {
			l.Debug("dispatching phase", "phase", pi+1, "tasks", len(toRun))
		}
		// Check that every input of the phase is on the shared drive,
		// waiting briefly for stragglers from the previous phase.
		if err := m.awaitInputs(ctx, p, toRun); err != nil {
			if !m.opts.ContinueOnError {
				return res, fmt.Errorf("wfm: phase %d: %w", pi+1, err)
			}
			// The phase still runs — its functions will fail their own
			// input checks — but the run must record why, not drop it.
			res.Warnings = append(res.Warnings, fmt.Sprintf("phase %d: %v", pi+1, err))
		}

		var wg sync.WaitGroup
		// One contiguous allocation for the whole phase instead of one
		// heap object per task — wide fan-out phases dispatch hundreds.
		results := make([]TaskResult, len(toRun))
		ready := time.Since(start)
		mon.taskReady(len(toRun))
		for i, id := range toRun {
			wg.Add(1)
			go func(tr *TaskResult, id int32) {
				defer wg.Done()
				if sem != nil {
					sem <- struct{}{}
					defer func() { <-sem }()
				}
				task := p.tasks[id]
				tr.Name = task.Name
				tr.Category = task.Category
				tr.Phase = pi + 1
				tr.Ready = ready
				if g := m.opts.Gate; g != nil {
					if err := g.Acquire(ctx); err != nil {
						mon.taskStarted()
						tr.Start = time.Since(start)
						tr.End = tr.Start
						tr.Err = err
						st.taskDone(id, p, tr)
						mon.taskFinished(0, true)
						return
					}
					defer g.Release()
				}
				ts := m.opts.Tracer.StartChildOf(root, task.Name)
				ts.SetStart(start.Add(ready))
				if st.memo != nil {
					ts.SetAttr("memo_hit", "false")
				}
				mon.taskStarted()
				st.rj.taskStarted(id)
				st.health.taskStarted(task)
				tr.Start = time.Since(start)
				tr.Response, tr.Attempts, tr.Err = m.invoke(ctx, p, id, rs, ts)
				tr.End = time.Since(start)
				st.taskDone(id, p, tr)
				mon.taskFinished(tr.End-tr.Start, tr.Err != nil)
				m.finishTaskSpan(ts, tr)
			}(&results[i], id)
		}
		wg.Wait()

		var failed []string
		var errs []error
		for i := range results {
			tr := &results[i]
			record(tr)
			if tr.Err != nil {
				failed = append(failed, tr.Name)
				errs = append(errs, tr.Err)
				if l := m.opts.Logger; l != nil {
					l.Warn("task failed", "task", tr.Name, "phase", tr.Phase,
						"attempts", tr.Attempts, "err", tr.Err)
				}
			}
		}
		res.Phases = append(res.Phases, phases[pi])
		if len(failed) > 0 {
			sort.Strings(failed)
			res.Failed = append(res.Failed, failed...)
			abort = &PhaseError{Phase: pi + 1, Failed: failed, Errs: errs}
			if !m.opts.ContinueOnError {
				break
			}
			abort = nil
		}

		// The paper's brief inter-phase delay, skipped after the last
		// phase.
		if pi < len(phases)-1 {
			select {
			case <-ctx.Done():
				return res, ctx.Err()
			case <-time.After(m.scaled(m.opts.PhaseDelay)):
			}
		}
	}

	tail := &TaskResult{
		Name: TailName, Category: "tail",
		Phase: len(phases) + 1,
		Start: time.Since(start), End: time.Since(start),
	}
	record(tail)
	res.Phases = append(res.Phases, []string{TailName})

	res.Wall = time.Since(start)
	res.Makespan = res.Wall.Seconds() / m.opts.TimeScale
	if abort != nil {
		return res, abort
	}
	if len(res.Failed) > 0 {
		sort.Strings(res.Failed)
		return res, fmt.Errorf("wfm: %d function(s) failed: %v", len(res.Failed), res.Failed)
	}
	return res, nil
}

// awaitInputs waits until every input file of the phase's functions is
// present on the shared drive.
func (m *Manager) awaitInputs(ctx context.Context, p *invocationPlan, level []int32) error {
	needed := make(map[string]struct{})
	for _, id := range level {
		for _, in := range p.tasks[id].InputFiles() {
			needed[in] = struct{}{}
		}
	}
	if len(needed) == 0 {
		return nil
	}
	names := make([]string, 0, len(needed))
	for n := range needed {
		names = append(names, n)
	}
	sort.Strings(names)
	waitCtx, cancel := context.WithTimeout(ctx, m.scaled(m.opts.InputWait))
	defer cancel()
	missing, err := sharedfs.WaitFor(waitCtx, m.opts.Drive, names, m.scaled(m.opts.InputWait)/100)
	if err != nil {
		return fmt.Errorf("inputs missing on shared drive: %v: %w", missing, err)
	}
	return nil
}

// startRunTrace opens the run's root span (nil when tracing is off or
// the run loses the sampling draw) and returns a finisher that, on any
// exit path, closes the root and drains the tracer's collector into
// the Result.
func (m *Manager) startRunTrace(workflow string, res *Result) (*obs.Span, func()) {
	root := m.opts.Tracer.StartRoot("workflow:"+workflow, obs.LayerWFM)
	root.SetAttr("scheduling", res.Scheduling.String())
	return root, func() {
		if root == nil {
			return
		}
		res.TraceID = root.Context().TraceID.String()
		root.Finish()
		res.Spans = m.opts.Tracer.Take()
	}
}

// finishTaskSpan annotates and closes one task's span: ready→start
// queueing latency, attempt count, and the terminal error if any.
func (m *Manager) finishTaskSpan(ts *obs.Span, tr *TaskResult) {
	if ts == nil {
		return
	}
	ts.SetAttr("category", tr.Category)
	ts.SetInt("phase", tr.Phase)
	ts.SetFloat("queue_ms", float64(tr.QueueWait().Microseconds())/1000)
	ts.SetInt("attempts", tr.Attempts)
	if tr.Err != nil {
		ts.SetAttr("error", tr.Err.Error())
	}
	ts.Finish()
}

// invoke POSTs one function's WfBench request to its api_url through
// the resilience layer: a per-task deadline (Options.TaskTimeout) over
// all attempts, retries with full-jitter exponential backoff honouring
// server Retry-After hints, and the endpoint's circuit breaker. It
// returns the response, the number of attempts made, and the terminal
// error if the task failed. When parent is a sampled span, each attempt
// emits a child span and injects its context as the POST's traceparent
// header; a nil parent keeps the whole path span-free.
func (m *Manager) invoke(ctx context.Context, p *invocationPlan, id int32, rs *resilience, parent *obs.Span) (*wfbench.Response, int, error) {
	task := p.tasks[id]
	tctx := ctx
	if m.opts.TaskTimeout > 0 {
		var cancel context.CancelFunc
		tctx, cancel = context.WithTimeout(ctx, m.scaled(m.opts.TaskTimeout))
		defer cancel()
	}
	br := rs.breakerFor(task.Command.APIURL)
	var resp *wfbench.Response
	var err error
	for attempt := 0; ; attempt++ {
		var retriable bool
		var retryAfter time.Duration
		allowed := true
		if br != nil {
			allowed, retryAfter = br.allow()
		}
		if attempt > 0 {
			m.opts.Monitor.retried()
			rs.health.event("retry", task.Name, task.Command.APIURL, attempt+1, "")
		}
		as := m.opts.Tracer.StartChildOf(parent, "invoke")
		as.SetInt("attempt", attempt+1)
		as.SetAttr("endpoint", task.Command.APIURL)
		if !allowed {
			resp, err = nil, fmt.Errorf("wfm: %s: %s: %w", task.Name, task.Command.APIURL, ErrCircuitOpen)
			retriable = true
			as.SetAttr("breaker", BreakerOpen)
		} else {
			if rs.health != nil {
				resp, retriable, retryAfter, err = rs.health.attempt(tctx, p, id, rs, attempt, as, parent)
			} else if rs.batch != nil {
				resp, retriable, retryAfter, err = rs.batch.invokeOnce(tctx, id, as.Context())
			} else {
				resp, retriable, retryAfter, err = m.invokeOnce(tctx, p, id, as.Context())
			}
			if br != nil {
				br.record(classify(ctx, tctx, retriable, err))
			}
		}
		if as != nil {
			if resp != nil && resp.ColdStart {
				as.SetAttr("cold_start", "true")
			}
			if err != nil {
				as.SetAttr("error", err.Error())
			}
			as.Finish()
		}
		if err != nil && retryAfter > 0 {
			rs.health.event("throttle", task.Name, task.Command.APIURL, attempt+1, err.Error())
		}
		attempts := attempt + 1
		if err == nil {
			return resp, attempts, nil
		}
		// A cancelled parent context always wins: return its error
		// promptly, even mid-backoff. The task's own expired deadline
		// is terminal too, but reported as ErrTaskTimeout so callers
		// can tell a wedged endpoint from a cancelled run.
		if cerr := ctx.Err(); cerr != nil {
			return resp, attempts, cerr
		}
		if tctx.Err() != nil {
			return resp, attempts, fmt.Errorf("wfm: %s: %w after %d attempt(s): %v",
				task.Name, ErrTaskTimeout, attempts, err)
		}
		if !retriable || attempt >= m.opts.Retries {
			return resp, attempts, err
		}
		if delay := m.retryDelay(attempt, retryAfter); delay > 0 {
			t := time.NewTimer(delay)
			select {
			case <-tctx.Done():
				t.Stop()
				if cerr := ctx.Err(); cerr != nil {
					return resp, attempts, cerr
				}
				return resp, attempts, fmt.Errorf("wfm: %s: %w during backoff after %d attempt(s): %v",
					task.Name, ErrTaskTimeout, attempts, err)
			case <-t.C:
			}
		}
	}
}

// classify maps one attempt's result onto a breaker outcome: only
// endpoint-side trouble (transport errors, 5xx, 429, a stall past the
// task deadline) counts against the endpoint's health; client-side
// rejections and function-level errors prove the endpoint is serving.
func classify(ctx, tctx context.Context, retriable bool, err error) attemptOutcome {
	if err == nil {
		return outcomeSuccess
	}
	if ctx.Err() != nil {
		return outcomeAborted
	}
	if retriable || tctx.Err() != nil {
		return outcomeFailure
	}
	return outcomeSuccess
}

// invokeOnce performs a single HTTP invocation from the plan's
// pre-rendered artifacts: a shallow clone of the task's request
// template, a pooled reader over the task's arena body, and a pooled
// decode buffer for the response. A sampled span context is injected as
// the request's traceparent header (on a fresh header map — the shared
// template header is never mutated). retriable reports whether a
// failure is worth retrying (network error, 5xx, or 429); retryAfter
// carries the server's Retry-After hint when it sent one.
func (m *Manager) invokeOnce(ctx context.Context, p *invocationPlan, id int32, sc obs.SpanContext) (_ *wfbench.Response, retriable bool, retryAfter time.Duration, _ error) {
	task := p.tasks[id]
	req := p.request(ctx, id)
	if sc.Sampled {
		h := make(http.Header, 2)
		h["Content-Type"] = sharedJSONHeader["Content-Type"]
		h["Traceparent"] = []string{sc.Traceparent()}
		req.Header = h
	}
	hres, err := m.opts.Client.Do(req)
	if err != nil {
		return nil, ctx.Err() == nil, 0, fmt.Errorf("wfm: %s: request: %w", task.Name, err)
	}
	defer hres.Body.Close()
	if hres.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(hres.Body, 1024))
		retriable = hres.StatusCode >= 500 || hres.StatusCode == http.StatusTooManyRequests
		if hres.StatusCode == http.StatusTooManyRequests || hres.StatusCode == http.StatusServiceUnavailable {
			retryAfter = ParseRetryAfter(hres.Header.Get("Retry-After"))
		}
		return nil, retriable, retryAfter,
			fmt.Errorf("wfm: %s: HTTP %d: %s", task.Name, hres.StatusCode, strings.TrimSpace(string(msg)))
	}
	buf := decodeBufs.Get().(*bytes.Buffer)
	buf.Reset()
	var resp wfbench.Response
	_, err = buf.ReadFrom(hres.Body)
	if err == nil {
		err = json.Unmarshal(buf.Bytes(), &resp)
	}
	decodeBufs.Put(buf)
	if err != nil {
		return nil, false, 0, fmt.Errorf("wfm: %s: decode: %w", task.Name, err)
	}
	if !resp.OK {
		return &resp, false, 0, fmt.Errorf("wfm: %s: function error: %s", task.Name, resp.Error)
	}
	return &resp, false, 0, nil
}

// PhaseStats summarizes per-phase behaviour of a Result, used by the
// characterization tooling.
type PhaseStats struct {
	Phase     int
	Functions int
	// WallSpan is the wall time from the first start to the last end
	// in the phase.
	WallSpan time.Duration
}

// PhaseBreakdown derives per-phase stats from a Result (excluding the
// synthetic header/tail).
func PhaseBreakdown(res *Result) []PhaseStats {
	byPhase := make(map[int][]*TaskResult)
	maxPhase := 0
	for _, tr := range res.Tasks {
		if tr.Name == HeaderName || tr.Name == TailName {
			continue
		}
		byPhase[tr.Phase] = append(byPhase[tr.Phase], tr)
		if tr.Phase > maxPhase {
			maxPhase = tr.Phase
		}
	}
	var out []PhaseStats
	for p := 1; p <= maxPhase; p++ {
		trs := byPhase[p]
		if len(trs) == 0 {
			continue
		}
		first, last := trs[0].Start, trs[0].End
		for _, tr := range trs[1:] {
			if tr.Start < first {
				first = tr.Start
			}
			if tr.End > last {
				last = tr.End
			}
		}
		out = append(out, PhaseStats{Phase: p, Functions: len(trs), WallSpan: last - first})
	}
	return out
}
