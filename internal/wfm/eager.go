package wfm

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"wfserverless/internal/sharedfs"
	"wfserverless/internal/wfformat"
)

// RunEager executes the workflow with dependency-driven scheduling: each
// function is invoked as soon as all of its parents have completed, with
// no phase barrier and no inter-phase delay. The paper's manager
// deliberately uses phase barriers plus a fixed delay (Section III-C);
// this mode quantifies what that simplification costs — stragglers in a
// phase no longer hold back unrelated ready functions.
//
// Failure semantics match Run: without ContinueOnError the first failure
// cancels everything still pending; descendants of a failed function are
// never invoked either way (their inputs cannot appear).
func (m *Manager) RunEager(ctx context.Context, w *wfformat.Workflow) (*Result, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	for _, name := range w.TaskNames() {
		if w.Tasks[name].Command.APIURL == "" {
			return nil, fmt.Errorf("wfm: task %q has no api_url; run a translator first", name)
		}
	}
	g, err := w.Graph()
	if err != nil {
		return nil, err
	}
	levels, err := g.LevelOf()
	if err != nil {
		return nil, err
	}

	res := &Result{
		Workflow: w.Name,
		Tasks:    make(map[string]*TaskResult, w.Len()+2),
	}
	start := time.Now()

	// Header: stage external inputs.
	header := &TaskResult{Name: HeaderName, Category: "header", Phase: 0}
	if m.opts.StageInputs {
		stage := make(map[string]int64)
		for _, f := range w.ExternalInputs() {
			stage[f.Name] = f.SizeInBytes
		}
		if err := sharedfs.Stage(m.opts.Drive, stage); err != nil {
			header.Err = err
			res.Tasks[HeaderName] = header
			return res, fmt.Errorf("wfm: staging inputs: %w", err)
		}
	}
	header.End = time.Since(start)
	res.Tasks[HeaderName] = header
	res.Phases = append(res.Phases, []string{HeaderName})

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	type outcome struct {
		failed bool
	}
	done := make(map[string]chan outcome, w.Len())
	for _, name := range w.TaskNames() {
		done[name] = make(chan outcome, 1)
	}

	var sem chan struct{}
	if m.opts.MaxParallel > 0 {
		sem = make(chan struct{}, m.opts.MaxParallel)
	}

	var mu sync.Mutex
	var wg sync.WaitGroup
	record := func(tr *TaskResult) {
		mu.Lock()
		res.Tasks[tr.Name] = tr
		if tr.Err != nil {
			res.Failed = append(res.Failed, tr.Name)
		}
		mu.Unlock()
	}

	for _, name := range w.TaskNames() {
		wg.Add(1)
		go func(task *wfformat.Task) {
			defer wg.Done()
			tr := &TaskResult{
				Name:     task.Name,
				Category: task.Category,
				Phase:    levels[task.Name] + 1,
			}
			defer func() {
				record(tr)
				out := outcome{failed: tr.Err != nil}
				done[task.Name] <- out
				if out.failed && !m.opts.ContinueOnError {
					cancel()
				}
			}()

			// Wait for every parent to complete.
			for _, parent := range task.Parents {
				select {
				case out := <-done[parent]:
					done[parent] <- out // re-publish for sibling waiters
					if out.failed {
						tr.Err = fmt.Errorf("wfm: %s: skipped, parent %s failed", task.Name, parent)
						return
					}
				case <-runCtx.Done():
					tr.Err = runCtx.Err()
					return
				}
			}
			if err := runCtx.Err(); err != nil {
				tr.Err = err
				return
			}
			if sem != nil {
				select {
				case sem <- struct{}{}:
					defer func() { <-sem }()
				case <-runCtx.Done():
					tr.Err = runCtx.Err()
					return
				}
			}
			tr.Start = time.Since(start)
			tr.Response, tr.Err = m.invoke(runCtx, task)
			tr.End = time.Since(start)
		}(w.Tasks[name])
	}
	wg.Wait()

	// Report static phases for comparability with Run.
	phases, _ := w.Phases()
	res.Phases = append(res.Phases, phases...)
	tail := &TaskResult{
		Name: TailName, Category: "tail",
		Phase: len(phases) + 1,
		Start: time.Since(start), End: time.Since(start),
	}
	res.Tasks[TailName] = tail
	res.Phases = append(res.Phases, []string{TailName})

	res.Wall = time.Since(start)
	res.Makespan = res.Wall.Seconds() / m.opts.TimeScale
	if len(res.Failed) > 0 {
		sort.Strings(res.Failed)
		return res, fmt.Errorf("wfm: %d function(s) failed: %v", len(res.Failed), res.Failed)
	}
	return res, nil
}
