package wfm

import (
	"context"
	"testing"
	"time"

	"wfserverless/internal/journal"
	"wfserverless/internal/sharedfs"
)

// BenchmarkJournalOverheadDrain measures what durable execution costs on
// the 100k-task drain path: the PR-3 fan-out executed with dependency
// scheduling and a 256-worker pool against a zero-delay stub, with the
// journal off, group-committed (the default, one fsync per ~2ms window),
// and fsync-per-append. The acceptance bar for this subsystem is the
// group row staying within 5% of off on wall_ms/run — group commit is
// what keeps 100k appends from serializing the hot path on the disk.
func BenchmarkJournalOverheadDrain(b *testing.B) {
	width := 100_000
	if testing.Short() {
		width = 10_000
	}
	cases := []struct {
		name string
		sync journal.SyncPolicy
		off  bool
	}{
		{name: "off", off: true},
		{name: "never", sync: journal.SyncNever},
		{name: "group", sync: journal.SyncGroup},
		{name: "always", sync: journal.SyncAlways},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			drive := sharedfs.NewMem()
			srv := benchStub(b, drive, 0)
			w := fanoutWorkflow(b, width, srv.URL)
			b.ReportAllocs()
			b.ResetTimer()
			var total time.Duration
			for i := 0; i < b.N; i++ {
				// A journal holds exactly one run, so each iteration gets a
				// fresh one; wall_ms/run measures the Run itself.
				b.StopTimer()
				var j *journal.Journal
				if !tc.off {
					var err error
					j, err = journal.Open(b.TempDir(), journal.Options{Sync: tc.sync})
					if err != nil {
						b.Fatal(err)
					}
				}
				m, err := New(Options{
					Drive:       drive,
					TimeScale:   0.002,
					InputWait:   30,
					MaxParallel: 256,
					Scheduling:  ScheduleDependency,
					Journal:     j,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				res, err := m.Run(context.Background(), w)
				if err != nil {
					b.Fatal(err)
				}
				total += res.Wall
				b.StopTimer()
				if j != nil {
					if err := j.Close(); err != nil {
						b.Fatal(err)
					}
				}
				b.StartTimer()
			}
			b.ReportMetric(float64(total.Milliseconds())/float64(b.N), "wall_ms/run")
			b.ReportMetric(float64(width+2)*float64(b.N)/b.Elapsed().Seconds(), "tasks/s")
		})
	}
}
