package wfm

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"wfserverless/internal/sharedfs"
	"wfserverless/internal/wfbench"
)

func runBlast(t *testing.T) *Result {
	t.Helper()
	drive := sharedfs.NewMem()
	srv, _, _ := stubService(t, drive, time.Millisecond)
	m := fastManager(t, drive, nil)
	w := translated(t, "blast", 12, srv.URL)
	res, err := m.Run(context.Background(), w)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestTraceOfOrderedAndComplete(t *testing.T) {
	res := runBlast(t)
	tr := TraceOf(res)
	if tr.Workflow != res.Workflow || tr.Makespan != res.Makespan {
		t.Fatalf("trace header: %+v", tr)
	}
	if len(tr.Events) != len(res.Tasks) {
		t.Fatalf("events = %d, want %d", len(tr.Events), len(res.Tasks))
	}
	for i := 1; i < len(tr.Events); i++ {
		if tr.Events[i].StartMS < tr.Events[i-1].StartMS {
			t.Fatalf("events out of order at %d", i)
		}
	}
}

func TestTraceJSONRoundTrip(t *testing.T) {
	tr := TraceOf(runBlast(t))
	var b strings.Builder
	if err := tr.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseTrace(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed.Events) != len(tr.Events) || parsed.Workflow != tr.Workflow {
		t.Fatal("round trip changed trace")
	}
}

func TestParseTraceBad(t *testing.T) {
	if _, err := ParseTrace(strings.NewReader("{nope")); err == nil {
		t.Fatal("bad trace accepted")
	}
}

func TestTraceCSV(t *testing.T) {
	tr := TraceOf(runBlast(t))
	var b strings.Builder
	if err := tr.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != len(tr.Events)+1 {
		t.Fatalf("csv lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "name,category,phase") {
		t.Fatalf("header = %q", lines[0])
	}
}

func TestCriticalEvents(t *testing.T) {
	tr := TraceOf(runBlast(t))
	crit := TraceOf(runBlast(t)).CriticalEvents()
	_ = tr
	// one critical event per phase that has events (header=0..tail)
	phases := map[int]bool{}
	for _, ev := range crit {
		if phases[ev.Phase] {
			t.Fatalf("duplicate phase %d in critical events", ev.Phase)
		}
		phases[ev.Phase] = true
	}
	if len(crit) < 3 {
		t.Fatalf("critical events = %d", len(crit))
	}
}

func TestRetriesRecoverFromTransient5xx(t *testing.T) {
	drive := sharedfs.NewMem()
	var calls atomic.Int64
	var mu sync.Mutex
	attempts := map[string]int{}
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var req wfbench.Request
		json.NewDecoder(r.Body).Decode(&req)
		calls.Add(1)
		mu.Lock()
		attempts[req.Name]++
		first := attempts[req.Name] == 1
		mu.Unlock()
		// fail the first attempt of every function, succeed after
		if first {
			http.Error(w, "transient", http.StatusServiceUnavailable)
			return
		}
		for name, size := range req.Out {
			drive.WriteFile(name, size)
		}
		json.NewEncoder(w).Encode(&wfbench.Response{Name: req.Name, OK: true})
	})
	srv := httptest.NewServer(h)
	defer srv.Close()
	m := fastManager(t, drive, func(o *Options) {
		o.Retries = 2
		o.RetryBackoff = 0.1
	})
	w := translated(t, "blast", 8, srv.URL)
	if _, err := m.Run(context.Background(), w); err != nil {
		t.Fatalf("retries did not recover: %v", err)
	}
	if calls.Load() != 16 {
		t.Fatalf("calls = %d, want 2 per function", calls.Load())
	}
}

func TestNoRetryOn4xx(t *testing.T) {
	drive := sharedfs.NewMem()
	var calls atomic.Int64
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "bad", http.StatusBadRequest)
	})
	srv := httptest.NewServer(h)
	defer srv.Close()
	m := fastManager(t, drive, func(o *Options) { o.Retries = 3 })
	w := translated(t, "seismology", 3, srv.URL)
	if _, err := m.Run(context.Background(), w); err == nil {
		t.Fatal("4xx run succeeded")
	}
	// phase 1 has 2 functions; each must be tried exactly once
	if calls.Load() != 2 {
		t.Fatalf("calls = %d, want no retries on 4xx", calls.Load())
	}
}

func TestRetriesExhausted(t *testing.T) {
	drive := sharedfs.NewMem()
	var calls atomic.Int64
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "always down", http.StatusInternalServerError)
	})
	srv := httptest.NewServer(h)
	defer srv.Close()
	m := fastManager(t, drive, func(o *Options) { o.Retries = 2 })
	w := translated(t, "blast", 4, srv.URL)
	if _, err := m.Run(context.Background(), w); err == nil {
		t.Fatal("permanently failing run succeeded")
	}
	// first phase is 1 function: 1 + 2 retries
	if calls.Load() != 3 {
		t.Fatalf("calls = %d, want 3 attempts", calls.Load())
	}
}
