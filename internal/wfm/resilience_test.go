package wfm

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"wfserverless/internal/sharedfs"
	"wfserverless/internal/wfbench"
)

// --- backoff & Retry-After -------------------------------------------------

func TestRetryDelayFullJitterBounds(t *testing.T) {
	m := fastManager(t, sharedfs.NewMem(), func(o *Options) {
		o.TimeScale = 1
		o.RetryBackoff = 1    // 1s base
		o.RetryBackoffMax = 8 // 8s cap
	})
	for attempt := 0; attempt < 10; attempt++ {
		ceiling := time.Duration(1<<uint(attempt)) * time.Second
		if ceiling > 8*time.Second {
			ceiling = 8 * time.Second
		}
		for i := 0; i < 50; i++ {
			d := m.retryDelay(attempt, 0)
			if d < 0 || d > ceiling {
				t.Fatalf("attempt %d: delay %v outside [0, %v]", attempt, d, ceiling)
			}
		}
	}
}

func TestRetryDelayJitterVaries(t *testing.T) {
	m := fastManager(t, sharedfs.NewMem(), func(o *Options) {
		o.TimeScale = 1
		o.RetryBackoff = 10
	})
	seen := make(map[time.Duration]bool)
	for i := 0; i < 64; i++ {
		seen[m.retryDelay(3, 0)] = true
	}
	if len(seen) < 8 {
		t.Fatalf("jitter produced only %d distinct delays out of 64 draws", len(seen))
	}
}

func TestRetryDelayHonorsRetryAfter(t *testing.T) {
	m := fastManager(t, sharedfs.NewMem(), func(o *Options) {
		o.TimeScale = 1
		o.RetryBackoff = 1
		o.RetryBackoffMax = 10
	})
	if got := m.retryDelay(0, 3*time.Second); got != 3*time.Second {
		t.Fatalf("Retry-After 3s -> %v, want exactly 3s", got)
	}
	// Server hints above the cap are clamped.
	if got := m.retryDelay(0, time.Hour); got != 10*time.Second {
		t.Fatalf("Retry-After 1h -> %v, want capped 10s", got)
	}
}

func TestRetryDelayZeroBaseKeepsRetriesImmediate(t *testing.T) {
	m := fastManager(t, sharedfs.NewMem(), nil) // RetryBackoff zero
	if got := m.retryDelay(5, 0); got != 0 {
		t.Fatalf("delay = %v, want 0 with no backoff configured", got)
	}
}

func TestParseRetryAfter(t *testing.T) {
	for in, want := range map[string]time.Duration{
		"":                     0,
		"2":                    2 * time.Second,
		"0.25":                 250 * time.Millisecond,
		"-1":                   0,
		"Wed, 21 Oct 2015 ...": 0, // HTTP-date form unsupported: fall back to backoff
	} {
		if got := ParseRetryAfter(in); got != want {
			t.Fatalf("ParseRetryAfter(%q) = %v, want %v", in, got, want)
		}
	}
}

// TestRetryAfterHonoredEndToEnd: a 429 with a fractional Retry-After
// must delay the next attempt by at least that hint.
func TestRetryAfterHonoredEndToEnd(t *testing.T) {
	var calls atomic.Int64
	var firstRetryGap atomic.Int64
	var lastAttempt atomic.Int64 // UnixNano
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		now := time.Now().UnixNano()
		if prev := lastAttempt.Swap(now); prev != 0 && firstRetryGap.Load() == 0 {
			firstRetryGap.Store(now - prev)
		}
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "0.1")
			http.Error(w, "overloaded", http.StatusTooManyRequests)
			return
		}
		json.NewEncoder(w).Encode(&wfbench.Response{Name: "x", OK: true})
	})
	srv := httptest.NewServer(h)
	defer srv.Close()

	m := fastManager(t, sharedfs.NewMem(), func(o *Options) {
		o.TimeScale = 1
		o.Retries = 2
		o.RetryBackoff = 0.001 // jittered backoff would be ~1ms; the hint must win
	})
	task := synthTask("ra", srv.URL, nil)
	rs := m.newResilience(time.Now())
	if _, attempts, err := m.invokeTask(context.Background(), task, rs); err != nil || attempts != 2 {
		t.Fatalf("invoke = attempts %d, err %v", attempts, err)
	}
	if gap := time.Duration(firstRetryGap.Load()); gap < 90*time.Millisecond {
		t.Fatalf("retry fired after %v, want >= ~100ms (Retry-After)", gap)
	}
}

// --- cancellation & task-timeout semantics ---------------------------------

// TestCancelDuringBackoffReturnsPromptly: a parent-context cancel in
// the middle of a long scheduled backoff must not sleep it out.
func TestCancelDuringBackoffReturnsPromptly(t *testing.T) {
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "30") // park the retry far away
		http.Error(w, "overloaded", http.StatusServiceUnavailable)
	})
	srv := httptest.NewServer(h)
	defer srv.Close()

	m := fastManager(t, sharedfs.NewMem(), func(o *Options) {
		o.TimeScale = 1
		o.Retries = 3
		o.RetryBackoff = 10
		o.RetryBackoffMax = 60
	})
	task := synthTask("cancelme", srv.URL, nil)
	rs := m.newResilience(time.Now())
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, _, err := m.invokeTask(ctx, task, rs)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancel took %v to surface, want prompt return", elapsed)
	}
}

// TestTaskTimeoutIsTerminal: when the task's own deadline expires the
// invocation stops with ErrTaskTimeout and no further retries, even
// though the failure class (5xx) is otherwise retriable.
func TestTaskTimeoutIsTerminal(t *testing.T) {
	var calls atomic.Int64
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		// Drain the body so the server notices the client abandoning
		// the request, then stall past the task deadline.
		io.Copy(io.Discard, r.Body)
		select {
		case <-r.Context().Done():
		case <-time.After(5 * time.Second):
		}
		http.Error(w, "too late", http.StatusInternalServerError)
	})
	srv := httptest.NewServer(h)
	defer srv.Close()

	m := fastManager(t, sharedfs.NewMem(), func(o *Options) {
		o.TimeScale = 1
		o.Retries = 5
		o.TaskTimeout = 0.05 // 50ms budget for the whole task
	})
	task := synthTask("stalled", srv.URL, nil)
	rs := m.newResilience(time.Now())
	start := time.Now()
	_, attempts, err := m.invokeTask(context.Background(), task, rs)
	if !errors.Is(err, ErrTaskTimeout) {
		t.Fatalf("err = %v, want ErrTaskTimeout", err)
	}
	if attempts != 1 {
		t.Fatalf("attempts = %d, want 1 (timeout must not be retried)", attempts)
	}
	if calls.Load() != 1 {
		t.Fatalf("server calls = %d, want 1", calls.Load())
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("task timeout surfaced after %v, want ~50ms", elapsed)
	}
}

// TestParentCancelBeatsTaskTimeout: when the parent context is
// cancelled the error must be ctx.Err(), not ErrTaskTimeout, even with
// a task deadline configured — the run was cancelled, the task did not
// time out.
func TestParentCancelBeatsTaskTimeout(t *testing.T) {
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		<-r.Context().Done()
	})
	srv := httptest.NewServer(h)
	defer srv.Close()

	m := fastManager(t, sharedfs.NewMem(), func(o *Options) {
		o.TimeScale = 1
		o.Retries = 2
		o.TaskTimeout = 30
	})
	task := synthTask("cancelled", srv.URL, nil)
	rs := m.newResilience(time.Now())
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	_, _, err := m.invokeTask(ctx, task, rs)
	if !errors.Is(err, context.Canceled) || errors.Is(err, ErrTaskTimeout) {
		t.Fatalf("err = %v, want context.Canceled and not ErrTaskTimeout", err)
	}
}

// TestTaskTimeoutDuringBackoff: the task deadline expiring while the
// layer sleeps between attempts is terminal too.
func TestTaskTimeoutDuringBackoff(t *testing.T) {
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "30")
		http.Error(w, "overloaded", http.StatusServiceUnavailable)
	})
	srv := httptest.NewServer(h)
	defer srv.Close()

	m := fastManager(t, sharedfs.NewMem(), func(o *Options) {
		o.TimeScale = 1
		o.Retries = 3
		o.RetryBackoff = 10
		o.RetryBackoffMax = 60
		o.TaskTimeout = 0.05
	})
	task := synthTask("bo", srv.URL, nil)
	rs := m.newResilience(time.Now())
	start := time.Now()
	_, _, err := m.invokeTask(context.Background(), task, rs)
	if !errors.Is(err, ErrTaskTimeout) {
		t.Fatalf("err = %v, want ErrTaskTimeout", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("deadline surfaced after %v, want ~50ms", elapsed)
	}
}

// --- circuit breaker -------------------------------------------------------

func breakerManager(t *testing.T, mutate func(*Options)) *Manager {
	t.Helper()
	return fastManager(t, sharedfs.NewMem(), func(o *Options) {
		o.TimeScale = 1
		o.Breaker = BreakerOptions{
			Enabled:          true,
			Window:           10,
			FailureThreshold: 0.5,
			MinSamples:       4,
			Cooldown:         0.05, // 50ms
			HalfOpenProbes:   1,
		}
		if mutate != nil {
			mutate(o)
		}
	})
}

func TestBreakerOpensAtThresholdAndRecovers(t *testing.T) {
	m := breakerManager(t, nil)
	rs := m.newResilience(time.Now())
	br := rs.breakerFor("http://ep")

	// Four straight failures: rate 1.0 over >= MinSamples -> open.
	for i := 0; i < 4; i++ {
		if ok, _ := br.allow(); !ok {
			t.Fatalf("attempt %d rejected while closed", i)
		}
		br.record(outcomeFailure)
	}
	if got := br.State(); got != BreakerOpen {
		t.Fatalf("state = %s, want open", got)
	}
	if ok, wait := br.allow(); ok || wait <= 0 {
		t.Fatalf("open breaker admitted an attempt (ok=%v wait=%v)", ok, wait)
	}

	// After the cooldown a single probe is admitted; concurrent
	// attempts stay shed.
	time.Sleep(60 * time.Millisecond)
	if ok, _ := br.allow(); !ok {
		t.Fatal("half-open breaker refused the probe")
	}
	if got := br.State(); got != BreakerHalfOpen {
		t.Fatalf("state = %s, want half-open", got)
	}
	if ok, _ := br.allow(); ok {
		t.Fatal("half-open breaker admitted a second concurrent probe")
	}
	br.record(outcomeSuccess)
	if got := br.State(); got != BreakerClosed {
		t.Fatalf("state after successful probe = %s, want closed", got)
	}

	transitions := rs.take()
	var seq []string
	for _, tr := range transitions {
		seq = append(seq, tr.From+">"+tr.To)
	}
	want := []string{"closed>open", "open>half-open", "half-open>closed"}
	if strings.Join(seq, " ") != strings.Join(want, " ") {
		t.Fatalf("transitions = %v, want %v", seq, want)
	}
	if transitions[0].FailureRate < 0.5 {
		t.Fatalf("opening transition failure rate = %v, want >= threshold", transitions[0].FailureRate)
	}
}

func TestBreakerReopensOnFailedProbe(t *testing.T) {
	m := breakerManager(t, nil)
	rs := m.newResilience(time.Now())
	br := rs.breakerFor("http://ep")
	for i := 0; i < 4; i++ {
		br.allow()
		br.record(outcomeFailure)
	}
	time.Sleep(60 * time.Millisecond)
	if ok, _ := br.allow(); !ok {
		t.Fatal("probe refused")
	}
	br.record(outcomeFailure)
	if got := br.State(); got != BreakerOpen {
		t.Fatalf("state after failed probe = %s, want open", got)
	}
}

func TestBreakerIgnoresClientSideFailures(t *testing.T) {
	m := breakerManager(t, nil)
	rs := m.newResilience(time.Now())
	br := rs.breakerFor("http://ep")
	// Aborted and success outcomes never open the breaker.
	for i := 0; i < 20; i++ {
		br.allow()
		br.record(outcomeAborted)
	}
	for i := 0; i < 20; i++ {
		br.allow()
		br.record(outcomeSuccess)
	}
	if got := br.State(); got != BreakerClosed {
		t.Fatalf("state = %s, want closed", got)
	}
	if trs := rs.take(); len(trs) != 0 {
		t.Fatalf("transitions = %v, want none", trs)
	}
}

func TestBreakerSlidingWindowEvictsOldFailures(t *testing.T) {
	m := breakerManager(t, func(o *Options) {
		o.Breaker.Window = 4
		o.Breaker.MinSamples = 4
		o.Breaker.FailureThreshold = 0.75
	})
	rs := m.newResilience(time.Now())
	br := rs.breakerFor("http://ep")
	// Two failures then a long run of successes: the failures age out
	// of the 4-slot window, so the breaker must stay closed.
	br.allow()
	br.record(outcomeFailure)
	br.allow()
	br.record(outcomeFailure)
	for i := 0; i < 8; i++ {
		br.allow()
		br.record(outcomeSuccess)
	}
	br.allow()
	br.record(outcomeFailure)
	if got := br.State(); got != BreakerClosed {
		t.Fatalf("state = %s, want closed (window evicted old failures)", got)
	}
}

// TestBreakerShedsLoadOnDeadEndpoint: with the breaker on, a dead
// endpoint must absorb far fewer HTTP attempts than Retries × tasks.
func TestBreakerShedsLoadOnDeadEndpoint(t *testing.T) {
	var calls atomic.Int64
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "dead", http.StatusInternalServerError)
	})
	srv := httptest.NewServer(h)
	defer srv.Close()

	drive := sharedfs.NewMem()
	m := fastManager(t, drive, func(o *Options) {
		o.ContinueOnError = true
		o.Retries = 5
		o.Breaker = BreakerOptions{
			Enabled:          true,
			Window:           8,
			FailureThreshold: 0.5,
			MinSamples:       4,
			Cooldown:         1000, // never half-opens within the test
		}
	})
	w := translated(t, "seismology", 40, srv.URL)
	res, err := m.Run(context.Background(), w)
	if err == nil {
		t.Fatal("dead endpoint reported success")
	}
	// Without the breaker this run issues (Retries+1) × tasks ≈ 240+
	// attempts; the breaker must cut that hard once it opens.
	budget := int64(w.Len() * 3)
	if got := calls.Load(); got > budget {
		t.Fatalf("dead endpoint absorbed %d HTTP attempts, want <= %d (load shedding)", got, budget)
	}
	if len(res.Breakers) == 0 || res.Breakers[0].To != BreakerOpen {
		t.Fatalf("breaker transitions = %+v, want an opening transition", res.Breakers)
	}
	for _, name := range res.Failed {
		tr := res.Tasks[name]
		if tr.Err != nil && errors.Is(tr.Err, ErrCircuitOpen) {
			return // at least one task was shed by the breaker
		}
	}
	t.Fatal("no task error carries ErrCircuitOpen")
}

// TestBreakerTransitionsVisibleInTrace runs a deterministic
// fail-then-heal endpoint in both scheduling modes and checks the full
// open -> half-open -> closed cycle lands in the Result and the trace.
func TestBreakerTransitionsVisibleInTrace(t *testing.T) {
	for _, mode := range []Scheduling{SchedulePhases, ScheduleDependency} {
		t.Run(mode.String(), func(t *testing.T) {
			drive := sharedfs.NewMem()
			var calls atomic.Int64
			h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				var req wfbench.Request
				if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
					http.Error(w, err.Error(), http.StatusBadRequest)
					return
				}
				// The first six requests fail hard (opening the
				// breaker), then the endpoint heals for good.
				if calls.Add(1) <= 6 {
					http.Error(w, "warming up", http.StatusInternalServerError)
					return
				}
				for name, size := range req.Out {
					drive.WriteFile(name, size)
				}
				json.NewEncoder(w).Encode(&wfbench.Response{Name: req.Name, OK: true})
			})
			srv := httptest.NewServer(h)
			defer srv.Close()

			m := fastManager(t, drive, func(o *Options) {
				o.Scheduling = mode
				o.TimeScale = 1
				o.PhaseDelay = 0.001
				o.InputWait = 2
				o.Retries = 30
				o.RetryBackoff = 0.001
				o.RetryBackoffMax = 0.05
				o.Breaker = BreakerOptions{
					Enabled:          true,
					Window:           6,
					FailureThreshold: 0.5,
					MinSamples:       3,
					Cooldown:         0.02,
				}
			})
			w := translated(t, "blast", 8, srv.URL)
			res, err := m.Run(context.Background(), w)
			if err != nil {
				t.Fatalf("run did not recover through the breaker: %v", err)
			}
			var opened, halfOpened, closed bool
			for _, bt := range res.Breakers {
				switch bt.To {
				case BreakerOpen:
					opened = true
				case BreakerHalfOpen:
					halfOpened = true
				case BreakerClosed:
					closed = true
				}
			}
			if !opened || !halfOpened || !closed {
				t.Fatalf("transitions %+v missing a state (open=%v half=%v closed=%v)",
					res.Breakers, opened, halfOpened, closed)
			}
			trace := TraceOf(res)
			if len(trace.Breakers) != len(res.Breakers) {
				t.Fatalf("trace has %d breaker events, result %d", len(trace.Breakers), len(res.Breakers))
			}
			var retried bool
			for _, ev := range trace.Events {
				if ev.Attempts > 1 {
					retried = true
				}
			}
			if !retried {
				t.Fatal("no trace event records retries despite injected failures")
			}
		})
	}
}

// --- pooled request buffer regression --------------------------------------

// earlyResponder is an http.RoundTripper exercising the documented
// transport contract that broke the old pooled-buffer handling: "the
// Request's Body ... may be closed asynchronously after RoundTrip
// returns". It reads a prefix of the request body, hands back the
// response immediately, and only later — on a background goroutine —
// drains the rest, verifies the body still decodes as the request named
// in the URL, and closes it. The real transport behaves this way when a
// server responds before consuming the upload.
type earlyResponder struct {
	mu         sync.Mutex
	mismatches []string
	wg         sync.WaitGroup
}

func (tr *earlyResponder) flag(format string, args ...any) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	tr.mismatches = append(tr.mismatches, fmt.Sprintf(format, args...))
}

func (tr *earlyResponder) RoundTrip(req *http.Request) (*http.Response, error) {
	want := strings.TrimPrefix(req.URL.Path, "/task/")
	head := make([]byte, 4096)
	n, err := io.ReadFull(req.Body, head)
	if err != nil {
		return nil, err
	}
	tr.wg.Add(1)
	go func() {
		defer tr.wg.Done()
		defer req.Body.Close() // the transport's async close: only now may the buffer be recycled
		time.Sleep(2 * time.Millisecond)
		rest, err := io.ReadAll(req.Body)
		if err != nil {
			tr.flag("%s: drain body: %v", want, err)
			return
		}
		var wreq wfbench.Request
		if err := json.Unmarshal(append(head[:n:n], rest...), &wreq); err != nil {
			tr.flag("%s: body corrupted mid-flight: %v", want, err)
			return
		}
		if wreq.Name != want {
			tr.flag("%s: body now carries request %q", want, wreq.Name)
		}
	}()
	respJSON, _ := json.Marshal(&wfbench.Response{Name: want, OK: true})
	return &http.Response{
		StatusCode: http.StatusOK,
		Header:     make(http.Header),
		Body:       io.NopCloser(bytes.NewReader(respJSON)),
	}, nil
}

// TestPooledBufferSurvivesEarlyResponse reproduces the request-buffer
// race: when the (real or simulated) transport returns from Do while
// the request body is still being consumed, recycling the pooled encode
// buffer at Do-return lets the next invocation scribble over bytes
// still on their way to the wire. The pool must only get the buffer
// back once the transport closes the body. Run under -race: the decode
// check below catches the corruption, the race detector the unsynchron-
// ized access.
func TestPooledBufferSurvivesEarlyResponse(t *testing.T) {
	// Bodies must outgrow the prefix the responder reads up front so a
	// recycled buffer has bytes left in flight.
	filler := make([]string, 4096)
	for i := range filler {
		filler[i] = fmt.Sprintf("input_file_%08d_abcdefghijklmnopqrstuvwxyz.dat", i)
	}

	tr := &earlyResponder{}
	m := fastManager(t, sharedfs.NewMem(), func(o *Options) {
		o.TimeScale = 1
		o.Client = &http.Client{Transport: tr}
	})
	rs := m.newResilience(time.Now())
	// Back-to-back invocations on one goroutine: with eager recycling
	// the pool hands invocation i+1 the exact buffer invocation i is
	// still uploading from.
	for i := 0; i < 8; i++ {
		name := fmt.Sprintf("task-%02d", i)
		task := synthTask(name, "http://fake/task/"+name, filler)
		if _, _, err := m.invokeTask(context.Background(), task, rs); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	tr.wg.Wait()
	if len(tr.mismatches) != 0 {
		t.Fatalf("in-flight request bodies corrupted by buffer reuse:\n%s",
			strings.Join(tr.mismatches, "\n"))
	}
}

// --- fault-injection end-to-end + goroutine accounting ---------------------

// TestRunSurvivesInjectedFaultsBothModes drives a workflow through an
// endpoint injecting 500s, 429s, and latency spikes (error rate ≥ 0.3)
// and requires both scheduling modes to complete via retries with the
// breaker armed — and to leak no goroutines.
func TestRunSurvivesInjectedFaultsBothModes(t *testing.T) {
	for _, mode := range []Scheduling{SchedulePhases, ScheduleDependency} {
		t.Run(mode.String(), func(t *testing.T) {
			before := runtime.NumGoroutine()
			drive := sharedfs.NewMem()
			bench, err := wfbench.New(wfbench.Config{Drive: drive, TimeScale: 0.002})
			if err != nil {
				t.Fatal(err)
			}
			svc, err := wfbench.NewService(bench, 16)
			if err != nil {
				t.Fatal(err)
			}
			inj, err := wfbench.NewInjector(svc, wfbench.FaultProfile{
				ErrorRate:     0.25,
				RejectRate:    0.1,
				RetryAfter:    0.005,
				LatencyRate:   0.2,
				Latency:       3 * time.Millisecond,
				LatencyJitter: 2 * time.Millisecond,
				Seed:          7,
			})
			if err != nil {
				t.Fatal(err)
			}
			srv := httptest.NewServer(inj)
			defer srv.Close()

			m := fastManager(t, drive, func(o *Options) {
				o.Scheduling = mode
				o.Retries = 10
				o.RetryBackoff = 0.5
				o.RetryBackoffMax = 4
				o.TaskTimeout = 120
				o.Breaker = BreakerOptions{
					Enabled:          true,
					FailureThreshold: 0.95, // armed, but the fault mix must not trip it
					MinSamples:       10,
				}
			})
			w := translated(t, "blast", 24, srv.URL)
			res, err := m.Run(context.Background(), w)
			if err != nil {
				t.Fatalf("run did not survive injected faults: %v", err)
			}
			if len(res.Failed) != 0 {
				t.Fatalf("failed tasks: %v", res.Failed)
			}
			stats := inj.Stats()
			if stats.Errors == 0 && stats.Rejects == 0 {
				t.Fatalf("injector fired no faults: %+v", stats)
			}
			var attempts int
			for name, tr := range res.Tasks {
				if name == HeaderName || name == TailName {
					continue
				}
				attempts += tr.Attempts
			}
			if attempts <= w.Len() {
				t.Fatalf("attempts = %d, want > %d (retries must have happened)", attempts, w.Len())
			}

			// Tear down the endpoint, then require the run to have left
			// no goroutines behind (workers, retry timers, watch
			// subscriptions). The explicit close also reaps keep-alive
			// connection handlers so only wfm leaks would remain.
			srv.Close()
			svc.Close()
			deadline := time.Now().Add(2 * time.Second)
			for time.Now().Before(deadline) {
				if runtime.NumGoroutine() <= before {
					return
				}
				time.Sleep(10 * time.Millisecond)
			}
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines: before=%d now=%d\n%s",
				before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		})
	}
}

// TestContinueOnErrorRecordsInputWarning: with ContinueOnError, a phase
// whose inputs never appear must leave a warning in the Result (and the
// trace), not silently dispatch doomed functions.
func TestContinueOnErrorRecordsInputWarning(t *testing.T) {
	drive := sharedfs.NewMem()
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var req wfbench.Request
		json.NewDecoder(r.Body).Decode(&req)
		if strings.HasPrefix(req.Name, "split_fasta") {
			// Root "succeeds" without writing its outputs, so phase 2's
			// inputs never reach the drive.
			json.NewEncoder(w).Encode(&wfbench.Response{Name: req.Name, OK: true})
			return
		}
		for name, size := range req.Out {
			drive.WriteFile(name, size)
		}
		json.NewEncoder(w).Encode(&wfbench.Response{Name: req.Name, OK: true})
	})
	srv := httptest.NewServer(h)
	defer srv.Close()

	m := fastManager(t, drive, func(o *Options) {
		o.ContinueOnError = true
		o.InputWait = 0.2
	})
	w := translated(t, "blast", 8, srv.URL)
	res, err := m.Run(context.Background(), w)
	// The stub serves phase-2 tasks even without their inputs, so the
	// run itself presses through — exactly the case where the missed
	// input wait used to vanish without a trace.
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(res.Warnings) == 0 {
		t.Fatalf("no warning recorded for the missed inputs; warnings = %v", res.Warnings)
	}
	if !strings.Contains(res.Warnings[0], "inputs missing") {
		t.Fatalf("warning %q does not name the missing inputs", res.Warnings[0])
	}
	trace := TraceOf(res)
	if len(trace.Warnings) != len(res.Warnings) {
		t.Fatalf("trace warnings = %v, want %v", trace.Warnings, res.Warnings)
	}
}

// TestNewRejectsBadResilienceOptions covers option validation.
func TestNewRejectsBadResilienceOptions(t *testing.T) {
	drive := sharedfs.NewMem()
	bad := []Options{
		{Drive: drive, Retries: -1},
		{Drive: drive, RetryBackoff: -1},
		{Drive: drive, RetryBackoffMax: -0.5},
		{Drive: drive, TaskTimeout: -2},
		{Drive: drive, Breaker: BreakerOptions{Enabled: true, FailureThreshold: 1.5}},
		{Drive: drive, Breaker: BreakerOptions{Enabled: true, Window: -1}},
		{Drive: drive, Breaker: BreakerOptions{Enabled: true, Cooldown: -1}},
	}
	for i, o := range bad {
		if _, err := New(o); err == nil {
			t.Fatalf("case %d: invalid options accepted: %+v", i, o)
		}
	}
}
