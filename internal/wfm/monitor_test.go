package wfm

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"wfserverless/internal/sharedfs"
)

// TestMonitorWriteMetricsGolden pins one exposition line per counter and
// gauge the monitor owns, with deterministic values fed through the
// real hooks.
func TestMonitorWriteMetricsGolden(t *testing.T) {
	mo := NewMonitor()
	mo.runStarted("demo", ScheduleDependency, 7)
	mo.taskReady(3)
	mo.taskStarted()                    // ready 2, running 1
	mo.taskFinished(time.Second, false) // done 1
	mo.taskStarted()                    // ready 1, running 1
	mo.taskFinished(time.Second, true)  // failed 1
	mo.taskSkipped()                    // failed 2
	mo.retried()
	mo.retried()
	mo.breakerChanged(BreakerClosed, BreakerOpen)
	mo.memoProbed(4, 3)
	mo.stragglerFlagged()
	mo.stragglerFlagged()
	mo.stragglerResolved()
	mo.speculated()
	mo.speculationWon()

	var sb strings.Builder
	if err := mo.WriteMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	body := sb.String()
	for _, line := range []string{
		`wfm_workflow_info{workflow="demo",scheduling="dependency"} 1`,
		"wfm_tasks_total 7",
		"wfm_tasks_ready 1",
		"wfm_tasks_running 0",
		"wfm_tasks_done_total 1",
		"wfm_tasks_failed_total 2",
		"wfm_invocation_retries_total 2",
		"wfm_breakers_open 1",
		"wfm_memo_hits_total 4",
		"wfm_memo_misses_total 3",
		"wfm_stragglers 1",
		"wfm_stragglers_flagged_total 2",
		"wfm_speculative_retries_total 1",
		"wfm_speculative_wins_total 1",
		"wfm_invocation_seconds_count 2",
	} {
		if !strings.Contains(body, line+"\n") {
			t.Fatalf("exposition missing %q:\n%s", line, body)
		}
	}
	// Exposition hygiene: every sample line's family carries HELP/TYPE.
	for _, fam := range []string{"wfm_stragglers", "wfm_speculative_retries_total", "wfm_speculative_wins_total"} {
		if !strings.Contains(body, "# TYPE "+fam+" ") || !strings.Contains(body, "# HELP "+fam+" ") {
			t.Fatalf("family %s lacks HELP/TYPE metadata", fam)
		}
	}
}

// TestMonitorNilWriteMetrics pins the nil-receiver contract: a nil
// monitor writes nothing and returns nil, instead of emitting a page of
// zero-valued series for a plane that is off.
func TestMonitorNilWriteMetrics(t *testing.T) {
	var mo *Monitor
	var sb strings.Builder
	if err := mo.WriteMetrics(&sb); err != nil {
		t.Fatalf("nil WriteMetrics error: %v", err)
	}
	if sb.Len() != 0 {
		t.Fatalf("nil monitor wrote %d bytes:\n%s", sb.Len(), sb.String())
	}
	// The rest of the nil surface must be no-ops too.
	mo.runStarted("x", SchedulePhases, 1)
	mo.taskReady(1)
	mo.taskStarted()
	mo.taskFinished(0, false)
	mo.taskSkipped()
	mo.retried()
	mo.memoProbed(1, 1)
	mo.breakerChanged(BreakerClosed, BreakerOpen)
	mo.stragglerFlagged()
	mo.stragglerResolved()
	mo.speculated()
	mo.speculationWon()
	if s := mo.Snapshot(); s != (Snapshot{}) {
		t.Fatalf("nil snapshot = %+v", s)
	}
	if mo.Latency() != nil {
		t.Fatal("nil monitor returned a histogram")
	}
}

// TestMonitorCumulativeAcrossRuns pins Prometheus counter semantics: a
// monitor outliving two runs accumulates counters, while runStarted only
// swaps the identity gauge.
func TestMonitorCumulativeAcrossRuns(t *testing.T) {
	drive := sharedfs.NewMem()
	srv, _, _ := stubService(t, drive, time.Millisecond)
	mo := NewMonitor()
	m := fastManager(t, drive, func(o *Options) {
		o.Monitor = mo
		o.Scheduling = ScheduleDependency
	})
	for i := 0; i < 2; i++ {
		if _, err := m.Run(context.Background(), fanoutWorkflow(t, 4, srv.URL)); err != nil {
			t.Fatal(err)
		}
	}
	s := mo.Snapshot()
	if s.Done != 12 { // 2 runs × (root + 4 + sink)
		t.Fatalf("done = %d after two runs, want 12 (cumulative)", s.Done)
	}
	if s.Workflow != "fanout-4" || s.Total != 6 {
		t.Fatalf("identity gauge: %+v", s)
	}
	if s.Ready != 0 || s.Running != 0 {
		t.Fatalf("gauges did not return to zero: %+v", s)
	}
}

// TestMonitorConcurrentHooks hammers every hook from racing goroutines
// while readers snapshot and scrape; run under -race this is the
// data-race proof for the whole monitor surface.
func TestMonitorConcurrentHooks(t *testing.T) {
	mo := NewMonitor()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				mo.taskReady(1)
				mo.taskStarted()
				mo.taskFinished(time.Millisecond, i%5 == 0)
				mo.retried()
				mo.breakerChanged(BreakerClosed, BreakerOpen)
				mo.breakerChanged(BreakerOpen, BreakerClosed)
				mo.memoProbed(1, 1)
				mo.stragglerFlagged()
				mo.stragglerResolved()
				mo.speculated()
				mo.speculationWon()
				if i%50 == 0 {
					mo.runStarted("race", SchedulePhases, i)
				}
			}
		}(g)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			var sb strings.Builder
			if err := mo.WriteMetrics(&sb); err != nil {
				t.Error(err)
				return
			}
			mo.Snapshot()
		}
	}()
	wg.Wait()
	<-done
	s := mo.Snapshot()
	if s.Retries != 8*300 || s.SpecWins != 8*300 {
		t.Fatalf("lost updates: %+v", s)
	}
	if s.Stragglers != 0 || s.OpenBreak != 0 {
		t.Fatalf("gauges unbalanced: %+v", s)
	}
}
