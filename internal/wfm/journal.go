package wfm

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"slices"
	"sort"
	"sync"
	"sync/atomic"

	"wfserverless/internal/journal"
	"wfserverless/internal/wfformat"
)

// Journal record kinds, layered on the opaque (kind, payload) records of
// internal/journal. Payloads are little-endian varint encodings keyed by
// the CSR's interned int32 task IDs — stable across processes because
// Compile interns names in sorted order and the run header's fingerprint
// pins the workflow content.
const (
	// recRunHeader opens a run: format version, workflow fingerprint,
	// options hash, scheduling mode, task count, workflow name, unix
	// start time.
	recRunHeader uint8 = 1
	// recTaskStarted marks one execution attempt of a task: id, attempt
	// number (1-based, counted across process lifetimes).
	recTaskStarted uint8 = 2
	// recTaskCompleted marks a successful task: id plus its output file
	// names and sizes, so resume can verify the products still exist.
	recTaskCompleted uint8 = 3
	// recTaskFailed marks a terminal failure: id, flags (bit 0 = skipped
	// because an ancestor failed), error message.
	recTaskFailed uint8 = 4
	// recRunEnd closes a run attempt: status byte (0 ok, 1 failed,
	// 2 cancelled), failed-task count.
	recRunEnd uint8 = 5
	// recRunResumed marks a resume point: recorded-completed, verified
	// (outputs present, invocation skipped), and re-executed (outputs
	// vanished) counts.
	recRunResumed uint8 = 6
	// recTaskMemoized marks a task seeded as completed from the memo
	// cache (Options.Memoize): same payload as recTaskCompleted — id
	// plus output names and sizes — and treated identically on resume,
	// so a crashed memoized run never re-probes its way into
	// re-invoking a task this run already accounted for.
	recTaskMemoized uint8 = 7
)

// journalRunHeaderVersion is bumped on incompatible payload changes.
const journalRunHeaderVersion = 1

// runHeader is the decoded recRunHeader payload.
type runHeader struct {
	Version     int
	Fingerprint wfformat.Hash
	OptionsHash uint64
	Scheduling  Scheduling
	TaskCount   int
	Workflow    string
	StartedUnix int64
}

func (h *runHeader) encode() []byte {
	b := make([]byte, 0, 64+len(h.Workflow))
	b = append(b, byte(h.Version))
	b = append(b, h.Fingerprint[:]...)
	b = binary.AppendUvarint(b, h.OptionsHash)
	b = append(b, byte(h.Scheduling))
	b = binary.AppendUvarint(b, uint64(h.TaskCount))
	b = appendString(b, h.Workflow)
	b = binary.AppendVarint(b, h.StartedUnix)
	return b
}

func decodeRunHeader(data []byte) (*runHeader, error) {
	d := payload{b: data}
	h := &runHeader{Version: int(d.byte())}
	if h.Version != journalRunHeaderVersion {
		return nil, fmt.Errorf("wfm: journal header version %d (want %d)", h.Version, journalRunHeaderVersion)
	}
	copy(h.Fingerprint[:], d.bytes(len(h.Fingerprint)))
	h.OptionsHash = d.uvarint()
	h.Scheduling = Scheduling(d.byte())
	h.TaskCount = int(d.uvarint())
	h.Workflow = d.string()
	h.StartedUnix = d.varint()
	if d.err != nil {
		return nil, fmt.Errorf("wfm: corrupt journal header: %w", d.err)
	}
	return h, nil
}

// optionsHash digests the options that change a run's semantics — a
// resumed run with a different hash still executes (resume validates
// content via the fingerprint, not configuration), but the mismatch is
// surfaced as a Result warning.
func (o *Options) optionsHash() uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "s=%d c=%t k=%t r=%d t=%g i=%g p=%g m=%t",
		o.Scheduling, o.ContinueOnError, o.SkipStageInputs,
		o.Retries, o.TaskTimeout, o.InputWait, o.PhaseDelay,
		o.Memoize != nil)
	return h.Sum64()
}

// taskOutput is one recorded output product of a completed task.
type taskOutput struct {
	Name string
	Size int64
}

// The task-lifecycle encoders append into a caller-owned buffer — the
// run's hot path reuses runJournal.scratch so journaling a task costs
// zero heap allocations in steady state.

func appendTaskStarted(b []byte, id int32, attempt int) []byte {
	b = binary.AppendUvarint(b, uint64(id))
	b = binary.AppendUvarint(b, uint64(attempt))
	return b
}

// appendTaskCompleted encodes the completion straight off the task's
// declared output files, skipping any intermediate slice.
func appendTaskCompleted(b []byte, id int32, t *wfformat.Task) []byte {
	b = binary.AppendUvarint(b, uint64(id))
	n := 0
	for _, f := range t.Files {
		if f.Link == wfformat.LinkOutput {
			n++
		}
	}
	b = binary.AppendUvarint(b, uint64(n))
	for _, f := range t.Files {
		if f.Link == wfformat.LinkOutput {
			b = appendString(b, f.Name)
			b = binary.AppendUvarint(b, uint64(f.SizeInBytes))
		}
	}
	return b
}

func appendTaskFailed(b []byte, id int32, skipped bool, msg string) []byte {
	b = binary.AppendUvarint(b, uint64(id))
	var flags byte
	if skipped {
		flags |= 1
	}
	b = append(b, flags)
	b = appendString(b, msg)
	return b
}

func encodeRunEnd(status byte, failed int) []byte {
	b := make([]byte, 0, 12)
	b = append(b, status)
	b = binary.AppendUvarint(b, uint64(failed))
	return b
}

func encodeRunResumed(recorded, verified, reexecuted int) []byte {
	b := make([]byte, 0, 16)
	b = binary.AppendUvarint(b, uint64(recorded))
	b = binary.AppendUvarint(b, uint64(verified))
	b = binary.AppendUvarint(b, uint64(reexecuted))
	return b
}

// Run-end status bytes.
const (
	runEndOK        byte = 0
	runEndFailed    byte = 1
	runEndCancelled byte = 2
)

// payload is a cursor over a record payload with sticky-error decoding.
type payload struct {
	b   []byte
	err error
}

func (d *payload) fail() {
	if d.err == nil {
		d.err = errors.New("truncated payload")
	}
}

func (d *payload) byte() byte {
	if d.err != nil || len(d.b) < 1 {
		d.fail()
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}

func (d *payload) bytes(n int) []byte {
	if d.err != nil || len(d.b) < n {
		d.fail()
		return make([]byte, n)
	}
	v := d.b[:n]
	d.b = d.b[n:]
	return v
}

func (d *payload) uvarint() uint64 {
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.fail()
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *payload) varint() int64 {
	v, n := binary.Varint(d.b)
	if n <= 0 {
		d.fail()
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *payload) string() string {
	n := d.uvarint()
	if d.err != nil || uint64(len(d.b)) < n {
		d.fail()
		return ""
	}
	v := string(d.b[:n])
	d.b = d.b[n:]
	return v
}

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// runJournal is the manager's nil-safe writer over the journal: a nil
// receiver makes every call a no-op, so the hot path carries no
// journal-enabled branches (the same pattern as Monitor). Append errors
// are sticky and surfaced once at run end as a Result warning — a sick
// disk must not take down an otherwise healthy workflow, but the
// operator has to learn the journal is no longer protecting the run.
type runJournal struct {
	j       *journal.Journal
	mu      sync.Mutex
	failed  error
	started []int32 // execution attempts per id so far, replay-seeded
	scratch []byte  // encode buffer, reused under mu — Append copies it
}

func newRunJournal(j *journal.Journal, n int, priorStarted []int32) *runJournal {
	if j == nil {
		return nil
	}
	started := make([]int32, n)
	copy(started, priorStarted)
	return &runJournal{j: j, started: started, scratch: make([]byte, 0, 256)}
}

func (rj *runJournal) append(kind uint8, data []byte) {
	rj.mu.Lock()
	rj.appendLocked(kind, data)
	rj.mu.Unlock()
}

func (rj *runJournal) appendLocked(kind uint8, data []byte) {
	if err := rj.j.Append(kind, data); err != nil && rj.failed == nil {
		rj.failed = err
	}
}

// taskStarted records one execution attempt and returns its 1-based
// attempt number (counted across process lifetimes via the replay seed).
func (rj *runJournal) taskStarted(id int32) int {
	if rj == nil {
		return 0
	}
	rj.mu.Lock()
	rj.started[id]++
	attempt := int(rj.started[id])
	rj.scratch = appendTaskStarted(rj.scratch[:0], id, attempt)
	rj.appendLocked(recTaskStarted, rj.scratch)
	rj.mu.Unlock()
	return attempt
}

func (rj *runJournal) taskCompleted(id int32, t *wfformat.Task) {
	if rj == nil {
		return
	}
	rj.mu.Lock()
	rj.scratch = appendTaskCompleted(rj.scratch[:0], id, t)
	rj.appendLocked(recTaskCompleted, rj.scratch)
	rj.mu.Unlock()
}

// taskMemoized records a cache-hit task; the payload matches
// recTaskCompleted so recovery treats both as completions.
func (rj *runJournal) taskMemoized(id int32, t *wfformat.Task) {
	if rj == nil {
		return
	}
	rj.mu.Lock()
	rj.scratch = appendTaskCompleted(rj.scratch[:0], id, t)
	rj.appendLocked(recTaskMemoized, rj.scratch)
	rj.mu.Unlock()
}

func (rj *runJournal) taskFailed(id int32, skipped bool, err error) {
	if rj == nil {
		return
	}
	msg := ""
	if err != nil {
		msg = err.Error()
	}
	rj.mu.Lock()
	rj.scratch = appendTaskFailed(rj.scratch[:0], id, skipped, msg)
	rj.appendLocked(recTaskFailed, rj.scratch)
	rj.mu.Unlock()
}

func (rj *runJournal) runEnd(status byte, failed int) {
	if rj == nil {
		return
	}
	rj.append(recRunEnd, encodeRunEnd(status, failed))
	rj.j.Sync()
}

// takeError reports the first append failure, if any.
func (rj *runJournal) takeError() error {
	if rj == nil {
		return nil
	}
	rj.mu.Lock()
	defer rj.mu.Unlock()
	return rj.failed
}

// ResumeReport summarizes what a resumed run recovered from its journal.
type ResumeReport struct {
	// RecordedCompleted is how many tasks the journal recorded as
	// completed before the crash.
	RecordedCompleted int
	// SkippedInvocations is how many of those were verified (outputs
	// still on the shared drive) and therefore never re-invoked.
	SkippedInvocations int
	// Reexecuted is how many recorded-completed tasks had to run again
	// because their outputs had vanished from the drive.
	Reexecuted int
	// PriorAttempts is the total number of execution attempts the
	// journal recorded before this resume.
	PriorAttempts int
	// Torn reports that the journal ended in a torn record — the
	// signature of a writer killed mid-append. Harmless: the torn tail
	// was discarded and its tasks simply re-run.
	Torn bool
}

// recovery is the decoded resume state handed to the run loops.
type recovery struct {
	header   *runHeader
	doneIDs  []int32 // verified-completed ids, ascending
	doneSet  []bool  // by id
	attempts []int32 // prior started counts by id
	outs     map[int32][]taskOutput
	report   ResumeReport
}

// runState threads journaling, resume, and memoization context through
// both run loops. A fresh, unjournaled, unmemoized run carries an
// all-nil state; every accessor tolerates that.
type runState struct {
	rj        *runJournal
	rec       *recovery
	memo      *memoState
	health    *healthState
	completed atomic.Int64
	afterDone func(int)
}

// recovered reports whether id was restored from the journal and must
// not be re-invoked.
func (st *runState) recoveredID(id int32) bool {
	return st.rec != nil && st.rec.doneSet[id]
}

// memoizedID reports whether id was seeded from the memo cache.
func (st *runState) memoizedID(id int32) bool {
	return st.memo != nil && st.memo.hitSet[id]
}

// seededID reports whether id starts the run already completed — by
// journal recovery or by a memo-cache hit — and must not be invoked.
func (st *runState) seededID(id int32) bool {
	return st.recoveredID(id) || st.memoizedID(id)
}

// hasSeeds reports whether any task is pre-completed.
func (st *runState) hasSeeds() bool {
	return (st.rec != nil && len(st.rec.doneIDs) > 0) ||
		(st.memo != nil && len(st.memo.hitIDs) > 0)
}

// seedIDs merges the recovered and memoized ID sets, ascending. The
// sets are disjoint (the memo probe skips journal-recovered tasks) and
// each is already sorted, so this is a plain two-way merge.
func (st *runState) seedIDs() []int32 {
	var a, b []int32
	if st.rec != nil {
		a = st.rec.doneIDs
	}
	if st.memo != nil {
		b = st.memo.hitIDs
	}
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	out := make([]int32, 0, len(a)+len(b))
	for len(a) > 0 && len(b) > 0 {
		if a[0] < b[0] {
			out = append(out, a[0])
			a = a[1:]
		} else {
			out = append(out, b[0])
			b = b[1:]
		}
	}
	out = append(out, a...)
	return append(out, b...)
}

// taskDone is the post-completion bookkeeping shared by both modes:
// journal the outcome, feed the memo cache, then fire the
// crash-injection / progress hook with the cumulative in-process
// completion count.
func (st *runState) taskDone(id int32, p *invocationPlan, tr *TaskResult) {
	st.health.taskFinished(p.tasks[id], tr)
	if tr.Err != nil {
		st.rj.taskFailed(id, false, tr.Err)
		return
	}
	st.rj.taskCompleted(id, p.tasks[id])
	st.memo.put(id, p.tasks[id])
	n := int(st.completed.Add(1))
	if st.afterDone != nil {
		st.afterDone(n)
	}
}

// recoverRun decodes journal records into a recovery: header validation
// (fingerprint must match the workflow being resumed), the completed
// set, and prior attempt counts. Output verification against the drive
// happens separately so this stays pure decoding.
func (m *Manager) recoverRun(w *wfformat.Workflow, n int, recs []journal.Record, torn bool) (*recovery, error) {
	var header *runHeader
	rec := &recovery{
		doneSet:  make([]bool, n),
		attempts: make([]int32, n),
	}
	rec.report.Torn = torn
	completedOuts := make(map[int32][]taskOutput)
	for _, r := range recs {
		switch r.Kind {
		case recRunHeader:
			h, err := decodeRunHeader(r.Data)
			if err != nil {
				return nil, err
			}
			if header == nil {
				header = h
			}
		case recTaskStarted:
			d := payload{b: r.Data}
			id := int32(d.uvarint())
			if d.err == nil && int(id) < n {
				rec.attempts[id]++
				rec.report.PriorAttempts++
			}
		case recTaskCompleted, recTaskMemoized:
			// A memoized task is a completion from recovery's point of
			// view: its products are on the drive (verified below like any
			// other) and it must not be re-invoked on resume.
			d := payload{b: r.Data}
			id := int32(d.uvarint())
			cnt := int(d.uvarint())
			if d.err != nil || int(id) >= n {
				continue
			}
			outs := make([]taskOutput, 0, cnt)
			for i := 0; i < cnt && d.err == nil; i++ {
				outs = append(outs, taskOutput{Name: d.string(), Size: int64(d.uvarint())})
			}
			if d.err == nil {
				rec.doneSet[id] = true
				completedOuts[id] = outs
			}
		case recTaskFailed, recRunEnd, recRunResumed, journal.KindSnapshot:
			// Failures re-run on resume; end/resume markers and snapshots
			// carry no per-task state.
		}
	}
	if header == nil {
		return nil, errors.New("wfm: journal has records but no run header; not a wfm journal")
	}
	if fp := wfformat.Fingerprint(w); fp != header.Fingerprint {
		return nil, fmt.Errorf("wfm: journal fingerprint %s does not match workflow %s (%s); refusing to resume",
			header.Fingerprint, w.Name, fp)
	}
	if header.TaskCount != n {
		return nil, fmt.Errorf("wfm: journal task count %d does not match workflow (%d)", header.TaskCount, n)
	}
	rec.header = header
	for id := int32(0); int(id) < n; id++ {
		if rec.doneSet[id] {
			rec.report.RecordedCompleted++
			rec.doneIDs = append(rec.doneIDs, id)
		}
	}
	rec.outs = completedOuts
	return rec, nil
}

// verifyOutputs checks that every recorded-completed task's outputs are
// still on the shared drive; tasks whose products vanished are dropped
// from the done-set so they re-run.
func (m *Manager) verifyOutputs(rec *recovery) {
	kept := rec.doneIDs[:0]
	for _, id := range rec.doneIDs {
		ok := true
		for _, o := range rec.outs[id] {
			if !m.opts.Drive.Exists(o.Name) {
				ok = false
				break
			}
		}
		if ok {
			kept = append(kept, id)
			rec.report.SkippedInvocations++
		} else {
			rec.doneSet[id] = false
			rec.report.Reexecuted++
		}
	}
	rec.doneIDs = kept
}

// JournalEvent is one decoded record in a run journal, as surfaced by
// ReadRunJournal for cmd/analyze.
type JournalEvent struct {
	Kind    string
	TaskID  int32 // -1 for run-level events
	Attempt int
	Outputs []taskOutput
	Skipped bool
	Message string
}

// JournalSummary is the analysis view of a run journal.
type JournalSummary struct {
	Header *runHeaderView
	// EventCounts maps record kind name to occurrences.
	EventCounts map[string]int
	// Attempts maps task ID to execution attempts recorded.
	Attempts map[int32]int
	// CompletedTasks is the number of distinct tasks with a completion
	// record; FailedTasks likewise for terminal failures.
	CompletedTasks int
	FailedTasks    int
	SkippedTasks   int
	// CompletedIDs lists the distinct completed task IDs, ascending.
	// Task IDs are the compiled CSR's interned indices — sorted task
	// name order — so verification harnesses can map them back to
	// names without the original plan in hand.
	CompletedIDs []int32
	// MemoizedTasks is the number of distinct tasks seeded from the
	// memo cache instead of executing; MemoSkippedBytes sums the output
	// sizes those hits did not have to recompute. MemoReexecuted counts
	// memoized tasks that nonetheless have an execution attempt in the
	// same journal — a cache hit later invalidated (outputs vanished
	// between crash and resume) and re-run.
	MemoizedTasks    int
	MemoSkippedBytes int64
	MemoReexecuted   int
	// Resumes lists resume markers in order.
	Resumes []ResumeMarker
	// Ends lists run-end markers in order.
	Ends []RunEndMarker
	// Torn reports the journal ended in a torn record.
	Torn bool
	// Segments is the number of segment files on disk.
	Segments int
}

// runHeaderView is the exported face of the run header.
type runHeaderView struct {
	Workflow    string
	Fingerprint string
	Scheduling  string
	TaskCount   int
	OptionsHash uint64
	StartedUnix int64
}

// ResumeMarker is one recRunResumed record.
type ResumeMarker struct {
	Recorded, Verified, Reexecuted int
}

// RunEndMarker is one recRunEnd record.
type RunEndMarker struct {
	Status string
	Failed int
}

func kindName(k uint8) string {
	switch k {
	case journal.KindSnapshot:
		return "snapshot"
	case recRunHeader:
		return "run-header"
	case recTaskStarted:
		return "task-started"
	case recTaskCompleted:
		return "task-completed"
	case recTaskFailed:
		return "task-failed"
	case recRunEnd:
		return "run-end"
	case recRunResumed:
		return "run-resumed"
	case recTaskMemoized:
		return "task-memoized"
	}
	return fmt.Sprintf("kind-%d", k)
}

func statusName(s byte) string {
	switch s {
	case runEndOK:
		return "ok"
	case runEndFailed:
		return "failed"
	case runEndCancelled:
		return "cancelled"
	}
	return fmt.Sprintf("status-%d", s)
}

// ReadRunJournal replays the journal at path (a directory or a single
// segment file) and decodes the manager's record taxonomy into an
// analysis summary. Tolerant of torn tails and foreign records.
func ReadRunJournal(path string) (*JournalSummary, error) {
	rep, err := journal.Read(path)
	if err != nil {
		return nil, err
	}
	s := &JournalSummary{
		EventCounts: make(map[string]int),
		Attempts:    make(map[int32]int),
		Torn:        rep.Torn,
		Segments:    len(rep.Segments),
	}
	completed := make(map[int32]bool)
	failed := make(map[int32]bool)
	memoized := make(map[int32]bool)
	for _, r := range rep.Records {
		s.EventCounts[kindName(r.Kind)]++
		d := payload{b: r.Data}
		switch r.Kind {
		case recRunHeader:
			h, err := decodeRunHeader(r.Data)
			if err != nil || s.Header != nil {
				continue
			}
			s.Header = &runHeaderView{
				Workflow:    h.Workflow,
				Fingerprint: h.Fingerprint.String(),
				Scheduling:  h.Scheduling.String(),
				TaskCount:   h.TaskCount,
				OptionsHash: h.OptionsHash,
				StartedUnix: h.StartedUnix,
			}
		case recTaskStarted:
			id := int32(d.uvarint())
			if d.err == nil {
				s.Attempts[id]++
			}
		case recTaskCompleted:
			id := int32(d.uvarint())
			if d.err == nil {
				completed[id] = true
			}
		case recTaskMemoized:
			id := int32(d.uvarint())
			cnt := int(d.uvarint())
			var bytes int64
			for i := 0; i < cnt && d.err == nil; i++ {
				d.string()
				bytes += int64(d.uvarint())
			}
			if d.err == nil {
				memoized[id] = true
				completed[id] = true
				s.MemoSkippedBytes += bytes
			}
		case recTaskFailed:
			id := int32(d.uvarint())
			flags := d.byte()
			if d.err == nil {
				failed[id] = true
				if flags&1 != 0 {
					s.SkippedTasks++
				}
			}
		case recRunEnd:
			status := d.byte()
			n := int(d.uvarint())
			if d.err == nil {
				s.Ends = append(s.Ends, RunEndMarker{Status: statusName(status), Failed: n})
			}
		case recRunResumed:
			m := ResumeMarker{
				Recorded:   int(d.uvarint()),
				Verified:   int(d.uvarint()),
				Reexecuted: int(d.uvarint()),
			}
			if d.err == nil {
				s.Resumes = append(s.Resumes, m)
			}
		}
	}
	s.CompletedTasks = len(completed)
	s.CompletedIDs = make([]int32, 0, len(completed))
	for id := range completed {
		s.CompletedIDs = append(s.CompletedIDs, id)
	}
	slices.Sort(s.CompletedIDs)
	s.FailedTasks = len(failed)
	s.MemoizedTasks = len(memoized)
	for id := range memoized {
		if s.Attempts[id] > 0 {
			s.MemoReexecuted++
		}
	}
	return s, nil
}

// MaxAttemptTasks returns the task IDs with the highest recorded attempt
// count, sorted, plus that count — the "which task kept crashing us"
// question.
func (s *JournalSummary) MaxAttemptTasks() ([]int32, int) {
	max := 0
	for _, n := range s.Attempts {
		if n > max {
			max = n
		}
	}
	if max <= 0 {
		return nil, 0
	}
	var ids []int32
	for id, n := range s.Attempts {
		if n == max {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, k int) bool { return ids[i] < ids[k] })
	return ids, max
}
