package wfm

import (
	"bytes"
	"context"
	"encoding/csv"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"wfserverless/internal/obs"
	"wfserverless/internal/sharedfs"
	"wfserverless/internal/wfbench"
)

// TestRunEmitsSpans drives a sampled run in both scheduling modes and
// checks the span tree: one root, one span per task (backdated to its
// ready instant, annotated with queueing latency and attempts), one
// invoke span per attempt, all sharing the root's trace ID.
func TestRunEmitsSpans(t *testing.T) {
	for _, mode := range []Scheduling{SchedulePhases, ScheduleDependency} {
		t.Run(mode.String(), func(t *testing.T) {
			drive := sharedfs.NewMem()
			srv, _, _ := stubService(t, drive, time.Millisecond)
			tracer := obs.NewTracer(obs.Options{SampleRatio: 1})
			m := fastManager(t, drive, func(o *Options) {
				o.Scheduling = mode
				o.Tracer = tracer
			})
			w := translated(t, "blast", 8, srv.URL)
			res, err := m.Run(context.Background(), w)
			if err != nil {
				t.Fatal(err)
			}
			if res.TraceID == "" {
				t.Fatal("sampled run has no TraceID")
			}
			nTasks := len(res.Tasks) - 2 // minus synthetic header/tail
			var root, tasks, invokes int
			for _, s := range res.Spans {
				if s.Trace.String() != res.TraceID {
					t.Fatalf("span %q in foreign trace %s", s.Name, s.Trace)
				}
				switch {
				case strings.HasPrefix(s.Name, "workflow:"):
					root++
					if !s.Parent.IsZero() {
						t.Fatal("root span has a parent")
					}
				case s.Name == "invoke":
					invokes++
				default:
					tasks++
					if q, ok := s.AttrFloat("queue_ms"); !ok || q < 0 {
						t.Fatalf("task span %q queue_ms = %v, %v", s.Name, q, ok)
					}
					if a, ok := s.AttrFloat("attempts"); !ok || a != 1 {
						t.Fatalf("task span %q attempts = %v, %v", s.Name, a, ok)
					}
				}
			}
			if root != 1 || tasks != nTasks || invokes != nTasks {
				t.Fatalf("spans: root=%d tasks=%d invokes=%d, want 1/%d/%d",
					root, tasks, invokes, nTasks, nTasks)
			}

			tr := TraceOf(res)
			if tr.TraceID != res.TraceID || len(tr.Spans) != len(res.Spans) {
				t.Fatal("TraceOf dropped span data")
			}
			var chrome bytes.Buffer
			if err := tr.WriteChromeTrace(&chrome); err != nil {
				t.Fatal(err)
			}
			back, err := obs.ParseChromeTrace(bytes.NewReader(chrome.Bytes()))
			if err != nil {
				t.Fatalf("chrome trace does not parse back: %v", err)
			}
			if len(back) != len(tr.Spans) {
				t.Fatalf("chrome round trip: %d of %d spans", len(back), len(tr.Spans))
			}
			path := tr.SpanCriticalPath()
			if len(path) < 2 || !strings.HasPrefix(path[0].Name, "workflow:") {
				t.Fatalf("critical path = %d spans starting at %q", len(path), path[0].Name)
			}
		})
	}
}

// TestUnsampledRunHasNoSpans: tracing off and tracing unsampled both
// yield a span-free Result.
func TestUnsampledRunHasNoSpans(t *testing.T) {
	drive := sharedfs.NewMem()
	srv, _, _ := stubService(t, drive, 0)
	tracer := obs.NewTracer(obs.Options{SampleRatio: 1.0 / (1 << 30)})
	tracer.StartRoot("warm", obs.LayerWFM).Finish()
	tracer.Take()
	m := fastManager(t, drive, func(o *Options) { o.Tracer = tracer })
	res, err := m.Run(context.Background(), translated(t, "blast", 6, srv.URL))
	if err != nil {
		t.Fatal(err)
	}
	if res.TraceID != "" || len(res.Spans) != 0 {
		t.Fatalf("unsampled run recorded TraceID=%q spans=%d", res.TraceID, len(res.Spans))
	}
}

// TestTraceparentInjection checks the header on the wire: absent with
// tracing off, present and parseable on a sampled run, and the shared
// template header map is never touched.
func TestTraceparentInjection(t *testing.T) {
	drive := sharedfs.NewMem()
	var mu sync.Mutex
	headers := []string{}
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		headers = append(headers, r.Header.Get("Traceparent"))
		mu.Unlock()
		var req wfbench.Request
		json.NewDecoder(r.Body).Decode(&req)
		for name, size := range req.Out {
			drive.WriteFile(name, size)
		}
		json.NewEncoder(w).Encode(&wfbench.Response{Name: req.Name, OK: true})
	})
	srv := httptest.NewServer(h)
	defer srv.Close()

	m := fastManager(t, drive, nil)
	if _, err := m.Run(context.Background(), translated(t, "blast", 6, srv.URL)); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	for _, hv := range headers {
		if hv != "" {
			t.Fatalf("traceparent %q sent with tracing off", hv)
		}
	}
	headers = headers[:0]
	mu.Unlock()

	tracer := obs.NewTracer(obs.Options{SampleRatio: 1})
	m2 := fastManager(t, drive, func(o *Options) { o.Tracer = tracer })
	res, err := m2.Run(context.Background(), translated(t, "blast", 6, srv.URL))
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(headers) == 0 {
		t.Fatal("no invocations observed")
	}
	for _, hv := range headers {
		sc, ok := obs.ParseTraceparent(hv)
		if !ok {
			t.Fatalf("invalid traceparent on the wire: %q", hv)
		}
		if !sc.Sampled || sc.TraceID.String() != res.TraceID {
			t.Fatalf("traceparent %q does not match run trace %s", hv, res.TraceID)
		}
	}
	if len(sharedJSONHeader) != 1 || sharedJSONHeader.Get("Traceparent") != "" {
		t.Fatal("shared template header map was mutated")
	}
}

// TestTraceRoundTripSpanFields: JSON round-trip preserves the new span
// and telemetry fields; CSV carries the ready_ms and attempts columns.
func TestTraceRoundTripSpanFields(t *testing.T) {
	drive := sharedfs.NewMem()
	srv, _, _ := stubService(t, drive, time.Millisecond)
	tracer := obs.NewTracer(obs.Options{SampleRatio: 1})
	m := fastManager(t, drive, func(o *Options) {
		o.Scheduling = ScheduleDependency
		o.Tracer = tracer
	})
	res, err := m.Run(context.Background(), translated(t, "blast", 8, srv.URL))
	if err != nil {
		t.Fatal(err)
	}
	tr := TraceOf(res)

	var b strings.Builder
	if err := tr.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseTrace(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if parsed.TraceID != tr.TraceID {
		t.Fatalf("TraceID %q != %q after round trip", parsed.TraceID, tr.TraceID)
	}
	if len(parsed.Spans) != len(tr.Spans) {
		t.Fatalf("spans %d != %d after round trip", len(parsed.Spans), len(tr.Spans))
	}
	for i := range parsed.Spans {
		if parsed.Spans[i].SpanID != tr.Spans[i].SpanID || parsed.Spans[i].Parent != tr.Spans[i].Parent ||
			parsed.Spans[i].StartMS != tr.Spans[i].StartMS || parsed.Spans[i].DurMS != tr.Spans[i].DurMS {
			t.Fatalf("span %d changed in round trip", i)
		}
	}
	for i := range parsed.Events {
		if parsed.Events[i].ReadyMS != tr.Events[i].ReadyMS || parsed.Events[i].Attempts != tr.Events[i].Attempts {
			t.Fatalf("event %d ready/attempts changed in round trip", i)
		}
	}

	var csvb strings.Builder
	if err := tr.WriteCSV(&csvb); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(strings.NewReader(csvb.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	header := strings.Join(rows[0], ",")
	if header != "name,category,phase,ready_ms,start_ms,end_ms,attempts,pod,error" {
		t.Fatalf("csv header = %q", header)
	}
	if len(rows) != len(tr.Events)+1 {
		t.Fatalf("csv rows = %d, want %d", len(rows), len(tr.Events)+1)
	}
}

// TestMonitorCounts runs a workflow with a Monitor attached and checks
// the live plane drains to a consistent final state, and that the
// exposition output is well-typed.
func TestMonitorCounts(t *testing.T) {
	drive := sharedfs.NewMem()
	srv, _, _ := stubService(t, drive, 0)
	mon := NewMonitor()
	m := fastManager(t, drive, func(o *Options) {
		o.Scheduling = ScheduleDependency
		o.Monitor = mon
		o.Logger = slog.New(slog.NewTextHandler(new(bytes.Buffer), nil))
	})
	res, err := m.Run(context.Background(), translated(t, "blast", 8, srv.URL))
	if err != nil {
		t.Fatal(err)
	}
	nTasks := int64(len(res.Tasks) - 2)
	s := mon.Snapshot()
	if s.Workflow == "" || s.Scheduling != "dependency" {
		t.Fatalf("snapshot identity = %+v", s)
	}
	if s.Ready != 0 || s.Running != 0 {
		t.Fatalf("gauges not drained: %+v", s)
	}
	if s.Done != nTasks || s.Failed != 0 {
		t.Fatalf("done=%d failed=%d, want %d/0", s.Done, s.Failed, nTasks)
	}
	if got := mon.Latency().Count(); got != uint64(nTasks) {
		t.Fatalf("latency observations = %d, want %d", got, nTasks)
	}

	var buf bytes.Buffer
	if err := mon.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE wfm_tasks_done_total counter",
		"# TYPE wfm_tasks_ready gauge",
		"# TYPE wfm_invocation_seconds histogram",
		"wfm_invocation_seconds_bucket",
		"wfm_breakers_open 0",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestMonitorSkippedAndFailed: in dependency mode a failing ancestor
// marks its descendants failed without them ever becoming ready.
func TestMonitorSkippedAndFailed(t *testing.T) {
	srv := failingServer(t)
	mon := NewMonitor()
	m := fastManager(t, sharedfs.NewMem(), func(o *Options) {
		o.Scheduling = ScheduleDependency
		o.Monitor = mon
	})
	w := chainWorkflow(t, 4, srv.URL)
	if _, err := m.Run(context.Background(), w); err == nil {
		t.Fatal("failing run succeeded")
	}
	s := mon.Snapshot()
	if s.Ready != 0 || s.Running != 0 {
		t.Fatalf("gauges not drained: %+v", s)
	}
	if s.Done != 0 || s.Failed != 4 {
		t.Fatalf("done=%d failed=%d, want 0/4 (1 failure + 3 skips)", s.Done, s.Failed)
	}
}

// TestNilMonitorSafe: every monitor hook must be callable on nil.
func TestNilMonitorSafe(t *testing.T) {
	var mon *Monitor
	mon.runStarted("w", SchedulePhases, 1)
	mon.taskReady(1)
	mon.taskStarted()
	mon.taskFinished(time.Millisecond, false)
	mon.taskSkipped()
	mon.retried()
	mon.breakerChanged(BreakerClosed, BreakerOpen)
	if mon.Latency() != nil {
		t.Fatal("nil monitor latency != nil")
	}
	if s := mon.Snapshot(); s != (Snapshot{}) {
		t.Fatalf("nil snapshot = %+v", s)
	}
	var buf bytes.Buffer
	if err := mon.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
}
