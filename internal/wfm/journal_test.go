package wfm

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"

	"wfserverless/internal/journal"
	"wfserverless/internal/sharedfs"
	"wfserverless/internal/wfbench"
	"wfserverless/internal/wfformat"
)

// countingStub executes tasks (writes declared outputs to the drive)
// and counts invocations per task name — the duplicate-invocation
// detector behind the crash-recovery tests.
func countingStub(t testing.TB, drive sharedfs.Drive) (*httptest.Server, func() map[string]int) {
	t.Helper()
	var mu sync.Mutex
	calls := make(map[string]int)
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var req wfbench.Request
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		mu.Lock()
		calls[req.Name]++
		mu.Unlock()
		for name, size := range req.Out {
			drive.WriteFile(name, size)
		}
		json.NewEncoder(w).Encode(&wfbench.Response{Name: req.Name, OK: true})
	})
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	snapshot := func() map[string]int {
		mu.Lock()
		defer mu.Unlock()
		out := make(map[string]int, len(calls))
		for k, v := range calls {
			out[k] = v
		}
		return out
	}
	return srv, snapshot
}

func openJournal(t *testing.T, dir string) *journal.Journal {
	t.Helper()
	j, err := journal.Open(dir, journal.Options{Sync: journal.SyncGroup})
	if err != nil {
		t.Fatal(err)
	}
	return j
}

func journaledManager(t *testing.T, drive sharedfs.Drive, j *journal.Journal, mode Scheduling, mutate func(*Options)) *Manager {
	t.Helper()
	return fastManager(t, drive, func(o *Options) {
		o.Journal = j
		o.Scheduling = mode
		if mutate != nil {
			mutate(o)
		}
	})
}

func TestJournaledRunRecordsLifecycle(t *testing.T) {
	for _, mode := range []Scheduling{SchedulePhases, ScheduleDependency} {
		t.Run(mode.String(), func(t *testing.T) {
			drive := sharedfs.NewMem()
			srv, _ := countingStub(t, drive)
			w := diamondWorkflow(t, 2, 3, srv.URL)
			dir := t.TempDir()
			j := openJournal(t, dir)
			m := journaledManager(t, drive, j, mode, nil)
			if _, err := m.Run(context.Background(), w); err != nil {
				t.Fatal(err)
			}
			if err := j.Close(); err != nil {
				t.Fatal(err)
			}

			sum, err := ReadRunJournal(dir)
			if err != nil {
				t.Fatal(err)
			}
			if sum.Header == nil {
				t.Fatal("no run header")
			}
			if sum.Header.Workflow != w.Name {
				t.Fatalf("header workflow %q, want %q", sum.Header.Workflow, w.Name)
			}
			if got, want := sum.Header.Fingerprint, wfformat.Fingerprint(w).String(); got != want {
				t.Fatalf("header fingerprint %s, want %s", got, want)
			}
			n := w.Len()
			if sum.Header.TaskCount != n {
				t.Fatalf("header task count %d, want %d", sum.Header.TaskCount, n)
			}
			if sum.CompletedTasks != n {
				t.Fatalf("completed records for %d tasks, want %d", sum.CompletedTasks, n)
			}
			if sum.EventCounts["task-started"] != n {
				t.Fatalf("started records = %d, want %d", sum.EventCounts["task-started"], n)
			}
			if len(sum.Ends) != 1 || sum.Ends[0].Status != "ok" {
				t.Fatalf("run-end markers = %+v, want one ok", sum.Ends)
			}
		})
	}
}

// crashAndResume runs w until crashAfter tasks complete, models process
// death (context cancel + journal Abort), then resumes from the journal
// on the surviving drive. It returns the resumed result and the per-task
// invocation counts of both processes.
func crashAndResume(t *testing.T, w *wfformat.Workflow, mode Scheduling, crashAfter int,
	drive sharedfs.Drive, srvURL string, snap func() map[string]int) (*Result, map[string]int, map[string]int, map[int32]int) {
	t.Helper()
	dir := t.TempDir()
	j := openJournal(t, dir)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	m := journaledManager(t, drive, j, mode, func(o *Options) {
		o.AfterTaskDone = func(done int) {
			if done >= crashAfter {
				cancel()
			}
		}
	})
	if _, err := m.Run(ctx, w); err == nil && crashAfter < w.Len() {
		t.Fatal("crashed run reported success")
	}
	j.Abort() // process death: unflushed group-commit window is lost
	firstCalls := snap()

	// "Restart": reopen the journal, read what it recorded as complete.
	j2 := openJournal(t, dir)
	t.Cleanup(func() { j2.Close() })
	recorded := make(map[int32]int)
	for _, r := range j2.Records() {
		if r.Kind == recTaskCompleted {
			d := payload{b: r.Data}
			id := int32(d.uvarint())
			if d.err == nil {
				recorded[id]++
			}
		}
	}
	m2 := journaledManager(t, drive, j2, mode, nil)
	res, err := m2.Resume(context.Background(), w)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	return res, firstCalls, snap(), recorded
}

func TestCrashResumeBothModes(t *testing.T) {
	for _, mode := range []Scheduling{SchedulePhases, ScheduleDependency} {
		t.Run(mode.String(), func(t *testing.T) {
			// Reference: the same workflow run uninterrupted, for the
			// final-drive-state comparison.
			refDrive := sharedfs.NewMem()
			refSrv, _ := countingStub(t, refDrive)
			refW := diamondWorkflow(t, 3, 4, refSrv.URL)
			refM := fastManager(t, refDrive, func(o *Options) { o.Scheduling = mode })
			if _, err := refM.Run(context.Background(), refW); err != nil {
				t.Fatal(err)
			}

			drive := sharedfs.NewMem()
			srv, snap := countingStub(t, drive)
			w := diamondWorkflow(t, 3, 4, srv.URL)
			res, firstCalls, allCalls, recorded := crashAndResume(t, w, mode, 5, drive, srv.URL, snap)

			// Property 1: identical final drive state.
			if got, want := drive.List(), refDrive.List(); !reflect.DeepEqual(got, want) {
				t.Fatalf("final drive state differs:\n got %v\nwant %v", got, want)
			}
			// Property 2: no task the journal recorded completed was
			// invoked again by the resumed process.
			csr, _, err := w.Compile()
			if err != nil {
				t.Fatal(err)
			}
			for id := range recorded {
				name := csr.Name(id)
				if allCalls[name] > firstCalls[name] {
					t.Fatalf("task %s was recorded completed yet re-invoked on resume (%d -> %d calls)",
						name, firstCalls[name], allCalls[name])
				}
			}
			if res.Resume == nil {
				t.Fatal("resumed result carries no ResumeReport")
			}
			if res.Resume.SkippedInvocations != len(recorded) {
				t.Fatalf("skipped invocations = %d, want %d (recorded set)",
					res.Resume.SkippedInvocations, len(recorded))
			}
			if res.Resume.RecordedCompleted < 5 {
				t.Fatalf("recorded completed = %d, want >= crash threshold 5", res.Resume.RecordedCompleted)
			}
			// Every task appears in the final result exactly once, with
			// recovered ones flagged.
			flagged := 0
			for name, tr := range res.Tasks {
				if name == HeaderName || name == TailName {
					continue
				}
				if tr.Recovered {
					flagged++
				} else if tr.Err != nil {
					t.Fatalf("task %s failed after resume: %v", name, tr.Err)
				}
			}
			if flagged != res.Resume.SkippedInvocations {
				t.Fatalf("recovered-flagged tasks = %d, want %d", flagged, res.Resume.SkippedInvocations)
			}
		})
	}
}

func TestResumeReexecutesVanishedOutputs(t *testing.T) {
	drive := sharedfs.NewMem()
	srv, snap := countingStub(t, drive)
	w := chainWorkflow(t, 6, srv.URL)
	dir := t.TempDir()
	j := openJournal(t, dir)
	m := journaledManager(t, drive, j, ScheduleDependency, nil)
	if _, err := m.Run(context.Background(), w); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	before := snap()

	// The drive lost c002's output (evicted, pruned, whatever): resume
	// must re-run c002 — and only tasks whose products are gone.
	if err := drive.Remove("out_c002"); err != nil {
		t.Fatal(err)
	}
	j2 := openJournal(t, dir)
	defer j2.Close()
	m2 := journaledManager(t, drive, j2, ScheduleDependency, nil)
	res, err := m2.Resume(context.Background(), w)
	if err != nil {
		t.Fatal(err)
	}
	after := snap()
	if after["c002"] != before["c002"]+1 {
		t.Fatalf("c002 calls %d -> %d, want one re-execution", before["c002"], after["c002"])
	}
	for _, name := range []string{"c000", "c001", "c003", "c004", "c005"} {
		if after[name] != before[name] {
			t.Fatalf("%s re-invoked although its output survived (%d -> %d)", name, before[name], after[name])
		}
	}
	if res.Resume == nil || res.Resume.Reexecuted != 1 {
		t.Fatalf("resume report = %+v, want Reexecuted=1", res.Resume)
	}
	if !drive.Exists("out_c002") {
		t.Fatal("re-executed task did not restore its output")
	}
}

func TestResumeFingerprintMismatch(t *testing.T) {
	drive := sharedfs.NewMem()
	srv, _ := countingStub(t, drive)
	w := chainWorkflow(t, 4, srv.URL)
	dir := t.TempDir()
	j := openJournal(t, dir)
	m := journaledManager(t, drive, j, SchedulePhases, nil)
	if _, err := m.Run(context.Background(), w); err != nil {
		t.Fatal(err)
	}
	j.Close()

	other := chainWorkflow(t, 5, srv.URL) // different content
	j2 := openJournal(t, dir)
	defer j2.Close()
	m2 := journaledManager(t, drive, j2, SchedulePhases, nil)
	if _, err := m2.Resume(context.Background(), other); err == nil {
		t.Fatal("resume accepted a journal from a different workflow")
	}
}

func TestResumeCompletedRunSkipsEverything(t *testing.T) {
	drive := sharedfs.NewMem()
	srv, snap := countingStub(t, drive)
	w := diamondWorkflow(t, 2, 2, srv.URL)
	dir := t.TempDir()
	j := openJournal(t, dir)
	m := journaledManager(t, drive, j, ScheduleDependency, nil)
	if _, err := m.Run(context.Background(), w); err != nil {
		t.Fatal(err)
	}
	j.Close()
	before := snap()

	j2 := openJournal(t, dir)
	defer j2.Close()
	m2 := journaledManager(t, drive, j2, ScheduleDependency, nil)
	res, err := m2.Resume(context.Background(), w)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snap(), before) {
		t.Fatal("resuming a finished run re-invoked tasks")
	}
	if res.Resume.SkippedInvocations != w.Len() {
		t.Fatalf("skipped = %d, want all %d", res.Resume.SkippedInvocations, w.Len())
	}
}

func TestRunRejectsNonEmptyJournal(t *testing.T) {
	drive := sharedfs.NewMem()
	srv, _ := countingStub(t, drive)
	w := chainWorkflow(t, 3, srv.URL)
	dir := t.TempDir()
	j := openJournal(t, dir)
	m := journaledManager(t, drive, j, SchedulePhases, nil)
	if _, err := m.Run(context.Background(), w); err != nil {
		t.Fatal(err)
	}
	j.Close()

	j2 := openJournal(t, dir)
	defer j2.Close()
	m2 := journaledManager(t, drive, j2, SchedulePhases, nil)
	if _, err := m2.Run(context.Background(), w); err == nil {
		t.Fatal("Run accepted a journal that already holds a run")
	}
}

func TestResumeEmptyJournalRunsFresh(t *testing.T) {
	drive := sharedfs.NewMem()
	srv, snap := countingStub(t, drive)
	w := chainWorkflow(t, 3, srv.URL)
	j := openJournal(t, t.TempDir())
	defer j.Close()
	m := journaledManager(t, drive, j, ScheduleDependency, nil)
	res, err := m.Resume(context.Background(), w)
	if err != nil {
		t.Fatal(err)
	}
	if res.Resume != nil {
		t.Fatal("fresh run via Resume carries a ResumeReport")
	}
	if len(snap()) != w.Len() {
		t.Fatalf("invoked %d tasks, want %d", len(snap()), w.Len())
	}
}

func TestJournalAttemptsSpanProcesses(t *testing.T) {
	// Crash after 2 completions, resume, finish: the journal's attempt
	// numbering keeps counting across the two processes, and the analyze
	// summary sees at most... exactly one attempt for tasks that ran
	// once and two for any task started in both lifetimes.
	drive := sharedfs.NewMem()
	srv, snap := countingStub(t, drive)
	w := chainWorkflow(t, 5, srv.URL)
	res, _, _, _ := crashAndResume(t, w, ScheduleDependency, 2, drive, srv.URL, snap)
	if len(res.Failed) != 0 {
		t.Fatalf("resumed run failed tasks: %v", res.Failed)
	}
	for name, n := range snap() {
		if n > 2 {
			t.Fatalf("task %s invoked %d times across crash+resume, want <= 2", name, n)
		}
	}
}
