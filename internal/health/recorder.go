package health

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Event is one structured entry in the flight recorder's ring.
type Event struct {
	// AtMS is the event's offset from recorder creation, milliseconds.
	AtMS float64 `json:"atMs"`
	// Kind names the event: run-start, run-end, task-start, task-done,
	// task-fail, retry, throttle, breaker, straggler, speculate,
	// speculate-win.
	Kind     string `json:"kind"`
	Task     string `json:"task,omitempty"`
	Endpoint string `json:"endpoint,omitempty"`
	Attempt  int    `json:"attempt,omitempty"`
	Detail   string `json:"detail,omitempty"`
}

// FlightRecorder is a fixed-size ring of recent structured events — the
// "why" to dump next to the journal's "what" when a run panics, is
// wound down by a signal, or fails. Record is a struct copy under one
// short mutex hold so it is cheap enough to sit on the dispatch path
// when the health plane is on. All methods are safe on a nil receiver.
type FlightRecorder struct {
	start time.Time

	mu    sync.Mutex
	ring  []Event
	total uint64 // events ever recorded
}

// NewFlightRecorder returns a recorder holding the last size events;
// size <= 0 defaults to 4096.
func NewFlightRecorder(size int) *FlightRecorder {
	if size <= 0 {
		size = 4096
	}
	return &FlightRecorder{start: time.Now(), ring: make([]Event, size)}
}

// Record appends one event, overwriting the oldest once the ring is
// full.
func (fr *FlightRecorder) Record(kind, task, endpoint string, attempt int, detail string) {
	if fr == nil {
		return
	}
	at := float64(time.Since(fr.start).Microseconds()) / 1000
	fr.mu.Lock()
	fr.ring[fr.total%uint64(len(fr.ring))] = Event{
		AtMS: at, Kind: kind, Task: task, Endpoint: endpoint, Attempt: attempt, Detail: detail,
	}
	fr.total++
	fr.mu.Unlock()
}

// Events returns the retained events oldest-first.
func (fr *FlightRecorder) Events() []Event {
	if fr == nil {
		return nil
	}
	fr.mu.Lock()
	defer fr.mu.Unlock()
	n := fr.total
	size := uint64(len(fr.ring))
	if n > size {
		out := make([]Event, 0, size)
		for i := uint64(0); i < size; i++ {
			out = append(out, fr.ring[(n+i)%size])
		}
		return out
	}
	return append([]Event(nil), fr.ring[:n]...)
}

// Dropped reports how many events fell off the ring.
func (fr *FlightRecorder) Dropped() uint64 {
	if fr == nil {
		return 0
	}
	fr.mu.Lock()
	defer fr.mu.Unlock()
	if size := uint64(len(fr.ring)); fr.total > size {
		return fr.total - size
	}
	return 0
}

// WriteJSONL dumps the retained events as one JSON object per line,
// oldest first.
func (fr *FlightRecorder) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, ev := range fr.Events() {
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	return nil
}
