package health

import (
	"bufio"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestFlightRecorderRing(t *testing.T) {
	fr := NewFlightRecorder(4)
	for i := 0; i < 10; i++ {
		fr.Record("task-done", "t", "ep", i, "")
	}
	evs := fr.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	for i, ev := range evs {
		if ev.Attempt != 6+i {
			t.Fatalf("event %d attempt = %d, want %d (oldest-first order)", i, ev.Attempt, 6+i)
		}
	}
	if fr.Dropped() != 6 {
		t.Fatalf("Dropped = %d, want 6", fr.Dropped())
	}
}

func TestFlightRecorderPartialFill(t *testing.T) {
	fr := NewFlightRecorder(100)
	fr.Record("run-start", "", "", 0, "wf")
	fr.Record("straggler", "slow", "ep", 1, "age 80ms median 10ms")
	evs := fr.Events()
	if len(evs) != 2 || evs[0].Kind != "run-start" || evs[1].Kind != "straggler" {
		t.Fatalf("events = %+v", evs)
	}
	if fr.Dropped() != 0 {
		t.Fatalf("Dropped = %d, want 0", fr.Dropped())
	}
}

func TestFlightRecorderJSONL(t *testing.T) {
	fr := NewFlightRecorder(8)
	fr.Record("retry", "t1", "http://e", 2, "HTTP 503")
	fr.Record("breaker", "", "http://e", 0, "closed->open")
	var sb strings.Builder
	if err := fr.WriteJSONL(&sb); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(strings.NewReader(sb.String()))
	var kinds []string
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("line %q: %v", sc.Text(), err)
		}
		kinds = append(kinds, ev.Kind)
	}
	if len(kinds) != 2 || kinds[0] != "retry" || kinds[1] != "breaker" {
		t.Fatalf("kinds = %v", kinds)
	}
}

func TestFlightRecorderNil(t *testing.T) {
	var fr *FlightRecorder
	fr.Record("x", "", "", 0, "") // must not panic
	if fr.Events() != nil || fr.Dropped() != 0 {
		t.Fatal("nil recorder should report nothing")
	}
	var sb strings.Builder
	if err := fr.WriteJSONL(&sb); err != nil || sb.Len() != 0 {
		t.Fatal("nil recorder WriteJSONL should write nothing")
	}
}

func TestFlightRecorderConcurrent(t *testing.T) {
	fr := NewFlightRecorder(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				fr.Record("task-done", "t", "ep", i, "")
			}
		}()
	}
	wg.Wait()
	if got := len(fr.Events()); got != 64 {
		t.Fatalf("retained %d, want 64", got)
	}
	if got := fr.Dropped(); got != 8*500-64 {
		t.Fatalf("Dropped = %d, want %d", got, 8*500-64)
	}
}
