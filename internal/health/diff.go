package health

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"

	"wfserverless/internal/metrics"
	"wfserverless/internal/obs"
)

// EndpointProfile is one endpoint's latency/retry/cold-start profile
// extracted from a recorded span log.
type EndpointProfile struct {
	Endpoint string  `json:"endpoint"`
	Count    int     `json:"count"`
	P50MS    float64 `json:"p50Ms"`
	P95MS    float64 `json:"p95Ms"`
	P99MS    float64 `json:"p99Ms"`
	// Retries counts invoke spans beyond each task's first attempt;
	// ColdStarts the invoke spans marked cold.
	Retries    int `json:"retries"`
	ColdStarts int `json:"coldStarts"`
}

// Profile is the per-run view cross-run diffing operates on, built from
// a span log (JSONL or Chrome trace) by ProfileRecords.
type Profile struct {
	Spans      int               `json:"spans"`
	Invokes    int               `json:"invokes"`
	MakespanMS float64           `json:"makespanMs"`
	Endpoints  []EndpointProfile `json:"endpoints"`
	// CriticalMS is the critical path's total duration; CriticalByLayer
	// its composition (summed span durations per layer along the path).
	CriticalSpans   int                `json:"criticalSpans"`
	CriticalMS      float64            `json:"criticalMs"`
	CriticalByLayer map[string]float64 `json:"criticalByLayer"`
}

// ProfileRecords extracts a Profile from one run's span records.
// Endpoint attribution uses the "endpoint" attr the manager stamps on
// invoke spans; invoke spans without one group under "unknown".
func ProfileRecords(recs []obs.Record) *Profile {
	p := &Profile{Spans: len(recs), CriticalByLayer: map[string]float64{}}
	perEP := map[string]*epAccum{}
	for i := range recs {
		r := &recs[i]
		end := r.StartMS + r.DurMS
		if end > p.MakespanMS {
			p.MakespanMS = end
		}
		if r.Layer != obs.LayerWFM || r.Name != "invoke" {
			continue
		}
		p.Invokes++
		ep := "unknown"
		if v, ok := r.Attrs["endpoint"].(string); ok && v != "" {
			ep = v
		}
		a := perEP[ep]
		if a == nil {
			a = &epAccum{}
			perEP[ep] = a
		}
		a.lat.Values = append(a.lat.Values, r.DurMS)
		if att, ok := r.Attrs["attempt"].(float64); ok && att > 1 {
			a.retries++
		}
		if cold, ok := r.Attrs["cold_start"].(string); ok && cold == "true" {
			a.cold++
		}
	}
	for ep, a := range perEP {
		p.Endpoints = append(p.Endpoints, EndpointProfile{
			Endpoint:   ep,
			Count:      a.lat.Len(),
			P50MS:      a.lat.Percentile(50),
			P95MS:      a.lat.Percentile(95),
			P99MS:      a.lat.Percentile(99),
			Retries:    a.retries,
			ColdStarts: a.cold,
		})
	}
	sort.Slice(p.Endpoints, func(i, j int) bool { return p.Endpoints[i].Endpoint < p.Endpoints[j].Endpoint })
	for _, r := range obs.CriticalPath(recs) {
		p.CriticalSpans++
		p.CriticalMS += r.DurMS
		p.CriticalByLayer[r.Layer] += r.DurMS
	}
	return p
}

type epAccum struct {
	lat     metrics.Series
	retries int
	cold    int
}

// EndpointDelta is one endpoint's before/after comparison.
type EndpointDelta struct {
	Endpoint string          `json:"endpoint"`
	Old      EndpointProfile `json:"old"`
	New      EndpointProfile `json:"new"`
	// P95DeltaPct is the p95 shift in percent ((new-old)/old·100).
	// NewEndpoint marks an endpoint with no old-run samples — its delta
	// is reported 0 (JSON cannot carry +Inf) and text mode says "new".
	P95DeltaPct float64 `json:"p95DeltaPct"`
	NewEndpoint bool    `json:"newEndpoint,omitempty"`
}

// LayerDelta compares critical-path composition for one layer.
type LayerDelta struct {
	Layer   string  `json:"layer"`
	OldMS   float64 `json:"oldMs"`
	NewMS   float64 `json:"newMs"`
	DeltaMS float64 `json:"deltaMs"`
}

// Diff is the cross-run comparison: per-endpoint quantile deltas sorted
// worst-p95-shift first, retry/cold-start deltas, and critical-path
// composition change. Built by DiffProfiles, rendered by WriteText or
// WriteJSON (the machine-readable CI-gating mode).
type Diff struct {
	Old *Profile `json:"old"`
	New *Profile `json:"new"`

	MakespanDeltaPct float64         `json:"makespanDeltaPct"`
	Endpoints        []EndpointDelta `json:"endpoints"`
	RetryDelta       int             `json:"retryDelta"`
	ColdStartDelta   int             `json:"coldStartDelta"`
	CriticalDeltaMS  float64         `json:"criticalDeltaMs"`
	CriticalByLayer  []LayerDelta    `json:"criticalByLayer"`
}

// DiffProfiles compares two run profiles.
func DiffProfiles(oldP, newP *Profile) *Diff {
	d := &Diff{Old: oldP, New: newP}
	if pct := pctDelta(oldP.MakespanMS, newP.MakespanMS); !math.IsInf(pct, 0) {
		d.MakespanDeltaPct = pct
	}
	byEP := map[string]*EndpointDelta{}
	for _, e := range oldP.Endpoints {
		byEP[e.Endpoint] = &EndpointDelta{Endpoint: e.Endpoint, Old: e}
		d.RetryDelta -= e.Retries
		d.ColdStartDelta -= e.ColdStarts
	}
	for _, e := range newP.Endpoints {
		ed := byEP[e.Endpoint]
		if ed == nil {
			ed = &EndpointDelta{Endpoint: e.Endpoint}
			byEP[e.Endpoint] = ed
		}
		ed.New = e
		d.RetryDelta += e.Retries
		d.ColdStartDelta += e.ColdStarts
	}
	for _, ed := range byEP {
		if ed.Old.Count == 0 && ed.New.Count > 0 {
			ed.NewEndpoint = true
		} else if pct := pctDelta(ed.Old.P95MS, ed.New.P95MS); !math.IsInf(pct, 0) {
			ed.P95DeltaPct = pct
		}
		d.Endpoints = append(d.Endpoints, *ed)
	}
	sortKey := func(e *EndpointDelta) float64 {
		if e.NewEndpoint {
			return math.MaxFloat64
		}
		return math.Abs(e.P95DeltaPct)
	}
	sort.Slice(d.Endpoints, func(i, j int) bool {
		ai, aj := sortKey(&d.Endpoints[i]), sortKey(&d.Endpoints[j])
		if ai != aj {
			return ai > aj
		}
		return d.Endpoints[i].Endpoint < d.Endpoints[j].Endpoint
	})
	d.CriticalDeltaMS = newP.CriticalMS - oldP.CriticalMS
	layers := map[string]bool{}
	for l := range oldP.CriticalByLayer {
		layers[l] = true
	}
	for l := range newP.CriticalByLayer {
		layers[l] = true
	}
	names := make([]string, 0, len(layers))
	for l := range layers {
		names = append(names, l)
	}
	sort.Strings(names)
	for _, l := range names {
		o, n := oldP.CriticalByLayer[l], newP.CriticalByLayer[l]
		d.CriticalByLayer = append(d.CriticalByLayer, LayerDelta{Layer: l, OldMS: o, NewMS: n, DeltaMS: n - o})
	}
	return d
}

func pctDelta(oldV, newV float64) float64 {
	if oldV == 0 {
		if newV == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return (newV - oldV) / oldV * 100
}

func fmtPct(v float64) string {
	if math.IsInf(v, 1) {
		return "new"
	}
	return fmt.Sprintf("%+.1f%%", v)
}

// WriteText renders the diff for humans, worst endpoint first.
func (d *Diff) WriteText(w io.Writer) error {
	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	p("run diff: %d -> %d spans, %d -> %d invokes\n",
		d.Old.Spans, d.New.Spans, d.Old.Invokes, d.New.Invokes)
	p("makespan: %.1fms -> %.1fms (%s)\n", d.Old.MakespanMS, d.New.MakespanMS, fmtPct(d.MakespanDeltaPct))
	p("endpoints (worst p95 shift first):\n")
	for _, e := range d.Endpoints {
		p("  %s\n", e.Endpoint)
		p95 := fmtPct(e.P95DeltaPct)
		if e.NewEndpoint {
			p95 = "new"
		}
		p("    p50 %.1f -> %.1fms (%s)  p95 %.1f -> %.1fms (%s)  p99 %.1f -> %.1fms (%s)  n %d -> %d\n",
			e.Old.P50MS, e.New.P50MS, fmtPct(pctDelta(e.Old.P50MS, e.New.P50MS)),
			e.Old.P95MS, e.New.P95MS, p95,
			e.Old.P99MS, e.New.P99MS, fmtPct(pctDelta(e.Old.P99MS, e.New.P99MS)),
			e.Old.Count, e.New.Count)
		if e.Old.Retries != 0 || e.New.Retries != 0 || e.Old.ColdStarts != 0 || e.New.ColdStarts != 0 {
			p("    retries %d -> %d  cold starts %d -> %d\n",
				e.Old.Retries, e.New.Retries, e.Old.ColdStarts, e.New.ColdStarts)
		}
	}
	p("retries: %+d  cold starts: %+d\n", d.RetryDelta, d.ColdStartDelta)
	p("critical path: %.1fms (%d spans) -> %.1fms (%d spans), %+.1fms\n",
		d.Old.CriticalMS, d.Old.CriticalSpans, d.New.CriticalMS, d.New.CriticalSpans, d.CriticalDeltaMS)
	for _, l := range d.CriticalByLayer {
		p("  %-9s %.1f -> %.1fms (%+.1fms)\n", l.Layer, l.OldMS, l.NewMS, l.DeltaMS)
	}
	return err
}

// WriteJSON renders the diff as one JSON document for CI gating.
func (d *Diff) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}
