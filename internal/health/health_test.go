package health

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTrackerBaselines(t *testing.T) {
	tr := NewTracker(TrackerConfig{CheckInterval: time.Hour}) // watchdog inert
	defer tr.Close()
	for i := 0; i < 20; i++ {
		h := tr.StartAttempt("t", "ep1", 0)
		h.Done(false, i%4 == 0)
	}
	h := tr.StartAttempt("t-retry", "ep1", 1)
	h.Done(true, false)
	tr.RecordBatch("ep1", 8)
	tr.RecordBatch("ep1", 4)

	stats := tr.Snapshot()
	if len(stats) != 1 {
		t.Fatalf("endpoints = %d, want 1", len(stats))
	}
	e := stats[0]
	if e.Endpoint != "ep1" || e.Attempts != 21 || e.Failures != 1 || e.Retries != 1 {
		t.Fatalf("unexpected stats: %+v", e)
	}
	if e.ColdStarts != 5 {
		t.Fatalf("cold starts = %d, want 5", e.ColdStarts)
	}
	if got := e.BatchOccupancy(); got != 6 {
		t.Fatalf("batch occupancy = %v, want 6", got)
	}
	if e.P50 <= 0 || e.P95 < e.P50 {
		t.Fatalf("quantiles not populated: p50=%v p95=%v", e.P50, e.P95)
	}
}

func TestTrackerFlagsStragglers(t *testing.T) {
	var mu sync.Mutex
	var flagged, resolved []string
	tr := NewTracker(TrackerConfig{
		StragglerFactor: 3,
		MinSamples:      5,
		CheckInterval:   2 * time.Millisecond,
		OnStraggler: func(s Straggler) {
			mu.Lock()
			flagged = append(flagged, s.Task)
			mu.Unlock()
		},
		OnResolved: func(s Straggler, lat time.Duration) {
			mu.Lock()
			resolved = append(resolved, s.Task)
			mu.Unlock()
		},
	})
	defer tr.Close()

	// Establish a ~2ms median.
	for i := 0; i < 10; i++ {
		h := tr.StartAttempt("fast", "ep", 0)
		time.Sleep(2 * time.Millisecond)
		h.Done(false, false)
	}
	slow := tr.StartAttempt("slow", "ep", 0)
	select {
	case <-slow.Flagged():
	case <-time.After(2 * time.Second):
		t.Fatal("straggler was not flagged")
	}
	if got := tr.ActiveStragglers(); got != 1 {
		t.Fatalf("ActiveStragglers = %d, want 1", got)
	}
	slow.Done(false, false)
	if got := tr.ActiveStragglers(); got != 0 {
		t.Fatalf("ActiveStragglers after Done = %d, want 0", got)
	}
	if got := tr.TotalStragglers(); got != 1 {
		t.Fatalf("TotalStragglers = %d, want 1", got)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(flagged) != 1 || flagged[0] != "slow" {
		t.Fatalf("OnStraggler calls = %v, want [slow]", flagged)
	}
	if len(resolved) != 1 || resolved[0] != "slow" {
		t.Fatalf("OnResolved calls = %v, want [slow]", resolved)
	}
	stats := tr.Snapshot()
	if stats[0].Stragglers != 1 {
		t.Fatalf("endpoint straggler count = %d, want 1", stats[0].Stragglers)
	}
}

func TestTrackerNoFlagBeforeMinSamples(t *testing.T) {
	tr := NewTracker(TrackerConfig{MinSamples: 50, CheckInterval: time.Millisecond})
	defer tr.Close()
	for i := 0; i < 5; i++ {
		h := tr.StartAttempt("warm", "ep", 0)
		h.Done(false, false)
	}
	h := tr.StartAttempt("candidate", "ep", 0)
	select {
	case <-h.Flagged():
		t.Fatal("flagged before MinSamples completions")
	case <-time.After(30 * time.Millisecond):
	}
	h.Done(false, false)
}

func TestTrackerDoneIdempotent(t *testing.T) {
	tr := NewTracker(TrackerConfig{CheckInterval: time.Hour})
	defer tr.Close()
	h := tr.StartAttempt("t", "ep", 0)
	h.Done(false, false)
	h.Done(false, false) // second call must be a no-op
	if got := tr.Snapshot()[0].Attempts; got != 1 {
		t.Fatalf("attempts = %d after double Done, want 1", got)
	}
	var nilH *Inflight
	nilH.Done(false, false) // nil-safe
	nilH.SpeculativeWin()
}

func TestTrackerWriteMetrics(t *testing.T) {
	tr := NewTracker(TrackerConfig{CheckInterval: time.Hour})
	defer tr.Close()
	h := tr.StartAttempt("t", "http://a/wfbench", 0)
	h.Done(false, true)
	tr.SpeculationLaunched()
	var sb strings.Builder
	if err := tr.WriteMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	body := sb.String()
	for _, s := range []string{
		`wfm_endpoint_attempts_total{endpoint="http://a/wfbench"} 1`,
		`wfm_endpoint_cold_start_rate{endpoint="http://a/wfbench"} 1`,
		`wfm_endpoint_latency_p50_seconds{endpoint="http://a/wfbench"}`,
	} {
		if !strings.Contains(body, s) {
			t.Fatalf("metrics body missing %q:\n%s", s, body)
		}
	}
	var nilTr *Tracker
	if err := nilTr.WriteMetrics(&sb); err != nil {
		t.Fatalf("nil tracker WriteMetrics: %v", err)
	}
}

func TestTrackerConcurrent(t *testing.T) {
	tr := NewTracker(TrackerConfig{CheckInterval: time.Millisecond, MinSamples: 2})
	defer tr.Close()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				h := tr.StartAttempt("t", "ep", i%3)
				if i%7 == 0 {
					time.Sleep(100 * time.Microsecond)
				}
				h.Done(i%5 == 0, i%2 == 0)
				tr.RecordBatch("ep", 4)
			}
		}(g)
	}
	wg.Wait()
	if got := tr.Snapshot()[0].Attempts; got != 8*200 {
		t.Fatalf("attempts = %d, want %d", got, 8*200)
	}
}
