// Package health is the run-health plane layered on the observability
// substrate: streaming per-endpoint latency baselines (constant-memory
// P² quantiles), live straggler detection against each endpoint's
// running median, a crash flight recorder, and cross-run regression
// diffing over span logs. The workflow manager threads a Tracker
// through both scheduling modes when Options.Health is set; everything
// here is inert (and allocation-free on the manager's hot path) when it
// is not.
package health

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"wfserverless/internal/metrics"
)

// TrackerConfig tunes straggler detection. All durations are wall time
// — the manager scales its nominal-second options before building one.
type TrackerConfig struct {
	// StragglerFactor is k in the flagging criterion: an in-flight
	// attempt is a straggler once its age exceeds k × the endpoint's
	// running median attempt latency. Zero defaults to 3.
	StragglerFactor float64
	// MinSamples is how many completed attempts an endpoint needs
	// before its median is trusted for flagging. Zero defaults to 8.
	MinSamples int
	// MinAge is an absolute floor on the age before anything is
	// flagged, so microsecond medians cannot flag scheduling jitter.
	MinAge time.Duration
	// CheckInterval is the watchdog scan period. Zero defaults to 25ms.
	CheckInterval time.Duration
	// OnStraggler, if set, is called (outside the tracker's locks) once
	// per flagged attempt.
	OnStraggler func(Straggler)
	// OnResolved, if set, is called when a flagged attempt finally
	// completes, with the same event plus the final latency.
	OnResolved func(Straggler, time.Duration)
}

// Straggler describes one flagged in-flight attempt.
type Straggler struct {
	Task     string
	Endpoint string
	// Age is the attempt's in-flight age at flag time; Median the
	// endpoint's running median it was judged against.
	Age    time.Duration
	Median time.Duration
}

// EndpointStats is one endpoint's streaming baseline, snapshotted for
// Result reports and the /metrics exposition.
type EndpointStats struct {
	Endpoint string
	// Attempts counts completed invocation attempts (including failed
	// ones); Failures the subset that errored; Retries the attempts
	// beyond each task's first.
	Attempts int64
	Failures int64
	Retries  int64
	// ColdStarts counts attempts whose response reported a cold start.
	ColdStarts int64
	// Stragglers counts attempts flagged by the watchdog;
	// SpeculativeWins the flagged tasks whose backup attempt finished
	// first.
	Stragglers      int64
	SpeculativeWins int64
	// BatchFlushes and BatchTasks describe batching occupancy: tasks
	// per flushed batch = BatchTasks / BatchFlushes.
	BatchFlushes int64
	BatchTasks   int64
	// P50/P95/P99 are the streaming attempt-latency quantiles in
	// seconds.
	P50, P95, P99 float64
}

// RetryRate is the fraction of attempts beyond each task's first.
func (e *EndpointStats) RetryRate() float64 { return rate(e.Retries, e.Attempts) }

// ColdStartRate is the fraction of attempts served by a cold pod.
func (e *EndpointStats) ColdStartRate() float64 { return rate(e.ColdStarts, e.Attempts) }

// FailureRate is the fraction of attempts that errored.
func (e *EndpointStats) FailureRate() float64 { return rate(e.Failures, e.Attempts) }

// BatchOccupancy is the mean tasks per flushed batch (0 when the run
// never batched).
func (e *EndpointStats) BatchOccupancy() float64 { return rate(e.BatchTasks, e.BatchFlushes) }

func rate(num, den int64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// endpoint is the live, mutex-guarded state behind one EndpointStats.
type endpoint struct {
	name string

	mu         sync.Mutex
	attempts   int64
	failures   int64
	retries    int64
	coldStarts int64
	stragglers int64
	specWins   int64
	flushes    int64
	batchTasks int64
	p50        metrics.P2Quantile
	p95        metrics.P2Quantile
	p99        metrics.P2Quantile
}

// Inflight is the registration handle for one invocation attempt. The
// manager selects on Flagged() next to the attempt's own completion;
// the channel closes at most once, when the watchdog flags the attempt.
type Inflight struct {
	t        *Tracker
	ep       *endpoint
	task     string
	attempt  int
	start    time.Time
	flagged  chan struct{}
	isFlag   bool // owned by the watchdog under t.mu until Done
	flagInfo Straggler
	done     atomic.Bool
}

// Flagged returns the channel closed when the watchdog marks this
// attempt a straggler.
func (h *Inflight) Flagged() <-chan struct{} { return h.flagged }

// Done deregisters the attempt and folds its outcome into the
// endpoint's baseline. Exactly one call per StartAttempt; coldStart
// reports whether the response carried a cold-start marker.
func (h *Inflight) Done(failed, coldStart bool) {
	if h == nil || !h.done.CompareAndSwap(false, true) {
		return
	}
	lat := time.Since(h.start)
	t := h.t
	t.mu.Lock()
	delete(t.inflight, h)
	wasFlagged := h.isFlag
	info := h.flagInfo
	t.mu.Unlock()
	if wasFlagged {
		t.activeStragglers.Add(-1)
	}

	ep := h.ep
	ep.mu.Lock()
	ep.attempts++
	if failed {
		ep.failures++
	}
	if coldStart {
		ep.coldStarts++
	}
	if h.attempt > 0 {
		ep.retries++
	}
	secs := lat.Seconds()
	ep.p50.Observe(secs)
	ep.p95.Observe(secs)
	ep.p99.Observe(secs)
	ep.mu.Unlock()

	if wasFlagged && t.cfg.OnResolved != nil {
		t.cfg.OnResolved(info, lat)
	}
}

// SpeculativeWin records that this flagged attempt's backup finished
// first; for the per-endpoint speculation accounting.
func (h *Inflight) SpeculativeWin() {
	if h == nil {
		return
	}
	h.ep.mu.Lock()
	h.ep.specWins++
	h.ep.mu.Unlock()
	h.t.specWins.Add(1)
}

// Tracker is one run's health state: the per-endpoint baseline table,
// the in-flight attempt registry, and the straggler watchdog goroutine.
// Construct with NewTracker, stop with Close. All methods are safe for
// concurrent use; Start/Done are the hot-path pair and cost two small
// mutex holds each.
type Tracker struct {
	cfg TrackerConfig

	mu       sync.Mutex
	eps      map[string]*endpoint
	inflight map[*Inflight]struct{}

	activeStragglers atomic.Int64
	totalStragglers  atomic.Int64
	specLaunched     atomic.Int64
	specWins         atomic.Int64

	stop chan struct{}
	wg   sync.WaitGroup
}

// NewTracker starts a tracker and its watchdog.
func NewTracker(cfg TrackerConfig) *Tracker {
	if cfg.StragglerFactor <= 0 {
		cfg.StragglerFactor = 3
	}
	if cfg.MinSamples <= 0 {
		cfg.MinSamples = 8
	}
	if cfg.CheckInterval <= 0 {
		cfg.CheckInterval = 25 * time.Millisecond
	}
	t := &Tracker{
		cfg:      cfg,
		eps:      make(map[string]*endpoint),
		inflight: make(map[*Inflight]struct{}),
		stop:     make(chan struct{}),
	}
	t.wg.Add(1)
	go t.watchdog()
	return t
}

// Close stops the watchdog. Idempotent is not required — the manager
// closes exactly once at run end.
func (t *Tracker) Close() {
	close(t.stop)
	t.wg.Wait()
}

func (t *Tracker) endpointFor(name string) *endpoint {
	t.mu.Lock()
	ep := t.eps[name]
	if ep == nil {
		ep = &endpoint{name: name}
		ep.p50.Init(0.50)
		ep.p95.Init(0.95)
		ep.p99.Init(0.99)
		t.eps[name] = ep
	}
	t.mu.Unlock()
	return ep
}

// StartAttempt registers one invocation attempt (0-based attempt number
// within its task) as in flight.
func (t *Tracker) StartAttempt(task, endpointName string, attempt int) *Inflight {
	h := &Inflight{
		t:       t,
		ep:      t.endpointFor(endpointName),
		task:    task,
		attempt: attempt,
		start:   time.Now(),
		flagged: make(chan struct{}),
	}
	t.mu.Lock()
	t.inflight[h] = struct{}{}
	t.mu.Unlock()
	return h
}

// SpeculationLaunched accounts one backup attempt dispatched for a
// flagged task.
func (t *Tracker) SpeculationLaunched() { t.specLaunched.Add(1) }

// RecordBatch accounts one flushed batch bound for the endpoint.
func (t *Tracker) RecordBatch(endpointName string, tasks int) {
	ep := t.endpointFor(endpointName)
	ep.mu.Lock()
	ep.flushes++
	ep.batchTasks += int64(tasks)
	ep.mu.Unlock()
}

// ActiveStragglers is the number of currently-flagged in-flight
// attempts — the wfm_stragglers gauge.
func (t *Tracker) ActiveStragglers() int64 { return t.activeStragglers.Load() }

// TotalStragglers is the cumulative flagged count.
func (t *Tracker) TotalStragglers() int64 { return t.totalStragglers.Load() }

// Speculations returns (launched, wins) for speculative retries.
func (t *Tracker) Speculations() (launched, wins int64) {
	return t.specLaunched.Load(), t.specWins.Load()
}

// watchdog periodically scans the in-flight registry and flags attempts
// older than max(MinAge, k × endpoint median). Flag callbacks run
// outside both locks.
func (t *Tracker) watchdog() {
	defer t.wg.Done()
	ticker := time.NewTicker(t.cfg.CheckInterval)
	defer ticker.Stop()
	for {
		select {
		case <-t.stop:
			return
		case <-ticker.C:
			t.scan()
		}
	}
}

func (t *Tracker) scan() {
	now := time.Now()
	var fired []Straggler
	t.mu.Lock()
	for h := range t.inflight {
		if h.isFlag {
			continue
		}
		ep := h.ep
		ep.mu.Lock()
		var median time.Duration
		if ep.p50.Count() >= int64(t.cfg.MinSamples) {
			median = time.Duration(ep.p50.Value() * float64(time.Second))
		}
		ep.mu.Unlock()
		if median <= 0 {
			continue
		}
		age := now.Sub(h.start)
		threshold := time.Duration(float64(median) * t.cfg.StragglerFactor)
		if threshold < t.cfg.MinAge {
			threshold = t.cfg.MinAge
		}
		if age <= threshold {
			continue
		}
		h.isFlag = true
		h.flagInfo = Straggler{Task: h.task, Endpoint: ep.name, Age: age, Median: median}
		close(h.flagged)
		ep.mu.Lock()
		ep.stragglers++
		ep.mu.Unlock()
		t.activeStragglers.Add(1)
		t.totalStragglers.Add(1)
		fired = append(fired, h.flagInfo)
	}
	t.mu.Unlock()
	if t.cfg.OnStraggler != nil {
		for _, s := range fired {
			t.cfg.OnStraggler(s)
		}
	}
}

// Snapshot renders the endpoint table, sorted by endpoint name.
func (t *Tracker) Snapshot() []EndpointStats {
	t.mu.Lock()
	eps := make([]*endpoint, 0, len(t.eps))
	for _, ep := range t.eps {
		eps = append(eps, ep)
	}
	t.mu.Unlock()
	out := make([]EndpointStats, 0, len(eps))
	for _, ep := range eps {
		ep.mu.Lock()
		out = append(out, EndpointStats{
			Endpoint:        ep.name,
			Attempts:        ep.attempts,
			Failures:        ep.failures,
			Retries:         ep.retries,
			ColdStarts:      ep.coldStarts,
			Stragglers:      ep.stragglers,
			SpeculativeWins: ep.specWins,
			BatchFlushes:    ep.flushes,
			BatchTasks:      ep.batchTasks,
			P50:             ep.p50.Value(),
			P95:             ep.p95.Value(),
			P99:             ep.p99.Value(),
		})
		ep.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Endpoint < out[j].Endpoint })
	return out
}

// WriteMetrics writes the per-endpoint baselines as labeled Prometheus
// series. The run-global straggler/speculation counters are the
// Monitor's (which shares exposition pages with this table and outlives
// individual runs); the tracker owns only the per-endpoint families.
// Safe on a nil tracker (writes nothing).
func (t *Tracker) WriteMetrics(w io.Writer) error {
	if t == nil {
		return nil
	}
	stats := t.Snapshot()
	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	series := []struct {
		name, typ, help string
		val             func(*EndpointStats) float64
	}{
		{"wfm_endpoint_attempts_total", "counter", "Completed invocation attempts per endpoint.",
			func(e *EndpointStats) float64 { return float64(e.Attempts) }},
		{"wfm_endpoint_failures_total", "counter", "Failed invocation attempts per endpoint.",
			func(e *EndpointStats) float64 { return float64(e.Failures) }},
		{"wfm_endpoint_retry_rate", "gauge", "Fraction of attempts beyond each task's first.",
			func(e *EndpointStats) float64 { return e.RetryRate() }},
		{"wfm_endpoint_cold_start_rate", "gauge", "Fraction of attempts served by a cold pod.",
			func(e *EndpointStats) float64 { return e.ColdStartRate() }},
		{"wfm_endpoint_batch_occupancy", "gauge", "Mean tasks per flushed batch.",
			func(e *EndpointStats) float64 { return e.BatchOccupancy() }},
		{"wfm_endpoint_latency_p50_seconds", "gauge", "Streaming median attempt latency.",
			func(e *EndpointStats) float64 { return e.P50 }},
		{"wfm_endpoint_latency_p95_seconds", "gauge", "Streaming p95 attempt latency.",
			func(e *EndpointStats) float64 { return e.P95 }},
		{"wfm_endpoint_latency_p99_seconds", "gauge", "Streaming p99 attempt latency.",
			func(e *EndpointStats) float64 { return e.P99 }},
	}
	for _, s := range series {
		p("# HELP %s %s\n", s.name, s.help)
		p("# TYPE %s %s\n", s.name, s.typ)
		for i := range stats {
			p("%s{endpoint=%q} %g\n", s.name, stats[i].Endpoint, s.val(&stats[i]))
		}
	}
	return err
}
