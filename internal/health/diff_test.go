package health

import (
	"encoding/json"
	"fmt"
	"math"
	"strings"
	"testing"

	"wfserverless/internal/obs"
)

// syntheticRun builds a deterministic span set: a root, ten tasks split
// across two endpoints, one invoke span each. scaleA multiplies
// endpoint A's invoke durations (the injected slowdown); retriesA adds
// that many second-attempt invoke spans on A.
func syntheticRun(scaleA float64, retriesA int) []obs.Record {
	var recs []obs.Record
	end := 0.0
	add := func(r obs.Record) {
		recs = append(recs, r)
		if e := r.StartMS + r.DurMS; e > end {
			end = e
		}
	}
	for i := 0; i < 10; i++ {
		ep := "http://a/wfbench"
		dur := (10 + float64(i)) * scaleA
		if i%2 == 1 {
			ep = "http://b/wfbench"
			dur = 20 + float64(i)
		}
		task := obs.Record{
			Name: fmt.Sprintf("task%02d", i), Layer: obs.LayerWFM,
			SpanID: fmt.Sprintf("t%02d", i), Parent: "root",
			StartMS: float64(i * 5), DurMS: dur + 2,
		}
		add(task)
		add(obs.Record{
			Name: "invoke", Layer: obs.LayerWFM,
			SpanID: fmt.Sprintf("i%02d", i), Parent: task.SpanID,
			StartMS: task.StartMS + 1, DurMS: dur,
			Attrs: map[string]any{"endpoint": ep, "attempt": float64(1), "cold_start": coldFor(i)},
		})
	}
	for r := 0; r < retriesA; r++ {
		add(obs.Record{
			Name: "invoke", Layer: obs.LayerWFM,
			SpanID: fmt.Sprintf("r%02d", r), Parent: "t00",
			StartMS: 2, DurMS: 5 * scaleA,
			Attrs: map[string]any{"endpoint": "http://a/wfbench", "attempt": float64(2)},
		})
	}
	root := obs.Record{
		Name: "workflow:diffdemo", Layer: obs.LayerWFM,
		SpanID: "root", StartMS: 0, DurMS: end + 1,
	}
	return append([]obs.Record{root}, recs...)
}

func coldFor(i int) string {
	if i == 0 {
		return "true"
	}
	return "false"
}

func TestProfileRecords(t *testing.T) {
	p := ProfileRecords(syntheticRun(1, 0))
	if p.Invokes != 10 {
		t.Fatalf("invokes = %d, want 10", p.Invokes)
	}
	if len(p.Endpoints) != 2 {
		t.Fatalf("endpoints = %d, want 2", len(p.Endpoints))
	}
	a := p.Endpoints[0]
	if a.Endpoint != "http://a/wfbench" || a.Count != 5 || a.ColdStarts != 1 || a.Retries != 0 {
		t.Fatalf("endpoint a profile: %+v", a)
	}
	if a.P50MS != 14 || a.P95MS != 18 {
		t.Fatalf("endpoint a quantiles: p50=%v p95=%v, want 14/18", a.P50MS, a.P95MS)
	}
	if p.CriticalSpans == 0 || p.CriticalMS <= 0 {
		t.Fatalf("critical path empty: %+v", p)
	}
	if p.MakespanMS <= 0 {
		t.Fatal("makespan not derived")
	}
}

// TestDiffGolden pins the acceptance scenario: a 2× injected slowdown
// on one endpoint must surface as that endpoint's p95 shift (worst
// first) and as a critical-path delta, in both text and JSON.
func TestDiffGolden(t *testing.T) {
	oldP := ProfileRecords(syntheticRun(1, 0))
	newP := ProfileRecords(syntheticRun(2, 3))
	d := DiffProfiles(oldP, newP)

	var sb strings.Builder
	if err := d.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	const golden = `run diff: 21 -> 24 spans, 10 -> 13 invokes
makespan: 77.0ms -> 79.0ms (+2.6%)
endpoints (worst p95 shift first):
  http://a/wfbench
    p50 14.0 -> 20.0ms (+42.9%)  p95 18.0 -> 36.0ms (+100.0%)  p99 18.0 -> 36.0ms (+100.0%)  n 5 -> 8
    retries 0 -> 3  cold starts 1 -> 1
  http://b/wfbench
    p50 25.0 -> 25.0ms (+0.0%)  p95 29.0 -> 29.0ms (+0.0%)  p99 29.0 -> 29.0ms (+0.0%)  n 5 -> 5
retries: +3  cold starts: +0
critical path: 137.0ms (3 spans) -> 153.0ms (3 spans), +16.0ms
  wfm       137.0 -> 153.0ms (+16.0ms)
`
	if sb.String() != golden {
		t.Fatalf("text diff mismatch:\n--- got ---\n%s--- want ---\n%s", sb.String(), golden)
	}

	// JSON mode: machine-readable, worst endpoint first, pinpointing
	// the slowed endpoint's p95 shift.
	sb.Reset()
	if err := d.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var decoded Diff
	if err := json.Unmarshal([]byte(sb.String()), &decoded); err != nil {
		t.Fatalf("JSON mode not parseable: %v", err)
	}
	if len(decoded.Endpoints) != 2 || decoded.Endpoints[0].Endpoint != "http://a/wfbench" {
		t.Fatalf("JSON endpoints: %+v", decoded.Endpoints)
	}
	if math.Abs(decoded.Endpoints[0].P95DeltaPct-100) > 0.01 {
		t.Fatalf("p95 delta = %v, want 100", decoded.Endpoints[0].P95DeltaPct)
	}
	if decoded.CriticalDeltaMS <= 0 {
		t.Fatalf("critical delta = %v, want > 0", decoded.CriticalDeltaMS)
	}
	if decoded.RetryDelta != 3 {
		t.Fatalf("retry delta = %d, want 3", decoded.RetryDelta)
	}
}

func TestDiffNewEndpoint(t *testing.T) {
	oldP := ProfileRecords(nil)
	newP := ProfileRecords(syntheticRun(1, 0))
	d := DiffProfiles(oldP, newP)
	if len(d.Endpoints) != 2 || !d.Endpoints[0].NewEndpoint {
		t.Fatalf("new endpoints not marked: %+v", d.Endpoints)
	}
	var sb strings.Builder
	if err := d.WriteJSON(&sb); err != nil {
		t.Fatalf("JSON with new endpoints must not carry Inf: %v", err)
	}
	if !strings.Contains(sb.String(), `"newEndpoint": true`) {
		t.Fatal("JSON missing newEndpoint marker")
	}
}
