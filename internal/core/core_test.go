package core

import (
	"context"
	"strings"
	"testing"

	"wfserverless/internal/metrics"
	"wfserverless/internal/wfformat"
)

func knativeConfig() PlatformConfig {
	return PlatformConfig{
		Kind:                KindKnative,
		Workers:             10,
		CPURequestPerWorker: 0.25,
		MemRequestPerWorker: 64 << 20,
		ColdStart:           1,
		AutoscalePeriod:     1,
		StableWindow:        3,
		PodOverheadMem:      50 << 20,
		WorkerOverheadMem:   16 << 20,
		InputWait:           5,
	}
}

func localConfig() PlatformConfig {
	return PlatformConfig{
		Kind:              KindLocal,
		Workers:           10,
		Containers:        8,
		CPUsPerContainer:  2,
		PodOverheadMem:    50 << 20,
		WorkerOverheadMem: 16 << 20,
		InputWait:         5,
	}
}

func testSession(t *testing.T, cfg SessionConfig) *Session {
	t.Helper()
	if cfg.TimeScale == 0 {
		cfg.TimeScale = 0.002
	}
	if cfg.PhaseDelay == 0 {
		cfg.PhaseDelay = 0.5
	}
	if cfg.InputWait == 0 {
		cfg.InputWait = 5
	}
	s, err := NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func TestNewSessionValidation(t *testing.T) {
	if _, err := NewSession(SessionConfig{TimeScale: -1, Platform: knativeConfig()}); err == nil {
		t.Fatal("negative TimeScale accepted")
	}
	if _, err := NewSession(SessionConfig{Platform: PlatformConfig{Kind: "mystery", Workers: 1}}); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestRunRecipeKnative(t *testing.T) {
	s := testSession(t, SessionConfig{Platform: knativeConfig()})
	res, err := s.RunRecipe(context.Background(), "blast", 20, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan <= 0 {
		t.Fatalf("res = %+v", res)
	}
	if s.Knative() == nil || s.Knative().Requests() != 20 {
		t.Fatal("knative platform did not serve the workflow")
	}
	if s.URL() == "" {
		t.Fatal("no URL")
	}
}

func TestRunRecipeLocal(t *testing.T) {
	s := testSession(t, SessionConfig{Platform: localConfig()})
	res, err := s.RunRecipe(context.Background(), "cycles", 20, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan <= 0 {
		t.Fatal("no makespan")
	}
	if s.LocalRuntime() == nil || s.LocalRuntime().Requests() == 0 {
		t.Fatal("local runtime did not serve the workflow")
	}
	if s.Knative() != nil {
		t.Fatal("unexpected knative platform")
	}
}

func TestSessionReusableAcrossRuns(t *testing.T) {
	s := testSession(t, SessionConfig{Platform: knativeConfig()})
	for i := int64(0); i < 3; i++ {
		if _, err := s.RunRecipe(context.Background(), "seismology", 10, i); err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
	}
	if got := s.Knative().Requests(); got != 30 {
		t.Fatalf("requests = %d, want 30", got)
	}
}

func TestSamplingLifecycle(t *testing.T) {
	s := testSession(t, SessionConfig{Platform: knativeConfig()})
	if err := s.StartSampling(); err != nil {
		t.Fatal(err)
	}
	if err := s.StartSampling(); err == nil {
		t.Fatal("double StartSampling accepted")
	}
	if _, err := s.RunRecipe(context.Background(), "blast", 15, 1); err != nil {
		t.Fatal(err)
	}
	s.StopSampling()
	if s.Sampler().SeriesFor(metrics.MetricPower).Len() < 2 {
		t.Fatal("no power samples recorded")
	}
	if s.Sampler().MeanOf(metrics.MetricPower) <= 0 {
		t.Fatal("zero mean power")
	}
}

func TestRunHybridSplitsTraffic(t *testing.T) {
	sec := localConfig()
	s := testSession(t, SessionConfig{
		Platform:  knativeConfig(),
		Secondary: &sec,
	})
	if s.SecondaryURL() == "" {
		t.Fatal("no secondary URL")
	}
	w, err := s.GenerateWorkflow("blast", 20, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Dense blastall phase on serverless, everything else local — the
	// paper's proposed per-step mapping.
	res, err := s.RunHybrid(context.Background(), w, func(task *wfformat.Task) string {
		if task.Category == "blastall" {
			return KindKnative
		}
		return KindLocal
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan <= 0 {
		t.Fatal("no makespan")
	}
	if got := s.Knative().Requests(); got != 17 {
		t.Fatalf("knative served %d, want 17 blastall", got)
	}
	if got := s.LocalRuntime().Requests(); got != 3 {
		t.Fatalf("local served %d, want 3", got)
	}
}

func TestRunHybridRequiresSecondary(t *testing.T) {
	s := testSession(t, SessionConfig{Platform: knativeConfig()})
	w, _ := s.GenerateWorkflow("blast", 10, 1)
	if _, err := s.RunHybrid(context.Background(), w, func(*wfformat.Task) string { return KindKnative }); err == nil {
		t.Fatal("hybrid without secondary accepted")
	}
}

func TestRunHybridBadPick(t *testing.T) {
	sec := localConfig()
	s := testSession(t, SessionConfig{Platform: knativeConfig(), Secondary: &sec})
	w, _ := s.GenerateWorkflow("blast", 10, 1)
	_, err := s.RunHybrid(context.Background(), w, func(*wfformat.Task) string { return "mars" })
	if err == nil || !strings.Contains(err.Error(), "mars") {
		t.Fatalf("err = %v", err)
	}
}

func TestCloseIdempotentAndBlocksRuns(t *testing.T) {
	s := testSession(t, SessionConfig{Platform: localConfig()})
	s.Close()
	s.Close()
	if _, err := s.RunRecipe(context.Background(), "blast", 10, 1); err == nil {
		t.Fatal("run on closed session accepted")
	}
}

func TestTranslateSetsURLs(t *testing.T) {
	s := testSession(t, SessionConfig{Platform: knativeConfig()})
	w, _ := s.GenerateWorkflow("bwa", 10, 1)
	tw, err := s.Translate(w)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range tw.TaskNames() {
		if !strings.HasPrefix(tw.Tasks[name].Command.APIURL, s.URL()) {
			t.Fatalf("task %s URL = %q", name, tw.Tasks[name].Command.APIURL)
		}
	}
}
