package core

import (
	"bytes"
	"context"
	"testing"

	"wfserverless/internal/obs"
	"wfserverless/internal/wfm"
)

// TestThreeLayerTrace is the end-to-end observability check: one run on
// the Knative platform with tracing sampled must produce a single trace
// whose spans come from all three layers (workflow manager, platform,
// WfBench), export cleanly as Chrome trace-event JSON, and yield a
// critical path that descends from the workflow root across the layer
// boundary.
func TestThreeLayerTrace(t *testing.T) {
	tr := obs.NewTracer(obs.Options{SampleRatio: 1})
	mon := wfm.NewMonitor()
	s := testSession(t, SessionConfig{
		Platform:   knativeConfig(),
		Scheduling: wfm.ScheduleDependency,
		Tracer:     tr,
		Monitor:    mon,
	})
	res, err := s.RunRecipe(context.Background(), "blast", 12, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.TraceID == "" {
		t.Fatal("run has no trace ID")
	}
	if len(res.Spans) == 0 {
		t.Fatal("run collected no spans")
	}

	layers := map[string]int{}
	names := map[string]int{}
	for _, sp := range res.Spans {
		layers[sp.Layer]++
		names[sp.Name]++
		if sp.Trace.String() != res.TraceID {
			t.Fatalf("span %s belongs to trace %s, run is %s", sp.Name, sp.Trace, res.TraceID)
		}
	}
	for _, layer := range []string{obs.LayerWFM, obs.LayerPlatform, obs.LayerWfbench} {
		if layers[layer] == 0 {
			t.Fatalf("no spans from layer %q (layers: %v)", layer, layers)
		}
	}
	for _, name := range []string{"invoke", "queue", "execute", "coldstart", "cpu", "outputs"} {
		if names[name] == 0 {
			t.Fatalf("no %q spans recorded (names: %v)", name, names)
		}
	}

	trace := wfm.TraceOf(res)
	var buf bytes.Buffer
	if err := trace.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	recs, err := obs.ParseChromeTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(res.Spans) {
		t.Fatalf("chrome trace has %d records for %d spans", len(recs), len(res.Spans))
	}

	path := trace.SpanCriticalPath()
	if len(path) < 3 {
		t.Fatalf("critical path has %d spans, want a multi-layer chain", len(path))
	}
	if path[0].Layer != obs.LayerWFM {
		t.Fatalf("critical path starts in layer %q, want the workflow root", path[0].Layer)
	}
	crossed := false
	for _, r := range path {
		if r.Layer != obs.LayerWFM {
			crossed = true
		}
	}
	if !crossed {
		t.Fatalf("critical path never leaves the WFM layer: %+v", path)
	}

	snap := mon.Snapshot()
	if snap.Done != 12 || snap.Running != 0 || snap.Failed != 0 {
		t.Fatalf("monitor snapshot after run = %+v", snap)
	}
	if snap.Workflow == "" {
		t.Fatal("monitor did not record the workflow name")
	}
}
