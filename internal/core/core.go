// Package core is the top-level API of the framework the paper proposes
// (Figure 1): it assembles the four components — the WfCommons-derived
// workflow generator, the translators, a serverless platform (or the
// bare-metal local-container baseline, or both), and the serverless
// workflow manager — into a Session against which workflows are
// generated, translated, executed, and measured.
//
// A Session keeps its platform warm across runs, which is what the
// examples and long-running studies want; the experiments package builds
// one fresh Session per measurement so every Table/Figure cell starts
// from a cold, empty cluster exactly as the paper's campaigns do.
package core

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"time"

	"wfserverless/internal/cluster"
	"wfserverless/internal/container"
	"wfserverless/internal/metrics"
	"wfserverless/internal/obs"
	"wfserverless/internal/serverless"
	"wfserverless/internal/sharedfs"
	"wfserverless/internal/translator"
	"wfserverless/internal/wfbench"
	"wfserverless/internal/wfformat"
	"wfserverless/internal/wfgen"
	"wfserverless/internal/wfm"
)

// Platform kinds.
const (
	KindKnative = "knative"
	KindLocal   = "local"
)

// PlatformConfig provisions one execution platform inside a session.
type PlatformConfig struct {
	// Kind is KindKnative or KindLocal.
	Kind string
	// Workers per pod/container.
	Workers int
	// PM keeps WfBench ballast between invocations (--vm-keep).
	PM bool

	// Knative-only knobs.
	CPURequestPerWorker float64
	MemRequestPerWorker int64
	MinScale            int
	MaxScale            int
	ColdStart           float64 // nominal seconds
	AutoscalePeriod     float64
	StableWindow        float64
	InstantScaleUp      bool

	// Local-container-only knobs.
	Containers           int
	CPUsPerContainer     float64
	MemLimitPerContainer int64

	// Shared overheads.
	PodOverheadMem    int64
	WorkerOverheadMem int64
	PodOverheadCPU    float64
	InputWait         float64
}

// SessionConfig assembles a Session.
type SessionConfig struct {
	// Cluster is the compute substrate; nil provisions the paper's
	// two-node testbed.
	Cluster *cluster.Cluster
	// Drive is the shared drive; nil provisions an in-memory one.
	Drive sharedfs.Drive
	// TimeScale compresses all nominal durations; zero means 1.
	TimeScale float64
	// Engine overrides the WfBench stress engine (nil: SimEngine; use
	// wfbench.BurnEngine for real CPU burn).
	Engine wfbench.Engine

	// Platform is the primary execution platform.
	Platform PlatformConfig
	// Secondary optionally provisions a second platform for hybrid
	// executions (the paper's future-work direction of mapping
	// sub-workflows to different paradigms).
	Secondary *PlatformConfig

	// Workflow-manager knobs (nominal seconds).
	PhaseDelay  float64
	InputWait   float64
	MaxParallel int
	// Scheduling selects the manager's execution model; the zero value
	// is wfm.SchedulePhases (the paper's phase barriers).
	Scheduling wfm.Scheduling

	// Resilience knobs, passed through to the workflow manager: retry
	// budget, backoff shape, per-task deadline, and the per-endpoint
	// circuit breaker. All durations are nominal seconds.
	Retries         int
	RetryBackoff    float64
	RetryBackoffMax float64
	TaskTimeout     float64
	Breaker         wfm.BreakerOptions
	// Batching coalesces same-endpoint invocations into framed
	// /invoke-batch POSTs (see wfm.BatchOptions); disabled by default.
	Batching wfm.BatchOptions

	// SampleInterval is the telemetry period in nominal seconds; zero
	// defaults to 1 (the paper's 1 Hz PCP sampling).
	SampleInterval float64

	// Tracer records spans across all three layers of the request path
	// — workflow manager, serverless platform, and WfBench — into one
	// trace per sampled run. Nil disables tracing.
	Tracer *obs.Tracer
	// Monitor receives live workflow progress (task states, breaker
	// transitions, invocation latency) for the /metrics plane. Nil
	// disables it.
	Monitor *wfm.Monitor
	// Logger receives the manager's structured event log. Nil silences
	// it.
	Logger *slog.Logger
}

// platformHandle abstracts over the two platform implementations.
type platformHandle struct {
	kind string
	url  string
	stop func()

	knative *serverless.Platform
	local   *container.Runtime
}

// Session is a live framework instance.
type Session struct {
	cfg     SessionConfig
	clus    *cluster.Cluster
	drive   sharedfs.Drive
	manager *wfm.Manager
	sampler *metrics.Sampler

	primary   *platformHandle
	secondary *platformHandle

	sampling bool
	closed   bool
}

// NewSession provisions the platforms and the workflow manager. Close
// must be called to release them.
func NewSession(cfg SessionConfig) (*Session, error) {
	if cfg.TimeScale == 0 {
		cfg.TimeScale = 1
	}
	if cfg.TimeScale < 0 {
		return nil, errors.New("core: negative TimeScale")
	}
	if cfg.SampleInterval == 0 {
		cfg.SampleInterval = 1
	}
	s := &Session{cfg: cfg}
	s.clus = cfg.Cluster
	if s.clus == nil {
		s.clus = cluster.PaperTestbed()
	}
	s.drive = cfg.Drive
	if s.drive == nil {
		s.drive = sharedfs.NewMem()
	}

	var err error
	s.primary, err = s.provision(cfg.Platform)
	if err != nil {
		return nil, err
	}
	if cfg.Secondary != nil {
		s.secondary, err = s.provision(*cfg.Secondary)
		if err != nil {
			s.primary.stop()
			return nil, err
		}
	}

	s.manager, err = wfm.New(wfm.Options{
		Drive:           s.drive,
		TimeScale:       cfg.TimeScale,
		PhaseDelay:      cfg.PhaseDelay,
		InputWait:       cfg.InputWait,
		MaxParallel:     cfg.MaxParallel,
		Scheduling:      cfg.Scheduling,
		Retries:         cfg.Retries,
		RetryBackoff:    cfg.RetryBackoff,
		RetryBackoffMax: cfg.RetryBackoffMax,
		TaskTimeout:     cfg.TaskTimeout,
		Breaker:         cfg.Breaker,
		Batching:        cfg.Batching,
		Tracer:          cfg.Tracer,
		Monitor:         cfg.Monitor,
		Logger:          cfg.Logger,
	})
	if err != nil {
		s.Close()
		return nil, err
	}

	s.sampler = metrics.NewSampler(time.Duration(cfg.SampleInterval * cfg.TimeScale * float64(time.Second)))
	s.registerGauges()
	return s, nil
}

func (s *Session) provision(pc PlatformConfig) (*platformHandle, error) {
	switch pc.Kind {
	case KindKnative:
		p, err := serverless.New(serverless.Options{
			Cluster:           s.clus,
			Drive:             s.drive,
			TimeScale:         s.cfg.TimeScale,
			Engine:            s.cfg.Engine,
			ColdStart:         pc.ColdStart,
			AutoscalePeriod:   pc.AutoscalePeriod,
			StableWindow:      pc.StableWindow,
			PodOverheadMem:    pc.PodOverheadMem,
			WorkerOverheadMem: pc.WorkerOverheadMem,
			PodOverheadCPU:    pc.PodOverheadCPU,
			InputWait:         pc.InputWait,
			InstantScaleUp:    pc.InstantScaleUp,
			Tracer:            s.cfg.Tracer,
		})
		if err != nil {
			return nil, err
		}
		url, err := p.Start()
		if err != nil {
			return nil, err
		}
		if err := p.Apply(serverless.ServiceConfig{
			Name:                "wfbench",
			Workers:             pc.Workers,
			CPURequestPerWorker: pc.CPURequestPerWorker,
			MemRequestPerWorker: pc.MemRequestPerWorker,
			MinScale:            pc.MinScale,
			MaxScale:            pc.MaxScale,
			KeepMem:             pc.PM,
		}); err != nil {
			p.Stop()
			return nil, err
		}
		return &platformHandle{kind: KindKnative, url: url, stop: p.Stop, knative: p}, nil

	case KindLocal:
		rt, err := container.NewRuntime(container.Options{
			Cluster:           s.clus,
			Drive:             s.drive,
			TimeScale:         s.cfg.TimeScale,
			Engine:            s.cfg.Engine,
			InputWait:         pc.InputWait,
			PodOverheadMem:    pc.PodOverheadMem,
			WorkerOverheadMem: pc.WorkerOverheadMem,
			PodOverheadCPU:    pc.PodOverheadCPU,
		})
		if err != nil {
			return nil, err
		}
		url, err := rt.Start()
		if err != nil {
			return nil, err
		}
		n := pc.Containers
		if n <= 0 {
			n = 1
		}
		for i := 0; i < n; i++ {
			if _, err := rt.Run(container.Config{
				Name:     fmt.Sprintf("wfbench-%03d", i),
				Workers:  pc.Workers,
				CPUs:     pc.CPUsPerContainer,
				MemLimit: pc.MemLimitPerContainer,
				KeepMem:  pc.PM,
			}); err != nil {
				rt.Stop()
				return nil, fmt.Errorf("core: container %d: %w", i, err)
			}
		}
		return &platformHandle{kind: KindLocal, url: url, stop: rt.Stop, local: rt}, nil
	}
	return nil, fmt.Errorf("core: unknown platform kind %q", pc.Kind)
}

func (s *Session) registerGauges() {
	s.sampler.Register(metrics.MetricCPUUser, func() float64 { return s.clus.Snapshot().BusyCores })
	s.sampler.Register(metrics.MetricCPUReserved, func() float64 { return s.clus.Snapshot().ReservedCores })
	s.sampler.Register("cpu.usage.cores", func() float64 {
		u := s.clus.Snapshot()
		if u.BusyCores > u.ReservedCores {
			return u.BusyCores
		}
		return u.ReservedCores
	})
	s.sampler.Register(metrics.MetricMemUsed, func() float64 { return float64(s.clus.Snapshot().UsedMem) })
	s.sampler.Register(metrics.MetricMemReserved, func() float64 { return float64(s.clus.Snapshot().ReservedMem) })
	s.sampler.Register(metrics.MetricPower, func() float64 { return s.clus.Snapshot().PowerWatts })
	if s.primary.knative != nil {
		p := s.primary.knative
		s.sampler.Register(metrics.MetricPodsRunning, func() float64 { return float64(p.Pods()) })
		s.sampler.Register(metrics.MetricQueueDepth, func() float64 { return float64(p.QueueDepth()) })
	} else if s.primary.local != nil {
		rt := s.primary.local
		s.sampler.Register(metrics.MetricQueueDepth, func() float64 { return float64(rt.QueueDepth()) })
	}
}

// Cluster returns the session's substrate.
func (s *Session) Cluster() *cluster.Cluster { return s.clus }

// Drive returns the shared drive.
func (s *Session) Drive() sharedfs.Drive { return s.drive }

// Sampler returns the telemetry sampler.
func (s *Session) Sampler() *metrics.Sampler { return s.sampler }

// URL returns the primary platform's endpoint.
func (s *Session) URL() string { return s.primary.url }

// SecondaryURL returns the hybrid second platform's endpoint, or "".
func (s *Session) SecondaryURL() string {
	if s.secondary == nil {
		return ""
	}
	return s.secondary.url
}

// Knative exposes the primary (or secondary) Knative platform if one was
// provisioned, else nil.
func (s *Session) Knative() *serverless.Platform {
	if s.primary.knative != nil {
		return s.primary.knative
	}
	if s.secondary != nil {
		return s.secondary.knative
	}
	return nil
}

// LocalRuntime exposes the local-container runtime if provisioned.
func (s *Session) LocalRuntime() *container.Runtime {
	if s.primary.local != nil {
		return s.primary.local
	}
	if s.secondary != nil {
		return s.secondary.local
	}
	return nil
}

// StartSampling begins telemetry collection; call before Run for
// measured executions.
func (s *Session) StartSampling() error {
	if s.sampling {
		return errors.New("core: sampling already started")
	}
	s.sampling = true
	return s.sampler.Start()
}

// StopSampling halts telemetry.
func (s *Session) StopSampling() {
	if s.sampling {
		s.sampler.Stop()
		s.sampling = false
	}
}

// GenerateWorkflow builds a workflow instance from a recipe.
func (s *Session) GenerateWorkflow(recipe string, numTasks int, seed int64) (*wfformat.Workflow, error) {
	return wfgen.Generate(wfgen.Spec{Recipe: recipe, NumTasks: numTasks, Seed: seed})
}

// Translate annotates the workflow for the primary platform.
func (s *Session) Translate(w *wfformat.Workflow) (*wfformat.Workflow, error) {
	return s.translateFor(w, s.primary)
}

func (s *Session) translateFor(w *wfformat.Workflow, h *platformHandle) (*wfformat.Workflow, error) {
	if h.kind == KindKnative {
		return translator.Knative(w, translator.KnativeOptions{IngressURL: h.url, Workdir: "shared"})
	}
	return translator.LocalContainer(w, translator.LocalContainerOptions{BaseURL: h.url, Workdir: "shared"})
}

// Run translates and executes the workflow on the primary platform.
func (s *Session) Run(ctx context.Context, w *wfformat.Workflow) (*wfm.Result, error) {
	if s.closed {
		return nil, errors.New("core: session closed")
	}
	tw, err := s.Translate(w)
	if err != nil {
		return nil, err
	}
	return s.manager.Run(ctx, tw)
}

// RunRecipe generates, translates, and executes in one call — the
// quickstart path.
func (s *Session) RunRecipe(ctx context.Context, recipe string, numTasks int, seed int64) (*wfm.Result, error) {
	w, err := s.GenerateWorkflow(recipe, numTasks, seed)
	if err != nil {
		return nil, err
	}
	return s.Run(ctx, w)
}

// RunHybrid executes the workflow with a per-task platform choice: pick
// returns KindKnative or KindLocal for each task. This implements the
// paper's proposed hybrid approach of "leveraging a combination of both
// computational paradigms ... applied strategically to different steps
// within the workflows". The session must have a Secondary platform of
// the other kind.
func (s *Session) RunHybrid(ctx context.Context, w *wfformat.Workflow, pick func(*wfformat.Task) string) (*wfm.Result, error) {
	if s.closed {
		return nil, errors.New("core: session closed")
	}
	if s.secondary == nil {
		return nil, errors.New("core: RunHybrid needs a Secondary platform")
	}
	byKind := map[string]*platformHandle{
		s.primary.kind:   s.primary,
		s.secondary.kind: s.secondary,
	}
	out := w.Clone()
	for _, name := range out.TaskNames() {
		t := out.Tasks[name]
		kind := pick(t)
		h, ok := byKind[kind]
		if !ok {
			return nil, fmt.Errorf("core: pick(%s) returned unknown kind %q", name, kind)
		}
		if h.kind == KindKnative {
			t.Command.APIURL = h.url + "/wfbench/wfbench"
		} else {
			t.Command.APIURL = h.url + "/wfbench"
		}
		for i := range t.Command.Arguments {
			t.Command.Arguments[i].Workdir = "shared"
		}
	}
	return s.manager.Run(ctx, out)
}

// Close releases all platforms. Idempotent.
func (s *Session) Close() {
	if s.closed {
		return
	}
	s.closed = true
	s.StopSampling()
	if s.secondary != nil {
		s.secondary.stop()
	}
	if s.primary != nil {
		s.primary.stop()
	}
}
