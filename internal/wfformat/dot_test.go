package wfformat

import (
	"strings"
	"testing"
)

func TestToDOT(t *testing.T) {
	w := miniBlast(t)
	var b strings.Builder
	if err := w.ToDOT(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"digraph",
		"rank=same; // phase 0",
		"rank=same; // phase 2",
		`"split_fasta_1" -> "blastall_1";`,
		`"blastall_2" -> "cat_1";`,
		"fillcolor=",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("DOT missing %q:\n%s", want, out)
		}
	}
}

func TestToDOTRejectsCycle(t *testing.T) {
	w := miniBlast(t)
	w.Link("cat_1", "split_fasta_1")
	var b strings.Builder
	if err := w.ToDOT(&b); err == nil {
		t.Fatal("cyclic workflow rendered")
	}
}

func TestCategoryColorStable(t *testing.T) {
	a := categoryColor("blastall")
	b := categoryColor("blastall")
	if a != b {
		t.Fatal("color not deterministic")
	}
	if !strings.HasPrefix(a, "#") {
		t.Fatalf("color = %q", a)
	}
}

func TestSanitizeDOTID(t *testing.T) {
	if got := sanitizeDOTID("Blast-250 x"); got != "Blast_250_x" {
		t.Fatalf("sanitizeDOTID = %q", got)
	}
}
