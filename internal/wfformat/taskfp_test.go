package wfformat

import (
	"fmt"
	"math/rand"
	"testing"
)

// fpRandomWorkflow builds a layered random DAG: each non-root task
// reads the outputs of up to two random tasks from the previous layer,
// every task additionally reads one shared external input.
func fpRandomWorkflow(t *testing.T, tasks, width int, seed int64) *Workflow {
	t.Helper()
	w := New("taskfp-random")
	rng := rand.New(rand.NewSource(seed))
	var prev []string
	for i := 0; i < tasks; {
		layer := 1 + rng.Intn(width)
		if layer > tasks-i {
			layer = tasks - i
		}
		var cur []string
		for k := 0; k < layer; k++ {
			name := fmt.Sprintf("task_%05d", i)
			out := fmt.Sprintf("out_%05d", i)
			i++
			var parents []string
			if len(prev) > 0 {
				for _, pi := range rng.Perm(len(prev))[:1+rng.Intn(min(2, len(prev)))] {
					parents = append(parents, prev[pi])
				}
			}
			files := []File{
				{Link: LinkOutput, Name: out, SizeInBytes: 10},
				{Link: LinkInput, Name: "ext_seed", SizeInBytes: 5},
			}
			var inputs []string
			for _, p := range parents {
				in := "out_" + p[len("task_"):]
				files = append(files, File{Link: LinkInput, Name: in, SizeInBytes: 10})
				inputs = append(inputs, in)
			}
			task := &Task{
				Name: name, Type: TypeCompute, Category: "synthetic", Cores: 1,
				RuntimeInSeconds: 0.1,
				Command: Command{
					Program: "wfbench",
					Arguments: []Argument{{
						Name: name, PercentCPU: 0.5, CPUWork: 100,
						Out: map[string]int64{out: 10}, Inputs: inputs,
					}},
					APIURL: "http://host/wfbench",
				},
				Files: files,
			}
			if err := w.AddTask(task); err != nil {
				t.Fatal(err)
			}
			for _, p := range parents {
				if err := w.Link(p, name); err != nil {
					t.Fatal(err)
				}
			}
			cur = append(cur, name)
		}
		prev = cur
	}
	return w
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func compileFPs(t *testing.T, w *Workflow, ext func(string, int64) uint64) (map[string]Hash, map[string][]string) {
	t.Helper()
	csr, tasks, err := w.Compile()
	if err != nil {
		t.Fatal(err)
	}
	fps := TaskFingerprints(csr, tasks, ext)
	byName := make(map[string]Hash, len(tasks))
	children := make(map[string][]string, len(tasks))
	for id, task := range tasks {
		byName[task.Name] = fps[id]
		for _, cid := range csr.Children(int32(id)) {
			children[task.Name] = append(children[task.Name], tasks[cid].Name)
		}
	}
	return byName, children
}

// descendants returns the transitive closure below name, excluding it.
func descendants(children map[string][]string, name string) map[string]bool {
	seen := make(map[string]bool)
	var walk func(string)
	walk = func(n string) {
		for _, c := range children[n] {
			if !seen[c] {
				seen[c] = true
				walk(c)
			}
		}
	}
	walk(name)
	return seen
}

// TestTaskFingerprintsEditScope is the property the whole memoization
// layer rests on: perturbing one task changes exactly that task's and
// its descendants' fingerprints, for every task of random DAGs.
func TestTaskFingerprintsEditScope(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		w := fpRandomWorkflow(t, 60, 8, seed)
		base, children := compileFPs(t, w, nil)
		for _, victim := range w.TaskNames() {
			edited := fpRandomWorkflow(t, 60, 8, seed)
			edited.Tasks[victim].Command.Arguments[0].CPUWork += 17
			got, _ := compileFPs(t, edited, nil)
			want := descendants(children, victim)
			want[victim] = true
			for name, fp := range got {
				changed := fp != base[name]
				if changed != want[name] {
					t.Fatalf("seed %d, edit %s: task %s changed=%v, want %v",
						seed, victim, name, changed, want[name])
				}
			}
		}
	}
}

// TestTaskFingerprintsOrderIndependent reorders every set-semantics
// slice (files, argument inputs, parents, children) and expects
// identical fingerprints for every task.
func TestTaskFingerprintsOrderIndependent(t *testing.T) {
	w := fpRandomWorkflow(t, 40, 6, 7)
	base, _ := compileFPs(t, w, nil)
	shuffled := fpRandomWorkflow(t, 40, 6, 7)
	rng := rand.New(rand.NewSource(99))
	for _, task := range shuffled.Tasks {
		rng.Shuffle(len(task.Files), func(i, k int) {
			task.Files[i], task.Files[k] = task.Files[k], task.Files[i]
		})
		in := task.Command.Arguments[0].Inputs
		rng.Shuffle(len(in), func(i, k int) { in[i], in[k] = in[k], in[i] })
		rng.Shuffle(len(task.Parents), func(i, k int) {
			task.Parents[i], task.Parents[k] = task.Parents[k], task.Parents[i]
		})
		rng.Shuffle(len(task.Children), func(i, k int) {
			task.Children[i], task.Children[k] = task.Children[k], task.Children[i]
		})
	}
	got, _ := compileFPs(t, shuffled, nil)
	for name, fp := range got {
		if fp != base[name] {
			t.Fatalf("task %s: fingerprint changed under slice reordering", name)
		}
	}
}

// TestTaskFingerprintsIgnoreDeployment: retargeting the workflow at
// another deployment (api_url, per-run IDs) keeps every fingerprint.
func TestTaskFingerprintsIgnoreDeployment(t *testing.T) {
	w := fpRandomWorkflow(t, 30, 5, 11)
	base, _ := compileFPs(t, w, nil)
	moved := fpRandomWorkflow(t, 30, 5, 11)
	for _, task := range moved.Tasks {
		task.Command.APIURL = "http://elsewhere/" + task.Name
		task.ID = "42"
		task.StartedAt = "2026-08-08T00:00:00Z"
	}
	got, _ := compileFPs(t, moved, nil)
	for name, fp := range got {
		if fp != base[name] {
			t.Fatalf("task %s: deployment metadata changed fingerprint", name)
		}
	}
}

// TestTaskFingerprintsExternalInputs: a changed external-input content
// address invalidates exactly the tasks that read the file and their
// descendants; ext receives the declared size.
func TestTaskFingerprintsExternalInputs(t *testing.T) {
	w := fpRandomWorkflow(t, 40, 6, 13)
	sawSize := false
	extA := func(name string, size int64) uint64 {
		if name == "ext_seed" && size == 5 {
			sawSize = true
		}
		return 1
	}
	extB := func(name string, size int64) uint64 { return 2 }
	base, _ := compileFPs(t, w, extA)
	if !sawSize {
		t.Fatal("ext never saw the declared external input")
	}
	got, _ := compileFPs(t, w, extB)
	// Every task reads ext_seed directly, so every fingerprint moves.
	for name, fp := range got {
		if fp == base[name] {
			t.Fatalf("task %s: external content address change did not invalidate", name)
		}
	}
	// Intermediate outputs are not external: ext must never be asked
	// about a produced file.
	ext := func(name string, size int64) uint64 {
		if name != "ext_seed" {
			t.Fatalf("ext consulted for produced file %q", name)
		}
		return 3
	}
	compileFPs(t, w, ext)
}

func BenchmarkTaskFingerprints(b *testing.B) {
	w := New("bench")
	for i := 0; i < 1000; i++ {
		name := fmt.Sprintf("task_%05d", i)
		task := &Task{
			Name: name, Type: TypeCompute, Cores: 1,
			Command: Command{Program: "wfbench",
				Arguments: []Argument{{Name: name, Out: map[string]int64{"out_" + name: 1}}}},
			Files: []File{{Link: LinkOutput, Name: "out_" + name, SizeInBytes: 1}},
		}
		if err := w.AddTask(task); err != nil {
			b.Fatal(err)
		}
		if i > 0 {
			if err := w.Link(fmt.Sprintf("task_%05d", i-1), name); err != nil {
				b.Fatal(err)
			}
		}
	}
	csr, tasks, err := w.Compile()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TaskFingerprints(csr, tasks, nil)
	}
}
