package wfformat

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash"
	"math"
	"sort"
)

// Hash is a workflow content fingerprint.
type Hash [32]byte

// String renders the fingerprint as lowercase hex.
func (h Hash) String() string { return hex.EncodeToString(h[:]) }

// IsZero reports whether the fingerprint is unset.
func (h Hash) IsZero() bool { return h == Hash{} }

// ParseHash decodes the hex form produced by String.
func ParseHash(s string) (Hash, error) {
	var h Hash
	b, err := hex.DecodeString(s)
	if err != nil || len(b) != len(h) {
		return Hash{}, errParseHash(s, err)
	}
	copy(h[:], b)
	return h, nil
}

func errParseHash(s string, err error) error {
	if err != nil {
		return fmt.Errorf("wfformat: parsing fingerprint %q: %v", s, err)
	}
	return fmt.Errorf("wfformat: fingerprint %q: want %d hex bytes", s, len(Hash{}))
}

// Fingerprint computes a canonical content hash of the workflow: the
// same logical workflow always hashes the same regardless of task map
// iteration order, slice ordering of parents/children/files/inputs, or
// JSON formatting. It covers the workflow name and, per task, the
// fields that define *what runs and how tasks relate*: type, category,
// cores, runtime, program, the WfBench argument block, the dependency
// edges, and the file set with sizes.
//
// Deployment- and instance-scoped metadata is deliberately excluded —
// api_url (changes per platform deployment), task ID and StartedAt
// (assigned per run), and the workflow's CreatedAt/Description — so a
// journal written against one deployment can be resumed against
// another that serves the same workflow.
func Fingerprint(w *Workflow) Hash {
	d := digester{h: sha256.New()}
	d.str(w.Name)
	names := w.TaskNames() // sorted
	d.num(uint64(len(names)))
	for _, name := range names {
		t := w.Tasks[name]
		d.str(t.Name)
		d.str(t.Type)
		d.str(t.Category)
		d.num(uint64(t.Cores))
		d.f64(t.RuntimeInSeconds)
		d.str(t.Command.Program)
		d.num(uint64(len(t.Command.Arguments)))
		for _, a := range t.Command.Arguments {
			d.str(a.Name)
			d.f64(a.PercentCPU)
			d.f64(a.CPUWork)
			d.num(uint64(a.MemBytes))
			d.str(a.Workdir)
			d.strs(sortedCopy(a.Inputs))
			outs := make([]string, 0, len(a.Out))
			for k := range a.Out {
				outs = append(outs, k)
			}
			sort.Strings(outs)
			d.num(uint64(len(outs)))
			for _, k := range outs {
				d.str(k)
				d.num(uint64(a.Out[k]))
			}
		}
		d.strs(sortedCopy(t.Parents))
		d.strs(sortedCopy(t.Children))
		files := t.Files
		if !sort.SliceIsSorted(files, fileLess(files)) {
			files = append([]File(nil), t.Files...)
			sort.Slice(files, fileLess(files))
		}
		d.num(uint64(len(files)))
		for _, f := range files {
			d.str(f.Link)
			d.str(f.Name)
			d.num(uint64(f.SizeInBytes))
		}
	}
	var h Hash
	d.h.Sum(h[:0])
	return h
}

// sortedCopy returns s in sorted order, copying only when it has to —
// workflow slices are usually already sorted, and Fingerprint runs on
// the hot path of every journaled Run.
func sortedCopy(s []string) []string {
	if sort.StringsAreSorted(s) {
		return s
	}
	c := append([]string(nil), s...)
	sort.Strings(c)
	return c
}

// fileLess orders files by (link, name) for canonical hashing.
func fileLess(files []File) func(i, k int) bool {
	return func(i, k int) bool {
		if files[i].Link != files[k].Link {
			return files[i].Link < files[k].Link
		}
		return files[i].Name < files[k].Name
	}
}

// digester frames every field as length-prefixed bytes so adjacent
// strings can never collide ("ab","c" vs "a","bc").
type digester struct {
	h       hash.Hash
	buf     [10]byte
	scratch []byte // reused for string→byte conversion, zero-alloc steady state
}

func (d *digester) num(v uint64) {
	n := binary.PutUvarint(d.buf[:], v)
	d.h.Write(d.buf[:n])
}

func (d *digester) f64(v float64) { d.num(math.Float64bits(v)) }

func (d *digester) str(s string) {
	d.num(uint64(len(s)))
	d.scratch = append(d.scratch[:0], s...)
	d.h.Write(d.scratch)
}

func (d *digester) strs(s []string) {
	d.num(uint64(len(s)))
	for _, v := range s {
		d.str(v)
	}
}
