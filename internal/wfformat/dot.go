package wfformat

import (
	"fmt"
	"hash/fnv"
	"io"
	"sort"
	"strings"
)

// ToDOT renders the workflow as a Graphviz digraph, one node per
// function colored by category and ranked by phase — the equivalent of
// the paper's generate_visualization.py output that composes Figure 3's
// DAG panels.
func (w *Workflow) ToDOT(out io.Writer) error {
	phases, err := w.Phases()
	if err != nil {
		return err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", sanitizeDOTID(w.Name))
	fmt.Fprintf(&b, "  rankdir=TB;\n  node [shape=ellipse, style=filled, fontsize=10];\n")
	fmt.Fprintf(&b, "  label=%q;\n  labelloc=t;\n", w.Name)
	for pi, phase := range phases {
		fmt.Fprintf(&b, "  { rank=same; // phase %d\n", pi)
		for _, name := range phase {
			t := w.Tasks[name]
			fmt.Fprintf(&b, "    %q [fillcolor=%q, label=%q];\n",
				name, categoryColor(t.Category), t.Category)
		}
		fmt.Fprintf(&b, "  }\n")
	}
	for _, name := range w.TaskNames() {
		children := append([]string(nil), w.Tasks[name].Children...)
		sort.Strings(children)
		for _, c := range children {
			fmt.Fprintf(&b, "  %q -> %q;\n", name, c)
		}
	}
	fmt.Fprintf(&b, "}\n")
	_, err = io.WriteString(out, b.String())
	return err
}

// dotPalette holds visually distinct pastel fills.
var dotPalette = []string{
	"#a6cee3", "#b2df8a", "#fb9a99", "#fdbf6f", "#cab2d6",
	"#ffff99", "#1f78b4", "#33a02c", "#e31a1c", "#ff7f00",
}

// categoryColor deterministically assigns a palette color per category.
func categoryColor(category string) string {
	h := fnv.New32a()
	h.Write([]byte(category))
	return dotPalette[int(h.Sum32())%len(dotPalette)]
}

func sanitizeDOTID(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			return r
		default:
			return '_'
		}
	}, s)
}
