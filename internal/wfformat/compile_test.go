package wfformat

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"reflect"
	"testing"
)

func TestCompileAlignsTasksAndEdges(t *testing.T) {
	w := miniBlast(t)
	csr, tasks, err := w.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if csr.Len() != w.Len() || len(tasks) != w.Len() {
		t.Fatalf("compiled %d/%d tasks, want %d", csr.Len(), len(tasks), w.Len())
	}
	// IDs follow sorted name order and the task slice is ID-aligned.
	names := w.TaskNames()
	for i, n := range names {
		id, ok := csr.ID(n)
		if !ok || int(id) != i {
			t.Fatalf("ID(%q) = %d,%v, want %d", n, id, ok, i)
		}
		if tasks[id].Name != n {
			t.Fatalf("tasks[%d].Name = %q, want %q", id, tasks[id].Name, n)
		}
	}
	// Edges mirror the parents/children entries.
	g, err := w.Graph()
	if err != nil {
		t.Fatal(err)
	}
	if csr.EdgeCount() != g.EdgeCount() {
		t.Fatalf("CSR edges = %d, graph edges = %d", csr.EdgeCount(), g.EdgeCount())
	}
	for _, n := range names {
		id, _ := csr.ID(n)
		var children []string
		for _, c := range csr.Children(id) {
			children = append(children, csr.Name(c))
		}
		if want := g.Children(n); !reflect.DeepEqual(children, append([]string(nil), want...)) && (len(children) != 0 || len(want) != 0) {
			t.Fatalf("%s children = %v, want %v", n, children, want)
		}
	}
}

func TestCompileRejectsUnknownChild(t *testing.T) {
	w := New("broken")
	task := buildTask("a", "x", nil, map[string]int64{"o": 1})
	task.Children = []string{"ghost"}
	if err := w.AddTask(task); err != nil {
		t.Fatal(err)
	}
	if _, _, err := w.Compile(); err == nil {
		t.Fatal("unknown child accepted")
	}
}

func TestPhasesMatchGraphLevels(t *testing.T) {
	w := miniBlast(t)
	phases, err := w.Phases()
	if err != nil {
		t.Fatal(err)
	}
	g, err := w.Graph()
	if err != nil {
		t.Fatal(err)
	}
	levels, err := g.Levels()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(phases, levels) {
		t.Fatalf("Phases = %v, Levels = %v", phases, levels)
	}
}

func TestMarshalCompactRoundTrips(t *testing.T) {
	w := miniBlast(t)
	compact, err := w.MarshalCompact()
	if err != nil {
		t.Fatal(err)
	}
	pretty, err := w.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if len(compact) >= len(pretty) {
		t.Fatalf("compact (%d bytes) not smaller than indented (%d bytes)", len(compact), len(pretty))
	}
	if bytes.ContainsRune(compact, '\n') {
		t.Fatal("compact output contains newlines")
	}
	// Both encodings describe the same workflow.
	var a, b any
	if err := json.Unmarshal(compact, &a); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(pretty, &b); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("compact and indented encodings disagree")
	}
	got, err := Parse(compact)
	if err != nil {
		t.Fatal(err)
	}
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
	if got.Len() != w.Len() {
		t.Fatalf("round trip lost tasks: %d vs %d", got.Len(), w.Len())
	}
}

func TestSaveCompactLoads(t *testing.T) {
	w := miniBlast(t)
	path := filepath.Join(t.TempDir(), "wf.json")
	if err := w.SaveCompact(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != w.Len() || got.Name != w.Name {
		t.Fatalf("loaded %q with %d tasks", got.Name, got.Len())
	}
}

// TestValidateTransitiveProducerStillAccepted pins the Validate fast
// path: a file produced by a grandparent (transitive ancestor, not a
// direct parent) must still validate via the reachability fallback.
func TestValidateTransitiveProducerStillAccepted(t *testing.T) {
	w := New("transitive")
	a := buildTask("a", "x", nil, map[string]int64{"fa": 1})
	b := buildTask("b", "x", []string{"fa"}, map[string]int64{"fb": 1})
	// c consumes fa, produced by grandparent a — legal: a is an ancestor.
	c := buildTask("c", "x", []string{"fb", "fa"}, map[string]int64{"fc": 1})
	for _, task := range []*Task{a, b, c} {
		if err := w.AddTask(task); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Link("a", "b"); err != nil {
		t.Fatal(err)
	}
	if err := w.Link("b", "c"); err != nil {
		t.Fatal(err)
	}
	if err := w.Validate(); err != nil {
		t.Fatalf("transitive producer rejected: %v", err)
	}
}

// TestValidateNonAncestorProducerRejected pins the failing side: a file
// produced by an unrelated task must still be flagged.
func TestValidateNonAncestorProducerRejected(t *testing.T) {
	w := New("sideways")
	a := buildTask("a", "x", nil, map[string]int64{"fa": 1})
	b := buildTask("b", "x", []string{"fa"}, map[string]int64{"fb": 1})
	for _, task := range []*Task{a, b} {
		if err := w.AddTask(task); err != nil {
			t.Fatal(err)
		}
	}
	// No a -> b link: a is not an ancestor of b, so b reading fa is
	// a dependency the DAG does not order.
	if err := w.Validate(); err == nil {
		t.Fatal("non-ancestor producer accepted")
	}
}
