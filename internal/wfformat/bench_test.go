package wfformat

import (
	"math/rand"
	"testing"
)

func bigWorkflow(b *testing.B) *Workflow {
	b.Helper()
	r := rand.New(rand.NewSource(1))
	w := randomFanoutBench(r, 40, 30)
	return w
}

// randomFanoutBench builds a valid layered workflow for benchmarks.
func randomFanoutBench(r *rand.Rand, phases, width int) *Workflow {
	w := New("bench")
	var prev []*Task
	id := 0
	for p := 0; p < phases; p++ {
		var cur []*Task
		for i := 0; i < width; i++ {
			id++
			name := "t" + itoa(id)
			out := map[string]int64{name + "_out": 100}
			var inputs []string
			var parent *Task
			if len(prev) > 0 {
				parent = prev[r.Intn(len(prev))]
				inputs = parent.OutputFiles()
			}
			task := buildTask(name, "cat", inputs, out)
			w.AddTask(task)
			if parent != nil {
				w.Link(parent.Name, name)
			}
			cur = append(cur, task)
		}
		prev = cur
	}
	return w
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var digits []byte
	for n > 0 {
		digits = append([]byte{byte('0' + n%10)}, digits...)
		n /= 10
	}
	return string(digits)
}

func BenchmarkValidate(b *testing.B) {
	w := bigWorkflow(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.Validate(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMarshalParse(b *testing.B) {
	w := bigWorkflow(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data, err := w.Marshal()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := Parse(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPhases(b *testing.B) {
	w := bigWorkflow(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.Phases(); err != nil {
			b.Fatal(err)
		}
	}
}
