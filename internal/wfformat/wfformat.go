// Package wfformat defines the workflow description format used throughout
// this repository. It mirrors the JSON the paper's Knative Translator
// emits (Section III-A): a workflow is a set of named compute functions,
// each carrying its command (the WfBench program with key-value
// arguments), the HTTP endpoint that executes it (api_url), its parent and
// child functions, and its input/output files with sizes in bytes.
package wfformat

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"slices"
	"sort"
	"strings"

	"wfserverless/internal/dag"
)

// Link direction for a file relative to its task.
const (
	LinkInput  = "input"
	LinkOutput = "output"
)

// TypeCompute is the only task type the paper's workflows use.
const TypeCompute = "compute"

// File is a data product consumed or produced by a task.
type File struct {
	Link        string `json:"link"`
	Name        string `json:"name"`
	SizeInBytes int64  `json:"sizeInBytes"`
}

// Argument carries the WfBench invocation parameters of one function,
// following the key-value structure the paper's translator introduces
// ("the first modification converts the entry 'arguments' from a list of
// parameters to a sub-entry with key-values").
type Argument struct {
	Name       string           `json:"name"`
	PercentCPU float64          `json:"percent-cpu"`
	CPUWork    float64          `json:"cpu-work"`
	MemBytes   int64            `json:"mem-bytes,omitempty"`
	Out        map[string]int64 `json:"out"`
	Inputs     []string         `json:"inputs"`
	Workdir    string           `json:"workdir,omitempty"`
}

// Command describes how to execute a task. APIURL is the second paper
// modification: the HTTP request endpoint of the function on the
// serverless platform.
type Command struct {
	Program   string     `json:"program"`
	Arguments []Argument `json:"arguments"`
	APIURL    string     `json:"api_url,omitempty"`
}

// Task is one function of a workflow.
type Task struct {
	Name             string   `json:"name"`
	Type             string   `json:"type"`
	Command          Command  `json:"command"`
	Parents          []string `json:"parents"`
	Children         []string `json:"children"`
	Files            []File   `json:"files"`
	RuntimeInSeconds float64  `json:"runtimeInSeconds"`
	Cores            int      `json:"cores"`
	ID               string   `json:"id"`
	Category         string   `json:"category"`
	StartedAt        string   `json:"startedAt,omitempty"`
}

// InputFiles returns the names of the task's input files, sorted.
func (t *Task) InputFiles() []string { return t.filesByLink(LinkInput) }

// OutputFiles returns the names of the task's output files, sorted.
func (t *Task) OutputFiles() []string { return t.filesByLink(LinkOutput) }

func (t *Task) filesByLink(link string) []string {
	var out []string
	for _, f := range t.Files {
		if f.Link == link {
			out = append(out, f.Name)
		}
	}
	sort.Strings(out)
	return out
}

// OutputSizes returns output file name -> size.
func (t *Task) OutputSizes() map[string]int64 {
	m := make(map[string]int64)
	for _, f := range t.Files {
		if f.Link == LinkOutput {
			m[f.Name] = f.SizeInBytes
		}
	}
	return m
}

// Workflow is a named DAG of tasks. Tasks are keyed by their unique name,
// matching the paper's JSON excerpt where the top-level object maps
// function names to function descriptions.
type Workflow struct {
	Name        string           `json:"name"`
	Description string           `json:"description,omitempty"`
	CreatedAt   string           `json:"createdAt,omitempty"`
	Tasks       map[string]*Task `json:"tasks"`
}

// New returns an empty workflow with the given name.
func New(name string) *Workflow {
	return &Workflow{Name: name, Tasks: make(map[string]*Task)}
}

// AddTask inserts t, indexed by its name. It returns an error on duplicate
// or empty names so generator bugs surface early.
func (w *Workflow) AddTask(t *Task) error {
	if t.Name == "" {
		return fmt.Errorf("wfformat: task with empty name")
	}
	if _, ok := w.Tasks[t.Name]; ok {
		return fmt.Errorf("wfformat: duplicate task %q", t.Name)
	}
	if w.Tasks == nil {
		w.Tasks = make(map[string]*Task)
	}
	w.Tasks[t.Name] = t
	return nil
}

// Link records a parent -> child dependency on both tasks. Lists built
// through Link stay sorted (the invariant insertSorted relies on), so
// linking n children costs O(n log n) instead of the full re-sort per
// edge that made 100k-wide fan-outs quadratic to construct.
func (w *Workflow) Link(parent, child string) error {
	p, ok := w.Tasks[parent]
	if !ok {
		return fmt.Errorf("wfformat: link: unknown parent %q", parent)
	}
	c, ok := w.Tasks[child]
	if !ok {
		return fmt.Errorf("wfformat: link: unknown child %q", child)
	}
	p.Children = insertSorted(p.Children, child)
	c.Parents = insertSorted(c.Parents, parent)
	return nil
}

// insertSorted inserts v into the sorted slice s unless already
// present. Generators emit edges in name order, so the common case is
// an O(1) append past the current maximum; everything else binary-
// searches the insertion point.
func insertSorted(s []string, v string) []string {
	if n := len(s); n == 0 || s[n-1] < v {
		return append(s, v)
	}
	i, found := slices.BinarySearch(s, v)
	if found {
		return s
	}
	return slices.Insert(s, i, v)
}

// TaskNames returns all task names, sorted.
func (w *Workflow) TaskNames() []string {
	out := make([]string, 0, len(w.Tasks))
	for n := range w.Tasks {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of tasks.
func (w *Workflow) Len() int { return len(w.Tasks) }

// Graph builds the dependency DAG from the parents/children entries.
func (w *Workflow) Graph() (*dag.Graph, error) {
	g := dag.New()
	for _, n := range w.TaskNames() {
		g.AddVertex(n)
	}
	for _, n := range w.TaskNames() {
		t := w.Tasks[n]
		for _, c := range t.Children {
			if _, ok := w.Tasks[c]; !ok {
				return nil, fmt.Errorf("wfformat: task %q lists unknown child %q", n, c)
			}
			if err := g.AddEdge(n, c); err != nil {
				return nil, err
			}
		}
	}
	return g, nil
}

// Compile interns the workflow's task names (IDs assigned in sorted
// name order) and builds the CSR dependency graph plus the ID-aligned
// task slice — the representation the workflow manager's hot path runs
// on. String-keyed lookups survive only at this boundary; past it,
// every structure is indexed by dense int32 task ID.
func (w *Workflow) Compile() (*dag.CSR, []*Task, error) {
	names := w.TaskNames()
	b := dag.NewCSRBuilder(len(names), len(names))
	for _, n := range names {
		b.AddVertex(n)
	}
	ix := b.Index()
	tasks := make([]*Task, len(names))
	for _, n := range names {
		t := w.Tasks[n]
		id, _ := ix.ID(n)
		tasks[id] = t
		for _, c := range t.Children {
			cid, ok := ix.ID(c)
			if !ok {
				return nil, nil, fmt.Errorf("wfformat: task %q lists unknown child %q", n, c)
			}
			if err := b.AddEdgeIDs(id, cid); err != nil {
				return nil, nil, err
			}
		}
	}
	csr, err := b.Build()
	if err != nil {
		return nil, nil, err
	}
	return csr, tasks, nil
}

// Phases returns the topological levels of the workflow: the "steps" of
// the paper, where all functions in a phase are invoked simultaneously.
// Each level is sorted lexicographically.
func (w *Workflow) Phases() ([][]string, error) {
	// IDs are assigned in sorted name order, so the ID-ordered level
	// slices are already lexicographic.
	csr, _, err := w.Compile()
	if err != nil {
		return nil, err
	}
	levels := csr.LevelSlices()
	out := make([][]string, len(levels))
	for i, ids := range levels {
		lv := make([]string, len(ids))
		for j, id := range ids {
			lv[j] = csr.Name(id)
		}
		out[i] = lv
	}
	return out, nil
}

// Categories returns category -> number of tasks, the function-type
// composition shown in the third column of the paper's Figure 3.
func (w *Workflow) Categories() map[string]int {
	m := make(map[string]int)
	for _, t := range w.Tasks {
		m[t.Category]++
	}
	return m
}

// TotalDataBytes sums the sizes of all distinct files in the workflow.
// When a file appears as both an output (at its producer) and an input (at
// consumers), the producer's declared size is authoritative.
func (w *Workflow) TotalDataBytes() int64 {
	seen := make(map[string]int64)
	isOutput := make(map[string]bool)
	for _, t := range w.Tasks {
		for _, f := range t.Files {
			if f.Link == LinkOutput {
				seen[f.Name] = f.SizeInBytes
				isOutput[f.Name] = true
			} else if !isOutput[f.Name] {
				seen[f.Name] = f.SizeInBytes
			}
		}
	}
	var total int64
	for _, sz := range seen {
		total += sz
	}
	return total
}

// ValidationError aggregates all problems found by Validate.
type ValidationError struct {
	Problems []string
}

func (e *ValidationError) Error() string {
	return fmt.Sprintf("wfformat: invalid workflow: %s", strings.Join(e.Problems, "; "))
}

// Validate checks structural integrity: tasks have names and compute
// type, parent/child references are symmetric and resolve, the DAG is
// acyclic, and every input file is either produced by an ancestor task or
// is an external workflow input (no parent produces it and the task is
// allowed to read it from the shared drive as initial data).
func (w *Workflow) Validate() error {
	var probs []string
	add := func(format string, args ...interface{}) {
		probs = append(probs, fmt.Sprintf(format, args...))
	}
	producers := make(map[string]string) // file -> producing task
	// Symmetric edge checks binary-search a per-task sorted view of the
	// other side's list, built lazily once per task: linear scans per
	// edge made validating a wide fan-out quadratic. Lists that arrive
	// unsorted (hand-built or deserialized) are cloned and sorted here
	// rather than assumed to follow Link's invariant.
	sortedViews := make(map[*[]string][]string)
	edgeListed := func(list *[]string, v string) bool {
		view, ok := sortedViews[list]
		if !ok {
			view = *list
			if !sort.StringsAreSorted(view) {
				view = slices.Clone(view)
				sort.Strings(view)
			}
			sortedViews[list] = view
		}
		_, found := slices.BinarySearch(view, v)
		return found
	}
	for _, n := range w.TaskNames() {
		t := w.Tasks[n]
		if t.Name != n {
			add("task keyed %q has name %q", n, t.Name)
		}
		if t.Type != TypeCompute {
			add("task %q has unsupported type %q", n, t.Type)
		}
		if t.Cores <= 0 {
			add("task %q has cores %d", n, t.Cores)
		}
		if len(t.Command.Arguments) != 1 {
			add("task %q has %d argument blocks, want 1", n, len(t.Command.Arguments))
		} else {
			a := t.Command.Arguments[0]
			if a.Name != t.Name {
				add("task %q argument name %q mismatch", n, a.Name)
			}
			if a.PercentCPU < 0 || a.PercentCPU > 1 {
				add("task %q percent-cpu %v outside [0,1]", n, a.PercentCPU)
			}
			if a.CPUWork < 0 {
				add("task %q negative cpu-work", n)
			}
		}
		for _, p := range t.Parents {
			pt, ok := w.Tasks[p]
			if !ok {
				add("task %q lists unknown parent %q", n, p)
				continue
			}
			if !edgeListed(&pt.Children, n) {
				add("task %q lists parent %q which does not list it as child", n, p)
			}
		}
		for _, c := range t.Children {
			ct, ok := w.Tasks[c]
			if !ok {
				add("task %q lists unknown child %q", n, c)
				continue
			}
			if !edgeListed(&ct.Parents, n) {
				add("task %q lists child %q which does not list it as parent", n, c)
			}
		}
		for _, f := range t.Files {
			if f.Link != LinkInput && f.Link != LinkOutput {
				add("task %q file %q has link %q", n, f.Name, f.Link)
			}
			if f.SizeInBytes < 0 {
				add("task %q file %q has negative size", n, f.Name)
			}
			if f.Link == LinkOutput {
				if prev, dup := producers[f.Name]; dup && prev != n {
					add("file %q produced by both %q and %q", f.Name, prev, n)
				}
				producers[f.Name] = n
			}
		}
	}
	if len(probs) == 0 {
		g, err := w.Graph()
		if err != nil {
			add("%v", err)
		} else if _, err := g.Levels(); err != nil {
			add("%v", err)
		} else {
			// Every input produced by some task must come from an
			// ancestor. In well-formed workflows the producer is almost
			// always a direct parent, so check the edge first and pay a
			// reachability walk only for transitive producers — O(V+E)
			// in practice instead of materializing full ancestor sets
			// per task (O(V·E), which collapses at 100k tasks).
			for _, n := range w.TaskNames() {
				t := w.Tasks[n]
				for _, in := range t.InputFiles() {
					prod, ok := producers[in]
					if !ok || prod == n || g.HasEdge(prod, n) {
						continue
					}
					if !g.HasPath(prod, n) {
						add("task %q input %q produced by non-ancestor %q", n, in, prod)
					}
				}
			}
		}
	}
	if len(probs) > 0 {
		return &ValidationError{Problems: probs}
	}
	return nil
}

// ExternalInputs returns the input files no task produces — the initial
// data that must be staged onto the shared drive before execution.
func (w *Workflow) ExternalInputs() []File {
	produced := make(map[string]bool)
	for _, t := range w.Tasks {
		for _, f := range t.Files {
			if f.Link == LinkOutput {
				produced[f.Name] = true
			}
		}
	}
	seen := make(map[string]File)
	for _, t := range w.Tasks {
		for _, f := range t.Files {
			if f.Link == LinkInput && !produced[f.Name] {
				seen[f.Name] = f
			}
		}
	}
	out := make([]File, 0, len(seen))
	for _, f := range seen {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Marshal serializes the workflow to indented JSON for human readers.
// Large generated instances should use MarshalCompact: pretty-printing
// a 100k-task workflow is O(n) extra bytes and garbage for no reader.
func (w *Workflow) Marshal() ([]byte, error) {
	return json.MarshalIndent(w, "", "  ")
}

// MarshalCompact serializes the workflow to single-line JSON — the fast
// path for generated instances and machine-to-machine transfer.
func (w *Workflow) MarshalCompact() ([]byte, error) {
	return json.Marshal(w)
}

// Parse reads a workflow from JSON bytes.
func Parse(data []byte) (*Workflow, error) {
	var w Workflow
	if err := json.Unmarshal(data, &w); err != nil {
		return nil, fmt.Errorf("wfformat: parse: %w", err)
	}
	if w.Tasks == nil {
		w.Tasks = make(map[string]*Task)
	}
	return &w, nil
}

// Read parses a workflow from r.
func Read(r io.Reader) (*Workflow, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("wfformat: read: %w", err)
	}
	return Parse(data)
}

// Load reads a workflow description from a JSON file.
func Load(path string) (*Workflow, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

// Save writes the workflow as indented JSON to path.
func (w *Workflow) Save(path string) error {
	data, err := w.Marshal()
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// SaveCompact writes the workflow as compact JSON to path — used for
// generated instances, where nobody reads the bytes and indentation
// only inflates file size and encode time.
func (w *Workflow) SaveCompact(path string) error {
	data, err := w.MarshalCompact()
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// Clone returns a deep copy of the workflow, so translators can annotate
// without mutating the generator's output.
func (w *Workflow) Clone() *Workflow {
	n := New(w.Name)
	n.Description = w.Description
	n.CreatedAt = w.CreatedAt
	for name, t := range w.Tasks {
		c := *t
		c.Parents = append([]string(nil), t.Parents...)
		c.Children = append([]string(nil), t.Children...)
		c.Files = append([]File(nil), t.Files...)
		c.Command.Arguments = make([]Argument, len(t.Command.Arguments))
		for i, a := range t.Command.Arguments {
			ca := a
			ca.Inputs = append([]string(nil), a.Inputs...)
			ca.Out = make(map[string]int64, len(a.Out))
			for k, v := range a.Out {
				ca.Out[k] = v
			}
			c.Command.Arguments[i] = ca
		}
		n.Tasks[name] = &c
	}
	return n
}

// Stats summarizes a workflow's structure, used by Figure 3.
type Stats struct {
	Tasks          int
	Edges          int
	Phases         int
	MaxPhaseWidth  int
	MeanPhaseWidth float64
	Categories     map[string]int
	PhaseWidths    []int
	TotalBytes     int64
	// CriticalPathSeconds is the longest dependency chain weighted by
	// each task's nominal runtime — the lower bound on makespan with
	// unlimited parallelism.
	CriticalPathSeconds float64
	// CriticalPath lists the tasks on that chain.
	CriticalPath []string
}

// ComputeStats derives the characterization numbers for the workflow.
func (w *Workflow) ComputeStats() (*Stats, error) {
	phases, err := w.Phases()
	if err != nil {
		return nil, err
	}
	g, err := w.Graph()
	if err != nil {
		return nil, err
	}
	s := &Stats{
		Tasks:      w.Len(),
		Edges:      g.EdgeCount(),
		Phases:     len(phases),
		Categories: w.Categories(),
		TotalBytes: w.TotalDataBytes(),
	}
	for _, p := range phases {
		s.PhaseWidths = append(s.PhaseWidths, len(p))
		if len(p) > s.MaxPhaseWidth {
			s.MaxPhaseWidth = len(p)
		}
	}
	if len(phases) > 0 {
		s.MeanPhaseWidth = float64(w.Len()) / float64(len(phases))
	}
	weights := make(map[string]float64, w.Len())
	for name, t := range w.Tasks {
		weights[name] = t.RuntimeInSeconds
	}
	path, total, err := g.CriticalPath(weights)
	if err != nil {
		return nil, err
	}
	s.CriticalPath = path
	s.CriticalPathSeconds = total
	return s, nil
}
