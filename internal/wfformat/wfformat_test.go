package wfformat

import (
	"math/rand"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

// buildTask returns a minimal valid compute task.
func buildTask(name, category string, inputs []string, outputs map[string]int64) *Task {
	t := &Task{
		Name:     name,
		Type:     TypeCompute,
		Cores:    1,
		ID:       name,
		Category: category,
		Command: Command{
			Program: "wfbench",
			Arguments: []Argument{{
				Name:       name,
				PercentCPU: 0.9,
				CPUWork:    100,
				Out:        outputs,
				Inputs:     inputs,
			}},
		},
	}
	for _, in := range inputs {
		t.Files = append(t.Files, File{Link: LinkInput, Name: in, SizeInBytes: 100})
	}
	for out, sz := range outputs {
		t.Files = append(t.Files, File{Link: LinkOutput, Name: out, SizeInBytes: sz})
	}
	return t
}

// miniBlast builds a split -> {blastall_1, blastall_2} -> cat workflow.
func miniBlast(t *testing.T) *Workflow {
	t.Helper()
	w := New("blast-mini")
	split := buildTask("split_fasta_1", "split_fasta",
		[]string{"input.fasta"},
		map[string]int64{"split_1_out.txt": 200, "split_2_out.txt": 200})
	b1 := buildTask("blastall_1", "blastall",
		[]string{"split_1_out.txt"}, map[string]int64{"blast_1_out.txt": 400})
	b2 := buildTask("blastall_2", "blastall",
		[]string{"split_2_out.txt"}, map[string]int64{"blast_2_out.txt": 400})
	cat := buildTask("cat_1", "cat",
		[]string{"blast_1_out.txt", "blast_2_out.txt"},
		map[string]int64{"final.txt": 800})
	for _, task := range []*Task{split, b1, b2, cat} {
		if err := w.AddTask(task); err != nil {
			t.Fatal(err)
		}
	}
	for _, link := range [][2]string{
		{"split_fasta_1", "blastall_1"},
		{"split_fasta_1", "blastall_2"},
		{"blastall_1", "cat_1"},
		{"blastall_2", "cat_1"},
	} {
		if err := w.Link(link[0], link[1]); err != nil {
			t.Fatal(err)
		}
	}
	return w
}

func TestAddTaskDuplicate(t *testing.T) {
	w := New("w")
	if err := w.AddTask(buildTask("a", "c", nil, nil)); err != nil {
		t.Fatal(err)
	}
	if err := w.AddTask(buildTask("a", "c", nil, nil)); err == nil {
		t.Fatal("duplicate task accepted")
	}
	if err := w.AddTask(&Task{}); err == nil {
		t.Fatal("empty-name task accepted")
	}
}

func TestLinkUnknown(t *testing.T) {
	w := New("w")
	w.AddTask(buildTask("a", "c", nil, nil))
	if err := w.Link("a", "nope"); err == nil {
		t.Fatal("link to unknown child accepted")
	}
	if err := w.Link("nope", "a"); err == nil {
		t.Fatal("link from unknown parent accepted")
	}
}

func TestLinkIdempotent(t *testing.T) {
	w := miniBlast(t)
	before := len(w.Tasks["split_fasta_1"].Children)
	if err := w.Link("split_fasta_1", "blastall_1"); err != nil {
		t.Fatal(err)
	}
	if got := len(w.Tasks["split_fasta_1"].Children); got != before {
		t.Fatalf("re-link duplicated child: %d -> %d", before, got)
	}
}

func TestValidateOK(t *testing.T) {
	if err := miniBlast(t).Validate(); err != nil {
		t.Fatalf("valid workflow rejected: %v", err)
	}
}

func TestValidateAsymmetricLink(t *testing.T) {
	w := miniBlast(t)
	// break symmetry: remove child entry but keep the parent's
	cat := w.Tasks["cat_1"]
	cat.Parents = []string{"blastall_1"} // drop blastall_2
	err := w.Validate()
	if err == nil {
		t.Fatal("asymmetric link accepted")
	}
	if !strings.Contains(err.Error(), "blastall_2") {
		t.Fatalf("error does not name offender: %v", err)
	}
}

func TestValidateBadPercentCPU(t *testing.T) {
	w := miniBlast(t)
	w.Tasks["cat_1"].Command.Arguments[0].PercentCPU = 1.5
	if err := w.Validate(); err == nil {
		t.Fatal("percent-cpu > 1 accepted")
	}
}

func TestValidateCycle(t *testing.T) {
	w := miniBlast(t)
	if err := w.Link("cat_1", "split_fasta_1"); err != nil {
		t.Fatal(err)
	}
	if err := w.Validate(); err == nil {
		t.Fatal("cyclic workflow accepted")
	}
}

func TestValidateDuplicateProducer(t *testing.T) {
	w := miniBlast(t)
	// blastall_2 also claims to produce blast_1_out.txt
	b2 := w.Tasks["blastall_2"]
	b2.Files = append(b2.Files, File{Link: LinkOutput, Name: "blast_1_out.txt", SizeInBytes: 1})
	if err := w.Validate(); err == nil {
		t.Fatal("duplicate producer accepted")
	}
}

func TestValidateNonAncestorInput(t *testing.T) {
	w := miniBlast(t)
	// blastall_2 reads a file produced by its sibling blastall_1
	b2 := w.Tasks["blastall_2"]
	b2.Files = append(b2.Files, File{Link: LinkInput, Name: "blast_1_out.txt", SizeInBytes: 1})
	if err := w.Validate(); err == nil {
		t.Fatal("input from non-ancestor accepted")
	}
}

func TestPhases(t *testing.T) {
	w := miniBlast(t)
	phases, err := w.Phases()
	if err != nil {
		t.Fatal(err)
	}
	want := [][]string{
		{"split_fasta_1"},
		{"blastall_1", "blastall_2"},
		{"cat_1"},
	}
	if !reflect.DeepEqual(phases, want) {
		t.Fatalf("Phases = %v, want %v", phases, want)
	}
}

func TestCategories(t *testing.T) {
	w := miniBlast(t)
	got := w.Categories()
	want := map[string]int{"split_fasta": 1, "blastall": 2, "cat": 1}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Categories = %v, want %v", got, want)
	}
}

func TestInputOutputFiles(t *testing.T) {
	w := miniBlast(t)
	cat := w.Tasks["cat_1"]
	if got := cat.InputFiles(); !reflect.DeepEqual(got, []string{"blast_1_out.txt", "blast_2_out.txt"}) {
		t.Fatalf("InputFiles = %v", got)
	}
	if got := cat.OutputFiles(); !reflect.DeepEqual(got, []string{"final.txt"}) {
		t.Fatalf("OutputFiles = %v", got)
	}
	if got := cat.OutputSizes()["final.txt"]; got != 800 {
		t.Fatalf("OutputSizes[final.txt] = %d", got)
	}
}

func TestExternalInputs(t *testing.T) {
	w := miniBlast(t)
	ext := w.ExternalInputs()
	if len(ext) != 1 || ext[0].Name != "input.fasta" {
		t.Fatalf("ExternalInputs = %v", ext)
	}
}

func TestTotalDataBytes(t *testing.T) {
	w := miniBlast(t)
	// input.fasta(100) + split outs (200+200) + blast outs (400+400) + final (800)
	if got := w.TotalDataBytes(); got != 2100 {
		t.Fatalf("TotalDataBytes = %d, want 2100", got)
	}
}

func TestMarshalParseRoundTrip(t *testing.T) {
	w := miniBlast(t)
	data, err := w.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	w2, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(w, w2) {
		t.Fatal("round trip changed workflow")
	}
}

func TestParseBadJSON(t *testing.T) {
	if _, err := Parse([]byte("{nope")); err == nil {
		t.Fatal("bad JSON accepted")
	}
}

func TestSaveLoad(t *testing.T) {
	w := miniBlast(t)
	path := filepath.Join(t.TempDir(), "wf.json")
	if err := w.Save(path); err != nil {
		t.Fatal(err)
	}
	w2, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(w, w2) {
		t.Fatal("Save/Load round trip changed workflow")
	}
}

func TestLoadMissing(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestCloneIsDeep(t *testing.T) {
	w := miniBlast(t)
	c := w.Clone()
	c.Tasks["cat_1"].Command.APIURL = "http://changed"
	c.Tasks["cat_1"].Command.Arguments[0].Out["final.txt"] = 1
	c.Tasks["cat_1"].Parents[0] = "mutated"
	if w.Tasks["cat_1"].Command.APIURL != "" {
		t.Fatal("clone shares Command")
	}
	if w.Tasks["cat_1"].Command.Arguments[0].Out["final.txt"] != 800 {
		t.Fatal("clone shares Out map")
	}
	if w.Tasks["cat_1"].Parents[0] == "mutated" {
		t.Fatal("clone shares Parents slice")
	}
}

func TestComputeStats(t *testing.T) {
	w := miniBlast(t)
	s, err := w.ComputeStats()
	if err != nil {
		t.Fatal(err)
	}
	if s.Tasks != 4 || s.Edges != 4 || s.Phases != 3 {
		t.Fatalf("stats = %+v", s)
	}
	if s.MaxPhaseWidth != 2 {
		t.Fatalf("MaxPhaseWidth = %d", s.MaxPhaseWidth)
	}
	if !reflect.DeepEqual(s.PhaseWidths, []int{1, 2, 1}) {
		t.Fatalf("PhaseWidths = %v", s.PhaseWidths)
	}
	if s.MeanPhaseWidth < 1.3 || s.MeanPhaseWidth > 1.4 {
		t.Fatalf("MeanPhaseWidth = %v", s.MeanPhaseWidth)
	}
}

// randomFanout builds a random but always-valid workflow: a chain of
// phases, each task consuming one file from a random task in the
// previous phase.
func randomFanout(r *rand.Rand) *Workflow {
	w := New("rand")
	phases := 2 + r.Intn(4)
	var prev []*Task
	id := 0
	for p := 0; p < phases; p++ {
		width := 1 + r.Intn(5)
		var cur []*Task
		for i := 0; i < width; i++ {
			name := "t" + string(rune('a'+p)) + "_" + string(rune('0'+i))
			_ = id
			out := map[string]int64{name + "_out": int64(10 + r.Intn(100))}
			var inputs []string
			var parent *Task
			if len(prev) > 0 {
				parent = prev[r.Intn(len(prev))]
				inputs = parent.OutputFiles()
			} else {
				inputs = []string{"external_in"}
			}
			task := buildTask(name, "cat", inputs, out)
			w.AddTask(task)
			if parent != nil {
				w.Link(parent.Name, name)
			}
			cur = append(cur, task)
			id++
		}
		prev = cur
	}
	return w
}

func TestQuickRandomWorkflowsValidate(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		w := randomFanout(r)
		if err := w.Validate(); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		data, err := w.Marshal()
		if err != nil {
			return false
		}
		w2, err := Parse(data)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(w, w2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickPhasesCoverAllTasks(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		w := randomFanout(r)
		phases, err := w.Phases()
		if err != nil {
			return false
		}
		n := 0
		for _, p := range phases {
			n += len(p)
		}
		return n == w.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestComputeStatsCriticalPath(t *testing.T) {
	w := miniBlast(t)
	for _, task := range w.Tasks {
		task.RuntimeInSeconds = 1
	}
	s, err := w.ComputeStats()
	if err != nil {
		t.Fatal(err)
	}
	// split -> blastall -> cat: 3 tasks of 1s each.
	if s.CriticalPathSeconds != 3 {
		t.Fatalf("CriticalPathSeconds = %v, want 3", s.CriticalPathSeconds)
	}
	if len(s.CriticalPath) != 3 {
		t.Fatalf("CriticalPath = %v", s.CriticalPath)
	}
}
