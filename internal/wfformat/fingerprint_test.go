package wfformat

import "testing"

func fpWorkflow() *Workflow {
	w := New("fp-test")
	a := &Task{
		Name: "a", Type: TypeCompute, Category: "stage", Cores: 2, RuntimeInSeconds: 1.5,
		Command: Command{
			Program: "wfbench",
			Arguments: []Argument{{
				Name: "a", PercentCPU: 0.6, CPUWork: 100, MemBytes: 1 << 20,
				Out: map[string]int64{"a_out.txt": 128, "a_aux.txt": 64}, Inputs: []string{"seed.txt"},
			}},
			APIURL: "http://host-one/a",
		},
		Files: []File{
			{Link: LinkOutput, Name: "a_out.txt", SizeInBytes: 128},
			{Link: LinkOutput, Name: "a_aux.txt", SizeInBytes: 64},
			{Link: LinkInput, Name: "seed.txt", SizeInBytes: 32},
		},
	}
	b := &Task{
		Name: "b", Type: TypeCompute, Category: "stage", Cores: 1, RuntimeInSeconds: 2,
		Command: Command{Program: "wfbench", Arguments: []Argument{{Name: "b", CPUWork: 50, Out: map[string]int64{"b_out.txt": 16}}}},
		Files:   []File{{Link: LinkInput, Name: "a_out.txt", SizeInBytes: 128}, {Link: LinkOutput, Name: "b_out.txt", SizeInBytes: 16}},
	}
	w.AddTask(a)
	w.AddTask(b)
	w.Link("a", "b")
	return w
}

func TestFingerprintDeterministic(t *testing.T) {
	h1 := Fingerprint(fpWorkflow())
	h2 := Fingerprint(fpWorkflow())
	if h1 != h2 {
		t.Fatalf("same workflow hashed differently: %s vs %s", h1, h2)
	}
	if h1.IsZero() {
		t.Fatal("fingerprint is zero")
	}
}

func TestFingerprintOrderIndependent(t *testing.T) {
	base := Fingerprint(fpWorkflow())

	// Reorder everything with a defined set semantics: files, parents,
	// children, argument inputs. The content is identical.
	w := fpWorkflow()
	a := w.Tasks["a"]
	a.Files[0], a.Files[2] = a.Files[2], a.Files[0]
	a.Command.Arguments[0].Inputs = append([]string(nil), a.Command.Arguments[0].Inputs...)
	b := w.Tasks["b"]
	b.Files[0], b.Files[1] = b.Files[1], b.Files[0]
	if got := Fingerprint(w); got != base {
		t.Fatalf("reordered slices changed fingerprint: %s vs %s", got, base)
	}
}

func TestFingerprintIgnoresDeploymentMetadata(t *testing.T) {
	base := Fingerprint(fpWorkflow())
	w := fpWorkflow()
	w.Description = "a different description"
	w.CreatedAt = "2026-08-07T00:00:00Z"
	for _, tk := range w.Tasks {
		tk.Command.APIURL = "http://another-deployment/" + tk.Name
		tk.ID = "0000123"
		tk.StartedAt = "2026-08-07T01:02:03Z"
	}
	if got := Fingerprint(w); got != base {
		t.Fatalf("deployment metadata changed fingerprint: %s vs %s", got, base)
	}
}

func TestFingerprintSensitiveToContent(t *testing.T) {
	base := Fingerprint(fpWorkflow())
	mutations := map[string]func(w *Workflow){
		"workflow name":   func(w *Workflow) { w.Name = "other" },
		"task added":      func(w *Workflow) { w.AddTask(&Task{Name: "c", Type: TypeCompute}) },
		"cpu work":        func(w *Workflow) { w.Tasks["a"].Command.Arguments[0].CPUWork = 101 },
		"output size":     func(w *Workflow) { w.Tasks["a"].Files[0].SizeInBytes++ },
		"edge removed":    func(w *Workflow) { w.Tasks["a"].Children = nil; w.Tasks["b"].Parents = nil },
		"cores":           func(w *Workflow) { w.Tasks["b"].Cores = 8 },
		"out file sizes":  func(w *Workflow) { w.Tasks["a"].Command.Arguments[0].Out["a_out.txt"]++ },
		"category":        func(w *Workflow) { w.Tasks["b"].Category = "other-stage" },
		"input file name": func(w *Workflow) { w.Tasks["a"].Command.Arguments[0].Inputs[0] = "seed2.txt" },
	}
	for name, mutate := range mutations {
		w := fpWorkflow()
		mutate(w)
		if Fingerprint(w) == base {
			t.Errorf("%s: mutation did not change fingerprint", name)
		}
	}
}

func TestFingerprintFieldBoundaries(t *testing.T) {
	// Length prefixes must keep adjacent strings from colliding.
	w1 := New("x")
	w1.AddTask(&Task{Name: "ab", Type: "c"})
	w2 := New("x")
	w2.AddTask(&Task{Name: "a", Type: "bc"})
	if Fingerprint(w1) == Fingerprint(w2) {
		t.Fatal("adjacent string fields collided")
	}
}

func TestParseHashRoundtrip(t *testing.T) {
	h := Fingerprint(fpWorkflow())
	got, err := ParseHash(h.String())
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("roundtrip mismatch: %s vs %s", got, h)
	}
	if _, err := ParseHash("zzzz"); err == nil {
		t.Fatal("ParseHash accepted junk")
	}
	if _, err := ParseHash("abcd"); err == nil {
		t.Fatal("ParseHash accepted short input")
	}
}
