package wfformat

import (
	"crypto/sha256"
	"sort"

	"wfserverless/internal/dag"
)

// TaskFingerprints computes a content fingerprint per task of a
// compiled workflow, ID-aligned with the CSR. A task's fingerprint
// changes iff the task itself or one of its ancestors changed: each
// fingerprint chains the task's local content digest with its parents'
// fingerprints (in the CSR's canonical parent order), so an edit
// anywhere upstream propagates to every descendant in one O(V+E)
// bottom-up pass over the topological order — no transitive input
// walk per task.
//
// The local digest covers the same per-task fields as the
// whole-workflow Fingerprint — type, category, cores, runtime,
// program, the WfBench argument block, and the file set with sizes,
// all in canonical sorted order — but not the Parents/Children name
// lists: dependency structure is covered transitively through the
// chained parent fingerprints. Deployment- and instance-scoped fields
// (api_url, ID, StartedAt) stay excluded, so the same workflow
// retargeted at a different platform deployment hits the same cache
// entries.
//
// External inputs — input files no task of the workflow produces — are
// folded in through ext, which maps a declared (name, size) to the
// file's content address. Callers with a drive pass a closure that
// consults sharedfs.Hasher for files already present (so a drive file
// whose content diverged from the declaration invalidates its
// consumers) and falls back to sharedfs.ContentAddress otherwise (so a
// fingerprint computed before staging equals one computed after). A
// nil ext hashes the declared size alone.
func TaskFingerprints(c *dag.CSR, tasks []*Task, ext func(name string, size int64) uint64) []Hash {
	n := len(tasks)
	fps := make([]Hash, n)
	// Files produced by any task of the workflow; everything else a
	// task reads is an external input.
	produced := make(map[string]struct{}, n)
	for _, t := range tasks {
		for _, f := range t.Files {
			if f.Link == LinkOutput {
				produced[f.Name] = struct{}{}
			}
		}
	}
	d := digester{h: sha256.New()}
	for _, id := range c.TopoOrder() {
		t := tasks[id]
		d.h.Reset()
		hashTaskContent(&d, t)
		// External-input content addresses, in the file set's canonical
		// (link, name) order.
		files := canonicalFiles(t)
		for _, f := range files {
			if f.Link != LinkInput {
				continue
			}
			if _, ok := produced[f.Name]; ok {
				continue
			}
			d.str(f.Name)
			if ext != nil {
				d.num(ext(f.Name, f.SizeInBytes))
			} else {
				d.num(uint64(f.SizeInBytes))
			}
		}
		// Chain the parents' fingerprints. CSR parent views are sorted
		// by ID, and IDs are interned in sorted-name order, so the chain
		// order is canonical regardless of input slice ordering.
		parents := c.Parents(id)
		d.num(uint64(len(parents)))
		for _, pid := range parents {
			d.h.Write(fps[pid][:])
		}
		d.h.Sum(fps[id][:0])
	}
	return fps
}

// hashTaskContent digests the fields that define what one task runs:
// the per-task portion of Fingerprint minus the dependency name lists.
func hashTaskContent(d *digester, t *Task) {
	d.str(t.Name)
	d.str(t.Type)
	d.str(t.Category)
	d.num(uint64(t.Cores))
	d.f64(t.RuntimeInSeconds)
	d.str(t.Command.Program)
	d.num(uint64(len(t.Command.Arguments)))
	for _, a := range t.Command.Arguments {
		d.str(a.Name)
		d.f64(a.PercentCPU)
		d.f64(a.CPUWork)
		d.num(uint64(a.MemBytes))
		d.str(a.Workdir)
		d.strs(sortedCopy(a.Inputs))
		outs := make([]string, 0, len(a.Out))
		for k := range a.Out {
			outs = append(outs, k)
		}
		sort.Strings(outs)
		d.num(uint64(len(outs)))
		for _, k := range outs {
			d.str(k)
			d.num(uint64(a.Out[k]))
		}
	}
	files := canonicalFiles(t)
	d.num(uint64(len(files)))
	for _, f := range files {
		d.str(f.Link)
		d.str(f.Name)
		d.num(uint64(f.SizeInBytes))
	}
}

// canonicalFiles returns the task's files in (link, name) order,
// copying only when the slice is not already sorted.
func canonicalFiles(t *Task) []File {
	files := t.Files
	if !sort.SliceIsSorted(files, fileLess(files)) {
		files = append([]File(nil), t.Files...)
		sort.Slice(files, fileLess(files))
	}
	return files
}
