package wfbench

import (
	"context"
	"testing"
)

func TestFlakyEngineFailsEveryNth(t *testing.T) {
	e := &FlakyEngine{FailEvery: 3}
	var failures int
	for i := 0; i < 9; i++ {
		if err := e.Run(context.Background(), 0, 1); err != nil {
			failures++
		}
	}
	if failures != 3 {
		t.Fatalf("failures = %d, want 3", failures)
	}
	if e.Runs() != 9 {
		t.Fatalf("runs = %d", e.Runs())
	}
}

func TestFlakyEngineDisabled(t *testing.T) {
	e := &FlakyEngine{}
	for i := 0; i < 5; i++ {
		if err := e.Run(context.Background(), 0, 1); err != nil {
			t.Fatalf("disabled injection failed: %v", err)
		}
	}
}
