package wfbench

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func okHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	})
}

func TestInjectorValidation(t *testing.T) {
	bad := []FaultProfile{
		{ErrorRate: -0.1},
		{ErrorRate: 1.5},
		{RejectRate: 2},
		{LatencyRate: -1},
		{HangRate: 1.01},
		{RetryAfter: -1},
		{Latency: -time.Second},
	}
	for i, p := range bad {
		if _, err := NewInjector(okHandler(), p); err == nil {
			t.Fatalf("case %d: invalid profile accepted: %+v", i, p)
		}
	}
	if _, err := NewInjector(nil, FaultProfile{}); err == nil {
		t.Fatal("nil handler accepted")
	}
}

func TestInjectorZeroProfilePassesEverything(t *testing.T) {
	inj, err := NewInjector(okHandler(), FaultProfile{})
	if err != nil {
		t.Fatal(err)
	}
	if inj.Profile().Active() {
		t.Fatal("zero profile reports active")
	}
	for i := 0; i < 50; i++ {
		rec := httptest.NewRecorder()
		inj.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/wfbench", nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("request %d: status %d", i, rec.Code)
		}
	}
	if s := inj.Stats(); s.Passed != 50 || s.Errors+s.Rejects+s.Hangs+s.Delays != 0 {
		t.Fatalf("stats = %+v, want 50 clean passes", s)
	}
}

func TestInjectorErrorRateIsTotal(t *testing.T) {
	inj, err := NewInjector(okHandler(), FaultProfile{ErrorRate: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	inj.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/wfbench", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", rec.Code)
	}
	if s := inj.Stats(); s.Errors != 1 || s.Passed != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestInjectorRejectSendsRetryAfter(t *testing.T) {
	inj, err := NewInjector(okHandler(), FaultProfile{RejectRate: 1, RetryAfter: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	inj.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/wfbench", nil))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", rec.Code)
	}
	if got := rec.Header().Get("Retry-After"); got != "0.25" {
		t.Fatalf("Retry-After = %q, want 0.25", got)
	}
}

func TestInjectorLatencyDelaysButServes(t *testing.T) {
	inj, err := NewInjector(okHandler(), FaultProfile{
		LatencyRate: 1,
		Latency:     20 * time.Millisecond,
		Seed:        5,
	})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	rec := httptest.NewRecorder()
	inj.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/wfbench", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, want 200 after delay", rec.Code)
	}
	if elapsed := time.Since(start); elapsed < 20*time.Millisecond {
		t.Fatalf("served after %v, want >= 20ms", elapsed)
	}
	if s := inj.Stats(); s.Delays != 1 || s.Passed != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestInjectorHangHoldsUntilClientGivesUp(t *testing.T) {
	inj, err := NewInjector(okHandler(), FaultProfile{HangRate: 1, MaxHang: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	req := httptest.NewRequest(http.MethodPost, "/wfbench", nil).WithContext(ctx)
	done := make(chan struct{})
	start := time.Now()
	go func() {
		inj.ServeHTTP(httptest.NewRecorder(), req)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("hang did not release on client abandon")
	}
	if elapsed := time.Since(start); elapsed < 30*time.Millisecond {
		t.Fatalf("hang released after %v, want >= client deadline", elapsed)
	}
	if s := inj.Stats(); s.Hangs != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestInjectorHangRespectsMaxHang(t *testing.T) {
	inj, err := NewInjector(okHandler(), FaultProfile{HangRate: 1, MaxHang: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	start := time.Now()
	inj.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/wfbench", nil))
	if elapsed := time.Since(start); elapsed < 20*time.Millisecond || elapsed > 2*time.Second {
		t.Fatalf("hang lasted %v, want ~MaxHang", elapsed)
	}
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("expired hang answered %d, want 500", rec.Code)
	}
}

func TestInjectorHealthzBypassesFaults(t *testing.T) {
	inj, err := NewInjector(okHandler(), FaultProfile{ErrorRate: 1, RejectRate: 1, HangRate: 1, MaxHang: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	inj.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz got %d through a fully-faulted injector", rec.Code)
	}
}

func TestInjectorRatesRoughlyHold(t *testing.T) {
	inj, err := NewInjector(okHandler(), FaultProfile{ErrorRate: 0.3, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	const n = 2000
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < n/8; j++ {
				inj.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodPost, "/wfbench", nil))
			}
		}()
	}
	wg.Wait()
	s := inj.Stats()
	if s.Errors+s.Passed != n {
		t.Fatalf("accounting off: %+v", s)
	}
	rate := float64(s.Errors) / n
	if rate < 0.22 || rate > 0.38 {
		t.Fatalf("observed error rate %.3f, want ~0.3", rate)
	}
}

func TestInjectorDeterministicUnderSameSeed(t *testing.T) {
	outcomes := func(seed int64) string {
		inj, err := NewInjector(okHandler(), FaultProfile{ErrorRate: 0.4, RejectRate: 0.2, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		for i := 0; i < 100; i++ {
			rec := httptest.NewRecorder()
			inj.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/wfbench", nil))
			fmt := map[int]string{200: ".", 429: "r", 500: "e"}
			b.WriteString(fmt[rec.Code])
		}
		return b.String()
	}
	if outcomes(9) != outcomes(9) {
		t.Fatal("same seed produced different fault sequences")
	}
	if outcomes(9) == outcomes(10) {
		t.Fatal("different seeds produced identical fault sequences")
	}
}

func namedReq(name string) *http.Request {
	body := strings.NewReader(`{"name":"` + name + `"}`)
	return httptest.NewRequest(http.MethodPost, "/wfbench", body)
}

// TestInjectorLatencyAfter pins the baseline-first gate: the first N
// requests pass undelayed even at LatencyRate 1, and the injector
// remembers which task names it actually delayed.
func TestInjectorLatencyAfter(t *testing.T) {
	inj, err := NewInjector(okHandler(), FaultProfile{
		LatencyRate:  1,
		Latency:      15 * time.Millisecond,
		LatencyAfter: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		start := time.Now()
		rec := httptest.NewRecorder()
		inj.ServeHTTP(rec, namedReq("warm"))
		if elapsed := time.Since(start); elapsed > 10*time.Millisecond {
			t.Fatalf("request %d delayed by %v inside the LatencyAfter window", i, elapsed)
		}
	}
	start := time.Now()
	rec := httptest.NewRecorder()
	inj.ServeHTTP(rec, namedReq("tail"))
	if elapsed := time.Since(start); elapsed < 15*time.Millisecond {
		t.Fatalf("request 4 served in %v, want the injected delay", elapsed)
	}
	if s := inj.Stats(); s.Delays != 1 || s.Passed != 4 {
		t.Fatalf("stats = %+v", s)
	}
	if got := inj.DelayedNames(); len(got) != 1 || got[0] != "tail" {
		t.Fatalf("DelayedNames = %v, want [tail]", got)
	}
}

// TestInjectorLatencyOnce pins the bad-placement model: a task name is
// delayed on first sight only, so its retry lands fast.
func TestInjectorLatencyOnce(t *testing.T) {
	inj, err := NewInjector(okHandler(), FaultProfile{
		LatencyRate: 1,
		Latency:     15 * time.Millisecond,
		LatencyOnce: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	serve := func(name string) time.Duration {
		start := time.Now()
		rec := httptest.NewRecorder()
		inj.ServeHTTP(rec, namedReq(name))
		if rec.Code != http.StatusOK {
			t.Fatalf("status %d", rec.Code)
		}
		return time.Since(start)
	}
	if d := serve("f001"); d < 15*time.Millisecond {
		t.Fatalf("first f001 served in %v, want delayed", d)
	}
	if d := serve("f001"); d > 10*time.Millisecond {
		t.Fatalf("second f001 delayed %v, want fast retry path", d)
	}
	if d := serve("f002"); d < 15*time.Millisecond {
		t.Fatalf("first f002 served in %v, want delayed", d)
	}
	got := inj.DelayedNames()
	if len(got) != 2 || got[0] != "f001" || got[1] != "f002" {
		t.Fatalf("DelayedNames = %v, want [f001 f002] in order", got)
	}
}

// TestInjectorGatesPreserveDrawOrder: adding the latency gates must not
// shift the seeded rng stream — the other fault draws stay identical.
func TestInjectorGatesPreserveDrawOrder(t *testing.T) {
	outcomes := func(p FaultProfile) []int {
		inj, err := NewInjector(okHandler(), p)
		if err != nil {
			t.Fatal(err)
		}
		var codes []int
		for i := 0; i < 60; i++ {
			rec := httptest.NewRecorder()
			inj.ServeHTTP(rec, namedReq("t"))
			codes = append(codes, rec.Code)
		}
		return codes
	}
	base := FaultProfile{ErrorRate: 0.3, RejectRate: 0.2, Seed: 11}
	gated := base
	gated.LatencyRate = 0 // gates configured but latency off: stream must match
	gated.LatencyAfter = 5
	gated.LatencyOnce = true
	a, b := outcomes(base), outcomes(gated)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d: %d vs %d — gates perturbed the rng stream", i, a[i], b[i])
		}
	}
}
