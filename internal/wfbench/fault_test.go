package wfbench

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func okHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	})
}

func TestInjectorValidation(t *testing.T) {
	bad := []FaultProfile{
		{ErrorRate: -0.1},
		{ErrorRate: 1.5},
		{RejectRate: 2},
		{LatencyRate: -1},
		{HangRate: 1.01},
		{RetryAfter: -1},
		{Latency: -time.Second},
	}
	for i, p := range bad {
		if _, err := NewInjector(okHandler(), p); err == nil {
			t.Fatalf("case %d: invalid profile accepted: %+v", i, p)
		}
	}
	if _, err := NewInjector(nil, FaultProfile{}); err == nil {
		t.Fatal("nil handler accepted")
	}
}

func TestInjectorZeroProfilePassesEverything(t *testing.T) {
	inj, err := NewInjector(okHandler(), FaultProfile{})
	if err != nil {
		t.Fatal(err)
	}
	if inj.Profile().Active() {
		t.Fatal("zero profile reports active")
	}
	for i := 0; i < 50; i++ {
		rec := httptest.NewRecorder()
		inj.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/wfbench", nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("request %d: status %d", i, rec.Code)
		}
	}
	if s := inj.Stats(); s.Passed != 50 || s.Errors+s.Rejects+s.Hangs+s.Delays != 0 {
		t.Fatalf("stats = %+v, want 50 clean passes", s)
	}
}

func TestInjectorErrorRateIsTotal(t *testing.T) {
	inj, err := NewInjector(okHandler(), FaultProfile{ErrorRate: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	inj.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/wfbench", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", rec.Code)
	}
	if s := inj.Stats(); s.Errors != 1 || s.Passed != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestInjectorRejectSendsRetryAfter(t *testing.T) {
	inj, err := NewInjector(okHandler(), FaultProfile{RejectRate: 1, RetryAfter: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	inj.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/wfbench", nil))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", rec.Code)
	}
	if got := rec.Header().Get("Retry-After"); got != "0.25" {
		t.Fatalf("Retry-After = %q, want 0.25", got)
	}
}

func TestInjectorLatencyDelaysButServes(t *testing.T) {
	inj, err := NewInjector(okHandler(), FaultProfile{
		LatencyRate: 1,
		Latency:     20 * time.Millisecond,
		Seed:        5,
	})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	rec := httptest.NewRecorder()
	inj.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/wfbench", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, want 200 after delay", rec.Code)
	}
	if elapsed := time.Since(start); elapsed < 20*time.Millisecond {
		t.Fatalf("served after %v, want >= 20ms", elapsed)
	}
	if s := inj.Stats(); s.Delays != 1 || s.Passed != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestInjectorHangHoldsUntilClientGivesUp(t *testing.T) {
	inj, err := NewInjector(okHandler(), FaultProfile{HangRate: 1, MaxHang: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	req := httptest.NewRequest(http.MethodPost, "/wfbench", nil).WithContext(ctx)
	done := make(chan struct{})
	start := time.Now()
	go func() {
		inj.ServeHTTP(httptest.NewRecorder(), req)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("hang did not release on client abandon")
	}
	if elapsed := time.Since(start); elapsed < 30*time.Millisecond {
		t.Fatalf("hang released after %v, want >= client deadline", elapsed)
	}
	if s := inj.Stats(); s.Hangs != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestInjectorHangRespectsMaxHang(t *testing.T) {
	inj, err := NewInjector(okHandler(), FaultProfile{HangRate: 1, MaxHang: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	start := time.Now()
	inj.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/wfbench", nil))
	if elapsed := time.Since(start); elapsed < 20*time.Millisecond || elapsed > 2*time.Second {
		t.Fatalf("hang lasted %v, want ~MaxHang", elapsed)
	}
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("expired hang answered %d, want 500", rec.Code)
	}
}

func TestInjectorHealthzBypassesFaults(t *testing.T) {
	inj, err := NewInjector(okHandler(), FaultProfile{ErrorRate: 1, RejectRate: 1, HangRate: 1, MaxHang: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	inj.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz got %d through a fully-faulted injector", rec.Code)
	}
}

func TestInjectorRatesRoughlyHold(t *testing.T) {
	inj, err := NewInjector(okHandler(), FaultProfile{ErrorRate: 0.3, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	const n = 2000
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < n/8; j++ {
				inj.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodPost, "/wfbench", nil))
			}
		}()
	}
	wg.Wait()
	s := inj.Stats()
	if s.Errors+s.Passed != n {
		t.Fatalf("accounting off: %+v", s)
	}
	rate := float64(s.Errors) / n
	if rate < 0.22 || rate > 0.38 {
		t.Fatalf("observed error rate %.3f, want ~0.3", rate)
	}
}

func TestInjectorDeterministicUnderSameSeed(t *testing.T) {
	outcomes := func(seed int64) string {
		inj, err := NewInjector(okHandler(), FaultProfile{ErrorRate: 0.4, RejectRate: 0.2, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		for i := 0; i < 100; i++ {
			rec := httptest.NewRecorder()
			inj.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/wfbench", nil))
			fmt := map[int]string{200: ".", 429: "r", 500: "e"}
			b.WriteString(fmt[rec.Code])
		}
		return b.String()
	}
	if outcomes(9) != outcomes(9) {
		t.Fatal("same seed produced different fault sequences")
	}
	if outcomes(9) == outcomes(10) {
		t.Fatal("different seeds produced identical fault sequences")
	}
}
