// Package wfbench reimplements WfBench — the WfCommons benchmark
// executable the paper containerizes and deploys as a service ("WfBench
// as a Service", Section III-B). A benchmark invocation performs real
// work for one workflow function, respecting its parameters: stressing
// the CPU at a duty cycle (percent-cpu) for an amount of work (cpu-work),
// holding a memory ballast (optionally persistent across invocations,
// the paper's --vm-keep / PM setting), verifying its input files exist on
// the shared drive, and producing its output files there.
//
// The package exposes both the library form (Bench/Worker) used by the
// in-process platforms and the HTTP service form (Service) answering
// POST /wfbench with the same JSON body as the paper's curl examples.
package wfbench

import (
	"context"
	"errors"
	"fmt"
	"time"

	"wfserverless/internal/obs"
	"wfserverless/internal/sharedfs"
)

// Request is the body of a WfBench invocation, matching the paper's
// service request structure.
type Request struct {
	Name       string  `json:"name"`
	PercentCPU float64 `json:"percent-cpu"`
	CPUWork    float64 `json:"cpu-work"`
	// Cores is the task's parallelism (the workflow format's "cores"
	// field): the stress spreads across this many cores, dividing the
	// wall time. Zero means 1.
	Cores    int              `json:"cores,omitempty"`
	MemBytes int64            `json:"mem-bytes,omitempty"`
	Out      map[string]int64 `json:"out"`
	Inputs   []string         `json:"inputs"`
	Workdir  string           `json:"workdir,omitempty"`
}

// Validate checks the request parameters.
func (r *Request) Validate() error {
	if r.Name == "" {
		return errors.New("wfbench: request missing name")
	}
	if r.PercentCPU < 0 || r.PercentCPU > 1 {
		return fmt.Errorf("wfbench: %s: percent-cpu %v outside [0,1]", r.Name, r.PercentCPU)
	}
	if r.CPUWork < 0 {
		return fmt.Errorf("wfbench: %s: negative cpu-work", r.Name)
	}
	if r.MemBytes < 0 {
		return fmt.Errorf("wfbench: %s: negative mem-bytes", r.Name)
	}
	if r.Cores < 0 {
		return fmt.Errorf("wfbench: %s: negative cores", r.Name)
	}
	for out, sz := range r.Out {
		if sz < 0 {
			return fmt.Errorf("wfbench: %s: output %q has negative size", r.Name, out)
		}
	}
	return nil
}

// Durations derives the nominal (unscaled, paper-second) busy and wall
// durations of the request. cpu-work of 100 is one second of single-core
// busy work at 100% duty; a lower duty cycle stretches wall time and
// additional cores divide it.
func (r *Request) Durations() (busy, wall float64) {
	busy = r.CPUWork / 100
	duty := r.PercentCPU
	if duty < 0.05 {
		duty = 0.05
	}
	cores := float64(r.CoresOrOne())
	wall = busy / duty / cores
	return busy, wall
}

// CoresOrOne returns the task parallelism, defaulting to 1.
func (r *Request) CoresOrOne() int {
	if r.Cores <= 0 {
		return 1
	}
	return r.Cores
}

// Response reports one completed invocation. Durations are in nominal
// paper seconds.
type Response struct {
	Name        string  `json:"name"`
	OK          bool    `json:"ok"`
	Error       string  `json:"error,omitempty"`
	BusySeconds float64 `json:"busySeconds"`
	WallSeconds float64 `json:"wallSeconds"`
	OutBytes    int64   `json:"outBytes"`
	ColdStart   bool    `json:"coldStart,omitempty"`
	Pod         string  `json:"pod,omitempty"`
}

// Engine performs the CPU stress phase of an invocation.
type Engine interface {
	// Run occupies the CPU at the given duty cycle in [0,1] for the
	// given wall-clock duration (already scaled), honouring ctx
	// cancellation.
	Run(ctx context.Context, wall time.Duration, duty float64) error
}

// SimEngine models the stress phase by sleeping for the wall duration.
// It is deterministic and cheap, and is the engine the experiment
// harness uses; resource telemetry comes from the cluster accountant,
// not from actually heating the host.
type SimEngine struct{}

// Run implements Engine.
func (SimEngine) Run(ctx context.Context, wall time.Duration, duty float64) error {
	if wall <= 0 {
		return ctx.Err()
	}
	// Sub-millisecond stress phases sleep uninterruptibly: a heap timer
	// plus a select per invocation costs more than the simulated work at
	// batched throughput, and 1ms bounds the cancellation latency.
	if wall < time.Millisecond {
		time.Sleep(wall)
		return ctx.Err()
	}
	t := time.NewTimer(wall)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// BurnEngine actually spins the CPU at the duty cycle, slicing time into
// short periods of busy-spin followed by sleep — the same technique the
// Python wfbench uses. Useful for end-to-end realism tests and the
// standalone service.
type BurnEngine struct {
	// Period is the duty-cycle slice; defaults to 5ms.
	Period time.Duration
}

// Run implements Engine.
func (e BurnEngine) Run(ctx context.Context, wall time.Duration, duty float64) error {
	period := e.Period
	if period <= 0 {
		period = 5 * time.Millisecond
	}
	if duty < 0 {
		duty = 0
	}
	if duty > 1 {
		duty = 1
	}
	deadline := time.Now().Add(wall)
	for time.Now().Before(deadline) {
		if err := ctx.Err(); err != nil {
			return err
		}
		sliceEnd := time.Now().Add(period)
		if sliceEnd.After(deadline) {
			sliceEnd = deadline
		}
		busyUntil := time.Now().Add(time.Duration(float64(sliceEnd.Sub(time.Now())) * duty))
		for time.Now().Before(busyUntil) {
			// spin
		}
		if rest := time.Until(sliceEnd); rest > 0 {
			time.Sleep(rest)
		}
	}
	return nil
}

// Usage receives live resource registrations from running invocations.
// *cluster.Node satisfies it.
type Usage interface {
	AddBusy(cores float64) func()
	AddMem(bytes int64) func()
}

// nopUsage discards registrations.
type nopUsage struct{}

func (nopUsage) AddBusy(float64) func() { return func() {} }
func (nopUsage) AddMem(int64) func()    { return func() {} }

// Config parameterizes a Bench.
type Config struct {
	// Drive is the shared drive for input checks and output writes.
	Drive sharedfs.Drive
	// Engine performs the CPU stress; nil means SimEngine.
	Engine Engine
	// Usage receives busy/memory registrations; nil discards them.
	Usage Usage
	// TimeScale converts nominal paper seconds to wall time. 1.0 runs
	// in real time; the experiments use ~0.005. Zero defaults to 1.0.
	TimeScale float64
	// InputWait bounds how long an invocation polls for missing input
	// files before failing (already scaled). Zero fails immediately.
	InputWait time.Duration
	// KeepMem is the paper's --vm-keep: workers retain their ballast
	// between invocations (persistent memory, PM paradigms).
	KeepMem bool
	// Tracer emits leaf spans for an invocation's phases (input wait,
	// memory ballast, CPU stress, output writes) when the caller
	// propagated a sampled trace context via obs.ContextWithSpan. Nil
	// disables span emission.
	Tracer *obs.Tracer
}

// Bench executes WfBench invocations against a shared drive.
type Bench struct {
	cfg Config
}

// New returns a Bench for the config, applying defaults.
func New(cfg Config) (*Bench, error) {
	if cfg.Drive == nil {
		return nil, errors.New("wfbench: config needs a Drive")
	}
	if cfg.Engine == nil {
		cfg.Engine = SimEngine{}
	}
	if cfg.Usage == nil {
		cfg.Usage = nopUsage{}
	}
	if cfg.TimeScale == 0 {
		cfg.TimeScale = 1
	}
	if cfg.TimeScale < 0 {
		return nil, fmt.Errorf("wfbench: negative TimeScale %v", cfg.TimeScale)
	}
	return &Bench{cfg: cfg}, nil
}

// Config returns the bench configuration.
func (b *Bench) Config() Config { return b.cfg }

// Worker executes invocations one at a time and owns the per-worker
// persistent-memory ballast (the gunicorn worker of the paper's
// deployment). Workers are not safe for concurrent use; a pod runs one
// goroutine per worker.
type Worker struct {
	bench          *Bench
	releaseBallast func()
	ballastBytes   int64
}

// NewWorker returns a worker bound to b.
func (b *Bench) NewWorker() *Worker { return &Worker{bench: b} }

// BallastBytes reports the persistent ballast currently held (PM only).
func (w *Worker) BallastBytes() int64 { return w.ballastBytes }

// Close releases any persistent ballast. Called when the worker's pod or
// container is torn down.
func (w *Worker) Close() {
	if w.releaseBallast != nil {
		w.releaseBallast()
		w.releaseBallast = nil
		w.ballastBytes = 0
	}
}

// Execute runs one invocation: verify inputs, hold memory, stress the
// CPU, write outputs. The returned Response always has Name set; OK is
// false when err is non-nil.
func (w *Worker) Execute(ctx context.Context, req *Request) (*Response, error) {
	return w.execute(ctx, req, nil)
}

// ExecuteVerified runs one invocation whose input files were already
// verified (and content-hashed) by its batch's shared PrepareInputs
// pass: the input phase reduces to hash-map lookups against the prep
// instead of a per-task drive wait — the batch path's zero-copy I/O for
// content-addressed inputs.
func (w *Worker) ExecuteVerified(ctx context.Context, req *Request, prep *BatchPrep) (*Response, error) {
	return w.execute(ctx, req, prep)
}

func (w *Worker) execute(ctx context.Context, req *Request, prep *BatchPrep) (*Response, error) {
	resp := &Response{Name: req.Name}
	if err := req.Validate(); err != nil {
		resp.Error = err.Error()
		return resp, err
	}
	cfg := w.bench.cfg
	// sc is the execute-level span the platform (or service handler)
	// propagated; each benchmark phase below becomes a leaf span under
	// it. An invalid/unsampled context makes every StartChild nil and
	// all span calls no-ops.
	sc := obs.SpanFromContext(ctx)

	// 1. Input files must be present on the shared drive (written by
	// preceding functions or staged as external inputs). Sub-tasks of a
	// batch consult the batch's single verification pass instead.
	if len(req.Inputs) > 0 {
		span := cfg.Tracer.StartChild(sc, "inputs", obs.LayerWfbench)
		span.SetInt("files", len(req.Inputs))
		var missing []string
		if prep != nil {
			span.SetAttr("verified", "batch")
			missing = prep.missingOf(req.Inputs)
		} else {
			pending := req.Inputs
			if hasher, ok := cfg.Drive.(sharedfs.Hasher); ok {
				// Content-address fast path: resolve each input against
				// the drive's metadata index instead of scanning for
				// existence; only the genuinely-absent subset falls
				// through to the bounded wait.
				span.SetAttr("verified", "content-address")
				pending = nil
				for _, name := range req.Inputs {
					if _, ok := hasher.ContentHash(name); !ok {
						pending = append(pending, name)
					}
				}
			} else if sharedfs.AllExist(cfg.Drive, req.Inputs) {
				pending = nil
			}
			if len(pending) > 0 {
				waitCtx := ctx
				if cfg.InputWait > 0 {
					var cancel context.CancelFunc
					waitCtx, cancel = context.WithTimeout(ctx, cfg.InputWait)
					defer cancel()
				} else {
					var cancel context.CancelFunc
					waitCtx, cancel = context.WithTimeout(ctx, time.Nanosecond)
					defer cancel()
				}
				poll := cfg.InputWait / 20
				missing, _ = sharedfs.WaitFor(waitCtx, cfg.Drive, pending, poll)
			}
		}
		if len(missing) > 0 {
			err := fmt.Errorf("wfbench: %s: missing inputs %v", req.Name, missing)
			span.SetAttr("error", err.Error())
			span.Finish()
			resp.Error = err.Error()
			return resp, err
		}
		span.Finish()
	}

	// 2. Memory ballast. Without --vm-keep it lives for this invocation
	// only; with it, the worker retains (and grows) the ballast until
	// its process dies, which is what makes PM paradigms heavier.
	if req.MemBytes > 0 {
		span := cfg.Tracer.StartChild(sc, "memory", obs.LayerWfbench)
		span.SetFloat("mem_bytes", float64(req.MemBytes))
		if cfg.KeepMem {
			span.SetAttr("keep", "true")
			if req.MemBytes > w.ballastBytes {
				if w.releaseBallast != nil {
					w.releaseBallast()
				}
				w.releaseBallast = cfg.Usage.AddMem(req.MemBytes)
				w.ballastBytes = req.MemBytes
			}
		} else {
			release := cfg.Usage.AddMem(req.MemBytes)
			defer release()
		}
		span.Finish()
	}

	// 3. CPU stress at the duty cycle.
	busy, wall := req.Durations()
	resp.BusySeconds, resp.WallSeconds = busy, wall
	if wall > 0 {
		span := cfg.Tracer.StartChild(sc, "cpu", obs.LayerWfbench)
		span.SetFloat("duty", req.PercentCPU)
		span.SetInt("cores", req.CoresOrOne())
		releaseBusy := cfg.Usage.AddBusy(req.PercentCPU * float64(req.CoresOrOne()))
		err := cfg.Engine.Run(ctx, time.Duration(wall*cfg.TimeScale*float64(time.Second)), req.PercentCPU)
		releaseBusy()
		if err != nil {
			span.SetAttr("error", err.Error())
			span.Finish()
			resp.Error = err.Error()
			return resp, err
		}
		span.Finish()
	}

	// 4. Outputs become visible to successor functions.
	if len(req.Out) > 0 {
		span := cfg.Tracer.StartChild(sc, "outputs", obs.LayerWfbench)
		for out, size := range req.Out {
			if err := cfg.Drive.WriteFile(out, size); err != nil {
				span.SetAttr("error", err.Error())
				span.Finish()
				resp.Error = err.Error()
				return resp, err
			}
			resp.OutBytes += size
		}
		span.SetFloat("out_bytes", float64(resp.OutBytes))
		span.Finish()
	}
	resp.OK = true
	return resp, nil
}
