package wfbench

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"
)

// FlakyEngine wraps an Engine and fails every Nth run — fault injection
// for exercising the workflow manager's retry path and the platforms'
// failure accounting without real infrastructure faults.
type FlakyEngine struct {
	// Inner runs the successful executions; nil means SimEngine.
	Inner Engine
	// FailEvery makes run number k fail when k % FailEvery == 0
	// (1-indexed). Zero disables injection.
	FailEvery int64

	runs atomic.Int64
}

// Runs returns how many executions were attempted.
func (e *FlakyEngine) Runs() int64 { return e.runs.Load() }

// Run implements Engine.
func (e *FlakyEngine) Run(ctx context.Context, wall time.Duration, duty float64) error {
	n := e.runs.Add(1)
	if e.FailEvery > 0 && n%e.FailEvery == 0 {
		return fmt.Errorf("wfbench: injected fault on run %d", n)
	}
	inner := e.Inner
	if inner == nil {
		inner = SimEngine{}
	}
	return inner.Run(ctx, wall, duty)
}
