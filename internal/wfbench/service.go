package wfbench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"time"

	"wfserverless/internal/metrics"
	"wfserverless/internal/obs"
)

// Service is WfBench as a Service: an HTTP handler answering
// POST /wfbench with a Request body, backed by a bounded pool of workers
// — the paper's "gunicorn --workers N" deployment knob. When all workers
// are busy, additional requests block until one frees up, exactly like a
// pre-fork worker pool with an unbounded backlog.
type Service struct {
	bench    *Bench
	workers  chan *Worker
	nWorkers int
	requests atomic.Int64
	active   atomic.Int64
	failures atomic.Int64
	// latency tracks per-request execution wall time (worker wait
	// included), exposed as a histogram at GET /metrics.
	latency metrics.Histogram
}

// NewService returns a service with n workers over the bench.
func NewService(b *Bench, n int) (*Service, error) {
	if n <= 0 {
		return nil, fmt.Errorf("wfbench: service needs >= 1 worker, got %d", n)
	}
	s := &Service{bench: b, workers: make(chan *Worker, n), nWorkers: n}
	for i := 0; i < n; i++ {
		s.workers <- b.NewWorker()
	}
	return s, nil
}

// Workers returns the pool size.
func (s *Service) Workers() int { return s.nWorkers }

// Requests returns the number of requests served so far.
func (s *Service) Requests() int64 { return s.requests.Load() }

// Active returns the number of requests currently executing.
func (s *Service) Active() int64 { return s.active.Load() }

// Close releases persistent ballast held by all workers.
func (s *Service) Close() {
	for i := 0; i < s.nWorkers; i++ {
		w := <-s.workers
		w.Close()
	}
	// refill so a racing handler does not deadlock; workers are reusable
	for i := 0; i < s.nWorkers; i++ {
		s.workers <- s.bench.NewWorker()
	}
}

// Execute runs one request on the next free worker, blocking until one
// is available. It is the library-call equivalent of POST /wfbench.
func (s *Service) Execute(req *Request) (*Response, error) {
	return s.execute(context.Background(), req)
}

func (s *Service) execute(ctx context.Context, req *Request) (*Response, error) {
	w := <-s.workers
	s.active.Add(1)
	defer func() {
		s.active.Add(-1)
		s.workers <- w
	}()
	s.requests.Add(1)
	start := time.Now()
	// Workers honour no per-request deadline: the paper configures
	// gunicorn with --timeout 0.
	resp, err := w.Execute(ctx, req)
	s.latency.ObserveDuration(time.Since(start))
	if err != nil {
		s.failures.Add(1)
	}
	return resp, err
}

// WriteMetrics emits the service's operational series in Prometheus
// text exposition format — the standalone deployment's GET /metrics.
func (s *Service) WriteMetrics(w io.Writer) error {
	write := func(name, typ, help string, v float64) error {
		_, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %g\n", name, help, name, typ, name, v)
		return err
	}
	if err := write("wfbench_workers", "gauge", "worker pool size", float64(s.nWorkers)); err != nil {
		return err
	}
	if err := write("wfbench_active", "gauge", "requests currently executing", float64(s.active.Load())); err != nil {
		return err
	}
	if err := write("wfbench_requests_total", "counter", "cumulative requests served", float64(s.requests.Load())); err != nil {
		return err
	}
	if err := write("wfbench_failures_total", "counter", "cumulative failed requests", float64(s.failures.Load())); err != nil {
		return err
	}
	return s.latency.WriteProm(w, "wfbench_execution_seconds",
		"per-request execution wall time including worker wait")
}

// ServeHTTP implements http.Handler for POST /wfbench, POST
// /invoke-batch, GET /healthz and GET /metrics.
func (s *Service) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.URL.Path == "/healthz":
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	case r.URL.Path == "/metrics" && r.Method == http.MethodGet:
		obs.ServeMetrics(w, r, s.WriteMetrics)
	case r.URL.Path == "/invoke-batch" && r.Method == http.MethodPost:
		s.serveBatch(w, r)
	case r.URL.Path == "/wfbench" && r.Method == http.MethodPost:
		var req Request
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, fmt.Sprintf("bad request: %v", err), http.StatusBadRequest)
			return
		}
		if err := req.Validate(); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		// The trace context rides a background context (workers ignore
		// client disconnects, like the platform's pods) so phase spans
		// still parent onto the caller's invoke span.
		ctx := context.Background()
		if sc, ok := obs.ParseTraceparent(r.Header.Get("Traceparent")); ok {
			ctx = obs.ContextWithSpan(ctx, sc)
		}
		resp, err := s.execute(ctx, &req)
		status := http.StatusOK
		if err != nil {
			status = http.StatusInternalServerError
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		json.NewEncoder(w).Encode(resp)
	default:
		http.NotFound(w, r)
	}
}
