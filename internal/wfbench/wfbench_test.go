package wfbench

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"wfserverless/internal/cluster"
	"wfserverless/internal/sharedfs"
)

func testBench(t *testing.T, cfg Config) *Bench {
	t.Helper()
	if cfg.Drive == nil {
		cfg.Drive = sharedfs.NewMem()
	}
	if cfg.TimeScale == 0 {
		cfg.TimeScale = 0.001
	}
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func req(name string) *Request {
	return &Request{
		Name:       name,
		PercentCPU: 0.9,
		CPUWork:    100,
		MemBytes:   1 << 20,
		Out:        map[string]int64{name + "_out": 64},
	}
}

func TestRequestValidate(t *testing.T) {
	cases := []struct {
		mutate func(*Request)
		ok     bool
	}{
		{func(r *Request) {}, true},
		{func(r *Request) { r.Name = "" }, false},
		{func(r *Request) { r.PercentCPU = -0.1 }, false},
		{func(r *Request) { r.PercentCPU = 1.1 }, false},
		{func(r *Request) { r.CPUWork = -1 }, false},
		{func(r *Request) { r.MemBytes = -1 }, false},
		{func(r *Request) { r.Out["x"] = -5 }, false},
	}
	for i, c := range cases {
		r := req("t")
		c.mutate(r)
		err := r.Validate()
		if (err == nil) != c.ok {
			t.Errorf("case %d: err = %v, want ok=%v", i, err, c.ok)
		}
	}
}

func TestDurations(t *testing.T) {
	r := &Request{CPUWork: 200, PercentCPU: 0.5}
	busy, wall := r.Durations()
	if busy != 2 || wall != 4 {
		t.Fatalf("busy=%v wall=%v, want 2,4", busy, wall)
	}
	// duty floor prevents divide-by-zero blowups
	r.PercentCPU = 0
	_, wall = r.Durations()
	if wall != 40 {
		t.Fatalf("floored wall = %v, want 40", wall)
	}
}

func TestExecuteWritesOutputs(t *testing.T) {
	drive := sharedfs.NewMem()
	b := testBench(t, Config{Drive: drive})
	w := b.NewWorker()
	resp, err := w.Execute(context.Background(), req("f1"))
	if err != nil {
		t.Fatal(err)
	}
	if !resp.OK {
		t.Fatalf("resp = %+v", resp)
	}
	if resp.OutBytes != 64 {
		t.Fatalf("OutBytes = %d", resp.OutBytes)
	}
	size, err := drive.Stat("f1_out")
	if err != nil || size != 64 {
		t.Fatalf("output on drive: size=%d err=%v", size, err)
	}
	if resp.BusySeconds != 1 {
		t.Fatalf("BusySeconds = %v", resp.BusySeconds)
	}
}

func TestExecuteMissingInputFailsFast(t *testing.T) {
	b := testBench(t, Config{Drive: sharedfs.NewMem()})
	w := b.NewWorker()
	r := req("f")
	r.Inputs = []string{"nope.txt"}
	resp, err := w.Execute(context.Background(), r)
	if err == nil {
		t.Fatal("missing input accepted")
	}
	if resp.OK || !strings.Contains(resp.Error, "nope.txt") {
		t.Fatalf("resp = %+v", resp)
	}
}

// existsCountingDrive counts Exists calls so tests can prove the
// content-address fast path verifies inputs from the hash index alone.
type existsCountingDrive struct {
	*sharedfs.MemDrive
	mu     sync.Mutex
	exists int
}

func (d *existsCountingDrive) Exists(name string) bool {
	d.mu.Lock()
	d.exists++
	d.mu.Unlock()
	return d.MemDrive.Exists(name)
}

// plainDrive hides MemDrive's Hasher implementation, modelling a drive
// without content addressing.
type plainDrive struct{ inner *sharedfs.MemDrive }

func (d plainDrive) WriteFile(name string, size int64) error { return d.inner.WriteFile(name, size) }
func (d plainDrive) Stat(name string) (int64, error)         { return d.inner.Stat(name) }
func (d plainDrive) Exists(name string) bool                 { return d.inner.Exists(name) }
func (d plainDrive) List() []string                          { return d.inner.List() }
func (d plainDrive) Remove(name string) error                { return d.inner.Remove(name) }
func (d plainDrive) TotalBytes() int64                       { return d.inner.TotalBytes() }

// TestExecuteContentAddressFastPath: on a Hasher drive, single-task
// input verification resolves through the content-address index and
// never falls back to per-file existence scans.
func TestExecuteContentAddressFastPath(t *testing.T) {
	drive := &existsCountingDrive{MemDrive: sharedfs.NewMem()}
	drive.WriteFile("a.txt", 10)
	drive.WriteFile("b.txt", 20)
	b := testBench(t, Config{Drive: drive})
	w := b.NewWorker()
	r := req("f")
	r.Inputs = []string{"a.txt", "b.txt"}
	resp, err := w.Execute(context.Background(), r)
	if err != nil || !resp.OK {
		t.Fatalf("execute: %v (resp %+v)", err, resp)
	}
	drive.mu.Lock()
	defer drive.mu.Unlock()
	if drive.exists != 0 {
		t.Fatalf("fast path made %d Exists calls, want 0", drive.exists)
	}
}

// TestExecutePlainDriveStillVerifies: a drive without ContentHash keeps
// the original existence-scan behaviour — present inputs pass, absent
// inputs fail.
func TestExecutePlainDriveStillVerifies(t *testing.T) {
	inner := sharedfs.NewMem()
	inner.WriteFile("a.txt", 10)
	b := testBench(t, Config{Drive: plainDrive{inner}})
	w := b.NewWorker()
	r := req("f")
	r.Inputs = []string{"a.txt"}
	if resp, err := w.Execute(context.Background(), r); err != nil || !resp.OK {
		t.Fatalf("present input rejected: %v (resp %+v)", err, resp)
	}
	r2 := req("g")
	r2.Inputs = []string{"gone.txt"}
	if _, err := w.Execute(context.Background(), r2); err == nil {
		t.Fatal("absent input accepted on plain drive")
	}
}

func TestExecuteWaitsForLateInput(t *testing.T) {
	drive := sharedfs.NewMem()
	b := testBench(t, Config{Drive: drive, InputWait: 500 * time.Millisecond})
	w := b.NewWorker()
	r := req("f")
	r.Inputs = []string{"late.txt"}
	go func() {
		time.Sleep(10 * time.Millisecond)
		drive.WriteFile("late.txt", 1)
	}()
	if _, err := w.Execute(context.Background(), r); err != nil {
		t.Fatalf("late input not awaited: %v", err)
	}
}

func TestExecuteInvalidRequest(t *testing.T) {
	b := testBench(t, Config{})
	w := b.NewWorker()
	bad := req("f")
	bad.PercentCPU = 2
	if _, err := w.Execute(context.Background(), bad); err == nil {
		t.Fatal("invalid request executed")
	}
}

func TestExecuteRegistersUsage(t *testing.T) {
	node := cluster.NewNode(cluster.NodeSpec{Name: "n", Cores: 8, MemBytes: 1 << 30})
	drive := sharedfs.NewMem()
	b := testBench(t, Config{Drive: drive, Usage: node, TimeScale: 0.3})
	w := b.NewWorker()
	r := req("f")
	done := make(chan struct{})
	go func() {
		defer close(done)
		w.Execute(context.Background(), r)
	}()
	// Mid-execution the node must show the busy duty and the ballast.
	// Poll rather than sleep a fixed amount: the test machine may be
	// heavily loaded.
	deadline := time.Now().Add(2 * time.Second)
	var u cluster.Usage
	for time.Now().Before(deadline) {
		u = node.Snapshot()
		if u.BusyCores == 0.9 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if u.BusyCores != 0.9 {
		t.Fatalf("mid-run BusyCores = %v, want 0.9", u.BusyCores)
	}
	if u.UsedMem != 1<<20 {
		t.Fatalf("mid-run UsedMem = %d", u.UsedMem)
	}
	<-done
	u = node.Snapshot()
	if u.BusyCores != 0 || u.UsedMem != 0 {
		t.Fatalf("post-run usage leaked: %+v", u)
	}
}

func TestKeepMemPersistsBallast(t *testing.T) {
	node := cluster.NewNode(cluster.NodeSpec{Name: "n", Cores: 8, MemBytes: 1 << 30})
	b := testBench(t, Config{Drive: sharedfs.NewMem(), Usage: node, KeepMem: true})
	w := b.NewWorker()
	if _, err := w.Execute(context.Background(), req("f1")); err != nil {
		t.Fatal(err)
	}
	if got := node.Snapshot().UsedMem; got != 1<<20 {
		t.Fatalf("ballast not kept: UsedMem = %d", got)
	}
	// Larger request grows the ballast; smaller one does not shrink it.
	big := req("f2")
	big.MemBytes = 4 << 20
	w.Execute(context.Background(), big)
	if got := node.Snapshot().UsedMem; got != 4<<20 {
		t.Fatalf("ballast not grown: %d", got)
	}
	small := req("f3")
	small.MemBytes = 1 << 10
	w.Execute(context.Background(), small)
	if got := node.Snapshot().UsedMem; got != 4<<20 {
		t.Fatalf("ballast shrank: %d", got)
	}
	if w.BallastBytes() != 4<<20 {
		t.Fatalf("BallastBytes = %d", w.BallastBytes())
	}
	w.Close()
	if got := node.Snapshot().UsedMem; got != 0 {
		t.Fatalf("Close leaked ballast: %d", got)
	}
	w.Close() // idempotent
}

func TestExecuteCancelled(t *testing.T) {
	b := testBench(t, Config{TimeScale: 10}) // long run
	w := b.NewWorker()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := w.Execute(ctx, req("f"))
	if err == nil {
		t.Fatal("cancelled execution succeeded")
	}
	if time.Since(start) > time.Second {
		t.Fatal("cancellation did not interrupt the engine")
	}
}

func TestBurnEngineDutyAndDuration(t *testing.T) {
	e := BurnEngine{Period: time.Millisecond}
	start := time.Now()
	if err := e.Run(context.Background(), 30*time.Millisecond, 0.5); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if elapsed < 25*time.Millisecond || elapsed > 300*time.Millisecond {
		t.Fatalf("elapsed = %v, want ~30ms", elapsed)
	}
	// duty outside [0,1] is clamped rather than panicking
	if err := e.Run(context.Background(), time.Millisecond, 7); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(context.Background(), time.Millisecond, -1); err != nil {
		t.Fatal(err)
	}
}

func TestSimEngineZeroWall(t *testing.T) {
	if err := (SimEngine{}).Run(context.Background(), 0, 1); err != nil {
		t.Fatal(err)
	}
}

func TestNewConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("nil drive accepted")
	}
	if _, err := New(Config{Drive: sharedfs.NewMem(), TimeScale: -1}); err == nil {
		t.Fatal("negative TimeScale accepted")
	}
}

func TestServicePoolBoundsConcurrency(t *testing.T) {
	node := cluster.NewNode(cluster.NodeSpec{Name: "n", Cores: 64, MemBytes: 1 << 40})
	b := testBench(t, Config{Drive: sharedfs.NewMem(), Usage: node, TimeScale: 0.05})
	s, err := NewService(b, 2)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	var maxActive int64
	var mu sync.Mutex
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s.Execute(req("f" + string(rune('0'+i))))
			mu.Lock()
			if a := s.Active(); a > maxActive {
				maxActive = a
			}
			mu.Unlock()
		}(i)
	}
	// sample Active during the run
	for j := 0; j < 20; j++ {
		mu.Lock()
		if a := s.Active(); a > maxActive {
			maxActive = a
		}
		mu.Unlock()
		time.Sleep(5 * time.Millisecond)
	}
	wg.Wait()
	if maxActive > 2 {
		t.Fatalf("active = %d exceeded pool of 2", maxActive)
	}
	if s.Requests() != 8 {
		t.Fatalf("Requests = %d", s.Requests())
	}
}

func TestServiceRejectsZeroWorkers(t *testing.T) {
	b := testBench(t, Config{})
	if _, err := NewService(b, 0); err == nil {
		t.Fatal("0 workers accepted")
	}
}

func TestServiceHTTP(t *testing.T) {
	drive := sharedfs.NewMem()
	b := testBench(t, Config{Drive: drive})
	s, _ := NewService(b, 2)
	srv := httptest.NewServer(s)
	defer srv.Close()

	// healthz
	hr, err := http.Get(srv.URL + "/healthz")
	if err != nil || hr.StatusCode != 200 {
		t.Fatalf("healthz: %v %v", hr, err)
	}
	hr.Body.Close()

	// valid invocation, mirroring the paper's curl example
	body, _ := json.Marshal(req("split_fasta_00000001"))
	pr, err := http.Post(srv.URL+"/wfbench", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer pr.Body.Close()
	if pr.StatusCode != 200 {
		t.Fatalf("status = %d", pr.StatusCode)
	}
	var resp Response
	if err := json.NewDecoder(pr.Body).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if !resp.OK || resp.Name != "split_fasta_00000001" {
		t.Fatalf("resp = %+v", resp)
	}
	if !drive.Exists("split_fasta_00000001_out") {
		t.Fatal("output missing from drive")
	}
}

func TestServiceHTTPErrors(t *testing.T) {
	b := testBench(t, Config{})
	s, _ := NewService(b, 1)
	srv := httptest.NewServer(s)
	defer srv.Close()

	// malformed JSON
	r, _ := http.Post(srv.URL+"/wfbench", "application/json", strings.NewReader("{nope"))
	if r.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed: status = %d", r.StatusCode)
	}
	r.Body.Close()

	// invalid parameters
	bad, _ := json.Marshal(&Request{Name: "x", PercentCPU: 3})
	r, _ = http.Post(srv.URL+"/wfbench", "application/json", bytes.NewReader(bad))
	if r.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid: status = %d", r.StatusCode)
	}
	r.Body.Close()

	// missing input -> 500 with JSON body
	withInput, _ := json.Marshal(&Request{Name: "x", PercentCPU: 0.5, CPUWork: 1, Inputs: []string{"absent"}})
	r, _ = http.Post(srv.URL+"/wfbench", "application/json", bytes.NewReader(withInput))
	if r.StatusCode != http.StatusInternalServerError {
		t.Fatalf("missing input: status = %d", r.StatusCode)
	}
	var resp Response
	json.NewDecoder(r.Body).Decode(&resp)
	r.Body.Close()
	if resp.OK || resp.Error == "" {
		t.Fatalf("resp = %+v", resp)
	}

	// wrong method / path
	r, _ = http.Get(srv.URL + "/wfbench")
	if r.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /wfbench: status = %d", r.StatusCode)
	}
	r.Body.Close()
}

func TestServiceClose(t *testing.T) {
	node := cluster.NewNode(cluster.NodeSpec{Name: "n", Cores: 8, MemBytes: 1 << 30})
	b := testBench(t, Config{Drive: sharedfs.NewMem(), Usage: node, KeepMem: true})
	s, _ := NewService(b, 3)
	s.Execute(req("a"))
	if node.Snapshot().UsedMem == 0 {
		t.Fatal("expected ballast before Close")
	}
	s.Close()
	if got := node.Snapshot().UsedMem; got != 0 {
		t.Fatalf("Close leaked %d bytes", got)
	}
	// service still usable after Close
	if _, err := s.Execute(req("b")); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDurationsMonotone(t *testing.T) {
	f := func(workRaw, dutyRaw uint16) bool {
		work := float64(workRaw)
		duty := float64(dutyRaw%101) / 100
		r := &Request{CPUWork: work, PercentCPU: duty}
		busy, wall := r.Durations()
		if busy < 0 || wall < 0 {
			return false
		}
		// wall >= busy always (duty <= 1)
		return wall >= busy-1e-9 && math.Abs(busy-work/100) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
