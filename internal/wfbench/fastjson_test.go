package wfbench

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"
)

// TestMarshalResponseMatchesStdlib pins the fast encoder byte-for-byte
// against encoding/json across field shapes, omitempty combinations,
// and the float formats the wire carries.
func TestMarshalResponseMatchesStdlib(t *testing.T) {
	cases := []Response{
		{},
		{Name: "leaf_000042", OK: true, BusySeconds: 0.001, WallSeconds: 0.002, OutBytes: 1},
		{Name: "t", OK: false, Error: "wfbench: t: missing inputs [a.txt]", OutBytes: 0},
		{Name: "x", OK: true, BusySeconds: 6.1e-05, WallSeconds: 1.5e-07, OutBytes: 123456789},
		{Name: "x", OK: true, BusySeconds: 1e21, WallSeconds: 1e22, OutBytes: -7},
		{Name: "x", OK: true, BusySeconds: -0.25, WallSeconds: 3, ColdStart: true, Pod: "wfbench-5f"},
		{Name: "x", OK: true, BusySeconds: 0, WallSeconds: 123456.789, Pod: "p"},
	}
	for _, r := range cases {
		want, err := json.Marshal(&r)
		if err != nil {
			t.Fatal(err)
		}
		got, err := MarshalResponse(&r)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("MarshalResponse(%+v)\n got %s\nwant %s", r, got, want)
		}
	}
}

// TestMarshalResponseFallsBack covers inputs the append path cannot
// encode: escapes, HTML-sensitive bytes, non-ASCII — all must still
// match encoding/json exactly (via the fallback).
func TestMarshalResponseFallsBack(t *testing.T) {
	cases := []Response{
		{Name: `quo"te`, OK: true},
		{Name: "tab\there", OK: true},
		{Name: "a<b&c>d", OK: false, Error: "x\\y"},
		{Name: "uni\u00e9", OK: true, Pod: "p\u2028q"},
	}
	for _, r := range cases {
		want, _ := json.Marshal(&r)
		got, err := MarshalResponse(&r)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("MarshalResponse(%+v)\n got %s\nwant %s", r, got, want)
		}
	}
	if got, err := MarshalResponse(nil); err != nil || string(got) != "null" {
		t.Errorf("MarshalResponse(nil) = %s, %v", got, err)
	}
}

// TestUnmarshalRequestMatchesStdlib decodes a spread of bodies with
// both decoders and requires identical structs and identical error
// nilness.
func TestUnmarshalRequestMatchesStdlib(t *testing.T) {
	bodies := []string{
		// Canonical producer output.
		`{"name":"t1","percent-cpu":0.5,"cpu-work":0.001,"cores":1,"out":{"t1_out":1},"inputs":["root_out"]}`,
		// Omissions, empties, extremes.
		`{"name":"t2","percent-cpu":1,"cpu-work":0,"out":{},"inputs":[]}`,
		`{"name":"t3","percent-cpu":0.25,"cpu-work":12.75,"mem-bytes":67108864,"out":{"a":10,"b":20},"inputs":["x","y","z"],"workdir":"/scratch"}`,
		`{"name":"big","percent-cpu":1,"cpu-work":1e3,"out":{"o":9223372036854775807},"inputs":[]}`,
		// Whitespace tolerance.
		"{\n  \"name\": \"ws\",\n  \"percent-cpu\": 0.5,\n  \"cpu-work\": 2,\n  \"out\": { \"o\" : 1 },\n  \"inputs\": [ \"a\" , \"b\" ]\n}",
		// Unknown fields of every shape are skipped.
		`{"name":"u","extra":"s","extra2":17,"extra3":[1,"two",true],"extra4":{"k":{"n":null}},"percent-cpu":0,"cpu-work":0,"out":{},"inputs":[]}`,
		// Fallback territory: escapes, case-insensitive keys, nulls,
		// floats past the exact fast path, float into int (error).
		`{"name":"esc\"aped","percent-cpu":0,"cpu-work":0,"out":{},"inputs":[]}`,
		`{"Name":"case","percent-cpu":0.5,"cpu-work":0,"out":{},"inputs":[]}`,
		`{"name":null,"percent-cpu":0,"cpu-work":0,"out":null,"inputs":null}`,
		`{"name":"f","percent-cpu":0.1234567890123456789,"cpu-work":1e-300,"out":{},"inputs":[]}`,
		`{"name":"bad","cores":1.5,"out":{},"inputs":[]}`,
		`{"name":"neg","mem-bytes":-64,"cores":-2,"percent-cpu":0.5,"cpu-work":3,"out":{},"inputs":[]}`,
		// Broken JSON must error from both.
		`{"name":"trunc`,
		`{"name":"t"} trailing`,
		`[1,2,3]`,
		``,
	}
	for _, body := range bodies {
		var want Request
		werr := json.Unmarshal([]byte(body), &want)
		var got Request
		gerr := UnmarshalRequest([]byte(body), &got)
		if (werr == nil) != (gerr == nil) {
			t.Errorf("%s: error mismatch: stdlib %v, fast %v", body, werr, gerr)
			continue
		}
		if werr == nil && !reflect.DeepEqual(got, want) {
			t.Errorf("%s:\n got %+v\nwant %+v", body, got, want)
		}
	}
}

// TestUnmarshalResponseMatchesStdlib mirrors the request test for the
// response payload, including round-trips of the fast encoder.
func TestUnmarshalResponseMatchesStdlib(t *testing.T) {
	bodies := []string{
		`{"name":"t1","ok":true,"busySeconds":0.001,"wallSeconds":0.002,"outBytes":1}`,
		`{"name":"t2","ok":false,"error":"wfbench: t2: missing inputs [a]","busySeconds":0,"wallSeconds":0,"outBytes":0}`,
		`{"name":"t3","ok":true,"busySeconds":6.1e-05,"wallSeconds":1.5,"outBytes":42,"coldStart":true,"pod":"wfbench-abc"}`,
		`{"ok":true}`,
		`{"name":"esc\u00e9","ok":true,"busySeconds":0,"wallSeconds":0,"outBytes":0}`,
		`{"OK":true,"NAME":"caps"}`,
		`{not json`,
		`null`,
	}
	for _, body := range bodies {
		var want Response
		werr := json.Unmarshal([]byte(body), &want)
		var got Response
		gerr := UnmarshalResponse([]byte(body), &got)
		if (werr == nil) != (gerr == nil) {
			t.Errorf("%s: error mismatch: stdlib %v, fast %v", body, werr, gerr)
			continue
		}
		if werr == nil && !reflect.DeepEqual(got, want) {
			t.Errorf("%s:\n got %+v\nwant %+v", body, got, want)
		}
	}
	// Encoder output always decodes back to the source struct.
	src := Response{Name: "rt", OK: true, BusySeconds: 0.125, WallSeconds: 2.5e-07,
		OutBytes: 9, ColdStart: true, Pod: "p0"}
	enc, err := MarshalResponse(&src)
	if err != nil {
		t.Fatal(err)
	}
	var back Response
	if err := UnmarshalResponse(enc, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, src) {
		t.Fatalf("round trip: got %+v, want %+v", back, src)
	}
}

// TestFastFloatExactness sweeps the wire's typical float literals
// through the fast path and requires bit-identical results with
// strconv-backed stdlib decoding.
func TestFastFloatExactness(t *testing.T) {
	lits := []string{
		"0", "1", "0.5", "0.001", "123.456", "-0.25", "1e3", "1E3",
		"6.1e-05", "2.5e+07", "9e22", "1e-22", "0.000001", "15.9999999999999",
	}
	for _, lit := range lits {
		body := []byte(`{"name":"f","ok":true,"busySeconds":` + lit + `,"wallSeconds":0,"outBytes":0}`)
		var want, got Response
		if err := json.Unmarshal(body, &want); err != nil {
			t.Fatal(err)
		}
		if err := UnmarshalResponse(body, &got); err != nil {
			t.Fatal(err)
		}
		if got.BusySeconds != want.BusySeconds {
			t.Errorf("%s: fast %v != stdlib %v", lit, got.BusySeconds, want.BusySeconds)
		}
	}
}
