package wfbench

import (
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"wfserverless/internal/obs"
	"wfserverless/internal/sharedfs"
)

// Batch wire format, shared by the workflow manager's batching
// dispatcher, the platform ingress, and the standalone service.
//
// A batch request body is a length-prefixed concatenation of the
// already-JSON-encoded single-task request bodies — the manager reuses
// its payload-arena slices without re-encoding or copying:
//
//	uvarint task count
//	per task: uvarint traceparent length, traceparent bytes,
//	          uvarint body length, body bytes (the /wfbench JSON)
//
// A batch response mirrors single-task HTTP semantics frame by frame,
// so the client can run its existing per-task retry/breaker
// classification unchanged:
//
//	uvarint task count (matching the request)
//	per task: uvarint HTTP status, uvarint Retry-After milliseconds,
//	          uvarint payload length, payload bytes
//	          (status 200: Response JSON; otherwise: error text)
const BatchContentType = "application/x-wfbench-batch"

// Decoder guards against corrupt or hostile frames.
const (
	maxBatchTasks = 1 << 20
	maxFrameBytes = 64 << 20
)

// BatchItem is one decoded sub-request of a batch.
type BatchItem struct {
	Traceparent string
	Body        []byte
}

// BatchResult is one sub-response frame. Status carries the exact HTTP
// status a single-task POST would have answered with.
type BatchResult struct {
	Status           int
	RetryAfterMillis int64
	Payload          []byte
}

// AppendBatchCount appends the batch's task-count prefix.
func AppendBatchCount(dst []byte, n int) []byte {
	return binary.AppendUvarint(dst, uint64(n))
}

// AppendBatchItemHeader appends one sub-request's frame header (the
// traceparent plus the length prefix of the body that follows). The
// body bytes themselves are written separately so callers can stream
// pre-encoded payloads zero-copy.
func AppendBatchItemHeader(dst []byte, traceparent string, bodyLen int) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(traceparent)))
	dst = append(dst, traceparent...)
	return binary.AppendUvarint(dst, uint64(bodyLen))
}

// EncodeBatchRequest renders a complete batch request body (the
// convenience form used by tests and the fault injector's re-framing;
// the manager streams arena slices instead).
func EncodeBatchRequest(items []BatchItem) []byte {
	out := AppendBatchCount(nil, len(items))
	for _, it := range items {
		out = AppendBatchItemHeader(out, it.Traceparent, len(it.Body))
		out = append(out, it.Body...)
	}
	return out
}

// DecodeBatchRequest parses a batch request body.
func DecodeBatchRequest(r io.Reader) ([]BatchItem, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("wfbench: batch request body: %w", err)
	}
	return DecodeBatchRequestBytes(data)
}

// ReadBatchBody slurps an HTTP batch body, in a single exact-size
// allocation when the Content-Length is declared. Servers pair it with
// DecodeBatchRequestBytes so the whole decode costs two allocations.
func ReadBatchBody(r *http.Request) ([]byte, error) {
	if n := r.ContentLength; n >= 0 {
		buf := make([]byte, n)
		if _, err := io.ReadFull(r.Body, buf); err != nil {
			return nil, err
		}
		return buf, nil
	}
	return io.ReadAll(r.Body)
}

// DecodeBatchRequestBytes parses a batch request body in place: every
// BatchItem.Body aliases data instead of copying its frame, so a wide
// batch decodes with one allocation for the item slice. Callers must
// keep data alive for as long as the items.
func DecodeBatchRequestBytes(data []byte) ([]BatchItem, error) {
	c := batchCursor{buf: data}
	n, err := c.count(maxBatchTasks, "task count")
	if err != nil {
		return nil, err
	}
	items := make([]BatchItem, n)
	for i := range items {
		tp, err := c.frame(256, "traceparent")
		if err != nil {
			return nil, fmt.Errorf("wfbench: batch task %d: %w", i, err)
		}
		body, err := c.frame(maxFrameBytes, "body")
		if err != nil {
			return nil, fmt.Errorf("wfbench: batch task %d: %w", i, err)
		}
		items[i] = BatchItem{Traceparent: string(tp), Body: body}
	}
	return items, nil
}

// EncodeBatchResponse renders a complete batch response body.
func EncodeBatchResponse(results []BatchResult) []byte {
	// Size the buffer exactly (uvarints bounded by binary.MaxVarintLen64)
	// so a wide batch encodes without growth copies.
	size := binary.MaxVarintLen64
	for _, res := range results {
		size += 3*binary.MaxVarintLen64 + len(res.Payload)
	}
	out := AppendBatchCount(make([]byte, 0, size), len(results))
	for _, res := range results {
		out = binary.AppendUvarint(out, uint64(res.Status))
		out = binary.AppendUvarint(out, uint64(res.RetryAfterMillis))
		out = binary.AppendUvarint(out, uint64(len(res.Payload)))
		out = append(out, res.Payload...)
	}
	return out
}

// DecodeBatchResponse parses a full batch response body strictly —
// every frame must decode. Clients that want to salvage the frames
// before a corrupt one use BatchResponseReader instead.
func DecodeBatchResponse(r io.Reader) ([]BatchResult, error) {
	br, err := NewBatchResponseReader(r)
	if err != nil {
		return nil, err
	}
	out := make([]BatchResult, 0, br.Len())
	for i := 0; i < br.Len(); i++ {
		res, err := br.Next()
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}

// BatchResponseReader walks a batch response frame by frame. A framing
// error from Next is terminal (the remaining frames cannot be located),
// but a frame whose payload is garbage still decodes here — payload
// interpretation is the caller's per-task concern, so one corrupt
// sub-response cannot poison its batch-mates.
type BatchResponseReader struct {
	c batchCursor
	n int
	i int
}

// NewBatchResponseReader reads the full body and parses the count
// prefix. Clients that already hold the body use
// NewBatchResponseReaderBytes to skip the copy.
func NewBatchResponseReader(r io.Reader) (*BatchResponseReader, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("wfbench: batch response body: %w", err)
	}
	return NewBatchResponseReaderBytes(data)
}

// NewBatchResponseReaderBytes parses the count prefix of an in-memory
// body. Every BatchResult.Payload from Next aliases data.
func NewBatchResponseReaderBytes(data []byte) (*BatchResponseReader, error) {
	r := &BatchResponseReader{c: batchCursor{buf: data}}
	n, err := r.c.count(maxBatchTasks, "task count")
	if err != nil {
		return nil, err
	}
	r.n = n
	return r, nil
}

// Len returns the declared frame count.
func (r *BatchResponseReader) Len() int { return r.n }

// Next returns the next frame.
func (r *BatchResponseReader) Next() (BatchResult, error) {
	if r.i >= r.n {
		return BatchResult{}, io.EOF
	}
	r.i++
	status, err := r.c.uvarint("wfbench: batch response status")
	if err != nil {
		return BatchResult{}, err
	}
	if status < 100 || status > 599 {
		return BatchResult{}, fmt.Errorf("wfbench: batch response status %d out of range", status)
	}
	retryAfter, err := r.c.uvarint("wfbench: batch response retry-after")
	if err != nil {
		return BatchResult{}, err
	}
	payload, err := r.c.frame(maxFrameBytes, "payload")
	if err != nil {
		return BatchResult{}, fmt.Errorf("wfbench: batch response: %w", err)
	}
	return BatchResult{Status: int(status), RetryAfterMillis: int64(retryAfter), Payload: payload}, nil
}

// batchCursor walks a fully-read batch body, returning frames that
// alias the underlying buffer.
type batchCursor struct {
	buf []byte
	off int
}

func (c *batchCursor) uvarint(what string) (uint64, error) {
	v, n := binary.Uvarint(c.buf[c.off:])
	if n > 0 {
		c.off += n
		return v, nil
	}
	if n == 0 {
		return 0, fmt.Errorf("%s: %w", what, io.ErrUnexpectedEOF)
	}
	return 0, fmt.Errorf("%s: varint overflows 64 bits", what)
}

func (c *batchCursor) count(max uint64, what string) (int, error) {
	v, err := c.uvarint("wfbench: batch " + what)
	if err != nil {
		return 0, err
	}
	if v > max {
		return 0, fmt.Errorf("wfbench: batch %s %d exceeds limit %d", what, v, max)
	}
	return int(v), nil
}

func (c *batchCursor) frame(max uint64, what string) ([]byte, error) {
	// Length prefix read inline: building the "<what> length" error label
	// eagerly would allocate on every frame of every batch.
	l, n := binary.Uvarint(c.buf[c.off:])
	if n <= 0 {
		if n == 0 {
			return nil, fmt.Errorf("%s length: %w", what, io.ErrUnexpectedEOF)
		}
		return nil, fmt.Errorf("%s length: varint overflows 64 bits", what)
	}
	c.off += n
	if l > max {
		return nil, fmt.Errorf("%s length %d exceeds limit %d", what, l, max)
	}
	end := c.off + int(l)
	if uint64(len(c.buf)-c.off) < l {
		return nil, fmt.Errorf("%s bytes: %w", what, io.ErrUnexpectedEOF)
	}
	b := c.buf[c.off:end:end]
	c.off = end
	return b, nil
}

// BatchPrep is the shared verification state of one batch: the union of
// the batch's input files, waited for and content-hashed once, so each
// sub-task's input phase reduces to map lookups instead of its own
// drive waits (and, on content-addressed drives, instead of re-reading
// staged bytes).
type BatchPrep struct {
	hashes  map[string]uint64
	present map[string]struct{}
}

// PrepareInputs waits (up to wait) for the union of the batch's input
// files and resolves their content hashes where the drive supports it.
// Files still missing at the deadline simply stay absent from the prep;
// the sub-tasks that need them fail their own input check.
func PrepareInputs(ctx context.Context, d sharedfs.Drive, inputs []string, wait time.Duration) *BatchPrep {
	p := &BatchPrep{present: make(map[string]struct{}, len(inputs))}
	uniq := make([]string, 0, len(inputs))
	seen := make(map[string]struct{}, len(inputs))
	for _, in := range inputs {
		if _, ok := seen[in]; ok {
			continue
		}
		seen[in] = struct{}{}
		uniq = append(uniq, in)
	}
	if len(uniq) == 0 {
		return p
	}
	waitCtx, cancel := context.WithTimeout(ctx, wait)
	missing, _ := sharedfs.WaitFor(waitCtx, d, uniq, wait/20)
	cancel()
	gone := make(map[string]struct{}, len(missing))
	for _, m := range missing {
		gone[m] = struct{}{}
	}
	hasher, _ := d.(sharedfs.Hasher)
	for _, in := range uniq {
		if _, ok := gone[in]; ok {
			continue
		}
		p.present[in] = struct{}{}
		if hasher != nil {
			if h, ok := hasher.ContentHash(in); ok {
				if p.hashes == nil {
					p.hashes = make(map[string]uint64, len(uniq))
				}
				p.hashes[in] = h
			}
		}
	}
	return p
}

// Verified reports whether the prep confirmed the input present.
func (p *BatchPrep) Verified(name string) bool {
	_, ok := p.present[name]
	return ok
}

// Hash returns the input's content hash, when the drive could provide
// one.
func (p *BatchPrep) Hash(name string) (uint64, bool) {
	h, ok := p.hashes[name]
	return h, ok
}

// missingOf returns the subset of inputs the prep could not verify.
func (p *BatchPrep) missingOf(inputs []string) []string {
	var missing []string
	for _, in := range inputs {
		if !p.Verified(in) {
			missing = append(missing, in)
		}
	}
	return missing
}

// serveBatch answers POST /invoke-batch for the standalone service:
// decode the frames, verify the batch's input union once, run the
// sub-tasks concurrently through the bounded worker pool, and answer
// one frame per sub-task in request order.
func (s *Service) serveBatch(w http.ResponseWriter, r *http.Request) {
	body, err := ReadBatchBody(r)
	var items []BatchItem
	if err == nil {
		items, err = DecodeBatchRequestBytes(body)
	}
	if err != nil {
		http.Error(w, fmt.Sprintf("bad batch: %v", err), http.StatusBadRequest)
		return
	}
	cfg := s.bench.cfg
	results := ExecuteBatch(context.Background(), items, cfg.Drive, cfg.InputWait,
		func(ctx context.Context, req *Request, prep *BatchPrep) (*Response, error) {
			w := <-s.workers
			s.active.Add(1)
			defer func() {
				s.active.Add(-1)
				s.workers <- w
			}()
			s.requests.Add(1)
			start := time.Now()
			resp, err := w.ExecuteVerified(ctx, req, prep)
			s.latency.ObserveDuration(time.Since(start))
			if err != nil {
				s.failures.Add(1)
			}
			return resp, err
		})
	WriteBatchResponse(w, results)
}

// ExecuteBatch is the shared batch execution shape: unmarshal and
// validate each sub-request, prepare the input union once, then run the
// valid sub-tasks concurrently via run. Invalid frames answer 400
// without occupying a worker; function errors answer 500 with the
// Response JSON, exactly as the single-task handler does.
func ExecuteBatch(ctx context.Context, items []BatchItem, drive sharedfs.Drive, inputWait time.Duration,
	run func(ctx context.Context, req *Request, prep *BatchPrep) (*Response, error)) []BatchResult {
	results := make([]BatchResult, len(items))
	reqs := make([]*Request, len(items))
	var union []string
	for i, it := range items {
		req := new(Request)
		if err := UnmarshalRequest(it.Body, req); err != nil {
			results[i] = BatchResult{Status: http.StatusBadRequest, Payload: []byte(fmt.Sprintf("bad request: %v", err))}
			continue
		}
		if err := req.Validate(); err != nil {
			results[i] = BatchResult{Status: http.StatusBadRequest, Payload: []byte(err.Error())}
			continue
		}
		reqs[i] = req
		union = append(union, req.Inputs...)
	}
	prep := PrepareInputs(ctx, drive, union, inputWait)
	var wg sync.WaitGroup
	for i, req := range reqs {
		if req == nil {
			continue
		}
		wg.Add(1)
		go func(i int, req *Request) {
			defer wg.Done()
			subCtx := ctx
			if sc, ok := obs.ParseTraceparent(items[i].Traceparent); ok {
				subCtx = obs.ContextWithSpan(ctx, sc)
			}
			resp, err := run(subCtx, req, prep)
			status := http.StatusOK
			if err != nil {
				status = http.StatusInternalServerError
			}
			payload, merr := MarshalResponse(resp)
			if merr != nil {
				status = http.StatusInternalServerError
				payload = []byte(merr.Error())
			}
			results[i] = BatchResult{Status: status, Payload: payload}
		}(i, req)
	}
	wg.Wait()
	return results
}

// WriteBatchResponse writes an encoded batch response with the batch
// content type.
func WriteBatchResponse(w http.ResponseWriter, results []BatchResult) {
	body := EncodeBatchResponse(results)
	w.Header().Set("Content-Type", BatchContentType)
	w.Header().Set("Content-Length", fmt.Sprint(len(body)))
	w.Write(body)
}
