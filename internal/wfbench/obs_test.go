package wfbench

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"wfserverless/internal/obs"
	"wfserverless/internal/sharedfs"
)

func tracedBench(t *testing.T, tr *obs.Tracer) *Bench {
	t.Helper()
	b, err := New(Config{Drive: sharedfs.NewMem(), TimeScale: 0.001, Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestServicePhaseSpansFromHeader drives POST /wfbench with a
// Traceparent header and checks the worker emits its phase leaves
// parented onto the propagated span.
func TestServicePhaseSpansFromHeader(t *testing.T) {
	tr := obs.NewTracer(obs.Options{SampleRatio: 1})
	s, err := NewService(tracedBench(t, tr), 2)
	if err != nil {
		t.Fatal(err)
	}
	root := tr.StartRoot("invoke", obs.LayerWFM)
	rootCtx := root.Context()

	body, _ := json.Marshal(&Request{
		Name: "f1", PercentCPU: 0.5, CPUWork: 10, MemBytes: 1 << 20,
		Out: map[string]int64{"f1_out": 4},
	})
	req := httptest.NewRequest("POST", "/wfbench", bytes.NewReader(body))
	req.Header.Set("Traceparent", rootCtx.Traceparent())
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}

	root.Finish()
	spans := tr.Take()
	counts := map[string]int{}
	for _, sp := range spans {
		counts[sp.Name]++
		if sp.Name == "memory" || sp.Name == "cpu" || sp.Name == "outputs" {
			if sp.Layer != obs.LayerWfbench {
				t.Fatalf("%s layer = %q", sp.Name, sp.Layer)
			}
			if sp.Parent != rootCtx.SpanID {
				t.Fatalf("%s not parented to the propagated span", sp.Name)
			}
		}
	}
	for _, name := range []string{"memory", "cpu", "outputs"} {
		if counts[name] != 1 {
			t.Fatalf("span %q count = %d, want 1 (all: %v)", name, counts[name], counts)
		}
	}

	// Without the header, the same request must record nothing.
	req = httptest.NewRequest("POST", "/wfbench", bytes.NewReader(body))
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if got := tr.Take(); len(got) != 0 {
		t.Fatalf("headerless request recorded %d spans", len(got))
	}
}

// TestServiceMetricsExposition checks the standalone service's
// /metrics: counters typed counter, gauges gauge, and a complete
// execution-latency histogram.
func TestServiceMetricsExposition(t *testing.T) {
	s, err := NewService(tracedBench(t, nil), 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Execute(&Request{Name: "f1", PercentCPU: 0.5, CPUWork: 5}); err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest("GET", "/metrics", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	out := rec.Body.String()
	for _, frag := range []string{
		"# TYPE wfbench_workers gauge",
		"# TYPE wfbench_active gauge",
		"# TYPE wfbench_requests_total counter",
		"# TYPE wfbench_failures_total counter",
		"# TYPE wfbench_execution_seconds histogram",
		"wfbench_requests_total 1",
		"wfbench_workers 3",
		`wfbench_execution_seconds_bucket{le="+Inf"} 1`,
		"wfbench_execution_seconds_count 1",
	} {
		if !strings.Contains(out, frag) {
			t.Fatalf("exposition missing %q in:\n%s", frag, out)
		}
	}
	for _, line := range strings.Split(out, "\n") {
		if f := strings.Fields(line); len(f) == 4 && f[1] == "TYPE" &&
			strings.HasSuffix(f[2], "_total") && f[3] != "counter" {
			t.Fatalf("monotonic series %s typed %q", f[2], f[3])
		}
	}
}
