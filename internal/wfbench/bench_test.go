package wfbench

import (
	"context"
	"testing"

	"wfserverless/internal/sharedfs"
)

func BenchmarkExecuteSim(b *testing.B) {
	bench, err := New(Config{Drive: sharedfs.NewMem(), TimeScale: 0.0001})
	if err != nil {
		b.Fatal(err)
	}
	w := bench.NewWorker()
	r := &Request{
		Name: "f", PercentCPU: 0.9, CPUWork: 100, MemBytes: 1 << 20,
		Out: map[string]int64{"f_out": 64},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.Execute(context.Background(), r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBurnEngineShortSlice(b *testing.B) {
	e := BurnEngine{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Run(context.Background(), 100000, 0.5); err != nil { // 100µs
			b.Fatal(err)
		}
	}
}

func BenchmarkServiceThroughput(b *testing.B) {
	bench, err := New(Config{Drive: sharedfs.NewMem(), TimeScale: 0.00001})
	if err != nil {
		b.Fatal(err)
	}
	svc, err := NewService(bench, 8)
	if err != nil {
		b.Fatal(err)
	}
	b.RunParallel(func(pb *testing.PB) {
		r := &Request{
			Name: "p", PercentCPU: 0.9, CPUWork: 100,
			Out: map[string]int64{"p_out": 1},
		}
		for pb.Next() {
			if _, err := svc.Execute(r); err != nil {
				b.Fatal(err)
			}
		}
	})
}
