package wfbench

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"wfserverless/internal/sharedfs"
)

func marshalReq(t *testing.T, r *Request) []byte {
	t.Helper()
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestBatchRequestRoundTrip(t *testing.T) {
	items := []BatchItem{
		{Traceparent: "", Body: []byte(`{"name":"a"}`)},
		{Traceparent: "00-trace-span-01", Body: []byte{}},
		{Traceparent: "", Body: []byte(`{"name":"c","inputs":["x"]}`)},
	}
	got, err := DecodeBatchRequest(bytes.NewReader(EncodeBatchRequest(items)))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(items) {
		t.Fatalf("decoded %d items, want %d", len(got), len(items))
	}
	for i := range items {
		if got[i].Traceparent != items[i].Traceparent || string(got[i].Body) != string(items[i].Body) {
			t.Fatalf("item %d = %+v, want %+v", i, got[i], items[i])
		}
	}
}

func TestBatchResponseRoundTrip(t *testing.T) {
	results := []BatchResult{
		{Status: 200, Payload: []byte(`{"ok":true}`)},
		{Status: 429, RetryAfterMillis: 1500, Payload: []byte("overloaded")},
		{Status: 500, Payload: []byte("boom")},
	}
	got, err := DecodeBatchResponse(bytes.NewReader(EncodeBatchResponse(results)))
	if err != nil {
		t.Fatal(err)
	}
	for i := range results {
		if got[i].Status != results[i].Status ||
			got[i].RetryAfterMillis != results[i].RetryAfterMillis ||
			string(got[i].Payload) != string(results[i].Payload) {
			t.Fatalf("frame %d = %+v, want %+v", i, got[i], results[i])
		}
	}
}

// TestBatchResponseReaderSalvagesPrefix pins the streaming contract: a
// framing error is terminal, but every frame before it is recovered —
// the client fails only the tasks it cannot locate frames for.
func TestBatchResponseReaderSalvagesPrefix(t *testing.T) {
	raw := AppendBatchCount(nil, 3)
	raw = binary.AppendUvarint(raw, 200)
	raw = binary.AppendUvarint(raw, 0)
	raw = binary.AppendUvarint(raw, 2)
	raw = append(raw, "ok"...)
	raw = binary.AppendUvarint(raw, 999) // status out of range: framing error
	br, err := NewBatchResponseReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if br.Len() != 3 {
		t.Fatalf("Len = %d, want 3", br.Len())
	}
	first, err := br.Next()
	if err != nil || first.Status != 200 || string(first.Payload) != "ok" {
		t.Fatalf("first frame = %+v, %v", first, err)
	}
	if _, err := br.Next(); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("corrupt frame error = %v", err)
	}
}

func TestDecodeBatchRequestRejectsOversize(t *testing.T) {
	over := binary.AppendUvarint(nil, maxBatchTasks+1)
	if _, err := DecodeBatchRequest(bytes.NewReader(over)); err == nil {
		t.Fatal("oversize task count accepted")
	}
	// Traceparent frames are capped at 256 bytes.
	raw := AppendBatchCount(nil, 1)
	raw = binary.AppendUvarint(raw, 300)
	raw = append(raw, make([]byte, 300)...)
	raw = binary.AppendUvarint(raw, 0)
	if _, err := DecodeBatchRequest(bytes.NewReader(raw)); err == nil {
		t.Fatal("oversize traceparent accepted")
	}
	// A truncated body must error, not hang or short-read.
	raw = AppendBatchCount(nil, 1)
	raw = binary.AppendUvarint(raw, 0)
	raw = binary.AppendUvarint(raw, 10)
	raw = append(raw, "short"...)
	if _, err := DecodeBatchRequest(bytes.NewReader(raw)); err == nil {
		t.Fatal("truncated body accepted")
	}
}

func TestPrepareInputsHashesPresentFiles(t *testing.T) {
	drive := sharedfs.NewMem()
	drive.WriteFile("a", 10)
	drive.WriteFile("b", 20)
	prep := PrepareInputs(context.Background(), drive, []string{"a", "b", "a", "missing"}, 50*time.Millisecond)
	if !prep.Verified("a") || !prep.Verified("b") {
		t.Fatal("staged files not verified")
	}
	if prep.Verified("missing") {
		t.Fatal("absent file verified")
	}
	ha, ok := prep.Hash("a")
	if !ok {
		t.Fatal("no content hash for staged file on a hashing drive")
	}
	if hb, ok := prep.Hash("b"); !ok || hb == ha {
		t.Fatalf("hashes not distinct: a=%d b=%d ok=%v", ha, hb, ok)
	}
	if missing := prep.missingOf([]string{"a", "missing"}); len(missing) != 1 || missing[0] != "missing" {
		t.Fatalf("missingOf = %v", missing)
	}
}

// TestServiceServeBatch drives the standalone service's /invoke-batch
// surface end to end: valid sub-tasks execute through the worker pool,
// an unparseable frame answers 400 without poisoning the others, and a
// sub-task with a missing input answers 500 with the usual Response
// JSON — frame for frame what single-task POSTs would have said.
func TestServiceServeBatch(t *testing.T) {
	drive := sharedfs.NewMem()
	drive.WriteFile("staged.in", 8)
	b := testBench(t, Config{Drive: drive, InputWait: 50 * time.Millisecond})
	svc, err := NewService(b, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	srv := httptest.NewServer(svc)
	defer srv.Close()

	withInput := req("needs_input")
	withInput.Inputs = []string{"staged.in"}
	doomed := req("doomed")
	doomed.Inputs = []string{"never_staged.in"}
	items := []BatchItem{
		{Body: marshalReq(t, req("plain"))},
		{Body: []byte("{broken")},
		{Body: marshalReq(t, withInput)},
		{Body: marshalReq(t, doomed)},
	}
	resp, err := http.Post(srv.URL+"/invoke-batch", BatchContentType,
		bytes.NewReader(EncodeBatchRequest(items)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch POST status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != BatchContentType {
		t.Fatalf("Content-Type = %q", ct)
	}
	results, err := DecodeBatchResponse(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("%d frames, want 4", len(results))
	}
	wantStatus := []int{200, 400, 200, 500}
	for i, want := range wantStatus {
		if results[i].Status != want {
			t.Fatalf("frame %d status = %d, want %d (payload %q)", i, results[i].Status, want, results[i].Payload)
		}
	}
	for _, i := range []int{0, 2} {
		var r Response
		if err := json.Unmarshal(results[i].Payload, &r); err != nil || !r.OK {
			t.Fatalf("frame %d payload = %q (err %v)", i, results[i].Payload, err)
		}
	}
	var failed Response
	if err := json.Unmarshal(results[3].Payload, &failed); err != nil {
		t.Fatal(err)
	}
	if failed.OK || !strings.Contains(failed.Error, "never_staged.in") {
		t.Fatalf("doomed frame response = %+v", failed)
	}
	// The valid sub-tasks' outputs landed on the drive.
	if _, err := drive.Stat("plain_out"); err != nil {
		t.Fatalf("plain_out not published: %v", err)
	}
	if _, err := drive.Stat("needs_input_out"); err != nil {
		t.Fatalf("needs_input_out not published: %v", err)
	}
}

// batchEcho is a minimal /invoke-batch upstream: every frame answers
// 200 with an OK Response carrying the request's name.
func batchEcho(t *testing.T) http.Handler {
	t.Helper()
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		items, err := DecodeBatchRequest(r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		results := make([]BatchResult, len(items))
		for i, it := range items {
			var req Request
			if err := json.Unmarshal(it.Body, &req); err != nil {
				t.Errorf("upstream got unparseable frame: %v", err)
			}
			payload, _ := json.Marshal(&Response{Name: req.Name, OK: true})
			results[i] = BatchResult{Status: http.StatusOK, Payload: payload}
		}
		WriteBatchResponse(w, results)
	})
}

func postBatch(t *testing.T, h http.Handler, items []BatchItem) []BatchResult {
	t.Helper()
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, "/invoke-batch",
		bytes.NewReader(EncodeBatchRequest(items)))
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("batch POST status = %d: %s", rec.Code, rec.Body.String())
	}
	results, err := DecodeBatchResponse(rec.Body)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(items) {
		t.Fatalf("%d frames, want %d", len(results), len(items))
	}
	return results
}

func batchItems(t *testing.T, n int) []BatchItem {
	t.Helper()
	items := make([]BatchItem, n)
	for i := range items {
		items[i] = BatchItem{Body: marshalReq(t, req("t"+frameTag(i)))}
	}
	return items
}

func frameTag(i int) string { return string(rune('a' + i)) }

// TestInjectorBatchZeroProfileForwards pins the clean path: no faults
// means the batch reaches the upstream intact and frames come back in
// request order.
func TestInjectorBatchZeroProfileForwards(t *testing.T) {
	inj, err := NewInjector(batchEcho(t), FaultProfile{})
	if err != nil {
		t.Fatal(err)
	}
	results := postBatch(t, inj, batchItems(t, 4))
	for i, res := range results {
		var r Response
		if res.Status != 200 {
			t.Fatalf("frame %d status = %d", i, res.Status)
		}
		if err := json.Unmarshal(res.Payload, &r); err != nil || r.Name != "t"+frameTag(i) {
			t.Fatalf("frame %d out of order: %+v (%v)", i, r, err)
		}
	}
	if s := inj.Stats(); s.Passed != 4 {
		t.Fatalf("stats = %+v, want 4 passes", s)
	}
}

// TestInjectorBatchRejectsPerFrame pins that a certain-reject profile
// answers every frame 429 with the Retry-After hint in milliseconds —
// the hint the manager's retry schedule honors per sub-task.
func TestInjectorBatchRejectsPerFrame(t *testing.T) {
	inj, err := NewInjector(batchEcho(t), FaultProfile{RejectRate: 1, RetryAfter: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	results := postBatch(t, inj, batchItems(t, 3))
	for i, res := range results {
		if res.Status != http.StatusTooManyRequests || res.RetryAfterMillis != 250 {
			t.Fatalf("frame %d = %+v, want 429 with 250ms hint", i, res)
		}
	}
	if s := inj.Stats(); s.Rejects != 3 || s.Passed != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

// TestInjectorBatchFaultsSubset pins per-frame independence: with a
// half error rate over many frames, some frames fail and some execute,
// inside the same batch POST — the injector no longer faults at
// request granularity.
func TestInjectorBatchFaultsSubset(t *testing.T) {
	inj, err := NewInjector(batchEcho(t), FaultProfile{ErrorRate: 0.5, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	items := make([]BatchItem, 24)
	for i := range items {
		items[i] = BatchItem{Body: marshalReq(t, req("x"))}
	}
	results := postBatch(t, inj, items)
	var ok, failed int
	for _, res := range results {
		switch res.Status {
		case http.StatusOK:
			ok++
		case http.StatusInternalServerError:
			failed++
		default:
			t.Fatalf("unexpected frame status %d", res.Status)
		}
	}
	if ok == 0 || failed == 0 {
		t.Fatalf("ok=%d failed=%d: faults not per-frame", ok, failed)
	}
	s := inj.Stats()
	if int(s.Errors) != failed || int(s.Passed) != ok {
		t.Fatalf("stats %+v disagree with frames ok=%d failed=%d", s, ok, failed)
	}
}

// TestInjectorBatchUpstreamRejectInheritedByAll pins the whole-batch
// failure path: when the wrapped handler answers the re-framed batch
// with a non-200, every forwarded frame inherits that status and the
// Retry-After header, exactly as single-task POSTs to a drowning
// endpoint would.
func TestInjectorBatchUpstreamRejectInheritedByAll(t *testing.T) {
	upstream := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "2")
		http.Error(w, "drowning", http.StatusServiceUnavailable)
	})
	inj, err := NewInjector(upstream, FaultProfile{})
	if err != nil {
		t.Fatal(err)
	}
	results := postBatch(t, inj, batchItems(t, 3))
	for i, res := range results {
		if res.Status != http.StatusServiceUnavailable || res.RetryAfterMillis != 2000 {
			t.Fatalf("frame %d = %+v, want 503 with 2000ms hint", i, res)
		}
	}
}
