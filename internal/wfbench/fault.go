package wfbench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// FaultProfile configures the Injector: how often and how a wrapped
// wfbench endpoint misbehaves. All rates are probabilities in [0, 1]
// evaluated independently per request, in the order hang, latency,
// reject, error. A zero profile injects nothing.
type FaultProfile struct {
	// ErrorRate is the probability of answering 500 without executing.
	ErrorRate float64
	// RejectRate is the probability of answering 429 Too Many Requests
	// with a Retry-After header, modelling platform overload.
	RejectRate float64
	// RetryAfter is the hint (in seconds) sent with injected 429s.
	// Zero omits the header.
	RetryAfter float64
	// LatencyRate is the probability of delaying a request before it
	// reaches the wrapped handler.
	LatencyRate float64
	// Latency is the base injected delay; LatencyJitter adds a uniform
	// random extra on top.
	Latency       time.Duration
	LatencyJitter time.Duration
	// LatencyAfter suppresses latency injection for the first N requests
	// (single POSTs and batch frames both count). A straggler campaign
	// uses it to let fast siblings establish the endpoint's latency
	// baseline before the tail appears.
	LatencyAfter int
	// LatencyOnce delays each distinct task name at most once, so a
	// retry or speculative backup of a delayed task lands on the fast
	// path — the bad-placement straggler model rather than a slow task.
	// Requests whose body carries no task name are never delayed under
	// LatencyOnce.
	LatencyOnce bool
	// HangRate is the probability of never answering: the injector
	// holds the request until the client gives up (request context
	// cancelled) or MaxHang elapses, whichever is first. This is the
	// stalled-pod failure mode per-task timeouts exist for.
	HangRate float64
	// MaxHang bounds a hang so a profile cannot wedge the server
	// forever. Zero means 30s.
	MaxHang time.Duration
	// Seed makes the fault sequence reproducible. Zero seeds from a
	// fixed default so runs are deterministic unless varied explicitly.
	Seed int64
}

// Active reports whether the profile injects any fault at all.
func (p FaultProfile) Active() bool {
	return p.ErrorRate > 0 || p.RejectRate > 0 || p.LatencyRate > 0 || p.HangRate > 0
}

func (p FaultProfile) validate() error {
	for _, r := range []struct {
		name string
		v    float64
	}{
		{"ErrorRate", p.ErrorRate},
		{"RejectRate", p.RejectRate},
		{"LatencyRate", p.LatencyRate},
		{"HangRate", p.HangRate},
	} {
		if r.v < 0 || r.v > 1 {
			return fmt.Errorf("wfbench: fault %s = %v, want [0, 1]", r.name, r.v)
		}
	}
	if p.RetryAfter < 0 {
		return fmt.Errorf("wfbench: fault RetryAfter = %v, want >= 0", p.RetryAfter)
	}
	if p.Latency < 0 || p.LatencyJitter < 0 || p.MaxHang < 0 {
		return fmt.Errorf("wfbench: fault durations must be >= 0")
	}
	if p.LatencyAfter < 0 {
		return fmt.Errorf("wfbench: fault LatencyAfter = %d, want >= 0", p.LatencyAfter)
	}
	return nil
}

// FaultStats counts what an Injector actually did.
type FaultStats struct {
	Errors  int64 // injected 500s
	Rejects int64 // injected 429s
	Hangs   int64 // requests held until client abandon or MaxHang
	Delays  int64 // latency injections (request still served)
	Passed  int64 // requests forwarded to the wrapped handler
}

// Injector wraps an http.Handler with a configurable failure profile —
// the chaos side of the testbed, driving the workflow manager's retry,
// timeout, and circuit-breaker paths without real infrastructure
// faults. It generalises FlakyEngine from "every Nth run fails" to
// rate-based error, overload, latency, and hang injection at the HTTP
// boundary, where the client's transport actually sees it.
type Injector struct {
	next    http.Handler
	profile FaultProfile

	mu  sync.Mutex
	rng *rand.Rand
	seq int // requests drawn so far, for LatencyAfter

	delayedMu    sync.Mutex
	delayedSet   map[string]bool
	delayedNames []string

	errors  atomic.Int64
	rejects atomic.Int64
	hangs   atomic.Int64
	delays  atomic.Int64
	passed  atomic.Int64
}

// NewInjector wraps next with the given fault profile.
func NewInjector(next http.Handler, p FaultProfile) (*Injector, error) {
	if next == nil {
		return nil, fmt.Errorf("wfbench: injector needs a handler to wrap")
	}
	if err := p.validate(); err != nil {
		return nil, err
	}
	seed := p.Seed
	if seed == 0 {
		seed = 1
	}
	return &Injector{
		next:       next,
		profile:    p,
		rng:        rand.New(rand.NewSource(seed)),
		delayedSet: map[string]bool{},
	}, nil
}

// DelayedNames returns the distinct task names that actually received
// an injected delay, in first-delay order — the ground truth a
// straggler campaign checks its flagged set against.
func (in *Injector) DelayedNames() []string {
	in.delayedMu.Lock()
	defer in.delayedMu.Unlock()
	out := make([]string, len(in.delayedNames))
	copy(out, in.delayedNames)
	return out
}

// admitDelay applies the LatencyAfter/LatencyOnce gates to a fired
// latency draw and records the delayed task name. seq is the request's
// ordinal from draw; name may be empty when the body carried none.
func (in *Injector) admitDelay(seq int, name string) bool {
	p := in.profile
	if p.LatencyAfter > 0 && seq <= p.LatencyAfter {
		return false
	}
	in.delayedMu.Lock()
	defer in.delayedMu.Unlock()
	if p.LatencyOnce {
		if name == "" || in.delayedSet[name] {
			return false
		}
	}
	if name != "" && !in.delayedSet[name] {
		in.delayedSet[name] = true
		in.delayedNames = append(in.delayedNames, name)
	}
	return true
}

// sniffTaskName peeks the wfbench Request name from a single-task POST
// body, restoring the body for the wrapped handler.
func sniffTaskName(r *http.Request) string {
	if r.Body == nil {
		return ""
	}
	data, err := io.ReadAll(r.Body)
	r.Body.Close()
	r.Body = io.NopCloser(bytes.NewReader(data))
	if err != nil {
		return ""
	}
	return taskNameOf(data)
}

func taskNameOf(body []byte) string {
	var req struct {
		Name string `json:"name"`
	}
	if json.Unmarshal(body, &req) != nil {
		return ""
	}
	return req.Name
}

// Profile returns the configured fault profile.
func (in *Injector) Profile() FaultProfile { return in.profile }

// Stats returns a snapshot of the injected-fault counters.
func (in *Injector) Stats() FaultStats {
	return FaultStats{
		Errors:  in.errors.Load(),
		Rejects: in.rejects.Load(),
		Hangs:   in.hangs.Load(),
		Delays:  in.delays.Load(),
		Passed:  in.passed.Load(),
	}
}

// draw samples the per-request fault decisions under one lock hold so
// concurrent requests see independent, reproducible streams. seq is the
// request's 1-based ordinal, for the LatencyAfter gate; the rng draw
// order is identical whether or not the gates are configured, so a
// profile stays reproducible when LatencyAfter/LatencyOnce are added.
func (in *Injector) draw() (hang, delay, reject, fail bool, extra time.Duration, seq int) {
	in.mu.Lock()
	defer in.mu.Unlock()
	p := in.profile
	in.seq++
	seq = in.seq
	hang = p.HangRate > 0 && in.rng.Float64() < p.HangRate
	delay = p.LatencyRate > 0 && in.rng.Float64() < p.LatencyRate
	reject = p.RejectRate > 0 && in.rng.Float64() < p.RejectRate
	fail = p.ErrorRate > 0 && in.rng.Float64() < p.ErrorRate
	if delay && p.LatencyJitter > 0 {
		extra = time.Duration(in.rng.Int63n(int64(p.LatencyJitter) + 1))
	}
	return
}

// ServeHTTP implements http.Handler. Health checks pass through
// unfaulted so orchestration probes stay honest about liveness. Batch
// invocations are faulted per sub-task: each frame draws its own fate,
// so a 429/500/hang can hit one task inside a batch while its
// batch-mates execute normally.
func (in *Injector) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/healthz" {
		in.next.ServeHTTP(w, r)
		return
	}
	if strings.HasSuffix(r.URL.Path, "/invoke-batch") && r.Method == http.MethodPost {
		in.serveBatch(w, r)
		return
	}
	hang, delay, reject, fail, extra, seq := in.draw()
	if delay && !hang {
		delay = in.admitDelay(seq, sniffTaskName(r))
	}
	if hang {
		in.hangs.Add(1)
		maxHang := in.profile.MaxHang
		if maxHang <= 0 {
			maxHang = 30 * time.Second
		}
		select {
		case <-r.Context().Done():
		case <-time.After(maxHang):
		}
		// Whoever is still listening gets a late 500 — a stalled pod
		// that eventually got reaped.
		http.Error(w, "wfbench: injected hang expired", http.StatusInternalServerError)
		return
	}
	if delay {
		in.delays.Add(1)
		select {
		case <-r.Context().Done():
			return
		case <-time.After(in.profile.Latency + extra):
		}
	}
	if reject {
		in.rejects.Add(1)
		if in.profile.RetryAfter > 0 {
			w.Header().Set("Retry-After", strconv.FormatFloat(in.profile.RetryAfter, 'f', -1, 64))
		}
		http.Error(w, "wfbench: injected overload", http.StatusTooManyRequests)
		return
	}
	if fail {
		in.errors.Add(1)
		http.Error(w, "wfbench: injected fault", http.StatusInternalServerError)
		return
	}
	in.passed.Add(1)
	in.next.ServeHTTP(w, r)
}

// serveBatch faults a batch invocation frame by frame: every sub-task
// draws independently from the same seeded stream as single-task
// requests. Rejected (429) and failed (500) frames are answered by the
// injector; the surviving subset is re-framed and forwarded to the
// wrapped handler, and the sub-responses are merged back in request
// order. A hung sub-task holds the whole HTTP response — honest
// head-of-line blocking on a batched connection — until MaxHang or
// client abandon, after which its frame reports the late 500.
func (in *Injector) serveBatch(w http.ResponseWriter, r *http.Request) {
	body, err := ReadBatchBody(r)
	var items []BatchItem
	if err == nil {
		items, err = DecodeBatchRequestBytes(body)
	}
	if err != nil {
		http.Error(w, fmt.Sprintf("bad batch: %v", err), http.StatusBadRequest)
		return
	}
	results := make([]BatchResult, len(items))
	forward := make([]BatchItem, 0, len(items))
	forwardIdx := make([]int, 0, len(items))
	var maxDelay time.Duration
	anyHang := false
	for i, it := range items {
		hang, delay, reject, fail, extra, seq := in.draw()
		if delay && !hang && !reject && !fail {
			delay = in.admitDelay(seq, taskNameOf(it.Body))
		}
		switch {
		case hang:
			in.hangs.Add(1)
			anyHang = true
			results[i] = BatchResult{Status: http.StatusInternalServerError,
				Payload: []byte("wfbench: injected hang expired")}
		case reject:
			in.rejects.Add(1)
			res := BatchResult{Status: http.StatusTooManyRequests,
				Payload: []byte("wfbench: injected overload")}
			if in.profile.RetryAfter > 0 {
				res.RetryAfterMillis = int64(in.profile.RetryAfter * 1000)
			}
			results[i] = res
		case fail:
			in.errors.Add(1)
			results[i] = BatchResult{Status: http.StatusInternalServerError,
				Payload: []byte("wfbench: injected fault")}
		default:
			if delay {
				in.delays.Add(1)
				if d := in.profile.Latency + extra; d > maxDelay {
					maxDelay = d
				}
			}
			in.passed.Add(1)
			forward = append(forward, it)
			forwardIdx = append(forwardIdx, i)
		}
	}
	if anyHang {
		maxHang := in.profile.MaxHang
		if maxHang <= 0 {
			maxHang = 30 * time.Second
		}
		select {
		case <-r.Context().Done():
			return
		case <-time.After(maxHang):
		}
	}
	if maxDelay > 0 {
		select {
		case <-r.Context().Done():
			return
		case <-time.After(maxDelay):
		}
	}
	if len(forward) > 0 {
		sub := EncodeBatchRequest(forward)
		req := r.Clone(r.Context())
		req.Body = io.NopCloser(bytes.NewReader(sub))
		req.ContentLength = int64(len(sub))
		rec := &batchRecorder{header: make(http.Header), status: http.StatusOK}
		in.next.ServeHTTP(rec, req)
		if rec.status != http.StatusOK {
			// The wrapped handler refused the whole batch: every forwarded
			// frame inherits that verdict, as a single-task POST would.
			var retryAfter int64
			if ra := rec.header.Get("Retry-After"); ra != "" {
				if secs, err := strconv.ParseFloat(ra, 64); err == nil && secs > 0 {
					retryAfter = int64(secs * 1000)
				}
			}
			msg := bytes.TrimSpace(rec.body.Bytes())
			for _, i := range forwardIdx {
				results[i] = BatchResult{Status: rec.status, RetryAfterMillis: retryAfter, Payload: msg}
			}
		} else {
			subResults, err := DecodeBatchResponse(&rec.body)
			if err != nil || len(subResults) != len(forward) {
				for _, i := range forwardIdx {
					results[i] = BatchResult{Status: http.StatusBadGateway,
						Payload: []byte("wfbench: injector: malformed upstream batch response")}
				}
			} else {
				for j, i := range forwardIdx {
					results[i] = subResults[j]
				}
			}
		}
	}
	WriteBatchResponse(w, results)
}

// batchRecorder captures the wrapped handler's response so the injector
// can merge fault frames back into it.
type batchRecorder struct {
	header http.Header
	status int
	body   bytes.Buffer
}

func (r *batchRecorder) Header() http.Header         { return r.header }
func (r *batchRecorder) WriteHeader(status int)      { r.status = status }
func (r *batchRecorder) Write(p []byte) (int, error) { return r.body.Write(p) }
