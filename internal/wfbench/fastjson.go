package wfbench

import (
	"encoding/json"
	"math"
	"strconv"
)

// Hand-rolled encode/decode for the two flat wire structs on the
// batched hot path. encoding/json's reflection machinery allocates
// ~20 heap objects per invocation across the three per-task codec
// calls (server request decode, server response encode, client
// response decode); at batched throughput that reflection garbage is
// the largest single source of GC pressure. The fast paths handle
// exactly the JSON this repo's own encoders produce — flat objects,
// escape-free strings — and defer to encoding/json for everything
// else, so observable behavior (including error values and
// case-insensitive key matching) is unchanged.

// UnmarshalRequest decodes a single-task request body like
// json.Unmarshal(data, r) with a reflection-free fast path.
func UnmarshalRequest(data []byte, r *Request) error {
	if fastUnmarshalRequest(data, r) {
		return nil
	}
	*r = Request{}
	return json.Unmarshal(data, r)
}

// UnmarshalResponse decodes a single-task response payload like
// json.Unmarshal(data, r) with a reflection-free fast path.
func UnmarshalResponse(data []byte, r *Response) error {
	if fastUnmarshalResponse(data, r) {
		return nil
	}
	*r = Response{}
	return json.Unmarshal(data, r)
}

// MarshalResponse encodes r byte-identically to json.Marshal(r), via
// an append fast path when every string is plain ASCII.
func MarshalResponse(r *Response) ([]byte, error) {
	if r == nil || !plainJSON(r.Name) || !plainJSON(r.Error) || !plainJSON(r.Pod) ||
		!finite(r.BusySeconds) || !finite(r.WallSeconds) {
		return json.Marshal(r)
	}
	dst := make([]byte, 0, 96+len(r.Name)+len(r.Error)+len(r.Pod))
	dst = append(dst, `{"name":"`...)
	dst = append(dst, r.Name...)
	dst = append(dst, `","ok":`...)
	dst = strconv.AppendBool(dst, r.OK)
	if r.Error != "" {
		dst = append(dst, `,"error":"`...)
		dst = append(dst, r.Error...)
		dst = append(dst, '"')
	}
	dst = append(dst, `,"busySeconds":`...)
	dst = appendJSONFloat(dst, r.BusySeconds)
	dst = append(dst, `,"wallSeconds":`...)
	dst = appendJSONFloat(dst, r.WallSeconds)
	dst = append(dst, `,"outBytes":`...)
	dst = strconv.AppendInt(dst, r.OutBytes, 10)
	if r.ColdStart {
		dst = append(dst, `,"coldStart":true`...)
	}
	if r.Pod != "" {
		dst = append(dst, `,"pod":"`...)
		dst = append(dst, r.Pod...)
		dst = append(dst, '"')
	}
	return append(dst, '}'), nil
}

// plainJSON reports whether s encodes as itself: printable ASCII with
// no characters encoding/json escapes (quotes, backslashes, and the
// HTML-sensitive <, >, &).
func plainJSON(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < 0x20 || c > 0x7e || c == '"' || c == '\\' || c == '<' || c == '>' || c == '&' {
			return false
		}
	}
	return true
}

func finite(f float64) bool { return !math.IsNaN(f) && !math.IsInf(f, 0) }

// appendJSONFloat mirrors encoding/json's float formatting: %f unless
// the magnitude calls for an exponent, whose leading zero is trimmed.
func appendJSONFloat(dst []byte, f float64) []byte {
	format := byte('f')
	if abs := math.Abs(f); abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	dst = strconv.AppendFloat(dst, f, format, -1, 64)
	if format == 'e' {
		if n := len(dst); n >= 4 && dst[n-4] == 'e' && dst[n-3] == '-' && dst[n-2] == '0' {
			dst[n-2] = dst[n-1]
			dst = dst[:n-1]
		}
	}
	return dst
}

func fastUnmarshalRequest(data []byte, r *Request) bool {
	p := jparser{b: data}
	fields := func(key []byte) bool {
		ok := false
		// A switch on string(bytes) compares without allocating.
		switch string(key) {
		case "name":
			r.Name, ok = p.str()
		case "percent-cpu":
			r.PercentCPU, ok = p.float()
		case "cpu-work":
			r.CPUWork, ok = p.float()
		case "cores":
			var v int64
			v, ok = p.int()
			r.Cores = int(v)
		case "mem-bytes":
			r.MemBytes, ok = p.int()
		case "out":
			r.Out, ok = p.mapInt64()
		case "inputs":
			r.Inputs, ok = p.strSlice()
		case "workdir":
			r.Workdir, ok = p.str()
		default:
			ok = !hasUpper(key) && p.skipValue(0)
		}
		return ok
	}
	return p.object(fields)
}

func fastUnmarshalResponse(data []byte, r *Response) bool {
	p := jparser{b: data}
	fields := func(key []byte) bool {
		ok := false
		switch string(key) {
		case "name":
			r.Name, ok = p.str()
		case "ok":
			r.OK, ok = p.boolean()
		case "error":
			r.Error, ok = p.str()
		case "busySeconds":
			r.BusySeconds, ok = p.float()
		case "wallSeconds":
			r.WallSeconds, ok = p.float()
		case "outBytes":
			r.OutBytes, ok = p.int()
		case "coldStart":
			r.ColdStart, ok = p.boolean()
		case "pod":
			r.Pod, ok = p.str()
		default:
			ok = !hasUpper(key) && p.skipValue(0)
		}
		return ok
	}
	return p.object(fields)
}

// hasUpper guards the unknown-key skip: encoding/json matches struct
// fields case-insensitively, so a key with upper-case letters could
// still target a known field and must take the reflection path.
func hasUpper(s []byte) bool {
	for i := 0; i < len(s); i++ {
		if s[i] >= 'A' && s[i] <= 'Z' {
			return true
		}
	}
	return false
}

// jparser is a minimal JSON reader for flat wire objects. Every method
// reports success; any construct it does not handle (escapes, nulls,
// nesting beyond one level of arrays/objects) makes the caller fall
// back to encoding/json on the pristine input.
type jparser struct {
	b []byte
	i int
}

func (p *jparser) ws() {
	for p.i < len(p.b) {
		switch p.b[p.i] {
		case ' ', '\t', '\n', '\r':
			p.i++
		default:
			return
		}
	}
}

func (p *jparser) lit(c byte) bool {
	p.ws()
	if p.i < len(p.b) && p.b[p.i] == c {
		p.i++
		return true
	}
	return false
}

// object drives "{key: value, ...}" with field dispatching the value
// parse per key, then requires end of input. Keys are handed over as
// raw bytes so matching them never allocates.
func (p *jparser) object(field func(key []byte) bool) bool {
	if !p.lit('{') {
		return false
	}
	if !p.lit('}') {
		for {
			key, ok := p.rawStr()
			if !ok || !p.lit(':') || !field(key) {
				return false
			}
			if p.lit(',') {
				continue
			}
			if p.lit('}') {
				break
			}
			return false
		}
	}
	p.ws()
	return p.i == len(p.b)
}

// str parses an escape-free string.
func (p *jparser) str() (string, bool) {
	raw, ok := p.rawStr()
	if !ok {
		return "", false
	}
	return string(raw), true
}

// rawStr parses an escape-free string as a view into the input.
func (p *jparser) rawStr() ([]byte, bool) {
	p.ws()
	if p.i >= len(p.b) || p.b[p.i] != '"' {
		return nil, false
	}
	p.i++
	start := p.i
	for p.i < len(p.b) {
		c := p.b[p.i]
		if c == '"' {
			s := p.b[start:p.i]
			p.i++
			return s, true
		}
		if c == '\\' || c < 0x20 {
			return nil, false
		}
		p.i++
	}
	return nil, false
}

func (p *jparser) boolean() (bool, bool) {
	p.ws()
	if p.consume("true") {
		return true, true
	}
	if p.consume("false") {
		return false, true
	}
	return false, false
}

func (p *jparser) consume(lit string) bool {
	if len(p.b)-p.i >= len(lit) && string(p.b[p.i:p.i+len(lit)]) == lit {
		p.i += len(lit)
		return true
	}
	return false
}

// int parses an integer literal without allocating; anything
// fractional, exponential, or out of range falls back.
func (p *jparser) int() (int64, bool) {
	p.ws()
	neg := false
	if p.i < len(p.b) && p.b[p.i] == '-' {
		neg = true
		p.i++
	}
	start := p.i
	var v uint64
	for p.i < len(p.b) {
		c := p.b[p.i]
		if c < '0' || c > '9' {
			break
		}
		if v > (math.MaxUint64-9)/10 {
			return 0, false
		}
		v = v*10 + uint64(c-'0')
		p.i++
	}
	if p.i == start {
		return 0, false
	}
	if p.i < len(p.b) && (p.b[p.i] == '.' || p.b[p.i] == 'e' || p.b[p.i] == 'E') {
		return 0, false
	}
	if neg {
		if v > math.MaxInt64 {
			return 0, false
		}
		return -int64(v), true
	}
	if v > math.MaxInt64 {
		return 0, false
	}
	return int64(v), true
}

// float parses a number via the exact-operand fast path (Clinger):
// a mantissa of at most 15 significant digits scaled by a power of ten
// that is itself exactly representable yields a correctly rounded
// result from one multiply or divide. Anything longer falls back.
func (p *jparser) float() (float64, bool) {
	p.ws()
	neg := false
	if p.i < len(p.b) && p.b[p.i] == '-' {
		neg = true
		p.i++
	}
	var mant uint64
	digits, frac := 0, 0
	seen := false
	for p.i < len(p.b) {
		c := p.b[p.i]
		if c >= '0' && c <= '9' {
			if digits >= 15 {
				return 0, false
			}
			mant = mant*10 + uint64(c-'0')
			digits++
			seen = true
			p.i++
			continue
		}
		break
	}
	if p.i < len(p.b) && p.b[p.i] == '.' {
		p.i++
		for p.i < len(p.b) {
			c := p.b[p.i]
			if c < '0' || c > '9' {
				break
			}
			if digits >= 15 {
				return 0, false
			}
			mant = mant*10 + uint64(c-'0')
			digits++
			frac++
			seen = true
			p.i++
		}
	}
	if !seen {
		return 0, false
	}
	exp := -frac
	if p.i < len(p.b) && (p.b[p.i] == 'e' || p.b[p.i] == 'E') {
		p.i++
		eneg := false
		switch {
		case p.i < len(p.b) && p.b[p.i] == '-':
			eneg = true
			p.i++
		case p.i < len(p.b) && p.b[p.i] == '+':
			p.i++
		}
		start := p.i
		e := 0
		for p.i < len(p.b) {
			c := p.b[p.i]
			if c < '0' || c > '9' {
				break
			}
			e = e*10 + int(c-'0')
			if e > 500 {
				return 0, false
			}
			p.i++
		}
		if p.i == start {
			return 0, false
		}
		if eneg {
			e = -e
		}
		exp += e
	}
	f := float64(mant)
	switch {
	case exp == 0:
	case exp > 0 && exp <= 22:
		f *= pow10[exp]
	case exp < 0 && exp >= -22:
		f /= pow10[-exp]
	default:
		return 0, false
	}
	if neg {
		f = -f
	}
	return f, true
}

// pow10 holds the powers of ten exactly representable as float64.
var pow10 = [23]float64{
	1, 1e1, 1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10, 1e11,
	1e12, 1e13, 1e14, 1e15, 1e16, 1e17, 1e18, 1e19, 1e20, 1e21, 1e22,
}

// strSlice parses ["a", "b", ...].
func (p *jparser) strSlice() ([]string, bool) {
	if !p.lit('[') {
		return nil, false
	}
	if p.lit(']') {
		return []string{}, true
	}
	var out []string
	for {
		s, ok := p.str()
		if !ok {
			return nil, false
		}
		out = append(out, s)
		if p.lit(',') {
			continue
		}
		if p.lit(']') {
			return out, true
		}
		return nil, false
	}
}

// mapInt64 parses {"name": n, ...}.
func (p *jparser) mapInt64() (map[string]int64, bool) {
	if !p.lit('{') {
		return nil, false
	}
	out := make(map[string]int64)
	if p.lit('}') {
		return out, true
	}
	for {
		k, ok := p.str()
		if !ok || !p.lit(':') {
			return nil, false
		}
		v, ok := p.int()
		if !ok {
			return nil, false
		}
		out[k] = v
		if p.lit(',') {
			continue
		}
		if p.lit('}') {
			return out, true
		}
		return nil, false
	}
}

// skipValue steps over an unknown field's value: scalars, plus arrays
// and objects up to a shallow nesting bound.
func (p *jparser) skipValue(depth int) bool {
	if depth > 4 {
		return false
	}
	p.ws()
	if p.i >= len(p.b) {
		return false
	}
	switch c := p.b[p.i]; {
	case c == '"':
		_, ok := p.rawStr()
		return ok
	case c == 't':
		return p.consume("true")
	case c == 'f':
		return p.consume("false")
	case c == 'n':
		return p.consume("null")
	case c == '-' || (c >= '0' && c <= '9'):
		start := p.i
		for p.i < len(p.b) {
			c := p.b[p.i]
			if (c >= '0' && c <= '9') || c == '-' || c == '+' || c == '.' || c == 'e' || c == 'E' {
				p.i++
				continue
			}
			break
		}
		return p.i > start
	case c == '[':
		p.i++
		if p.lit(']') {
			return true
		}
		for {
			if !p.skipValue(depth + 1) {
				return false
			}
			if p.lit(',') {
				continue
			}
			return p.lit(']')
		}
	case c == '{':
		p.i++
		if p.lit('}') {
			return true
		}
		for {
			if _, ok := p.rawStr(); !ok || !p.lit(':') || !p.skipValue(depth+1) {
				return false
			}
			if p.lit(',') {
				continue
			}
			return p.lit('}')
		}
	}
	return false
}
