package obs

import (
	"context"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Attr is one span annotation. Values are either strings or numbers;
// the two-field layout avoids boxing through interface{} on the hot
// path.
type Attr struct {
	Key   string
	Str   string
	Num   float64
	IsNum bool
}

// Value renders the attribute for a map[string]any export.
func (a Attr) Value() any {
	if a.IsNum {
		return a.Num
	}
	return a.Str
}

// maxAttrs bounds per-span annotations so a Span stays a fixed-size
// value (poolable, copyable without heap growth). The instrumentation
// sites use at most six.
const maxAttrs = 8

// Span is one timed operation in a trace. Spans are created by a
// Tracer, annotated, and closed with Finish, which hands the completed
// record to the tracer's collector and recycles the object. All methods
// are safe on a nil receiver — a nil *Span is the "not sampled" span,
// and the entire instrumented path degrades to pointer checks.
//
// A Span is owned by one goroutine; concurrent SetAttr/Finish on the
// same span is a caller bug (as in every mainstream tracing API).
type Span struct {
	Name   string
	Layer  string
	Trace  TraceID
	ID     SpanID
	Parent SpanID
	Start  time.Time
	End    time.Time

	attrs  [maxAttrs]Attr
	nattrs int
	tracer *Tracer
}

// Context returns the propagatable identity of the span. On a nil span
// it returns the zero (invalid, unsampled) context, so downstream
// layers see a coherent "don't record" signal.
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return SpanContext{TraceID: s.Trace, SpanID: s.ID, Sampled: true}
}

// SetAttr attaches a string annotation. Attrs beyond the fixed capacity
// are dropped rather than allocated.
func (s *Span) SetAttr(key, value string) {
	if s == nil || s.nattrs == maxAttrs {
		return
	}
	s.attrs[s.nattrs] = Attr{Key: key, Str: value}
	s.nattrs++
}

// SetFloat attaches a numeric annotation.
func (s *Span) SetFloat(key string, value float64) {
	if s == nil || s.nattrs == maxAttrs {
		return
	}
	s.attrs[s.nattrs] = Attr{Key: key, Num: value, IsNum: true}
	s.nattrs++
}

// SetInt attaches an integer annotation.
func (s *Span) SetInt(key string, value int) { s.SetFloat(key, float64(value)) }

// SetStart backdates the span's start — used when the instant of
// interest (e.g. a task becoming ready) precedes span creation.
func (s *Span) SetStart(t time.Time) {
	if s != nil {
		s.Start = t
	}
}

// Finish stamps the end time, delivers the span to its tracer's
// collector, and recycles the object. The *Span must not be used after
// Finish; capture Context() first if the identity is still needed.
func (s *Span) Finish() {
	if s == nil {
		return
	}
	s.End = time.Now()
	s.finishAt(s.End)
}

// FinishAt is Finish with an explicit end time, for spans reconstructed
// from measured phases rather than closed inline.
func (s *Span) FinishAt(t time.Time) {
	if s == nil {
		return
	}
	s.finishAt(t)
}

func (s *Span) finishAt(t time.Time) {
	s.End = t
	tr := s.tracer
	tr.mu.Lock()
	tr.spans = append(tr.spans, *s)
	tr.mu.Unlock()
	*s = Span{}
	spanPool.Put(s)
}

var spanPool = sync.Pool{New: func() any { return new(Span) }}

// Options configures a Tracer.
type Options struct {
	// SampleRatio is the fraction of root spans recorded, in [0, 1].
	// 0 disables tracing entirely (StartRoot returns nil and the whole
	// downstream path is nil-span no-ops); 1 records every run. The
	// decision is made once per root and inherited by all descendants
	// via the sampled flag, so a trace is always complete or absent.
	SampleRatio float64
}

// Tracer creates spans and collects the finished ones for a run. The
// collector is a single mutex-guarded slice: finishing a span is one
// short critical section (append of a value), cheap enough for the
// PR-3 drain path; creation touches only a sync.Pool and atomics.
type Tracer struct {
	sampleEvery uint64 // record 1 of every N roots; 0 = never
	roots       atomic.Uint64

	mu    sync.Mutex
	spans []Span
}

// NewTracer returns a tracer with the given options.
func NewTracer(opts Options) *Tracer {
	t := &Tracer{}
	switch {
	case opts.SampleRatio >= 1:
		t.sampleEvery = 1
	case opts.SampleRatio > 0:
		// Deterministic 1-in-N sampling: cheap, and reproducible runs
		// stay reproducible (no RNG draw per root).
		t.sampleEvery = uint64(1/opts.SampleRatio + 0.5)
	}
	return t
}

// StartRoot opens a new trace. Returns nil when the tracer is nil or
// this root loses the sampling draw — and a nil root makes every
// descendant span nil, so an unsampled run executes the identical
// instruction path as tracing-off.
func (t *Tracer) StartRoot(name, layer string) *Span {
	if t == nil || t.sampleEvery == 0 {
		return nil
	}
	if t.sampleEvery > 1 && (t.roots.Add(1)-1)%t.sampleEvery != 0 {
		return nil
	}
	s := spanPool.Get().(*Span)
	s.Name, s.Layer = name, layer
	s.Trace, s.ID = newTraceID(), newSpanID()
	s.Start = time.Now()
	s.tracer = t
	return s
}

// StartChild opens a span under a propagated parent context, e.g. one
// extracted from a traceparent header in another layer. Returns nil if
// the tracer is nil or the parent is invalid/unsampled.
func (t *Tracer) StartChild(parent SpanContext, name, layer string) *Span {
	if t == nil || !parent.Sampled || !parent.Valid() {
		return nil
	}
	s := spanPool.Get().(*Span)
	s.Name, s.Layer = name, layer
	s.Trace, s.ID, s.Parent = parent.TraceID, newSpanID(), parent.SpanID
	s.Start = time.Now()
	s.tracer = t
	return s
}

// StartChildOf opens a span under an in-process parent span. A nil
// parent yields a nil child.
func (t *Tracer) StartChildOf(parent *Span, name string) *Span {
	if t == nil || parent == nil {
		return nil
	}
	s := spanPool.Get().(*Span)
	s.Name, s.Layer = name, parent.Layer
	s.Trace, s.ID, s.Parent = parent.Trace, newSpanID(), parent.ID
	s.Start = time.Now()
	s.tracer = t
	return s
}

// Take returns all spans finished so far and resets the collector, in
// finish order. Call at the end of a run (or periodically for long
// services) to drain without stopping collection.
func (t *Tracer) Take() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	spans := t.spans
	t.spans = nil
	t.mu.Unlock()
	return spans
}

// AttrString returns the named string attribute of a collected span.
func (s *Span) AttrString(key string) (string, bool) {
	for i := 0; i < s.nattrs; i++ {
		if s.attrs[i].Key == key && !s.attrs[i].IsNum {
			return s.attrs[i].Str, true
		}
	}
	return "", false
}

// AttrFloat returns the named numeric attribute of a collected span.
func (s *Span) AttrFloat(key string) (float64, bool) {
	for i := 0; i < s.nattrs; i++ {
		if s.attrs[i].Key == key && s.attrs[i].IsNum {
			return s.attrs[i].Num, true
		}
	}
	return 0, false
}

// Attrs renders the annotations as a map; numbers are rounded to 3
// decimals so exported JSON stays readable.
func (s *Span) Attrs() map[string]any {
	if s.nattrs == 0 {
		return nil
	}
	m := make(map[string]any, s.nattrs)
	for i := 0; i < s.nattrs; i++ {
		a := s.attrs[i]
		if a.IsNum {
			m[a.Key] = round3(a.Num)
		} else {
			m[a.Key] = a.Str
		}
	}
	return m
}

func round3(v float64) float64 {
	f, err := strconv.ParseFloat(strconv.FormatFloat(v, 'f', 3, 64), 64)
	if err != nil {
		return v
	}
	return f
}

type ctxKey struct{}

// ContextWithSpan stores a span context for in-process propagation —
// the bridge used when the platform and the benchmark share a process
// and no HTTP header crosses between them.
func ContextWithSpan(ctx context.Context, sc SpanContext) context.Context {
	if !sc.Valid() {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, sc)
}

// SpanFromContext returns the span context stored by ContextWithSpan,
// or the zero context.
func SpanFromContext(ctx context.Context) SpanContext {
	sc, _ := ctx.Value(ctxKey{}).(SpanContext)
	return sc
}
