package obs

import (
	"context"
	"strings"
	"testing"
	"time"
)

func TestTraceparentRoundTrip(t *testing.T) {
	sc := SpanContext{Sampled: true}
	copy(sc.TraceID[:], []byte{0x4b, 0xf9, 0x2f, 0x35, 0x77, 0xb3, 0x4d, 0xa6, 0xa3, 0xce, 0x92, 0x9d, 0x0e, 0x0e, 0x47, 0x36})
	copy(sc.SpanID[:], []byte{0x00, 0xf0, 0x67, 0xaa, 0x0b, 0xa9, 0x02, 0xb7})
	h := sc.Traceparent()
	want := "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	if h != want {
		t.Fatalf("Traceparent() = %q, want %q", h, want)
	}
	got, ok := ParseTraceparent(h)
	if !ok || got != sc {
		t.Fatalf("ParseTraceparent(%q) = %+v, %v; want %+v, true", h, got, ok, sc)
	}

	sc.Sampled = false
	h = sc.Traceparent()
	if !strings.HasSuffix(h, "-00") {
		t.Fatalf("unsampled flags = %q, want suffix -00", h)
	}
	got, ok = ParseTraceparent(h)
	if !ok || got.Sampled {
		t.Fatalf("unsampled header parsed as %+v, %v", got, ok)
	}
}

func TestParseTraceparentEdgeCases(t *testing.T) {
	valid := "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	cases := []struct {
		name string
		in   string
		ok   bool
	}{
		{"valid", valid, true},
		{"empty", "", false},
		{"truncated", valid[:54], false},
		{"garbage", "not-a-traceparent-header-at-all-but-long-enough-to-scan", false},
		{"uppercase trace id", "00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01", false},
		{"uppercase span id", "00-4bf92f3577b34da6a3ce929d0e0e4736-00F067AA0BA902B7-01", false},
		{"all-zero trace id", "00-00000000000000000000000000000000-00f067aa0ba902b7-01", false},
		{"all-zero span id", "00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01", false},
		{"version ff", "ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", false},
		{"bad version hex", "0g-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", false},
		{"missing dash 1", "00+4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", false},
		{"missing dash 2", "00-4bf92f3577b34da6a3ce929d0e0e4736+00f067aa0ba902b7-01", false},
		{"missing dash 3", "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7+01", false},
		{"bad flags", "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-zz", false},
		{"flags 00 unsampled", "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-00", true},
		{"extra flag bits set", "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-ff", true},
		{"v00 with trailing data", valid + "-extra", false},
		{"future version with suffix", "cc-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-what-the-future-will-be-like", true},
		{"future version bad suffix", "cc-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01.x", false},
	}
	for _, tc := range cases {
		sc, ok := ParseTraceparent(tc.in)
		if ok != tc.ok {
			t.Errorf("%s: ParseTraceparent(%q) ok = %v, want %v", tc.name, tc.in, ok, tc.ok)
		}
		if ok && !sc.Valid() {
			t.Errorf("%s: accepted header yielded invalid context %+v", tc.name, sc)
		}
	}
}

func TestTracerSpanTree(t *testing.T) {
	tr := NewTracer(Options{SampleRatio: 1})
	root := tr.StartRoot("workflow", LayerWFM)
	if root == nil {
		t.Fatal("StartRoot returned nil at SampleRatio 1")
	}
	rootCtx := root.Context()
	if !rootCtx.Valid() || !rootCtx.Sampled {
		t.Fatalf("root context %+v not valid+sampled", rootCtx)
	}

	task := tr.StartChildOf(root, "task:t1")
	task.SetAttr("category", "blastall")
	task.SetInt("attempts", 2)
	taskCtx := task.Context()
	if taskCtx.TraceID != rootCtx.TraceID {
		t.Fatal("child did not inherit trace ID")
	}

	// Simulate the header hop into another layer.
	remote, ok := ParseTraceparent(taskCtx.Traceparent())
	if !ok {
		t.Fatal("round-trip through header failed")
	}
	exec := tr.StartChild(remote, "execute", LayerPlatform)
	if exec.Context().TraceID != rootCtx.TraceID {
		t.Fatal("remote child did not inherit trace ID")
	}
	exec.Finish()
	task.Finish()
	root.Finish()

	spans := tr.Take()
	if len(spans) != 3 {
		t.Fatalf("collected %d spans, want 3", len(spans))
	}
	byName := map[string]Span{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	if byName["task:t1"].Parent != rootCtx.SpanID {
		t.Fatal("task span not parented to root")
	}
	if byName["execute"].Parent != taskCtx.SpanID {
		t.Fatal("platform span not parented to task span")
	}
	if byName["execute"].Layer != LayerPlatform {
		t.Fatalf("execute layer = %q", byName["execute"].Layer)
	}
	ts := byName["task:t1"]
	if v, ok := ts.AttrString("category"); !ok || v != "blastall" {
		t.Fatalf("category attr = %q, %v", v, ok)
	}
	if v, ok := ts.AttrFloat("attempts"); !ok || v != 2 {
		t.Fatalf("attempts attr = %v, %v", v, ok)
	}
	if got := tr.Take(); len(got) != 0 {
		t.Fatalf("second Take returned %d spans, want 0", len(got))
	}
}

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	root := tr.StartRoot("x", LayerWFM)
	if root != nil {
		t.Fatal("nil tracer produced a span")
	}
	// All of these must be no-ops, not panics.
	root.SetAttr("k", "v")
	root.SetFloat("f", 1)
	root.SetInt("i", 1)
	root.SetStart(time.Now())
	root.Finish()
	root.FinishAt(time.Now())
	if sc := root.Context(); sc.Valid() || sc.Sampled {
		t.Fatalf("nil span context = %+v", sc)
	}
	if tr.StartChildOf(nil, "y") != nil {
		t.Fatal("nil parent produced a child")
	}
	if tr.Take() != nil {
		t.Fatal("nil tracer Take != nil")
	}

	live := NewTracer(Options{SampleRatio: 1})
	if live.StartChildOf(nil, "y") != nil {
		t.Fatal("child of nil parent must be nil")
	}
	if live.StartChild(SpanContext{}, "y", LayerWFM) != nil {
		t.Fatal("child of invalid context must be nil")
	}
}

func TestSamplingRatio(t *testing.T) {
	tr := NewTracer(Options{SampleRatio: 0.25})
	sampled := 0
	for i := 0; i < 100; i++ {
		if s := tr.StartRoot("run", LayerWFM); s != nil {
			sampled++
			s.Finish()
		}
	}
	if sampled != 25 {
		t.Fatalf("deterministic 1-in-4 sampling kept %d of 100 roots", sampled)
	}

	off := NewTracer(Options{})
	if off.StartRoot("run", LayerWFM) != nil {
		t.Fatal("SampleRatio 0 still sampled")
	}
}

func TestAttrOverflowDropped(t *testing.T) {
	tr := NewTracer(Options{SampleRatio: 1})
	s := tr.StartRoot("run", LayerWFM)
	for i := 0; i < maxAttrs+4; i++ {
		s.SetInt("k", i)
	}
	if s.nattrs != maxAttrs {
		t.Fatalf("nattrs = %d, want %d", s.nattrs, maxAttrs)
	}
	s.Finish()
}

func TestContextPropagation(t *testing.T) {
	sc := SpanContext{Sampled: true}
	sc.TraceID[0], sc.SpanID[0] = 1, 2
	ctx := ContextWithSpan(context.Background(), sc)
	if got := SpanFromContext(ctx); got != sc {
		t.Fatalf("SpanFromContext = %+v, want %+v", got, sc)
	}
	if got := SpanFromContext(context.Background()); got.Valid() {
		t.Fatalf("empty context yielded %+v", got)
	}
	// Invalid contexts are not stored.
	if ctx2 := ContextWithSpan(context.Background(), SpanContext{}); SpanFromContext(ctx2).Valid() {
		t.Fatal("invalid context was stored")
	}
}

// The unsampled path is the PR-3 hot path: it must not allocate.
func TestUnsampledPathZeroAlloc(t *testing.T) {
	var nilTracer *Tracer
	off := NewTracer(Options{})
	quarter := NewTracer(Options{SampleRatio: 0.25})
	quarter.StartRoot("warm", LayerWFM).Finish() // burn the sampled slot

	cases := []struct {
		name string
		f    func()
	}{
		{"nil tracer root", func() {
			s := nilTracer.StartRoot("run", LayerWFM)
			s.SetAttr("k", "v")
			s.Finish()
		}},
		{"ratio-0 tracer root", func() {
			s := off.StartRoot("run", LayerWFM)
			s.SetInt("k", 1)
			s.Finish()
		}},
		{"nil span child chain", func() {
			var parent *Span
			c := quarter.StartChildOf(parent, "task")
			c.SetFloat("queue_ms", 1.5)
			c.Finish()
		}},
		{"unsampled remote child", func() {
			c := quarter.StartChild(SpanContext{}, "execute", LayerPlatform)
			c.Finish()
		}},
	}
	for _, tc := range cases {
		if n := testing.AllocsPerRun(200, tc.f); n != 0 {
			t.Errorf("%s: %v allocs/op, want 0", tc.name, n)
		}
	}
}

// Sampled spans must reuse pooled objects: steady-state span churn
// allocates only the collector slice growth, not a Span per operation.
func TestSpanPoolReuse(t *testing.T) {
	tr := NewTracer(Options{SampleRatio: 1})
	// Pre-grow the collector, then measure churn with Take between
	// rounds so the slice append doesn't dominate.
	for i := 0; i < 64; i++ {
		tr.StartRoot("warm", LayerWFM).Finish()
	}
	tr.Take()
	n := testing.AllocsPerRun(100, func() {
		s := tr.StartRoot("run", LayerWFM)
		s.SetAttr("k", "v")
		s.Finish()
		tr.Take()
	})
	// One alloc for the fresh collector slice per Take; the spans
	// themselves come from the pool. Allow a little pool-miss slack.
	if n > 2 {
		t.Fatalf("sampled steady-state churn = %v allocs/op, want <= 2", n)
	}
}
