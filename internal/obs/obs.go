// Package obs is the observability substrate of the reproduction: a
// zero-dependency distributed-tracing layer threaded through the whole
// request path — workflow manager, serverless platform, and WfBench
// handler — plus the serializable span records the exporters and the
// analysis tooling consume.
//
// The paper's methodology is observability (1 Hz Performance Co-Pilot
// samples explain *what* a run cost); this package explains *where* the
// time went inside an invocation: queueing behind MaxParallel, ingress
// queue wait, pod cold start, retries, breaker rejections, and the
// benchmark's own CPU/memory/IO phases. Propagation is W3C
// traceparent-compatible, so the same span tree assembles whether the
// three layers share a process (the in-process platform) or talk over
// real HTTP.
//
// The design is allocation-light by construction: a disabled or
// unsampled path costs one nil check per operation — every method on a
// nil *Tracer or nil *Span is a no-op — and the sampled path pools span
// objects and stores finished spans by value in a run-scoped collector.
package obs

import (
	"encoding/hex"
	"math/rand/v2"
)

// Canonical layer names. They become the "process" rows of the Chrome
// trace view, one per architectural layer of the request path.
const (
	LayerWFM      = "wfm"      // workflow manager: run roots, tasks, invocation attempts
	LayerPlatform = "platform" // serverless platform: queue wait, cold start, pod execution
	LayerWfbench  = "wfbench"  // benchmark handler: inputs/memory/cpu/outputs phases
)

// TraceID is a 128-bit trace identifier.
type TraceID [16]byte

// IsZero reports whether the ID is the invalid all-zero ID.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// String renders the ID as 32 lowercase hex digits.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// SpanID is a 64-bit span identifier.
type SpanID [8]byte

// IsZero reports whether the ID is the invalid all-zero ID.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// String renders the ID as 16 lowercase hex digits.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// SpanContext is the propagated identity of a span: what crosses
// process boundaries in the traceparent header.
type SpanContext struct {
	TraceID TraceID
	SpanID  SpanID
	// Sampled is the W3C sampled flag: downstream layers record child
	// spans only when the root made the sampling decision.
	Sampled bool
}

// Valid reports whether the context identifies a span (both IDs
// non-zero, per the W3C spec).
func (sc SpanContext) Valid() bool { return !sc.TraceID.IsZero() && !sc.SpanID.IsZero() }

// Traceparent renders the context as a W3C traceparent header value:
//
//	00-<32 hex trace-id>-<16 hex parent-id>-<2 hex flags>
func (sc SpanContext) Traceparent() string {
	return string(sc.AppendTraceparent(make([]byte, 0, 55)))
}

// AppendTraceparent appends the header value to dst — the allocation-free
// form for callers that reuse a scratch buffer.
func (sc SpanContext) AppendTraceparent(dst []byte) []byte {
	dst = append(dst, '0', '0', '-')
	dst = hex.AppendEncode(dst, sc.TraceID[:])
	dst = append(dst, '-')
	dst = hex.AppendEncode(dst, sc.SpanID[:])
	flags := byte('0')
	if sc.Sampled {
		flags = '1'
	}
	return append(dst, '-', '0', flags)
}

// hexNibble decodes one lowercase hex digit. The W3C spec requires
// lowercase; uppercase input is rejected, unlike encoding/hex.
func hexNibble(c byte) (byte, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	}
	return 0, false
}

func hexField(dst []byte, s string) bool {
	for i := 0; i < len(dst); i++ {
		hi, ok1 := hexNibble(s[2*i])
		lo, ok2 := hexNibble(s[2*i+1])
		if !ok1 || !ok2 {
			return false
		}
		dst[i] = hi<<4 | lo
	}
	return true
}

// ParseTraceparent parses a W3C traceparent header value. It accepts
// version 00 exactly and future versions (01–fe) that extend the header
// after a dash, per the spec's forward-compatibility rule; version ff,
// uppercase hex, malformed layouts, and all-zero trace or span IDs are
// rejected.
func ParseTraceparent(s string) (SpanContext, bool) {
	// Layout: 2 (version) + 1 + 32 (trace-id) + 1 + 16 (parent-id) + 1 + 2 (flags) = 55.
	if len(s) < 55 || s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return SpanContext{}, false
	}
	hi, ok1 := hexNibble(s[0])
	lo, ok2 := hexNibble(s[1])
	if !ok1 || !ok2 {
		return SpanContext{}, false
	}
	version := hi<<4 | lo
	if version == 0xff {
		return SpanContext{}, false
	}
	if version == 0 && len(s) != 55 {
		return SpanContext{}, false
	}
	if len(s) > 55 && s[55] != '-' {
		return SpanContext{}, false
	}
	var sc SpanContext
	if !hexField(sc.TraceID[:], s[3:35]) || !hexField(sc.SpanID[:], s[36:52]) {
		return SpanContext{}, false
	}
	fhi, ok1 := hexNibble(s[53])
	flo, ok2 := hexNibble(s[54])
	if !ok1 || !ok2 {
		return SpanContext{}, false
	}
	if !sc.Valid() {
		return SpanContext{}, false
	}
	sc.Sampled = (fhi<<4|flo)&0x01 != 0
	return sc, true
}

// newTraceID returns a random non-zero trace ID. math/rand/v2's global
// generator is goroutine-safe and seeded per process; cryptographic
// uniqueness is not required for per-run traces.
func newTraceID() TraceID {
	var t TraceID
	for t.IsZero() {
		a, b := rand.Uint64(), rand.Uint64()
		for i := 0; i < 8; i++ {
			t[i] = byte(a >> (8 * i))
			t[8+i] = byte(b >> (8 * i))
		}
	}
	return t
}

// newSpanID returns a random non-zero span ID.
func newSpanID() SpanID {
	var s SpanID
	for s.IsZero() {
		a := rand.Uint64()
		for i := 0; i < 8; i++ {
			s[i] = byte(a >> (8 * i))
		}
	}
	return s
}
