package obs

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestTelemetryMux pins the shared endpoint map: health, metrics, and
// the pprof index must all answer on one mux.
func TestTelemetryMux(t *testing.T) {
	mux := TelemetryMux(func(w io.Writer) error {
		fmt.Fprintln(w, "# TYPE test_metric gauge\ntest_metric 1")
		return nil
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}

	if code, body := get("/healthz"); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz = %d %q", code, body)
	}
	if code, body := get("/metrics"); code != http.StatusOK || !strings.Contains(body, "test_metric 1") {
		t.Fatalf("/metrics = %d %q", code, body)
	}
	if code, body := get("/debug/pprof/cmdline"); code != http.StatusOK || body == "" {
		t.Fatalf("/debug/pprof/cmdline = %d %q", code, body)
	}
	if code, _ := get("/debug/pprof/"); code != http.StatusOK {
		t.Fatalf("/debug/pprof/ = %d", code)
	}
}

// TestTelemetryMuxNoMetrics: a nil metrics handler serves health and
// pprof but 404s /metrics.
func TestTelemetryMuxNoMetrics(t *testing.T) {
	srv := httptest.NewServer(TelemetryMux(nil))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/metrics with nil handler = %d, want 404", resp.StatusCode)
	}
}
