package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// buildRun fabricates the canonical three-layer span tree of one
// invocation: workflow -> task -> invoke -> {queue, coldstart, execute
// -> cpu phase}.
func buildRun(t *testing.T) []Span {
	t.Helper()
	tr := NewTracer(Options{SampleRatio: 1})
	base := time.Now()

	root := tr.StartRoot("workflow:blast", LayerWFM)
	root.SetStart(base)

	task := tr.StartChildOf(root, "task:blastall_0")
	task.SetStart(base.Add(1 * time.Millisecond))
	task.SetAttr("category", "blastall")
	task.SetFloat("queue_ms", 1.0)

	inv := tr.StartChildOf(task, "invoke")
	inv.SetStart(base.Add(2 * time.Millisecond))
	inv.SetInt("attempt", 1)

	invCtx := inv.Context()
	queue := tr.StartChild(invCtx, "queue", LayerPlatform)
	queue.SetStart(base.Add(3 * time.Millisecond))
	queue.FinishAt(base.Add(5 * time.Millisecond))

	cold := tr.StartChild(invCtx, "coldstart", LayerPlatform)
	cold.SetStart(base.Add(5 * time.Millisecond))
	cold.SetAttr("pod", "blast-0")
	cold.FinishAt(base.Add(9 * time.Millisecond))

	exec := tr.StartChild(invCtx, "execute", LayerPlatform)
	exec.SetStart(base.Add(9 * time.Millisecond))
	execCtx := exec.Context()

	cpu := tr.StartChild(execCtx, "cpu", LayerWfbench)
	cpu.SetStart(base.Add(10 * time.Millisecond))
	cpu.FinishAt(base.Add(18 * time.Millisecond))

	exec.FinishAt(base.Add(19 * time.Millisecond))
	inv.FinishAt(base.Add(20 * time.Millisecond))
	task.FinishAt(base.Add(20 * time.Millisecond))
	root.FinishAt(base.Add(21 * time.Millisecond))
	return tr.Take()
}

func TestRecordsOf(t *testing.T) {
	spans := buildRun(t)
	recs := RecordsOf(spans)
	if len(recs) != len(spans) {
		t.Fatalf("got %d records for %d spans", len(recs), len(spans))
	}
	if recs[0].Name != "workflow:blast" || recs[0].StartMS != 0 {
		t.Fatalf("first record = %+v, want workflow at t=0", recs[0])
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].StartMS < recs[i-1].StartMS {
			t.Fatal("records not sorted by start")
		}
	}
	byName := map[string]Record{}
	for _, r := range recs {
		byName[r.Name] = r
	}
	if byName["cpu"].Layer != LayerWfbench {
		t.Fatalf("cpu layer = %q", byName["cpu"].Layer)
	}
	if byName["cpu"].Parent != byName["execute"].SpanID {
		t.Fatal("cpu not parented to execute across the layer hop")
	}
	if byName["task:blastall_0"].Attrs["category"] != "blastall" {
		t.Fatalf("task attrs = %v", byName["task:blastall_0"].Attrs)
	}
	if RecordsOf(nil) != nil {
		t.Fatal("RecordsOf(nil) != nil")
	}
}

func TestChromeTraceRoundTrip(t *testing.T) {
	recs := RecordsOf(buildRun(t))
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, recs); err != nil {
		t.Fatal(err)
	}

	// The file must be valid Chrome trace-event JSON: an object with a
	// traceEvents array, every event carrying name/ph/pid/tid/ts.
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(buf.Bytes(), &raw); err != nil {
		t.Fatalf("not a JSON object: %v", err)
	}
	if _, ok := raw["traceEvents"]; !ok {
		t.Fatal("missing traceEvents key")
	}
	var events []map[string]any
	if err := json.Unmarshal(raw["traceEvents"], &events); err != nil {
		t.Fatal(err)
	}
	metas, completes := 0, 0
	for _, ev := range events {
		switch ev["ph"] {
		case "M":
			metas++
		case "X":
			completes++
			for _, key := range []string{"name", "pid", "tid", "ts"} {
				if _, ok := ev[key]; !ok {
					t.Fatalf("X event missing %q: %v", key, ev)
				}
			}
		default:
			t.Fatalf("unexpected phase %v", ev["ph"])
		}
	}
	if metas != 3 {
		t.Fatalf("process_name metadata events = %d, want 3", metas)
	}
	if completes != len(recs) {
		t.Fatalf("X events = %d, want %d", completes, len(recs))
	}

	back, err := ParseChromeTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(recs) {
		t.Fatalf("parsed %d records, want %d", len(back), len(recs))
	}
	orig := map[string]Record{}
	for _, r := range recs {
		orig[r.SpanID] = r
	}
	for _, r := range back {
		o, ok := orig[r.SpanID]
		if !ok {
			t.Fatalf("parsed unknown span %q", r.SpanID)
		}
		if r.Name != o.Name || r.Layer != o.Layer || r.Parent != o.Parent {
			t.Fatalf("round trip mismatch: %+v vs %+v", r, o)
		}
		if r.StartMS != o.StartMS || r.DurMS != o.DurMS {
			t.Fatalf("round trip times: %+v vs %+v", r, o)
		}
	}
}

func TestChromeLanesNestAndSeparate(t *testing.T) {
	// Two overlapping sibling tasks under one root must land in
	// different lanes; each task's child must share its parent's lane.
	recs := []Record{
		{Name: "root", Layer: LayerWFM, SpanID: "r", StartMS: 0, DurMS: 10},
		{Name: "t1", Layer: LayerWFM, SpanID: "a", Parent: "r", StartMS: 1, DurMS: 8},
		{Name: "t2", Layer: LayerWFM, SpanID: "b", Parent: "r", StartMS: 1, DurMS: 8},
		{Name: "t1-invoke", Layer: LayerWFM, SpanID: "ai", Parent: "a", StartMS: 2, DurMS: 6},
	}
	lanes := assignLanes(recs)
	if lanes[1] != lanes[0] {
		t.Fatalf("t1 lane %d, root lane %d: child must inherit parent lane", lanes[1], lanes[0])
	}
	if lanes[2] == lanes[1] {
		t.Fatal("overlapping siblings share a lane — they would render on top of each other")
	}
	if lanes[3] != lanes[1] {
		t.Fatal("grandchild must inherit its parent's lane")
	}

	// A cross-layer child starts a lane in its own layer.
	recs = append(recs, Record{Name: "q", Layer: LayerPlatform, SpanID: "q", Parent: "ai", StartMS: 3, DurMS: 2})
	lanes = assignLanes(recs)
	if lanes[4] == 0 {
		t.Fatal("cross-layer child got no lane")
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	recs := RecordsOf(buildRun(t))
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, recs); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(buf.String(), "\n"); n != len(recs) {
		t.Fatalf("JSONL lines = %d, want %d", n, len(recs))
	}
	back, err := ReadJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(recs) {
		t.Fatalf("read %d records, want %d", len(back), len(recs))
	}
	for i := range back {
		if back[i].Name != recs[i].Name || back[i].SpanID != recs[i].SpanID ||
			back[i].StartMS != recs[i].StartMS || back[i].DurMS != recs[i].DurMS {
			t.Fatalf("record %d mismatch: %+v vs %+v", i, back[i], recs[i])
		}
	}
}

func TestCriticalPath(t *testing.T) {
	recs := RecordsOf(buildRun(t))
	path := CriticalPath(recs)
	var names []string
	for _, r := range path {
		names = append(names, r.Name)
	}
	// The descent through latest-ending children crosses all three
	// layers: workflow -> task -> invoke -> execute -> cpu.
	wantRun := []string{"workflow:blast", "task:blastall_0", "invoke", "execute", "cpu"}
	if len(names) != len(wantRun) {
		t.Fatalf("critical path = %v, want %v", names, wantRun)
	}
	for i := range wantRun {
		if names[i] != wantRun[i] {
			t.Fatalf("critical path = %v, want %v", names, wantRun)
		}
	}

	// A synthetic forest where the last-finishing span is a deep leaf.
	recs = []Record{
		{Name: "root", SpanID: "r", StartMS: 0, DurMS: 5},
		{Name: "a", SpanID: "a", Parent: "r", StartMS: 1, DurMS: 2},
		{Name: "b", SpanID: "b", Parent: "r", StartMS: 1, DurMS: 9},
		{Name: "b-leaf", SpanID: "bl", Parent: "b", StartMS: 4, DurMS: 8},
	}
	path = CriticalPath(recs)
	names = nil
	for _, r := range path {
		names = append(names, r.Name)
	}
	want := []string{"root", "b", "b-leaf"}
	if len(names) != len(want) {
		t.Fatalf("critical path = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("critical path = %v, want %v", names, want)
		}
	}

	// Cycle in parent links must terminate, not hang.
	recs = []Record{
		{Name: "x", SpanID: "x", Parent: "y", StartMS: 0, DurMS: 5},
		{Name: "y", SpanID: "y", Parent: "x", StartMS: 1, DurMS: 5},
	}
	if got := CriticalPath(recs); len(got) == 0 || len(got) > 2 {
		t.Fatalf("cyclic critical path length = %d", len(got))
	}

	if CriticalPath(nil) != nil {
		t.Fatal("CriticalPath(nil) != nil")
	}
}
