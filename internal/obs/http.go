package obs

import (
	"io"
	"net/http"
	"net/http/pprof"
	"strings"
)

// Metrics exposition content types. The exposition body this repo's
// writers emit (HELP/TYPE metadata followed by samples) is valid under
// both; OpenMetrics additionally mandates the `# EOF` terminator, which
// ServeMetrics appends.
const (
	// ContentTypeProm is the classic Prometheus text exposition format.
	ContentTypeProm = "text/plain; version=0.0.4; charset=utf-8"
	// ContentTypeOpenMetrics is the OpenMetrics 1.0 text format.
	ContentTypeOpenMetrics = "application/openmetrics-text; version=1.0.0; charset=utf-8"
)

// NegotiateMetrics picks the exposition content type from a request's
// Accept header: a client that asks for application/openmetrics-text
// gets OpenMetrics, everyone else (including no Accept at all) gets the
// classic Prometheus text format.
func NegotiateMetrics(accept string) (contentType string, openMetrics bool) {
	for _, part := range strings.Split(accept, ",") {
		mt := strings.TrimSpace(part)
		if i := strings.IndexByte(mt, ';'); i >= 0 {
			mt = strings.TrimSpace(mt[:i])
		}
		if strings.EqualFold(mt, "application/openmetrics-text") {
			return ContentTypeOpenMetrics, true
		}
	}
	return ContentTypeProm, false
}

// ServeMetrics writes one metrics exposition with content-type
// negotiation: the Content-Type answers the client's Accept header and
// OpenMetrics responses are closed with the format's mandatory `# EOF`
// terminator. write receives the response body; every exposition
// endpoint in the repo funnels through here so the conformance rules
// live in one place.
func ServeMetrics(w http.ResponseWriter, r *http.Request, write func(io.Writer) error) {
	ct, om := NegotiateMetrics(r.Header.Get("Accept"))
	w.Header().Set("Content-Type", ct)
	if write != nil {
		if err := write(w); err != nil {
			// The status line is long gone; nothing useful to send.
			return
		}
	}
	if om {
		io.WriteString(w, "# EOF\n")
	}
}

// TelemetryMux returns an http.ServeMux wired with the standard
// telemetry surface shared by every long-running binary in this repo:
//
//	/healthz            liveness probe, answers 200 "ok"
//	/metrics            the provided exposition writer, with Prometheus
//	                    text / OpenMetrics negotiation (ServeMetrics)
//	/debug/pprof/...    the net/http/pprof profiling suite
//
// A nil metrics writer serves only health and pprof.
func TelemetryMux(metrics func(io.Writer) error) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("ok\n"))
	})
	if metrics != nil {
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			ServeMetrics(w, r, metrics)
		})
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
