package obs

import (
	"net/http"
	"net/http/pprof"
)

// TelemetryMux returns an http.ServeMux wired with the standard
// telemetry surface shared by every long-running binary in this repo:
//
//	/healthz            liveness probe, answers 200 "ok"
//	/metrics            the provided handler (Prometheus text exposition)
//	/debug/pprof/...    the net/http/pprof profiling suite
//
// A nil metrics handler serves only health and pprof.
func TelemetryMux(metrics http.HandlerFunc) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("ok\n"))
	})
	if metrics != nil {
		mux.HandleFunc("/metrics", metrics)
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
