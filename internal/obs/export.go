package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// Record is the serialized form of a finished span: what the exporters
// write and the analysis tooling reads. Times are relative to the
// earliest span start in the batch (StartMS) so records are stable
// across machines and trivially plottable.
type Record struct {
	Name    string         `json:"name"`
	Layer   string         `json:"layer"`
	TraceID string         `json:"traceId"`
	SpanID  string         `json:"spanId"`
	Parent  string         `json:"parentId,omitempty"`
	StartMS float64        `json:"startMs"`
	DurMS   float64        `json:"durMs"`
	Attrs   map[string]any `json:"attrs,omitempty"`
}

// RecordsOf converts collected spans into records, sorted by start
// time. The zero instant is the earliest span start across the batch.
func RecordsOf(spans []Span) []Record {
	if len(spans) == 0 {
		return nil
	}
	epoch := spans[0].Start
	for _, s := range spans[1:] {
		if s.Start.Before(epoch) {
			epoch = s.Start
		}
	}
	recs := make([]Record, len(spans))
	for i, s := range spans {
		r := Record{
			Name:    s.Name,
			Layer:   s.Layer,
			TraceID: s.Trace.String(),
			SpanID:  s.ID.String(),
			StartMS: round3(float64(s.Start.Sub(epoch)) / float64(time.Millisecond)),
			DurMS:   round3(float64(s.End.Sub(s.Start)) / float64(time.Millisecond)),
			Attrs:   s.Attrs(),
		}
		if !s.Parent.IsZero() {
			r.Parent = s.Parent.String()
		}
		recs[i] = r
	}
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].StartMS < recs[j].StartMS })
	return recs
}

// Fixed Chrome-trace process IDs, one per architectural layer, so the
// trace viewer renders the request path top-down in call order.
var layerPIDs = map[string]int{LayerWFM: 1, LayerPlatform: 2, LayerWfbench: 3}

func layerPID(layer string) int {
	if pid, ok := layerPIDs[layer]; ok {
		return pid
	}
	return 9
}

// chromeEvent is one entry of the Chrome trace-event format
// (docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU).
// We emit only "X" (complete) duration events plus "M" process-name
// metadata; ts/dur are microseconds.
type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	TS    float64        `json:"ts"`
	Dur   float64        `json:"dur,omitempty"`
	Cat   string         `json:"cat,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

type chromeFile struct {
	DisplayTimeUnit string        `json:"displayTimeUnit"`
	TraceEvents     []chromeEvent `json:"traceEvents"`
}

// WriteChromeTrace writes records as Chrome trace-event JSON (object
// form), loadable in Perfetto or chrome://tracing. Each layer becomes a
// named process; within a layer, spans are packed into lanes (tids) so
// overlapping siblings render side by side while children share their
// parent's lane and nest under it.
func WriteChromeTrace(w io.Writer, recs []Record) error {
	f := chromeFile{DisplayTimeUnit: "ms"}
	for layer, pid := range layerPIDs {
		f.TraceEvents = append(f.TraceEvents, chromeEvent{
			Name: "process_name", Phase: "M", PID: pid,
			Args: map[string]any{"name": layer},
		})
	}
	sort.Slice(f.TraceEvents, func(i, j int) bool { return f.TraceEvents[i].PID < f.TraceEvents[j].PID })

	lanes := assignLanes(recs)
	for i, r := range recs {
		args := map[string]any{"spanId": r.SpanID}
		if r.Parent != "" {
			args["parentId"] = r.Parent
		}
		for k, v := range r.Attrs {
			args[k] = v
		}
		f.TraceEvents = append(f.TraceEvents, chromeEvent{
			Name:  r.Name,
			Phase: "X",
			Cat:   r.Layer,
			PID:   layerPID(r.Layer),
			TID:   lanes[i],
			TS:    round3(r.StartMS * 1000),
			Dur:   round3(r.DurMS * 1000),
			Args:  args,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(f)
}

// assignLanes gives each record a tid within its layer's process. The
// trace-event format nests same-tid events only when their intervals
// nest, so a lane may hold a span iff the lane's innermost still-open
// span is an ancestor (the child then renders nested under it).
// Overlapping siblings therefore spill into separate lanes instead of
// rendering on top of each other; a greedy first-fit keeps the lane
// count at the true concurrency of each layer.
func assignLanes(recs []Record) []int {
	type openSpan struct {
		id  string
		end float64
	}
	laneOf := make([]int, len(recs))
	bySpan := make(map[string]int, len(recs)) // spanID -> record index
	for i, r := range recs {
		bySpan[r.SpanID] = i
	}
	// isAncestor walks the parent chain of record i looking for spanID.
	isAncestor := func(spanID string, i int) bool {
		for hops := 0; hops < len(recs); hops++ {
			p := recs[i].Parent
			if p == "" {
				return false
			}
			if p == spanID {
				return true
			}
			pi, ok := bySpan[p]
			if !ok {
				return false
			}
			i = pi
		}
		return false
	}
	// Per layer, each lane is a stack of open spans; records are
	// start-sorted, so expired spans pop off as the sweep advances.
	layerLanes := map[string][][]openSpan{}
	for i, r := range recs {
		ls := layerLanes[r.Layer]
		placed := false
		for li := range ls {
			stack := ls[li]
			for len(stack) > 0 && stack[len(stack)-1].end <= r.StartMS {
				stack = stack[:len(stack)-1]
			}
			if len(stack) == 0 || isAncestor(stack[len(stack)-1].id, i) {
				ls[li] = append(stack, openSpan{id: r.SpanID, end: r.StartMS + r.DurMS})
				laneOf[i] = li + 1
				placed = true
				break
			}
			ls[li] = stack
		}
		if !placed {
			ls = append(ls, []openSpan{{id: r.SpanID, end: r.StartMS + r.DurMS}})
			laneOf[i] = len(ls)
		}
		layerLanes[r.Layer] = ls
	}
	return laneOf
}

// ParseChromeTrace reads back a trace written by WriteChromeTrace,
// reconstructing records from the X events (metadata events are
// skipped). It tolerates extra keys, so files other tools have touched
// still load.
func ParseChromeTrace(r io.Reader) ([]Record, error) {
	var f struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Phase string         `json:"ph"`
			Cat   string         `json:"cat"`
			TS    float64        `json:"ts"`
			Dur   float64        `json:"dur"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("chrome trace: %w", err)
	}
	var recs []Record
	for _, ev := range f.TraceEvents {
		if ev.Phase != "X" {
			continue
		}
		rec := Record{
			Name:    ev.Name,
			Layer:   ev.Cat,
			StartMS: round3(ev.TS / 1000),
			DurMS:   round3(ev.Dur / 1000),
		}
		attrs := map[string]any{}
		for k, v := range ev.Args {
			switch k {
			case "spanId":
				rec.SpanID, _ = v.(string)
			case "parentId":
				rec.Parent, _ = v.(string)
			default:
				attrs[k] = v
			}
		}
		if len(attrs) > 0 {
			rec.Attrs = attrs
		}
		recs = append(recs, rec)
	}
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].StartMS < recs[j].StartMS })
	return recs, nil
}

// WriteJSONL writes one record per line — the grep/jq-friendly span
// log.
func WriteJSONL(w io.Writer, recs []Record) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, r := range recs {
		if err := enc.Encode(r); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL reads a span log written by WriteJSONL.
func ReadJSONL(r io.Reader) ([]Record, error) {
	var recs []Record
	dec := json.NewDecoder(r)
	for {
		var rec Record
		if err := dec.Decode(&rec); err == io.EOF {
			return recs, nil
		} else if err != nil {
			return nil, fmt.Errorf("span log: %w", err)
		}
		recs = append(recs, rec)
	}
}

// CriticalPath returns the longest span chain of the batch: starting
// from the latest-ending root, it descends into the latest-ending child
// at every level, yielding the root-to-leaf pole that explains the
// run's makespan ("the makespan is set by this task, whose time went to
// this attempt, which spent it in the pod executing this CPU phase").
func CriticalPath(recs []Record) []Record {
	if len(recs) == 0 {
		return nil
	}
	end := func(r Record) float64 { return r.StartMS + r.DurMS }
	children := make(map[string][]int, len(recs))
	bySpan := make(map[string]struct{}, len(recs))
	for _, r := range recs {
		if r.SpanID != "" {
			bySpan[r.SpanID] = struct{}{}
		}
	}
	roots := []int{}
	for i, r := range recs {
		if _, ok := bySpan[r.Parent]; r.Parent != "" && ok {
			children[r.Parent] = append(children[r.Parent], i)
		} else {
			roots = append(roots, i)
		}
	}
	latest := func(idxs []int) int {
		best := idxs[0]
		for _, i := range idxs[1:] {
			if end(recs[i]) > end(recs[best]) {
				best = i
			}
		}
		return best
	}
	var start int
	if len(roots) > 0 {
		start = latest(roots)
	} else {
		// Only cycles: no parentless span exists. Fall back to the
		// latest-ending span; the seen guard below terminates the walk.
		all := make([]int, len(recs))
		for i := range recs {
			all[i] = i
		}
		start = latest(all)
	}
	var chain []Record
	seen := map[int]bool{}
	for i := start; !seen[i]; {
		seen[i] = true
		chain = append(chain, recs[i])
		kids := children[recs[i].SpanID]
		if recs[i].SpanID == "" || len(kids) == 0 {
			break
		}
		i = latest(kids)
	}
	return chain
}
