package sharedfs

import (
	"context"
	"errors"
	"io/fs"
	"reflect"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

// drives returns one of each backend for table-driven tests.
func drives(t *testing.T) map[string]Drive {
	t.Helper()
	disk, err := NewDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Drive{"mem": NewMem(), "disk": disk}
}

func TestWriteStat(t *testing.T) {
	for name, d := range drives(t) {
		t.Run(name, func(t *testing.T) {
			if err := d.WriteFile("a.txt", 1234); err != nil {
				t.Fatal(err)
			}
			size, err := d.Stat("a.txt")
			if err != nil {
				t.Fatal(err)
			}
			if size != 1234 {
				t.Fatalf("size = %d, want 1234", size)
			}
		})
	}
}

func TestStatMissing(t *testing.T) {
	for name, d := range drives(t) {
		t.Run(name, func(t *testing.T) {
			_, err := d.Stat("missing")
			if !errors.Is(err, fs.ErrNotExist) {
				t.Fatalf("err = %v, want fs.ErrNotExist", err)
			}
		})
	}
}

func TestExistsRemove(t *testing.T) {
	for name, d := range drives(t) {
		t.Run(name, func(t *testing.T) {
			d.WriteFile("x", 10)
			if !d.Exists("x") {
				t.Fatal("x should exist")
			}
			if err := d.Remove("x"); err != nil {
				t.Fatal(err)
			}
			if d.Exists("x") {
				t.Fatal("x should be gone")
			}
			// idempotent remove
			if err := d.Remove("x"); err != nil {
				t.Fatalf("second remove: %v", err)
			}
		})
	}
}

func TestListSortedAndTotal(t *testing.T) {
	for name, d := range drives(t) {
		t.Run(name, func(t *testing.T) {
			d.WriteFile("b", 2)
			d.WriteFile("a", 1)
			d.WriteFile("c", 3)
			if got := d.List(); !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
				t.Fatalf("List = %v", got)
			}
			if got := d.TotalBytes(); got != 6 {
				t.Fatalf("TotalBytes = %d", got)
			}
		})
	}
}

func TestOverwriteReplacesSize(t *testing.T) {
	for name, d := range drives(t) {
		t.Run(name, func(t *testing.T) {
			d.WriteFile("f", 100)
			d.WriteFile("f", 7)
			size, _ := d.Stat("f")
			if size != 7 {
				t.Fatalf("size = %d after overwrite, want 7", size)
			}
		})
	}
}

func TestInvalidNames(t *testing.T) {
	for name, d := range drives(t) {
		t.Run(name, func(t *testing.T) {
			for _, bad := range []string{"", "a/b", "..", ".", `a\b`} {
				if err := d.WriteFile(bad, 1); err == nil {
					t.Fatalf("name %q accepted", bad)
				}
			}
		})
	}
}

func TestNegativeSize(t *testing.T) {
	for name, d := range drives(t) {
		t.Run(name, func(t *testing.T) {
			if err := d.WriteFile("n", -1); err == nil {
				t.Fatal("negative size accepted")
			}
		})
	}
}

func TestDiskFileHasRealBytes(t *testing.T) {
	d, err := NewDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// larger than one write chunk to exercise the chunk loop
	const size = 100 << 10
	if err := d.WriteFile("big.bin", size); err != nil {
		t.Fatal(err)
	}
	got, err := d.Stat("big.bin")
	if err != nil {
		t.Fatal(err)
	}
	if got != size {
		t.Fatalf("on-disk size = %d, want %d", got, size)
	}
}

func TestConcurrentWriters(t *testing.T) {
	d := NewMem()
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := string(rune('a' + i%26))
			for j := 0; j < 100; j++ {
				d.WriteFile(name, int64(j))
				d.Exists(name)
				d.TotalBytes()
			}
		}(i)
	}
	wg.Wait()
	if len(d.List()) == 0 {
		t.Fatal("no files after concurrent writes")
	}
}

func TestWaitForImmediate(t *testing.T) {
	d := NewMem()
	d.WriteFile("a", 1)
	missing, err := WaitFor(context.Background(), d, []string{"a"}, time.Millisecond)
	if err != nil || len(missing) != 0 {
		t.Fatalf("missing=%v err=%v", missing, err)
	}
}

func TestWaitForEventuallyAppears(t *testing.T) {
	d := NewMem()
	go func() {
		time.Sleep(5 * time.Millisecond)
		d.WriteFile("late", 1)
	}()
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	missing, err := WaitFor(ctx, d, []string{"late"}, time.Millisecond)
	if err != nil || len(missing) != 0 {
		t.Fatalf("missing=%v err=%v", missing, err)
	}
}

func TestWaitForTimeoutReportsMissing(t *testing.T) {
	d := NewMem()
	d.WriteFile("have", 1)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	missing, err := WaitFor(ctx, d, []string{"have", "z", "a"}, time.Millisecond)
	if err == nil {
		t.Fatal("expected timeout error")
	}
	if !reflect.DeepEqual(missing, []string{"a", "z"}) {
		t.Fatalf("missing = %v, want [a z]", missing)
	}
}

func TestStage(t *testing.T) {
	d := NewMem()
	err := Stage(d, map[string]int64{"in1": 10, "in2": 20})
	if err != nil {
		t.Fatal(err)
	}
	if got := d.TotalBytes(); got != 30 {
		t.Fatalf("TotalBytes = %d", got)
	}
}

func TestStageBadName(t *testing.T) {
	d := NewMem()
	if err := Stage(d, map[string]int64{"ok": 1, "bad/name": 2}); err == nil {
		t.Fatal("bad name accepted by Stage")
	}
}

func TestQuickMemTotalMatchesSum(t *testing.T) {
	f := func(sizes []uint16) bool {
		d := NewMem()
		var want int64
		for i, s := range sizes {
			name := "f" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26))
			if d.Exists(name) {
				old, _ := d.Stat(name)
				want -= old
			}
			d.WriteFile(name, int64(s))
			want += int64(s)
		}
		return d.TotalBytes() == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
