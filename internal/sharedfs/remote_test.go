package sharedfs

import (
	"testing"
	"time"
)

func TestRemoteDriveForwardsOperations(t *testing.T) {
	inner := NewMem()
	d := NewRemote(inner, 0, 0)
	if err := d.WriteFile("a", 100); err != nil {
		t.Fatal(err)
	}
	if !d.Exists("a") || !inner.Exists("a") {
		t.Fatal("write not forwarded")
	}
	size, err := d.Stat("a")
	if err != nil || size != 100 {
		t.Fatalf("Stat = %d, %v", size, err)
	}
	if got := d.List(); len(got) != 1 {
		t.Fatalf("List = %v", got)
	}
	if got := d.TotalBytes(); got != 100 {
		t.Fatalf("TotalBytes = %d", got)
	}
	if err := d.Remove("a"); err != nil {
		t.Fatal(err)
	}
	if d.Exists("a") {
		t.Fatal("remove not forwarded")
	}
}

func TestRemoteDriveLatency(t *testing.T) {
	d := NewRemote(NewMem(), 10*time.Millisecond, 0)
	start := time.Now()
	d.Exists("x")
	if elapsed := time.Since(start); elapsed < 10*time.Millisecond {
		t.Fatalf("metadata op took %v, want >= latency", elapsed)
	}
}

func TestRemoteDriveBandwidth(t *testing.T) {
	// 1 MB at 100 MB/s = 10ms transfer.
	d := NewRemote(NewMem(), 0, 100<<20)
	start := time.Now()
	if err := d.WriteFile("big", 1<<20); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if elapsed < 8*time.Millisecond {
		t.Fatalf("1MB write took %v, want ~10ms at 100MB/s", elapsed)
	}
	// Metadata-only op pays no transfer.
	start = time.Now()
	d.Exists("big")
	if time.Since(start) > 5*time.Millisecond {
		t.Fatal("metadata op paid bandwidth cost")
	}
}

func TestRemoteDriveSatisfiesDrive(t *testing.T) {
	var _ Drive = NewRemote(NewMem(), 0, 0)
}
