package sharedfs

import (
	"fmt"
	"testing"
)

func BenchmarkMemWriteStat(b *testing.B) {
	d := NewMem()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		name := fmt.Sprintf("f%d", i%1024)
		if err := d.WriteFile(name, int64(i)); err != nil {
			b.Fatal(err)
		}
		if _, err := d.Stat(name); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMemConcurrent(b *testing.B) {
	d := NewMem()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			name := fmt.Sprintf("f%d", i%512)
			d.WriteFile(name, int64(i))
			d.Exists(name)
			i++
		}
	})
}
