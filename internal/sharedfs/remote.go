package sharedfs

import (
	"time"
)

// RemoteDrive wraps a Drive with network costs — per-operation latency
// and write/read bandwidth — modeling the externally hosted distributed
// data storage the paper plans to study ("we intend to investigate the
// impacts of using external distributed data storage for managing
// scientific workflows", Section VII). Metadata operations pay latency;
// data operations additionally pay size/bandwidth.
//
// RemoteDrive intentionally does NOT implement Watcher even when the
// wrapped drive does: a remote store has no free push channel, so
// WaitFor uses its bounded-polling fallback and each probe pays the
// modeled round trip, exactly like a real client would.
type RemoteDrive struct {
	inner Drive
	// Latency is the per-operation round trip (already scaled to wall
	// time by the caller).
	Latency time.Duration
	// BytesPerSec is the transfer bandwidth; zero means infinite.
	BytesPerSec float64
}

// NewRemote wraps inner with the given network costs.
func NewRemote(inner Drive, latency time.Duration, bytesPerSec float64) *RemoteDrive {
	return &RemoteDrive{inner: inner, Latency: latency, BytesPerSec: bytesPerSec}
}

func (d *RemoteDrive) pay(bytes int64) {
	cost := d.Latency
	if d.BytesPerSec > 0 && bytes > 0 {
		cost += time.Duration(float64(bytes) / d.BytesPerSec * float64(time.Second))
	}
	if cost > 0 {
		time.Sleep(cost)
	}
}

// WriteFile implements Drive, paying latency plus transfer time.
func (d *RemoteDrive) WriteFile(name string, size int64) error {
	d.pay(size)
	return d.inner.WriteFile(name, size)
}

// Stat implements Drive, paying one round trip.
func (d *RemoteDrive) Stat(name string) (int64, error) {
	d.pay(0)
	return d.inner.Stat(name)
}

// Exists implements Drive, paying one round trip.
func (d *RemoteDrive) Exists(name string) bool {
	d.pay(0)
	return d.inner.Exists(name)
}

// List implements Drive, paying one round trip.
func (d *RemoteDrive) List() []string {
	d.pay(0)
	return d.inner.List()
}

// Remove implements Drive, paying one round trip.
func (d *RemoteDrive) Remove(name string) error {
	d.pay(0)
	return d.inner.Remove(name)
}

// TotalBytes implements Drive without network cost (an accounting view).
func (d *RemoteDrive) TotalBytes() int64 { return d.inner.TotalBytes() }
