package sharedfs

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"
)

func TestWatchExistingFiresImmediately(t *testing.T) {
	d := NewMem()
	d.WriteFile("a", 1)
	done, cancel := d.Watch("a")
	defer cancel()
	select {
	case <-done:
	default:
		t.Fatal("watch on existing file not signalled")
	}
}

func TestWatchFiresOnWrite(t *testing.T) {
	d := NewMem()
	done, cancel := d.Watch("late")
	defer cancel()
	select {
	case <-done:
		t.Fatal("watch fired before write")
	default:
	}
	d.WriteFile("late", 1)
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("watch did not fire on write")
	}
}

func TestWatchCancelReleasesSubscription(t *testing.T) {
	d := NewMem()
	_, cancel := d.Watch("x")
	if len(d.watchers["x"]) != 1 {
		t.Fatalf("watchers = %d, want 1", len(d.watchers["x"]))
	}
	cancel()
	if len(d.watchers) != 0 {
		t.Fatalf("watchers map not cleaned: %v", d.watchers)
	}
	// cancel after the channel fired is a no-op
	done, cancel2 := d.Watch("y")
	d.WriteFile("y", 1)
	<-done
	cancel2()
}

func TestWatchMultipleSubscribersSameFile(t *testing.T) {
	d := NewMem()
	var chans []<-chan struct{}
	for i := 0; i < 4; i++ {
		ch, cancel := d.Watch("shared")
		defer cancel()
		chans = append(chans, ch)
	}
	d.WriteFile("shared", 1)
	for i, ch := range chans {
		select {
		case <-ch:
		case <-time.After(time.Second):
			t.Fatalf("subscriber %d never woke", i)
		}
	}
}

// TestWaitForUsesWatchPath asserts the event-driven path wakes promptly:
// with a huge poll interval passed in, only a push notification can
// return before the context deadline.
func TestWaitForUsesWatchPath(t *testing.T) {
	d := NewMem()
	go func() {
		time.Sleep(5 * time.Millisecond)
		d.WriteFile("pushed", 1)
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	start := time.Now()
	missing, err := WaitFor(ctx, d, []string{"pushed"}, time.Hour)
	if err != nil || len(missing) != 0 {
		t.Fatalf("missing=%v err=%v", missing, err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("watch path took %v; fell back to the poll interval?", elapsed)
	}
}

// TestWaitForWatchTimeoutReportsMissing covers the ctx-expiry branch of
// the watch path, including names later in the list that were already
// published.
func TestWaitForWatchTimeoutReportsMissing(t *testing.T) {
	d := NewMem()
	d.WriteFile("have", 1)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	missing, err := WaitFor(ctx, d, []string{"z", "have", "a"}, time.Millisecond)
	if err == nil {
		t.Fatal("expected timeout error")
	}
	if !reflect.DeepEqual(missing, []string{"a", "z"}) {
		t.Fatalf("missing = %v, want [a z]", missing)
	}
	// No subscriptions may leak after WaitFor returns.
	d.mu.RLock()
	defer d.mu.RUnlock()
	if len(d.watchers) != 0 {
		t.Fatalf("leaked watchers: %v", d.watchers)
	}
}

// TestWaitForPollingFallback exercises the non-Watcher path via a
// DiskDrive (which has no push channel).
func TestWaitForPollingFallback(t *testing.T) {
	d, err := NewDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := Drive(d).(Watcher); ok {
		t.Fatal("DiskDrive unexpectedly implements Watcher; test needs updating")
	}
	go func() {
		time.Sleep(5 * time.Millisecond)
		d.WriteFile("late", 1)
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	// Pathological poll interval must be clamped to maxPoll, so this
	// still returns well before the context deadline.
	missing, err := WaitFor(ctx, d, []string{"late"}, time.Hour)
	if err != nil || len(missing) != 0 {
		t.Fatalf("missing=%v err=%v", missing, err)
	}
}

// TestWaitForPollingCancellationMidWait covers cancelling the bounded
// polling path while it is blocked between probes: WaitFor must return
// promptly with the context error and the names still unpublished.
func TestWaitForPollingCancellationMidWait(t *testing.T) {
	d, err := NewDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	d.WriteFile("present", 1)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	missing, err := WaitFor(ctx, d, []string{"gone-b", "present", "gone-a"}, 50*time.Millisecond)
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Cancellation must interrupt the sleep, not wait out the interval.
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
	if !reflect.DeepEqual(missing, []string{"gone-a", "gone-b"}) {
		t.Fatalf("missing = %v, want sorted [gone-a gone-b]", missing)
	}
}

// TestWaitForPollingImmediateReturn pins that the fallback path checks
// existence before its first sleep: files already on disk return without
// paying even one poll interval.
func TestWaitForPollingImmediateReturn(t *testing.T) {
	d, err := NewDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	d.WriteFile("x", 1)
	d.WriteFile("y", 1)
	start := time.Now()
	missing, err := WaitFor(context.Background(), d, []string{"x", "y"}, time.Hour)
	if err != nil || len(missing) != 0 {
		t.Fatalf("missing=%v err=%v", missing, err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("existing files took %v; slept before the first probe?", elapsed)
	}
}

// TestRemoteDriveHasNoWatch pins the design decision: remote drives pay
// per-operation latency, so WaitFor must use bounded polling for them
// rather than pretending pushes are free.
func TestRemoteDriveHasNoWatch(t *testing.T) {
	r := NewRemote(NewMem(), 0, 0)
	if _, ok := Drive(r).(Watcher); ok {
		t.Fatal("RemoteDrive implements Watcher; WaitFor would bypass its cost model")
	}
}

func TestWatchConcurrentWritersAndWatchers(t *testing.T) {
	d := NewMem()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		name := fmt.Sprintf("f%02d", i)
		wg.Add(2)
		go func() {
			defer wg.Done()
			done, cancel := d.Watch(name)
			defer cancel()
			select {
			case <-done:
			case <-time.After(5 * time.Second):
				t.Errorf("watcher of %s starved", name)
			}
		}()
		go func() {
			defer wg.Done()
			d.WriteFile(name, 1)
		}()
	}
	wg.Wait()
}
