// Package sharedfs implements the shared drive the paper's framework
// assumes: "all machines in the cluster have access to a common shared
// directory for storing I/O", so every function can write to and read
// from the same place and inter-function communication is guaranteed.
//
// Two backends are provided. MemDrive keeps only file metadata (name and
// size) in memory and is used by the experiment harness, where thousands
// of sized files are produced. DiskDrive writes real files under a
// directory and is used by the standalone WfBench service and the
// integration tests, matching the paper's NFS mount.
package sharedfs

import (
	"context"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// Drive is the shared storage every workflow function reads inputs from
// and writes outputs to.
type Drive interface {
	// WriteFile creates (or replaces) a file of the given size.
	WriteFile(name string, size int64) error
	// Stat returns the size of name, or an error satisfying
	// errors.Is(err, fs.ErrNotExist) if absent.
	Stat(name string) (int64, error)
	// Exists reports whether name is present.
	Exists(name string) bool
	// List returns all file names, sorted.
	List() []string
	// Remove deletes name if present; removing an absent file is not an
	// error, mirroring idempotent cleanup.
	Remove(name string) error
	// TotalBytes returns the sum of all file sizes.
	TotalBytes() int64
}

// ErrNotExist is returned (wrapped) when a file is absent.
var ErrNotExist = fs.ErrNotExist

// Hasher is an optional Drive extension for content-addressed drives:
// ContentHash reports a file's content address without re-reading its
// bytes. Both bundled drives qualify — their file contents are a pure
// function of (name, size): MemDrive stores only metadata and DiskDrive
// lays down a deterministic repeating pattern — so the address derives
// from a single metadata lookup. The batch invocation path uses this to
// verify a whole batch's inputs with one hash per unique file instead
// of re-checking (or re-reading) them per sub-task.
type Hasher interface {
	// ContentHash returns the file's content address and true, or false
	// if the file is absent.
	ContentHash(name string) (uint64, bool)
}

// contentHash derives the content address of a pattern file from its
// metadata (FNV-1a over the name bytes then the size).
func contentHash(name string, size int64) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= prime64
	}
	for i := 0; i < 8; i++ {
		h ^= uint64(size>>(8*i)) & 0xff
		h *= prime64
	}
	return h
}

// ContentAddress returns the content address a bundled drive reports
// for a pattern file of the given name and declared size, without the
// file having to exist anywhere. It is the same value ContentHash
// returns once the file is staged, which is what makes fingerprints
// computed before staging agree with fingerprints computed after: the
// memoization layer addresses a workflow's external inputs through
// this function whenever the drive cannot answer (file not yet
// staged), and through ContentHash when it can (file present, possibly
// with a size diverging from the declaration — which must, and does,
// change the address).
func ContentAddress(name string, size int64) uint64 {
	return contentHash(name, size)
}

// Watcher is an optional Drive extension: drives that can push change
// notifications let WaitFor wake the instant a file is published instead
// of burning a poll loop. MemDrive implements it; DiskDrive and
// RemoteDrive deliberately do not (a real NFS mount or remote store has
// no portable push channel), so WaitFor falls back to bounded polling
// for them.
type Watcher interface {
	// Watch returns a channel that is closed once name exists on the
	// drive. If name already exists the returned channel is closed
	// immediately. cancel releases the watch; it is safe to call after
	// the channel fired.
	Watch(name string) (done <-chan struct{}, cancel func())
}

// MemDrive is an in-memory Drive safe for concurrent use.
type MemDrive struct {
	mu    sync.RWMutex
	files map[string]int64
	// watchers holds one-shot publication subscriptions per file name,
	// keyed by a unique id so cancellation is O(1).
	watchers    map[string]map[uint64]chan struct{}
	nextWatchID uint64
}

// NewMem returns an empty in-memory drive.
func NewMem() *MemDrive {
	return &MemDrive{files: make(map[string]int64)}
}

// WriteFile implements Drive and wakes any watchers of name.
func (d *MemDrive) WriteFile(name string, size int64) error {
	if err := checkName(name); err != nil {
		return err
	}
	if size < 0 {
		return fmt.Errorf("sharedfs: negative size %d for %q", size, name)
	}
	d.mu.Lock()
	d.files[name] = size
	fired := d.watchers[name]
	delete(d.watchers, name)
	d.mu.Unlock()
	for _, ch := range fired {
		close(ch)
	}
	return nil
}

// closedChan is returned by Watch for files that already exist.
var closedChan = func() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}()

// Watch implements Watcher. The existence check and the subscription
// are atomic with respect to WriteFile, so a concurrent write can never
// be missed.
func (d *MemDrive) Watch(name string) (<-chan struct{}, func()) {
	d.mu.Lock()
	if _, ok := d.files[name]; ok {
		d.mu.Unlock()
		return closedChan, func() {}
	}
	if d.watchers == nil {
		d.watchers = make(map[string]map[uint64]chan struct{})
	}
	id := d.nextWatchID
	d.nextWatchID++
	ch := make(chan struct{})
	if d.watchers[name] == nil {
		d.watchers[name] = make(map[uint64]chan struct{})
	}
	d.watchers[name][id] = ch
	d.mu.Unlock()
	cancel := func() {
		d.mu.Lock()
		if m, ok := d.watchers[name]; ok {
			delete(m, id)
			if len(m) == 0 {
				delete(d.watchers, name)
			}
		}
		d.mu.Unlock()
	}
	return ch, cancel
}

// ContentHash implements Hasher from the in-memory metadata alone.
func (d *MemDrive) ContentHash(name string) (uint64, bool) {
	d.mu.RLock()
	size, ok := d.files[name]
	d.mu.RUnlock()
	if !ok {
		return 0, false
	}
	return contentHash(name, size), true
}

// Stat implements Drive.
func (d *MemDrive) Stat(name string) (int64, error) {
	d.mu.RLock()
	size, ok := d.files[name]
	d.mu.RUnlock()
	if !ok {
		return 0, fmt.Errorf("sharedfs: %q: %w", name, ErrNotExist)
	}
	return size, nil
}

// Exists implements Drive.
func (d *MemDrive) Exists(name string) bool {
	d.mu.RLock()
	_, ok := d.files[name]
	d.mu.RUnlock()
	return ok
}

// List implements Drive.
func (d *MemDrive) List() []string {
	d.mu.RLock()
	out := make([]string, 0, len(d.files))
	for n := range d.files {
		out = append(out, n)
	}
	d.mu.RUnlock()
	sort.Strings(out)
	return out
}

// Remove implements Drive.
func (d *MemDrive) Remove(name string) error {
	d.mu.Lock()
	delete(d.files, name)
	d.mu.Unlock()
	return nil
}

// TotalBytes implements Drive.
func (d *MemDrive) TotalBytes() int64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	var total int64
	for _, s := range d.files {
		total += s
	}
	return total
}

// DiskDrive stores files under a root directory. File contents are a
// repeating pattern of the requested size, so consumers can verify both
// presence and byte count like the paper's wfbench does.
type DiskDrive struct {
	root string
	mu   sync.Mutex // serializes directory-level operations
}

// NewDisk returns a drive rooted at dir, creating it if needed.
func NewDisk(dir string) (*DiskDrive, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("sharedfs: %w", err)
	}
	return &DiskDrive{root: dir}, nil
}

// Root returns the backing directory.
func (d *DiskDrive) Root() string { return d.root }

func (d *DiskDrive) path(name string) (string, error) {
	if err := checkName(name); err != nil {
		return "", err
	}
	return filepath.Join(d.root, name), nil
}

// WriteFile implements Drive. Contents are written in bounded chunks so
// large declared sizes do not allocate proportional memory.
func (d *DiskDrive) WriteFile(name string, size int64) error {
	p, err := d.path(name)
	if err != nil {
		return err
	}
	if size < 0 {
		return fmt.Errorf("sharedfs: negative size %d for %q", size, name)
	}
	f, err := os.Create(p)
	if err != nil {
		return err
	}
	const chunkSize = 64 << 10
	chunk := make([]byte, chunkSize)
	for i := range chunk {
		chunk[i] = byte('a' + i%26)
	}
	remaining := size
	for remaining > 0 {
		n := int64(len(chunk))
		if remaining < n {
			n = remaining
		}
		if _, err := f.Write(chunk[:n]); err != nil {
			f.Close()
			return err
		}
		remaining -= n
	}
	return f.Close()
}

// Stat implements Drive.
func (d *DiskDrive) Stat(name string) (int64, error) {
	p, err := d.path(name)
	if err != nil {
		return 0, err
	}
	fi, err := os.Stat(p)
	if err != nil {
		return 0, err // wraps fs.ErrNotExist already
	}
	return fi.Size(), nil
}

// ContentHash implements Hasher. DiskDrive contents are the
// deterministic pattern WriteFile lays down, so the content address
// follows from a stat — no bytes are read.
func (d *DiskDrive) ContentHash(name string) (uint64, bool) {
	size, err := d.Stat(name)
	if err != nil {
		return 0, false
	}
	return contentHash(name, size), true
}

// Exists implements Drive.
func (d *DiskDrive) Exists(name string) bool {
	_, err := d.Stat(name)
	return err == nil
}

// List implements Drive.
func (d *DiskDrive) List() []string {
	entries, err := os.ReadDir(d.root)
	if err != nil {
		return nil
	}
	var out []string
	for _, e := range entries {
		if !e.IsDir() {
			out = append(out, e.Name())
		}
	}
	sort.Strings(out)
	return out
}

// Remove implements Drive.
func (d *DiskDrive) Remove(name string) error {
	p, err := d.path(name)
	if err != nil {
		return err
	}
	err = os.Remove(p)
	if err != nil && os.IsNotExist(err) {
		return nil
	}
	return err
}

// TotalBytes implements Drive.
func (d *DiskDrive) TotalBytes() int64 {
	var total int64
	for _, n := range d.List() {
		if s, err := d.Stat(n); err == nil {
			total += s
		}
	}
	return total
}

// checkName rejects names that would escape the drive.
func checkName(name string) error {
	if name == "" {
		return fmt.Errorf("sharedfs: empty file name")
	}
	if strings.Contains(name, "/") || strings.Contains(name, "\\") || name == "." || name == ".." {
		return fmt.Errorf("sharedfs: invalid file name %q", name)
	}
	return nil
}

// Polling bounds for WaitFor's fallback path: the interval is clamped so
// a mis-scaled caller can neither spin the drive (important for
// RemoteDrive, where every Exists pays a network round trip) nor sleep
// past reasonable reaction time.
const (
	minPoll = time.Millisecond
	maxPoll = 250 * time.Millisecond
)

// WaitFor blocks until every name exists on the drive or ctx is done,
// returning the names still missing when the context expires. This is
// the workflow manager's "check whether the required input files are
// available on the shared drive" step.
//
// When the drive implements Watcher, WaitFor subscribes and wakes the
// instant each file is published — no polling at all. Otherwise it falls
// back to polling with the interval clamped to [1ms, 250ms].
func WaitFor(ctx context.Context, d Drive, names []string, poll time.Duration) (missing []string, err error) {
	// Fast path: in dependency-ordered execution the producing tasks have
	// already finished, so the inputs are almost always present on the
	// first look — skip the subscription/timer machinery entirely.
	if AllExist(d, names) {
		return nil, nil
	}
	if w, ok := d.(Watcher); ok {
		return waitWatch(ctx, w, names)
	}
	if poll < minPoll {
		poll = minPoll
	}
	if poll > maxPoll {
		poll = maxPoll
	}
	timer := time.NewTimer(poll)
	defer timer.Stop()
	for {
		missing = missing[:0]
		for _, n := range names {
			if !d.Exists(n) {
				missing = append(missing, n)
			}
		}
		if len(missing) == 0 {
			return nil, nil
		}
		select {
		case <-ctx.Done():
			sort.Strings(missing)
			return missing, ctx.Err()
		case <-timer.C:
			timer.Reset(poll)
		}
	}
}

// waitWatch is the event-driven WaitFor path: one subscription per name,
// all released on return.
func waitWatch(ctx context.Context, w Watcher, names []string) (missing []string, err error) {
	type watch struct {
		name   string
		done   <-chan struct{}
		cancel func()
	}
	watches := make([]watch, 0, len(names))
	defer func() {
		for _, wa := range watches {
			wa.cancel()
		}
	}()
	for _, n := range names {
		done, cancel := w.Watch(n)
		watches = append(watches, watch{name: n, done: done, cancel: cancel})
	}
	for i, wa := range watches {
		select {
		case <-wa.done:
		case <-ctx.Done():
			// Collect everything not yet published, including names
			// after i that may also still be pending.
			for _, rest := range watches[i:] {
				select {
				case <-rest.done:
				default:
					missing = append(missing, rest.name)
				}
			}
			sort.Strings(missing)
			return missing, ctx.Err()
		}
	}
	return nil, nil
}

// AllExist reports whether every name is already on the drive. It is the
// allocation-free check callers use before paying for a deadline context
// and a WaitFor subscription.
func AllExist(d Drive, names []string) bool {
	for _, n := range names {
		if !d.Exists(n) {
			return false
		}
	}
	return true
}

// Stage writes every listed file onto the drive — used to place a
// workflow's external inputs before execution.
func Stage(d Drive, files map[string]int64) error {
	names := make([]string, 0, len(files))
	for n := range files {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if err := d.WriteFile(n, files[n]); err != nil {
			return err
		}
	}
	return nil
}
