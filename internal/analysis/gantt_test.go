package analysis

import (
	"strings"
	"testing"

	"wfserverless/internal/wfm"
)

func sampleTrace() *wfm.Trace {
	return &wfm.Trace{
		Workflow: "Blast-mini",
		Makespan: 5.5,
		WallMS:   110,
		Events: []wfm.TraceEvent{
			{Name: "split", Category: "split_fasta", Phase: 1, StartMS: 0, EndMS: 30},
			{Name: "blast_1", Category: "blastall", Phase: 2, StartMS: 35, EndMS: 80},
			{Name: "blast_2", Category: "blastall", Phase: 2, StartMS: 35, EndMS: 90},
			{Name: "blast_3", Category: "blastall", Phase: 2, StartMS: 36, EndMS: 85},
			{Name: "cat", Category: "cat", Phase: 3, StartMS: 95, EndMS: 110, Error: "boom"},
		},
	}
}

func TestRenderGantt(t *testing.T) {
	var b strings.Builder
	if err := RenderGantt(&b, sampleTrace(), 40); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Blast-mini", "split (1)", "blast_1 (2)", "cat (3)", "!ERR", "="} {
		if !strings.Contains(out, want) {
			t.Fatalf("gantt missing %q:\n%s", want, out)
		}
	}
	// bars are ordered in time: split's bar starts at column 0
	lines := strings.Split(out, "\n")
	for _, ln := range lines {
		if strings.HasPrefix(ln, "split (1)") && !strings.Contains(ln, "|=") {
			t.Fatalf("split bar not at t=0: %q", ln)
		}
	}
}

func TestRenderGanttCapsRows(t *testing.T) {
	tr := sampleTrace()
	// inflate phase 2 to force truncation
	for i := 0; i < 50; i++ {
		tr.Events = append(tr.Events, wfm.TraceEvent{
			Name: "extra", Phase: 2, StartMS: 40, EndMS: 60,
		})
	}
	var b strings.Builder
	if err := RenderGantt(&b, tr, 9); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "more function(s) not shown") {
		t.Fatal("row cap not applied")
	}
}

func TestRenderGanttEmpty(t *testing.T) {
	var b strings.Builder
	if err := RenderGantt(&b, &wfm.Trace{}, 10); err == nil {
		t.Fatal("empty trace accepted")
	}
}
