// Package analysis is the counterpart of the paper's Jupyter notebooks
// (analysis_wfbench.ipynb): it loads the CSV the experiment campaigns
// emit, groups measurements by figure, workflow, size, and paradigm, and
// renders the grouped-bar views of Figures 4-7 as aligned ASCII charts —
// execution time, power, CPU, and memory per panel.
package analysis

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Record is one measurement row of the campaign CSV (see
// experiments.WriteCSV for the producer).
type Record struct {
	Figure        string
	Paradigm      string
	Workflow      string
	Recipe        string
	Tasks         int
	Group         int
	MakespanS     float64
	MeanPowerW    float64
	EnergyJ       float64
	MeanCPUCores  float64
	MaxCPUCores   float64
	MeanBusyCores float64
	MeanMemGB     float64
	MaxMemGB      float64
	ColdStarts    int64
	Requests      int64
	Failures      int64
	ScaleStalls   int64
}

// expected CSV header, kept in sync with experiments.WriteCSV.
var header = []string{
	"figure", "paradigm", "workflow", "recipe", "tasks", "group",
	"makespan_s", "mean_power_w", "energy_j", "mean_cpu_cores",
	"max_cpu_cores", "mean_busy_cores", "mean_mem_gb", "max_mem_gb",
	"cold_starts", "requests", "failures", "scale_stalls",
}

// ParseCSV reads campaign records. Multiple concatenated suites (each
// with its own header line) are accepted, matching cmd/experiments
// appending every suite to one file.
func ParseCSV(r io.Reader) ([]Record, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	var out []Record
	line := 0
	for {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("analysis: line %d: %w", line+1, err)
		}
		line++
		if len(row) == 0 || row[0] == "figure" {
			continue // header (possibly repeated between suites)
		}
		if len(row) != len(header) {
			return nil, fmt.Errorf("analysis: line %d: %d fields, want %d", line, len(row), len(header))
		}
		rec := Record{
			Figure:   row[0],
			Paradigm: row[1],
			Workflow: row[2],
			Recipe:   row[3],
		}
		ints := map[int]*int{4: &rec.Tasks, 5: &rec.Group}
		for idx, dst := range ints {
			v, err := strconv.Atoi(row[idx])
			if err != nil {
				return nil, fmt.Errorf("analysis: line %d field %s: %w", line, header[idx], err)
			}
			*dst = v
		}
		floats := map[int]*float64{
			6: &rec.MakespanS, 7: &rec.MeanPowerW, 8: &rec.EnergyJ,
			9: &rec.MeanCPUCores, 10: &rec.MaxCPUCores, 11: &rec.MeanBusyCores,
			12: &rec.MeanMemGB, 13: &rec.MaxMemGB,
		}
		for idx, dst := range floats {
			v, err := strconv.ParseFloat(row[idx], 64)
			if err != nil {
				return nil, fmt.Errorf("analysis: line %d field %s: %w", line, header[idx], err)
			}
			*dst = v
		}
		int64s := map[int]*int64{
			14: &rec.ColdStarts, 15: &rec.Requests, 16: &rec.Failures, 17: &rec.ScaleStalls,
		}
		for idx, dst := range int64s {
			v, err := strconv.ParseInt(row[idx], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("analysis: line %d field %s: %w", line, header[idx], err)
			}
			*dst = v
		}
		out = append(out, rec)
	}
	return out, nil
}

// Figures returns the distinct figure labels present, sorted.
func Figures(recs []Record) []string {
	set := map[string]struct{}{}
	for _, r := range recs {
		set[r.Figure] = struct{}{}
	}
	out := make([]string, 0, len(set))
	for f := range set {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}

// Filter returns records of one figure.
func Filter(recs []Record, figure string) []Record {
	var out []Record
	for _, r := range recs {
		if r.Figure == figure {
			out = append(out, r)
		}
	}
	return out
}

// Metric names renderable by RenderFigure.
var Metrics = []string{"makespan_s", "mean_power_w", "mean_cpu_cores", "mean_mem_gb", "energy_j"}

// metricOf extracts a named metric from a record.
func metricOf(r Record, metric string) (float64, error) {
	switch metric {
	case "makespan_s":
		return r.MakespanS, nil
	case "mean_power_w":
		return r.MeanPowerW, nil
	case "mean_cpu_cores":
		return r.MeanCPUCores, nil
	case "mean_mem_gb":
		return r.MeanMemGB, nil
	case "energy_j":
		return r.EnergyJ, nil
	default:
		return 0, fmt.Errorf("analysis: unknown metric %q (have %v)", metric, Metrics)
	}
}

// RenderFigure draws one figure panel as grouped ASCII bars: rows are
// (recipe, size) cells; within a cell one bar per paradigm, scaled to
// the panel-wide maximum.
func RenderFigure(w io.Writer, recs []Record, figure, metric string) error {
	recs = Filter(recs, figure)
	if len(recs) == 0 {
		return fmt.Errorf("analysis: no records for figure %q", figure)
	}
	maxVal := 0.0
	for _, r := range recs {
		v, err := metricOf(r, metric)
		if err != nil {
			return err
		}
		if v > maxVal {
			maxVal = v
		}
	}
	if maxVal == 0 {
		maxVal = 1
	}
	type cellKey struct {
		recipe string
		tasks  int
	}
	cells := map[cellKey][]Record{}
	var order []cellKey
	for _, r := range recs {
		k := cellKey{r.Recipe, r.Tasks}
		if _, ok := cells[k]; !ok {
			order = append(order, k)
		}
		cells[k] = append(cells[k], r)
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].recipe != order[j].recipe {
			return order[i].recipe < order[j].recipe
		}
		return order[i].tasks < order[j].tasks
	})
	const width = 44
	fmt.Fprintf(w, "%s — %s (bar = %s, full scale %.2f)\n", figure, metric, metric, maxVal)
	for _, k := range order {
		fmt.Fprintf(w, "%s (%d tasks)\n", k.recipe, k.tasks)
		group := cells[k]
		sort.Slice(group, func(i, j int) bool { return group[i].Paradigm < group[j].Paradigm })
		for _, r := range group {
			v, _ := metricOf(r, metric)
			n := int(v / maxVal * width)
			if n == 0 && v > 0 {
				n = 1
			}
			fmt.Fprintf(w, "  %-14s |%-*s| %10.2f\n", r.Paradigm, width, strings.Repeat("#", n), v)
		}
	}
	return nil
}

// Aggregate groups records by paradigm and averages a metric — the
// per-paradigm roll-up used in the conclusions.
func Aggregate(recs []Record, metric string) (map[string]float64, error) {
	sums := map[string]float64{}
	counts := map[string]int{}
	for _, r := range recs {
		v, err := metricOf(r, metric)
		if err != nil {
			return nil, err
		}
		sums[r.Paradigm] += v
		counts[r.Paradigm]++
	}
	out := make(map[string]float64, len(sums))
	for p, s := range sums {
		out[p] = s / float64(counts[p])
	}
	return out, nil
}
