package analysis

import (
	"context"
	"math"
	"strings"
	"testing"

	"wfserverless/internal/experiments"
)

// campaignCSV runs a tiny real suite and renders it to CSV, so the
// parser is tested against the actual producer.
func campaignCSV(t *testing.T) string {
	t.Helper()
	tn := experiments.DefaultTunables()
	tn.TimeScale = 0.002
	suite, err := experiments.Figure7(context.Background(),
		experiments.Sizes{Small: 20, Large: 30, Huge: 40}, 1, tn)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := experiments.WriteCSV(&b, suite); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func TestParseCSVRoundTrip(t *testing.T) {
	csv := campaignCSV(t)
	recs, err := ParseCSV(strings.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	// 7 recipes x 2 sizes x 2 paradigms
	if len(recs) != 28 {
		t.Fatalf("records = %d, want 28", len(recs))
	}
	for _, r := range recs {
		if r.Figure != "Figure7" {
			t.Fatalf("figure = %q", r.Figure)
		}
		if r.MakespanS <= 0 || r.MeanPowerW <= 0 {
			t.Fatalf("degenerate record: %+v", r)
		}
		if r.Paradigm != "Kn10wNoPM" && r.Paradigm != "LC10wNoPM" {
			t.Fatalf("paradigm = %q", r.Paradigm)
		}
	}
}

func TestParseCSVConcatenatedSuites(t *testing.T) {
	csv := campaignCSV(t)
	recs, err := ParseCSV(strings.NewReader(csv + csv))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 56 {
		t.Fatalf("records = %d, want 56 (repeated header skipped)", len(recs))
	}
}

func TestParseCSVBadField(t *testing.T) {
	bad := "figure,paradigm,workflow,recipe,tasks,group,makespan_s,mean_power_w,energy_j,mean_cpu_cores,max_cpu_cores,mean_busy_cores,mean_mem_gb,max_mem_gb,cold_starts,requests,failures,scale_stalls\n" +
		"F,P,W,R,notanint,1,1,1,1,1,1,1,1,1,1,1,1,1\n"
	if _, err := ParseCSV(strings.NewReader(bad)); err == nil {
		t.Fatal("bad int accepted")
	}
	short := "F,P,W\n"
	if _, err := ParseCSV(strings.NewReader(short)); err == nil {
		t.Fatal("short row accepted")
	}
}

func TestFiguresAndFilter(t *testing.T) {
	csv := campaignCSV(t)
	recs, _ := ParseCSV(strings.NewReader(csv))
	figs := Figures(recs)
	if len(figs) != 1 || figs[0] != "Figure7" {
		t.Fatalf("Figures = %v", figs)
	}
	if got := len(Filter(recs, "Figure7")); got != len(recs) {
		t.Fatalf("Filter dropped records: %d", got)
	}
	if got := len(Filter(recs, "nope")); got != 0 {
		t.Fatalf("Filter(nope) = %d", got)
	}
}

func TestRenderFigure(t *testing.T) {
	csv := campaignCSV(t)
	recs, _ := ParseCSV(strings.NewReader(csv))
	for _, metric := range Metrics {
		var b strings.Builder
		if err := RenderFigure(&b, recs, "Figure7", metric); err != nil {
			t.Fatalf("metric %s: %v", metric, err)
		}
		out := b.String()
		if !strings.Contains(out, "Kn10wNoPM") || !strings.Contains(out, "#") {
			t.Fatalf("metric %s render incomplete:\n%s", metric, out[:200])
		}
	}
	var b strings.Builder
	if err := RenderFigure(&b, recs, "Figure7", "nope"); err == nil {
		t.Fatal("unknown metric accepted")
	}
	if err := RenderFigure(&b, recs, "FigureX", "makespan_s"); err == nil {
		t.Fatal("unknown figure accepted")
	}
}

func TestAggregate(t *testing.T) {
	csv := campaignCSV(t)
	recs, _ := ParseCSV(strings.NewReader(csv))
	agg, err := Aggregate(recs, "mean_cpu_cores")
	if err != nil {
		t.Fatal(err)
	}
	kn, lc := agg["Kn10wNoPM"], agg["LC10wNoPM"]
	if math.IsNaN(kn) || math.IsNaN(lc) {
		t.Fatal("NaN aggregate")
	}
	// The headline: serverless uses far less CPU on average.
	if kn >= lc {
		t.Fatalf("aggregate CPU: kn=%v >= lc=%v", kn, lc)
	}
	if _, err := Aggregate(recs, "nope"); err == nil {
		t.Fatal("unknown metric accepted")
	}
}
