package analysis

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"wfserverless/internal/wfm"
)

// RenderGantt draws an execution trace as an ASCII Gantt chart: one row
// per function (grouped by phase, capped at maxRows with a summary of
// the rest), time flowing left to right across the run's wall span.
// This is the per-execution view the paper's artifact derives from its
// workflow_executions results.
func RenderGantt(w io.Writer, tr *wfm.Trace, maxRows int) error {
	if len(tr.Events) == 0 {
		return fmt.Errorf("analysis: empty trace")
	}
	if maxRows <= 0 {
		maxRows = 40
	}
	span := 0.0
	for _, ev := range tr.Events {
		if ev.EndMS > span {
			span = ev.EndMS
		}
	}
	if span == 0 {
		span = 1
	}
	const width = 60
	fmt.Fprintf(w, "%s — %d events over %.1f ms wall (makespan %.2f s nominal)\n",
		tr.Workflow, len(tr.Events), span, tr.Makespan)
	fmt.Fprintf(w, "%-34s %-*s\n", "function (phase)", width, "0"+strings.Repeat(" ", width-8)+"wall end")

	events := append([]wfm.TraceEvent(nil), tr.Events...)
	sort.Slice(events, func(i, j int) bool {
		if events[i].Phase != events[j].Phase {
			return events[i].Phase < events[j].Phase
		}
		if events[i].StartMS != events[j].StartMS {
			return events[i].StartMS < events[j].StartMS
		}
		return events[i].Name < events[j].Name
	})
	shown := 0
	skippedPerPhase := map[int]int{}
	rowsPerPhase := map[int]int{}
	perPhaseCap := maxRows / maxInt(1, countPhases(events))
	if perPhaseCap < 1 {
		perPhaseCap = 1
	}
	for _, ev := range events {
		if rowsPerPhase[ev.Phase] >= perPhaseCap {
			skippedPerPhase[ev.Phase]++
			continue
		}
		rowsPerPhase[ev.Phase]++
		shown++
		startCol := int(ev.StartMS / span * float64(width))
		endCol := int(ev.EndMS / span * float64(width))
		if endCol <= startCol {
			endCol = startCol + 1
		}
		if endCol > width {
			endCol = width
		}
		bar := strings.Repeat(" ", startCol) + strings.Repeat("=", endCol-startCol)
		marker := ""
		if ev.Error != "" {
			marker = " !ERR"
		}
		fmt.Fprintf(w, "%-34s|%-*s|%s\n", truncate(ev.Name, 30)+fmt.Sprintf(" (%d)", ev.Phase), width, bar, marker)
	}
	phases := make([]int, 0, len(skippedPerPhase))
	for p := range skippedPerPhase {
		phases = append(phases, p)
	}
	sort.Ints(phases)
	for _, p := range phases {
		fmt.Fprintf(w, "  ... phase %d: %d more function(s) not shown\n", p, skippedPerPhase[p])
	}
	_ = shown
	return nil
}

func countPhases(events []wfm.TraceEvent) int {
	seen := map[int]struct{}{}
	for _, ev := range events {
		seen[ev.Phase] = struct{}{}
	}
	return len(seen)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "~"
}
