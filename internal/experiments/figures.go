package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"

	"wfserverless/internal/recipes"
	"wfserverless/internal/wfgen"
)

// Sizes selects the workflow sizes per size class. The paper uses two
// sizes for fine-grained experiments and three (up to 1000 functions)
// for coarse-grained ones; the defaults here are scaled down so the
// whole evaluation runs in seconds, and the cmd/experiments tool can
// raise them to paper scale.
type Sizes struct {
	Small int
	Large int
	Huge  int
}

// DefaultSizes returns the scaled-down default sizes.
func DefaultSizes() Sizes { return Sizes{Small: 30, Large: 120, Huge: 300} }

func (s Sizes) of(class string) int {
	switch class {
	case "small":
		return s.Small
	case "large":
		return s.Large
	default:
		return s.Huge
	}
}

// generate builds one instance, clamping to the recipe's minimum.
func generate(recipe string, size int, seed int64) (*wfgen.Instance, error) {
	r, err := recipes.ForName(recipe)
	if err != nil {
		return nil, err
	}
	if size < r.MinTasks() {
		size = r.MinTasks()
	}
	spec := wfgen.Spec{Recipe: recipe, NumTasks: size, Seed: seed}
	w, err := wfgen.Generate(spec)
	if err != nil {
		return nil, err
	}
	return &wfgen.Instance{Spec: spec, Workflow: w}, nil
}

// runOne generates and executes a single experiment cell.
func runOne(ctx context.Context, id Paradigm, recipe string, size int, seed int64, tn Tunables) (*Measurement, error) {
	spec, err := ByID(id)
	if err != nil {
		return nil, err
	}
	inst, err := generate(recipe, size, seed)
	if err != nil {
		return nil, err
	}
	m, err := RunWorkflow(ctx, spec, inst.Workflow, tn)
	if m != nil {
		m.Recipe = recipe
		if r, rerr := recipes.ForName(recipe); rerr == nil {
			m.Group = r.Group()
		}
	}
	return m, err
}

// Characterization is one Figure 3 row: a workflow's structure.
type Characterization struct {
	Recipe      string
	Display     string
	Group       int
	Tasks       int
	Phases      int
	MaxWidth    int
	MeanWidth   float64
	PhaseWidths []int
	Categories  map[string]int
}

// Figure3 characterizes every workflow at the given size: DAG structure,
// functions per phase, and functions per type.
func Figure3(size int, seed int64) ([]Characterization, error) {
	var out []Characterization
	for _, r := range recipes.All() {
		inst, err := generate(r.Name(), size, seed)
		if err != nil {
			return nil, err
		}
		stats, err := inst.Workflow.ComputeStats()
		if err != nil {
			return nil, err
		}
		out = append(out, Characterization{
			Recipe:      r.Name(),
			Display:     r.DisplayName(),
			Group:       r.Group(),
			Tasks:       stats.Tasks,
			Phases:      stats.Phases,
			MaxWidth:    stats.MaxPhaseWidth,
			MeanWidth:   stats.MeanPhaseWidth,
			PhaseWidths: stats.PhaseWidths,
			Categories:  stats.Categories,
		})
	}
	return out, nil
}

// Suite is a set of measurements with a figure label.
type Suite struct {
	Figure       string
	Measurements []*Measurement
	// Errors records cells that did not complete (the paper notes some
	// large fine-grained runs hit resource limits), keyed by cell.
	Errors map[string]error
}

// runMatrix executes paradigms x recipes x sizes sequentially.
func runMatrix(ctx context.Context, figure string, ids []Paradigm, recipeNames []string, sizes []int, seed int64, tn Tunables) (*Suite, error) {
	s := &Suite{Figure: figure, Errors: make(map[string]error)}
	for _, recipe := range recipeNames {
		for _, size := range sizes {
			for _, id := range ids {
				if err := ctx.Err(); err != nil {
					return s, err
				}
				m, err := runOne(ctx, id, recipe, size, seed, tn)
				cell := fmt.Sprintf("%s/%s/%d", id, recipe, size)
				if err != nil {
					s.Errors[cell] = err
					if m != nil {
						s.Measurements = append(s.Measurements, m)
					}
					continue
				}
				s.Measurements = append(s.Measurements, m)
			}
		}
	}
	return s, nil
}

// Figure4 compares the serverless setups (Kn1wPM, Kn1wNoPM, Kn10wNoPM)
// on Blast and Epigenomics — the paper's two exemplar behaviours — at
// two sizes.
func Figure4(ctx context.Context, sz Sizes, seed int64, tn Tunables) (*Suite, error) {
	return runMatrix(ctx, "Figure 4",
		[]Paradigm{Kn1wPM, Kn1wNoPM, Kn10wNoPM},
		[]string{"blast", "epigenomics"},
		[]int{sz.Small, sz.Large}, seed, tn)
}

// Figure5 compares the local-container setups (LC1wPM, LC1wNoPM,
// LC10wNoPM, LC10wNoPMNoCR) on Blast and Epigenomics.
func Figure5(ctx context.Context, sz Sizes, seed int64, tn Tunables) (*Suite, error) {
	return runMatrix(ctx, "Figure 5",
		[]Paradigm{LC1wPM, LC1wNoPM, LC10wNoPM, LC10wNoPMNoCR},
		[]string{"blast", "epigenomics"},
		[]int{sz.Small, sz.Large}, seed, tn)
}

// Figure6 compares coarse-grained serverless and local containers on all
// seven workflows at three sizes.
func Figure6(ctx context.Context, sz Sizes, seed int64, tn Tunables) (*Suite, error) {
	return runMatrix(ctx, "Figure 6",
		[]Paradigm{Kn1000wPM, LC1000wPM},
		recipes.Names(),
		[]int{sz.Small, sz.Large, sz.Huge}, seed, tn)
}

// Figure7 is the headline comparison: the best serverless setup
// (Kn10wNoPM) against the directly comparable baseline (LC10wNoPM) on
// all seven workflows.
func Figure7(ctx context.Context, sz Sizes, seed int64, tn Tunables) (*Suite, error) {
	return runMatrix(ctx, "Figure 7",
		[]Paradigm{Kn10wNoPM, LC10wNoPM},
		recipes.Names(),
		[]int{sz.Small, sz.Large}, seed, tn)
}

// Reduction reports serverless savings relative to local containers for
// one workflow/size cell of Figure 7.
type Reduction struct {
	Recipe     string
	Size       int
	Group      int
	TimeRatio  float64 // Kn makespan / LC makespan (>1: serverless slower)
	PowerRatio float64 // Kn mean power / LC mean power
	CPUPct     float64 // 100 * (1 - Kn/LC), positive = serverless saves
	MemPct     float64
}

// Reductions pairs Kn10wNoPM and LC10wNoPM measurements from a Figure 7
// suite and derives the paper's headline percentages.
func Reductions(s *Suite) []Reduction {
	type key struct {
		recipe string
		tasks  int
	}
	kn := make(map[key]*Measurement)
	lc := make(map[key]*Measurement)
	for _, m := range s.Measurements {
		k := key{m.Recipe, m.Tasks}
		switch m.Paradigm {
		case Kn10wNoPM:
			kn[k] = m
		case LC10wNoPM:
			lc[k] = m
		}
	}
	var out []Reduction
	for k, km := range kn {
		lm, ok := lc[k]
		if !ok || lm.MakespanS == 0 || km.MakespanS == 0 {
			continue
		}
		out = append(out, Reduction{
			Recipe:     k.recipe,
			Size:       k.tasks,
			Group:      km.Group,
			TimeRatio:  km.MakespanS / lm.MakespanS,
			PowerRatio: km.MeanPowerW / lm.MeanPowerW,
			CPUPct:     100 * (1 - km.MeanCPUCores/lm.MeanCPUCores),
			MemPct:     100 * (1 - km.MeanMemGB/lm.MeanMemGB),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Recipe != out[j].Recipe {
			return out[i].Recipe < out[j].Recipe
		}
		return out[i].Size < out[j].Size
	})
	return out
}

// MaxReductions returns the "up to" headline numbers (max CPU and memory
// savings across cells), mirroring the paper's 78.11% / 73.92%.
func MaxReductions(reds []Reduction) (cpuPct, memPct float64) {
	for _, r := range reds {
		if r.CPUPct > cpuPct {
			cpuPct = r.CPUPct
		}
		if r.MemPct > memPct {
			memPct = r.MemPct
		}
	}
	return cpuPct, memPct
}

// WriteTable renders a suite as an aligned text table, one row per
// measurement — the rows behind the paper's figure panels.
func WriteTable(w io.Writer, s *Suite) error {
	if _, err := fmt.Fprintf(w, "== %s ==\n", s.Figure); err != nil {
		return err
	}
	fmt.Fprintf(w, "%-14s %-28s %6s %10s %9s %9s %9s %8s %6s %6s\n",
		"paradigm", "workflow", "tasks", "makespan_s", "power_W", "cpu_cores", "mem_GB", "energy_J", "cold", "fail")
	for _, m := range s.Measurements {
		fmt.Fprintf(w, "%-14s %-28s %6d %10.2f %9.1f %9.2f %9.2f %8.0f %6d %6d\n",
			m.Paradigm, m.Workflow, m.Tasks, m.MakespanS, m.MeanPowerW,
			m.MeanCPUCores, m.MeanMemGB, m.EnergyJ, m.ColdStarts, m.Failures)
	}
	if len(s.Errors) > 0 {
		cells := make([]string, 0, len(s.Errors))
		for c := range s.Errors {
			cells = append(cells, c)
		}
		sort.Strings(cells)
		fmt.Fprintf(w, "incomplete cells (resource limits, as in the paper):\n")
		for _, c := range cells {
			fmt.Fprintf(w, "  %s: %v\n", c, s.Errors[c])
		}
	}
	return nil
}

// WriteCSV renders a suite as CSV.
func WriteCSV(w io.Writer, s *Suite) error {
	if _, err := fmt.Fprintln(w, "figure,paradigm,workflow,recipe,tasks,group,makespan_s,mean_power_w,energy_j,mean_cpu_cores,max_cpu_cores,mean_busy_cores,mean_mem_gb,max_mem_gb,cold_starts,requests,failures,scale_stalls"); err != nil {
		return err
	}
	for _, m := range s.Measurements {
		if _, err := fmt.Fprintf(w, "%s,%s,%s,%s,%d,%d,%.3f,%.2f,%.1f,%.3f,%.3f,%.3f,%.4f,%.4f,%d,%d,%d,%d\n",
			strings.ReplaceAll(s.Figure, " ", ""), m.Paradigm, m.Workflow, m.Recipe, m.Tasks, m.Group,
			m.MakespanS, m.MeanPowerW, m.EnergyJ, m.MeanCPUCores, m.MaxCPUCores, m.MeanBusyCores,
			m.MeanMemGB, m.MaxMemGB, m.ColdStarts, m.Requests, m.Failures, m.ScaleStalls); err != nil {
			return err
		}
	}
	return nil
}

// WriteCharacterization renders Figure 3 as text.
func WriteCharacterization(w io.Writer, chars []Characterization) error {
	if _, err := fmt.Fprintln(w, "== Figure 3: workflow characterization =="); err != nil {
		return err
	}
	for _, c := range chars {
		fmt.Fprintf(w, "%-12s group=%d tasks=%-4d phases=%-3d maxWidth=%-4d meanWidth=%.1f\n",
			c.Display, c.Group, c.Tasks, c.Phases, c.MaxWidth, c.MeanWidth)
		fmt.Fprintf(w, "  phase widths: %v\n", c.PhaseWidths)
		cats := make([]string, 0, len(c.Categories))
		for name := range c.Categories {
			cats = append(cats, name)
		}
		sort.Strings(cats)
		fmt.Fprintf(w, "  functions by type:")
		for _, name := range cats {
			fmt.Fprintf(w, " %s=%d", name, c.Categories[name])
		}
		fmt.Fprintln(w)
	}
	return nil
}
