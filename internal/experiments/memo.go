package experiments

// This file implements the memoization campaign: the acceptance
// experiment for content-addressed task memoization and incremental
// re-execution. Each scheduling mode runs a four-variant sequence over
// one persistent drive + memo cache, modelling how a scientist iterates
// on a workflow:
//
//	cold   — empty cache, everything executes, the cache fills.
//	rerun  — nothing changed: zero invocations, every task memoized.
//	edit1  — one task edited: exactly that task and its transitive
//	         descendants re-execute, nothing else.
//	editk  — k further tasks edited: exactly the union of their
//	         descendant closures re-executes.
//
// Every variant checks two invariants against ground truth from the
// counting stub: the re-invoked set equals the predicted edit closure
// EXACTLY (no stragglers, no spurious re-runs), and the final drive
// state matches an uninterrupted from-scratch run of the same
// (edited) workflow on a fresh drive.

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"slices"
	"sort"
	"time"

	"wfserverless/internal/memo"
	"wfserverless/internal/wfm"
)

// MemoConfig parameterizes the memoization campaign.
type MemoConfig struct {
	// Tasks is the synthetic workflow size (default 400).
	Tasks int
	// Width is tasks per layer of the random DAG shape (default 32).
	Width int
	// EditTasks is k for the k-edit variant (default 8).
	EditTasks int
	// Seed drives the DAG shape and the edit choices.
	Seed int64
	// MaxParallel bounds simultaneous invocations (default 64).
	MaxParallel int
	// TimeScale compresses nominal seconds (default 0.002).
	TimeScale float64
	// Batching runs the campaign through the batched invocation
	// pipeline; memoization sits above the transport, so the edit-scope
	// invariants must hold identically.
	Batching wfm.BatchOptions
}

func (c MemoConfig) withDefaults() MemoConfig {
	if c.Tasks == 0 {
		c.Tasks = 400
	}
	if c.Width == 0 {
		c.Width = 32
	}
	if c.EditTasks == 0 {
		c.EditTasks = 8
	}
	if c.Seed == 0 {
		c.Seed = 11
	}
	if c.MaxParallel == 0 {
		c.MaxParallel = 64
	}
	if c.TimeScale == 0 {
		c.TimeScale = 0.002
	}
	return c
}

// MemoMeasurement reports one variant of the campaign.
type MemoMeasurement struct {
	Scheduling string
	Variant    string
	Tasks      int

	// Edited is how many tasks were perturbed before this run;
	// Expected is the size of their descendant closure — the exact
	// number of invocations an incremental engine should issue.
	Edited   int
	Expected int
	// Invocations is what the stub actually saw during this run.
	Invocations int

	// From the run's MemoReport.
	Hits         int
	Misses       int
	SkippedBytes int64

	// Exact reports the re-invoked task set equals the predicted edit
	// closure, member for member.
	Exact bool
	// DriveMatch reports the drive equals a from-scratch reference run
	// of the same workflow state.
	DriveMatch bool

	Wall time.Duration
}

// Memo runs the campaign in both scheduling modes.
func Memo(ctx context.Context, cfg MemoConfig) ([]MemoMeasurement, error) {
	cfg = cfg.withDefaults()
	var out []MemoMeasurement
	for _, mode := range []wfm.Scheduling{wfm.SchedulePhases, wfm.ScheduleDependency} {
		ms, err := memoSequence(ctx, cfg, mode)
		if err != nil {
			return out, err
		}
		out = append(out, ms...)
	}
	return out, nil
}

// snapshot copies the per-task counts for before/after diffing.
func (c *invocationCounter) snapshot() map[string]int {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int, len(c.n))
	for k, v := range c.n {
		out[k] = v
	}
	return out
}

// memoSequence runs cold → rerun → edit1 → editk over one drive and
// one cache file, reopening the cache between variants so every probe
// exercises the durable on-disk format, not a warm in-memory index.
func memoSequence(ctx context.Context, cfg MemoConfig, mode wfm.Scheduling) ([]MemoMeasurement, error) {
	rcfg := RecoveryConfig{
		Tasks: cfg.Tasks, Width: cfg.Width, Seed: cfg.Seed,
		MaxParallel: cfg.MaxParallel, TimeScale: cfg.TimeScale, Batching: cfg.Batching,
	}
	env, err := newRecoveryEnv(rcfg, false, 0)
	if err != nil {
		return nil, err
	}
	defer env.Close()

	dir, err := os.MkdirTemp("", "wfm-memo-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	cachePath := filepath.Join(dir, "memo.cache")

	// The descendant closure is pure DAG structure; edits don't change
	// it, so one compile serves every variant's prediction.
	csr, _, err := env.w.Compile()
	if err != nil {
		return nil, err
	}
	children := make(map[string][]string, csr.Len())
	names := make([]string, 0, csr.Len())
	for _, id := range csr.TopoOrder() {
		names = append(names, csr.Name(id))
		for _, ch := range csr.Children(id) {
			children[csr.Name(id)] = append(children[csr.Name(id)], csr.Name(ch))
		}
	}
	sort.Strings(names)
	closure := func(roots []string) map[string]bool {
		out := make(map[string]bool)
		stack := append([]string(nil), roots...)
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if out[n] {
				continue
			}
			out[n] = true
			stack = append(stack, children[n]...)
		}
		return out
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	edit := func(name string) {
		env.w.Tasks[name].Command.Arguments[0].CPUWork += 1
	}
	// The edit sets of the two edit variants are disjoint: edit1's task
	// keeps its (already cached) edited fingerprint through editk, so
	// only the fresh edits' closure re-executes there.
	perm := rng.Perm(len(names))
	edit1Set := []string{names[perm[0]]}
	k := cfg.EditTasks
	if k > len(names)-1 {
		k = len(names) - 1
	}
	editkSet := make([]string, 0, k)
	for _, i := range perm[1 : 1+k] {
		editkSet = append(editkSet, names[i])
	}

	variants := []struct {
		name  string
		edits []string
	}{
		{"cold", nil},
		{"rerun", nil},
		{"edit1", edit1Set},
		{"editk", editkSet},
	}

	var out []MemoMeasurement
	for i, v := range variants {
		for _, name := range v.edits {
			edit(name)
		}
		var expect map[string]bool
		switch {
		case v.name == "cold":
			expect = closure(names) // everything
		case len(v.edits) == 0:
			expect = map[string]bool{}
		default:
			expect = closure(v.edits)
		}
		m, err := memoVariant(ctx, rcfg, mode, env, cachePath, v.name, len(v.edits), expect)
		if err != nil {
			return out, fmt.Errorf("experiments: memo %s variant %d (%s): %w", mode, i, v.name, err)
		}
		out = append(out, *m)
	}
	return out, nil
}

// memoVariant runs the workflow's current state once against the cache
// file and checks the exact-edit-scope and drive-convergence invariants.
func memoVariant(ctx context.Context, rcfg RecoveryConfig, mode wfm.Scheduling, env *recoveryEnv,
	cachePath, variant string, edited int, expect map[string]bool) (*MemoMeasurement, error) {
	c, err := memo.Open(cachePath)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	mgr, err := recoveryManager(rcfg, mode, env, nil, c, nil)
	if err != nil {
		return nil, err
	}
	before := env.counts.snapshot()
	start := time.Now()
	res, err := mgr.Run(ctx, env.w)
	if err != nil {
		return nil, err
	}
	wall := time.Since(start)
	after := env.counts.snapshot()

	invoked := make(map[string]bool)
	total := 0
	for name, n := range after {
		if d := n - before[name]; d > 0 {
			invoked[name] = true
			total += d
		}
	}
	exact := len(invoked) == len(expect) && total == len(expect)
	for name := range expect {
		if !invoked[name] {
			exact = false
		}
	}

	// Reference: the same workflow state from scratch on a fresh world.
	ref, err := memoReference(ctx, rcfg, mode, env)
	if err != nil {
		return nil, err
	}

	m := &MemoMeasurement{
		Scheduling:  mode.String(),
		Variant:     variant,
		Tasks:       rcfg.Tasks,
		Edited:      edited,
		Expected:    len(expect),
		Invocations: total,
		Exact:       exact,
		DriveMatch:  slices.Equal(ref, env.drive.List()),
		Wall:        wall,
	}
	if res.Memo != nil {
		m.Hits = int(res.Memo.Hits)
		m.Misses = int(res.Memo.Misses)
		m.SkippedBytes = res.Memo.SkippedOutputBytes
	}
	return m, nil
}

// memoReference runs the env's current workflow state uninterrupted on
// a fresh drive (no cache) and returns the resulting drive listing.
// Edits are replayed onto the fresh env by copying the live CPUWork
// values, so the reference reflects exactly the state under test.
func memoReference(ctx context.Context, rcfg RecoveryConfig, mode wfm.Scheduling, env *recoveryEnv) ([]string, error) {
	ref, err := newRecoveryEnv(rcfg, false, 0)
	if err != nil {
		return nil, err
	}
	defer ref.Close()
	for name, t := range env.w.Tasks {
		ref.w.Tasks[name].Command.Arguments[0].CPUWork = t.Command.Arguments[0].CPUWork
	}
	m, err := recoveryManager(rcfg, mode, ref, nil, nil, nil)
	if err != nil {
		return nil, err
	}
	if _, err := m.Run(ctx, ref.w); err != nil {
		return nil, fmt.Errorf("memo reference: %w", err)
	}
	return ref.drive.List(), nil
}

// WriteMemoTable renders the measurements as an aligned table.
func WriteMemoTable(w io.Writer, ms []MemoMeasurement) error {
	if _, err := fmt.Fprintf(w, "%-12s %-7s %6s %7s %9s %8s %7s %7s %13s %6s %10s %10s\n",
		"scheduling", "variant", "tasks", "edited", "expected", "invoked", "hits", "misses", "skippedBytes", "exact", "driveMatch", "wall"); err != nil {
		return err
	}
	for _, m := range ms {
		if _, err := fmt.Fprintf(w, "%-12s %-7s %6d %7d %9d %8d %7d %7d %13d %6t %10t %10s\n",
			m.Scheduling, m.Variant, m.Tasks, m.Edited, m.Expected, m.Invocations,
			m.Hits, m.Misses, m.SkippedBytes, m.Exact, m.DriveMatch, m.Wall.Round(time.Millisecond)); err != nil {
			return err
		}
	}
	return nil
}
