package experiments

import (
	"context"
	"runtime"
	"strings"
	"testing"
	"time"

	"wfserverless/internal/wfbench"
	"wfserverless/internal/wfm"
)

// TestResilienceSurvivesFaultyEndpoint is the ISSUE's acceptance
// experiment: an aggressive fault profile (error rate >= 0.3 plus
// latency spikes and overload rejections) must not fail a single task
// in either scheduling mode — the retry layer and breaker absorb it.
func TestResilienceSurvivesFaultyEndpoint(t *testing.T) {
	before := runtime.NumGoroutine()
	cfg := ResilienceConfig{
		Recipe:    "blast",
		NumTasks:  40,
		TimeScale: 0.002,
		Profile: wfbench.FaultProfile{
			ErrorRate:     0.3,
			RejectRate:    0.05,
			RetryAfter:    0.005,
			LatencyRate:   0.2,
			Latency:       2 * time.Millisecond,
			LatencyJitter: 2 * time.Millisecond,
			Seed:          13,
		},
		Retries:      10,
		RetryBackoff: 0.5,
		TaskTimeout:  300,
		Breaker: wfm.BreakerOptions{
			Enabled:          true,
			FailureThreshold: 0.95, // armed but must not trip on this mix
			MinSamples:       20,
		},
	}
	ms, err := Resilience(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 {
		t.Fatalf("got %d measurements, want one per scheduling mode", len(ms))
	}
	modes := map[string]bool{}
	for _, m := range ms {
		modes[m.Scheduling] = true
		if m.Failed != 0 {
			t.Fatalf("%s: %d tasks failed through the resilience layer", m.Scheduling, m.Failed)
		}
		if m.Faults.Errors == 0 {
			t.Fatalf("%s: injector fired no faults: %+v", m.Scheduling, m.Faults)
		}
		if m.Retries == 0 {
			t.Fatalf("%s: no retries recorded despite %d injected errors", m.Scheduling, m.Faults.Errors)
		}
		if m.Attempts != m.Tasks+m.Retries {
			t.Fatalf("%s: attempts %d != tasks %d + retries %d", m.Scheduling, m.Attempts, m.Tasks, m.Retries)
		}
	}
	if !modes["phases"] || !modes["dependency"] {
		t.Fatalf("modes covered: %v", modes)
	}

	var buf strings.Builder
	if err := WriteResilienceTable(&buf, ms); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "dependency") || !strings.Contains(buf.String(), "phases") {
		t.Fatalf("table missing modes:\n%s", buf.String())
	}

	// Both experiment runs torn down: no lingering goroutines.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: before=%d now=%d", before, runtime.NumGoroutine())
}

// TestResilienceBreakerOpensOnDeadService: total outage with a hair
// trigger — the breaker must actually open and the error must surface.
func TestResilienceBreakerOpensOnDeadService(t *testing.T) {
	cfg := ResilienceConfig{
		Recipe:    "seismology",
		NumTasks:  20,
		TimeScale: 0.002,
		Profile:   wfbench.FaultProfile{ErrorRate: 1, Seed: 3},
		Retries:   2,
		Breaker: wfm.BreakerOptions{
			Enabled:          true,
			Window:           8,
			FailureThreshold: 0.5,
			MinSamples:       4,
			Cooldown:         1000,
		},
	}
	_, err := Resilience(context.Background(), cfg)
	if err == nil {
		t.Fatal("fully-dead endpoint reported success")
	}
}
