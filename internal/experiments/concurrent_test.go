package experiments

import (
	"context"
	"testing"

	"wfserverless/internal/wfformat"
)

func TestRunConcurrentNeedsWorkflows(t *testing.T) {
	spec, _ := ByID(Kn10wNoPM)
	if _, err := RunConcurrent(context.Background(), spec, nil, fastTunables()); err == nil {
		t.Fatal("empty workflow list accepted")
	}
}

// TestConcurrentServerlessInterleaves is the paper's Section VII
// conjecture: submitting several workflows at once to the serverless
// platform overlaps them, finishing well before the serialized sum of
// their solo makespans.
func TestConcurrentServerlessInterleaves(t *testing.T) {
	tn := fastTunables()
	spec, _ := ByID(Kn10wNoPM)
	var wfs []*wfformat.Workflow
	for _, recipe := range []string{"blast", "seismology", "srasearch"} {
		inst := mustGen(t, recipe, 40)
		wfs = append(wfs, inst.Workflow)
	}
	m, err := RunConcurrent(context.Background(), spec, wfs, tn)
	if err != nil {
		t.Fatal(err)
	}
	if m.Tasks != wfs[0].Len()+wfs[1].Len()+wfs[2].Len() {
		t.Fatalf("tasks = %d", m.Tasks)
	}
	if m.Interleave >= 0.9 {
		t.Errorf("interleave = %.2f, want well below 1 (overlapped execution)", m.Interleave)
	}
	if m.MakespanS <= 0 || m.MeanPowerW <= 0 {
		t.Fatalf("measurement = %+v", m)
	}
	if m.Failures != 0 {
		t.Fatalf("failures = %d", m.Failures)
	}
}
