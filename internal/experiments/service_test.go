package experiments

import (
	"context"
	"strings"
	"testing"
	"time"
)

// TestServiceCampaign is the CI-sized multi-run control-plane
// acceptance experiment: the full three phases (fairness/quota,
// backpressure, crash recovery) at default dimensions — small enough
// for CI, large enough for the contested-grant ratio to converge.
func TestServiceCampaign(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	rep, err := Service(ctx, ServiceConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.GateQuota {
		t.Errorf("run quota gate: highwater heavy=%d light=%d, quota %d",
			rep.HeavyHighwater, rep.LightHighwater, rep.RunQuota)
	}
	if !rep.GateFairShare {
		t.Errorf("fair-share gate: contested ratio %.2f (heavy=%d light=%d), target %.2f +-15%%",
			rep.ContestedRatio, rep.HeavyContested, rep.LightContested, rep.TargetRatio)
	}
	if !rep.GateBackpressure {
		t.Errorf("backpressure gate: 429s=%d retry-after=%q drained=%d",
			rep.Submitted429, rep.RetryAfterHdr, rep.DrainedRuns)
	}
	if !rep.GateRecovery {
		t.Errorf("recovery gate: %d/%d succeeded, resumed=%d, journalled=%d, duplicates=%d",
			rep.RecoveredSucceeded, rep.RecoveryRuns, rep.ResumedRuns,
			rep.CrashCompleted, rep.DuplicateInvocations)
	}
	var sb strings.Builder
	if err := WriteServiceReport(&sb, rep); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"fairness/quota", "backpressure", "recovery", "[PASS]"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("report missing %q:\n%s", want, sb.String())
		}
	}
}
