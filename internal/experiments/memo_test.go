package experiments

import (
	"context"
	"strings"
	"testing"

	"wfserverless/internal/wfbench"
	"wfserverless/internal/wfm"
)

// TestMemoCampaignSmall drives the full four-variant sequence in both
// scheduling modes on a small workflow and asserts the campaign's own
// invariants hold: exact edit closures and drive convergence on every
// row, a zero-invocation unchanged re-run, and strictly fewer
// invocations than tasks on the edit rows.
func TestMemoCampaignSmall(t *testing.T) {
	ms, err := Memo(context.Background(), MemoConfig{
		Tasks: 80, Width: 10, EditTasks: 4, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 8 { // 4 variants x 2 modes
		t.Fatalf("got %d measurements, want 8", len(ms))
	}
	for _, m := range ms {
		if !m.Exact {
			t.Errorf("%s/%s: re-invoked set != edit closure (expected %d, invoked %d)",
				m.Scheduling, m.Variant, m.Expected, m.Invocations)
		}
		if !m.DriveMatch {
			t.Errorf("%s/%s: drive diverged from reference run", m.Scheduling, m.Variant)
		}
		switch m.Variant {
		case "cold":
			if m.Invocations != m.Tasks || m.Hits != 0 {
				t.Errorf("cold: invocations=%d hits=%d, want %d/0", m.Invocations, m.Hits, m.Tasks)
			}
		case "rerun":
			if m.Invocations != 0 || m.Hits != m.Tasks {
				t.Errorf("rerun: invocations=%d hits=%d, want 0/%d", m.Invocations, m.Hits, m.Tasks)
			}
			if m.SkippedBytes == 0 {
				t.Error("rerun skipped no output bytes")
			}
		case "edit1", "editk":
			if m.Invocations == 0 || m.Invocations >= m.Tasks {
				t.Errorf("%s: invocations=%d, want in (0, %d)", m.Variant, m.Invocations, m.Tasks)
			}
			if m.Hits+m.Invocations != m.Tasks {
				t.Errorf("%s: hits %d + invoked %d != tasks %d", m.Variant, m.Hits, m.Invocations, m.Tasks)
			}
		}
	}
}

// TestMemoCampaignBatched: memoization sits above the batching
// transport; the edit-scope invariants must hold through it unchanged.
func TestMemoCampaignBatched(t *testing.T) {
	ms, err := Memo(context.Background(), MemoConfig{
		Tasks: 60, Width: 8, EditTasks: 3, Seed: 5,
		Batching: wfm.BatchOptions{Enabled: true, MaxTasks: 16},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range ms {
		if !m.Exact || !m.DriveMatch {
			t.Errorf("%s/%s batched: exact=%t driveMatch=%t", m.Scheduling, m.Variant, m.Exact, m.DriveMatch)
		}
	}
}

// TestRecoveryWithMemoize: crash/resume with both the journal and the
// memo cache enabled — the zero-duplicate invariant extends to
// memoized tasks.
func TestRecoveryWithMemoize(t *testing.T) {
	ts, err := Recovery(context.Background(), RecoveryConfig{
		Tasks: 100, Width: 10, Trials: 1, Seed: 9, Memoize: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range ts {
		if tr.DuplicateInvocations != 0 {
			t.Errorf("%s faults=%t: %d duplicate invocations", tr.Scheduling, tr.Faults, tr.DuplicateInvocations)
		}
		if !tr.DriveMatch {
			t.Errorf("%s faults=%t: drive diverged", tr.Scheduling, tr.Faults)
		}
	}
}

// TestResilienceMemoizedRerun: the warm re-run behind a fault injector
// is served wholly from the cache — memoization makes re-runs immune to
// endpoint flakiness.
func TestResilienceMemoizedRerun(t *testing.T) {
	ms, err := Resilience(context.Background(), ResilienceConfig{
		Recipe:    "blast",
		NumTasks:  30,
		TimeScale: 0.002,
		Profile:   wfbench.FaultProfile{ErrorRate: 0.2, Seed: 17},
		Retries:   10,
		Memoize:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range ms {
		if m.MemoHits != m.Tasks || m.MemoMisses != 0 {
			t.Errorf("%s: warm re-run hits=%d misses=%d, want %d/0",
				m.Scheduling, m.MemoHits, m.MemoMisses, m.Tasks)
		}
	}
}

func TestWriteMemoTable(t *testing.T) {
	ms := []MemoMeasurement{{
		Scheduling: "dependency", Variant: "edit1", Tasks: 400,
		Edited: 1, Expected: 17, Invocations: 17, Hits: 383,
		SkippedBytes: 383, Exact: true, DriveMatch: true,
	}}
	var sb strings.Builder
	if err := WriteMemoTable(&sb, ms); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"variant", "edit1", "driveMatch", "383"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
}
