package experiments

import (
	"context"
	"testing"
	"time"
)

// TestRecoveryCampaign is the CI-sized version of the crash/resume
// acceptance experiment: small workflow, one randomized crash point per
// cell, all four {scheduling} x {faults} cells. Every trial must
// converge to the reference drive state with zero duplicate invocations
// of journal-recorded tasks.
func TestRecoveryCampaign(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	trials, err := Recovery(ctx, RecoveryConfig{
		Tasks:  60,
		Width:  12,
		Trials: 1,
		Seed:   11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := 4; len(trials) != want {
		t.Fatalf("got %d trials, want %d", len(trials), want)
	}
	for _, tr := range trials {
		if !tr.DriveMatch {
			t.Errorf("%s faults=%t trial %d (crash after %d): resumed drive state diverged from reference",
				tr.Scheduling, tr.Faults, tr.Trial, tr.CrashAfter)
		}
		if tr.DuplicateInvocations != 0 {
			t.Errorf("%s faults=%t trial %d: %d recovered task(s) were invoked again after resume",
				tr.Scheduling, tr.Faults, tr.Trial, tr.DuplicateInvocations)
		}
		if tr.RecordedCompleted == 0 {
			t.Errorf("%s faults=%t trial %d: journal recorded no completions before a crash at %d",
				tr.Scheduling, tr.Faults, tr.Trial, tr.CrashAfter)
		}
	}
}
