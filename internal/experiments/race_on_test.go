//go:build race

package experiments

// raceTimeFactor stretches test time scales under the race detector,
// whose instrumentation slows goroutine scheduling enough to drown
// millisecond-scale timing signals.
const raceTimeFactor = 5.0
