package experiments

import (
	"context"
	"strings"
	"testing"

	"wfserverless/internal/wfbench"
)

// TestEveryParadigmExecutes runs one small workflow through all nine
// Table II paradigms end to end — the smoke version of the full
// 140-experiment campaign.
func TestEveryParadigmExecutes(t *testing.T) {
	tn := fastTunables()
	inst := mustGen(t, "bwa", 25)
	for _, spec := range All() {
		spec := spec
		t.Run(string(spec.ID), func(t *testing.T) {
			m, err := RunWorkflow(context.Background(), spec, inst.Workflow, tn)
			if err != nil {
				t.Fatalf("%s: %v", spec.ID, err)
			}
			if m.Requests != int64(inst.Workflow.Len()) {
				t.Fatalf("%s served %d of %d", spec.ID, m.Requests, inst.Workflow.Len())
			}
			if m.Failures != 0 {
				t.Fatalf("%s failures = %d", spec.ID, m.Failures)
			}
			if m.MakespanS <= 0 || m.MeanPowerW <= 0 || m.MeanCPUCores <= 0 {
				t.Fatalf("%s degenerate measurement: %+v", spec.ID, m)
			}
			// Coarse paradigms must not autoscale.
			if spec.Coarse && m.ColdStarts > 1 {
				t.Fatalf("%s cold starts = %d", spec.ID, m.ColdStarts)
			}
			// Fine serverless must scale from zero.
			if spec.Kind == KindKnative && !spec.Coarse && m.ColdStarts == 0 {
				t.Fatalf("%s recorded no cold starts", spec.ID)
			}
		})
	}
}

// TestBurnEngineEndToEnd runs a small workflow with the real busy-spin
// engine through the whole pipeline — platform, WFM, telemetry — to
// confirm nothing depends on the simulated engine.
func TestBurnEngineEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("burn engine e2e skipped in -short")
	}
	tn := fastTunables()
	spec, _ := ByID(Kn10wNoPM)
	cfg, err := SessionConfig(spec, tn)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Engine = wfbench.BurnEngine{}
	inst := mustGen(t, "seismology", 10)
	// RunWorkflow builds its own session; use core directly via the
	// SessionConfig instead.
	sess, err := newSessionForTest(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	res, err := sess.Run(context.Background(), inst.Workflow)
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan <= 0 {
		t.Fatal("no makespan with burn engine")
	}
}

// TestFigureSuitesSmoke runs every figure suite at tiny sizes.
func TestFigureSuitesSmoke(t *testing.T) {
	tn := fastTunables()
	sz := Sizes{Small: 15, Large: 25, Huge: 35}
	for name, f := range map[string]func(context.Context, Sizes, int64, Tunables) (*Suite, error){
		"fig4": Figure4, "fig5": Figure5, "fig6": Figure6, "fig7": Figure7,
	} {
		s, err := f(context.Background(), sz, 1, tn)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(s.Errors) > 0 {
			t.Fatalf("%s incomplete cells: %v", name, s.Errors)
		}
		if len(s.Measurements) == 0 {
			t.Fatalf("%s produced nothing", name)
		}
		var tbl strings.Builder
		if err := WriteTable(&tbl, s); err != nil {
			t.Fatalf("%s render: %v", name, err)
		}
	}
}
