package experiments

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"wfserverless/internal/health"
	"wfserverless/internal/journal"
	"wfserverless/internal/memo"
	"wfserverless/internal/sharedfs"
	"wfserverless/internal/translator"
	"wfserverless/internal/wfbench"
	"wfserverless/internal/wfformat"
	"wfserverless/internal/wfgen"
	"wfserverless/internal/wfm"
)

// HealthConfig parameterizes the straggler campaign: one workflow run
// twice per scheduling mode against a latency-injecting endpoint —
// once with the run-health plane off (the tail is simply waited out)
// and once with straggler detection plus speculative retry — with the
// durable journal and memo cache on in both runs so the campaign also
// proves speculation never double-records a task.
type HealthConfig struct {
	// Recipe / NumTasks / Seed pick the workflow (defaults: blast, 24, 1).
	Recipe   string
	NumTasks int
	Seed     int64

	// TimeScale compresses nominal durations (default 0.005).
	TimeScale float64
	// Workers sizes the WfBench service pool (default 16).
	Workers int

	// Latency is the injected wall-clock delay; each distinct task name
	// is delayed at most once (LatencyOnce), so a speculative backup
	// lands on the fast path — the bad-placement straggler model.
	// Default 1s.
	Latency time.Duration
	// LatencyAfter passes the first N requests undelayed so the
	// endpoint's latency baseline forms before the tail appears
	// (default 6).
	LatencyAfter int

	// StragglerFactor and MinSamples configure detection (defaults 3
	// and 4, see wfm.HealthOptions).
	StragglerFactor float64
	MinSamples      int

	// Manager knobs (nominal seconds); zero values use the same
	// defaults as the resilience campaign.
	InputWait   float64
	MaxParallel int
}

func (c HealthConfig) withDefaults() HealthConfig {
	if c.Recipe == "" {
		c.Recipe = "blast"
	}
	if c.NumTasks == 0 {
		c.NumTasks = 24
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.TimeScale == 0 {
		c.TimeScale = 0.005
	}
	if c.Workers == 0 {
		c.Workers = 16
	}
	if c.Latency == 0 {
		c.Latency = time.Second
	}
	if c.LatencyAfter == 0 {
		c.LatencyAfter = 6
	}
	if c.StragglerFactor == 0 {
		c.StragglerFactor = 3
	}
	if c.MinSamples == 0 {
		c.MinSamples = 4
	}
	if c.InputWait == 0 {
		c.InputWait = 30
	}
	if c.MaxParallel == 0 {
		c.MaxParallel = 512
	}
	return c
}

// HealthMeasurement records one scheduling mode's detection-off /
// detection-on pair.
type HealthMeasurement struct {
	Scheduling string
	Workflow   string
	Tasks      int

	// BaselineWall is the detection-off run (the tail waited out);
	// HealthWall the run with straggler detection + speculative retry.
	BaselineWall   time.Duration
	HealthWall     time.Duration
	ImprovementPct float64

	// Injected is the delayed-task ground truth from the health run's
	// injector; Flagged what the watchdog caught. A passing campaign
	// has Flagged ⊇ Injected.
	Injected []string
	Flagged  []string

	SpeculativeRetries int64
	SpeculativeWins    int64

	// Journal accounting for the health run: terminal records must
	// equal tasks (+header/tail) even though speculation raced
	// duplicate attempts.
	JournalCompleted int
	TerminalRecords  int

	// Endpoints is the health run's per-endpoint baseline table.
	Endpoints []health.EndpointStats
}

// Missing returns the injected task names the watchdog failed to flag.
func (m *HealthMeasurement) Missing() []string {
	flagged := map[string]bool{}
	for _, f := range m.Flagged {
		flagged[f] = true
	}
	var missing []string
	for _, n := range m.Injected {
		if !flagged[n] {
			missing = append(missing, n)
		}
	}
	return missing
}

// HealthCampaign runs the straggler experiment in both scheduling
// modes. Each run gets a fresh drive, service, injector (same seed and
// profile), journal, and memo cache, so the detection-off and
// detection-on runs face statistically identical adversity.
func HealthCampaign(ctx context.Context, cfg HealthConfig) ([]HealthMeasurement, error) {
	cfg = cfg.withDefaults()
	base, err := wfgen.Generate(wfgen.Spec{Recipe: cfg.Recipe, NumTasks: cfg.NumTasks, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	var out []HealthMeasurement
	for _, mode := range []wfm.Scheduling{wfm.SchedulePhases, wfm.ScheduleDependency} {
		m, err := healthRun(ctx, cfg, base, mode)
		if err != nil {
			return out, err
		}
		out = append(out, *m)
	}
	return out, nil
}

// healthCell executes one run; detect switches the health plane on.
// It returns the run result, the injector (for DelayedNames), and the
// journal directory for post-mortem accounting.
func healthCell(ctx context.Context, cfg HealthConfig, base *wfformat.Workflow, mode wfm.Scheduling, detect bool) (*wfm.Result, *wfbench.Injector, string, error) {
	drive := sharedfs.NewMem()
	bench, err := wfbench.New(wfbench.Config{Drive: drive, TimeScale: cfg.TimeScale})
	if err != nil {
		return nil, nil, "", err
	}
	svc, err := wfbench.NewService(bench, cfg.Workers)
	if err != nil {
		return nil, nil, "", err
	}
	defer svc.Close()
	inj, err := wfbench.NewInjector(svc, wfbench.FaultProfile{
		LatencyRate:  1,
		Latency:      cfg.Latency,
		LatencyAfter: cfg.LatencyAfter,
		LatencyOnce:  true,
		Seed:         cfg.Seed,
	})
	if err != nil {
		return nil, nil, "", err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, nil, "", err
	}
	srv := &http.Server{Handler: inj}
	go srv.Serve(ln)
	defer srv.Close()

	w, err := translator.LocalContainer(base.Clone(), translator.LocalContainerOptions{
		BaseURL: "http://" + ln.Addr().String(),
		Workdir: "shared",
	})
	if err != nil {
		return nil, nil, "", err
	}

	dir, err := os.MkdirTemp("", "wfm-health-")
	if err != nil {
		return nil, nil, "", err
	}
	jdir := filepath.Join(dir, "journal")
	j, err := journal.Open(jdir, journal.Options{})
	if err != nil {
		return nil, nil, "", err
	}
	defer j.Close()
	cache, err := memo.Open(filepath.Join(dir, "memo.cache"))
	if err != nil {
		return nil, nil, "", err
	}
	defer cache.Close()

	opts := wfm.Options{
		Drive:       drive,
		TimeScale:   cfg.TimeScale,
		PhaseDelay:  1,
		InputWait:   cfg.InputWait,
		MaxParallel: cfg.MaxParallel,
		Scheduling:  mode,
		Journal:     j,
		Memoize:     cache,
	}
	if detect {
		opts.Health = &wfm.HealthOptions{
			StragglerFactor:  cfg.StragglerFactor,
			MinSamples:       cfg.MinSamples,
			SpeculativeRetry: true,
		}
	}
	mgr, err := wfm.New(opts)
	if err != nil {
		return nil, nil, "", err
	}
	res, err := mgr.Run(ctx, w)
	if err != nil {
		return nil, nil, "", fmt.Errorf("experiments: health %s (%s, detect=%v): %w", base.Name, mode, detect, err)
	}
	return res, inj, jdir, nil
}

func healthRun(ctx context.Context, cfg HealthConfig, base *wfformat.Workflow, mode wfm.Scheduling) (*HealthMeasurement, error) {
	baseRes, _, offDir, err := healthCell(ctx, cfg, base, mode, false)
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(filepath.Dir(offDir))
	healthRes, inj, onDir, err := healthCell(ctx, cfg, base, mode, true)
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(filepath.Dir(onDir))

	m := &HealthMeasurement{
		Scheduling:   mode.String(),
		Workflow:     healthRes.Workflow,
		Tasks:        base.Len(),
		BaselineWall: baseRes.Wall,
		HealthWall:   healthRes.Wall,
		Injected:     inj.DelayedNames(),
	}
	if baseRes.Wall > 0 {
		m.ImprovementPct = (1 - float64(healthRes.Wall)/float64(baseRes.Wall)) * 100
	}
	if h := healthRes.Health; h != nil {
		for _, s := range h.Stragglers {
			m.Flagged = append(m.Flagged, s.Task)
		}
		m.SpeculativeRetries = h.SpeculativeRetries
		m.SpeculativeWins = h.SpeculativeWins
		m.Endpoints = h.Endpoints
	}
	sum, err := wfm.ReadRunJournal(onDir)
	if err != nil {
		return nil, err
	}
	m.JournalCompleted = sum.CompletedTasks
	m.TerminalRecords = sum.EventCounts["task-completed"] + sum.EventCounts["task-memoized"]
	return m, nil
}

// WriteHealthTable renders the campaign as an aligned table.
func WriteHealthTable(w io.Writer, ms []HealthMeasurement) error {
	if _, err := fmt.Fprintf(w, "%-12s %-22s %6s %12s %12s %8s %9s %8s %6s %8s\n",
		"scheduling", "workflow", "tasks", "baseWall", "healthWall", "improve", "injected", "flagged", "spec", "missing"); err != nil {
		return err
	}
	for i := range ms {
		m := &ms[i]
		if _, err := fmt.Fprintf(w, "%-12s %-22s %6d %12v %12v %7.1f%% %9d %8d %6d %8d\n",
			m.Scheduling, m.Workflow, m.Tasks,
			m.BaselineWall.Round(time.Millisecond), m.HealthWall.Round(time.Millisecond),
			m.ImprovementPct, len(m.Injected), len(m.Flagged), m.SpeculativeRetries, len(m.Missing())); err != nil {
			return err
		}
	}
	return nil
}
