package experiments

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"wfserverless/internal/memo"
	"wfserverless/internal/obs"
	"wfserverless/internal/sharedfs"
	"wfserverless/internal/translator"
	"wfserverless/internal/wfbench"
	"wfserverless/internal/wfformat"
	"wfserverless/internal/wfgen"
	"wfserverless/internal/wfm"
)

// ResilienceConfig parameterizes the flaky-endpoint experiment: one
// workflow executed against a WfBench service wrapped in a fault
// injector, with the workflow manager's resilience layer (retries,
// jittered backoff, per-task timeouts, circuit breaker) switched on.
type ResilienceConfig struct {
	// Recipe / NumTasks / Seed pick the workflow (defaults: blast, 60, 1).
	Recipe   string
	NumTasks int
	Seed     int64

	// TimeScale compresses nominal durations (default 0.02, as in
	// DefaultTunables).
	TimeScale float64

	// Profile is the fault mix injected in front of the service.
	Profile wfbench.FaultProfile

	// Workers sizes the WfBench service pool (default 16).
	Workers int

	// Manager knobs (nominal seconds); zero values fall back to
	// retry-friendly defaults documented in EXPERIMENTS.md.
	Retries         int
	RetryBackoff    float64
	RetryBackoffMax float64
	TaskTimeout     float64
	InputWait       float64
	MaxParallel     int
	Breaker         wfm.BreakerOptions
	// Batching runs the experiment with the manager's batched
	// invocation pipeline: the injector then faults individual
	// sub-tasks inside each batch (per-frame 429/500/hang draws), so
	// the suite proves a faulted sub-task retries alone while its
	// batch-mates complete.
	Batching wfm.BatchOptions

	// TraceSample enables span collection for the runs: the fraction of
	// workflow roots recorded (1 records everything, 0 disables). The
	// collected trace rides on each measurement for the caller to export.
	TraceSample float64

	// Memoize adds a warm re-run to each cell: the first (faulted) run
	// populates a content-addressed memo cache, then the same workflow
	// runs again through the same injector. Every task should be served
	// from the cache — a memoized re-run is immune to endpoint
	// flakiness because it never touches the endpoint.
	Memoize bool
}

func (c ResilienceConfig) withDefaults() ResilienceConfig {
	if c.Recipe == "" {
		c.Recipe = "blast"
	}
	if c.NumTasks == 0 {
		c.NumTasks = 60
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.TimeScale == 0 {
		c.TimeScale = 0.02
	}
	if c.Workers == 0 {
		c.Workers = 16
	}
	if c.Retries == 0 {
		c.Retries = 6
	}
	if c.RetryBackoff == 0 {
		c.RetryBackoff = 0.5
	}
	if c.RetryBackoffMax == 0 {
		c.RetryBackoffMax = 8
	}
	if c.InputWait == 0 {
		c.InputWait = 30
	}
	if c.MaxParallel == 0 {
		c.MaxParallel = 512
	}
	return c
}

// DefaultResilienceBreaker returns breaker settings for the
// flaky-endpoint experiment: armed, but with a threshold high enough
// that a statistically noisy (rather than dead) endpoint does not trip
// it, so runs complete through retries.
func DefaultResilienceBreaker() wfm.BreakerOptions {
	return wfm.BreakerOptions{Enabled: true, FailureThreshold: 0.9, MinSamples: 20}
}

// ResilienceMeasurement records one scheduling mode's run through the
// fault injector.
type ResilienceMeasurement struct {
	Scheduling string
	Workflow   string
	Tasks      int
	// Batched marks runs that went through the batching dispatcher.
	Batched bool

	MakespanS float64
	Wall      time.Duration

	// Attempts sums invocation attempts over all tasks; Retries is the
	// surplus over one attempt per task.
	Attempts int
	Retries  int
	Failed   int
	Warnings int

	// Faults is what the injector actually did to the run.
	Faults wfbench.FaultStats
	// Breakers are the circuit transitions observed, in time order.
	Breakers []wfm.BreakerTransition
	// Trace carries the run's spans when TraceSample was set; nil
	// otherwise.
	Trace *wfm.Trace

	// Memoize-run fields (Config.Memoize only): hits/misses of the warm
	// re-run and its wall time. A healthy cell has MemoHits == Tasks and
	// MemoMisses == 0 — the re-run survives the injector untouched.
	MemoHits     int
	MemoMisses   int
	MemoWarmWall time.Duration
}

// Resilience runs the flaky-endpoint experiment in both scheduling
// modes: each mode gets a fresh drive, service, and injector (same
// seed, same fault mix) so the two runs face statistically identical
// adversity.
func Resilience(ctx context.Context, cfg ResilienceConfig) ([]ResilienceMeasurement, error) {
	cfg = cfg.withDefaults()
	base, err := wfgen.Generate(wfgen.Spec{Recipe: cfg.Recipe, NumTasks: cfg.NumTasks, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}

	var out []ResilienceMeasurement
	for _, mode := range []wfm.Scheduling{wfm.SchedulePhases, wfm.ScheduleDependency} {
		m, err := resilienceRun(ctx, cfg, base, mode)
		if err != nil {
			return out, err
		}
		out = append(out, *m)
	}
	return out, nil
}

func resilienceRun(ctx context.Context, cfg ResilienceConfig, base *wfformat.Workflow, mode wfm.Scheduling) (*ResilienceMeasurement, error) {
	drive := sharedfs.NewMem()
	var tracer *obs.Tracer
	if cfg.TraceSample > 0 {
		tracer = obs.NewTracer(obs.Options{SampleRatio: cfg.TraceSample})
	}
	bench, err := wfbench.New(wfbench.Config{Drive: drive, TimeScale: cfg.TimeScale, Tracer: tracer})
	if err != nil {
		return nil, err
	}
	svc, err := wfbench.NewService(bench, cfg.Workers)
	if err != nil {
		return nil, err
	}
	defer svc.Close()
	inj, err := wfbench.NewInjector(svc, cfg.Profile)
	if err != nil {
		return nil, err
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: inj}
	go srv.Serve(ln)
	defer srv.Close()

	w, err := translator.LocalContainer(base.Clone(), translator.LocalContainerOptions{
		BaseURL: "http://" + ln.Addr().String(),
		Workdir: "shared",
	})
	if err != nil {
		return nil, err
	}

	opts := wfm.Options{
		Drive:           drive,
		TimeScale:       cfg.TimeScale,
		PhaseDelay:      1,
		InputWait:       cfg.InputWait,
		MaxParallel:     cfg.MaxParallel,
		Scheduling:      mode,
		Retries:         cfg.Retries,
		RetryBackoff:    cfg.RetryBackoff,
		RetryBackoffMax: cfg.RetryBackoffMax,
		TaskTimeout:     cfg.TaskTimeout,
		Breaker:         cfg.Breaker,
		Batching:        cfg.Batching,
		Tracer:          tracer,
	}
	var cachePath string
	if cfg.Memoize {
		dir, err := os.MkdirTemp("", "wfm-resilience-memo-")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
		cachePath = filepath.Join(dir, "memo.cache")
		c, err := memo.Open(cachePath)
		if err != nil {
			return nil, err
		}
		defer c.Close()
		opts.Memoize = c
	}
	mgr, err := wfm.New(opts)
	if err != nil {
		return nil, err
	}

	res, runErr := mgr.Run(ctx, w)
	if runErr != nil {
		return nil, fmt.Errorf("experiments: resilience %s (%s): %w", base.Name, mode, runErr)
	}

	m := &ResilienceMeasurement{
		Scheduling: mode.String(),
		Workflow:   res.Workflow,
		Tasks:      w.Len(),
		Batched:    cfg.Batching.Enabled,
		MakespanS:  res.Makespan,
		Wall:       res.Wall,
		Failed:     len(res.Failed),
		Warnings:   len(res.Warnings),
		Faults:     inj.Stats(),
		Breakers:   append([]wfm.BreakerTransition(nil), res.Breakers...),
	}
	for name, tr := range res.Tasks {
		if name == wfm.HeaderName || name == wfm.TailName {
			continue
		}
		m.Attempts += tr.Attempts
	}
	m.Retries = m.Attempts - m.Tasks
	if tracer != nil {
		m.Trace = wfm.TraceOf(res)
	}

	// Warm re-run: same workflow, same injector, cache reopened from
	// disk. Every invocation the first run survived is now a cache hit
	// the injector never sees.
	if cfg.Memoize {
		opts.Memoize.Close()
		c2, err := memo.Open(cachePath)
		if err != nil {
			return nil, err
		}
		defer c2.Close()
		opts.Memoize = c2
		mgr2, err := wfm.New(opts)
		if err != nil {
			return nil, err
		}
		res2, err := mgr2.Run(ctx, w)
		if err != nil {
			return nil, fmt.Errorf("experiments: resilience memoized re-run %s (%s): %w", base.Name, mode, err)
		}
		if res2.Memo != nil {
			m.MemoHits = int(res2.Memo.Hits)
			m.MemoMisses = int(res2.Memo.Misses)
		}
		m.MemoWarmWall = res2.Wall
	}
	return m, nil
}

// WriteResilienceTable renders the measurements as an aligned table.
func WriteResilienceTable(w io.Writer, ms []ResilienceMeasurement) error {
	if _, err := fmt.Fprintf(w, "%-12s %-22s %6s %9s %8s %7s %7s %7s %7s %6s %9s\n",
		"scheduling", "workflow", "tasks", "makespanS", "attempts", "retries", "faults", "rejects", "delays", "failed", "breakerEvt"); err != nil {
		return err
	}
	for _, m := range ms {
		if _, err := fmt.Fprintf(w, "%-12s %-22s %6d %9.1f %8d %7d %7d %7d %7d %6d %9d\n",
			m.Scheduling, m.Workflow, m.Tasks, m.MakespanS,
			m.Attempts, m.Retries, m.Faults.Errors, m.Faults.Rejects, m.Faults.Delays,
			m.Failed, len(m.Breakers)); err != nil {
			return err
		}
	}
	return nil
}
