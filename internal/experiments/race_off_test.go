//go:build !race

package experiments

// raceTimeFactor is 1 without the race detector.
const raceTimeFactor = 1.0
