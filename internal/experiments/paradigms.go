// Package experiments reproduces the paper's evaluation: the
// computational paradigms of Table II, the 140-experiment design of
// Table I, and the measurement campaigns behind Figures 3-7. Each
// experiment provisions a fresh paper-testbed cluster, deploys WfBench
// under one paradigm (Knative-like serverless or bare-metal local
// containers), executes a generated workflow through the serverless
// workflow manager, and samples CPU, memory, and power at 1 Hz
// (nominal) exactly as the paper does with Performance Co-Pilot.
package experiments

import (
	"fmt"
)

// Kind selects the computational platform.
type Kind string

// Platform kinds.
const (
	KindKnative Kind = "knative"
	KindLocal   Kind = "local"
)

// Paradigm identifies one Table II computational paradigm.
type Paradigm string

// The Table II paradigms.
const (
	Kn1wPM        Paradigm = "Kn1wPM"
	Kn1wNoPM      Paradigm = "Kn1wNoPM"
	Kn10wNoPM     Paradigm = "Kn10wNoPM"
	Kn1000wPM     Paradigm = "Kn1000wPM"
	LC1wPM        Paradigm = "LC1wPM"
	LC1wNoPM      Paradigm = "LC1wNoPM"
	LC10wNoPM     Paradigm = "LC10wNoPM"
	LC10wNoPMNoCR Paradigm = "LC10wNoPMNoCR"
	LC1000wPM     Paradigm = "LC1000wPM"
)

// Spec describes a paradigm's configuration knobs.
type Spec struct {
	ID      Paradigm
	Kind    Kind
	Workers int
	// PM: persistent memory over the functions (--vm-keep).
	PM bool
	// CR: CPU/memory requirements declared up front. Always true for
	// Knative; LC10wNoPMNoCR turns it off.
	CR bool
	// Coarse: one process reserving the whole machine, no cold start,
	// no scaling (the paper's coarse-grained scenario).
	Coarse      bool
	Description string
}

// All lists the Table II paradigms in the paper's order.
func All() []Spec {
	return []Spec{
		{Kn1wPM, KindKnative, 1, true, true, false,
			"Knative, 1 worker per pod, persistent memory"},
		{Kn1wNoPM, KindKnative, 1, false, true, false,
			"Knative, 1 worker per pod, no persistent memory"},
		{Kn10wNoPM, KindKnative, 10, false, true, false,
			"Knative, 10 workers per pod, no persistent memory"},
		{Kn1000wPM, KindKnative, 1000, true, true, true,
			"Knative, 1000 workers per pod, persistent memory (coarse-grained)"},
		{LC1wPM, KindLocal, 1, true, true, false,
			"Local containers, 1 worker per container, persistent memory"},
		{LC1wNoPM, KindLocal, 1, false, true, false,
			"Local containers, 1 worker per container, no persistent memory"},
		{LC10wNoPM, KindLocal, 10, false, true, false,
			"Local containers, 10 workers per container, no persistent memory"},
		{LC10wNoPMNoCR, KindLocal, 10, false, false, false,
			"Local containers, 10 workers per container, no persistent memory, no CPU requirement"},
		{LC1000wPM, KindLocal, 1000, true, true, true,
			"Local containers, 1000 workers per container, persistent memory (coarse-grained)"},
	}
}

// ByID returns the paradigm spec for id.
func ByID(id Paradigm) (Spec, error) {
	for _, s := range All() {
		if s.ID == id {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("experiments: unknown paradigm %q", id)
}

// FineGrained returns the non-coarse paradigms (7 of them, the "7
// computational paradigms" of Table I's fine-grained block).
func FineGrained() []Spec {
	var out []Spec
	for _, s := range All() {
		if !s.Coarse {
			out = append(out, s)
		}
	}
	return out
}

// CoarseGrained returns the two coarse paradigms.
func CoarseGrained() []Spec {
	var out []Spec
	for _, s := range All() {
		if s.Coarse {
			out = append(out, s)
		}
	}
	return out
}

// DesignEntry is one row of the Table I experiment matrix.
type DesignEntry struct {
	Granularity string // "fine" or "coarse"
	Paradigm    Paradigm
	Recipe      string
	SizeClass   string // "small", "large", "huge"
}

// Design enumerates the paper's 140-experiment matrix: 98 fine-grained
// (7 paradigms x 7 workflows x 2 sizes) and 42 coarse-grained
// (2 paradigms x 7 workflows x 3 sizes).
func Design(recipes []string) []DesignEntry {
	var out []DesignEntry
	for _, p := range FineGrained() {
		for _, r := range recipes {
			for _, size := range []string{"small", "large"} {
				out = append(out, DesignEntry{"fine", p.ID, r, size})
			}
		}
	}
	for _, p := range CoarseGrained() {
		for _, r := range recipes {
			for _, size := range []string{"small", "large", "huge"} {
				out = append(out, DesignEntry{"coarse", p.ID, r, size})
			}
		}
	}
	return out
}
