package experiments

import (
	"context"
	"testing"

	"wfserverless/internal/obs"
	"wfserverless/internal/wfbench"
	"wfserverless/internal/wfm"
)

// TestScaleCarriesTrace pins the -trace plumbing of the scale suite:
// with TraceSample set, the result carries a trace whose root is the
// workflow span; without it, no trace rides along.
func TestScaleCarriesTrace(t *testing.T) {
	res, err := Scale(context.Background(), ScaleConfig{
		Tasks:       60,
		Shape:       "chain",
		Scheduling:  wfm.ScheduleDependency,
		MaxParallel: 16,
		TraceSample: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil || res.Trace.TraceID == "" {
		t.Fatal("TraceSample=1 produced no trace")
	}
	if len(res.Trace.Spans) == 0 {
		t.Fatal("trace has no spans")
	}
	if res.Trace.Spans[0].Name != "workflow:"+res.Trace.Workflow {
		t.Fatalf("first span = %q, want the workflow root", res.Trace.Spans[0].Name)
	}
	if path := res.Trace.SpanCriticalPath(); len(path) < 2 {
		t.Fatalf("critical path has %d spans", len(path))
	}

	res, err = Scale(context.Background(), ScaleConfig{
		Tasks: 10, Shape: "chain", Scheduling: wfm.ScheduleDependency, MaxParallel: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace != nil {
		t.Fatal("tracing off but a trace rode along")
	}
}

// TestResilienceCarriesTrace pins the same plumbing through the fault
// injector: spans survive the flaky endpoint, including WfBench phase
// leaves that crossed the HTTP hop via Traceparent.
func TestResilienceCarriesTrace(t *testing.T) {
	ms, err := Resilience(context.Background(), ResilienceConfig{
		NumTasks:    12,
		TimeScale:   0.002,
		Workers:     8,
		Profile:     wfbench.FaultProfile{ErrorRate: 0.2, Seed: 5},
		Breaker:     DefaultResilienceBreaker(),
		TraceSample: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 {
		t.Fatalf("measurements = %d, want 2", len(ms))
	}
	for _, m := range ms {
		if m.Trace == nil || len(m.Trace.Spans) == 0 {
			t.Fatalf("%s: no trace collected", m.Scheduling)
		}
		layers := map[string]bool{}
		for _, sp := range m.Trace.Spans {
			layers[sp.Layer] = true
		}
		if !layers[obs.LayerWFM] || !layers[obs.LayerWfbench] {
			t.Fatalf("%s: trace layers = %v, want wfm and wfbench", m.Scheduling, layers)
		}
	}
}
