package experiments

import (
	"context"
	"strings"
	"testing"

	"wfserverless/internal/recipes"
	"wfserverless/internal/wfgen"
)

func TestParadigmCatalog(t *testing.T) {
	all := All()
	if len(all) != 9 {
		t.Fatalf("paradigms = %d, want 9 (Table II)", len(all))
	}
	if len(FineGrained()) != 7 {
		t.Fatalf("fine-grained = %d, want 7", len(FineGrained()))
	}
	if len(CoarseGrained()) != 2 {
		t.Fatalf("coarse-grained = %d, want 2", len(CoarseGrained()))
	}
	for _, s := range all {
		got, err := ByID(s.ID)
		if err != nil || got.ID != s.ID {
			t.Fatalf("ByID(%s): %v", s.ID, err)
		}
		if s.Description == "" {
			t.Fatalf("%s has no description", s.ID)
		}
	}
	if _, err := ByID("nope"); err == nil {
		t.Fatal("unknown paradigm accepted")
	}
	// NoCR only for the one LC paradigm
	for _, s := range all {
		wantCR := s.ID != LC10wNoPMNoCR
		if s.CR != wantCR {
			t.Fatalf("%s CR = %v", s.ID, s.CR)
		}
	}
}

func TestDesignMatchesTable1(t *testing.T) {
	d := Design(recipes.Names())
	if len(d) != 140 {
		t.Fatalf("design = %d experiments, want 140", len(d))
	}
	fine, coarse := 0, 0
	for _, e := range d {
		switch e.Granularity {
		case "fine":
			fine++
		case "coarse":
			coarse++
		default:
			t.Fatalf("bad granularity %q", e.Granularity)
		}
	}
	if fine != 98 || coarse != 42 {
		t.Fatalf("fine=%d coarse=%d, want 98/42", fine, coarse)
	}
}

func TestFigure3Characterization(t *testing.T) {
	chars, err := Figure3(100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(chars) != 7 {
		t.Fatalf("characterizations = %d", len(chars))
	}
	byName := map[string]Characterization{}
	for _, c := range chars {
		byName[c.Recipe] = c
	}
	// Blast and BWA: dense, few phases (paper: "more dense, featuring
	// fewer steps but a high concentration of functions").
	for _, dense := range []string{"blast", "bwa", "seismology"} {
		if byName[dense].Phases > 4 {
			t.Errorf("%s phases = %d, want few", dense, byName[dense].Phases)
		}
	}
	// Cycles and Epigenomics: more phases, diverse function types.
	for _, spread := range []string{"cycles", "epigenomics"} {
		if byName[spread].Phases < 8 {
			t.Errorf("%s phases = %d, want many", spread, byName[spread].Phases)
		}
		if len(byName[spread].Categories) < 5 {
			t.Errorf("%s categories = %d, want diverse", spread, len(byName[spread].Categories))
		}
	}
	var sb strings.Builder
	if err := WriteCharacterization(&sb, chars); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Epigenomics") {
		t.Fatal("characterization output incomplete")
	}
}

// fastTunables compresses time aggressively for unit tests, backing off
// under the race detector.
func fastTunables() Tunables {
	tn := DefaultTunables()
	tn.TimeScale = 0.002 * raceTimeFactor
	return tn
}

func mustGen(t *testing.T, recipe string, size int) *wfgen.Instance {
	t.Helper()
	inst, err := generate(recipe, size, 1)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func TestRunWorkflowKnativeMeasures(t *testing.T) {
	spec, _ := ByID(Kn10wNoPM)
	inst := mustGen(t, "blast", 30)
	m, err := RunWorkflow(context.Background(), spec, inst.Workflow, fastTunables())
	if err != nil {
		t.Fatal(err)
	}
	if m.MakespanS <= 0 || m.MeanPowerW <= 0 || m.EnergyJ <= 0 {
		t.Fatalf("measurement = %+v", m)
	}
	if m.Requests != int64(inst.Workflow.Len()) {
		t.Fatalf("requests = %d, want %d", m.Requests, inst.Workflow.Len())
	}
	if m.ColdStarts == 0 {
		t.Fatal("no cold starts on fine-grained serverless")
	}
	if m.MeanMemGB <= 0 || m.MeanCPUCores <= 0 {
		t.Fatalf("resource means empty: %+v", m)
	}
}

func TestRunWorkflowLocalMeasures(t *testing.T) {
	spec, _ := ByID(LC10wNoPM)
	inst := mustGen(t, "blast", 30)
	m, err := RunWorkflow(context.Background(), spec, inst.Workflow, fastTunables())
	if err != nil {
		t.Fatal(err)
	}
	if m.ColdStarts != 0 {
		t.Fatal("local containers recorded cold starts")
	}
	// Always-on fleet: CPU usage ~ full reservation (96 cores).
	if m.MeanCPUCores < 90 {
		t.Fatalf("LC mean CPU = %v, want ~96 (full reservation)", m.MeanCPUCores)
	}
}

func TestRunWorkflowBadTimeScale(t *testing.T) {
	spec, _ := ByID(LC10wNoPM)
	inst := mustGen(t, "blast", 10)
	tn := fastTunables()
	tn.TimeScale = 0
	if _, err := RunWorkflow(context.Background(), spec, inst.Workflow, tn); err == nil {
		t.Fatal("zero TimeScale accepted")
	}
}

// TestHeadlineShape verifies the paper's Figure 7 findings on one
// group-1 workflow: serverless is slower but saves most of the CPU and
// memory at comparable power.
func TestHeadlineShape(t *testing.T) {
	tn := fastTunables()
	inst := mustGen(t, "blast", 60)
	knSpec, _ := ByID(Kn10wNoPM)
	lcSpec, _ := ByID(LC10wNoPM)
	kn, err := RunWorkflow(context.Background(), knSpec, inst.Workflow, tn)
	if err != nil {
		t.Fatal(err)
	}
	lc, err := RunWorkflow(context.Background(), lcSpec, inst.Workflow, tn)
	if err != nil {
		t.Fatal(err)
	}
	if kn.MakespanS <= lc.MakespanS {
		t.Errorf("group-1 serverless should be slower: kn=%v lc=%v", kn.MakespanS, lc.MakespanS)
	}
	cpuSave := 1 - kn.MeanCPUCores/lc.MeanCPUCores
	if cpuSave < 0.4 {
		t.Errorf("CPU saving = %.0f%%, want substantial", 100*cpuSave)
	}
	memSave := 1 - kn.MeanMemGB/lc.MeanMemGB
	if memSave < 0.4 {
		t.Errorf("memory saving = %.0f%%, want substantial", 100*memSave)
	}
	ratio := kn.MeanPowerW / lc.MeanPowerW
	if ratio < 0.6 || ratio > 1.4 {
		t.Errorf("power ratio = %.2f, want comparable", ratio)
	}
}

// TestGroup2NarrowerGap verifies the paper's group split: the serverless
// slowdown on multi-phase workflows (Epigenomics) is smaller than on
// dense ones (Blast).
func TestGroup2NarrowerGap(t *testing.T) {
	tn := fastTunables()
	// Ratios near 1 need a less compressed clock to stay above
	// scheduler jitter.
	tn.TimeScale = 0.01 * raceTimeFactor
	ratio := func(recipe string) float64 {
		inst := mustGen(t, recipe, 60)
		knSpec, _ := ByID(Kn10wNoPM)
		lcSpec, _ := ByID(LC10wNoPM)
		kn, err := RunWorkflow(context.Background(), knSpec, inst.Workflow, tn)
		if err != nil {
			t.Fatal(err)
		}
		lc, err := RunWorkflow(context.Background(), lcSpec, inst.Workflow, tn)
		if err != nil {
			t.Fatal(err)
		}
		return kn.MakespanS / lc.MakespanS
	}
	dense := ratio("blast")
	spread := ratio("epigenomics")
	if spread >= dense {
		t.Errorf("slowdown: blast=%.2f epigenomics=%.2f; group 2 should be narrower", dense, spread)
	}
}

// TestCoarseGrainedShape verifies Figure 6: with whole-machine
// reservations, serverless time approaches local containers and the
// resource advantage disappears.
func TestCoarseGrainedShape(t *testing.T) {
	tn := fastTunables()
	inst := mustGen(t, "seismology", 60)
	knSpec, _ := ByID(Kn1000wPM)
	lcSpec, _ := ByID(LC1000wPM)
	kn, err := RunWorkflow(context.Background(), knSpec, inst.Workflow, tn)
	if err != nil {
		t.Fatal(err)
	}
	lc, err := RunWorkflow(context.Background(), lcSpec, inst.Workflow, tn)
	if err != nil {
		t.Fatal(err)
	}
	if kn.ColdStarts > 1 {
		t.Errorf("coarse serverless cold starts = %d, want pre-provisioned", kn.ColdStarts)
	}
	ratio := kn.MakespanS / lc.MakespanS
	if ratio > 1.3 {
		t.Errorf("coarse time ratio = %.2f, want close to 1", ratio)
	}
	// CPU usage no longer shows the big serverless saving: the single
	// pod reserves a whole node for the entire run.
	cpuSave := 1 - kn.MeanCPUCores/lc.MeanCPUCores
	if cpuSave > 0.35 {
		t.Errorf("coarse CPU saving = %.0f%%, advantage should vanish", 100*cpuSave)
	}
}

// TestFigure4WorkersHelp verifies that 10 workers per pod beat 1 worker
// per pod on execution time for a dense workflow (the paper's preferred
// Kn10wNoPM configuration).
func TestFigure4WorkersHelp(t *testing.T) {
	tn := fastTunables()
	inst := mustGen(t, "blast", 60)
	oneW, _ := ByID(Kn1wNoPM)
	tenW, _ := ByID(Kn10wNoPM)
	m1, err := RunWorkflow(context.Background(), oneW, inst.Workflow, tn)
	if err != nil {
		t.Fatal(err)
	}
	m10, err := RunWorkflow(context.Background(), tenW, inst.Workflow, tn)
	if err != nil {
		t.Fatal(err)
	}
	if m10.MakespanS > m1.MakespanS*1.1 {
		t.Errorf("10w=%.1fs vs 1w=%.1fs; more workers should not be slower", m10.MakespanS, m1.MakespanS)
	}
	// Fewer pods -> less per-pod overhead memory.
	if m10.MeanMemGB > m1.MeanMemGB*1.1 {
		t.Errorf("10w mem=%.2f vs 1w mem=%.2f; pooling should not raise memory", m10.MeanMemGB, m1.MeanMemGB)
	}
}

// TestPMRaisesMemory verifies the persistent-memory knob: PM holds
// ballast between invocations and must raise mean memory.
func TestPMRaisesMemory(t *testing.T) {
	tn := fastTunables()
	inst := mustGen(t, "blast", 60)
	pm, _ := ByID(LC1wPM)
	nopm, _ := ByID(LC1wNoPM)
	mPM, err := RunWorkflow(context.Background(), pm, inst.Workflow, tn)
	if err != nil {
		t.Fatal(err)
	}
	mNo, err := RunWorkflow(context.Background(), nopm, inst.Workflow, tn)
	if err != nil {
		t.Fatal(err)
	}
	if mPM.MeanMemGB <= mNo.MeanMemGB {
		t.Errorf("PM mem=%.2fGB <= NoPM mem=%.2fGB", mPM.MeanMemGB, mNo.MeanMemGB)
	}
}

// TestNoCRLowersCPUAndPower verifies the Figure 5 NoCR observation.
func TestNoCRLowersCPUAndPower(t *testing.T) {
	tn := fastTunables()
	// The makespan-similarity assertion compares many short phases;
	// use a less compressed clock so scheduler jitter (and the race
	// detector's overhead) stays well below phase durations.
	tn.TimeScale = 0.01 * raceTimeFactor
	inst := mustGen(t, "epigenomics", 40)
	cr, _ := ByID(LC10wNoPM)
	nocr, _ := ByID(LC10wNoPMNoCR)
	mCR, err := RunWorkflow(context.Background(), cr, inst.Workflow, tn)
	if err != nil {
		t.Fatal(err)
	}
	mNo, err := RunWorkflow(context.Background(), nocr, inst.Workflow, tn)
	if err != nil {
		t.Fatal(err)
	}
	if mNo.MeanCPUCores >= mCR.MeanCPUCores {
		t.Errorf("NoCR cpu=%.1f >= CR cpu=%.1f", mNo.MeanCPUCores, mCR.MeanCPUCores)
	}
	if mNo.MeanPowerW >= mCR.MeanPowerW {
		t.Errorf("NoCR power=%.1f >= CR power=%.1f (c-state penalty)", mNo.MeanPowerW, mCR.MeanPowerW)
	}
	// Execution time unchanged (same worker pool).
	if mNo.MakespanS > mCR.MakespanS*1.35 || mNo.MakespanS < mCR.MakespanS*0.65 {
		t.Errorf("NoCR time=%.1f vs CR time=%.1f, want similar", mNo.MakespanS, mCR.MakespanS)
	}
}

func TestSuiteRenderingAndReductions(t *testing.T) {
	tn := fastTunables()
	sz := Sizes{Small: 20, Large: 40, Huge: 60}
	suite, err := runMatrix(context.Background(), "Figure 7",
		[]Paradigm{Kn10wNoPM, LC10wNoPM}, []string{"blast"}, []int{sz.Small}, 1, tn)
	if err != nil {
		t.Fatal(err)
	}
	if len(suite.Errors) > 0 {
		t.Fatalf("errors: %v", suite.Errors)
	}
	if len(suite.Measurements) != 2 {
		t.Fatalf("measurements = %d", len(suite.Measurements))
	}
	reds := Reductions(suite)
	if len(reds) != 1 {
		t.Fatalf("reductions = %+v", reds)
	}
	cpu, mem := MaxReductions(reds)
	if cpu <= 0 || mem <= 0 {
		t.Fatalf("headline reductions cpu=%.1f mem=%.1f", cpu, mem)
	}

	var tbl strings.Builder
	if err := WriteTable(&tbl, suite); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tbl.String(), "Kn10wNoPM") {
		t.Fatal("table missing paradigm")
	}
	var csv strings.Builder
	if err := WriteCSV(&csv, suite); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "figure,paradigm") {
		t.Fatalf("csv header = %q", lines[0])
	}
}

func TestSizesClasses(t *testing.T) {
	sz := DefaultSizes()
	if sz.of("small") != sz.Small || sz.of("large") != sz.Large || sz.of("huge") != sz.Huge {
		t.Fatal("size class mapping broken")
	}
}
