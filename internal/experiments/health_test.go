package experiments

import (
	"context"
	"strings"
	"testing"
	"time"
)

// TestHealthCampaign is the acceptance run for the straggler campaign:
// every injected-slow task must be flagged, speculative retry must cut
// the makespan by at least 25% against the detection-off baseline, and
// the journal must hold exactly one terminal record per task despite
// the raced duplicate attempts — in both scheduling modes.
func TestHealthCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock latency injection campaign")
	}
	ms, err := HealthCampaign(context.Background(), HealthConfig{
		NumTasks: 16,
		Latency:  800 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 {
		t.Fatalf("measurements = %d, want both scheduling modes", len(ms))
	}
	for i := range ms {
		m := &ms[i]
		t.Run(m.Scheduling, func(t *testing.T) {
			if len(m.Injected) == 0 {
				t.Fatal("injector delayed nothing — campaign exercised no stragglers")
			}
			if missing := m.Missing(); len(missing) > 0 {
				t.Fatalf("injected but never flagged: %v (injected %v, flagged %v)",
					missing, m.Injected, m.Flagged)
			}
			if m.SpeculativeRetries == 0 || m.SpeculativeWins == 0 {
				t.Fatalf("no speculation recorded: %+v", m)
			}
			if m.ImprovementPct < 25 {
				t.Fatalf("speculation improved makespan by %.1f%% (%v -> %v), want >= 25%%",
					m.ImprovementPct, m.BaselineWall, m.HealthWall)
			}
			total := m.Tasks
			if m.JournalCompleted != total {
				t.Fatalf("journal completed = %d, want %d", m.JournalCompleted, total)
			}
			if m.TerminalRecords != total {
				t.Fatalf("terminal journal records = %d, want %d (duplicate completion?)",
					m.TerminalRecords, total)
			}
			if len(m.Endpoints) == 0 || m.Endpoints[0].Attempts == 0 {
				t.Fatalf("no endpoint baselines: %+v", m.Endpoints)
			}
		})
	}
	var sb strings.Builder
	if err := WriteHealthTable(&sb, ms); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "improve") || !strings.Contains(sb.String(), ms[0].Workflow) {
		t.Fatalf("table rendering:\n%s", sb.String())
	}
}
