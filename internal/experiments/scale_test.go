package experiments

import (
	"context"
	"testing"

	"wfserverless/internal/wfm"
)

// TestScaleSmall runs the scale campaign end-to-end at a size small
// enough for tier-1: every task completes, throughput and RSS are
// reported.
func TestScaleSmall(t *testing.T) {
	for _, shape := range []string{"random", "chain", "fanout"} {
		res, err := Scale(context.Background(), ScaleConfig{
			Tasks:       300,
			Shape:       shape,
			Scheduling:  wfm.ScheduleDependency,
			MaxParallel: 32,
		})
		if err != nil {
			t.Fatalf("%s: %v", shape, err)
		}
		if res.Completed != 300 {
			t.Fatalf("%s: completed %d of 300", shape, res.Completed)
		}
		if res.TasksPerSec <= 0 {
			t.Fatalf("%s: TasksPerSec = %v", shape, res.TasksPerSec)
		}
		if shape != "fanout" && res.Edges == 0 {
			t.Fatalf("%s: no edges", shape)
		}
	}
}

// TestScalePhasesMode pins that the campaign also runs under the
// paper's phase-barrier mode.
func TestScalePhasesMode(t *testing.T) {
	res, err := Scale(context.Background(), ScaleConfig{
		Tasks:       120,
		Shape:       "random",
		Width:       16,
		Scheduling:  wfm.SchedulePhases,
		MaxParallel: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 120 {
		t.Fatalf("completed %d of 120", res.Completed)
	}
}

func TestScaleRejectsBadConfig(t *testing.T) {
	if _, err := Scale(context.Background(), ScaleConfig{Tasks: 0}); err == nil {
		t.Fatal("Tasks=0 accepted")
	}
	if _, err := Scale(context.Background(), ScaleConfig{Tasks: 10, Shape: "mystery"}); err == nil {
		t.Fatal("unknown shape accepted")
	}
}

func TestPeakRSSOnLinux(t *testing.T) {
	if rss := PeakRSS(); rss <= 0 {
		t.Skip("procfs not available")
	}
}
