package experiments

// This file implements the recovery campaign: the durable-execution
// subsystem's acceptance experiment. Each trial runs a synthetic
// workflow with the run journal enabled, kills the manager at a
// randomized point mid-run (modelled as context cancellation plus
// journal.Abort — the staged-but-unsynced journal tail dies exactly as
// it would with the process), optionally deletes output files from the
// shared drive to model storage loss, then resumes from the journal in
// a fresh manager and checks the two properties durable execution
// promises:
//
//  1. the resumed run converges to a final shared-drive state identical
//     to an uninterrupted reference run, and
//  2. no task the journal recorded as completed is ever invoked again
//     (verified against per-task execution counts from the stub).
//
// The campaign crosses both scheduling modes with the PR-2 fault
// injector, so recovery is exercised under retries, 429s, and injected
// errors, not just on the happy path.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"slices"
	"strings"
	"sync"
	"time"

	"wfserverless/internal/journal"
	"wfserverless/internal/memo"
	"wfserverless/internal/sharedfs"
	"wfserverless/internal/wfbench"
	"wfserverless/internal/wfformat"
	"wfserverless/internal/wfm"
)

// RecoveryConfig parameterizes the crash/resume campaign.
type RecoveryConfig struct {
	// Tasks is the synthetic workflow size (default 400).
	Tasks int
	// Width is tasks per layer of the random DAG shape (default 32).
	Width int
	// Trials is how many randomized crash points each cell of the
	// {scheduling} x {faults} matrix gets (default 3).
	Trials int
	// Seed drives the DAG shape, crash points, and vanish choices.
	Seed int64
	// MaxParallel bounds simultaneous invocations (default 64).
	MaxParallel int
	// TimeScale compresses nominal seconds (default 0.002).
	TimeScale float64
	// Faults is the profile injected in the faults-on cells; a zero
	// profile falls back to a 20% error / 5% reject mix.
	Faults wfbench.FaultProfile
	// VanishOutputs is how many random output files are deleted from the
	// shared drive between crash and resume (default 2), exercising the
	// resume-time output verification path.
	VanishOutputs int
	// Batching runs the campaign through the manager's batched
	// invocation pipeline; the zero-duplicate and drive-convergence
	// invariants must hold identically, since journaling sits above the
	// transport.
	Batching wfm.BatchOptions
	// Memoize runs every trial with the content-addressed memo cache
	// enabled alongside the journal: the crashed run populates the
	// cache, the resume probes it, and the zero-duplicate invariant
	// extends to memoized tasks — recovery and memoization must
	// partition the work, never overlap it.
	Memoize bool
}

func (c RecoveryConfig) withDefaults() RecoveryConfig {
	if c.Tasks == 0 {
		c.Tasks = 400
	}
	if c.Width == 0 {
		c.Width = 32
	}
	if c.Trials == 0 {
		c.Trials = 3
	}
	if c.Seed == 0 {
		c.Seed = 7
	}
	if c.MaxParallel == 0 {
		c.MaxParallel = 64
	}
	if c.TimeScale == 0 {
		c.TimeScale = 0.002
	}
	if !c.Faults.Active() {
		c.Faults = wfbench.FaultProfile{ErrorRate: 0.2, RejectRate: 0.05}
	}
	if c.VanishOutputs == 0 {
		c.VanishOutputs = 2
	}
	return c
}

// RecoveryTrial reports one kill/resume cycle.
type RecoveryTrial struct {
	Scheduling string
	Faults     bool
	Trial      int
	Tasks      int

	// CrashAfter is the completed-task count that triggered the kill.
	CrashAfter int
	// Vanished is how many drive files were deleted before the resume.
	Vanished int

	// From the resume's ResumeReport.
	RecordedCompleted  int
	SkippedInvocations int
	Reexecuted         int
	// MemoHits counts resume-side tasks seeded from the memo cache
	// rather than the journal (Memoize runs only).
	MemoHits int

	// DuplicateInvocations counts recovered (journal-verified) tasks the
	// stub nonetheless executed more than once across both processes —
	// the invariant is that this stays zero.
	DuplicateInvocations int
	// DriveMatch reports the resumed drive state equals the reference
	// run's, file for file.
	DriveMatch bool

	CrashWall  time.Duration
	ResumeWall time.Duration
}

// Recovery runs the campaign: {phases, dependency} x {faults off, on},
// Trials randomized crash points each.
func Recovery(ctx context.Context, cfg RecoveryConfig) ([]RecoveryTrial, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))

	var out []RecoveryTrial
	for _, mode := range []wfm.Scheduling{wfm.SchedulePhases, wfm.ScheduleDependency} {
		for _, faults := range []bool{false, true} {
			ref, err := recoveryReference(ctx, cfg, mode, faults)
			if err != nil {
				return out, err
			}
			for trial := 0; trial < cfg.Trials; trial++ {
				crashAfter := 1 + rng.Intn(cfg.Tasks-1)
				t, err := recoveryTrial(ctx, cfg, mode, faults, trial, crashAfter, ref, rng)
				if err != nil {
					return out, err
				}
				out = append(out, *t)
			}
		}
	}
	return out, nil
}

// invocationCounter tallies successful task executions by name across
// process lifetimes — the ground truth duplicates are checked against.
type invocationCounter struct {
	mu sync.Mutex
	n  map[string]int
}

func (c *invocationCounter) inc(name string) {
	c.mu.Lock()
	c.n[name]++
	c.mu.Unlock()
}

func (c *invocationCounter) get(name string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n[name]
}

// recoveryEnv is one trial's world: a fresh drive, a counting WfBench
// stub (optionally behind the fault injector), and the synthetic
// workflow wired to it.
type recoveryEnv struct {
	drive  sharedfs.Drive
	counts *invocationCounter
	srv    *httptest.Server
	w      *wfformat.Workflow
}

func (e *recoveryEnv) Close() { e.srv.Close() }

func newRecoveryEnv(cfg RecoveryConfig, faults bool, faultSeed int64) (*recoveryEnv, error) {
	drive := sharedfs.NewMem()
	counts := &invocationCounter{n: make(map[string]int)}
	execOne := func(req *wfbench.Request) *wfbench.Response {
		for name, size := range req.Out {
			drive.WriteFile(name, size)
		}
		counts.inc(req.Name)
		return &wfbench.Response{Name: req.Name, OK: true}
	}
	var handler http.Handler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasSuffix(r.URL.Path, "/invoke-batch") {
			items, err := wfbench.DecodeBatchRequest(r.Body)
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			results := make([]wfbench.BatchResult, len(items))
			for i, it := range items {
				var req wfbench.Request
				if err := json.Unmarshal(it.Body, &req); err != nil {
					results[i] = wfbench.BatchResult{Status: http.StatusBadRequest, Payload: []byte(err.Error())}
					continue
				}
				payload, _ := json.Marshal(execOne(&req))
				results[i] = wfbench.BatchResult{Status: http.StatusOK, Payload: payload}
			}
			wfbench.WriteBatchResponse(w, results)
			return
		}
		var req wfbench.Request
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(execOne(&req))
	})
	if faults {
		p := cfg.Faults
		p.Seed = faultSeed
		inj, err := wfbench.NewInjector(handler, p)
		if err != nil {
			return nil, err
		}
		handler = inj
	}
	srv := httptest.NewServer(handler)
	w, _, err := scaleWorkflow(ScaleConfig{
		Tasks: cfg.Tasks, Shape: "random", Width: cfg.Width, Seed: cfg.Seed,
	}, srv.URL)
	if err != nil {
		srv.Close()
		return nil, err
	}
	return &recoveryEnv{drive: drive, counts: counts, srv: srv, w: w}, nil
}

// recoveryManager builds a manager over the env with retry settings
// generous enough that injected faults never terminate a run.
func recoveryManager(cfg RecoveryConfig, mode wfm.Scheduling, env *recoveryEnv, j *journal.Journal, c *memo.Cache, afterDone func(int)) (*wfm.Manager, error) {
	return wfm.New(wfm.Options{
		Drive:         env.drive,
		TimeScale:     cfg.TimeScale,
		PhaseDelay:    1,
		InputWait:     30,
		MaxParallel:   cfg.MaxParallel,
		Scheduling:    mode,
		Retries:       8,
		RetryBackoff:  0.2,
		TaskTimeout:   60,
		Batching:      cfg.Batching,
		Journal:       j,
		Memoize:       c,
		AfterTaskDone: afterDone,
	})
}

// recoveryReference executes the cell's workflow uninterrupted (no
// journal) and returns the resulting drive listing — the state every
// crashed-and-resumed trial must converge to.
func recoveryReference(ctx context.Context, cfg RecoveryConfig, mode wfm.Scheduling, faults bool) ([]string, error) {
	env, err := newRecoveryEnv(cfg, faults, cfg.Seed)
	if err != nil {
		return nil, err
	}
	defer env.Close()
	m, err := recoveryManager(cfg, mode, env, nil, nil, nil)
	if err != nil {
		return nil, err
	}
	if _, err := m.Run(ctx, env.w); err != nil {
		return nil, fmt.Errorf("experiments: recovery reference (%s, faults=%t): %w", mode, faults, err)
	}
	return env.drive.List(), nil
}

// recoveryTrial performs one kill/resume cycle and checks the durable
// execution invariants against the reference drive state.
func recoveryTrial(ctx context.Context, cfg RecoveryConfig, mode wfm.Scheduling, faults bool, trial, crashAfter int, ref []string, rng *rand.Rand) (*RecoveryTrial, error) {
	env, err := newRecoveryEnv(cfg, faults, cfg.Seed+int64(trial)+1)
	if err != nil {
		return nil, err
	}
	defer env.Close()

	dir, err := os.MkdirTemp("", "wfm-recovery-journal-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	j, err := journal.Open(dir, journal.Options{Sync: journal.SyncGroup})
	if err != nil {
		return nil, err
	}
	var c *memo.Cache
	cachePath := dir + "/memo.cache"
	if cfg.Memoize {
		if c, err = memo.Open(cachePath); err != nil {
			return nil, err
		}
	}

	// Phase 1: run until crashAfter tasks have completed, then kill —
	// cancel the run context and Abort the journal so its unsynced tail
	// is lost exactly as a real process death would lose it.
	runCtx, kill := context.WithCancel(ctx)
	defer kill()
	var once sync.Once
	m, err := recoveryManager(cfg, mode, env, j, c, func(done int) {
		if done >= crashAfter {
			once.Do(kill)
		}
	})
	if err != nil {
		return nil, err
	}
	crashStart := time.Now()
	m.Run(runCtx, env.w) // error expected: the run was killed mid-flight
	crashWall := time.Since(crashStart)
	j.Abort()
	if c != nil {
		c.Close() // flush what the crashed run cached; resume reopens from disk
	}

	// Model storage loss: delete a few outputs the crashed run already
	// published, forcing resume-time verification to re-execute their
	// producers.
	vanished := 0
	if files := env.drive.List(); len(files) > 0 {
		for _, i := range rng.Perm(len(files)) {
			if vanished == cfg.VanishOutputs {
				break
			}
			if strings.HasPrefix(files[i], "out_") {
				env.drive.Remove(files[i])
				vanished++
			}
		}
	}

	// Phase 2: reopen the journal (replaying it, torn tail and all) and
	// resume in a fresh manager on the same drive.
	j2, err := journal.Open(dir, journal.Options{Sync: journal.SyncGroup})
	if err != nil {
		return nil, err
	}
	defer j2.Close()
	var c2 *memo.Cache
	if cfg.Memoize {
		if c2, err = memo.Open(cachePath); err != nil {
			return nil, err
		}
		defer c2.Close()
	}
	m2, err := recoveryManager(cfg, mode, env, j2, c2, nil)
	if err != nil {
		return nil, err
	}
	resumeStart := time.Now()
	res, err := m2.Resume(ctx, env.w)
	resumeWall := time.Since(resumeStart)
	if err != nil {
		return nil, fmt.Errorf("experiments: recovery resume (%s, faults=%t, trial %d): %w", mode, faults, trial, err)
	}

	t := &RecoveryTrial{
		Scheduling: mode.String(),
		Faults:     faults,
		Trial:      trial,
		Tasks:      cfg.Tasks,
		CrashAfter: crashAfter,
		Vanished:   vanished,
		CrashWall:  crashWall,
		ResumeWall: resumeWall,
		DriveMatch: slices.Equal(ref, env.drive.List()),
	}
	if res.Resume != nil {
		t.RecordedCompleted = res.Resume.RecordedCompleted
		t.SkippedInvocations = res.Resume.SkippedInvocations
		t.Reexecuted = res.Resume.Reexecuted
	}
	if res.Memo != nil {
		t.MemoHits = int(res.Memo.Hits)
	}
	// A recovered task is one the journal recorded completed AND whose
	// outputs survived — and under Memoize, a memoized task is one the
	// cache vouched for: either way the stub must have executed it
	// exactly once.
	for _, tr := range res.Tasks {
		if (tr.Recovered || tr.Memoized) && env.counts.get(tr.Name) > 1 {
			t.DuplicateInvocations++
		}
	}
	return t, nil
}

// WriteRecoveryTable renders the trials as an aligned table.
func WriteRecoveryTable(w io.Writer, ts []RecoveryTrial) error {
	if _, err := fmt.Fprintf(w, "%-12s %-7s %6s %6s %11s %9s %8s %7s %8s %5s %10s\n",
		"scheduling", "faults", "trial", "tasks", "crashAfter", "recorded", "skipped", "reexec", "vanished", "dups", "driveMatch"); err != nil {
		return err
	}
	for _, t := range ts {
		if _, err := fmt.Fprintf(w, "%-12s %-7t %6d %6d %11d %9d %8d %7d %8d %5d %10t\n",
			t.Scheduling, t.Faults, t.Trial, t.Tasks, t.CrashAfter,
			t.RecordedCompleted, t.SkippedInvocations, t.Reexecuted, t.Vanished,
			t.DuplicateInvocations, t.DriveMatch); err != nil {
			return err
		}
	}
	return nil
}
