package experiments

// This file implements the scale campaign: how far past the paper's
// 250-task workflows the prototype's hot path goes. A synthetic
// workflow of up to 100k tasks is built in memory, compiled, and
// executed end-to-end through the workflow manager against a loopback
// WfBench stub that publishes outputs to the shared drive — so the
// measured cost is DAG compilation, scheduling, invocation encoding,
// HTTP dispatch, and result accounting, not simulated compute. Peak
// RSS is read from /proc/self/status (VmHWM) to verify memory stays
// bounded.

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"time"

	"wfserverless/internal/obs"
	"wfserverless/internal/sharedfs"
	"wfserverless/internal/wfbench"
	"wfserverless/internal/wfformat"
	"wfserverless/internal/wfm"
)

// ScaleConfig configures one scale run.
type ScaleConfig struct {
	// Tasks is the synthetic workflow size (e.g. 100_000).
	Tasks int
	// Shape is the DAG generator: "random" (layered, two random
	// parents per task — the acceptance shape), "chain", or "fanout".
	Shape string
	// Width is tasks per layer for the random shape; 0 defaults to 64.
	Width int
	// Scheduling selects the manager mode; dependency is the mode the
	// scale target is specified against.
	Scheduling wfm.Scheduling
	// MaxParallel bounds simultaneous invocations; 0 defaults to 256
	// (unbounded would open one connection per ready task).
	MaxParallel int
	// Seed drives the random shape.
	Seed int64
	// Batching runs the campaign through the manager's batched
	// invocation pipeline (wfm.BatchOptions) — the scale knob that
	// breaks the HTTP/1 request-per-task wall.
	Batching wfm.BatchOptions
	// TraceSample enables span collection: the fraction of workflow
	// roots recorded (1 records everything, 0 disables). At 100k tasks
	// a fully sampled run holds ~200k spans in memory; the overhead
	// benchmark in internal/wfm quantifies the hot-path cost.
	TraceSample float64
}

// ScaleResult reports one scale run.
type ScaleResult struct {
	Tasks        int
	Edges        int
	Shape        string
	Scheduling   string
	BuildWall    time.Duration // workflow construction + validation
	RunWall      time.Duration // manager Run, end to end
	TasksPerSec  float64
	PeakRSSBytes int64 // VmHWM after the run; 0 where /proc is absent
	Completed    int
	// Trace carries the run's spans when TraceSample was set; nil
	// otherwise.
	Trace *wfm.Trace
}

// Scale builds and executes the configured synthetic workflow.
func Scale(ctx context.Context, cfg ScaleConfig) (*ScaleResult, error) {
	if cfg.Tasks <= 0 {
		return nil, fmt.Errorf("experiments: Scale needs Tasks > 0")
	}
	if cfg.MaxParallel == 0 {
		cfg.MaxParallel = 256
	}
	drive := sharedfs.NewMem()
	stub := scaleStub(drive)
	defer stub.Close()

	buildStart := time.Now()
	w, edges, err := scaleWorkflow(cfg, stub.URL)
	if err != nil {
		return nil, err
	}
	var tracer *obs.Tracer
	if cfg.TraceSample > 0 {
		tracer = obs.NewTracer(obs.Options{SampleRatio: cfg.TraceSample})
	}
	m, err := wfm.New(wfm.Options{
		Drive:       drive,
		MaxParallel: cfg.MaxParallel,
		Scheduling:  cfg.Scheduling,
		Batching:    cfg.Batching,
		Tracer:      tracer,
		// The stub answers in microseconds, so nominal paper seconds
		// are compressed hard: the phase-mode inter-phase delay becomes
		// 1ms instead of 1s (a 100k chain has thousands of levels), and
		// InputWait still allows 5s of wall time per wait.
		TimeScale: 0.001,
		InputWait: 5000,
	})
	if err != nil {
		return nil, err
	}
	build := time.Since(buildStart)

	runStart := time.Now()
	res, err := m.Run(ctx, w)
	if err != nil {
		return nil, err
	}
	run := time.Since(runStart)

	completed := 0
	for _, tr := range res.Tasks {
		if tr.Err == nil && tr.Name != wfm.HeaderName && tr.Name != wfm.TailName {
			completed++
		}
	}
	sr := &ScaleResult{
		Tasks:        cfg.Tasks,
		Edges:        edges,
		Shape:        cfg.Shape,
		Scheduling:   cfg.Scheduling.String(),
		BuildWall:    build,
		RunWall:      run,
		TasksPerSec:  float64(cfg.Tasks) / run.Seconds(),
		PeakRSSBytes: PeakRSS(),
		Completed:    completed,
	}
	if tracer != nil {
		sr.Trace = wfm.TraceOf(res)
	}
	return sr, nil
}

// scaleStub is the loopback WfBench endpoint: decode, publish outputs
// to the drive, acknowledge. No simulated compute. It answers both the
// single-task POST and the framed /invoke-batch surface, so either
// transport measures the same amount of real work per task.
func scaleStub(drive sharedfs.Drive) *httptest.Server {
	execOne := func(req *wfbench.Request) *wfbench.Response {
		for name, size := range req.Out {
			drive.WriteFile(name, size)
		}
		return &wfbench.Response{Name: req.Name, OK: true}
	}
	return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasSuffix(r.URL.Path, "/invoke-batch") {
			items, err := wfbench.DecodeBatchRequest(r.Body)
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			results := make([]wfbench.BatchResult, len(items))
			for i, it := range items {
				var req wfbench.Request
				if err := json.Unmarshal(it.Body, &req); err != nil {
					results[i] = wfbench.BatchResult{Status: http.StatusBadRequest, Payload: []byte(err.Error())}
					continue
				}
				payload, _ := json.Marshal(execOne(&req))
				results[i] = wfbench.BatchResult{Status: http.StatusOK, Payload: payload}
			}
			wfbench.WriteBatchResponse(w, results)
			return
		}
		var req wfbench.Request
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(execOne(&req))
	}))
}

// scaleWorkflow builds the synthetic DAG. Every task publishes one
// output file; non-root tasks consume their parents' outputs, so DAG
// edges and shared-drive waits line up exactly.
func scaleWorkflow(cfg ScaleConfig, url string) (*wfformat.Workflow, int, error) {
	n := cfg.Tasks
	w := wfformat.New(fmt.Sprintf("scale-%s-%d", cfg.Shape, n))
	name := func(i int) string { return fmt.Sprintf("task_%08d", i) }
	out := func(i int) string { return fmt.Sprintf("out_%08d", i) }
	mk := func(i int, parents []int) *wfformat.Task {
		inputs := make([]string, len(parents))
		files := make([]wfformat.File, 0, len(parents)+1)
		files = append(files, wfformat.File{Link: wfformat.LinkOutput, Name: out(i), SizeInBytes: 1})
		for j, p := range parents {
			inputs[j] = out(p)
			files = append(files, wfformat.File{Link: wfformat.LinkInput, Name: out(p), SizeInBytes: 1})
		}
		return &wfformat.Task{
			Name: name(i),
			Type: wfformat.TypeCompute,
			Command: wfformat.Command{
				Program: "wfbench",
				Arguments: []wfformat.Argument{{
					Name:    name(i),
					CPUWork: 0,
					Out:     map[string]int64{out(i): 1},
					Inputs:  inputs,
				}},
				APIURL: url,
			},
			Files:            files,
			RuntimeInSeconds: 0.001,
			Cores:            1,
			Category:         "scale",
		}
	}

	parentsOf := make([][]int, n)
	switch cfg.Shape {
	case "chain":
		for i := 1; i < n; i++ {
			parentsOf[i] = []int{i - 1}
		}
	case "fanout":
		for i := 1; i < n; i++ {
			parentsOf[i] = []int{0}
		}
	case "random", "":
		width := cfg.Width
		if width <= 0 {
			width = 64
		}
		r := rand.New(rand.NewSource(cfg.Seed + 1))
		for i := width; i < n; i++ {
			layer := i / width
			prevStart := (layer - 1) * width
			prevEnd := layer * width
			if prevEnd > i {
				prevEnd = i
			}
			a := prevStart + r.Intn(prevEnd-prevStart)
			b := prevStart + r.Intn(prevEnd-prevStart)
			if a == b {
				parentsOf[i] = []int{a}
			} else {
				parentsOf[i] = []int{a, b}
			}
		}
	default:
		return nil, 0, fmt.Errorf("experiments: unknown scale shape %q", cfg.Shape)
	}

	edges := 0
	for i := 0; i < n; i++ {
		if err := w.AddTask(mk(i, parentsOf[i])); err != nil {
			return nil, 0, err
		}
	}
	for i := 0; i < n; i++ {
		for _, p := range parentsOf[i] {
			if err := w.Link(name(p), name(i)); err != nil {
				return nil, 0, err
			}
			edges++
		}
	}
	return w, edges, nil
}

// PeakRSS returns the process's peak resident set size in bytes from
// /proc/self/status (VmHWM), or 0 on platforms without procfs.
func PeakRSS() int64 {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return 0
		}
		return kb << 10
	}
	return 0
}
