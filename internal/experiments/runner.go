package experiments

import (
	"context"
	"fmt"
	"log/slog"
	"time"

	"wfserverless/internal/core"
	"wfserverless/internal/metrics"
	"wfserverless/internal/obs"
	"wfserverless/internal/wfformat"
	"wfserverless/internal/wfm"
)

// Tunables are the shared experiment parameters. All durations are
// nominal paper seconds; TimeScale compresses them for fast runs.
type Tunables struct {
	// TimeScale converts nominal seconds to wall seconds; the default
	// 0.02 keeps modeled durations well above wall-clock scheduling
	// noise while a 200-second campaign still runs in four seconds.
	TimeScale float64

	// Serverless platform knobs.
	ColdStart       float64 // pod startup latency
	AutoscalePeriod float64 // autoscaler tick
	StableWindow    float64 // idle window before pod reclaim
	// CPURequestPerWorker / MemRequestPerWorker size Knative pod
	// reservations (requests scale with containerConcurrency).
	CPURequestPerWorker float64
	MemRequestPerWorker int64

	// Local-container fleet: Containers x CPUsPerContainer cores are
	// reserved up front (the docker --cpus=2 of the paper's AD), each
	// with a hard memory limit when the paradigm declares requirements.
	LCContainers       int
	LCCPUsPerContainer float64
	LCMemLimit         int64

	// Shared per-process overheads.
	PodOverheadMem    int64
	WorkerOverheadMem int64
	PodOverheadCPU    float64

	// Workflow manager knobs.
	PhaseDelay  float64
	InputWait   float64
	MaxParallel int
	// Scheduling selects the manager's execution model: the paper's
	// phase barriers (wfm.SchedulePhases, the zero value) or
	// dependency-driven dispatch (wfm.ScheduleDependency).
	Scheduling wfm.Scheduling

	// SampleInterval is the telemetry period (the paper's pmdumptext
	// -t 1sec).
	SampleInterval float64

	// Resilience knobs forwarded to the workflow manager (nominal
	// seconds): see wfm.Options for semantics.
	Retries         int
	RetryBackoff    float64
	RetryBackoffMax float64
	TaskTimeout     float64
	Breaker         wfm.BreakerOptions
	// Batching coalesces same-endpoint invocations into framed
	// /invoke-batch POSTs (wfm.BatchOptions); off by default so the
	// paper-fidelity campaigns keep one HTTP request per task.
	Batching wfm.BatchOptions

	// InstantScaleUp is the autoscaler-ramp ablation knob: skip the
	// KPA-style doubling and create every needed pod in one tick.
	InstantScaleUp bool

	// Observability plumbing, all optional. Tracer records spans across
	// the manager, platform, and WfBench layers (the resulting trace
	// rides on Measurement.Trace); Monitor exposes live run progress;
	// Logger receives structured events from the manager's event loop.
	Tracer  *obs.Tracer
	Monitor *wfm.Monitor
	Logger  *slog.Logger
}

// DefaultTunables returns the parameters used throughout EXPERIMENTS.md.
func DefaultTunables() Tunables {
	const mb = int64(1) << 20
	return Tunables{
		TimeScale:           0.02,
		ColdStart:           2,
		AutoscalePeriod:     1,
		StableWindow:        6,
		CPURequestPerWorker: 0.5,
		MemRequestPerWorker: 64 * mb,
		LCContainers:        48,
		LCCPUsPerContainer:  2,
		LCMemLimit:          3 << 30,
		PodOverheadMem:      80 * mb,
		WorkerOverheadMem:   64 * mb,
		PodOverheadCPU:      0.05,
		PhaseDelay:          1,
		InputWait:           30,
		MaxParallel:         512,
		SampleInterval:      1,
	}
}

// SessionConfig maps a Table II paradigm plus the tunables onto a core
// session configuration. The coarse-grained paradigms provision one
// process that reserves (nearly) a whole machine, with no cold start and
// no scaling, matching Section V-C.
func SessionConfig(spec Spec, tn Tunables) (core.SessionConfig, error) {
	pc := core.PlatformConfig{
		Workers:           spec.Workers,
		PM:                spec.PM,
		PodOverheadMem:    tn.PodOverheadMem,
		WorkerOverheadMem: tn.WorkerOverheadMem,
		PodOverheadCPU:    tn.PodOverheadCPU,
		InputWait:         tn.InputWait,
	}
	// The paper-testbed node a coarse process monopolizes.
	const (
		coarseCores = 46
		coarseMem   = int64(156) << 30
	)
	switch spec.Kind {
	case KindKnative:
		pc.Kind = core.KindKnative
		pc.CPURequestPerWorker = tn.CPURequestPerWorker
		pc.MemRequestPerWorker = tn.MemRequestPerWorker
		pc.ColdStart = tn.ColdStart
		pc.AutoscalePeriod = tn.AutoscalePeriod
		pc.StableWindow = tn.StableWindow
		pc.InstantScaleUp = tn.InstantScaleUp
		if spec.Coarse {
			pc.MinScale, pc.MaxScale = 1, 1
			pc.ColdStart = 0
			pc.CPURequestPerWorker = coarseCores / float64(spec.Workers)
			pc.MemRequestPerWorker = coarseMem / int64(spec.Workers)
		}
	case KindLocal:
		pc.Kind = core.KindLocal
		pc.Containers = tn.LCContainers
		pc.CPUsPerContainer = tn.LCCPUsPerContainer
		pc.MemLimitPerContainer = tn.LCMemLimit
		if spec.Coarse {
			// One unique 1000-worker container reserving a whole
			// machine, mirroring the coarse serverless scenario.
			pc.Containers = 1
			pc.CPUsPerContainer = coarseCores
			pc.MemLimitPerContainer = coarseMem
		}
		if !spec.CR {
			pc.CPUsPerContainer = 0
			pc.MemLimitPerContainer = 0
		}
	default:
		return core.SessionConfig{}, fmt.Errorf("experiments: unknown platform kind %q", spec.Kind)
	}
	return core.SessionConfig{
		TimeScale:       tn.TimeScale,
		Platform:        pc,
		PhaseDelay:      tn.PhaseDelay,
		InputWait:       tn.InputWait,
		MaxParallel:     tn.MaxParallel,
		Scheduling:      tn.Scheduling,
		SampleInterval:  tn.SampleInterval,
		Retries:         tn.Retries,
		RetryBackoff:    tn.RetryBackoff,
		RetryBackoffMax: tn.RetryBackoffMax,
		TaskTimeout:     tn.TaskTimeout,
		Breaker:         tn.Breaker,
		Batching:        tn.Batching,
		Tracer:          tn.Tracer,
		Monitor:         tn.Monitor,
		Logger:          tn.Logger,
	}, nil
}

// Measurement is the paper's per-experiment record: execution time,
// power, CPU, and memory usage, plus platform counters that explain the
// behaviour (cold starts, queueing, scale stalls).
type Measurement struct {
	Paradigm Paradigm
	Workflow string
	Recipe   string
	Tasks    int
	Group    int // paper behavioural group (1 or 2), 0 if unknown

	// MakespanS is end-to-end execution time in nominal seconds.
	MakespanS float64
	// MeanPowerW / EnergyJ from the RAPL-style model.
	MeanPowerW float64
	EnergyJ    float64
	// MeanCPUCores is the paper's "CPU usage": time-averaged
	// max(provisioned, busy) cores.
	MeanCPUCores float64
	MaxCPUCores  float64
	// MeanBusyCores is the raw kernel.all.cpu.user average.
	MeanBusyCores float64
	// MeanMemGB / MaxMemGB are resident memory (mem.util.used).
	MeanMemGB float64
	MaxMemGB  float64

	ColdStarts  int64
	Requests    int64
	Failures    int64
	ScaleStalls int64
	Wall        time.Duration

	// Trace carries the run's spans when Tunables.Tracer was set; nil
	// otherwise.
	Trace *wfm.Trace `json:",omitempty"`
}

// gb converts bytes to GiB.
func gb(b float64) float64 { return b / float64(int64(1)<<30) }

// RunWorkflow executes one experiment: the workflow under the paradigm,
// on a fresh paper-testbed cluster, fully sampled.
func RunWorkflow(ctx context.Context, spec Spec, w *wfformat.Workflow, tn Tunables) (*Measurement, error) {
	if tn.TimeScale <= 0 {
		return nil, fmt.Errorf("experiments: TimeScale must be positive")
	}
	cfg, err := SessionConfig(spec, tn)
	if err != nil {
		return nil, err
	}
	sess, err := core.NewSession(cfg)
	if err != nil {
		return nil, err
	}
	defer sess.Close()

	m := &Measurement{
		Paradigm: spec.ID,
		Workflow: w.Name,
		Tasks:    w.Len(),
	}
	if err := sess.StartSampling(); err != nil {
		return nil, err
	}
	res, runErr := sess.Run(ctx, w)
	sess.StopSampling()

	if p := sess.Knative(); p != nil {
		m.ColdStarts = p.ColdStarts()
		m.Requests = p.Requests()
		m.Failures = p.Failures()
		m.ScaleStalls = p.ScaleStalls()
	} else if rt := sess.LocalRuntime(); rt != nil {
		m.Requests = rt.Requests()
		m.Failures = rt.Failures()
	}
	if runErr != nil {
		return m, fmt.Errorf("experiments: %s on %s: %w", w.Name, spec.ID, runErr)
	}

	sampler := sess.Sampler()
	m.MakespanS = res.Makespan
	m.Wall = res.Wall
	m.MeanPowerW = sampler.MeanOf(metrics.MetricPower)
	m.EnergyJ = sampler.SeriesFor(metrics.MetricPower).Integral() / tn.TimeScale
	m.MeanCPUCores = sampler.MeanOf("cpu.usage.cores")
	m.MaxCPUCores = sampler.MaxOf("cpu.usage.cores")
	m.MeanBusyCores = sampler.MeanOf(metrics.MetricCPUUser)
	m.MeanMemGB = gb(sampler.MeanOf(metrics.MetricMemUsed))
	m.MaxMemGB = gb(sampler.MaxOf(metrics.MetricMemUsed))
	if tn.Tracer != nil {
		m.Trace = wfm.TraceOf(res)
	}
	return m, nil
}
