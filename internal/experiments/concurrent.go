package experiments

import (
	"context"
	"fmt"
	"sync"

	"wfserverless/internal/core"
	"wfserverless/internal/metrics"
	"wfserverless/internal/wfformat"
)

// ConcurrentMeasurement records a multi-workflow run: several workflows
// submitted to one platform at once — the paper's future-work conjecture
// that "fine-grained resource management and the auto-scaling mechanism
// of serverless can improve even more aspects such as resource usage,
// when we consider the invocation of multiple concurrent functions by
// different workflows" (Section VII).
type ConcurrentMeasurement struct {
	Paradigm  Paradigm
	Workflows []string
	Tasks     int

	// MakespanS is the nominal time until the last workflow finishes.
	MakespanS float64
	// SumSoloS is the sum of per-workflow makespans when run alone on
	// the same paradigm — the serialized baseline.
	SumSoloS float64
	// Interleave = MakespanS / SumSoloS; < 1 means the platform
	// overlapped the workflows.
	Interleave float64

	MeanPowerW   float64
	MeanCPUCores float64
	MeanMemGB    float64
	Failures     int64
}

// RunConcurrent executes the workflows simultaneously on one session of
// the given paradigm and contrasts against running each alone.
func RunConcurrent(ctx context.Context, spec Spec, workflows []*wfformat.Workflow, tn Tunables) (*ConcurrentMeasurement, error) {
	if len(workflows) == 0 {
		return nil, fmt.Errorf("experiments: RunConcurrent needs workflows")
	}
	out := &ConcurrentMeasurement{Paradigm: spec.ID}
	for _, w := range workflows {
		out.Workflows = append(out.Workflows, w.Name)
		out.Tasks += w.Len()
	}

	// Solo baselines, one fresh session each.
	for _, w := range workflows {
		m, err := RunWorkflow(ctx, spec, w, tn)
		if err != nil {
			return nil, fmt.Errorf("experiments: solo %s: %w", w.Name, err)
		}
		out.SumSoloS += m.MakespanS
	}

	// Concurrent run on one shared session.
	cfg, err := SessionConfig(spec, tn)
	if err != nil {
		return nil, err
	}
	sess, err := core.NewSession(cfg)
	if err != nil {
		return nil, err
	}
	defer sess.Close()
	if err := sess.StartSampling(); err != nil {
		return nil, err
	}
	var wg sync.WaitGroup
	errs := make([]error, len(workflows))
	makespans := make([]float64, len(workflows))
	for i, w := range workflows {
		wg.Add(1)
		go func(i int, w *wfformat.Workflow) {
			defer wg.Done()
			res, err := sess.Run(ctx, w)
			errs[i] = err
			if res != nil {
				makespans[i] = res.Makespan
			}
		}(i, w)
	}
	wg.Wait()
	sess.StopSampling()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("experiments: concurrent %s: %w", workflows[i].Name, err)
		}
	}
	for _, ms := range makespans {
		if ms > out.MakespanS {
			out.MakespanS = ms
		}
	}
	if out.SumSoloS > 0 {
		out.Interleave = out.MakespanS / out.SumSoloS
	}
	s := sess.Sampler()
	out.MeanPowerW = s.MeanOf(metrics.MetricPower)
	out.MeanCPUCores = s.MeanOf("cpu.usage.cores")
	out.MeanMemGB = gb(s.MeanOf(metrics.MetricMemUsed))
	if p := sess.Knative(); p != nil {
		out.Failures = p.Failures()
	} else if rt := sess.LocalRuntime(); rt != nil {
		out.Failures = rt.Failures()
	}
	return out, nil
}
