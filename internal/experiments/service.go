package experiments

// This file implements the service campaign: the multi-run control
// plane's acceptance experiment. Three phases exercise wfmd end to
// end over its real HTTP surface (an httptest listener in front of
// Server.Handler, driven through wfmd.Client):
//
//  1. Fairness and quotas. Two saturating tenants with 3:1 weights
//     submit identical batches of runs. Gates: neither tenant's
//     simultaneously running runs ever exceed its quota, and the
//     contested task-grant ratio lands within 15% of the configured
//     weights — weights only bind under contention, so the ratio is
//     measured over grants made while both tenants had waiting work.
//
//  2. Backpressure. A deliberately tiny admission queue is flooded.
//     Gates: overflow is rejected with 429 plus a parseable
//     Retry-After, and a client that honours the hint (wfmd.Client's
//     backoff loop) eventually lands every submission.
//
//  3. Crash recovery. The daemon is killed (Server.Abort — journals
//     lose their unsynced tails exactly as SIGKILL would lose them)
//     mid-flight with runs from two tenants in the air, then
//     restarted on the same data dir. Gates: every incomplete run is
//     re-admitted and driven to success, and no task any run's
//     journal recorded as completed is ever invoked again, verified
//     against per-task execution counts from the stub that survives
//     both daemon lives.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"time"

	"wfserverless/internal/journal"
	"wfserverless/internal/sharedfs"
	"wfserverless/internal/wfbench"
	"wfserverless/internal/wfformat"
	"wfserverless/internal/wfm"
	"wfserverless/internal/wfmd"
)

// ServiceConfig parameterizes the service campaign.
type ServiceConfig struct {
	// RunsPerTenant is how many runs each tenant submits in the
	// fairness phase (default 6).
	RunsPerTenant int
	// TasksPerRun is each synthetic workflow's size (default 64).
	TasksPerRun int
	// HeavyWeight/LightWeight are the two tenants' fair-share weights
	// (defaults 3 and 1) — the ratio is the fairness gate's target.
	HeavyWeight float64
	LightWeight float64
	// RunQuota is each tenant's MaxConcurrentRuns (default 2).
	RunQuota int
	// TaskSlots is the global in-flight invocation budget (default 4,
	// small so cross-tenant contention is constant).
	TaskSlots int
	// StubDelay is the stub endpoint's per-invocation latency
	// (default 2ms), the knob that keeps the task gate saturated.
	StubDelay time.Duration
	// TimeScale compresses the managers' nominal seconds (default 0.001).
	TimeScale float64
}

func (c ServiceConfig) withDefaults() ServiceConfig {
	if c.RunsPerTenant == 0 {
		c.RunsPerTenant = 6
	}
	if c.TasksPerRun == 0 {
		c.TasksPerRun = 64
	}
	if c.HeavyWeight == 0 {
		c.HeavyWeight = 3
	}
	if c.LightWeight == 0 {
		c.LightWeight = 1
	}
	if c.RunQuota == 0 {
		c.RunQuota = 2
	}
	if c.TaskSlots == 0 {
		c.TaskSlots = 4
	}
	if c.StubDelay == 0 {
		c.StubDelay = 2 * time.Millisecond
	}
	if c.TimeScale == 0 {
		c.TimeScale = 0.001
	}
	return c
}

// ServiceReport is the campaign's measured outcome; the Gate* fields
// are the acceptance checks the suite fails on.
type ServiceReport struct {
	// Fairness phase.
	HeavyRuns, LightRuns           int
	HeavyHighwater, LightHighwater int
	RunQuota                       int
	HeavyContested, LightContested int64
	ContestedRatio                 float64
	TargetRatio                    float64
	TaskHighwater                  int
	TaskSlots                      int

	// Backpressure phase.
	Submitted429  int
	RetryAfterHdr string
	DrainedRuns   int

	// Recovery phase.
	RecoveryRuns         int
	CrashCompleted       int
	ResumedRuns          int
	DuplicateInvocations int
	RecoveredSucceeded   int

	GateQuota        bool
	GateFairShare    bool
	GateBackpressure bool
	GateRecovery     bool
}

// Gates reports whether every acceptance gate held.
func (r ServiceReport) Gates() bool {
	return r.GateQuota && r.GateFairShare && r.GateBackpressure && r.GateRecovery
}

// serviceStub is a loopback WfBench endpoint that counts executions
// per task name across daemon lifetimes and publishes outputs to the
// shared drive — the recovery phase's ground truth for duplicates.
type serviceStub struct {
	drive sharedfs.Drive
	delay time.Duration

	mu sync.Mutex
	n  map[string]int
}

func (st *serviceStub) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	var req wfbench.Request
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	st.mu.Lock()
	st.n[req.Name]++
	st.mu.Unlock()
	if st.delay > 0 {
		time.Sleep(st.delay)
	}
	for name, size := range req.Out {
		st.drive.WriteFile(name, size)
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(&wfbench.Response{Name: req.Name, OK: true})
}

func (st *serviceStub) counts() map[string]int {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make(map[string]int, len(st.n))
	for k, v := range st.n {
		out[k] = v
	}
	return out
}

func (st *serviceStub) total() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	t := 0
	for _, n := range st.n {
		t += n
	}
	return t
}

// serviceWorkflow builds a prefixed root + children fanout whose task
// and file names are namespaced per run, marshalled for submission.
func serviceWorkflow(prefix string, tasks int, url string) ([]byte, error) {
	w := wfformat.New(prefix)
	name := func(i int) string { return fmt.Sprintf("%s_t%04d", prefix, i) }
	out := func(i int) string { return fmt.Sprintf("%s_out%04d", prefix, i) }
	mk := func(i, parent int) *wfformat.Task {
		files := []wfformat.File{{Link: wfformat.LinkOutput, Name: out(i), SizeInBytes: 1}}
		var inputs []string
		if parent >= 0 {
			inputs = []string{out(parent)}
			files = append(files, wfformat.File{Link: wfformat.LinkInput, Name: out(parent), SizeInBytes: 1})
		}
		return &wfformat.Task{
			Name: name(i),
			Type: wfformat.TypeCompute,
			Command: wfformat.Command{
				Program: "wfbench",
				Arguments: []wfformat.Argument{{
					Name:   name(i),
					Out:    map[string]int64{out(i): 1},
					Inputs: inputs,
				}},
				APIURL: url,
			},
			Files:            files,
			RuntimeInSeconds: 0.001,
			Cores:            1,
			Category:         "svc",
		}
	}
	if err := w.AddTask(mk(0, -1)); err != nil {
		return nil, err
	}
	for i := 1; i < tasks; i++ {
		if err := w.AddTask(mk(i, 0)); err != nil {
			return nil, err
		}
		if err := w.Link(name(0), name(i)); err != nil {
			return nil, err
		}
	}
	return w.Marshal()
}

// serviceEnv is one phase's world: a shared drive, the counting stub,
// and a wfmd over a temp data dir, fronted by a real HTTP listener.
type serviceEnv struct {
	drive   sharedfs.Drive
	stub    *serviceStub
	stubSrv *httptest.Server
	dataDir string

	srv  *wfmd.Server
	http *httptest.Server
}

func newServiceEnv(cfg ServiceConfig) (*serviceEnv, error) {
	drive := sharedfs.NewMem()
	stub := &serviceStub{drive: drive, delay: cfg.StubDelay, n: make(map[string]int)}
	dataDir, err := os.MkdirTemp("", "wfmd-service-")
	if err != nil {
		return nil, err
	}
	return &serviceEnv{
		drive: drive, stub: stub,
		stubSrv: httptest.NewServer(stub),
		dataDir: dataDir,
	}, nil
}

// start boots a wfmd over the env's data dir — callable again after a
// stop or abort to model a daemon restart.
func (e *serviceEnv) start(cfg ServiceConfig, svc wfmd.Config) error {
	svc.DataDir = e.dataDir
	svc.Manager = wfm.Options{
		Drive:        e.drive,
		TimeScale:    cfg.TimeScale,
		MaxParallel:  64,
		Scheduling:   wfm.ScheduleDependency,
		InputWait:    5000,
		Retries:      2,
		RetryBackoff: 0.05,
	}
	svc.JournalSync = journal.SyncGroup
	srv, err := wfmd.New(svc)
	if err != nil {
		return err
	}
	e.srv = srv
	e.http = httptest.NewServer(srv.Handler())
	return nil
}

func (e *serviceEnv) stopHTTP() {
	if e.http != nil {
		e.http.Close()
		e.http = nil
	}
}

func (e *serviceEnv) Close() {
	e.stopHTTP()
	if e.srv != nil {
		e.srv.Stop()
	}
	e.stubSrv.Close()
	os.RemoveAll(e.dataDir)
}

func (e *serviceEnv) client(tenant string) *wfmd.Client {
	return &wfmd.Client{
		BaseURL: e.http.URL, Tenant: tenant,
		RetryBackoff: 0.02, RetryBackoffMax: 0.2, MaxRetries: 400,
	}
}

// Service runs the campaign's three phases and fills in the gates.
func Service(ctx context.Context, cfg ServiceConfig) (*ServiceReport, error) {
	cfg = cfg.withDefaults()
	rep := &ServiceReport{
		RunQuota:    cfg.RunQuota,
		TaskSlots:   cfg.TaskSlots,
		TargetRatio: cfg.HeavyWeight / cfg.LightWeight,
	}
	if err := serviceFairness(ctx, cfg, rep); err != nil {
		return rep, err
	}
	if err := serviceBackpressure(ctx, cfg, rep); err != nil {
		return rep, err
	}
	if err := serviceRecovery(ctx, cfg, rep); err != nil {
		return rep, err
	}
	return rep, nil
}

// serviceFairness saturates the task gate with two weighted tenants
// and measures quota adherence and the contested-grant ratio.
func serviceFairness(ctx context.Context, cfg ServiceConfig, rep *ServiceReport) error {
	env, err := newServiceEnv(cfg)
	if err != nil {
		return err
	}
	defer env.Close()
	if err := env.start(cfg, wfmd.Config{
		Tenants: []wfmd.TenantConfig{
			{Name: "heavy", Weight: cfg.HeavyWeight, MaxConcurrentRuns: cfg.RunQuota},
			{Name: "light", Weight: cfg.LightWeight, MaxConcurrentRuns: cfg.RunQuota},
		},
		QueueCapacity: 4 * cfg.RunsPerTenant,
		TaskSlots:     cfg.TaskSlots,
		RetryAfter:    0.05,
	}); err != nil {
		return err
	}

	var wg sync.WaitGroup
	errs := make(chan error, 2*cfg.RunsPerTenant)
	submitAll := func(tenant string) {
		defer wg.Done()
		c := env.client(tenant)
		ids := make([]string, 0, cfg.RunsPerTenant)
		for i := 0; i < cfg.RunsPerTenant; i++ {
			wf, err := serviceWorkflow(fmt.Sprintf("%s%d", tenant, i), cfg.TasksPerRun, env.stubSrv.URL)
			if err != nil {
				errs <- err
				return
			}
			st, err := c.Submit(ctx, wf)
			if err != nil {
				errs <- fmt.Errorf("submit %s run %d: %w", tenant, i, err)
				return
			}
			ids = append(ids, st.ID)
		}
		for _, id := range ids {
			st, err := c.Wait(ctx, id, 20*time.Millisecond)
			if err != nil {
				errs <- err
				return
			}
			if st.State != wfmd.StateSucceeded {
				errs <- fmt.Errorf("%s run %s ended %s: %s", tenant, id, st.State, st.Error)
				return
			}
		}
	}
	wg.Add(2)
	go submitAll("heavy")
	go submitAll("light")
	wg.Wait()
	close(errs)
	for err := range errs {
		return err
	}

	for _, ts := range env.srv.TenantStats() {
		switch ts.Tenant {
		case "heavy":
			rep.HeavyRuns = int(ts.RunsAccepted)
			rep.HeavyHighwater = ts.RunHighwater
			rep.HeavyContested = ts.ContestedGrants
		case "light":
			rep.LightRuns = int(ts.RunsAccepted)
			rep.LightHighwater = ts.RunHighwater
			rep.LightContested = ts.ContestedGrants
		}
		if ts.TaskHighwater > rep.TaskHighwater {
			rep.TaskHighwater = ts.TaskHighwater
		}
	}
	rep.GateQuota = rep.HeavyHighwater <= cfg.RunQuota && rep.LightHighwater <= cfg.RunQuota &&
		rep.HeavyHighwater > 0 && rep.LightHighwater > 0
	if rep.LightContested > 0 {
		rep.ContestedRatio = float64(rep.HeavyContested) / float64(rep.LightContested)
	}
	rep.GateFairShare = rep.HeavyContested > 0 && rep.LightContested > 0 &&
		rep.ContestedRatio >= rep.TargetRatio*0.85 && rep.ContestedRatio <= rep.TargetRatio*1.15
	return nil
}

// serviceBackpressure floods a two-deep queue and checks rejection is
// honest (429 + Retry-After) and retrying clients eventually land.
func serviceBackpressure(ctx context.Context, cfg ServiceConfig, rep *ServiceReport) error {
	env, err := newServiceEnv(cfg)
	if err != nil {
		return err
	}
	defer env.Close()
	if err := env.start(cfg, wfmd.Config{
		Tenants:       []wfmd.TenantConfig{{Name: "flood", Weight: 1, MaxConcurrentRuns: 1}},
		QueueCapacity: 2,
		TaskSlots:     cfg.TaskSlots,
		RetryAfter:    0.05,
	}); err != nil {
		return err
	}

	// Raw POSTs, no retry: with quota 1 and a queue of 2, the burst
	// must overflow into 429s carrying a Retry-After hint.
	const burst = 8
	accepted := 0
	for i := 0; i < burst; i++ {
		wf, err := serviceWorkflow(fmt.Sprintf("bp%d", i), cfg.TasksPerRun/4, env.stubSrv.URL)
		if err != nil {
			return err
		}
		resp, err := http.Post(env.http.URL+"/v1/runs?tenant=flood", "application/json", bytes.NewReader(wf))
		if err != nil {
			return err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusAccepted:
			accepted++
		case http.StatusTooManyRequests:
			rep.Submitted429++
			if h := resp.Header.Get("Retry-After"); rep.RetryAfterHdr == "" && wfm.ParseRetryAfter(h) > 0 {
				rep.RetryAfterHdr = h
			}
		default:
			return fmt.Errorf("backpressure burst: unexpected status %d", resp.StatusCode)
		}
	}

	// The polite client retries the rejected remainder on the shared
	// backoff policy until the queue drains.
	c := env.client("flood")
	for i := 0; i < burst-accepted; i++ {
		wf, err := serviceWorkflow(fmt.Sprintf("bpretry%d", i), cfg.TasksPerRun/4, env.stubSrv.URL)
		if err != nil {
			return err
		}
		if _, err := c.Submit(ctx, wf); err != nil {
			return fmt.Errorf("backpressure retry %d: %w", i, err)
		}
	}
	// Drain everything.
	runs, err := c.List(ctx, false)
	if err != nil {
		return err
	}
	for _, st := range runs {
		final, err := c.Wait(ctx, st.ID, 20*time.Millisecond)
		if err != nil {
			return err
		}
		if final.State != wfmd.StateSucceeded {
			return fmt.Errorf("backpressure run %s ended %s", st.ID, final.State)
		}
		rep.DrainedRuns++
	}
	rep.GateBackpressure = rep.Submitted429 > 0 && rep.RetryAfterHdr != "" &&
		rep.DrainedRuns == burst
	return nil
}

// serviceRecovery kills the daemon mid-flight and checks the restart
// resumes every incomplete run without re-invoking journal-recorded
// completions.
func serviceRecovery(ctx context.Context, cfg ServiceConfig, rep *ServiceReport) error {
	env, err := newServiceEnv(cfg)
	if err != nil {
		return err
	}
	defer env.Close()
	svc := wfmd.Config{
		Tenants: []wfmd.TenantConfig{
			{Name: "heavy", Weight: cfg.HeavyWeight, MaxConcurrentRuns: cfg.RunQuota},
			{Name: "light", Weight: cfg.LightWeight, MaxConcurrentRuns: cfg.RunQuota},
		},
		QueueCapacity: 16,
		TaskSlots:     cfg.TaskSlots,
		RetryAfter:    0.05,
	}
	if err := env.start(cfg, svc); err != nil {
		return err
	}

	// Life 1: submit runs for both tenants, let roughly a third of the
	// total work land, then crash.
	type submitted struct {
		id, tenant string
	}
	var subs []submitted
	for _, tenant := range []string{"heavy", "light"} {
		c := env.client(tenant)
		for i := 0; i < 2; i++ {
			wf, err := serviceWorkflow(fmt.Sprintf("rc_%s%d", tenant, i), cfg.TasksPerRun, env.stubSrv.URL)
			if err != nil {
				return err
			}
			st, err := c.Submit(ctx, wf)
			if err != nil {
				return err
			}
			subs = append(subs, submitted{st.ID, tenant})
		}
	}
	rep.RecoveryRuns = len(subs)
	target := len(subs) * cfg.TasksPerRun / 3
	deadline := time.Now().Add(30 * time.Second)
	for env.stub.total() < target {
		if time.Now().After(deadline) {
			return fmt.Errorf("recovery phase: stub saw %d executions, wanted %d", env.stub.total(), target)
		}
		time.Sleep(2 * time.Millisecond)
	}
	env.stopHTTP()
	env.srv.Abort() // blocks until every executor is down; journals lose unsynced tails
	env.srv = nil

	// Snapshot the ground truth: per-run journal-recorded completions
	// and the stub's execution counts at the moment of death.
	type recorded struct {
		run   string
		names []string
	}
	var journalled []recorded
	runsRoot := wfmd.RunsRoot(env.dataDir)
	for _, sub := range subs {
		dir := filepath.Join(runsRoot, sub.id)
		w, err := wfformat.Load(filepath.Join(dir, "workflow.json"))
		if err != nil {
			return err
		}
		sum, err := wfm.ReadRunJournal(filepath.Join(dir, "journal"))
		if err != nil {
			return err
		}
		names := w.TaskNames()
		rec := recorded{run: sub.id}
		for _, id := range sum.CompletedIDs {
			rec.names = append(rec.names, names[id])
		}
		rep.CrashCompleted += len(rec.names)
		journalled = append(journalled, rec)
	}
	countsAtCrash := env.stub.counts()

	// Life 2: same data dir, fresh daemon. Every incomplete run must
	// come back and finish.
	if err := env.start(cfg, svc); err != nil {
		return err
	}
	c := env.client("")
	for _, sub := range subs {
		st, err := c.Wait(ctx, sub.id, 20*time.Millisecond)
		if err != nil {
			return err
		}
		if st.State != wfmd.StateSucceeded {
			return fmt.Errorf("recovery run %s ended %s: %s", sub.id, st.State, st.Error)
		}
		rep.RecoveredSucceeded++
		if st.Resumed {
			rep.ResumedRuns++
		}
	}
	after := env.stub.counts()
	for _, rec := range journalled {
		for _, name := range rec.names {
			if after[name] != countsAtCrash[name] {
				rep.DuplicateInvocations++
			}
		}
	}
	rep.GateRecovery = rep.RecoveredSucceeded == rep.RecoveryRuns &&
		rep.ResumedRuns > 0 && rep.CrashCompleted > 0 &&
		rep.DuplicateInvocations == 0
	return nil
}

// WriteServiceReport renders the campaign outcome with one gate line
// per acceptance check.
func WriteServiceReport(w io.Writer, r *ServiceReport) error {
	gate := func(ok bool) string {
		if ok {
			return "PASS"
		}
		return "FAIL"
	}
	_, err := fmt.Fprintf(w, `fairness/quota
  runs: heavy=%d light=%d   run highwater: heavy=%d light=%d (quota %d)
  contested grants: heavy=%d light=%d   ratio %.2f (target %.2f +-15%%)
  task highwater %d (slots %d)
  [%s] per-tenant concurrent-run quota never exceeded
  [%s] fair-share dispatch ratio within 15%% of weights
backpressure
  429s=%d retry-after=%q drained=%d
  [%s] queue overflow rejected with 429 + Retry-After, retries drained
recovery
  runs=%d journalled-complete-at-crash=%d resumed=%d duplicates=%d
  [%s] restart resumed every run, zero duplicate invocations
`,
		r.HeavyRuns, r.LightRuns, r.HeavyHighwater, r.LightHighwater, r.RunQuota,
		r.HeavyContested, r.LightContested, r.ContestedRatio, r.TargetRatio,
		r.TaskHighwater, r.TaskSlots,
		gate(r.GateQuota), gate(r.GateFairShare),
		r.Submitted429, r.RetryAfterHdr, r.DrainedRuns, gate(r.GateBackpressure),
		r.RecoveryRuns, r.CrashCompleted, r.ResumedRuns, r.DuplicateInvocations,
		gate(r.GateRecovery))
	return err
}
