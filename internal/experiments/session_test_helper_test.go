package experiments

import "wfserverless/internal/core"

// newSessionForTest exposes core session construction to integration
// tests that need to override the engine.
func newSessionForTest(cfg core.SessionConfig) (*core.Session, error) {
	return core.NewSession(cfg)
}
