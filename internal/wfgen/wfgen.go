// Package wfgen is the WfGen component of this reproduction: it turns a
// recipe plus sizing/intensity parameters into concrete workflow
// instances, and produces the benchmark suites of the paper's evaluation
// — seven applications at multiple sizes, named the way the paper's
// artifacts name them (e.g. "BlastRecipe-250-1000": recipe, cpu-work
// knob, task count).
package wfgen

import (
	"fmt"
	"math/rand"

	"wfserverless/internal/recipes"
	"wfserverless/internal/wfformat"
)

// Spec describes one workflow instance to generate.
type Spec struct {
	// Recipe is a registered recipe name ("blast", "cycles", ...).
	Recipe string
	// NumTasks is the requested workflow size.
	NumTasks int
	// Seed drives the recipe's size jitter; equal specs with equal
	// seeds generate identical instances.
	Seed int64
	// CPUWork rescales every task's cpu-work so its mean is this value
	// (the WfBench "cpu-work" knob the paper fixes at 100-250). Zero
	// keeps the recipe's defaults.
	CPUWork float64
	// DataFactor multiplies every file size; zero or one keeps the
	// recipe's defaults.
	DataFactor float64
}

// InstanceName renders the paper's artifact naming scheme,
// e.g. "BlastRecipe-250-1000".
func (s Spec) InstanceName() string {
	cw := s.CPUWork
	if cw == 0 {
		cw = 100
	}
	r, err := recipes.ForName(s.Recipe)
	display := s.Recipe
	if err == nil {
		display = r.DisplayName()
	}
	return fmt.Sprintf("%sRecipe-%d-%d", display, int(cw), s.NumTasks)
}

// Generate instantiates the spec.
func Generate(s Spec) (*wfformat.Workflow, error) {
	r, err := recipes.ForName(s.Recipe)
	if err != nil {
		return nil, err
	}
	if s.NumTasks < r.MinTasks() {
		return nil, fmt.Errorf("wfgen: %s needs >= %d tasks, got %d", s.Recipe, r.MinTasks(), s.NumTasks)
	}
	w, err := r.Generate(s.NumTasks, rand.New(rand.NewSource(s.Seed)))
	if err != nil {
		return nil, err
	}
	if s.CPUWork > 0 {
		// Recipes centre cpu-work on 100; rescale to the requested knob.
		scale := s.CPUWork / 100
		for _, t := range w.Tasks {
			for i := range t.Command.Arguments {
				t.Command.Arguments[i].CPUWork *= scale
			}
			t.RuntimeInSeconds *= scale
		}
	}
	if s.DataFactor > 0 && s.DataFactor != 1 {
		for _, t := range w.Tasks {
			for i := range t.Files {
				t.Files[i].SizeInBytes = int64(float64(t.Files[i].SizeInBytes) * s.DataFactor)
			}
			for i := range t.Command.Arguments {
				for k, v := range t.Command.Arguments[i].Out {
					t.Command.Arguments[i].Out[k] = int64(float64(v) * s.DataFactor)
				}
			}
		}
	}
	w.Name = s.InstanceName()
	if err := w.Validate(); err != nil {
		return nil, fmt.Errorf("wfgen: generated invalid workflow: %w", err)
	}
	return w, nil
}

// MutateTask deterministically perturbs one task's computational
// content: its cpu-work (and nominal runtime) grow by 10%, plus a
// fixed offset so zero-work tasks change too. The workflow's structure
// and file manifest are untouched, so under content-addressed
// memoization exactly this task and its transitive descendants acquire
// new fingerprints — the single-task-edit half of an incremental
// re-execution experiment.
func MutateTask(w *wfformat.Workflow, name string) error {
	t, ok := w.Tasks[name]
	if !ok {
		return fmt.Errorf("wfgen: mutate-task: no task named %q", name)
	}
	for i := range t.Command.Arguments {
		t.Command.Arguments[i].CPUWork = t.Command.Arguments[i].CPUWork*1.1 + 1
	}
	t.RuntimeInSeconds = t.RuntimeInSeconds*1.1 + 0.001
	return nil
}

// SuiteSpec generates one instance per recipe at each size — the
// paper's benchmark suite (7 workflows x sizes).
type SuiteSpec struct {
	Sizes   []int
	Seed    int64
	CPUWork float64
}

// Instance pairs a generated workflow with its originating spec.
type Instance struct {
	Spec     Spec
	Workflow *wfformat.Workflow
}

// GenerateSuite builds the full benchmark suite. Recipes whose MinTasks
// exceeds a requested size are generated at MinTasks instead, so small
// smoke suites still cover all applications.
func GenerateSuite(s SuiteSpec) ([]Instance, error) {
	var out []Instance
	for _, r := range recipes.All() {
		for _, size := range s.Sizes {
			n := size
			if n < r.MinTasks() {
				n = r.MinTasks()
			}
			spec := Spec{Recipe: r.Name(), NumTasks: n, Seed: s.Seed, CPUWork: s.CPUWork}
			w, err := Generate(spec)
			if err != nil {
				return nil, fmt.Errorf("wfgen: suite %s size %d: %w", r.Name(), size, err)
			}
			out = append(out, Instance{Spec: spec, Workflow: w})
		}
	}
	return out, nil
}
