package wfgen

import (
	"reflect"
	"testing"

	"wfserverless/internal/recipes"
	"wfserverless/internal/wfformat"
)

func TestGenerateBasic(t *testing.T) {
	w, err := Generate(Spec{Recipe: "blast", NumTasks: 50, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if w.Len() != 50 {
		t.Fatalf("Len = %d", w.Len())
	}
	if w.Name != "BlastRecipe-100-50" {
		t.Fatalf("Name = %q", w.Name)
	}
}

func TestGenerateUnknownRecipe(t *testing.T) {
	if _, err := Generate(Spec{Recipe: "nope", NumTasks: 10}); err == nil {
		t.Fatal("unknown recipe accepted")
	}
}

func TestGenerateTooSmall(t *testing.T) {
	if _, err := Generate(Spec{Recipe: "blast", NumTasks: 2}); err == nil {
		t.Fatal("size below MinTasks accepted")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, _ := Generate(Spec{Recipe: "cycles", NumTasks: 60, Seed: 42})
	b, _ := Generate(Spec{Recipe: "cycles", NumTasks: 60, Seed: 42})
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same spec+seed differ")
	}
	c, _ := Generate(Spec{Recipe: "cycles", NumTasks: 60, Seed: 43})
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical jitter")
	}
}

func TestCPUWorkScaling(t *testing.T) {
	base, _ := Generate(Spec{Recipe: "blast", NumTasks: 20, Seed: 7})
	scaled, _ := Generate(Spec{Recipe: "blast", NumTasks: 20, Seed: 7, CPUWork: 250})
	for name, bt := range base.Tasks {
		st := scaled.Tasks[name]
		ratio := st.Command.Arguments[0].CPUWork / bt.Command.Arguments[0].CPUWork
		if ratio < 2.49 || ratio > 2.51 {
			t.Fatalf("task %s cpu-work ratio = %v, want 2.5", name, ratio)
		}
		if st.RuntimeInSeconds <= bt.RuntimeInSeconds {
			t.Fatalf("runtime not rescaled for %s", name)
		}
	}
	if scaled.Name != "BlastRecipe-250-20" {
		t.Fatalf("Name = %q", scaled.Name)
	}
}

func TestDataFactorScaling(t *testing.T) {
	base, _ := Generate(Spec{Recipe: "bwa", NumTasks: 20, Seed: 7})
	scaled, _ := Generate(Spec{Recipe: "bwa", NumTasks: 20, Seed: 7, DataFactor: 2})
	if got, want := scaled.TotalDataBytes(), base.TotalDataBytes(); got < want*19/10 {
		t.Fatalf("TotalDataBytes = %d, want ~2x %d", got, want)
	}
	// Out map scaled consistently with Files
	for name, st := range scaled.Tasks {
		bt := base.Tasks[name]
		for k, v := range st.Command.Arguments[0].Out {
			if v != bt.Command.Arguments[0].Out[k]*2 {
				t.Fatalf("task %s out %s = %d, want %d", name, k, v, bt.Command.Arguments[0].Out[k]*2)
			}
		}
	}
}

func TestInstanceNameUnknownRecipe(t *testing.T) {
	s := Spec{Recipe: "mystery", NumTasks: 9, CPUWork: 250}
	if got := s.InstanceName(); got != "mysteryRecipe-250-9" {
		t.Fatalf("InstanceName = %q", got)
	}
}

func TestGenerateSuiteCoversAllRecipes(t *testing.T) {
	insts, err := GenerateSuite(SuiteSpec{Sizes: []int{20, 60}, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(insts) != 14 {
		t.Fatalf("suite size = %d, want 7 recipes x 2 sizes", len(insts))
	}
	seen := map[string]int{}
	for _, in := range insts {
		seen[in.Spec.Recipe]++
		if err := in.Workflow.Validate(); err != nil {
			t.Fatalf("%s: %v", in.Spec.InstanceName(), err)
		}
	}
	for _, r := range recipes.Names() {
		if seen[r] != 2 {
			t.Fatalf("recipe %s appears %d times", r, seen[r])
		}
	}
}

func TestGenerateSuiteClampsToMinTasks(t *testing.T) {
	insts, err := GenerateSuite(SuiteSpec{Sizes: []int{2}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range insts {
		r, _ := recipes.ForName(in.Spec.Recipe)
		if in.Workflow.Len() < r.MinTasks() {
			t.Fatalf("%s generated below MinTasks", in.Spec.Recipe)
		}
	}
}

func TestMutateTaskScopesFingerprints(t *testing.T) {
	fps := func(w *wfformat.Workflow) map[string]wfformat.Hash {
		t.Helper()
		csr, tasks, err := w.Compile()
		if err != nil {
			t.Fatal(err)
		}
		all := wfformat.TaskFingerprints(csr, tasks, nil)
		out := make(map[string]wfformat.Hash, len(all))
		for _, id := range csr.TopoOrder() {
			out[csr.Name(id)] = all[id]
		}
		return out
	}
	descendants := func(w *wfformat.Workflow, root string) map[string]bool {
		t.Helper()
		csr, _, err := w.Compile()
		if err != nil {
			t.Fatal(err)
		}
		byName := make(map[string]int32, csr.Len())
		for _, id := range csr.TopoOrder() {
			byName[csr.Name(id)] = id
		}
		out := map[string]bool{}
		stack := []int32{byName[root]}
		for len(stack) > 0 {
			id := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if out[csr.Name(id)] {
				continue
			}
			out[csr.Name(id)] = true
			stack = append(stack, csr.Children(id)...)
		}
		return out
	}

	base, err := Generate(Spec{Recipe: "blast", NumTasks: 40, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	mutated, err := Generate(Spec{Recipe: "blast", NumTasks: 40, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var victim string
	for name := range base.Tasks {
		victim = name
		break
	}
	if err := MutateTask(mutated, victim); err != nil {
		t.Fatal(err)
	}
	want := descendants(base, victim)
	before, after := fps(base), fps(mutated)
	for name := range before {
		changed := before[name] != after[name]
		if changed != want[name] {
			t.Errorf("task %s: fingerprint changed=%t, want %t", name, changed, want[name])
		}
	}

	if err := MutateTask(base, "no-such-task"); err == nil {
		t.Fatal("unknown task accepted")
	}
}
