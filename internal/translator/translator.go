// Package translator reimplements the Translator component of WfBench
// (WfCommons): converters that take a generated workflow in the common
// format and prepare it for execution on a concrete target. Upstream
// WfCommons ships Pegasus and Nextflow translators; the paper's
// contribution is a new Knative translator whose output carries, for each
// function, key-value arguments and the HTTP endpoint (api_url) of the
// WfBench service that executes it. This package provides all four:
// Knative, LocalContainer (the paper's bare-metal baseline), Pegasus, and
// Nextflow.
package translator

import (
	"fmt"
	"sort"
	"strings"

	"wfserverless/internal/wfformat"
)

// ServiceNamer maps a task to the name of the platform service that
// executes it. The paper deploys a single "wfbench" service; per-category
// services are useful for ablations.
type ServiceNamer func(t *wfformat.Task) string

// SingleService names every task's service the same, the paper's setup.
func SingleService(name string) ServiceNamer {
	return func(*wfformat.Task) string { return name }
}

// ServicePerCategory gives every function category its own service.
func ServicePerCategory() ServiceNamer {
	return func(t *wfformat.Task) string { return "wfbench-" + t.Category }
}

// KnativeOptions configures the Knative translator.
type KnativeOptions struct {
	// IngressURL is the base URL of the serverless ingress, e.g.
	// "http://127.0.0.1:53412" for the in-process platform or the
	// sslip.io address of a real Knative install.
	IngressURL string
	// Service names the Knative service per task; nil means the single
	// shared "wfbench" service.
	Service ServiceNamer
	// Workdir is recorded in each function's arguments, the shared
	// drive location for I/O.
	Workdir string
}

// Knative translates a workflow for execution on a serverless platform
// that routes HTTP requests by service name: every task receives
// api_url = <ingress>/<service>/wfbench and its workdir. The input
// workflow is not mutated.
func Knative(w *wfformat.Workflow, opts KnativeOptions) (*wfformat.Workflow, error) {
	if opts.IngressURL == "" {
		return nil, fmt.Errorf("translator: knative: IngressURL required")
	}
	namer := opts.Service
	if namer == nil {
		namer = SingleService("wfbench")
	}
	out := w.Clone()
	for _, name := range out.TaskNames() {
		t := out.Tasks[name]
		t.Command.APIURL = fmt.Sprintf("%s/%s/wfbench",
			strings.TrimSuffix(opts.IngressURL, "/"), namer(t))
		for i := range t.Command.Arguments {
			t.Command.Arguments[i].Workdir = opts.Workdir
		}
	}
	return out, nil
}

// LocalContainerOptions configures the bare-metal baseline translator.
type LocalContainerOptions struct {
	// ContainerURL maps a task to the address of the local container
	// hosting WfBench for it; nil requires BaseURL.
	ContainerURL func(t *wfformat.Task) string
	// BaseURL is the single local container address, e.g.
	// "http://localhost:80".
	BaseURL string
	Workdir string
}

// LocalContainer translates a workflow for the paper's baseline: the same
// WfBench application served from always-on local containers instead of a
// serverless platform.
func LocalContainer(w *wfformat.Workflow, opts LocalContainerOptions) (*wfformat.Workflow, error) {
	urlFor := opts.ContainerURL
	if urlFor == nil {
		if opts.BaseURL == "" {
			return nil, fmt.Errorf("translator: local: BaseURL or ContainerURL required")
		}
		base := strings.TrimSuffix(opts.BaseURL, "/")
		urlFor = func(*wfformat.Task) string { return base + "/wfbench" }
	}
	out := w.Clone()
	for _, name := range out.TaskNames() {
		t := out.Tasks[name]
		t.Command.APIURL = urlFor(t)
		for i := range t.Command.Arguments {
			t.Command.Arguments[i].Workdir = opts.Workdir
		}
	}
	return out, nil
}

// Pegasus renders the workflow as a Pegasus-style abstract DAG (DAX-like
// YAML), mirroring the upstream WfCommons Pegasus translator closely
// enough to feed tooling that consumes job/uses/parent lists.
func Pegasus(w *wfformat.Workflow) (string, error) {
	if err := w.Validate(); err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "x-pegasus:\n  apiLang: go\n  createdBy: wfserverless\nname: %s\njobs:\n", w.Name)
	for _, name := range w.TaskNames() {
		t := w.Tasks[name]
		fmt.Fprintf(&b, "  - id: %s\n    name: %s\n    namespace: %s\n", t.Name, t.Category, w.Name)
		fmt.Fprintf(&b, "    arguments: [--percent-cpu=%g, --cpu-work=%g]\n",
			t.Command.Arguments[0].PercentCPU, t.Command.Arguments[0].CPUWork)
		fmt.Fprintf(&b, "    uses:\n")
		for _, f := range t.Files {
			fmt.Fprintf(&b, "      - {lfn: %s, type: %s, size: %d}\n", f.Name, f.Link, f.SizeInBytes)
		}
	}
	fmt.Fprintf(&b, "jobDependencies:\n")
	for _, name := range w.TaskNames() {
		t := w.Tasks[name]
		if len(t.Children) == 0 {
			continue
		}
		children := append([]string(nil), t.Children...)
		sort.Strings(children)
		fmt.Fprintf(&b, "  - id: %s\n    children: [%s]\n", t.Name, strings.Join(children, ", "))
	}
	return b.String(), nil
}

// Nextflow renders the workflow as a Nextflow DSL2 script skeleton: one
// process per function category and a workflow block wiring task
// invocations through channels, mirroring the upstream WfCommons
// Nextflow translator's structure.
func Nextflow(w *wfformat.Workflow) (string, error) {
	if err := w.Validate(); err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "// Generated from %s by wfserverless (WfCommons Nextflow translator port)\n", w.Name)
	fmt.Fprintf(&b, "nextflow.enable.dsl=2\n\n")
	cats := make([]string, 0, len(w.Categories()))
	for c := range w.Categories() {
		cats = append(cats, c)
	}
	sort.Strings(cats)
	for _, c := range cats {
		fmt.Fprintf(&b, "process %s {\n  input:\n    path inputs\n  output:\n    path \"*_output.txt\"\n  script:\n    \"wfbench ${task.ext.args}\"\n}\n\n", sanitizeIdent(c))
	}
	fmt.Fprintf(&b, "workflow {\n")
	order, err := w.Phases()
	if err != nil {
		return "", err
	}
	for pi, phase := range order {
		fmt.Fprintf(&b, "  // phase %d\n", pi)
		for _, name := range phase {
			t := w.Tasks[name]
			fmt.Fprintf(&b, "  %s( Channel.fromList(%s) ) // task %s\n",
				sanitizeIdent(t.Category), nfList(t.InputFiles()), name)
		}
	}
	fmt.Fprintf(&b, "}\n")
	return b.String(), nil
}

func sanitizeIdent(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			out = append(out, r)
		default:
			out = append(out, '_')
		}
	}
	if len(out) == 0 {
		return "p"
	}
	return string(out)
}

func nfList(items []string) string {
	quoted := make([]string, len(items))
	for i, s := range items {
		quoted[i] = "'" + s + "'"
	}
	return "[" + strings.Join(quoted, ", ") + "]"
}
