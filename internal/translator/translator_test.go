package translator

import (
	"math/rand"
	"strings"
	"testing"

	"wfserverless/internal/recipes"
	"wfserverless/internal/wfformat"
)

func sampleWorkflow(t *testing.T) *wfformat.Workflow {
	t.Helper()
	r, err := recipes.ForName("blast")
	if err != nil {
		t.Fatal(err)
	}
	w, err := r.Generate(10, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestKnativeSetsAPIURLAndWorkdir(t *testing.T) {
	w := sampleWorkflow(t)
	out, err := Knative(w, KnativeOptions{IngressURL: "http://127.0.0.1:9000/", Workdir: "/data/wf"})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range out.TaskNames() {
		task := out.Tasks[name]
		if task.Command.APIURL != "http://127.0.0.1:9000/wfbench/wfbench" {
			t.Fatalf("APIURL = %q", task.Command.APIURL)
		}
		if task.Command.Arguments[0].Workdir != "/data/wf" {
			t.Fatalf("Workdir = %q", task.Command.Arguments[0].Workdir)
		}
	}
	// original untouched
	for _, name := range w.TaskNames() {
		if w.Tasks[name].Command.APIURL != "" {
			t.Fatal("translator mutated its input")
		}
	}
}

func TestKnativeServicePerCategory(t *testing.T) {
	w := sampleWorkflow(t)
	out, err := Knative(w, KnativeOptions{IngressURL: "http://ingress", Service: ServicePerCategory()})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, name := range out.TaskNames() {
		task := out.Tasks[name]
		want := "http://ingress/wfbench-" + task.Category + "/wfbench"
		if task.Command.APIURL != want {
			t.Fatalf("APIURL = %q, want %q", task.Command.APIURL, want)
		}
		seen[task.Category] = true
	}
	if len(seen) < 3 {
		t.Fatalf("expected several categories, saw %v", seen)
	}
}

func TestKnativeRequiresIngress(t *testing.T) {
	if _, err := Knative(sampleWorkflow(t), KnativeOptions{}); err == nil {
		t.Fatal("missing IngressURL accepted")
	}
}

func TestLocalContainerBaseURL(t *testing.T) {
	w := sampleWorkflow(t)
	out, err := LocalContainer(w, LocalContainerOptions{BaseURL: "http://localhost:80/", Workdir: "/mnt/data"})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range out.TaskNames() {
		task := out.Tasks[name]
		if task.Command.APIURL != "http://localhost:80/wfbench" {
			t.Fatalf("APIURL = %q", task.Command.APIURL)
		}
	}
}

func TestLocalContainerPerTaskURL(t *testing.T) {
	w := sampleWorkflow(t)
	out, err := LocalContainer(w, LocalContainerOptions{
		ContainerURL: func(task *wfformat.Task) string { return "http://c-" + task.Category + ":8080/wfbench" },
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range out.TaskNames() {
		task := out.Tasks[name]
		if !strings.HasPrefix(task.Command.APIURL, "http://c-"+task.Category) {
			t.Fatalf("APIURL = %q", task.Command.APIURL)
		}
	}
}

func TestLocalContainerRequiresURL(t *testing.T) {
	if _, err := LocalContainer(sampleWorkflow(t), LocalContainerOptions{}); err == nil {
		t.Fatal("missing URL accepted")
	}
}

func TestPegasusOutput(t *testing.T) {
	w := sampleWorkflow(t)
	out, err := Pegasus(w)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"name: Blast", "jobs:", "jobDependencies:", "lfn:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Pegasus output missing %q:\n%s", want, out[:200])
		}
	}
	// every task appears as a job id
	for _, name := range w.TaskNames() {
		if !strings.Contains(out, "id: "+name) {
			t.Fatalf("job %s missing", name)
		}
	}
}

func TestPegasusRejectsInvalid(t *testing.T) {
	w := wfformat.New("bad")
	w.AddTask(&wfformat.Task{Name: "t", Type: "weird", Cores: 1})
	if _, err := Pegasus(w); err == nil {
		t.Fatal("invalid workflow translated")
	}
}

func TestNextflowOutput(t *testing.T) {
	w := sampleWorkflow(t)
	out, err := Nextflow(w)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"nextflow.enable.dsl=2", "process blastall", "process split_fasta", "workflow {", "// phase 0"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Nextflow output missing %q", want)
		}
	}
}

func TestNextflowRejectsInvalid(t *testing.T) {
	w := wfformat.New("bad")
	w.AddTask(&wfformat.Task{Name: "t", Type: "weird", Cores: 1})
	if _, err := Nextflow(w); err == nil {
		t.Fatal("invalid workflow translated")
	}
}

func TestSanitizeIdent(t *testing.T) {
	cases := map[string]string{
		"map":       "map",
		"sg1-decon": "sg1_decon",
		"a.b c":     "a_b_c",
		"":          "p",
	}
	for in, want := range cases {
		if got := sanitizeIdent(in); got != want {
			t.Errorf("sanitizeIdent(%q) = %q, want %q", in, got, want)
		}
	}
}
