package translator

import (
	"encoding/json"
	"strings"
	"testing"

	"wfserverless/internal/wfformat"
)

func TestServerlessWorkflowOutput(t *testing.T) {
	w := sampleWorkflow(t)
	out, err := ServerlessWorkflow(w, ServerlessWorkflowOptions{
		OperationURL: "http://ingress/wfbench/wfbench",
		Workdir:      "shared",
	})
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]interface{}
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if doc["specVersion"] != "0.8" || doc["start"] != "phase-0" {
		t.Fatalf("doc header: %v %v", doc["specVersion"], doc["start"])
	}
	states := doc["states"].([]interface{})
	phases, _ := w.Phases()
	if len(states) != len(phases) {
		t.Fatalf("states = %d, want %d phases", len(states), len(phases))
	}
	// Every task appears as a branch exactly once.
	branchCount := 0
	for _, st := range states {
		m := st.(map[string]interface{})
		if m["type"] != "parallel" {
			t.Fatalf("state type = %v", m["type"])
		}
		branchCount += len(m["branches"].([]interface{}))
	}
	if branchCount != w.Len() {
		t.Fatalf("branches = %d, want %d", branchCount, w.Len())
	}
	// Last state ends; earlier states transition.
	last := states[len(states)-1].(map[string]interface{})
	if last["end"] != true {
		t.Fatal("last state does not end")
	}
	first := states[0].(map[string]interface{})
	if first["transition"] != "phase-1" {
		t.Fatalf("first transition = %v", first["transition"])
	}
	if !strings.Contains(out, `"workdir": "shared"`) {
		t.Fatal("workdir missing from arguments")
	}
}

func TestServerlessWorkflowRequiresURL(t *testing.T) {
	if _, err := ServerlessWorkflow(sampleWorkflow(t), ServerlessWorkflowOptions{}); err == nil {
		t.Fatal("missing OperationURL accepted")
	}
}

func TestServerlessWorkflowRejectsInvalid(t *testing.T) {
	w := wfformat.New("bad")
	w.AddTask(&wfformat.Task{Name: "t", Type: "weird", Cores: 1})
	if _, err := ServerlessWorkflow(w, ServerlessWorkflowOptions{OperationURL: "http://x"}); err == nil {
		t.Fatal("invalid workflow translated")
	}
}
