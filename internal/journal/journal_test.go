package journal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func openT(t *testing.T, dir string, opts Options) *Journal {
	t.Helper()
	j, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return j
}

func appendT(t *testing.T, j *Journal, kind uint8, data string) {
	t.Helper()
	if err := j.Append(kind, []byte(data)); err != nil {
		t.Fatal(err)
	}
}

func wantRecords(t *testing.T, got []Record, want ...string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d records, want %d", len(got), len(want))
	}
	for i, w := range want {
		if string(got[i].Data) != w {
			t.Fatalf("record %d = %q, want %q", i, got[i].Data, w)
		}
	}
}

func TestAppendReopenRoundtrip(t *testing.T) {
	dir := t.TempDir()
	j := openT(t, dir, Options{Sync: SyncNever})
	for i := 0; i < 100; i++ {
		appendT(t, j, uint8(1+i%5), fmt.Sprintf("record-%03d", i))
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2 := openT(t, dir, Options{})
	defer j2.Close()
	if j2.Torn() {
		t.Fatal("clean close reported torn")
	}
	recs := j2.Records()
	if len(recs) != 100 {
		t.Fatalf("recovered %d records, want 100", len(recs))
	}
	for i, r := range recs {
		if want := fmt.Sprintf("record-%03d", i); string(r.Data) != want {
			t.Fatalf("record %d = %q, want %q", i, r.Data, want)
		}
		if r.Kind != uint8(1+i%5) {
			t.Fatalf("record %d kind = %d, want %d", i, r.Kind, 1+i%5)
		}
	}
}

func TestAppendAfterReopenExtends(t *testing.T) {
	dir := t.TempDir()
	j := openT(t, dir, Options{Sync: SyncNever})
	appendT(t, j, 1, "first")
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j = openT(t, dir, Options{Sync: SyncNever})
	appendT(t, j, 1, "second")
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	rep, err := Read(dir)
	if err != nil {
		t.Fatal(err)
	}
	wantRecords(t, rep.Records, "first", "second")
}

func TestTornTailTruncatedOnOpen(t *testing.T) {
	dir := t.TempDir()
	j := openT(t, dir, Options{Sync: SyncNever})
	appendT(t, j, 1, "alpha")
	appendT(t, j, 1, "beta")
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a crash mid-append: chop bytes off the tail so the last
	// record's envelope is incomplete.
	seg := segPath(dir, 1)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(seg, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	j = openT(t, dir, Options{Sync: SyncNever})
	if !j.Torn() {
		t.Fatal("expected torn tail")
	}
	wantRecords(t, j.Records(), "alpha")

	// The torn tail was truncated: appending and re-reading yields a
	// clean journal with the new record following the intact one.
	appendT(t, j, 1, "gamma")
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	rep, err := Read(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Torn {
		t.Fatal("journal still torn after repair")
	}
	wantRecords(t, rep.Records, "alpha", "gamma")
}

func TestBitFlipStopsAtCorruption(t *testing.T) {
	dir := t.TempDir()
	j := openT(t, dir, Options{Sync: SyncNever})
	appendT(t, j, 1, "aaaa")
	appendT(t, j, 1, "bbbb")
	appendT(t, j, 1, "cccc")
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	seg := segPath(dir, 1)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one bit inside the middle record's payload: CRC must reject
	// it and the reader must stop there with only the first record.
	mid := len(segMagic) + (recHeaderSize+4)*1 + recHeaderSize + 1
	data[mid] ^= 0x40
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := Read(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Torn {
		t.Fatal("bit flip not detected")
	}
	wantRecords(t, rep.Records, "aaaa")
	if rep.TornOffset != int64(len(segMagic)+recHeaderSize+4) {
		t.Fatalf("torn offset %d, want %d", rep.TornOffset, len(segMagic)+recHeaderSize+4)
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	j := openT(t, dir, Options{Sync: SyncNever, SegmentBytes: 256})
	payload := bytes.Repeat([]byte("x"), 64)
	for i := 0; i < 20; i++ {
		if err := j.Append(1, payload); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	rep, err := Read(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Segments) < 2 {
		t.Fatalf("expected rotation, got %d segment(s)", len(rep.Segments))
	}
	if len(rep.Records) != 20 {
		t.Fatalf("recovered %d records across segments, want 20", len(rep.Records))
	}
	if j.Stats().Rotations == 0 {
		t.Fatal("stats recorded no rotations")
	}
}

func TestCompactKeepsSnapshotDropsHistory(t *testing.T) {
	dir := t.TempDir()
	j := openT(t, dir, Options{Sync: SyncNever, SegmentBytes: 128})
	for i := 0; i < 50; i++ {
		appendT(t, j, 1, fmt.Sprintf("event-%02d", i))
	}
	if err := j.Compact([]byte("snapshot-state")); err != nil {
		t.Fatal(err)
	}
	appendT(t, j, 1, "after-snapshot")
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	rep, err := Read(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Segments) != 1 {
		t.Fatalf("compaction left %d segments, want 1", len(rep.Segments))
	}
	wantRecords(t, rep.Records, "snapshot-state", "after-snapshot")
	if rep.Records[0].Kind != KindSnapshot {
		t.Fatalf("first record kind %d, want snapshot", rep.Records[0].Kind)
	}
	base, ok := Snapshot(rep.Records)
	if !ok || base != 1 {
		t.Fatalf("Snapshot() = (%d, %v), want (1, true)", base, ok)
	}
}

func TestAppendRejectsSnapshotKind(t *testing.T) {
	j := openT(t, t.TempDir(), Options{})
	defer j.Close()
	if err := j.Append(KindSnapshot, []byte("x")); err == nil {
		t.Fatal("Append accepted the reserved snapshot kind")
	}
}

func TestGroupCommitEventuallySyncs(t *testing.T) {
	dir := t.TempDir()
	j := openT(t, dir, Options{Sync: SyncGroup, GroupWindow: time.Millisecond})
	appendT(t, j, 1, "grouped")
	deadline := time.Now().Add(2 * time.Second)
	for j.Stats().Syncs == 0 {
		if time.Now().After(deadline) {
			t.Fatal("group committer never fsynced")
		}
		time.Sleep(time.Millisecond)
	}
	// The record is durable without Close: a fresh reader sees it.
	rep, err := Read(dir)
	if err != nil {
		t.Fatal(err)
	}
	wantRecords(t, rep.Records, "grouped")
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestGroupCommitBatchesSyncs(t *testing.T) {
	j := openT(t, t.TempDir(), Options{Sync: SyncGroup, GroupWindow: 20 * time.Millisecond})
	for i := 0; i < 1000; i++ {
		appendT(t, j, 1, "burst")
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	st := j.Stats()
	// 1000 appends inside one or two windows must collapse into a
	// handful of fsyncs (the Close sync included), not one per record.
	if st.Syncs > 10 {
		t.Fatalf("group commit issued %d fsyncs for %d appends", st.Syncs, st.Appends)
	}
}

func TestConcurrentAppends(t *testing.T) {
	dir := t.TempDir()
	j := openT(t, dir, Options{Sync: SyncGroup, GroupWindow: time.Millisecond, SegmentBytes: 4096})
	var wg sync.WaitGroup
	const writers, per = 8, 200
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := j.Append(1, []byte(fmt.Sprintf("w%d-%04d", w, i))); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	rep, err := Read(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Torn {
		t.Fatal("concurrent appends produced a torn journal")
	}
	if len(rep.Records) != writers*per {
		t.Fatalf("recovered %d records, want %d", len(rep.Records), writers*per)
	}
}

func TestAbortDropsUnflushed(t *testing.T) {
	dir := t.TempDir()
	j := openT(t, dir, Options{Sync: SyncNever})
	appendT(t, j, 1, "flushed")
	if err := j.Sync(); err != nil {
		t.Fatal(err)
	}
	appendT(t, j, 1, "staged-only")
	j.Abort()

	j2 := openT(t, dir, Options{})
	defer j2.Close()
	// The synced record survives the simulated crash; the staged one is
	// gone — exactly what process death does to user-space buffers.
	wantRecords(t, j2.Records(), "flushed")
}

func TestAppendAfterCloseFails(t *testing.T) {
	j := openT(t, t.TempDir(), Options{})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(1, []byte("late")); err == nil {
		t.Fatal("append after close succeeded")
	}
	if err := j.Close(); err != nil { // double close is a no-op
		t.Fatal(err)
	}
}

func TestReadSingleSegmentFile(t *testing.T) {
	dir := t.TempDir()
	j := openT(t, dir, Options{Sync: SyncNever})
	appendT(t, j, 1, "solo")
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	rep, err := Read(segPath(dir, 1))
	if err != nil {
		t.Fatal(err)
	}
	wantRecords(t, rep.Records, "solo")
}

func TestReadRejectsForeignFile(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "not-a-journal")
	if err := os.WriteFile(p, []byte("hello, I am JSON or something"), 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := Read(p)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Torn || len(rep.Records) != 0 {
		t.Fatalf("foreign file parsed as journal: torn=%v records=%d", rep.Torn, len(rep.Records))
	}
}

func TestOversizeRecordRejected(t *testing.T) {
	j := openT(t, t.TempDir(), Options{})
	defer j.Close()
	if err := j.Append(1, make([]byte, maxRecordSize)); err == nil {
		t.Fatal("oversize record accepted")
	}
}
