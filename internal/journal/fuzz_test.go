package journal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

// buildSegment encodes records into valid segment bytes and returns the
// byte offset where each record's envelope ends. It mirrors the writer's
// canonical encoding so tests can damage known positions.
func buildSegment(records []Record) (data []byte, ends []int) {
	data = append(data, segMagic[:]...)
	for _, r := range records {
		var hdr [recHeaderSize]byte
		binary.LittleEndian.PutUint32(hdr[0:4], uint32(1+len(r.Data)))
		hdr[8] = r.Kind
		crc := crc32.Checksum(hdr[8:9], castagnoli)
		crc = crc32.Update(crc, castagnoli, r.Data)
		binary.LittleEndian.PutUint32(hdr[4:8], crc)
		data = append(data, hdr[:]...)
		data = append(data, r.Data...)
		ends = append(ends, len(data))
	}
	return data, ends
}

func testRecords(n int) []Record {
	recs := make([]Record, n)
	for i := range recs {
		recs[i] = Record{Kind: uint8(1 + i%7), Data: []byte(fmt.Sprintf("payload-%04d", i))}
	}
	return recs
}

// readBytes parses raw segment bytes through the public reader.
func readBytes(t testing.TB, raw []byte) *Replay {
	t.Helper()
	p := filepath.Join(t.TempDir(), "journal-00000001.wal")
	if err := os.WriteFile(p, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := Read(p)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestTruncationRecoversPrefix cuts a valid segment at every possible
// byte offset and asserts the reader recovers exactly the records that
// were fully written before the cut — the crash-mid-append guarantee.
func TestTruncationRecoversPrefix(t *testing.T) {
	recs := testRecords(20)
	data, ends := buildSegment(recs)
	for cut := 0; cut <= len(data); cut++ {
		rep := readBytes(t, data[:cut])
		wantN := 0
		for _, end := range ends {
			if end <= cut {
				wantN++
			}
		}
		if len(rep.Records) != wantN {
			t.Fatalf("cut at %d: recovered %d records, want %d", cut, len(rep.Records), wantN)
		}
		for i, r := range rep.Records {
			if string(r.Data) != string(recs[i].Data) || r.Kind != recs[i].Kind {
				t.Fatalf("cut at %d: record %d mismatch", cut, i)
			}
		}
		// A cut on a record boundary (or right after the magic) is
		// indistinguishable from a clean shutdown; anything else is torn.
		atBoundary := cut == len(segMagic)
		for _, end := range ends {
			if cut == end {
				atBoundary = true
			}
		}
		if rep.Torn == atBoundary {
			t.Fatalf("cut at %d: torn=%v, boundary=%v", cut, rep.Torn, atBoundary)
		}
	}
}

// TestBitFlipRecoversPrefix flips a bit at every byte of a valid segment
// and asserts the CRC stops the reader at the damaged record, with every
// earlier record recovered intact.
func TestBitFlipRecoversPrefix(t *testing.T) {
	recs := testRecords(12)
	data, ends := buildSegment(recs)
	for pos := 0; pos < len(data); pos++ {
		mut := append([]byte(nil), data...)
		mut[pos] ^= 1 << (pos % 8)
		rep := readBytes(t, mut)
		// The record containing the flipped byte and everything after it
		// are lost; everything before it must survive.
		wantN := 0
		if pos >= len(segMagic) {
			for _, end := range ends {
				if end <= pos {
					wantN++
				}
			}
		}
		if !rep.Torn {
			t.Fatalf("flip at %d: corruption not detected", pos)
		}
		if len(rep.Records) != wantN {
			t.Fatalf("flip at %d: recovered %d records, want %d", pos, len(rep.Records), wantN)
		}
		for i, r := range rep.Records {
			if string(r.Data) != string(recs[i].Data) || r.Kind != recs[i].Kind {
				t.Fatalf("flip at %d: record %d mismatch", pos, i)
			}
		}
	}
}

// FuzzJournalReader feeds arbitrary bytes to the segment reader. The
// reader must never panic and never return an error for corrupt content
// (only for I/O failures), and every record it does return must
// re-encode to exactly the input bytes at its offset — i.e. recovered
// records are always a verbatim prefix of what a writer produced.
func FuzzJournalReader(f *testing.F) {
	valid, _ := buildSegment(testRecords(3))
	f.Add([]byte{})
	f.Add(segMagic[:])
	f.Add(valid)
	f.Add(valid[:len(valid)-5]) // torn tail
	flipped := append([]byte(nil), valid...)
	flipped[len(segMagic)+recHeaderSize+2] ^= 0x10 // bit flip in first payload
	f.Add(flipped)
	f.Add([]byte("not a journal at all"))
	huge := append([]byte(nil), segMagic[:]...)
	huge = binary.LittleEndian.AppendUint32(huge, 0xFFFFFFFF) // absurd length prefix
	huge = append(huge, 0, 0, 0, 0, 1)
	f.Add(huge)

	f.Fuzz(func(t *testing.T, raw []byte) {
		rep := readBytes(t, raw)
		reencoded, _ := buildSegment(rep.Records)
		if len(raw) >= len(segMagic) && [8]byte(raw[:8]) == segMagic {
			if len(reencoded) > len(raw) || string(raw[:len(reencoded)]) != string(reencoded) {
				t.Fatalf("recovered records are not a verbatim prefix of the input")
			}
			if rep.Torn {
				if rep.TornOffset != int64(len(reencoded)) {
					t.Fatalf("torn offset %d does not follow last intact record at %d",
						rep.TornOffset, len(reencoded))
				}
			} else if len(reencoded) != len(raw) {
				t.Fatalf("clean read consumed %d of %d bytes", len(reencoded), len(raw))
			}
		} else if len(rep.Records) != 0 || !rep.Torn {
			t.Fatalf("input without magic yielded records=%d torn=%v", len(rep.Records), rep.Torn)
		}
	})
}

func BenchmarkAppend(b *testing.B) {
	payload := make([]byte, 64)
	for _, policy := range []SyncPolicy{SyncGroup, SyncAlways, SyncNever} {
		b.Run(policy.String(), func(b *testing.B) {
			j, err := Open(b.TempDir(), Options{Sync: policy})
			if err != nil {
				b.Fatal(err)
			}
			defer j.Close()
			b.SetBytes(int64(recHeaderSize + len(payload)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := j.Append(1, payload); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
