// Command gencorpus regenerates the checked-in seed corpus for
// FuzzJournalReader (internal/journal/testdata/fuzz/FuzzJournalReader).
// The seeds cover the shapes a crash can leave on disk — a clean
// journal, a torn tail, a flipped bit, an absurd length prefix, and
// plain garbage — so the fuzz target exercises them on every normal
// `go test` run, not only under -fuzz.
//
// Usage: go run ./internal/journal/gencorpus
package main

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strconv"
)

var (
	magic      = []byte("wfjrnl01")
	castagnoli = crc32.MakeTable(crc32.Castagnoli)
)

func record(kind byte, data []byte) []byte {
	var hdr [9]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(1+len(data)))
	hdr[8] = kind
	crc := crc32.Checksum(hdr[8:9], castagnoli)
	crc = crc32.Update(crc, castagnoli, data)
	binary.LittleEndian.PutUint32(hdr[4:8], crc)
	return append(hdr[:], data...)
}

func main() {
	valid := append([]byte(nil), magic...)
	for i := 0; i < 3; i++ {
		valid = append(valid, record(byte(1+i), []byte(fmt.Sprintf("payload-%04d", i)))...)
	}
	torn := append([]byte(nil), valid[:len(valid)-5]...)
	flipped := append([]byte(nil), valid...)
	flipped[len(magic)+9+2] ^= 0x10
	huge := append([]byte(nil), magic...)
	huge = binary.LittleEndian.AppendUint32(huge, 0xFFFFFFFF)
	huge = append(huge, 0, 0, 0, 0, 1)

	seeds := map[string][]byte{
		"empty":       {},
		"magic-only":  magic,
		"valid":       valid,
		"torn-tail":   torn,
		"bit-flip":    flipped,
		"huge-length": huge,
		"garbage":     []byte("not a journal at all"),
	}
	dir := filepath.Join("internal", "journal", "testdata", "fuzz", "FuzzJournalReader")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		panic(err)
	}
	for name, data := range seeds {
		body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(data)) + ")\n"
		if err := os.WriteFile(filepath.Join(dir, "seed-"+name), []byte(body), 0o644); err != nil {
			panic(err)
		}
	}
	fmt.Printf("wrote %d seeds to %s\n", len(seeds), dir)
}
