// Package journal implements a durable, append-only run journal — the
// write-ahead log behind the workflow manager's crash recovery. A
// journal is a directory of segment files, each a sequence of
// length-prefixed, CRC32C-protected records. The format is built for
// orchestrators that die mid-run:
//
//   - Appends are atomic at record granularity: a reader either sees a
//     whole record or stops cleanly at the torn tail a crash left
//     behind. Opening a journal truncates that tail so the writer
//     resumes from the last durable record.
//   - Durability is a policy, not a tax. SyncGroup (the default)
//     acknowledges appends immediately and lets a background group
//     committer batch many records into one fsync — and because the
//     committer detaches the staged buffer before touching the disk,
//     appends never wait out an fsync, so a 100k-task hot path is never
//     serialized on the drive. SyncAlways fsyncs every append;
//     SyncNever leaves flushing to the OS and Close.
//   - Segments rotate at a size threshold and Compact folds everything
//     executed so far into one snapshot record at the head of a fresh
//     segment, deleting the older segments — a journal's size is
//     bounded by live state plus one segment of recent events, not by
//     run length.
//
// The journal stores opaque (kind, payload) records; the workflow
// manager layers its event taxonomy (run header, task started /
// completed / failed, run end) on top. Zero dependencies outside the
// standard library.
package journal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// KindSnapshot is the reserved record kind Compact writes at the head
// of a fresh segment: an application-encoded summary of every record
// the compaction deleted. Appends may not use it.
const KindSnapshot uint8 = 0

// segMagic opens every segment file; a reader rejects files that were
// never journal segments instead of mis-parsing them.
var segMagic = [8]byte{'w', 'f', 'j', 'r', 'n', 'l', '0', '1'}

// Record envelope on disk, after the segment magic:
//
//	uint32 LE  length   = 1 + len(data), so a zero length is invalid
//	uint32 LE  crc      = CRC32C over the kind byte and data
//	uint8      kind
//	[]byte     data
const recHeaderSize = 9 // 4 length + 4 crc + 1 kind

// maxRecordSize bounds a single record so a corrupt length prefix
// cannot make the reader allocate gigabytes before the CRC rejects it.
const maxRecordSize = 16 << 20

// flushChunk is the staged-bytes threshold past which SyncNever writes
// through to the file (without fsync) so the staging buffer stays
// bounded on long runs.
const flushChunk = 1 << 20

// castagnoli is the CRC32C table (the storage-grade polynomial, SSE4.2
// accelerated by hash/crc32 on amd64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// SyncPolicy selects when appended records are fsynced.
type SyncPolicy int

const (
	// SyncGroup (default) is group commit: Append returns after the
	// buffered write and a background committer batches everything
	// appended within GroupWindow into a single fsync. A crash can lose
	// at most the records of the last open window — which, for the
	// workflow manager, only means re-running those tasks on resume.
	SyncGroup SyncPolicy = iota
	// SyncAlways fsyncs inside every Append — full durability, one disk
	// round trip per record.
	SyncAlways
	// SyncNever performs no explicit fsync until Sync or Close — the OS
	// page cache decides; survives process death but not machine death.
	SyncNever
)

// String names the policy for flags and reports.
func (p SyncPolicy) String() string {
	switch p {
	case SyncGroup:
		return "group"
	case SyncAlways:
		return "always"
	case SyncNever:
		return "never"
	}
	return fmt.Sprintf("SyncPolicy(%d)", int(p))
}

// ParseSyncPolicy maps a flag value onto a SyncPolicy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "group", "":
		return SyncGroup, nil
	case "always":
		return SyncAlways, nil
	case "never":
		return SyncNever, nil
	}
	return 0, fmt.Errorf("journal: unknown sync policy %q (want group, always, or never)", s)
}

// Options configures a Journal.
type Options struct {
	// Sync is the fsync policy; the zero value is SyncGroup.
	Sync SyncPolicy
	// GroupWindow is the group-commit batching window; zero defaults to
	// 2ms. Only meaningful with SyncGroup.
	GroupWindow time.Duration
	// SegmentBytes rotates to a new segment file once the current one
	// exceeds this size; zero defaults to 64 MiB.
	SegmentBytes int64
}

func (o Options) withDefaults() Options {
	if o.GroupWindow <= 0 {
		o.GroupWindow = 2 * time.Millisecond
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 64 << 20
	}
	return o
}

// Record is one journal entry: an application kind plus opaque payload.
type Record struct {
	Kind uint8
	Data []byte
}

// Stats counts what a Journal has done since Open.
type Stats struct {
	// Appends is the number of records appended (snapshots included).
	Appends int64
	// Syncs is the number of fsyncs issued.
	Syncs int64
	// Bytes is the number of record bytes appended (envelopes included).
	Bytes int64
	// Rotations counts segment rollovers; Compactions counts Compact
	// calls (each also rotates).
	Rotations   int64
	Compactions int64
}

// Journal is an open run journal: the records recovered from disk at
// Open plus an append head. Append, Sync, and Compact are safe for
// concurrent use; Records is immutable after Open.
//
// Two locks split the write path so appenders never wait on the disk:
// mu guards the staging buffer (held for the memcpy of one record);
// fmu guards the file — it is held across write+fsync+rotation and
// serializes committers. Lock order is fmu before mu, never the
// reverse.
type Journal struct {
	dir  string
	opts Options

	recovered []Record
	torn      bool
	tornPath  string
	tornOff   int64

	mu     sync.Mutex
	buf    []byte // append staging buffer
	swap   []byte // recycled buffer handed back by the committer
	closed bool
	err    error // sticky write/sync error

	fmu       sync.Mutex
	f         *os.File
	seq       int   // current segment sequence number
	fileBytes int64 // bytes written to the current segment

	appends     atomic.Int64
	syncs       atomic.Int64
	bytes       atomic.Int64
	rotations   atomic.Int64
	compactions atomic.Int64

	// Group committer: Append nudges wake (capacity 1); the loop batches
	// a GroupWindow of records into one fsync. quit stops the loop.
	wake chan struct{}
	quit chan struct{}
	done chan struct{}
}

// Open opens (creating if needed) the journal in dir. Existing segments
// are replayed — tolerant of the torn tail an interrupted writer leaves
// — and the recovered records are available via Records; the torn tail,
// if any, is truncated so new appends extend the last intact record.
func Open(dir string, opts Options) (*Journal, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	rep, err := Read(dir)
	if err != nil {
		return nil, err
	}
	j := &Journal{
		dir:       dir,
		opts:      opts,
		recovered: rep.Records,
		torn:      rep.Torn,
		tornPath:  rep.TornPath,
		tornOff:   rep.TornOffset,
		wake:      make(chan struct{}, 1),
		quit:      make(chan struct{}),
		done:      make(chan struct{}),
	}
	if len(rep.Segments) == 0 {
		if err := j.openSegment(1); err != nil {
			return nil, err
		}
	} else {
		last := rep.Segments[len(rep.Segments)-1]
		if rep.Torn && rep.TornPath == last.Path {
			// Cut the torn tail so the next record starts on a clean
			// envelope boundary.
			if err := os.Truncate(last.Path, rep.TornOffset); err != nil {
				return nil, fmt.Errorf("journal: truncating torn tail: %w", err)
			}
			last.Size = rep.TornOffset
		}
		f, err := os.OpenFile(last.Path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("journal: %w", err)
		}
		j.f, j.seq, j.fileBytes = f, last.Seq, last.Size
	}
	go j.groupCommitLoop()
	return j, nil
}

// Dir returns the journal's directory.
func (j *Journal) Dir() string { return j.dir }

// Records returns the records recovered from disk when the journal was
// opened, in append order. The slice and payloads are owned by the
// Journal; callers must not mutate them.
func (j *Journal) Records() []Record { return j.recovered }

// Torn reports whether Open found (and truncated) a torn or corrupt
// tail — the signature of a writer that died mid-append.
func (j *Journal) Torn() bool { return j.torn }

// Stats returns cumulative counters since Open.
func (j *Journal) Stats() Stats {
	return Stats{
		Appends:     j.appends.Load(),
		Syncs:       j.syncs.Load(),
		Bytes:       j.bytes.Load(),
		Rotations:   j.rotations.Load(),
		Compactions: j.compactions.Load(),
	}
}

// Append writes one record. With SyncGroup it returns as soon as the
// record is staged for the group committer; durability lags by at most
// the group window. kind must not be KindSnapshot (reserved for
// Compact). The data bytes are copied; the caller may reuse them.
func (j *Journal) Append(kind uint8, data []byte) error {
	if kind == KindSnapshot {
		return errors.New("journal: Append: kind 0 is reserved for snapshots")
	}
	return j.append(kind, data)
}

func (j *Journal) append(kind uint8, data []byte) error {
	if len(data)+1 > maxRecordSize {
		return fmt.Errorf("journal: record of %d bytes exceeds max %d", len(data), maxRecordSize)
	}
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return errors.New("journal: closed")
	}
	if j.err != nil {
		err := j.err
		j.mu.Unlock()
		return err
	}
	j.stageLocked(kind, data)
	staged := len(j.buf)
	j.mu.Unlock()

	switch j.opts.Sync {
	case SyncAlways:
		return j.commit(true)
	case SyncGroup:
		select {
		case j.wake <- struct{}{}:
		default:
		}
	case SyncNever:
		if staged >= flushChunk {
			return j.commit(false)
		}
	}
	return nil
}

// stageLocked appends the record envelope to the staging buffer.
func (j *Journal) stageLocked(kind uint8, data []byte) {
	n := recHeaderSize + len(data)
	var hdr [recHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(1+len(data)))
	hdr[8] = kind
	crc := crc32.Checksum(hdr[8:9], castagnoli)
	crc = crc32.Update(crc, castagnoli, data)
	binary.LittleEndian.PutUint32(hdr[4:8], crc)
	j.buf = append(j.buf, hdr[:]...)
	j.buf = append(j.buf, data...)
	j.appends.Add(1)
	j.bytes.Add(int64(n))
}

// commit flushes everything staged so far to the segment file and, when
// sync is set, fsyncs it. The caller must NOT hold fmu or mu.
func (j *Journal) commit(sync bool) error {
	j.fmu.Lock()
	defer j.fmu.Unlock()
	return j.commitFLocked(sync)
}

// commitFLocked is commit with fmu already held: detach the staged
// buffer under mu (appenders continue into a fresh buffer immediately),
// then perform the file write, fsync, and any due rotation with only
// fmu held — the disk round trip never blocks an Append.
func (j *Journal) commitFLocked(sync bool) error {
	j.mu.Lock()
	if j.err != nil {
		err := j.err
		j.mu.Unlock()
		return err
	}
	buf := j.buf
	j.buf = j.swap[:0]
	j.swap = nil
	j.mu.Unlock()

	err := j.writeFLocked(buf, sync)

	j.mu.Lock()
	j.swap = buf[:0] // recycle the detached buffer for the next window
	if err != nil && j.err == nil {
		j.err = err
	}
	j.mu.Unlock()
	return err
}

// writeFLocked performs the file I/O of one commit under fmu.
func (j *Journal) writeFLocked(buf []byte, sync bool) error {
	if len(buf) > 0 {
		if _, err := j.f.Write(buf); err != nil {
			return fmt.Errorf("journal: write: %w", err)
		}
		j.fileBytes += int64(len(buf))
	}
	if sync {
		if err := j.f.Sync(); err != nil {
			return fmt.Errorf("journal: fsync: %w", err)
		}
		j.syncs.Add(1)
	}
	if j.fileBytes > j.opts.SegmentBytes {
		return j.rotateFLocked(sync)
	}
	return nil
}

// rotateFLocked seals the current segment and opens the next, under
// fmu. The sealed segment is fsynced unless the caller's policy never
// syncs, so rotation cannot silently lose the tail of a sealed file.
func (j *Journal) rotateFLocked(synced bool) error {
	if !synced {
		if err := j.f.Sync(); err != nil {
			return fmt.Errorf("journal: fsync: %w", err)
		}
		j.syncs.Add(1)
	}
	if err := j.f.Close(); err != nil {
		return fmt.Errorf("journal: close segment: %w", err)
	}
	if err := j.openSegment(j.seq + 1); err != nil {
		return err
	}
	j.rotations.Add(1)
	return nil
}

// Sync forces everything appended so far to durable storage.
func (j *Journal) Sync() error {
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return errors.New("journal: closed")
	}
	j.mu.Unlock()
	return j.commit(true)
}

// groupCommitLoop is the background committer for SyncGroup: each wake
// waits out the batching window (absorbing every append that lands in
// it), then issues one fsync for the whole batch.
func (j *Journal) groupCommitLoop() {
	defer close(j.done)
	if j.opts.Sync != SyncGroup {
		<-j.quit
		return
	}
	timer := time.NewTimer(0)
	if !timer.Stop() {
		<-timer.C
	}
	defer timer.Stop()
	for {
		select {
		case <-j.quit:
			return
		case <-j.wake:
		}
		timer.Reset(j.opts.GroupWindow)
		select {
		case <-j.quit:
			return
		case <-timer.C:
		}
		// Drain any nudge that raced the window so the next append
		// starts a fresh batch.
		select {
		case <-j.wake:
		default:
		}
		j.commit(true) // sticky error is observed by the next Append
	}
}

// segPath names segment seq in dir.
func segPath(dir string, seq int) string {
	return filepath.Join(dir, fmt.Sprintf("journal-%08d.wal", seq))
}

// openSegment creates segment seq, writes the magic, fsyncs the file
// and the directory (so the name survives a crash), and makes it the
// append head. Called from Open (single-threaded) or under fmu.
func (j *Journal) openSegment(seq int) error {
	f, err := os.OpenFile(segPath(j.dir, seq), os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if _, err := f.Write(segMagic[:]); err != nil {
		f.Close()
		return fmt.Errorf("journal: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("journal: %w", err)
	}
	if err := syncDir(j.dir); err != nil {
		f.Close()
		return err
	}
	j.f, j.seq, j.fileBytes = f, seq, int64(len(segMagic))
	return nil
}

// Compact folds the journal's history into one snapshot: it seals the
// current segment, starts a fresh one whose first record is the
// snapshot (kind KindSnapshot), fsyncs it, and only then deletes the
// older segments. A crash at any point leaves a readable journal: either
// the old segments still exist (the snapshot record simply restates
// their net effect) or only the new one does.
func (j *Journal) Compact(snapshot []byte) error {
	if len(snapshot)+1 > maxRecordSize {
		return fmt.Errorf("journal: snapshot of %d bytes exceeds max %d", len(snapshot), maxRecordSize)
	}
	j.fmu.Lock()
	defer j.fmu.Unlock()
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return errors.New("journal: closed")
	}
	j.mu.Unlock()
	// Seal: everything staged so far becomes durable in the old segment.
	if err := j.commitFLocked(true); err != nil {
		return err
	}
	if err := j.f.Close(); err != nil {
		return j.stick(fmt.Errorf("journal: close segment: %w", err))
	}
	old := j.seq
	if err := j.openSegment(j.seq + 1); err != nil {
		return j.stick(err)
	}
	j.mu.Lock()
	// The snapshot must be the new segment's first record: stage it
	// ahead of anything appended since the seal above.
	j.buf = append(j.snapEnvelope(snapshot), j.buf...)
	j.mu.Unlock()
	if err := j.commitFLocked(true); err != nil {
		return err
	}
	// The snapshot is durable; the history it replaces can go.
	for seq := old; seq >= 1; seq-- {
		p := segPath(j.dir, seq)
		if err := os.Remove(p); err != nil {
			if os.IsNotExist(err) {
				break // older segments were already compacted away
			}
			return j.stick(fmt.Errorf("journal: removing %s: %w", p, err))
		}
	}
	if err := syncDir(j.dir); err != nil {
		return j.stick(err)
	}
	j.compactions.Add(1)
	return nil
}

// snapEnvelope renders a snapshot record's on-disk envelope.
func (j *Journal) snapEnvelope(snapshot []byte) []byte {
	b := make([]byte, 0, recHeaderSize+len(snapshot))
	var hdr [recHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(1+len(snapshot)))
	hdr[8] = KindSnapshot
	crc := crc32.Checksum(hdr[8:9], castagnoli)
	crc = crc32.Update(crc, castagnoli, snapshot)
	binary.LittleEndian.PutUint32(hdr[4:8], crc)
	b = append(b, hdr[:]...)
	b = append(b, snapshot...)
	j.appends.Add(1)
	j.bytes.Add(int64(len(b)))
	return b
}

// stick records err as the journal's sticky error and returns it.
func (j *Journal) stick(err error) error {
	j.mu.Lock()
	if j.err == nil {
		j.err = err
	}
	j.mu.Unlock()
	return err
}

// Close flushes and fsyncs outstanding records, stops the group
// committer, and closes the segment file.
func (j *Journal) Close() error {
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return nil
	}
	j.closed = true
	j.mu.Unlock()
	// Stop the committer first so the final commit below cannot race a
	// window firing mid-close.
	close(j.quit)
	<-j.done
	err := j.commit(true)
	j.fmu.Lock()
	cerr := j.f.Close()
	j.fmu.Unlock()
	if err != nil {
		return err
	}
	if cerr != nil {
		return fmt.Errorf("journal: close: %w", cerr)
	}
	return nil
}

// Abort closes the journal as a crash would: staged records that were
// never flushed are dropped on the floor, nothing is fsynced, and the
// group committer is stopped. Crash-injection harnesses use it to model
// process death without os.Exit; real code should use Close.
func (j *Journal) Abort() {
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return
	}
	j.closed = true
	j.buf = nil // unflushed records die with the process
	j.mu.Unlock()
	close(j.quit)
	<-j.done
	j.fmu.Lock()
	j.f.Close()
	j.fmu.Unlock()
}

// syncDir fsyncs a directory so renames/creates/removes inside it are
// durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	err = d.Sync()
	cerr := d.Close()
	if err != nil {
		return fmt.Errorf("journal: fsync dir: %w", err)
	}
	if cerr != nil {
		return fmt.Errorf("journal: %w", cerr)
	}
	return nil
}

// SegmentInfo describes one segment file found by Read.
type SegmentInfo struct {
	Path string
	Seq  int
	Size int64
}

// Replay is the result of reading a journal from disk.
type Replay struct {
	// Records are every intact record, in append order across segments.
	Records []Record
	// Torn reports that reading stopped at a torn or corrupt record; the
	// records before it were all recovered. TornPath and TornOffset
	// locate the first bad byte.
	Torn       bool
	TornPath   string
	TornOffset int64
	// Segments lists the segment files read, in sequence order.
	Segments []SegmentInfo
}

// Read replays the journal at path, which may be a journal directory or
// a single segment file. The reader is tolerant of the damage a crash
// can leave — a truncated tail, a half-written record, flipped bits —
// and never panics: it returns every record up to the first corruption
// and reports where it stopped. I/O failures (as opposed to corrupt
// contents) are returned as errors.
func Read(path string) (*Replay, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	rep := &Replay{}
	if !fi.IsDir() {
		rep.Segments = []SegmentInfo{{Path: path, Size: fi.Size()}}
		return rep, readSegment(path, rep)
	}
	entries, err := os.ReadDir(path)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	for _, e := range entries {
		var seq int
		if _, err := fmt.Sscanf(e.Name(), "journal-%d.wal", &seq); err != nil || seq < 1 {
			continue
		}
		info, err := e.Info()
		if err != nil {
			return nil, fmt.Errorf("journal: %w", err)
		}
		rep.Segments = append(rep.Segments, SegmentInfo{
			Path: filepath.Join(path, e.Name()), Seq: seq, Size: info.Size(),
		})
	}
	sort.Slice(rep.Segments, func(i, k int) bool { return rep.Segments[i].Seq < rep.Segments[k].Seq })
	for _, seg := range rep.Segments {
		if err := readSegment(seg.Path, rep); err != nil {
			return nil, err
		}
		if rep.Torn {
			// Records past a corruption point are unanchored — a later
			// segment may postdate a snapshot we can no longer trust.
			break
		}
	}
	return rep, nil
}

// readSegment appends one segment's intact records to rep, marking rep
// torn at the first bad byte.
func readSegment(path string, rep *Replay) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	torn := func(off int) {
		rep.Torn = true
		rep.TornPath = path
		rep.TornOffset = int64(off)
	}
	if len(data) < len(segMagic) || [8]byte(data[:8]) != segMagic {
		torn(0)
		return nil
	}
	off := len(segMagic)
	for off < len(data) {
		if len(data)-off < recHeaderSize {
			torn(off)
			return nil
		}
		length := binary.LittleEndian.Uint32(data[off : off+4])
		crc := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if length == 0 || length > maxRecordSize {
			torn(off)
			return nil
		}
		end := off + 8 + int(length)
		if end > len(data) {
			torn(off)
			return nil
		}
		body := data[off+8 : end]
		if crc32.Checksum(body, castagnoli) != crc {
			torn(off)
			return nil
		}
		rec := Record{Kind: body[0]}
		if len(body) > 1 {
			rec.Data = append([]byte(nil), body[1:]...)
		}
		rep.Records = append(rep.Records, rec)
		off = end
	}
	return nil
}

// Snapshot returns the index just past the last snapshot record in
// records, plus whether one exists: replay state = decode records[i-1]'s
// snapshot, then apply records[i:]. A journal that was never compacted
// returns (0, false): apply everything.
func Snapshot(records []Record) (int, bool) {
	for i := len(records) - 1; i >= 0; i-- {
		if records[i].Kind == KindSnapshot {
			return i + 1, true
		}
	}
	return 0, false
}

// ErrNoJournal reports a resume attempt against a journal with no
// records at all.
var ErrNoJournal = errors.New("journal: no records")
