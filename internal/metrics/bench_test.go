package metrics

import (
	"testing"
	"time"
)

func BenchmarkSampleOnce(b *testing.B) {
	s := NewSampler(time.Second)
	for i := 0; i < 8; i++ {
		name := string(rune('a' + i))
		s.Register(name, func() float64 { return 1 })
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.SampleOnce(time.Duration(i))
	}
}

func BenchmarkSeriesStats(b *testing.B) {
	ser := &Series{}
	for i := 0; i < 10000; i++ {
		ser.Times = append(ser.Times, time.Duration(i)*time.Second)
		ser.Values = append(ser.Values, float64(i%97))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ser.Mean()
		_ = ser.Max()
		_ = ser.Integral()
	}
}
