package metrics

import (
	"math"
	"math/rand"
	"testing"
)

// exactQuantile is the nearest-rank reference the estimator is judged
// against, matching Series.Percentile's convention.
func exactQuantile(vals []float64, q float64) float64 {
	s := &Series{Values: append([]float64(nil), vals...)}
	return s.Percentile(q * 100)
}

func TestP2QuantileSmallStreams(t *testing.T) {
	p := NewP2Quantile(0.5)
	if got := p.Value(); got != 0 {
		t.Fatalf("empty estimator Value = %v, want 0", got)
	}
	for _, v := range []float64{5, 1, 3} {
		p.Observe(v)
	}
	if got := p.Value(); got != 3 {
		t.Fatalf("3-sample median = %v, want 3", got)
	}
	if p.Count() != 3 {
		t.Fatalf("Count = %d, want 3", p.Count())
	}
}

func TestP2QuantileAccuracy(t *testing.T) {
	cases := []struct {
		name string
		gen  func(r *rand.Rand) float64
		// tol is the accepted relative error vs the exact quantile —
		// P² converges but is an approximation.
		tol float64
	}{
		{"uniform", func(r *rand.Rand) float64 { return r.Float64() * 100 }, 0.05},
		{"normal", func(r *rand.Rand) float64 { return 50 + 10*r.NormFloat64() }, 0.05},
		{"exponential", func(r *rand.Rand) float64 { return r.ExpFloat64() * 20 }, 0.10},
		// Bimodal with a heavy tail — the straggler shape the health
		// plane exists for.
		{"bimodal", func(r *rand.Rand) float64 {
			if r.Float64() < 0.9 {
				return 10 + r.Float64()
			}
			return 500 + 50*r.Float64()
		}, 0.10},
	}
	for _, tc := range cases {
		for _, q := range []float64{0.5, 0.95, 0.99} {
			r := rand.New(rand.NewSource(42))
			p := NewP2Quantile(q)
			vals := make([]float64, 20000)
			for i := range vals {
				vals[i] = tc.gen(r)
				p.Observe(vals[i])
			}
			want := exactQuantile(vals, q)
			got := p.Value()
			if want == 0 {
				continue
			}
			if rel := math.Abs(got-want) / want; rel > tc.tol {
				t.Errorf("%s p%g: estimate %.3f vs exact %.3f (rel err %.3f > %.3f)",
					tc.name, q*100, got, want, rel, tc.tol)
			}
		}
	}
}

func TestP2QuantileMonotoneStream(t *testing.T) {
	// A sorted stream is the estimator's worst case for the parabolic
	// update; the median of 1..N must still land near N/2.
	p := NewP2Quantile(0.5)
	const n = 10001
	for i := 1; i <= n; i++ {
		p.Observe(float64(i))
	}
	got := p.Value()
	if math.Abs(got-n/2) > n*0.02 {
		t.Fatalf("median of 1..%d = %v, want ~%d", n, got, n/2)
	}
}

func TestP2QuantileClampsBadQ(t *testing.T) {
	for _, q := range []float64{0, 1, -3, 7} {
		p := NewP2Quantile(q)
		for i := 0; i < 100; i++ {
			p.Observe(float64(i))
		}
		got := p.Value()
		if got < 30 || got > 70 {
			t.Fatalf("NewP2Quantile(%v) should clamp to median; Value = %v", q, got)
		}
	}
}
