// Package metrics is the telemetry substrate standing in for Performance
// Co-Pilot (PCP) in the paper's methodology: a sampler polls a set of
// named gauges at a fixed interval (the paper uses pmdumptext -t 1sec)
// and records time series for CPU, memory, and per-package power, which
// the analysis then reduces to the means plotted in Figures 4-7. A
// pmdumptext-compatible CSV export is provided.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"time"
)

// Gauge reads one instantaneous metric value.
type Gauge func() float64

// Series is a recorded time series. Times are offsets from the sampler
// start.
type Series struct {
	Times  []time.Duration
	Values []float64
}

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.Values) }

// Mean returns the arithmetic mean of the samples, 0 if empty.
func (s *Series) Mean() float64 {
	if len(s.Values) == 0 {
		return 0
	}
	var sum float64
	for _, v := range s.Values {
		sum += v
	}
	return sum / float64(len(s.Values))
}

// Max returns the largest sample, 0 if empty.
func (s *Series) Max() float64 {
	if len(s.Values) == 0 {
		return 0
	}
	m := math.Inf(-1)
	for _, v := range s.Values {
		if v > m {
			m = v
		}
	}
	return m
}

// Min returns the smallest sample, 0 if empty.
func (s *Series) Min() float64 {
	if len(s.Values) == 0 {
		return 0
	}
	m := math.Inf(1)
	for _, v := range s.Values {
		if v < m {
			m = v
		}
	}
	return m
}

// Integral approximates the time integral of the series (trapezoidal
// rule), in value·seconds. Integrating a power series yields energy in
// joules.
func (s *Series) Integral() float64 {
	var total float64
	for i := 1; i < len(s.Values); i++ {
		dt := s.Times[i].Seconds() - s.Times[i-1].Seconds()
		total += dt * (s.Values[i] + s.Values[i-1]) / 2
	}
	return total
}

// Sampler polls registered gauges on a fixed interval. The zero value is
// not usable; call NewSampler. Register all gauges before Start.
type Sampler struct {
	interval time.Duration

	mu      sync.Mutex
	names   []string // registration order
	gauges  map[string]Gauge
	series  map[string]*Series
	start   time.Time
	started bool
	stop    chan struct{}
	done    chan struct{}
}

// NewSampler returns a sampler with the given polling interval. The
// paper samples at 1 Hz; experiments here scale the interval together
// with all other durations.
func NewSampler(interval time.Duration) *Sampler {
	if interval <= 0 {
		interval = time.Second
	}
	return &Sampler{
		interval: interval,
		gauges:   make(map[string]Gauge),
		series:   make(map[string]*Series),
	}
}

// Register adds a named gauge. Registering a duplicate name replaces the
// gauge but keeps its recorded series. Register after Start is rejected.
func (s *Sampler) Register(name string, g Gauge) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		return fmt.Errorf("metrics: register %q after Start", name)
	}
	if _, ok := s.gauges[name]; !ok {
		s.names = append(s.names, name)
		s.series[name] = &Series{}
	}
	s.gauges[name] = g
	return nil
}

// Names returns the registered metric names in registration order.
func (s *Sampler) Names() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.names...)
}

// SampleOnce records one sample of every gauge at the given offset from
// start. It is used internally by the polling loop and directly by tests
// and by virtual-time harnesses.
func (s *Sampler) SampleOnce(at time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, n := range s.names {
		v := s.gauges[n]()
		ser := s.series[n]
		ser.Times = append(ser.Times, at)
		ser.Values = append(ser.Values, v)
	}
}

// Start begins polling in a background goroutine. It records an initial
// sample immediately so short runs are never empty.
func (s *Sampler) Start() error {
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		return fmt.Errorf("metrics: sampler already started")
	}
	s.started = true
	s.start = time.Now()
	s.stop = make(chan struct{})
	s.done = make(chan struct{})
	stop, done, start := s.stop, s.done, s.start
	s.mu.Unlock()

	s.SampleOnce(0)
	go func() {
		defer close(done)
		ticker := time.NewTicker(s.interval)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case t := <-ticker.C:
				s.SampleOnce(t.Sub(start))
			}
		}
	}()
	return nil
}

// Stop halts polling, records a final sample, and returns. Safe to call
// once after Start.
func (s *Sampler) Stop() {
	s.mu.Lock()
	if !s.started || s.stop == nil {
		s.mu.Unlock()
		return
	}
	stop := s.stop
	s.stop = nil
	s.mu.Unlock()
	close(stop)
	<-s.done
	s.SampleOnce(time.Since(s.start))
}

// SeriesFor returns the recorded series for name, or nil.
func (s *Sampler) SeriesFor(name string) *Series {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.series[name]
}

// MeanOf returns the mean of a named series (0 if unknown).
func (s *Sampler) MeanOf(name string) float64 {
	if ser := s.SeriesFor(name); ser != nil {
		return ser.Mean()
	}
	return 0
}

// MaxOf returns the max of a named series (0 if unknown).
func (s *Sampler) MaxOf(name string) float64 {
	if ser := s.SeriesFor(name); ser != nil {
		return ser.Max()
	}
	return 0
}

// WriteCSV emits the recorded series in pmdumptext style: a header line
// with the metric names, then one row per sample time with the configured
// separator. All series share sample times because SampleOnce reads every
// gauge per tick.
func (s *Sampler) WriteCSV(w io.Writer, sep string) error {
	s.mu.Lock()
	names := append([]string(nil), s.names...)
	s.mu.Unlock()
	if sep == "" {
		sep = ","
	}
	if _, err := fmt.Fprintf(w, "time%s%s\n", sep, strings.Join(names, sep)); err != nil {
		return err
	}
	if len(names) == 0 {
		return nil
	}
	ref := s.SeriesFor(names[0])
	for i := 0; i < ref.Len(); i++ {
		row := make([]string, 0, len(names)+1)
		row = append(row, fmt.Sprintf("%.3f", ref.Times[i].Seconds()))
		for _, n := range names {
			ser := s.SeriesFor(n)
			if i < ser.Len() {
				row = append(row, fmt.Sprintf("%.4f", ser.Values[i]))
			} else {
				row = append(row, "")
			}
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, sep)); err != nil {
			return err
		}
	}
	return nil
}

// Summary reduces every series to its mean and max — what the paper's
// Jupyter analysis computes from the PCP CSVs.
type Summary struct {
	Mean map[string]float64
	Max  map[string]float64
}

// Summarize builds a Summary over all registered series.
func (s *Sampler) Summarize() Summary {
	out := Summary{Mean: make(map[string]float64), Max: make(map[string]float64)}
	for _, n := range s.Names() {
		ser := s.SeriesFor(n)
		out.Mean[n] = ser.Mean()
		out.Max[n] = ser.Max()
	}
	return out
}

// String renders the summary with metrics sorted by name.
func (sum Summary) String() string {
	names := make([]string, 0, len(sum.Mean))
	for n := range sum.Mean {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		fmt.Fprintf(&b, "%s: mean=%.3f max=%.3f\n", n, sum.Mean[n], sum.Max[n])
	}
	return b.String()
}

// Standard metric names, mirroring the PCP metrics the paper samples.
const (
	MetricCPUUser       = "kernel.all.cpu.user"  // live busy cores
	MetricCPUReserved   = "cpu.reserved.cores"   // provisioned cores
	MetricMemUsed       = "mem.util.used"        // live resident bytes
	MetricMemReserved   = "mem.reserved.bytes"   // provisioned bytes
	MetricPower         = "denki.rapl.rate"      // total watts
	MetricPodsRunning   = "platform.pods"        // live pods/containers
	MetricQueueDepth    = "platform.queue.depth" // ingress queue length
	MetricColdStarts    = "platform.coldstarts"  // cumulative cold starts
	MetricRequestsTotal = "platform.requests"    // cumulative requests
)
