package metrics

import (
	"bytes"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Sum() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("zero histogram not empty")
	}
	for _, v := range []float64{0.0001, 0.001, 0.001, 0.01, 0.1, 1} {
		h.Observe(v)
	}
	h.ObserveDuration(10 * time.Millisecond)
	h.Observe(-1) // ignored
	if h.Count() != 7 {
		t.Fatalf("count = %d, want 7", h.Count())
	}
	if s := h.Sum(); s < 1.11 || s > 1.13 {
		t.Fatalf("sum = %v, want ~1.1221", s)
	}
	if q := h.Quantile(0.5); q <= 0 || q > 0.02 {
		t.Fatalf("p50 = %v, want in (0, 0.02]", q)
	}
	if q := h.Quantile(1); q < 0.5 {
		t.Fatalf("p100 = %v, want >= 0.5", q)
	}
	if h.Quantile(0.99) < h.Quantile(0.5) {
		t.Fatal("quantiles not monotonic")
	}
}

func TestHistogramBucketMapping(t *testing.T) {
	if bucketOf(0) != 0 || bucketOf(histFirst) != 0 {
		t.Fatal("values at or below the first bound belong in bucket 0")
	}
	if bucketOf(histFirst*2+1e-12) != 2 {
		t.Fatalf("bucketOf just above bound 1 = %d, want 2", bucketOf(histFirst*2+1e-12))
	}
	if bucketOf(1e9) != histBuckets {
		t.Fatal("huge values must land in the overflow bucket")
	}
	for i := 0; i < histBuckets; i++ {
		if got := bucketOf(histBound(i)); got != i {
			t.Fatalf("bucketOf(bound %d) = %d, boundaries must be inclusive", i, got)
		}
	}
}

func TestHistogramPromExposition(t *testing.T) {
	var h Histogram
	h.Observe(0.002)
	h.Observe(0.004)
	h.Observe(1e6) // overflow

	var buf bytes.Buffer
	if err := h.WriteProm(&buf, "test_seconds", "test histogram"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "# TYPE test_seconds histogram") {
		t.Fatalf("missing TYPE line:\n%s", out)
	}
	if !strings.Contains(out, `test_seconds_bucket{le="+Inf"} 3`) {
		t.Fatalf("missing +Inf bucket:\n%s", out)
	}
	if !strings.Contains(out, "test_seconds_count 3") {
		t.Fatalf("missing count:\n%s", out)
	}

	// Bucket counts must be cumulative and non-decreasing.
	var last uint64
	lines := 0
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "test_seconds_bucket") {
			continue
		}
		lines++
		v, err := strconv.ParseUint(line[strings.LastIndex(line, " ")+1:], 10, 64)
		if err != nil {
			t.Fatalf("bad bucket line %q: %v", line, err)
		}
		if v < last {
			t.Fatalf("bucket counts decreased: %q after %d", line, last)
		}
		last = v
	}
	if lines != histBuckets+1 {
		t.Fatalf("bucket lines = %d, want %d", lines, histBuckets+1)
	}
	if last != 3 {
		t.Fatalf("final cumulative bucket = %d, want 3", last)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(0.001)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("count = %d, want 8000", h.Count())
	}
}

func TestSeriesPercentile(t *testing.T) {
	var empty Series
	if empty.Percentile(50) != 0 {
		t.Fatal("empty series percentile != 0")
	}
	s := &Series{}
	for i := 100; i >= 1; i-- { // reversed: Percentile must sort a copy
		s.Values = append(s.Values, float64(i))
	}
	cases := []struct{ p, want float64 }{
		{0, 1}, {50, 50}, {95, 95}, {99, 99}, {100, 100},
		{-5, 1}, {200, 100},
	}
	for _, tc := range cases {
		if got := s.Percentile(tc.p); got != tc.want {
			t.Errorf("Percentile(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
	// The receiver's order is untouched.
	if s.Values[0] != 100 {
		t.Fatal("Percentile sorted the series in place")
	}

	single := &Series{Values: []float64{7}}
	for _, p := range []float64{0, 50, 99, 100} {
		if got := single.Percentile(p); got != 7 {
			t.Fatalf("single-sample Percentile(%v) = %v", p, got)
		}
	}
}
