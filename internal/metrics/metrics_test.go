package metrics

import (
	"math"
	"strings"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func TestSeriesStats(t *testing.T) {
	s := &Series{
		Times:  []time.Duration{0, time.Second, 2 * time.Second},
		Values: []float64{1, 3, 2},
	}
	if got := s.Mean(); got != 2 {
		t.Fatalf("Mean = %v", got)
	}
	if got := s.Max(); got != 3 {
		t.Fatalf("Max = %v", got)
	}
	if got := s.Min(); got != 1 {
		t.Fatalf("Min = %v", got)
	}
	// trapezoid: (1+3)/2*1 + (3+2)/2*1 = 2 + 2.5
	if got := s.Integral(); math.Abs(got-4.5) > 1e-9 {
		t.Fatalf("Integral = %v, want 4.5", got)
	}
}

func TestSeriesEmpty(t *testing.T) {
	s := &Series{}
	if s.Mean() != 0 || s.Max() != 0 || s.Min() != 0 || s.Integral() != 0 {
		t.Fatal("empty series stats should all be 0")
	}
}

func TestRegisterAndSampleOnce(t *testing.T) {
	s := NewSampler(time.Millisecond)
	v := 1.0
	if err := s.Register("a", func() float64 { return v }); err != nil {
		t.Fatal(err)
	}
	if err := s.Register("b", func() float64 { return 10 }); err != nil {
		t.Fatal(err)
	}
	s.SampleOnce(0)
	v = 5
	s.SampleOnce(time.Second)
	ser := s.SeriesFor("a")
	if ser.Len() != 2 || ser.Values[0] != 1 || ser.Values[1] != 5 {
		t.Fatalf("series a = %+v", ser)
	}
	if got := s.MeanOf("a"); got != 3 {
		t.Fatalf("MeanOf(a) = %v", got)
	}
	if got := s.MaxOf("b"); got != 10 {
		t.Fatalf("MaxOf(b) = %v", got)
	}
	if got := s.MeanOf("unknown"); got != 0 {
		t.Fatalf("MeanOf(unknown) = %v", got)
	}
}

func TestRegisterDuplicateKeepsSeries(t *testing.T) {
	s := NewSampler(time.Millisecond)
	s.Register("x", func() float64 { return 1 })
	s.SampleOnce(0)
	s.Register("x", func() float64 { return 2 })
	s.SampleOnce(time.Second)
	ser := s.SeriesFor("x")
	if ser.Len() != 2 || ser.Values[0] != 1 || ser.Values[1] != 2 {
		t.Fatalf("series = %+v", ser)
	}
	if got := len(s.Names()); got != 1 {
		t.Fatalf("Names = %v", s.Names())
	}
}

func TestStartStopPolls(t *testing.T) {
	s := NewSampler(2 * time.Millisecond)
	var counter atomic.Int64
	s.Register("n", func() float64 { return float64(counter.Add(1)) })
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err == nil {
		t.Fatal("double Start accepted")
	}
	time.Sleep(20 * time.Millisecond)
	s.Stop()
	got := s.SeriesFor("n").Len()
	if got < 3 {
		t.Fatalf("only %d samples after 20ms at 2ms interval", got)
	}
	// Stop again is a no-op.
	s.Stop()
	if s.SeriesFor("n").Len() != got {
		t.Fatal("second Stop recorded more samples")
	}
}

func TestRegisterAfterStartRejected(t *testing.T) {
	s := NewSampler(time.Millisecond)
	s.Register("a", func() float64 { return 0 })
	s.Start()
	defer s.Stop()
	if err := s.Register("late", func() float64 { return 0 }); err == nil {
		t.Fatal("Register after Start accepted")
	}
}

func TestWriteCSV(t *testing.T) {
	s := NewSampler(time.Millisecond)
	s.Register("m1", func() float64 { return 1.5 })
	s.Register("m2", func() float64 { return 2.25 })
	s.SampleOnce(0)
	s.SampleOnce(time.Second)
	var b strings.Builder
	if err := s.WriteCSV(&b, ","); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %v", lines)
	}
	if lines[0] != "time,m1,m2" {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "1.5000") || !strings.Contains(lines[1], "2.2500") {
		t.Fatalf("row = %q", lines[1])
	}
}

func TestWriteCSVEmpty(t *testing.T) {
	s := NewSampler(time.Millisecond)
	var b strings.Builder
	if err := s.WriteCSV(&b, ""); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(b.String(), "time") {
		t.Fatalf("output = %q", b.String())
	}
}

func TestSummarize(t *testing.T) {
	s := NewSampler(time.Millisecond)
	v := 0.0
	s.Register("g", func() float64 { v += 2; return v })
	s.SampleOnce(0)
	s.SampleOnce(time.Second)
	sum := s.Summarize()
	if sum.Mean["g"] != 3 || sum.Max["g"] != 4 {
		t.Fatalf("summary = %+v", sum)
	}
	if !strings.Contains(sum.String(), "g: mean=3.000 max=4.000") {
		t.Fatalf("String = %q", sum.String())
	}
}

func TestDefaultInterval(t *testing.T) {
	s := NewSampler(0)
	if s.interval != time.Second {
		t.Fatalf("interval = %v, want 1s default", s.interval)
	}
}

func TestQuickMeanBounds(t *testing.T) {
	f := func(vals []float64) bool {
		ser := &Series{}
		for i, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true // skip non-finite inputs
			}
			// Bound magnitudes so the mean's running sum cannot
			// overflow — the property under test is ordering, not
			// extreme-value arithmetic.
			v = math.Mod(v, 1e9)
			ser.Times = append(ser.Times, time.Duration(i)*time.Second)
			ser.Values = append(ser.Values, v)
		}
		if len(vals) == 0 {
			return ser.Mean() == 0
		}
		m := ser.Mean()
		return m >= ser.Min()-1e-9 && m <= ser.Max()+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickIntegralNonNegativeForNonNegative(t *testing.T) {
	f := func(vals []uint16) bool {
		ser := &Series{}
		for i, v := range vals {
			ser.Times = append(ser.Times, time.Duration(i)*time.Second)
			ser.Values = append(ser.Values, float64(v))
		}
		return ser.Integral() >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
