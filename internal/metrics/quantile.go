package metrics

import "sort"

// P2Quantile is the P² (piecewise-parabolic) online quantile estimator
// of Jain & Chlamtac (CACM 1985): five markers track the running
// q-quantile of a stream in O(1) memory and O(1) time per observation,
// with no buffering and no sorting after the first five samples. The
// health plane uses it for per-endpoint latency baselines, where an
// exact Series would grow with the run and a Histogram's log-scale
// buckets are too coarse for a k×median straggler criterion.
//
// The zero value is unusable; construct with NewP2Quantile. Not safe
// for concurrent use — callers guard it (per-endpoint stats hold one
// short-lived mutex).
type P2Quantile struct {
	q     float64    // target quantile in (0, 1)
	n     int64      // observations seen
	h     [5]float64 // marker heights (estimates)
	pos   [5]float64 // actual marker positions, 1-based
	want  [5]float64 // desired marker positions
	dwant [5]float64 // desired-position increments per observation
}

// NewP2Quantile returns an estimator for the q-quantile, q in (0, 1).
func NewP2Quantile(q float64) *P2Quantile {
	p := &P2Quantile{}
	p.Init(q)
	return p
}

// Init (re)initializes the estimator for the q-quantile; values outside
// (0, 1) are clamped to the median. Useful for embedding the estimator
// by value.
func (p *P2Quantile) Init(q float64) {
	if q <= 0 || q >= 1 {
		q = 0.5
	}
	*p = P2Quantile{q: q}
	p.dwant = [5]float64{0, q / 2, q, (1 + q) / 2, 1}
}

// Count returns how many observations the estimator has absorbed.
func (p *P2Quantile) Count() int64 { return p.n }

// Observe absorbs one observation.
func (p *P2Quantile) Observe(v float64) {
	if p.n < 5 {
		p.h[p.n] = v
		p.n++
		if p.n == 5 {
			sort.Float64s(p.h[:])
			for i := 0; i < 5; i++ {
				p.pos[i] = float64(i + 1)
			}
			p.want = [5]float64{1, 1 + 2*p.q, 1 + 4*p.q, 3 + 2*p.q, 5}
		}
		return
	}
	// Find the cell the observation falls into and update the extremes.
	var k int
	switch {
	case v < p.h[0]:
		p.h[0] = v
		k = 0
	case v >= p.h[4]:
		p.h[4] = v
		k = 3
	default:
		for k = 0; k < 3; k++ {
			if v < p.h[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		p.pos[i]++
	}
	p.n++
	for i := 0; i < 5; i++ {
		p.want[i] += p.dwant[i]
	}
	// Adjust the three interior markers toward their desired positions,
	// by parabolic interpolation when the neighbour ordering allows it,
	// linear otherwise.
	for i := 1; i <= 3; i++ {
		d := p.want[i] - p.pos[i]
		if (d >= 1 && p.pos[i+1]-p.pos[i] > 1) || (d <= -1 && p.pos[i-1]-p.pos[i] < -1) {
			sign := 1.0
			if d < 0 {
				sign = -1
			}
			nh := p.parabolic(i, sign)
			if p.h[i-1] < nh && nh < p.h[i+1] {
				p.h[i] = nh
			} else {
				p.h[i] = p.linear(i, sign)
			}
			p.pos[i] += sign
		}
	}
}

func (p *P2Quantile) parabolic(i int, d float64) float64 {
	return p.h[i] + d/(p.pos[i+1]-p.pos[i-1])*
		((p.pos[i]-p.pos[i-1]+d)*(p.h[i+1]-p.h[i])/(p.pos[i+1]-p.pos[i])+
			(p.pos[i+1]-p.pos[i]-d)*(p.h[i]-p.h[i-1])/(p.pos[i]-p.pos[i-1]))
}

func (p *P2Quantile) linear(i int, d float64) float64 {
	j := i + int(d)
	return p.h[i] + d*(p.h[j]-p.h[i])/(p.pos[j]-p.pos[i])
}

// Value returns the current estimate. Before five observations it
// falls back to the nearest-rank quantile of what has been seen; with
// none it returns 0.
func (p *P2Quantile) Value() float64 {
	if p.n == 0 {
		return 0
	}
	if p.n < 5 {
		buf := make([]float64, p.n)
		copy(buf, p.h[:p.n])
		sort.Float64s(buf)
		idx := int(p.q * float64(p.n))
		if idx >= len(buf) {
			idx = len(buf) - 1
		}
		return buf[idx]
	}
	return p.h[2]
}
