package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// histBuckets is the number of log-scale latency buckets. With the
// first boundary at histFirst and doubling boundaries, 24 buckets span
// 100µs .. ~14min before the +Inf overflow — wide enough for both the
// in-process platform (sub-millisecond) and time-scaled runs (seconds).
const (
	histBuckets = 24
	histFirst   = 100e-6 // seconds
)

// Histogram is a fixed-bucket log-scale histogram of seconds, safe for
// concurrent observation: Observe is two atomic adds and a handful of
// integer ops, cheap enough for the invocation hot path. Buckets are
// cumulative only at exposition time; internally each slot counts its
// own range.
//
// The zero value is ready to use.
type Histogram struct {
	counts [histBuckets + 1]atomic.Uint64 // last slot = overflow (+Inf)
	count  atomic.Uint64
	sum    atomic.Uint64 // integer microseconds, so plain Add works
}

// histBound returns the upper boundary of bucket i in seconds.
func histBound(i int) float64 {
	return histFirst * math.Pow(2, float64(i))
}

// bucketOf maps an observation in seconds to its bucket index.
func bucketOf(seconds float64) int {
	if seconds <= histFirst {
		return 0
	}
	// ceil(log2(v/first)) without a libm call in the common path.
	i := 1
	bound := histFirst * 2
	for i < histBuckets && seconds > bound {
		bound *= 2
		i++
	}
	return i
}

// Observe records one value in seconds.
func (h *Histogram) Observe(seconds float64) {
	if seconds < 0 || math.IsNaN(seconds) {
		return
	}
	h.counts[bucketOf(seconds)].Add(1)
	h.count.Add(1)
	// Accumulate the sum in integer microseconds: atomic, and precise
	// enough for a latency aggregate.
	h.sum.Add(uint64(seconds * 1e6))
}

// ObserveDuration records one duration.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observations in seconds.
func (h *Histogram) Sum() float64 { return float64(h.sum.Load()) / 1e6 }

// Quantile estimates the q-quantile (q in [0,1]) by linear
// interpolation inside the winning bucket. Returns 0 when empty.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum uint64
	for i := 0; i <= histBuckets; i++ {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		if float64(cum)+float64(c) >= rank {
			lo := 0.0
			if i > 0 {
				lo = histBound(i - 1)
			}
			hi := histBound(i)
			if i == histBuckets { // overflow bucket has no upper bound
				return lo
			}
			frac := (rank - float64(cum)) / float64(c)
			return lo + (hi-lo)*frac
		}
		cum += c
	}
	return histBound(histBuckets - 1)
}

// WriteProm writes the histogram in Prometheus text exposition format:
// cumulative `_bucket{le="..."}` series, `_sum`, and `_count`.
func (h *Histogram) WriteProm(w io.Writer, name, help string) error {
	if help != "" {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n", name, help); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
		return err
	}
	var cum uint64
	for i := 0; i < histBuckets; i++ {
		cum += h.counts[i].Load()
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%g\"} %d\n", name, histBound(i), cum); err != nil {
			return err
		}
	}
	cum += h.counts[histBuckets].Load()
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum %g\n", name, h.Sum()); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count %d\n", name, h.Count())
	return err
}

// Percentile returns the p-th percentile (p in [0,100]) of the recorded
// samples by nearest-rank on a sorted copy — exact, unlike the
// Histogram estimate, and appropriate for post-hoc analysis of the
// modest-length PCP-style series. Returns 0 when empty.
func (s *Series) Percentile(p float64) float64 {
	n := len(s.Values)
	if n == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	} else if p > 100 {
		p = 100
	}
	sorted := append([]float64(nil), s.Values...)
	sort.Float64s(sorted)
	// Nearest-rank: the smallest value with at least p% of samples at
	// or below it.
	rank := int(math.Ceil(p / 100 * float64(n)))
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}
