// Package federation implements the paper's future-work "multi-cluster
// invocation scenarios" (Section VII): a router that fronts several
// serverless platforms — each with its own cluster and shared drive
// namespace is NOT assumed; members must share the drive — and spreads
// function invocations across them. The workflow manager targets the
// router exactly like a single platform, because the router speaks the
// same POST /<service>/wfbench protocol.
package federation

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"wfserverless/internal/serverless"
	"wfserverless/internal/wfbench"
)

// Policy selects how invocations are spread across member clusters.
type Policy string

// Policies.
const (
	// RoundRobin cycles through members.
	RoundRobin Policy = "round-robin"
	// LeastQueued picks the member with the shortest ingress queue,
	// spilling load toward idle clusters.
	LeastQueued Policy = "least-queued"
)

// Member is one federated cluster's platform.
type Member struct {
	Name     string
	Platform *serverless.Platform
}

// Router is the multi-cluster front end.
type Router struct {
	policy  Policy
	members []Member

	mu       sync.Mutex
	server   *http.Server
	listener net.Listener
	url      string
	stopped  bool

	rr     atomic.Int64
	counts []atomic.Int64
}

// New returns a router over the members. Members must already be
// started; the router does not manage their lifecycle.
func New(policy Policy, members ...Member) (*Router, error) {
	if len(members) == 0 {
		return nil, errors.New("federation: need at least one member")
	}
	switch policy {
	case RoundRobin, LeastQueued:
	default:
		return nil, fmt.Errorf("federation: unknown policy %q", policy)
	}
	seen := make(map[string]bool)
	for _, m := range members {
		if m.Name == "" || m.Platform == nil {
			return nil, errors.New("federation: member needs name and platform")
		}
		if seen[m.Name] {
			return nil, fmt.Errorf("federation: duplicate member %q", m.Name)
		}
		seen[m.Name] = true
	}
	return &Router{
		policy:  policy,
		members: members,
		counts:  make([]atomic.Int64, len(members)),
	}, nil
}

// Start binds the router's HTTP endpoint.
func (r *Router) Start() (string, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.listener != nil {
		return "", errors.New("federation: already started")
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	r.listener = ln
	r.url = "http://" + ln.Addr().String()
	r.server = &http.Server{Handler: r}
	go r.server.Serve(ln)
	return r.url, nil
}

// URL returns the router endpoint ("" before Start).
func (r *Router) URL() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.url
}

// Stop closes the router endpoint (members keep running).
func (r *Router) Stop() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.stopped {
		return
	}
	r.stopped = true
	if r.server != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		r.server.Shutdown(ctx)
	}
}

// Members returns the member list.
func (r *Router) Members() []Member { return r.members }

// Sent returns how many invocations each member received, in member
// order.
func (r *Router) Sent() []int64 {
	out := make([]int64, len(r.counts))
	for i := range r.counts {
		out[i] = r.counts[i].Load()
	}
	return out
}

// pick selects the member index for the next invocation.
func (r *Router) pick() int {
	switch r.policy {
	case LeastQueued:
		best, bestQ := 0, int(^uint(0)>>1)
		for i, m := range r.members {
			// queue depth plus live pods' spare capacity would be
			// ideal; queue depth alone captures pressure.
			if q := m.Platform.QueueDepth(); q < bestQ {
				best, bestQ = i, q
			}
		}
		return best
	default: // RoundRobin
		return int(r.rr.Add(1)-1) % len(r.members)
	}
}

// Invoke routes one function invocation to a member cluster.
func (r *Router) Invoke(ctx context.Context, service string, req *wfbench.Request) (*wfbench.Response, error) {
	i := r.pick()
	r.counts[i].Add(1)
	return r.members[i].Platform.Invoke(ctx, service, req)
}

// ServeHTTP implements the platform ingress protocol.
func (r *Router) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	if req.URL.Path == "/healthz" {
		fmt.Fprintln(w, "ok")
		return
	}
	parts := strings.Split(strings.Trim(req.URL.Path, "/"), "/")
	if len(parts) != 2 || parts[1] != "wfbench" || req.Method != http.MethodPost {
		http.NotFound(w, req)
		return
	}
	var breq wfbench.Request
	if err := json.NewDecoder(req.Body).Decode(&breq); err != nil {
		http.Error(w, fmt.Sprintf("bad request: %v", err), http.StatusBadRequest)
		return
	}
	if err := breq.Validate(); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	resp, err := r.Invoke(req.Context(), parts[0], &breq)
	status := http.StatusOK
	if err != nil {
		if resp == nil {
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		status = http.StatusInternalServerError
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(resp)
}
