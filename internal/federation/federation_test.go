package federation

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"testing"

	"wfserverless/internal/cluster"
	"wfserverless/internal/serverless"
	"wfserverless/internal/sharedfs"
	"wfserverless/internal/translator"
	"wfserverless/internal/wfbench"
	"wfserverless/internal/wfgen"
	"wfserverless/internal/wfm"
)

// memberPlatform starts one platform over its own single-node cluster
// but a shared drive.
func memberPlatform(t *testing.T, drive sharedfs.Drive, name string) *serverless.Platform {
	t.Helper()
	clus := cluster.New(cluster.NewNode(cluster.NodeSpec{
		Name: name, Cores: 16, MemBytes: 32 << 30, IdleWatts: 50, MaxWatts: 150,
	}))
	p, err := serverless.New(serverless.Options{
		Cluster:         clus,
		Drive:           drive,
		TimeScale:       0.002,
		ColdStart:       0.5,
		AutoscalePeriod: 0.5,
		StableWindow:    10,
		InputWait:       5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Stop)
	if err := p.Apply(serverless.ServiceConfig{Name: "wfbench", Workers: 4, CPURequestPerWorker: 1}); err != nil {
		t.Fatal(err)
	}
	return p
}

func benchReq(name string) *wfbench.Request {
	return &wfbench.Request{
		Name: name, PercentCPU: 0.5, CPUWork: 20,
		Out: map[string]int64{name + "_out": 1},
	}
}

func TestNewValidation(t *testing.T) {
	drive := sharedfs.NewMem()
	p := memberPlatform(t, drive, "a")
	if _, err := New(RoundRobin); err == nil {
		t.Fatal("no members accepted")
	}
	if _, err := New(Policy("weird"), Member{Name: "a", Platform: p}); err == nil {
		t.Fatal("bad policy accepted")
	}
	if _, err := New(RoundRobin, Member{Name: "", Platform: p}); err == nil {
		t.Fatal("unnamed member accepted")
	}
	if _, err := New(RoundRobin, Member{Name: "a", Platform: p}, Member{Name: "a", Platform: p}); err == nil {
		t.Fatal("duplicate member accepted")
	}
}

func TestRoundRobinSpread(t *testing.T) {
	drive := sharedfs.NewMem()
	a := memberPlatform(t, drive, "a")
	b := memberPlatform(t, drive, "b")
	r, err := New(RoundRobin, Member{Name: "a", Platform: a}, Member{Name: "b", Platform: b})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := r.Invoke(context.Background(), "wfbench", benchReq(fmt.Sprintf("f%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	sent := r.Sent()
	if sent[0] != 5 || sent[1] != 5 {
		t.Fatalf("spread = %v, want 5/5", sent)
	}
	if a.Requests() != 5 || b.Requests() != 5 {
		t.Fatalf("member requests = %d/%d", a.Requests(), b.Requests())
	}
}

func TestLeastQueuedPrefersIdle(t *testing.T) {
	drive := sharedfs.NewMem()
	a := memberPlatform(t, drive, "a")
	b := memberPlatform(t, drive, "b")
	r, err := New(LeastQueued, Member{Name: "a", Platform: a}, Member{Name: "b", Platform: b})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r.Invoke(context.Background(), "wfbench", benchReq(fmt.Sprintf("q%d", i)))
		}(i)
	}
	wg.Wait()
	sent := r.Sent()
	if sent[0]+sent[1] != 20 {
		t.Fatalf("sent = %v", sent)
	}
	if sent[0] == 0 || sent[1] == 0 {
		t.Fatalf("least-queued starved a member: %v", sent)
	}
}

func TestHTTPEndpointAndWorkflowRun(t *testing.T) {
	drive := sharedfs.NewMem()
	a := memberPlatform(t, drive, "a")
	b := memberPlatform(t, drive, "b")
	r, err := New(RoundRobin, Member{Name: "a", Platform: a}, Member{Name: "b", Platform: b})
	if err != nil {
		t.Fatal(err)
	}
	url, err := r.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer r.Stop()

	// direct HTTP invocation
	body, _ := json.Marshal(benchReq("h1"))
	resp, err := http.Post(url+"/wfbench/wfbench", "application/json", bytes.NewReader(body))
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("post: %v %v", resp.StatusCode, err)
	}
	resp.Body.Close()

	// full workflow through the WFM, spread over both clusters
	w, err := wfgen.Generate(wfgen.Spec{Recipe: "blast", NumTasks: 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	kn, err := translator.Knative(w, translator.KnativeOptions{IngressURL: url})
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := wfm.New(wfm.Options{Drive: drive, TimeScale: 0.002, PhaseDelay: 0.5, InputWait: 5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.Run(context.Background(), kn); err != nil {
		t.Fatal(err)
	}
	if a.Requests() == 0 || b.Requests() == 0 {
		t.Fatalf("federated run did not use both clusters: %d/%d", a.Requests(), b.Requests())
	}

	// error paths
	bad, _ := http.Post(url+"/wfbench/wfbench", "application/json", bytes.NewReader([]byte("{")))
	if bad.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad body status = %d", bad.StatusCode)
	}
	bad.Body.Close()
	nf, _ := http.Get(url + "/wfbench/wfbench")
	if nf.StatusCode != http.StatusNotFound {
		t.Fatalf("GET status = %d", nf.StatusCode)
	}
	nf.Body.Close()
	hz, _ := http.Get(url + "/healthz")
	if hz.StatusCode != 200 {
		t.Fatalf("healthz = %d", hz.StatusCode)
	}
	hz.Body.Close()

	r.Stop() // idempotent
}

func TestUnknownServiceSurfacesError(t *testing.T) {
	drive := sharedfs.NewMem()
	a := memberPlatform(t, drive, "a")
	r, _ := New(RoundRobin, Member{Name: "a", Platform: a})
	if _, err := r.Invoke(context.Background(), "ghost", benchReq("x")); err == nil {
		t.Fatal("unknown service accepted")
	}
}
