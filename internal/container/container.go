// Package container implements the paper's baseline computational
// paradigm: WfBench served from bare-metal local containers (Section
// III-D). Unlike the serverless platform, containers are provisioned
// up front and stay up for the whole run — each holds its CPU
// reservation (docker --cpus) and its pre-forked worker pool's resident
// memory regardless of demand, which is precisely why the baseline's
// time-averaged CPU and memory usage are high. A container may carry a
// hard memory limit; exceeding it fails the invocation (the docker OOM
// kill), unless the paradigm is NoCR (no CPU requirement / no limits).
package container

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"wfserverless/internal/cluster"
	"wfserverless/internal/sharedfs"
	"wfserverless/internal/wfbench"
)

// ErrOOM is returned when an invocation would push a container past its
// memory limit.
var ErrOOM = errors.New("container: memory limit exceeded")

// Config describes one local container (the docker run flags).
type Config struct {
	// Name routes requests: POST <runtime>/<Name>/wfbench.
	Name string
	// Workers is the gunicorn worker-pool size.
	Workers int
	// CPUs is the docker --cpus reservation; 0 means no CPU requirement
	// (the paper's NoCR).
	CPUs float64
	// MemLimit is the hard memory limit in bytes; 0 means unlimited
	// (NoCR), letting the container "consume more memory, as observed".
	MemLimit int64
	// KeepMem is the persistent-memory (PM) knob.
	KeepMem bool
}

func (c *Config) validate() error {
	if c.Name == "" {
		return errors.New("container: needs a name")
	}
	if strings.ContainsAny(c.Name, "/ ") {
		return fmt.Errorf("container: invalid name %q", c.Name)
	}
	if c.Workers <= 0 {
		return fmt.Errorf("container: %s needs >= 1 worker", c.Name)
	}
	if c.CPUs < 0 || c.MemLimit < 0 {
		return fmt.Errorf("container: %s has negative resources", c.Name)
	}
	return nil
}

// Options configures the runtime.
type Options struct {
	Cluster *cluster.Cluster
	Drive   sharedfs.Drive
	// TimeScale, Engine, InputWait as in the serverless platform.
	TimeScale float64
	Engine    wfbench.Engine
	InputWait float64 // nominal paper seconds; zero defaults to 5s
	// PodOverheadMem / WorkerOverheadMem: resident memory of the
	// container runtime and each pre-forked worker, held for the whole
	// container lifetime.
	PodOverheadMem    int64
	WorkerOverheadMem int64
	// PodOverheadCPU is the container's constant background CPU.
	PodOverheadCPU float64
	QueueCapacity  int
	// Placer selects nodes for container reservations; nil = first fit.
	Placer cluster.Placer
}

func (o *Options) applyDefaults() error {
	if o.Cluster == nil || o.Drive == nil {
		return errors.New("container: Options need Cluster and Drive")
	}
	if o.TimeScale == 0 {
		o.TimeScale = 1
	}
	if o.TimeScale < 0 {
		return errors.New("container: negative TimeScale")
	}
	if o.Engine == nil {
		o.Engine = wfbench.SimEngine{}
	}
	if o.InputWait == 0 {
		o.InputWait = 5
	}
	if o.QueueCapacity == 0 {
		o.QueueCapacity = 16384
	}
	return nil
}

func (o *Options) scaled(nominalSeconds float64) time.Duration {
	return time.Duration(nominalSeconds * o.TimeScale * float64(time.Second))
}

// Runtime hosts a fleet of always-on containers behind a loopback HTTP
// endpoint. POST /<name>/wfbench targets one container; POST /wfbench
// dispatches to the least-loaded container, standing in for the host
// port mapping of the paper's docker setup.
type Runtime struct {
	opts Options

	mu         sync.Mutex
	containers map[string]*Container
	server     *http.Server
	listener   net.Listener
	url        string
	stopped    bool

	requests atomic.Int64
	failures atomic.Int64
	ooms     atomic.Int64
	rr       atomic.Int64
}

// NewRuntime returns an unstarted runtime.
func NewRuntime(opts Options) (*Runtime, error) {
	if err := opts.applyDefaults(); err != nil {
		return nil, err
	}
	return &Runtime{opts: opts, containers: make(map[string]*Container)}, nil
}

// Start binds the loopback endpoint and returns its base URL.
func (r *Runtime) Start() (string, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.listener != nil {
		return "", errors.New("container: already started")
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", fmt.Errorf("container: listen: %w", err)
	}
	r.listener = ln
	r.url = "http://" + ln.Addr().String()
	r.server = &http.Server{Handler: r}
	go r.server.Serve(ln)
	return r.url, nil
}

// URL returns the endpoint base URL ("" before Start).
func (r *Runtime) URL() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.url
}

// Stop removes all containers and closes the endpoint.
func (r *Runtime) Stop() {
	r.mu.Lock()
	if r.stopped {
		r.mu.Unlock()
		return
	}
	r.stopped = true
	cs := make([]*Container, 0, len(r.containers))
	for _, c := range r.containers {
		cs = append(cs, c)
	}
	r.containers = make(map[string]*Container)
	server := r.server
	r.mu.Unlock()
	for _, c := range cs {
		c.stop()
	}
	if server != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		server.Shutdown(ctx)
	}
}

// Run starts a container (docker run). Resources are reserved
// immediately and held until Remove/Stop.
func (r *Runtime) Run(cfg Config) (*Container, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	r.mu.Lock()
	if r.stopped {
		r.mu.Unlock()
		return nil, errors.New("container: runtime stopped")
	}
	if _, dup := r.containers[cfg.Name]; dup {
		r.mu.Unlock()
		return nil, fmt.Errorf("container: name %q in use", cfg.Name)
	}
	r.mu.Unlock()

	res, err := r.opts.Cluster.PlaceWith(r.opts.Placer, cfg.CPUs, cfg.MemLimit)
	if err != nil {
		return nil, err
	}
	c, err := newContainer(r, cfg, res)
	if err != nil {
		res.Release()
		return nil, err
	}
	r.mu.Lock()
	if r.stopped {
		r.mu.Unlock()
		c.stop()
		return nil, errors.New("container: runtime stopped")
	}
	r.containers[cfg.Name] = c
	r.mu.Unlock()
	return c, nil
}

// Remove stops and deletes a container by name.
func (r *Runtime) Remove(name string) {
	r.mu.Lock()
	c := r.containers[name]
	delete(r.containers, name)
	r.mu.Unlock()
	if c != nil {
		c.stop()
	}
}

// Containers returns the live containers sorted by name.
func (r *Runtime) Containers() []*Container {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.containers))
	for n := range r.containers {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]*Container, 0, len(names))
	for _, n := range names {
		out = append(out, r.containers[n])
	}
	return out
}

// Requests returns cumulative invocations.
func (r *Runtime) Requests() int64 { return r.requests.Load() }

// Failures returns cumulative failed invocations.
func (r *Runtime) Failures() int64 { return r.failures.Load() }

// OOMs returns cumulative memory-limit failures.
func (r *Runtime) OOMs() int64 { return r.ooms.Load() }

// QueueDepth returns queued (not yet executing) invocations across
// containers.
func (r *Runtime) QueueDepth() int {
	n := 0
	for _, c := range r.Containers() {
		n += len(c.queue)
	}
	return n
}

// Invoke executes a request on the named container, or round-robin
// across the fleet when name is empty (the kernel's connection
// distribution across the published port). Round-robin rather than
// least-loaded: under a thundering-herd phase every caller would read
// the same stale load snapshot and pile onto one container.
func (r *Runtime) Invoke(ctx context.Context, name string, req *wfbench.Request) (*wfbench.Response, error) {
	var c *Container
	if name == "" {
		c = r.nextContainer()
	} else {
		r.mu.Lock()
		c = r.containers[name]
		r.mu.Unlock()
	}
	if c == nil {
		return nil, fmt.Errorf("container: no such container %q", name)
	}
	r.requests.Add(1)
	resp, err := c.invoke(ctx, req)
	if err != nil {
		r.failures.Add(1)
		if errors.Is(err, ErrOOM) {
			r.ooms.Add(1)
		}
	}
	return resp, err
}

func (r *Runtime) nextContainer() *Container {
	cs := r.Containers()
	if len(cs) == 0 {
		return nil
	}
	n := r.rr.Add(1)
	return cs[int(n-1)%len(cs)]
}

// ServeHTTP routes POST /wfbench, POST /<name>/wfbench, GET /healthz.
func (r *Runtime) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	if req.URL.Path == "/healthz" {
		fmt.Fprintln(w, "ok")
		return
	}
	parts := strings.Split(strings.Trim(req.URL.Path, "/"), "/")
	var name string
	switch {
	case len(parts) == 1 && parts[0] == "wfbench":
		name = ""
	case len(parts) == 2 && parts[1] == "wfbench":
		name = parts[0]
	default:
		http.NotFound(w, req)
		return
	}
	if req.Method != http.MethodPost {
		http.NotFound(w, req)
		return
	}
	var breq wfbench.Request
	if err := json.NewDecoder(req.Body).Decode(&breq); err != nil {
		http.Error(w, fmt.Sprintf("bad request: %v", err), http.StatusBadRequest)
		return
	}
	if err := breq.Validate(); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	resp, err := r.Invoke(req.Context(), name, &breq)
	status := http.StatusOK
	if err != nil {
		if resp == nil {
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		status = http.StatusInternalServerError
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(resp)
}

// limitedUsage forwards usage registrations to the node while tracking
// the container's own resident total, so the memory limit can be
// enforced.
type limitedUsage struct {
	node *cluster.Node
	used atomic.Int64
}

func (u *limitedUsage) AddBusy(cores float64) func() { return u.node.AddBusy(cores) }

func (u *limitedUsage) AddMem(bytes int64) func() {
	u.used.Add(bytes)
	rel := u.node.AddMem(bytes)
	var once sync.Once
	return func() {
		once.Do(func() {
			u.used.Add(-bytes)
			rel()
		})
	}
}

// Container is one always-on WfBench container.
type Container struct {
	rt  *Runtime
	cfg Config
	res *cluster.Reservation

	usage   *limitedUsage
	bench   *wfbench.Bench
	queue   chan *work
	stopCh  chan struct{}
	once    sync.Once
	wg      sync.WaitGroup
	baseMem int64

	inflight atomic.Int64
	served   atomic.Int64

	releaseOverheadMem func()
	releaseOverheadCPU func()
}

type work struct {
	req    *wfbench.Request
	respCh chan workResult
}

type workResult struct {
	resp *wfbench.Response
	err  error
}

func newContainer(r *Runtime, cfg Config, res *cluster.Reservation) (*Container, error) {
	usage := &limitedUsage{node: res.Node()}
	bench, err := wfbench.New(wfbench.Config{
		Drive:     r.opts.Drive,
		Engine:    r.opts.Engine,
		Usage:     usage,
		TimeScale: r.opts.TimeScale,
		InputWait: r.opts.scaled(r.opts.InputWait),
		KeepMem:   cfg.KeepMem,
	})
	if err != nil {
		return nil, err
	}
	c := &Container{
		rt:     r,
		cfg:    cfg,
		res:    res,
		usage:  usage,
		bench:  bench,
		queue:  make(chan *work, r.opts.QueueCapacity),
		stopCh: make(chan struct{}),
	}
	c.baseMem = r.opts.PodOverheadMem + int64(cfg.Workers)*r.opts.WorkerOverheadMem
	if cfg.MemLimit > 0 && c.baseMem > cfg.MemLimit {
		return nil, fmt.Errorf("container: %s: worker pool needs %d bytes, limit %d: %w",
			cfg.Name, c.baseMem, cfg.MemLimit, ErrOOM)
	}
	if c.baseMem > 0 {
		c.releaseOverheadMem = usage.AddMem(c.baseMem)
	}
	if r.opts.PodOverheadCPU > 0 {
		c.releaseOverheadCPU = res.Node().AddBusy(r.opts.PodOverheadCPU)
	}
	for i := 0; i < cfg.Workers; i++ {
		w := bench.NewWorker()
		c.wg.Add(1)
		go c.workerLoop(w)
	}
	return c, nil
}

// Name returns the container name.
func (c *Container) Name() string { return c.cfg.Name }

// Served returns the number of completed invocations.
func (c *Container) Served() int64 { return c.served.Load() }

// MemUsed returns the container's resident bytes.
func (c *Container) MemUsed() int64 { return c.usage.used.Load() }

func (c *Container) invoke(ctx context.Context, req *wfbench.Request) (*wfbench.Response, error) {
	// Enforce the docker memory limit before admitting the request.
	// (Check-then-act: concurrent admissions may briefly overshoot,
	// like real page allocation racing the OOM killer.)
	if c.cfg.MemLimit > 0 && c.usage.used.Load()+req.MemBytes > c.cfg.MemLimit {
		return &wfbench.Response{Name: req.Name, Error: ErrOOM.Error()},
			fmt.Errorf("%w: container %s: %d resident + %d requested > limit %d",
				ErrOOM, c.cfg.Name, c.usage.used.Load(), req.MemBytes, c.cfg.MemLimit)
	}
	c.inflight.Add(1)
	defer c.inflight.Add(-1)
	wk := &work{req: req, respCh: make(chan workResult, 1)}
	select {
	case c.queue <- wk:
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-c.stopCh:
		return nil, errors.New("container: stopped")
	}
	select {
	case res := <-wk.respCh:
		return res.resp, res.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (c *Container) workerLoop(w *wfbench.Worker) {
	defer c.wg.Done()
	for {
		select {
		case <-c.stopCh:
			w.Close()
			return
		case wk := <-c.queue:
			resp, err := w.Execute(context.Background(), wk.req)
			if resp != nil {
				resp.Pod = c.cfg.Name
			}
			c.served.Add(1)
			wk.respCh <- workResult{resp: resp, err: err}
		}
	}
}

func (c *Container) stop() {
	c.once.Do(func() {
		close(c.stopCh)
		go func() {
			c.wg.Wait()
			if c.releaseOverheadMem != nil {
				c.releaseOverheadMem()
			}
			if c.releaseOverheadCPU != nil {
				c.releaseOverheadCPU()
			}
			c.res.Release()
		}()
	})
}
